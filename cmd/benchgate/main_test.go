package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseOut = `goos: linux
goarch: amd64
pkg: github.com/auditgames/sag
BenchmarkOSSPDecision-4         	     200	     60000 ns/op
BenchmarkOSSPDecision-4         	     200	     64000 ns/op
BenchmarkOSSPDecisionCached-4   	    1000	      2000 ns/op	        96.50 hit%
BenchmarkOnlyInBase-4           	     100	      1000 ns/op
PASS
ok  	github.com/auditgames/sag	2.0s
`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseAveragesRepeatedRuns(t *testing.T) {
	got, err := parse(strings.NewReader(baseOut))
	if err != nil {
		t.Fatal(err)
	}
	d, ok := got["BenchmarkOSSPDecision"]
	if !ok {
		t.Fatalf("missing benchmark (procs suffix not stripped?): %v", got)
	}
	if d.n != 2 || d.mean() != 62000 {
		t.Fatalf("mean over repeats = %g of %d runs, want 62000 of 2", d.mean(), d.n)
	}
	if c := got["BenchmarkOSSPDecisionCached"]; c.mean() != 2000 {
		t.Fatalf("cached mean %g, want 2000 (extra metrics must not confuse the parser)", c.mean())
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baseOut)
	pr := write(t, dir, "pr.txt",
		"BenchmarkOSSPDecision-8 200 68000 ns/op\nBenchmarkOnlyInPR-8 10 999999 ns/op\n")
	var buf bytes.Buffer
	if err := run(&buf, base, pr, 0.20, "", ""); err != nil {
		t.Fatalf("within-threshold comparison failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "ok") {
		t.Fatalf("no verdict printed:\n%s", buf.String())
	}
	// Benchmarks on only one side are listed but never gated.
	if !strings.Contains(buf.String(), "vanished from PR") || !strings.Contains(buf.String(), "new in PR") {
		t.Fatalf("one-sided benchmarks not surfaced:\n%s", buf.String())
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if (strings.Contains(line, "OnlyInBase") || strings.Contains(line, "OnlyInPR")) &&
			(strings.Contains(line, "ok") || strings.Contains(line, "FAIL")) {
			t.Fatalf("one-sided benchmark was gated: %s", line)
		}
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baseOut)
	pr := write(t, dir, "pr.txt", "BenchmarkOSSPDecision-4 200 90000 ns/op\n")
	var buf bytes.Buffer
	err := run(&buf, base, pr, 0.20, "", "")
	if err == nil {
		t.Fatalf("45%% regression passed the 20%% gate:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkOSSPDecision") {
		t.Fatalf("failure does not name the regressed benchmark: %v", err)
	}
}

func TestGateMatchFilter(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baseOut)
	pr := write(t, dir, "pr.txt",
		"BenchmarkOSSPDecision-4 200 61000 ns/op\nBenchmarkOSSPDecisionCached-4 1000 9000 ns/op\n")
	// Unfiltered, the cached benchmark's 4.5x regression fails the gate...
	if err := run(&bytes.Buffer{}, base, pr, 0.20, "", ""); err == nil {
		t.Fatal("cached regression slipped through without a filter")
	}
	// ...but a filter on the uncached benchmark ignores it.
	if err := run(&bytes.Buffer{}, base, pr, 0.20, `^BenchmarkOSSPDecision$`, ""); err != nil {
		t.Fatalf("filtered gate failed: %v", err)
	}
}

func TestGateToleratesMissingOrEmptyBase(t *testing.T) {
	dir := t.TempDir()
	pr := write(t, dir, "pr.txt", "BenchmarkOSSPDecision-4 200 60000 ns/op\n")
	var buf bytes.Buffer
	if err := run(&buf, filepath.Join(dir, "nope.txt"), pr, 0.20, "", ""); err != nil {
		t.Fatalf("missing base must pass: %v", err)
	}
	empty := write(t, dir, "empty.txt", "PASS\n")
	if err := run(&buf, empty, pr, 0.20, "", ""); err != nil {
		t.Fatalf("empty base must pass: %v", err)
	}
	if err := run(&buf, empty, filepath.Join(dir, "also-nope.txt"), 0.20, "", ""); err == nil {
		t.Fatal("missing PR file must fail")
	}
}

// TestJSONReport pins the artifact format the CI bench job uploads: every
// gated benchmark with before/after/delta, one-sided benchmarks listed, and
// failures named — even when the gate fails the run.
func TestJSONReport(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baseOut)
	pr := write(t, dir, "pr.txt",
		"BenchmarkOSSPDecision-4 200 90000 ns/op\nBenchmarkOSSPDecisionCached-4 1000 2100 ns/op\nBenchmarkOnlyInPR-4 10 5 ns/op\n")
	out := filepath.Join(dir, "BENCH_deadbeef.json")
	err := run(&bytes.Buffer{}, base, pr, 0.20, "", out)
	if err == nil {
		t.Fatal("regression must still fail the gate when -json-out is set")
	}
	blob, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("JSON report not written despite gate failure: %v", err)
	}
	var cmp Comparison
	if err := json.Unmarshal(blob, &cmp); err != nil {
		t.Fatalf("report is not valid JSON: %v\n%s", err, blob)
	}
	if len(cmp.Gated) != 2 {
		t.Fatalf("gated %d benchmarks, want 2: %+v", len(cmp.Gated), cmp)
	}
	// Worst regression sorts first and is marked failed.
	if cmp.Gated[0].Name != "BenchmarkOSSPDecision" || !cmp.Gated[0].Failed {
		t.Fatalf("sort/verdict wrong: %+v", cmp.Gated)
	}
	if cmp.Gated[1].Failed {
		t.Fatalf("5%% drift marked failed: %+v", cmp.Gated[1])
	}
	if len(cmp.Failures) != 1 || cmp.Failures[0] != "BenchmarkOSSPDecision" {
		t.Fatalf("failures = %v", cmp.Failures)
	}
	if len(cmp.BaseOnly) != 1 || cmp.BaseOnly[0] != "BenchmarkOnlyInBase" {
		t.Fatalf("base-only = %v", cmp.BaseOnly)
	}
	if len(cmp.PROnly) != 1 || cmp.PROnly[0] != "BenchmarkOnlyInPR" {
		t.Fatalf("pr-only = %v", cmp.PROnly)
	}
}
