package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const baseOut = `goos: linux
goarch: amd64
pkg: github.com/auditgames/sag
BenchmarkOSSPDecision-4         	     200	     60000 ns/op
BenchmarkOSSPDecision-4         	     200	     64000 ns/op
BenchmarkOSSPDecisionCached-4   	    1000	      2000 ns/op	        96.50 hit%
BenchmarkOnlyInBase-4           	     100	      1000 ns/op
PASS
ok  	github.com/auditgames/sag	2.0s
`

func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestParseAveragesRepeatedRuns(t *testing.T) {
	got, err := parse(strings.NewReader(baseOut))
	if err != nil {
		t.Fatal(err)
	}
	d, ok := got["BenchmarkOSSPDecision"]
	if !ok {
		t.Fatalf("missing benchmark (procs suffix not stripped?): %v", got)
	}
	if d.n != 2 || d.mean() != 62000 {
		t.Fatalf("mean over repeats = %g of %d runs, want 62000 of 2", d.mean(), d.n)
	}
	if c := got["BenchmarkOSSPDecisionCached"]; c.mean() != 2000 {
		t.Fatalf("cached mean %g, want 2000 (extra metrics must not confuse the parser)", c.mean())
	}
}

func TestGatePassesWithinThreshold(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baseOut)
	pr := write(t, dir, "pr.txt",
		"BenchmarkOSSPDecision-8 200 68000 ns/op\nBenchmarkOnlyInPR-8 10 999999 ns/op\n")
	var buf bytes.Buffer
	if err := run(&buf, base, pr, 0.20, ""); err != nil {
		t.Fatalf("within-threshold comparison failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "ok") {
		t.Fatalf("no verdict printed:\n%s", buf.String())
	}
	// Benchmarks on only one side must not be compared.
	for _, absent := range []string{"OnlyInBase", "OnlyInPR"} {
		if strings.Contains(buf.String(), absent+" ") {
			t.Fatalf("one-sided benchmark %s was gated:\n%s", absent, buf.String())
		}
	}
}

func TestGateFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baseOut)
	pr := write(t, dir, "pr.txt", "BenchmarkOSSPDecision-4 200 90000 ns/op\n")
	var buf bytes.Buffer
	err := run(&buf, base, pr, 0.20, "")
	if err == nil {
		t.Fatalf("45%% regression passed the 20%% gate:\n%s", buf.String())
	}
	if !strings.Contains(err.Error(), "BenchmarkOSSPDecision") {
		t.Fatalf("failure does not name the regressed benchmark: %v", err)
	}
}

func TestGateMatchFilter(t *testing.T) {
	dir := t.TempDir()
	base := write(t, dir, "base.txt", baseOut)
	pr := write(t, dir, "pr.txt",
		"BenchmarkOSSPDecision-4 200 61000 ns/op\nBenchmarkOSSPDecisionCached-4 1000 9000 ns/op\n")
	// Unfiltered, the cached benchmark's 4.5x regression fails the gate...
	if err := run(&bytes.Buffer{}, base, pr, 0.20, ""); err == nil {
		t.Fatal("cached regression slipped through without a filter")
	}
	// ...but a filter on the uncached benchmark ignores it.
	if err := run(&bytes.Buffer{}, base, pr, 0.20, `^BenchmarkOSSPDecision$`); err != nil {
		t.Fatalf("filtered gate failed: %v", err)
	}
}

func TestGateToleratesMissingOrEmptyBase(t *testing.T) {
	dir := t.TempDir()
	pr := write(t, dir, "pr.txt", "BenchmarkOSSPDecision-4 200 60000 ns/op\n")
	var buf bytes.Buffer
	if err := run(&buf, filepath.Join(dir, "nope.txt"), pr, 0.20, ""); err != nil {
		t.Fatalf("missing base must pass: %v", err)
	}
	empty := write(t, dir, "empty.txt", "PASS\n")
	if err := run(&buf, empty, pr, 0.20, ""); err != nil {
		t.Fatalf("empty base must pass: %v", err)
	}
	if err := run(&buf, empty, filepath.Join(dir, "also-nope.txt"), 0.20, ""); err == nil {
		t.Fatal("missing PR file must fail")
	}
}
