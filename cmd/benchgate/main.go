// Command benchgate compares two Go benchmark text outputs and fails when
// any benchmark present in both regressed by more than the allowed factor.
// It is the enforcement half of the CI bench job: benchstat renders the
// human-readable comparison, benchgate turns ">20% slower per decision"
// into a red build.
//
// Usage:
//
//	go test -bench=BenchmarkOSSPDecision -count=6 ./... > pr.txt
//	git worktree add /tmp/base <merge-base> && (cd /tmp/base && go test ... > base.txt)
//	benchgate -base base.txt -pr pr.txt -max-regression 0.20 -json-out BENCH_$(git rev-parse HEAD).json
//
// Benchmarks are matched by name with the trailing -<GOMAXPROCS> suffix
// stripped; repeated runs (-count > 1) are averaged. A missing or empty
// base file passes (first run on a new branch has nothing to compare), as
// do benchmarks present on only one side.
//
// -json-out writes the full comparison as JSON — the CI bench job uploads
// it as the BENCH_<sha>.json artifact so perf history survives log expiry
// and can be diffed across commits without re-running anything.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

func main() {
	var (
		basePath = flag.String("base", "", "benchmark output of the merge base")
		prPath   = flag.String("pr", "", "benchmark output of the candidate change")
		maxReg   = flag.Float64("max-regression", 0.20, "maximum allowed fractional ns/op increase")
		match    = flag.String("match", "", "optional regexp restricting which benchmarks are gated")
		jsonOut  = flag.String("json-out", "", "optional path for a machine-readable JSON report of the comparison")
	)
	flag.Parse()
	if err := run(os.Stdout, *basePath, *prPath, *maxReg, *match, *jsonOut); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

// Comparison is the JSON report written by -json-out.
type Comparison struct {
	MaxRegression float64  `json:"max_regression"`
	Gated         []Result `json:"gated"`
	// BaseOnly / PROnly list benchmarks present on one side only — not
	// gated, but recorded so a silently vanished benchmark is visible.
	BaseOnly []string `json:"base_only,omitempty"`
	PROnly   []string `json:"pr_only,omitempty"`
	Failures []string `json:"failures,omitempty"`
}

// Result is one gated benchmark's before/after.
type Result struct {
	Name   string  `json:"name"`
	BaseNs float64 `json:"base_ns_op"`
	PRNs   float64 `json:"pr_ns_op"`
	Delta  float64 `json:"delta"` // fractional change; 0.05 = 5% slower
	Failed bool    `json:"failed"`
}

func run(w io.Writer, basePath, prPath string, maxReg float64, match, jsonOut string) error {
	if prPath == "" {
		return fmt.Errorf("-pr is required")
	}
	var filter *regexp.Regexp
	if match != "" {
		var err error
		if filter, err = regexp.Compile(match); err != nil {
			return fmt.Errorf("bad -match: %w", err)
		}
	}
	pr, err := parseFile(prPath)
	if err != nil {
		return err
	}
	base, err := parseFile(basePath)
	if err != nil {
		if !os.IsNotExist(err) {
			return err
		}
		fmt.Fprintf(w, "no base file %q — nothing to gate\n", basePath)
		base = nil
	} else if len(base) == 0 {
		fmt.Fprintln(w, "empty base — nothing to gate")
	}

	cmp := Comparison{MaxRegression: maxReg}
	for name := range base {
		if _, ok := pr[name]; !ok {
			cmp.BaseOnly = append(cmp.BaseOnly, name)
		}
	}
	for name := range pr {
		if _, ok := base[name]; !ok {
			cmp.PROnly = append(cmp.PROnly, name)
		}
	}
	for name, b := range base {
		p, ok := pr[name]
		if !ok || (filter != nil && !filter.MatchString(name)) {
			continue
		}
		delta := p.mean()/b.mean() - 1
		cmp.Gated = append(cmp.Gated, Result{
			Name:   name,
			BaseNs: b.mean(),
			PRNs:   p.mean(),
			Delta:  delta,
			Failed: delta > maxReg,
		})
	}
	// Deterministic table order: worst regression first, so the line that
	// failed the build is the first line anyone reads.
	sort.Slice(cmp.Gated, func(i, j int) bool {
		if cmp.Gated[i].Delta != cmp.Gated[j].Delta {
			return cmp.Gated[i].Delta > cmp.Gated[j].Delta
		}
		return cmp.Gated[i].Name < cmp.Gated[j].Name
	})
	sort.Strings(cmp.BaseOnly)
	sort.Strings(cmp.PROnly)

	if len(cmp.Gated) > 0 {
		fmt.Fprintf(w, "%-50s %14s %14s %8s  %s\n", "benchmark", "base ns/op", "pr ns/op", "delta", "verdict")
		for _, g := range cmp.Gated {
			verdict := "ok"
			if g.Failed {
				verdict = "FAIL"
				cmp.Failures = append(cmp.Failures, g.Name)
			}
			fmt.Fprintf(w, "%-50s %14.0f %14.0f %+7.1f%%  %s\n",
				g.Name, g.BaseNs, g.PRNs, 100*g.Delta, verdict)
		}
	}
	for _, name := range cmp.BaseOnly {
		fmt.Fprintf(w, "%-50s vanished from PR (not gated)\n", name)
	}
	for _, name := range cmp.PROnly {
		fmt.Fprintf(w, "%-50s new in PR (no base to gate against)\n", name)
	}

	if jsonOut != "" {
		blob, err := json.MarshalIndent(cmp, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(blob, '\n'), 0o644); err != nil {
			return fmt.Errorf("writing -json-out: %w", err)
		}
		fmt.Fprintf(w, "wrote JSON report to %s\n", jsonOut)
	}

	if len(cmp.Failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%: %s",
			len(cmp.Failures), 100*maxReg, strings.Join(cmp.Failures, ", "))
	}
	if len(cmp.Gated) > 0 {
		fmt.Fprintf(w, "all gated benchmarks within %.0f%% of base\n", 100*maxReg)
	}
	return nil
}

// sample accumulates the ns/op values of one benchmark across -count runs.
type sample struct {
	sum float64
	n   int
}

func (s sample) mean() float64 { return s.sum / float64(s.n) }

// gomaxprocsSuffix strips the trailing -<digits> procs suffix Go appends to
// benchmark names, so runs on machines with different core counts compare.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func parseFile(path string) (map[string]sample, error) {
	if path == "" {
		return nil, os.ErrNotExist
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

// parse reads Go benchmark text format: lines of
//
//	BenchmarkName-8   	     200	     71041 ns/op	 [extra metrics...]
//
// ignoring everything else (headers, PASS/ok lines, benchstat noise).
func parse(r io.Reader) (map[string]sample, error) {
	out := make(map[string]sample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// fields: name, iterations, value, "ns/op", ...
		if fields[3] != "ns/op" {
			continue
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		s := out[name]
		s.sum += v
		s.n++
		out[name] = s
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
