// Command benchgate compares two Go benchmark text outputs and fails when
// any benchmark present in both regressed by more than the allowed factor.
// It is the enforcement half of the CI bench job: benchstat renders the
// human-readable comparison, benchgate turns ">20% slower per decision"
// into a red build.
//
// Usage:
//
//	go test -bench=BenchmarkOSSPDecision -count=6 ./... > pr.txt
//	git worktree add /tmp/base <merge-base> && (cd /tmp/base && go test ... > base.txt)
//	benchgate -base base.txt -pr pr.txt -max-regression 0.20
//
// Benchmarks are matched by name with the trailing -<GOMAXPROCS> suffix
// stripped; repeated runs (-count > 1) are averaged. A missing or empty
// base file passes (first run on a new branch has nothing to compare), as
// do benchmarks present on only one side.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

func main() {
	var (
		basePath = flag.String("base", "", "benchmark output of the merge base")
		prPath   = flag.String("pr", "", "benchmark output of the candidate change")
		maxReg   = flag.Float64("max-regression", 0.20, "maximum allowed fractional ns/op increase")
		match    = flag.String("match", "", "optional regexp restricting which benchmarks are gated")
	)
	flag.Parse()
	if err := run(os.Stdout, *basePath, *prPath, *maxReg, *match); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(w io.Writer, basePath, prPath string, maxReg float64, match string) error {
	if prPath == "" {
		return fmt.Errorf("-pr is required")
	}
	var filter *regexp.Regexp
	if match != "" {
		var err error
		if filter, err = regexp.Compile(match); err != nil {
			return fmt.Errorf("bad -match: %w", err)
		}
	}
	pr, err := parseFile(prPath)
	if err != nil {
		return err
	}
	base, err := parseFile(basePath)
	if err != nil {
		if os.IsNotExist(err) {
			fmt.Fprintf(w, "no base file %q — nothing to gate\n", basePath)
			return nil
		}
		return err
	}
	if len(base) == 0 {
		fmt.Fprintln(w, "empty base — nothing to gate")
		return nil
	}

	var failures []string
	for name, b := range base {
		p, ok := pr[name]
		if !ok || (filter != nil && !filter.MatchString(name)) {
			continue
		}
		delta := p.mean()/b.mean() - 1
		verdict := "ok"
		if delta > maxReg {
			verdict = "FAIL"
			failures = append(failures, name)
		}
		fmt.Fprintf(w, "%-50s %12.0f → %12.0f ns/op  %+6.1f%%  %s\n",
			name, b.mean(), p.mean(), 100*delta, verdict)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed more than %.0f%%: %s",
			len(failures), 100*maxReg, strings.Join(failures, ", "))
	}
	fmt.Fprintf(w, "all gated benchmarks within %.0f%% of base\n", 100*maxReg)
	return nil
}

// sample accumulates the ns/op values of one benchmark across -count runs.
type sample struct {
	sum float64
	n   int
}

func (s sample) mean() float64 { return s.sum / float64(s.n) }

// gomaxprocsSuffix strips the trailing -<digits> procs suffix Go appends to
// benchmark names, so runs on machines with different core counts compare.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func parseFile(path string) (map[string]sample, error) {
	if path == "" {
		return nil, os.ErrNotExist
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return parse(f)
}

// parse reads Go benchmark text format: lines of
//
//	BenchmarkName-8   	     200	     71041 ns/op	 [extra metrics...]
//
// ignoring everything else (headers, PASS/ok lines, benchstat noise).
func parse(r io.Reader) (map[string]sample, error) {
	out := make(map[string]sample)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		// fields: name, iterations, value, "ns/op", ...
		if fields[3] != "ns/op" {
			continue
		}
		v, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		s := out[name]
		s.sum += v
		s.n++
		out[name] = s
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}
