// Command sagload drives concurrent /v1/access traffic at a SAG server and
// reports decision throughput and latency percentiles. It exists to measure
// the serving path under the load shape the paper's deployment implies —
// many EMR front ends posting accesses at once — and to verify that slow
// LP solves overlap instead of queueing behind a global lock.
//
// Usage:
//
//	sagload -url http://localhost:8080 -workers 8 -duration 10s
//	sagload -self -workers 8 -duration 5s   # spin an in-process server
//
// The -overload arm drives the box past capacity on purpose: -workers
// unpaced clients flood a single greedy tenant while -polite-tenants paced
// clients each drive their own tenant, and the report shows whether
// admission control kept the polite tenants' goodput intact while shedding
// the greedy one with computed Retry-After hints:
//
//	sagload -self -overload -workers 8 -polite-tenants 3 -polite-rate 50 \
//	        -max-inflight 4 -queue-depth 8 -duration 5s
//
// Each worker is pinned to one planted alert type: worker w posts the pair
// (employee+stride·(w mod types), patient+stride·(w mod types)). The
// defaults match sagserver's world (first planted pair 400/2000, 120 pairs
// per kind); point -employee/-patient/-stride elsewhere for other worlds.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"github.com/auditgames/sag/internal/admit"
	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/server"
	"github.com/auditgames/sag/internal/sim"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("sagload: ", err)
	}
}

func run() error {
	var (
		url            = flag.String("url", "http://localhost:8080", "target server base URL")
		self           = flag.Bool("self", false, "ignore -url and load an in-process server over a small synthetic world")
		workers        = flag.Int("workers", 8, "concurrent clients")
		duration       = flag.Duration("duration", 10*time.Second, "how long to drive load")
		employee       = flag.Int("employee", 400, "employee ID of the first planted pair")
		patient        = flag.Int("patient", 2000, "patient ID of the first planted pair")
		stride         = flag.Int("stride", 120, "ID distance between planted pairs of consecutive kinds (the server's pairs-per-kind)")
		types          = flag.Int("types", 7, "number of planted alert types to cycle workers across")
		budget         = flag.Float64("budget", 1e9, "audit budget for the in-process server (-self)")
		tenants        = flag.Int("tenants", 0, "fan workers out across N tenants (load-0..load-N-1); 0 = default tenant only")
		retryTransient = flag.Bool("retry-transient", true, "retry transient dial/reset errors with capped exponential backoff instead of counting them as failures (a restarting or failing-over server is not an error)")

		overload      = flag.Bool("overload", false, "overload arm: -workers unpaced clients flood one greedy tenant while -polite-tenants paced clients each drive their own; reports per-tenant goodput, shed ratio, and Retry-After spread")
		politeTenants = flag.Int("polite-tenants", 3, "paced polite tenants in the -overload arm")
		politeRate    = flag.Float64("polite-rate", 50, "per-polite-tenant request rate in req/s in the -overload arm")

		admitRate   = flag.Float64("rate", 0, "with -self: per-tenant admission rate in req/s (0 disables rate limiting)")
		admitBurst  = flag.Float64("burst", 0, "with -self: per-tenant token-bucket depth (0 = max(1, rate))")
		maxInflight = flag.Int("max-inflight", 0, "with -self: box-wide cap on concurrently admitted mutations (0 = uncapped)")
		queueDepth  = flag.Int("queue-depth", 0, "with -self: box-wide admission queue bound (0 = no queue)")
	)
	flag.Parse()

	residentTenants := *tenants
	if *overload {
		residentTenants = *politeTenants + 1
	}
	base := *url
	if *self {
		adm := admit.Config{Rate: *admitRate, Burst: *admitBurst, MaxInflight: *maxInflight, QueueDepth: *queueDepth}
		ts, bgE, bgP, err := selfServer(*budget, residentTenants, adm)
		if err != nil {
			return err
		}
		defer ts.Close()
		base = ts.URL
		*employee, *patient, *stride = bgE, bgP, 3
		log.Printf("in-process server at %s (planted pairs from %d/%d, stride 3)", base, bgE, bgP)
		if adm.Enabled() {
			log.Printf("admission control on: rate=%g burst=%g max-inflight=%d queue-depth=%d", adm.Rate, adm.Burst, adm.MaxInflight, adm.QueueDepth)
		}
	}

	if *overload {
		body, err := json.Marshal(server.AccessRequest{EmployeeID: *employee, PatientID: *patient})
		if err != nil {
			return err
		}
		return runOverload(base, body, *workers, *politeTenants, *politeRate, *duration)
	}

	bodies := make([][]byte, *types)
	for k := range bodies {
		b, err := json.Marshal(server.AccessRequest{
			EmployeeID: *employee + *stride*k,
			PatientID:  *patient + *stride*k,
		})
		if err != nil {
			return err
		}
		bodies[k] = b
	}

	type workerStats struct {
		tenant        string
		lat           []time.Duration
		alerts, warns int64
		errs, non200  int64
		retries       int64
	}
	stats := make([]workerStats, *workers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *workers; w++ {
		if *tenants > 0 {
			stats[w].tenant = fmt.Sprintf("load-%d", w%*tenants)
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st := &stats[w]
			body := bodies[w%*types]
			client := &http.Client{Timeout: 30 * time.Second}
			attempt := 0
			for !stop.Load() {
				t0 := time.Now()
				req, err := http.NewRequest(http.MethodPost, base+"/v1/access", bytes.NewReader(body))
				if err != nil {
					return
				}
				req.Header.Set("Content-Type", "application/json")
				if st.tenant != "" {
					req.Header.Set(server.TenantHeader, st.tenant)
				}
				resp, err := client.Do(req)
				if err != nil {
					// A refused dial or reset connection usually means the
					// server is restarting (or a standby is being promoted):
					// back off and retry instead of charging an error.
					if *retryTransient && transientErr(err) {
						st.retries++
						attempt++
						sleepInterruptible(backoffDelay(attempt), &stop)
						continue
					}
					st.errs++
					continue
				}
				if *retryTransient && (resp.StatusCode == http.StatusServiceUnavailable ||
					resp.StatusCode == http.StatusInsufficientStorage) {
					// An overloaded (503) or disk-pressured (507) server said
					// when to come back; honor its hint instead of charging a
					// failure or hammering it on our own schedule.
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					hint, ok := serverRetryHint(resp.Header)
					if !ok {
						attempt++
						hint = backoffDelay(attempt)
					}
					st.retries++
					sleepInterruptible(hint, &stop)
					continue
				}
				attempt = 0
				var out server.AccessResponse
				decErr := json.NewDecoder(resp.Body).Decode(&out)
				resp.Body.Close()
				st.lat = append(st.lat, time.Since(t0))
				if resp.StatusCode != http.StatusOK || decErr != nil {
					st.non200++
					continue
				}
				if out.Alert {
					st.alerts++
				}
				if out.Warn {
					st.warns++
				}
			}
		}(w)
	}
	time.Sleep(*duration)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	var alerts, warns, errs, non200, retries int64
	perTenant := map[string][]time.Duration{}
	for i := range stats {
		all = append(all, stats[i].lat...)
		perTenant[stats[i].tenant] = append(perTenant[stats[i].tenant], stats[i].lat...)
		alerts += stats[i].alerts
		warns += stats[i].warns
		errs += stats[i].errs
		non200 += stats[i].non200
		retries += stats[i].retries
	}
	if len(all) == 0 {
		return fmt.Errorf("no requests completed (%d transport errors)", errs)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	fmt.Fprintf(os.Stdout, "workers        %d\n", *workers)
	if *tenants > 0 {
		fmt.Fprintf(os.Stdout, "tenants        %d\n", *tenants)
	}
	fmt.Fprintf(os.Stdout, "duration       %v\n", elapsed.Round(time.Millisecond))
	fmt.Fprintf(os.Stdout, "requests       %d (%d alerts, %d warned, %d non-200, %d transport errors, %d transient retries)\n",
		len(all), alerts, warns, non200, errs, retries)
	fmt.Fprintf(os.Stdout, "throughput     %.1f req/s\n", float64(len(all))/elapsed.Seconds())
	fmt.Fprintf(os.Stdout, "latency p50    %v\n", pct(all, 0.50).Round(time.Microsecond))
	fmt.Fprintf(os.Stdout, "latency p90    %v\n", pct(all, 0.90).Round(time.Microsecond))
	fmt.Fprintf(os.Stdout, "latency p99    %v\n", pct(all, 0.99).Round(time.Microsecond))
	fmt.Fprintf(os.Stdout, "latency max    %v\n", all[len(all)-1].Round(time.Microsecond))

	if *tenants > 0 {
		ids := make([]string, 0, len(perTenant))
		for id := range perTenant {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		fmt.Fprintln(os.Stdout, "per-tenant latency:")
		for _, id := range ids {
			lat := perTenant[id]
			if len(lat) == 0 {
				continue
			}
			sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
			fmt.Fprintf(os.Stdout, "  %-12s %8d req  %8.1f req/s  p50 %-10v p90 %-10v p99 %-10v\n",
				id, len(lat), float64(len(lat))/elapsed.Seconds(),
				pct(lat, 0.50).Round(time.Microsecond),
				pct(lat, 0.90).Round(time.Microsecond),
				pct(lat, 0.99).Round(time.Microsecond))
		}
	}
	return nil
}

// tenantResult accumulates one overload client's view of one tenant.
type tenantResult struct {
	tenant     string
	attempted  int64
	ok         int64
	shed       int64 // 503s
	other      int64 // non-200, non-503
	errs       int64
	lat        []time.Duration // successful requests only
	retryAfter map[string]int  // distinct Retry-After hints on sheds
}

// overloadShot fires one access for a tenant and files the outcome.
func overloadShot(client *http.Client, base string, body []byte, st *tenantResult) {
	st.attempted++
	t0 := time.Now()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/access", bytes.NewReader(body))
	if err != nil {
		st.errs++
		return
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(server.TenantHeader, st.tenant)
	resp, err := client.Do(req)
	if err != nil {
		st.errs++
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		st.ok++
		st.lat = append(st.lat, time.Since(t0))
	case http.StatusServiceUnavailable, http.StatusInsufficientStorage:
		st.shed++
		if st.retryAfter == nil {
			st.retryAfter = map[string]int{}
		}
		// Report the precise hint when the server sent one: Retry-After is
		// whole seconds by spec, so the computed sub-second spread is only
		// visible in the millisecond header.
		hint := resp.Header.Get("Retry-After")
		if ms := resp.Header.Get(server.RetryAfterMsHeader); ms != "" {
			hint = ms + "ms"
		}
		st.retryAfter[hint]++
	default:
		st.other++
	}
}

// runOverload is the -overload arm: `workers` unpaced clients flood the
// "greedy" tenant while politeN paced clients each drive their own tenant at
// politeRate req/s. The report is per-tenant goodput — the number the
// admission layer exists to protect — plus the greedy tenant's shed ratio
// and the spread of computed Retry-After hints.
func runOverload(base string, body []byte, workers, politeN int, politeRate float64, dur time.Duration) error {
	if politeN < 1 {
		return errors.New("-overload needs -polite-tenants >= 1")
	}
	if politeRate <= 0 {
		return errors.New("-overload needs -polite-rate > 0")
	}
	greedy := make([]tenantResult, workers)
	polite := make([]tenantResult, politeN)
	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		greedy[w].tenant = "greedy"
		wg.Add(1)
		go func(st *tenantResult) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for !stop.Load() {
				overloadShot(client, base, body, st)
			}
		}(&greedy[w])
	}
	for p := 0; p < politeN; p++ {
		polite[p].tenant = fmt.Sprintf("polite-%d", p)
		wg.Add(1)
		go func(st *tenantResult) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			tick := time.NewTicker(time.Duration(float64(time.Second) / politeRate))
			defer tick.Stop()
			for !stop.Load() {
				overloadShot(client, base, body, st)
				<-tick.C
			}
		}(&polite[p])
	}
	time.Sleep(dur)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	var g tenantResult
	g.tenant = "greedy"
	g.retryAfter = map[string]int{}
	for i := range greedy {
		g.attempted += greedy[i].attempted
		g.ok += greedy[i].ok
		g.shed += greedy[i].shed
		g.other += greedy[i].other
		g.errs += greedy[i].errs
		g.lat = append(g.lat, greedy[i].lat...)
		for k, v := range greedy[i].retryAfter {
			g.retryAfter[k] += v
		}
	}

	fmt.Fprintf(os.Stdout, "overload arm   %d greedy clients vs %d polite tenants @ %g req/s each, %v\n",
		workers, politeN, politeRate, elapsed.Round(time.Millisecond))
	printTenant := func(st *tenantResult) {
		sort.Slice(st.lat, func(i, j int) bool { return st.lat[i] < st.lat[j] })
		line := fmt.Sprintf("  %-12s %8d sent  %8.1f ok/s  shed %5.1f%%", st.tenant, st.attempted,
			float64(st.ok)/elapsed.Seconds(), 100*float64(st.shed)/float64(max(st.attempted, 1)))
		if len(st.lat) > 0 {
			line += fmt.Sprintf("  p50 %-10v p99 %-10v", pct(st.lat, 0.50).Round(time.Microsecond),
				pct(st.lat, 0.99).Round(time.Microsecond))
		}
		if st.other+st.errs > 0 {
			line += fmt.Sprintf("  (%d other non-200, %d transport errors)", st.other, st.errs)
		}
		fmt.Fprintln(os.Stdout, line)
	}
	printTenant(&g)
	for p := range polite {
		printTenant(&polite[p])
	}
	if len(g.retryAfter) > 0 {
		hints := make([]string, 0, len(g.retryAfter))
		for k := range g.retryAfter {
			hints = append(hints, k)
		}
		sort.Strings(hints)
		if len(hints) > 8 {
			hints = hints[:8]
		}
		fmt.Fprintf(os.Stdout, "greedy Retry-After hints: %d distinct, e.g. %v\n", len(g.retryAfter), hints)
	}
	if g.shed == 0 {
		fmt.Fprintln(os.Stdout, "note: greedy tenant was never shed — target has no admission control, or load is under capacity")
	}
	return nil
}

// pct reads the p-quantile of an ascending-sorted latency slice.
func pct(sorted []time.Duration, p float64) time.Duration {
	return sorted[int(p*float64(len(sorted)-1))]
}

// transientErr reports whether a transport error is worth retrying: the
// kinds a restarting or failing-over server produces (refused dials, reset
// or half-closed connections), not protocol-level failures.
func transientErr(err error) bool {
	if errors.Is(err, syscall.ECONNREFUSED) ||
		errors.Is(err, syscall.ECONNRESET) ||
		errors.Is(err, syscall.EPIPE) ||
		errors.Is(err, io.EOF) ||
		errors.Is(err, io.ErrUnexpectedEOF) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe) && (oe.Op == "dial" || oe.Op == "read")
}

// serverRetryHint reads a backpressure response's backoff hint, preferring
// the precise X-SAG-Retry-After-Ms header over Retry-After: the latter is
// RFC 9110 whole delta-seconds, so a 250ms hint reads as "1" there — 4× the
// wait the server actually asked for.
func serverRetryHint(h http.Header) (time.Duration, bool) {
	if ms := h.Get(server.RetryAfterMsHeader); ms != "" {
		if v, err := strconv.ParseInt(ms, 10, 64); err == nil && v > 0 {
			return time.Duration(v) * time.Millisecond, true
		}
	}
	if sec := h.Get("Retry-After"); sec != "" {
		if v, err := strconv.ParseInt(sec, 10, 64); err == nil && v > 0 {
			return time.Duration(v) * time.Second, true
		}
	}
	return 0, false
}

// backoffDelay is the capped exponential backoff (with jitter) before retry
// number attempt (1-based): 50ms, 100ms, ... capped at 2s, each +0–50%.
func backoffDelay(attempt int) time.Duration {
	const base, maxDelay = 50 * time.Millisecond, 2 * time.Second
	d := base << min(attempt-1, 10)
	if d > maxDelay || d <= 0 {
		d = maxDelay
	}
	return d + time.Duration(rand.Int63n(int64(d)/2+1))
}

// sleepInterruptible sleeps for d but wakes early once stop flips, so
// backed-off workers do not hold up shutdown.
func sleepInterruptible(d time.Duration, stop *atomic.Bool) {
	const step = 25 * time.Millisecond
	for d > 0 && !stop.Load() {
		s := min(d, step)
		time.Sleep(s)
		d -= s
	}
}

// maxTenants sizes the in-process server's tenant cap for an N-tenant
// fan-out: 0 keeps the shard default, which already covers small N.
func maxTenants(tenants int) int {
	if tenants > 0 {
		return tenants + 1 // the fan-out plus the default tenant
	}
	return 0
}

// selfServer builds a small in-process SAG server (fixed-rate estimator,
// quantized decision cache) so sagload can run without a sagserver target.
// tenants raises the resident-tenant cap when the fan-out needs more than
// the shard default; adm wires the admission-control knobs through.
func selfServer(budget float64, tenants int, adm admit.Config) (*httptest.Server, int, int, error) {
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 5, Employees: 30, Patients: 100, Departments: 4})
	if err != nil {
		return nil, 0, 0, err
	}
	bgE, bgP := world.NumEmployees(), world.NumPatients()
	if _, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: 5, PairsPerKind: 3, BackgroundPerDay: 1}); err != nil {
		return nil, 0, 0, err
	}
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		return nil, 0, 0, err
	}
	rates := []float64{196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27}
	srv, err := server.New(server.Config{
		World:    world,
		Taxonomy: alerts.NewTable1Taxonomy(),
		TypeIDs:  sim.AllTable1TypeIDs(),
		Instance: inst,
		Budget:   budget,
		Estimator: core.EstimatorFunc(func(time.Duration) ([]float64, error) {
			out := make([]float64, len(rates))
			copy(out, rates)
			return out, nil
		}),
		Seed:       1,
		Cache:      core.CacheConfig{Size: 64, BudgetQuantum: 1e6, RateQuantum: 1},
		Clock:      func() time.Duration { return 9 * time.Hour },
		MaxTenants: maxTenants(tenants),
		Admission:  adm,
	})
	if err != nil {
		return nil, 0, 0, err
	}
	return httptest.NewServer(srv.Handler()), bgE, bgP, nil
}
