package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/server"
)

// TestSelfServerTenantFanOut stands up the -self server sized for a
// 2-tenant fan-out and checks the load generator's contract with it: the
// fan-out tenants are admitted and answer planted-pair alerts, and a
// tenant beyond the sized cap is refused with 429 instead of silently
// landing in another tenant's cycle.
func TestSelfServerTenantFanOut(t *testing.T) {
	ts, bgE, bgP, err := selfServer(1e9, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	body, err := json.Marshal(server.AccessRequest{EmployeeID: bgE, PatientID: bgP})
	if err != nil {
		t.Fatal(err)
	}
	post := func(tenant string) int {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/access", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(server.TenantHeader, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out server.AccessResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			if !out.Alert {
				t.Fatalf("tenant %q: planted pair did not alert", tenant)
			}
		}
		return resp.StatusCode
	}

	for _, tenant := range []string{"", "load-0", "load-1"} {
		if code := post(tenant); code != http.StatusOK {
			t.Fatalf("tenant %q: status %d", tenant, code)
		}
	}
	// maxTenants(2) = 3 residents: default + the two fan-out tenants. A
	// fourth distinct tenant must be refused, not absorbed.
	if code := post("load-2"); code != http.StatusTooManyRequests {
		t.Fatalf("over-cap tenant admitted with status %d, want 429", code)
	}
}

func TestMaxTenants(t *testing.T) {
	if got := maxTenants(0); got != 0 {
		t.Fatalf("maxTenants(0) = %d, want 0 (shard default)", got)
	}
	if got := maxTenants(8); got != 9 {
		t.Fatalf("maxTenants(8) = %d, want 9", got)
	}
}

func TestPct(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := pct(lat, 0.50); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := pct(lat, 1.0); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
	if got := pct(lat[:1], 0.99); got != 1 {
		t.Fatalf("single-sample p99 = %v, want 1", got)
	}
}
