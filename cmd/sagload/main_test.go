package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/admit"
	"github.com/auditgames/sag/internal/server"
)

// TestSelfServerTenantFanOut stands up the -self server sized for a
// 2-tenant fan-out and checks the load generator's contract with it: the
// fan-out tenants are admitted and answer planted-pair alerts, and a
// tenant beyond the sized cap is refused with 429 instead of silently
// landing in another tenant's cycle.
func TestSelfServerTenantFanOut(t *testing.T) {
	ts, bgE, bgP, err := selfServer(1e9, 2, admit.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer ts.Close()

	body, err := json.Marshal(server.AccessRequest{EmployeeID: bgE, PatientID: bgP})
	if err != nil {
		t.Fatal(err)
	}
	post := func(tenant string) int {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/access", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(server.TenantHeader, tenant)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out server.AccessResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			if !out.Alert {
				t.Fatalf("tenant %q: planted pair did not alert", tenant)
			}
		}
		return resp.StatusCode
	}

	for _, tenant := range []string{"", "load-0", "load-1"} {
		if code := post(tenant); code != http.StatusOK {
			t.Fatalf("tenant %q: status %d", tenant, code)
		}
	}
	// maxTenants(2) = 3 residents: default + the two fan-out tenants. A
	// fourth distinct tenant must be refused, not absorbed.
	if code := post("load-2"); code != http.StatusTooManyRequests {
		t.Fatalf("over-cap tenant admitted with status %d, want 429", code)
	}
}

func TestMaxTenants(t *testing.T) {
	if got := maxTenants(0); got != 0 {
		t.Fatalf("maxTenants(0) = %d, want 0 (shard default)", got)
	}
	if got := maxTenants(8); got != 9 {
		t.Fatalf("maxTenants(8) = %d, want 9", got)
	}
}

// TestTransientErr pins the retry filter: transport-level failures a
// restarting or failing-over server produces are retryable, everything
// else (including nil) is not.
func TestTransientErr(t *testing.T) {
	for _, err := range []error{
		syscall.ECONNREFUSED,
		syscall.ECONNRESET,
		syscall.EPIPE,
		io.EOF,
		io.ErrUnexpectedEOF,
		fmt.Errorf("wrapped: %w", syscall.ECONNREFUSED),
		&net.OpError{Op: "dial", Err: errors.New("no route")},
		&net.OpError{Op: "read", Err: errors.New("timeout")},
		&url.Error{Op: "Post", URL: "http://x", Err: &net.OpError{Op: "dial", Err: errors.New("refused")}},
	} {
		if !transientErr(err) {
			t.Errorf("transientErr(%v) = false, want true", err)
		}
	}
	for _, err := range []error{
		nil,
		errors.New("bad request"),
		&net.OpError{Op: "write", Err: errors.New("shut down")},
		context.Canceled,
	} {
		if transientErr(err) {
			t.Errorf("transientErr(%v) = true, want false", err)
		}
	}
}

// TestBackoffDelay pins the envelope: exponential from 50ms, capped at 2s,
// jittered by at most +50%, and safe for absurd attempt numbers.
func TestBackoffDelay(t *testing.T) {
	base := 50 * time.Millisecond
	for attempt := 1; attempt <= 20; attempt++ {
		want := base << min(attempt-1, 10)
		if want > 2*time.Second || want <= 0 {
			want = 2 * time.Second
		}
		for i := 0; i < 10; i++ {
			got := backoffDelay(attempt)
			if got < want || got > want+want/2 {
				t.Fatalf("backoffDelay(%d) = %v, want in [%v, %v]", attempt, got, want, want+want/2)
			}
		}
	}
	if got := backoffDelay(1 << 30); got < 2*time.Second || got > 3*time.Second {
		t.Fatalf("huge attempt: %v outside the cap envelope", got)
	}
}

func TestSleepInterruptibleStops(t *testing.T) {
	var stop atomic.Bool
	stop.Store(true)
	t0 := time.Now()
	sleepInterruptible(time.Minute, &stop)
	if d := time.Since(t0); d > 5*time.Second {
		t.Fatalf("stopped sleep still took %v", d)
	}
}

func TestPct(t *testing.T) {
	lat := []time.Duration{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := pct(lat, 0.50); got != 5 {
		t.Fatalf("p50 = %v, want 5", got)
	}
	if got := pct(lat, 1.0); got != 10 {
		t.Fatalf("p100 = %v, want 10", got)
	}
	if got := pct(lat[:1], 0.99); got != 1 {
		t.Fatalf("single-sample p99 = %v, want 1", got)
	}
}
