// Command saggen generates a synthetic EMR access/alert dataset calibrated
// to the paper's Table 1 and writes it as JSON — the substitute for the
// medical center's private 10.75M-event log.
//
// Usage:
//
//	saggen -days 56 -background 2000 -seed 2017 -out dataset.json
//	saggen -days 56 -accesses -out full.json   # include raw access events
//
// The output carries, per day, the typed alert stream (what the game layer
// consumes) and optionally the raw access events.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/dataio"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/logstore"
	"github.com/auditgames/sag/internal/sim"
)

// writeBinaryLog streams raw access events into a logstore directory — the
// compact retention format for full-scale (≈192k accesses/day) workloads.
func writeBinaryLog(seed int64, days, background, pairs, employees, patients int, out string) error {
	if out == "-" {
		return fmt.Errorf("binlog format writes a directory; pass -out <dir>")
	}
	world, err := emr.NewWorld(emr.WorldConfig{Seed: seed, Employees: employees, Patients: patients})
	if err != nil {
		return err
	}
	gen, err := emr.NewGenerator(world, emr.GeneratorConfig{
		Seed:             seed,
		BackgroundPerDay: background,
		PairsPerKind:     pairs,
	})
	if err != nil {
		return err
	}
	w, err := logstore.NewWriter(out, 0)
	if err != nil {
		return err
	}
	start := time.Now()
	for d := 0; d < days; d++ {
		if err := w.AppendAll(gen.Day(d)); err != nil {
			w.Close()
			return err
		}
	}
	if err := w.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "saggen: wrote %d access events to %s in %v\n",
		w.Count(), out, time.Since(start).Round(time.Millisecond))
	return nil
}

// writeGameDataset emits the replayable game-level dataset (dataio schema).
func writeGameDataset(seed int64, days, background, pairs, employees, patients int, out string) error {
	ds, err := sim.BuildTable1Pipeline(sim.PipelineConfig{
		Seed:             seed,
		Days:             days,
		BackgroundPerDay: background,
		PairsPerKind:     pairs,
		WorldEmployees:   employees,
		WorldPatients:    patients,
	}, sim.AllTable1TypeIDs())
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "-" {
		w, err = os.Create(out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	return dataio.Write(w, ds)
}

type jsonAlert struct {
	Day        int     `json:"day"`
	TimeSec    float64 `json:"time_sec"`
	Type       int     `json:"type"`
	Rules      string  `json:"rules"`
	EmployeeID int     `json:"employee_id"`
	PatientID  int     `json:"patient_id"`
}

type jsonAccess struct {
	Day        int     `json:"day"`
	TimeSec    float64 `json:"time_sec"`
	EmployeeID int     `json:"employee_id"`
	PatientID  int     `json:"patient_id"`
}

type jsonDataset struct {
	Seed             int64        `json:"seed"`
	Days             int          `json:"days"`
	BackgroundPerDay int          `json:"background_per_day"`
	PairsPerKind     int          `json:"pairs_per_kind"`
	Employees        int          `json:"employees"`
	Patients         int          `json:"patients"`
	TypeDescriptions []string     `json:"type_descriptions"`
	Alerts           []jsonAlert  `json:"alerts"`
	Accesses         []jsonAccess `json:"accesses,omitempty"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "saggen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		days       = flag.Int("days", 56, "number of working days to generate")
		background = flag.Int("background", 2000, "alert-silent accesses per day")
		pairs      = flag.Int("pairs", 300, "planted relationship pairs per alert type")
		employees  = flag.Int("employees", 400, "background employees")
		patients   = flag.Int("patients", 2000, "background patients")
		seed       = flag.Int64("seed", 2017, "generator seed")
		out        = flag.String("out", "-", "output path (- for stdout)")
		accesses   = flag.Bool("accesses", false, "include raw access events (large)")
		format     = flag.String("format", "raw", "output format: raw (full records) | game (sim.Dataset schema for replay)")
	)
	flag.Parse()

	switch *format {
	case "game":
		return writeGameDataset(*seed, *days, *background, *pairs, *employees, *patients, *out)
	case "binlog":
		return writeBinaryLog(*seed, *days, *background, *pairs, *employees, *patients, *out)
	case "raw":
		// handled below
	default:
		return fmt.Errorf("unknown format %q (want raw, game, or binlog)", *format)
	}

	world, err := emr.NewWorld(emr.WorldConfig{Seed: *seed, Employees: *employees, Patients: *patients})
	if err != nil {
		return err
	}
	gen, err := emr.NewGenerator(world, emr.GeneratorConfig{
		Seed:             *seed,
		BackgroundPerDay: *background,
		PairsPerKind:     *pairs,
	})
	if err != nil {
		return err
	}
	eng, err := alerts.NewEngine(world, alerts.NewTable1Taxonomy())
	if err != nil {
		return err
	}

	ds := jsonDataset{
		Seed:             *seed,
		Days:             *days,
		BackgroundPerDay: *background,
		PairsPerKind:     *pairs,
		Employees:        world.NumEmployees(),
		Patients:         world.NumPatients(),
	}
	for k := emr.RelationKind(0); k < emr.NumKinds; k++ {
		ds.TypeDescriptions = append(ds.TypeDescriptions, k.String())
	}
	for d := 0; d < *days; d++ {
		events := gen.Day(d)
		scanned, err := eng.Scan(events)
		if err != nil {
			return err
		}
		for _, a := range scanned {
			ds.Alerts = append(ds.Alerts, jsonAlert{
				Day:        a.Day,
				TimeSec:    a.Time.Seconds(),
				Type:       a.Type,
				Rules:      a.Rules.String(),
				EmployeeID: a.EmployeeID,
				PatientID:  a.PatientID,
			})
		}
		if *accesses {
			for _, ev := range events {
				ds.Accesses = append(ds.Accesses, jsonAccess{
					Day:        ev.Day,
					TimeSec:    ev.Time.Seconds(),
					EmployeeID: ev.EmployeeID,
					PatientID:  ev.PatientID,
				})
			}
		}
	}

	var w *os.File
	if *out == "-" {
		w = os.Stdout
	} else {
		w, err = os.Create(*out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	start := time.Now()
	if err := enc.Encode(ds); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "saggen: wrote %d alerts over %d days in %v\n",
		len(ds.Alerts), *days, time.Since(start).Round(time.Millisecond))
	return nil
}
