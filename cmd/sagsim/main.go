// Command sagsim runs the paper's evaluation protocol end to end and prints
// the per-alert utility series of Figures 2 and 3.
//
// Usage:
//
//	sagsim                  # 7 alert types, budget 50 (Figure 3)
//	sagsim -single          # Same Last Name only, budget 20 (Figure 2)
//	sagsim -days 20 -history 15 -budget 30 -seed 7
//	sagsim -panels 2        # print hourly series for the first 2 test days
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"github.com/auditgames/sag/internal/dataio"
	"github.com/auditgames/sag/internal/experiments"
)

// replayDataset loads a stored game-level dataset and runs the evaluation
// protocol over it.
func replayDataset(path string, budget float64, historyDays int, seed int64) (*experiments.FigureReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ds, err := dataio.Read(f)
	if err != nil {
		return nil, err
	}
	if budget <= 0 {
		if ds.NumTypes == 1 {
			budget = 20
		} else {
			budget = 50
		}
	}
	name := fmt.Sprintf("Replay of %s (%d types, B=%g)", filepath.Base(path), ds.NumTypes, budget)
	return experiments.FigureFromDataset(ds, name, budget, historyDays, seed)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sagsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		single     = flag.Bool("single", false, "single-type experiment (Figure 2) instead of multi-type (Figure 3)")
		days       = flag.Int("days", 56, "total synthetic days")
		historyLen = flag.Int("history", 41, "history window length per group")
		background = flag.Int("background", 2000, "alert-silent accesses per day")
		pairsKind  = flag.Int("pairs", 300, "planted pairs per alert type")
		seed       = flag.Int64("seed", 2017, "seed")
		csvDir     = flag.String("csv", "", "also write one CSV per test day into this directory")
		dataset    = flag.String("dataset", "", "replay a game-level dataset JSON (saggen -format game) instead of generating one")
		plot       = flag.Bool("plot", false, "draw ASCII charts for the first four test days")
		budget     = flag.Float64("budget", 0, "audit budget when replaying a dataset (default: 20 single-type, 50 otherwise)")
	)
	flag.Parse()

	var (
		rep *experiments.FigureReport
		err error
	)
	if *dataset != "" {
		rep, err = replayDataset(*dataset, *budget, *historyLen, *seed)
	} else {
		scale := experiments.Scale{
			Days:             *days,
			HistoryDays:      *historyLen,
			BackgroundPerDay: *background,
			PairsPerKind:     *pairsKind,
			Seed:             *seed,
		}
		if *single {
			rep, err = experiments.Figure2(scale)
		} else {
			rep, err = experiments.Figure3(scale)
		}
	}
	if err != nil {
		return err
	}
	rep.Render(os.Stdout)
	if *plot {
		panels := len(rep.Days)
		if panels > 4 {
			panels = 4
		}
		for i := 0; i < panels; i++ {
			fmt.Printf("\nDay %d:\n", i+1)
			rep.Days[i].RenderASCII(os.Stdout, 72, 16)
		}
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		for i := range rep.Days {
			path := filepath.Join(*csvDir, fmt.Sprintf("day%02d.csv", i+1))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			err = rep.WriteDayCSV(f, i)
			cerr := f.Close()
			if err != nil {
				return err
			}
			if cerr != nil {
				return cerr
			}
		}
		fmt.Printf("wrote %d CSV series to %s\n", len(rep.Days), *csvDir)
	}
	fmt.Println()
	fmt.Println(rep.Summary())
	if bad := rep.ShapeChecks(); len(bad) > 0 {
		fmt.Printf("shape check FAILURES (%d):\n", len(bad))
		for _, b := range bad {
			fmt.Println("  " + b)
		}
		return fmt.Errorf("%d shape checks failed", len(bad))
	}
	fmt.Println("shape checks: PASS (OSSP ≥ online SSE ≥ offline SSE in the mean)")
	return nil
}
