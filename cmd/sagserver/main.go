// Command sagserver runs the Signaling Audit Game as an HTTP service over
// a synthetic hospital — the deployment shape the paper describes: the EMR
// front end posts every access; the service answers, in real time, whether
// to show the "this access may be investigated" warning.
//
// Usage:
//
//	sagserver -addr :8080 -budget 50 -seed 2017
//
// Then:
//
//	curl -s -X POST localhost:8080/v1/access \
//	     -d '{"employee_id": 400, "patient_id": 2000}'
//	curl -s localhost:8080/v1/status
//	curl -s -X POST localhost:8080/v1/cycle/close -d '{}'
//
// The service estimates future alert volumes from a simulated 41-day
// history of the same synthetic world, with the paper's knowledge-rollback
// stabilizer.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/auditgames/sag/internal/admit"
	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/history"
	"github.com/auditgames/sag/internal/server"
	"github.com/auditgames/sag/internal/sim"
	"github.com/auditgames/sag/internal/wal"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("sagserver: ", err)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		debugAddr = flag.String("debug-addr", "", "optional debug listen address serving net/http/pprof and /metrics (e.g. localhost:6060)")
		budget    = flag.Float64("budget", 50, "audit budget for the current cycle")
		seed      = flag.Int64("seed", 2017, "world/engine seed")
		histDays  = flag.Int("history", 41, "days of simulated history to fit arrival curves on")
		employees = flag.Int("employees", 400, "background employees in the synthetic world")
		patients  = flag.Int("patients", 2000, "background patients in the synthetic world")

		cacheSize    = flag.Int("cache-size", 0, "decision-cache capacity (0 disables caching)")
		cacheBudgetQ = flag.Float64("cache-budget-quantum", 0, "budget bucket width for cache keys (0 = exact)")
		cacheRateQ   = flag.Float64("cache-rate-quantum", 0, "future-rate bucket width for cache keys (0 = exact)")

		decisionDeadline = flag.Duration("decision-deadline", 0, "per-decision solve deadline; slower decisions degrade down the fallback ladder (0 disables)")
		requestTimeout   = flag.Duration("request-timeout", 10*time.Second, "per-request HTTP timeout (0 disables)")
		shutdownGrace    = flag.Duration("shutdown-grace", 10*time.Second, "time in-flight requests get to finish on SIGINT/SIGTERM")

		dataDir         = flag.String("data-dir", "", "enable durability: per-tenant write-ahead journals and snapshots live under this directory, and restarts recover the exact engine state")
		fsyncMode       = flag.String("fsync", "always", "journal durability policy with -data-dir: always (fsync before every ack), interval (group fsync on a timer), none (OS page cache only)")
		snapshotEvery   = flag.Int("snapshot-every", 0, "journal records between automatic per-tenant snapshots with -data-dir (0 = default)")
		walSegmentBytes = flag.Int64("wal-segment-bytes", 0, "journal segment roll size in bytes with -data-dir (0 = default; drills shrink it to force rolls)")
		diskBudget      = flag.Int64("disk-budget", 0, "box-wide journal disk budget in bytes with -data-dir: a background compactor snapshots-then-prunes tenants to stay under it, and tenants with nothing to reclaim answer 507 while over budget (0 disables retention)")
		compactInterval = flag.Duration("compact-interval", 0, "retention compactor scan cadence with -disk-budget (0 = default)")
		fixedClock      = flag.Duration("fixed-clock", -1, "pin the cycle clock to a fixed offset, e.g. 9h (deterministic runs and crash drills; negative = wall clock)")

		follow   = flag.String("follow", "", "run as a hot standby replicating from this primary base URL (e.g. http://127.0.0.1:8080); requires -data-dir, mutations answer 503 until POST /v1/admin/promote")
		readyLag = flag.Int("ready-lag", 0, "with -follow: /v1/readyz reports ready once every tenant's replication lag is at or below this many records")

		tenants      = flag.Int("tenants", 0, "pre-create tenant-1..tenant-N at startup (others are created on first use)")
		maxTenants   = flag.Int("max-tenants", 0, "resident tenant cap; requests for new tenants beyond it answer 429 (0 = default)")
		shardWorkers = flag.Int("shard-workers", 0, "box-wide candidate-LP fan-out bound shared by every tenant's solves (0 = GOMAXPROCS)")

		rate        = flag.Float64("rate", 0, "per-tenant admission rate in req/s; over-rate requests answer 503 with a computed Retry-After (0 disables rate limiting)")
		burst       = flag.Float64("burst", 0, "per-tenant token-bucket depth with -rate (0 = max(1, rate))")
		maxInflight = flag.Int("max-inflight", 0, "box-wide cap on concurrently admitted mutations; excess requests queue or shed (0 disables the cap and the queue)")
		queueDepth  = flag.Int("queue-depth", 0, "box-wide admission queue bound with -max-inflight; a full queue sheds with 503 (0 = no queue: shed immediately when saturated)")
	)
	flag.Parse()

	fsync, err := wal.ParseFsyncPolicy(*fsyncMode)
	if err != nil {
		return err
	}

	log.Printf("building synthetic world (%d employees, %d patients)...", *employees, *patients)
	world, err := emr.NewWorld(emr.WorldConfig{Seed: *seed, Employees: *employees, Patients: *patients})
	if err != nil {
		return err
	}
	gen, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: *seed, BackgroundPerDay: 500, PairsPerKind: 120})
	if err != nil {
		return err
	}
	taxonomy := alerts.NewTable1Taxonomy()
	detector, err := alerts.NewEngine(world, taxonomy)
	if err != nil {
		return err
	}

	log.Printf("fitting arrival curves on %d days of simulated history...", *histDays)
	typeIDs := sim.AllTable1TypeIDs()
	index := make(map[int]int, len(typeIDs))
	for i, id := range typeIDs {
		index[id] = i
	}
	var recs []history.Record
	for d := 0; d < *histDays; d++ {
		scanned, err := detector.Scan(gen.Day(d))
		if err != nil {
			return err
		}
		for _, a := range scanned {
			if idx, ok := index[a.Type]; ok {
				recs = append(recs, history.Record{Day: d, Type: idx, Time: a.Time})
			}
		}
	}
	curves, err := history.NewCurves(recs, len(typeIDs), *histDays)
	if err != nil {
		return err
	}
	rollback, err := history.NewRollback(curves, history.DefaultRollbackThreshold)
	if err != nil {
		return err
	}

	inst, err := sim.Table1Instance(typeIDs)
	if err != nil {
		return err
	}
	// The instance (and therefore the candidate-LP worker bound) is shared
	// by every tenant's engine: the flag caps the whole box, not one tenant.
	inst.SetWorkers(*shardWorkers)
	cfg := server.Config{
		World:     world,
		Taxonomy:  taxonomy,
		TypeIDs:   typeIDs,
		Instance:  inst,
		Budget:    *budget,
		Estimator: rollback,
		Seed:      *seed,
		Cache: core.CacheConfig{
			Size:          *cacheSize,
			BudgetQuantum: *cacheBudgetQ,
			RateQuantum:   *cacheRateQ,
		},
		DecisionDeadline: *decisionDeadline,
		RequestTimeout:   *requestTimeout,
		MaxTenants:       *maxTenants,
		Admission: admit.Config{
			Rate:        *rate,
			Burst:       *burst,
			MaxInflight: *maxInflight,
			QueueDepth:  *queueDepth,
		},
		DataDir:          *dataDir,
		Fsync:            fsync,
		SnapshotEvery:    *snapshotEvery,
		SegmentBytes:     *walSegmentBytes,
		DiskBudgetBytes:  *diskBudget,
		CompactInterval:  *compactInterval,
		FollowPrimary:    *follow,
		FollowerReadyLag: *readyLag,
		Logf:             log.Printf,
	}
	if *fixedClock >= 0 {
		at := *fixedClock
		cfg.Clock = func() time.Duration { return at }
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if *dataDir != "" {
		log.Printf("durability on: journals under %s (fsync=%s), recovered tenants restore on first use", *dataDir, fsync)
	}
	if *dataDir != "" && *diskBudget > 0 {
		log.Printf("retention on: disk budget %d bytes, compaction every %v (0 = default); over-budget tenants with nothing to reclaim answer 507", *diskBudget, *compactInterval)
	}
	if cfg.Admission.Enabled() {
		log.Printf("admission control on: rate=%g burst=%g max-inflight=%d queue-depth=%d (shed answers 503 with computed Retry-After)",
			*rate, *burst, *maxInflight, *queueDepth)
	}
	for i := 1; i <= *tenants; i++ {
		id := fmt.Sprintf("tenant-%d", i)
		if err := srv.EnsureTenant(id); err != nil {
			return fmt.Errorf("pre-creating %s: %w", id, err)
		}
	}
	if *tenants > 0 {
		log.Printf("pre-created %d tenants (tenant-1..tenant-%d)", *tenants, *tenants)
	}

	// Side listener for operators: pprof profiles plus a second mount of
	// the Prometheus registry, so profiling traffic never competes with
	// the decision path on the main listener. It shares the graceful
	// lifecycle with the main listener — both drain and stop together.
	var dbg http.Handler
	if *debugAddr != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		mux.Handle("/metrics", srv.Metrics().Handler())
		dbg = mux
	}

	fmt.Printf("sagserver listening on %s (budget %g, %d alert types)\n", *addr, *budget, len(typeIDs))
	fmt.Println("  POST /v1/access {employee_id, patient_id} → {alert, warn, ...}")
	fmt.Println("  POST /v1/quit {employee_id}")
	fmt.Println("  POST /v1/cycle/close {} · POST /v1/cycle/new {budget} · GET /v1/cycle/summary")
	fmt.Println("  GET /v1/status · GET /v1/metrics · GET /v1/healthz · GET /v1/readyz")
	fmt.Println("  POST /v1/admin/snapshot {tenant?} (with -data-dir)")
	fmt.Printf("  multi-tenant: route with the %s header or a \"tenant\" body field\n", server.TenantHeader)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *follow != "" {
		if err := srv.StartFollowing(ctx); err != nil {
			return err
		}
		log.Printf("standby: replicating from %s; mutations answer 503 until POST /v1/admin/promote", *follow)
	}
	return server.Run(ctx, server.RunConfig{
		Addr:          *addr,
		Handler:       srv.Handler(),
		DebugAddr:     *debugAddr,
		DebugHandler:  dbg,
		ShutdownGrace: *shutdownGrace,
		OnDrainStart:  func() { srv.SetReady(false) },
		OnShutdown: func() {
			sums := srv.CycleSummaries()
			for _, id := range srv.Tenants() {
				s := sums[id]
				log.Printf("final cycle summary [%s]: %d alerts, %d warnings, %d SAG-engaged, %.3f budget spent",
					id, s.Alerts, s.Warnings, s.SAGEngaged, s.BudgetSpent)
			}
			// With -data-dir this snapshots every tenant and seals the
			// journals, making SIGTERM indistinguishable from a clean
			// restart.
			if err := srv.Close(); err != nil {
				log.Printf("sealing journals: %v", err)
			}
		},
	})
}
