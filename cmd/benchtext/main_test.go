package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunExtractsOutputEvents(t *testing.T) {
	in := strings.Join([]string{
		`{"Action":"start","Package":"github.com/auditgames/sag"}`,
		`{"Action":"output","Package":"github.com/auditgames/sag","Output":"goos: linux\n"}`,
		`{"Action":"output","Package":"github.com/auditgames/sag","Output":"BenchmarkOSSPDecision-4   \t     200\t     71041 ns/op\n"}`,
		`not json at all`,
		`{"Action":"pass","Package":"github.com/auditgames/sag"}`,
		``,
	}, "\n")
	var out bytes.Buffer
	if err := run(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	want := "goos: linux\nBenchmarkOSSPDecision-4   \t     200\t     71041 ns/op\n"
	if out.String() != want {
		t.Fatalf("got %q, want %q", out.String(), want)
	}
}

func TestRoundTripThroughBenchgateFormat(t *testing.T) {
	// The reconstructed text must be parseable as benchmark lines: field 0
	// starts with Benchmark, field 3 is ns/op.
	in := `{"Action":"output","Output":"BenchmarkX-8 100 500 ns/op 3 allocs/op\n"}`
	var out bytes.Buffer
	if err := run(strings.NewReader(in), &out); err != nil {
		t.Fatal(err)
	}
	fields := strings.Fields(out.String())
	if len(fields) < 4 || fields[3] != "ns/op" {
		t.Fatalf("reconstructed line not in benchmark format: %q", out.String())
	}
}
