// Command benchtext converts `go test -json` (test2json) output back into
// the plain benchmark text format benchstat and benchgate consume. The CI
// bench job records the full JSON stream as the BENCH_pr artifact and uses
// this tool to recover the text view for comparison.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// event is the subset of test2json's record the conversion needs.
type event struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtext:", err)
		os.Exit(1)
	}
}

func run(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	out := bufio.NewWriter(w)
	defer out.Flush()
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var ev event
		if err := json.Unmarshal(line, &ev); err != nil {
			// Tolerate interleaved non-JSON noise (panics, build output).
			continue
		}
		if ev.Action == "output" {
			if _, err := io.WriteString(out, ev.Output); err != nil {
				return err
			}
		}
	}
	return sc.Err()
}
