// Command sagdrill is the crash and failover drill for sagserver's
// durability layer: it proves that kill -9 at an arbitrary point loses
// nothing the server ever acknowledged, and that the surviving state is
// bit-identical to a run that was never interrupted.
//
// Every mode first executes a deterministic request script uninterrupted
// against its own sagserver (the golden run), then repeats it under fire:
//
//   - -mode crash: the server is SIGKILLed mid-script (with one request in
//     flight), restarted on the same data dir, and the script resumes from
//     exactly the point the recovered /v1/status proves was applied.
//
//   - -mode failover: a primary ships its WAL to a -follow standby. The
//     drill first kills the standby, advances the primary past snapshot
//     pruning so the standby's resume cursor is gapped, restarts it, and
//     requires a snapshot re-seed (not divergence). Then, caught up again,
//     the primary is SIGKILLed with a request in flight, the standby is
//     promoted via /v1/admin/promote, and the script resumes against it.
//
//   - -mode retention: the primary runs under a tiny -disk-budget with a
//     fast compactor while a standby tails it live. The script (padded with
//     cheap benign writes) forces at least three snapshot-then-prune rounds
//     under the connected follower; retention leases must keep the stream
//     intact — the standby reaches lag 0 with zero re-seeds (its mirror is
//     never wiped), box-wide journal bytes stay bounded, and the promoted
//     standby byte-compares against the golden run.
//
// Both runs then answer /v1/status, /v1/cycle/summary, and /v1/cycle/close.
// The drill fails unless all three responses match byte for byte, and
// unless the surviving state accounts for every acknowledged request (the
// kill may cost at most the single un-acknowledged in-flight request).
// -artifacts writes the diverging responses to files for CI upload.
//
// Usage:
//
//	go build -o sagserver ./cmd/sagserver
//	go run ./cmd/sagdrill -server ./sagserver -seed "$RANDOM"
//	go run ./cmd/sagdrill -server ./sagserver -mode failover -seed "$RANDOM"
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("sagdrill: ", err)
	}
}

// op is one scripted request: an access pair or an employee quitting.
type op struct {
	quit     bool
	employee int
	patient  int
}

type status struct {
	Accesses int64 `json:"accesses"`
	Quits    int64 `json:"quits"`
}

// config is the drill's parameter set; main fills it from flags, tests fill
// it directly.
type config struct {
	serverBin string
	mode      string
	seed      int64
	requests  int
	employees int
	patients  int
	history   int
	startWait time.Duration
	artifacts string
}

func run() error {
	var cfg config
	flag.StringVar(&cfg.serverBin, "server", "./sagserver", "path to the sagserver binary under test")
	flag.StringVar(&cfg.mode, "mode", "crash", "drill mode: crash (kill + restart on the same data dir), failover (kill the primary, promote a WAL-shipping standby), or retention (compaction under a live follower, then promote)")
	flag.Int64Var(&cfg.seed, "seed", 1, "drill seed: request script, kill point, and kill timing all derive from it")
	flag.IntVar(&cfg.requests, "requests", 40, "access requests in the script (plus one quit)")
	flag.IntVar(&cfg.employees, "employees", 120, "world size passed to the server (first planted pair = employees/patients)")
	flag.IntVar(&cfg.patients, "patients", 600, "world size passed to the server")
	flag.IntVar(&cfg.history, "history", 8, "days of simulated history the server fits on (drill speed knob)")
	flag.DurationVar(&cfg.startWait, "start-wait", 3*time.Minute, "how long to wait for each server boot")
	flag.StringVar(&cfg.artifacts, "artifacts", "", "on divergence, write the golden and actual responses under this directory (for CI upload)")
	flag.Parse()
	return drillRun(cfg)
}

func drillRun(cfg config) error {
	if cfg.mode == "" {
		cfg.mode = "crash"
	}
	log.Printf("drill seed %d (mode %s)", cfg.seed, cfg.mode)

	if cfg.mode == "retention" && cfg.requests > 12 {
		// Alert-heavy ops grow the tenant snapshot (the cycle's alert list
		// rides in it), and the retention budget must stay above one
		// snapshot for the tenant to keep reclaiming. Keep the alert prefix
		// short; the disk pressure comes from the benign filler instead.
		log.Printf("retention mode: capping -requests %d to 12 (snapshot must fit the disk budget)", cfg.requests)
		cfg.requests = 12
	}
	script := buildScript(cfg.seed, cfg.requests, cfg.employees, cfg.patients)
	if cfg.mode == "retention" {
		// Benign accesses journal a handful of bytes each and leave the
		// snapshot alone: sustained cheap writes against a tiny budget is
		// exactly the workload that forces repeated compaction rounds.
		for i := 0; i < retentionFillerOps; i++ {
			script = append(script, op{employee: 0, patient: 0})
		}
	}
	rng := rand.New(rand.NewSource(cfg.seed ^ 0x9d1))
	kill := 1 + rng.Intn(len(script)-1)

	goldenDir, err := os.MkdirTemp("", "sagdrill-golden-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(goldenDir)

	d := &drill{
		bin:       cfg.serverBin,
		employees: cfg.employees,
		patients:  cfg.patients,
		history:   cfg.history,
		startWait: cfg.startWait,
		client:    &http.Client{Timeout: 30 * time.Second},
	}

	log.Printf("golden run: %d ops, uninterrupted", len(script))
	golden, err := d.goldenRun(goldenDir, script)
	if err != nil {
		return fmt.Errorf("golden run: %w", err)
	}

	var survived capture
	var what string
	switch cfg.mode {
	case "crash":
		crashDir, err := os.MkdirTemp("", "sagdrill-crash-*")
		if err != nil {
			return err
		}
		defer os.RemoveAll(crashDir)
		log.Printf("crash run: SIGKILL with op %d/%d in flight", kill, len(script))
		survived, err = d.crashRun(crashDir, script, kill, rng.Intn(8))
		if err != nil {
			return fmt.Errorf("crash run: %w", err)
		}
		what = "kill -9 recovery"
	case "failover":
		log.Printf("failover run: SIGKILL the primary with op %d/%d in flight, promote the standby", kill, len(script))
		survived, err = d.failoverRun(script, kill, rng.Intn(8))
		if err != nil {
			return fmt.Errorf("failover run: %w", err)
		}
		what = "standby promotion"
	case "retention":
		log.Printf("retention run: %d ops against a %d-byte disk budget with a live follower", len(script), retentionDiskBudget)
		survived, err = d.retentionRun(script)
		if err != nil {
			return fmt.Errorf("retention run: %w", err)
		}
		what = "retention under a live follower"
	default:
		return fmt.Errorf("unknown -mode %q (want crash, failover, or retention)", cfg.mode)
	}

	for _, c := range []struct{ name, file, want, got string }{
		{"/v1/status", "status", golden.status, survived.status},
		{"/v1/cycle/summary", "summary", golden.summary, survived.summary},
		{"/v1/cycle/close", "close", golden.close_, survived.close_},
	} {
		if c.want != c.got {
			dumpDivergence(cfg.artifacts, cfg.mode, c.file, c.want, c.got)
			return fmt.Errorf("%s diverged after %s:\n golden: %s\n actual: %s", c.name, what, c.want, c.got)
		}
		log.Printf("%s: surviving run matches golden run byte for byte", c.name)
	}
	fmt.Printf("sagdrill: PASS — %s is bit-identical to the uninterrupted run\n", what)
	return nil
}

// dumpDivergence writes a diverging response pair under the artifacts dir so
// CI can upload it; a no-op when no directory was requested.
func dumpDivergence(dir, mode, name, golden, actual string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Printf("artifacts: %v", err)
		return
	}
	for suffix, body := range map[string]string{"golden": golden, "actual": actual} {
		path := filepath.Join(dir, fmt.Sprintf("%s-%s-%s.json", mode, name, suffix))
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			log.Printf("artifacts: %v", err)
		}
	}
}

// buildScript generates the deterministic op sequence: planted-pair accesses
// across three alert kinds, ~10% benign accesses, and one mid-script quit of
// the first planted employee (so later accesses by it take the flagged
// fast path — a different journal record kind).
func buildScript(seed int64, n, employees, patients int) []op {
	// Planted pairs per sagserver's generator: kind k's first pair is
	// (employees + 120·k, patients + 120·k).
	const stride = 120
	rng := rand.New(rand.NewSource(seed ^ 0x5c7))
	var script []op
	for i := 0; i < n; i++ {
		if i == n/2 {
			script = append(script, op{quit: true, employee: employees})
		}
		if rng.Float64() < 0.1 {
			script = append(script, op{employee: 0, patient: 0})
			continue
		}
		k := rng.Intn(3)
		script = append(script, op{employee: employees + stride*k, patient: patients + stride*k})
	}
	return script
}

type drill struct {
	bin       string
	employees int
	patients  int
	history   int
	startWait time.Duration
	client    *http.Client
}

// capture is the durable-state fingerprint of a run.
type capture struct {
	status  string
	summary string
	close_  string
}

// start launches one sagserver over dir and waits until it serves; extra
// flags (replication roles, segment sizing) append after the common set.
func (d *drill) start(dir string, port int, extra ...string) (*exec.Cmd, string, error) {
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	args := []string{
		"-addr", addr,
		"-data-dir", dir,
		"-fsync", "always",
		"-fixed-clock", "9h",
		"-seed", "2017",
		"-employees", fmt.Sprint(d.employees),
		"-patients", fmt.Sprint(d.patients),
		"-history", fmt.Sprint(d.history),
	}
	args = append(args, extra...)
	cmd := exec.Command(d.bin, args...)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	base := "http://" + addr
	deadline := time.Now().Add(d.startWait)
	for {
		resp, err := d.client.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, base, nil
			}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return nil, "", fmt.Errorf("server at %s not ready within %v", addr, d.startWait)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

// apply sends one op and requires acknowledgement.
func (d *drill) apply(base string, o op) error {
	path, body := "/v1/access", fmt.Sprintf(`{"employee_id":%d,"patient_id":%d}`, o.employee, o.patient)
	if o.quit {
		path, body = "/v1/quit", fmt.Sprintf(`{"employee_id":%d}`, o.employee)
	}
	resp, err := d.client.Post(base+path, "application/json", bytes.NewBufferString(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, raw)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

func (d *drill) get(base, path string) (string, error) {
	resp, err := d.client.Get(base + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, raw)
	}
	return string(raw), nil
}

// fingerprint captures status, summary, and the cycle-close plan.
func (d *drill) fingerprint(base string) (capture, error) {
	var c capture
	var err error
	if c.status, err = d.get(base, "/v1/status"); err != nil {
		return c, err
	}
	if c.summary, err = d.get(base, "/v1/cycle/summary"); err != nil {
		return c, err
	}
	resp, err := d.client.Post(base+"/v1/cycle/close", "application/json", bytes.NewBufferString("{}"))
	if err != nil {
		return c, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return c, err
	}
	if resp.StatusCode != http.StatusOK {
		return c, fmt.Errorf("/v1/cycle/close: status %d: %s", resp.StatusCode, raw)
	}
	c.close_ = string(raw)
	return c, nil
}

func (d *drill) goldenRun(dir string, script []op) (capture, error) {
	port, err := freePort()
	if err != nil {
		return capture{}, err
	}
	cmd, base, err := d.start(dir, port)
	if err != nil {
		return capture{}, err
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()
	for i, o := range script {
		if err := d.apply(base, o); err != nil {
			return capture{}, fmt.Errorf("op %d: %w", i, err)
		}
	}
	return d.fingerprint(base)
}

func (d *drill) crashRun(dir string, script []op, kill, jitterMS int) (capture, error) {
	port, err := freePort()
	if err != nil {
		return capture{}, err
	}
	cmd, base, err := d.start(dir, port)
	if err != nil {
		return capture{}, err
	}
	for i := 0; i < kill; i++ {
		if err := d.apply(base, script[i]); err != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return capture{}, fmt.Errorf("op %d before kill: %w", i, err)
		}
	}
	// Fire op `kill` and SIGKILL the server while it is (maybe) mid-request:
	// the op lands iff its journal record hit disk before the kill.
	inflight := make(chan struct{})
	go func() {
		defer close(inflight)
		_ = d.apply(base, script[kill])
	}()
	time.Sleep(time.Duration(jitterMS) * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		return capture{}, err
	}
	_ = cmd.Wait()
	<-inflight

	// Restart over the same data dir and ask the recovered state how far
	// the script got. FsyncAlways means every acknowledged op is durable:
	// fewer than `kill` applied ops is data loss, more than kill+1 is
	// corruption. The in-flight op alone may go either way.
	cmd2, base2, err := d.start(dir, port)
	if err != nil {
		return capture{}, fmt.Errorf("restart: %w", err)
	}
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	raw, err := d.get(base2, "/v1/status")
	if err != nil {
		return capture{}, fmt.Errorf("recovered status: %w", err)
	}
	var st status
	if err := json.Unmarshal([]byte(raw), &st); err != nil {
		return capture{}, err
	}
	applied := int(st.Accesses + st.Quits)
	if applied < kill || applied > kill+1 {
		return capture{}, fmt.Errorf("recovered %d applied ops; %d were acknowledged before the kill (durability violated)", applied, kill)
	}
	log.Printf("recovered %d/%d ops (in-flight op %s); resuming", applied, len(script),
		map[bool]string{true: "survived", false: "lost"}[applied == kill+1])
	for i := applied; i < len(script); i++ {
		if err := d.apply(base2, script[i]); err != nil {
			return capture{}, fmt.Errorf("op %d after restart: %w", i, err)
		}
	}
	return d.fingerprint(base2)
}

// failoverRun drives the script at a primary that ships its WAL to a hot
// standby, and proves two things on the way to promotion:
//
//  1. a standby that comes back with a pruned (gapped) resume cursor
//     re-seeds itself from the primary's snapshot instead of diverging;
//  2. SIGKILLing the primary with one request in flight and promoting the
//     standby loses nothing the primary ever acknowledged and replicated.
//
// The primary runs with tiny WAL segments so a handful of admin snapshots
// is enough to prune the segments the dead standby's cursor points into.
func (d *drill) failoverRun(script []op, kill, jitterMS int) (capture, error) {
	primDir, err := os.MkdirTemp("", "sagdrill-primary-*")
	if err != nil {
		return capture{}, err
	}
	defer os.RemoveAll(primDir)
	standbyDir, err := os.MkdirTemp("", "sagdrill-standby-*")
	if err != nil {
		return capture{}, err
	}
	defer os.RemoveAll(standbyDir)

	primPort, err := freePort()
	if err != nil {
		return capture{}, err
	}
	standbyPort, err := freePort()
	if err != nil {
		return capture{}, err
	}

	prim, primBase, err := d.start(primDir, primPort, "-wal-segment-bytes", "512")
	if err != nil {
		return capture{}, fmt.Errorf("primary: %w", err)
	}
	defer func() {
		_ = prim.Process.Kill()
		_ = prim.Wait()
	}()
	standbyFlags := []string{"-follow", primBase, "-ready-lag", "0"}
	standby, standbyBase, err := d.start(standbyDir, standbyPort, standbyFlags...)
	if err != nil {
		return capture{}, fmt.Errorf("standby: %w", err)
	}
	defer func() {
		_ = standby.Process.Kill()
		_ = standby.Wait()
	}()

	// Phase 1: tail live for the first half of the pre-kill script, then
	// kill the standby and advance the primary past snapshot pruning so
	// the standby's resume cursor points into deleted segments.
	firstHalf := max(1, kill/2)
	for i := 0; i < firstHalf; i++ {
		if err := d.apply(primBase, script[i]); err != nil {
			return capture{}, fmt.Errorf("op %d at primary: %w", i, err)
		}
	}
	if err := d.waitCaughtUp(standbyBase, d.startWait); err != nil {
		return capture{}, fmt.Errorf("standby catch-up (live tail): %w", err)
	}
	if err := standby.Process.Kill(); err != nil {
		return capture{}, err
	}
	_ = standby.Wait()
	_, standbyMax, err := segRange(standbyDir)
	if err != nil {
		return capture{}, fmt.Errorf("dead standby segments: %w", err)
	}
	pruned := false
	for i := 0; i < 100; i++ {
		if err := d.snapshot(primBase); err != nil {
			return capture{}, fmt.Errorf("snapshot %d at primary: %w", i, err)
		}
		primMin, _, err := segRange(primDir)
		if err != nil {
			return capture{}, fmt.Errorf("primary segments: %w", err)
		}
		if primMin > standbyMax {
			pruned = true
			break
		}
	}
	if !pruned {
		return capture{}, fmt.Errorf("primary never pruned past the standby's cursor (standby max segment %d)", standbyMax)
	}

	// Phase 2: the standby comes back with a gapped cursor; the only legal
	// recovery is wiping its mirror and re-seeding from the primary's
	// snapshot, which its fresh segment numbers prove happened.
	standby, standbyBase, err = d.start(standbyDir, standbyPort, standbyFlags...)
	if err != nil {
		return capture{}, fmt.Errorf("standby restart: %w", err)
	}
	defer func() {
		_ = standby.Process.Kill()
		_ = standby.Wait()
	}()
	if err := d.waitCaughtUp(standbyBase, d.startWait); err != nil {
		return capture{}, fmt.Errorf("standby catch-up (after re-seed): %w", err)
	}
	reseedMin, _, err := segRange(standbyDir)
	if err != nil {
		return capture{}, fmt.Errorf("re-seeded standby segments: %w", err)
	}
	if reseedMin <= standbyMax {
		return capture{}, fmt.Errorf("standby min segment %d did not advance past its pre-gap max %d: re-seed did not happen", reseedMin, standbyMax)
	}
	log.Printf("standby re-seeded from snapshot (segments now start at %d, were ≤ %d)", reseedMin, standbyMax)

	// Phase 3: finish the acknowledged prefix, confirm zero lag, then kill
	// the primary with op `kill` in flight and promote the standby.
	for i := firstHalf; i < kill; i++ {
		if err := d.apply(primBase, script[i]); err != nil {
			return capture{}, fmt.Errorf("op %d at primary: %w", i, err)
		}
	}
	if err := d.waitCaughtUp(standbyBase, d.startWait); err != nil {
		return capture{}, fmt.Errorf("standby catch-up (pre-kill): %w", err)
	}
	inflight := make(chan struct{})
	go func() {
		defer close(inflight)
		_ = d.apply(primBase, script[kill])
	}()
	time.Sleep(time.Duration(jitterMS) * time.Millisecond)
	if err := prim.Process.Kill(); err != nil {
		return capture{}, err
	}
	_ = prim.Wait()
	<-inflight

	if err := d.promote(standbyBase); err != nil {
		return capture{}, fmt.Errorf("promote: %w", err)
	}
	raw, err := d.get(standbyBase, "/v1/status")
	if err != nil {
		return capture{}, fmt.Errorf("promoted status: %w", err)
	}
	var st status
	if err := json.Unmarshal([]byte(raw), &st); err != nil {
		return capture{}, err
	}
	applied := int(st.Accesses + st.Quits)
	if applied < kill || applied > kill+1 {
		return capture{}, fmt.Errorf("promoted standby holds %d applied ops; %d were acknowledged and replicated before the kill (durability violated)", applied, kill)
	}
	log.Printf("promoted standby holds %d/%d ops (in-flight op %s); resuming against it", applied, len(script),
		map[bool]string{true: "survived", false: "lost"}[applied == kill+1])
	for i := applied; i < len(script); i++ {
		if err := d.apply(standbyBase, script[i]); err != nil {
			return capture{}, fmt.Errorf("op %d after promotion: %w", i, err)
		}
	}
	return d.fingerprint(standbyBase)
}

// Retention drill parameters. The budget must sit above one tenant snapshot
// (so the tenant can always reclaim) yet far below the filler's total write
// volume (so the compactor is forced through several rounds).
const (
	retentionDiskBudget = 8 << 10
	retentionFillerOps  = 5000
)

// retentionRun drives the whole script at a primary running under a tiny
// disk budget with a fast background compactor, while a standby tails the
// stream live the entire time. It fails unless:
//
//   - the compactor completes at least 3 snapshot-then-prune rounds (the
//     primary's oldest WAL segment advances at least 3 times);
//   - box-wide journal bytes stay bounded throughout and settle under twice
//     the budget;
//   - the standby reaches lag 0 with ZERO re-seeds — its mirror is never
//     wiped, proven by its oldest segment never moving (retention leases
//     must pin the stream's cursor so pruning never gaps a connected
//     follower);
//   - after killing the primary and promoting the standby, the surviving
//     state byte-compares against the golden run (checked by the caller).
func (d *drill) retentionRun(script []op) (capture, error) {
	primDir, err := os.MkdirTemp("", "sagdrill-retain-primary-*")
	if err != nil {
		return capture{}, err
	}
	defer os.RemoveAll(primDir)
	standbyDir, err := os.MkdirTemp("", "sagdrill-retain-standby-*")
	if err != nil {
		return capture{}, err
	}
	defer os.RemoveAll(standbyDir)

	primPort, err := freePort()
	if err != nil {
		return capture{}, err
	}
	standbyPort, err := freePort()
	if err != nil {
		return capture{}, err
	}

	prim, primBase, err := d.start(primDir, primPort,
		"-wal-segment-bytes", "512",
		"-disk-budget", fmt.Sprint(retentionDiskBudget),
		"-compact-interval", "100ms")
	if err != nil {
		return capture{}, fmt.Errorf("primary: %w", err)
	}
	defer func() {
		_ = prim.Process.Kill()
		_ = prim.Wait()
	}()
	standby, standbyBase, err := d.start(standbyDir, standbyPort, "-follow", primBase, "-ready-lag", "0")
	if err != nil {
		return capture{}, fmt.Errorf("standby: %w", err)
	}
	defer func() {
		_ = standby.Process.Kill()
		_ = standby.Wait()
	}()
	// Apply a small prefix before the first catch-up check: a follower of a
	// zero-record journal reports lag 1 until the first record ships.
	prefix := min(8, len(script))
	for i := 0; i < prefix; i++ {
		if err := d.apply(primBase, script[i]); err != nil {
			return capture{}, fmt.Errorf("op %d at primary: %w", i, err)
		}
	}
	if err := d.waitCaughtUp(standbyBase, d.startWait); err != nil {
		return capture{}, fmt.Errorf("standby initial catch-up: %w", err)
	}
	standbyLo, _, err := segRange(standbyDir)
	if err != nil {
		return capture{}, fmt.Errorf("standby segments: %w", err)
	}

	// Drive the script while the compactor churns underneath; count rounds
	// by watching the primary's oldest segment advance, and bound the
	// journal throughout (4× allows the transient of a fresh snapshot
	// landing before the round's prune).
	rounds := 0
	lastLo, _, err := segRange(primDir)
	if err != nil {
		return capture{}, fmt.Errorf("primary segments: %w", err)
	}
	for i := prefix; i < len(script); i++ {
		if err := d.apply(primBase, script[i]); err != nil {
			return capture{}, fmt.Errorf("op %d at primary: %w", i, err)
		}
		if i%100 == 99 {
			lo, _, err := segRange(primDir)
			if err != nil {
				return capture{}, fmt.Errorf("primary segments: %w", err)
			}
			if lo > lastLo {
				rounds++
				lastLo = lo
			}
			if got := journalBytes(primDir); got > 4*retentionDiskBudget {
				return capture{}, fmt.Errorf("journal grew to %d bytes against a %d-byte budget: compaction not keeping up", got, retentionDiskBudget)
			}
		}
	}
	// Let the compactor settle, then require the steady state the budget
	// promises and the rounds the drill is meant to force.
	time.Sleep(time.Second)
	if lo, _, err := segRange(primDir); err == nil && lo > lastLo {
		rounds++
		lastLo = lo
	}
	if rounds < 3 {
		return capture{}, fmt.Errorf("only %d compaction rounds ran; the drill requires at least 3 (oldest segment now %d)", rounds, lastLo)
	}
	if got := journalBytes(primDir); got > 2*retentionDiskBudget {
		return capture{}, fmt.Errorf("steady-state journal holds %d bytes, want <= 2x budget (%d)", got, 2*retentionDiskBudget)
	}
	log.Printf("compaction: %d rounds, steady-state journal %d bytes (budget %d)", rounds, journalBytes(primDir), retentionDiskBudget)

	if err := d.waitCaughtUp(standbyBase, d.startWait); err != nil {
		return capture{}, fmt.Errorf("standby catch-up through compaction: %w", err)
	}
	// Zero re-seeds: a re-seed wipes the mirror and restarts it at the
	// primary's snapshot segment, so the standby's oldest segment moving is
	// disqualifying.
	lo, _, err := segRange(standbyDir)
	if err != nil {
		return capture{}, fmt.Errorf("standby segments: %w", err)
	}
	if lo != standbyLo {
		return capture{}, fmt.Errorf("standby's oldest segment moved %d -> %d: the stream was re-seeded under compaction (lease failed)", standbyLo, lo)
	}
	log.Printf("standby at lag 0 with zero re-seeds (mirror still starts at segment %d)", lo)

	if err := prim.Process.Kill(); err != nil {
		return capture{}, err
	}
	_ = prim.Wait()
	if err := d.promote(standbyBase); err != nil {
		return capture{}, fmt.Errorf("promote: %w", err)
	}
	raw, err := d.get(standbyBase, "/v1/status")
	if err != nil {
		return capture{}, fmt.Errorf("promoted status: %w", err)
	}
	var st status
	if err := json.Unmarshal([]byte(raw), &st); err != nil {
		return capture{}, err
	}
	if applied := int(st.Accesses + st.Quits); applied != len(script) {
		return capture{}, fmt.Errorf("promoted standby holds %d applied ops, want all %d (every op was acknowledged at lag 0)", applied, len(script))
	}
	return d.fingerprint(standbyBase)
}

// journalBytes sums the default tenant's journal directory under a data dir.
func journalBytes(dataDir string) int64 {
	dir := filepath.Join(dataDir, "tenants", "t-default")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0
	}
	var total int64
	for _, e := range entries {
		if info, err := e.Info(); err == nil && !info.IsDir() {
			total += info.Size()
		}
	}
	return total
}

// waitCaughtUp polls the standby's /v1/readyz until it reports ready, which
// with -ready-lag 0 means replication lag is exactly zero records.
func (d *drill) waitCaughtUp(base string, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	var last string
	for {
		resp, err := d.client.Get(base + "/v1/readyz")
		if err == nil {
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			last = fmt.Sprintf("status %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		} else {
			last = err.Error()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("standby not caught up within %v (last readyz: %s)", timeout, last)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// snapshot asks a server to snapshot (and so prune) the default tenant.
func (d *drill) snapshot(base string) error {
	resp, err := d.client.Post(base+"/v1/admin/snapshot", "application/json", bytes.NewBufferString("{}"))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	return nil
}

// promote flips a standby into a primary.
func (d *drill) promote(base string) error {
	resp, err := d.client.Post(base+"/v1/admin/promote", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	log.Printf("promoted standby: %s", bytes.TrimSpace(raw))
	return nil
}

// segRange reports the lowest and highest WAL segment numbers present in a
// data dir's default-tenant journal directory.
func segRange(dataDir string) (lo, hi int, err error) {
	dir := filepath.Join(dataDir, "tenants", "t-default")
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, 0, err
	}
	lo = -1
	for _, e := range entries {
		name, ok := strings.CutPrefix(e.Name(), "wal-")
		if !ok {
			continue
		}
		name, ok = strings.CutSuffix(name, ".sagw")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(name)
		if err != nil {
			continue
		}
		if lo == -1 || n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if lo == -1 {
		return 0, 0, fmt.Errorf("no WAL segments under %s", dir)
	}
	return lo, hi, nil
}
