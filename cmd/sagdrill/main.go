// Command sagdrill is the crash drill for sagserver's durability layer: it
// proves that kill -9 at an arbitrary point loses nothing the server ever
// acknowledged, and that the recovered server is bit-identical to one that
// never crashed.
//
// The drill runs the same deterministic request script twice, each against
// its own sagserver subprocess with its own data dir and a pinned cycle
// clock:
//
//   - the golden run executes the script uninterrupted;
//   - the crash run is SIGKILLed mid-script (with one request in flight),
//     restarted on the same data dir, and resumes the script from exactly
//     the point the recovered /v1/status proves was applied.
//
// Both runs then answer /v1/status, /v1/cycle/summary, and /v1/cycle/close.
// The drill fails unless all three responses match byte for byte, and
// unless the recovered state accounts for every acknowledged request (the
// kill may cost at most the single un-acknowledged in-flight request).
//
// Usage:
//
//	go build -o sagserver ./cmd/sagserver
//	go run ./cmd/sagdrill -server ./sagserver -seed "$RANDOM"
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"time"
)

func main() {
	if err := run(); err != nil {
		log.Fatal("sagdrill: ", err)
	}
}

// op is one scripted request: an access pair or an employee quitting.
type op struct {
	quit     bool
	employee int
	patient  int
}

type status struct {
	Accesses int64 `json:"accesses"`
	Quits    int64 `json:"quits"`
}

// config is the drill's parameter set; main fills it from flags, tests fill
// it directly.
type config struct {
	serverBin string
	seed      int64
	requests  int
	employees int
	patients  int
	history   int
	startWait time.Duration
}

func run() error {
	var cfg config
	flag.StringVar(&cfg.serverBin, "server", "./sagserver", "path to the sagserver binary under test")
	flag.Int64Var(&cfg.seed, "seed", 1, "drill seed: request script, kill point, and kill timing all derive from it")
	flag.IntVar(&cfg.requests, "requests", 40, "access requests in the script (plus one quit)")
	flag.IntVar(&cfg.employees, "employees", 120, "world size passed to the server (first planted pair = employees/patients)")
	flag.IntVar(&cfg.patients, "patients", 600, "world size passed to the server")
	flag.IntVar(&cfg.history, "history", 8, "days of simulated history the server fits on (drill speed knob)")
	flag.DurationVar(&cfg.startWait, "start-wait", 3*time.Minute, "how long to wait for each server boot")
	flag.Parse()
	return drillRun(cfg)
}

func drillRun(cfg config) error {
	log.Printf("drill seed %d", cfg.seed)

	script := buildScript(cfg.seed, cfg.requests, cfg.employees, cfg.patients)
	rng := rand.New(rand.NewSource(cfg.seed ^ 0x9d1))
	kill := 1 + rng.Intn(len(script)-1)

	goldenDir, err := os.MkdirTemp("", "sagdrill-golden-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(goldenDir)
	crashDir, err := os.MkdirTemp("", "sagdrill-crash-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(crashDir)

	d := &drill{
		bin:       cfg.serverBin,
		employees: cfg.employees,
		patients:  cfg.patients,
		history:   cfg.history,
		startWait: cfg.startWait,
		client:    &http.Client{Timeout: 30 * time.Second},
	}

	log.Printf("golden run: %d ops, uninterrupted", len(script))
	golden, err := d.goldenRun(goldenDir, script)
	if err != nil {
		return fmt.Errorf("golden run: %w", err)
	}

	log.Printf("crash run: SIGKILL with op %d/%d in flight", kill, len(script))
	crashed, err := d.crashRun(crashDir, script, kill, rng.Intn(8))
	if err != nil {
		return fmt.Errorf("crash run: %w", err)
	}

	for _, c := range []struct{ name, want, got string }{
		{"/v1/status", golden.status, crashed.status},
		{"/v1/cycle/summary", golden.summary, crashed.summary},
		{"/v1/cycle/close", golden.close_, crashed.close_},
	} {
		if c.want != c.got {
			return fmt.Errorf("%s diverged after crash recovery:\n golden: %s\ncrashed: %s", c.name, c.want, c.got)
		}
		log.Printf("%s: recovered run matches golden run byte for byte", c.name)
	}
	fmt.Println("sagdrill: PASS — kill -9 recovery is bit-identical to the uninterrupted run")
	return nil
}

// buildScript generates the deterministic op sequence: planted-pair accesses
// across three alert kinds, ~10% benign accesses, and one mid-script quit of
// the first planted employee (so later accesses by it take the flagged
// fast path — a different journal record kind).
func buildScript(seed int64, n, employees, patients int) []op {
	// Planted pairs per sagserver's generator: kind k's first pair is
	// (employees + 120·k, patients + 120·k).
	const stride = 120
	rng := rand.New(rand.NewSource(seed ^ 0x5c7))
	var script []op
	for i := 0; i < n; i++ {
		if i == n/2 {
			script = append(script, op{quit: true, employee: employees})
		}
		if rng.Float64() < 0.1 {
			script = append(script, op{employee: 0, patient: 0})
			continue
		}
		k := rng.Intn(3)
		script = append(script, op{employee: employees + stride*k, patient: patients + stride*k})
	}
	return script
}

type drill struct {
	bin       string
	employees int
	patients  int
	history   int
	startWait time.Duration
	client    *http.Client
}

// capture is the durable-state fingerprint of a run.
type capture struct {
	status  string
	summary string
	close_  string
}

// start launches one sagserver over dir and waits until it serves.
func (d *drill) start(dir string, port int) (*exec.Cmd, string, error) {
	addr := fmt.Sprintf("127.0.0.1:%d", port)
	cmd := exec.Command(d.bin,
		"-addr", addr,
		"-data-dir", dir,
		"-fsync", "always",
		"-fixed-clock", "9h",
		"-seed", "2017",
		"-employees", fmt.Sprint(d.employees),
		"-patients", fmt.Sprint(d.patients),
		"-history", fmt.Sprint(d.history),
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return nil, "", err
	}
	base := "http://" + addr
	deadline := time.Now().Add(d.startWait)
	for {
		resp, err := d.client.Get(base + "/v1/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return cmd, base, nil
			}
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return nil, "", fmt.Errorf("server at %s not ready within %v", addr, d.startWait)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

func freePort() (int, error) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer l.Close()
	return l.Addr().(*net.TCPAddr).Port, nil
}

// apply sends one op and requires acknowledgement.
func (d *drill) apply(base string, o op) error {
	path, body := "/v1/access", fmt.Sprintf(`{"employee_id":%d,"patient_id":%d}`, o.employee, o.patient)
	if o.quit {
		path, body = "/v1/quit", fmt.Sprintf(`{"employee_id":%d}`, o.employee)
	}
	resp, err := d.client.Post(base+path, "application/json", bytes.NewBufferString(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, raw)
	}
	_, err = io.Copy(io.Discard, resp.Body)
	return err
}

func (d *drill) get(base, path string) (string, error) {
	resp, err := d.client.Get(base + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: status %d: %s", path, resp.StatusCode, raw)
	}
	return string(raw), nil
}

// fingerprint captures status, summary, and the cycle-close plan.
func (d *drill) fingerprint(base string) (capture, error) {
	var c capture
	var err error
	if c.status, err = d.get(base, "/v1/status"); err != nil {
		return c, err
	}
	if c.summary, err = d.get(base, "/v1/cycle/summary"); err != nil {
		return c, err
	}
	resp, err := d.client.Post(base+"/v1/cycle/close", "application/json", bytes.NewBufferString("{}"))
	if err != nil {
		return c, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return c, err
	}
	if resp.StatusCode != http.StatusOK {
		return c, fmt.Errorf("/v1/cycle/close: status %d: %s", resp.StatusCode, raw)
	}
	c.close_ = string(raw)
	return c, nil
}

func (d *drill) goldenRun(dir string, script []op) (capture, error) {
	port, err := freePort()
	if err != nil {
		return capture{}, err
	}
	cmd, base, err := d.start(dir, port)
	if err != nil {
		return capture{}, err
	}
	defer func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	}()
	for i, o := range script {
		if err := d.apply(base, o); err != nil {
			return capture{}, fmt.Errorf("op %d: %w", i, err)
		}
	}
	return d.fingerprint(base)
}

func (d *drill) crashRun(dir string, script []op, kill, jitterMS int) (capture, error) {
	port, err := freePort()
	if err != nil {
		return capture{}, err
	}
	cmd, base, err := d.start(dir, port)
	if err != nil {
		return capture{}, err
	}
	for i := 0; i < kill; i++ {
		if err := d.apply(base, script[i]); err != nil {
			_ = cmd.Process.Kill()
			_ = cmd.Wait()
			return capture{}, fmt.Errorf("op %d before kill: %w", i, err)
		}
	}
	// Fire op `kill` and SIGKILL the server while it is (maybe) mid-request:
	// the op lands iff its journal record hit disk before the kill.
	inflight := make(chan struct{})
	go func() {
		defer close(inflight)
		_ = d.apply(base, script[kill])
	}()
	time.Sleep(time.Duration(jitterMS) * time.Millisecond)
	if err := cmd.Process.Kill(); err != nil {
		return capture{}, err
	}
	_ = cmd.Wait()
	<-inflight

	// Restart over the same data dir and ask the recovered state how far
	// the script got. FsyncAlways means every acknowledged op is durable:
	// fewer than `kill` applied ops is data loss, more than kill+1 is
	// corruption. The in-flight op alone may go either way.
	cmd2, base2, err := d.start(dir, port)
	if err != nil {
		return capture{}, fmt.Errorf("restart: %w", err)
	}
	defer func() {
		_ = cmd2.Process.Kill()
		_ = cmd2.Wait()
	}()
	raw, err := d.get(base2, "/v1/status")
	if err != nil {
		return capture{}, fmt.Errorf("recovered status: %w", err)
	}
	var st status
	if err := json.Unmarshal([]byte(raw), &st); err != nil {
		return capture{}, err
	}
	applied := int(st.Accesses + st.Quits)
	if applied < kill || applied > kill+1 {
		return capture{}, fmt.Errorf("recovered %d applied ops; %d were acknowledged before the kill (durability violated)", applied, kill)
	}
	log.Printf("recovered %d/%d ops (in-flight op %s); resuming", applied, len(script),
		map[bool]string{true: "survived", false: "lost"}[applied == kill+1])
	for i := applied; i < len(script); i++ {
		if err := d.apply(base2, script[i]); err != nil {
			return capture{}, fmt.Errorf("op %d after restart: %w", i, err)
		}
	}
	return d.fingerprint(base2)
}
