package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"
)

func TestBuildScriptDeterministic(t *testing.T) {
	a := buildScript(7, 30, 120, 600)
	b := buildScript(7, 30, 120, 600)
	if len(a) != len(b) || len(a) != 31 { // 30 accesses + 1 quit
		t.Fatalf("script lengths %d/%d, want 31", len(a), len(b))
	}
	quits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at op %d: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].quit {
			quits++
			if a[i].employee != 120 {
				t.Fatalf("quit must target the first planted employee: %+v", a[i])
			}
			continue
		}
		// Accesses are either benign (0,0) or the first planted pair of one
		// of three kinds: (120+120k, 600+120k).
		benign := a[i].employee == 0 && a[i].patient == 0
		planted := a[i].employee%120 == 0 && a[i].employee >= 120 && a[i].employee <= 360 &&
			a[i].patient == a[i].employee+480
		if !benign && !planted {
			t.Fatalf("op %d is neither benign nor a planted pair: %+v", i, a[i])
		}
	}
	if quits != 1 {
		t.Fatalf("%d quit ops, want 1", quits)
	}
	if c := buildScript(8, 30, 120, 600); len(c) == len(a) {
		same := true
		for i := range c {
			if c[i] != a[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical scripts")
		}
	}
}

// buildServer compiles sagserver into a test temp dir, or skips the test
// when the toolchain (or -short mode) rules the subprocess drill out.
func buildServer(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("subprocess drill skipped in -short mode")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go toolchain not in PATH")
	}
	bin := filepath.Join(t.TempDir(), "sagserver")
	build := exec.Command(goBin, "build", "-o", bin, "github.com/auditgames/sag/cmd/sagserver")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building sagserver: %v", err)
	}
	return bin
}

// TestDrillEndToEnd runs the full drill machinery — golden run, mid-request
// SIGKILL, recovery, resume — against a real sagserver subprocess over a
// small world, and requires the recovered fingerprint to match the golden
// one. This is the same assertion the CI crash-drill job makes, shrunk to
// test size.
func TestDrillEndToEnd(t *testing.T) {
	if err := drillRun(config{
		serverBin: buildServer(t),
		seed:      3,
		requests:  14,
		employees: 60,
		patients:  300,
		history:   6,
		startWait: 2 * time.Minute,
	}); err != nil {
		t.Fatalf("drill: %v", err)
	}
}

// TestFailoverDrillEndToEnd runs the failover drill — primary + WAL-shipping
// standby, forced snapshot re-seed after a gapped cursor, mid-request
// SIGKILL of the primary, promotion, resume — and requires the promoted
// standby's fingerprint to match the golden uninterrupted run. Same
// assertion as the CI failover-drill job, shrunk to test size.
func TestFailoverDrillEndToEnd(t *testing.T) {
	if err := drillRun(config{
		serverBin: buildServer(t),
		mode:      "failover",
		seed:      5,
		requests:  14,
		employees: 60,
		patients:  300,
		history:   6,
		startWait: 2 * time.Minute,
	}); err != nil {
		t.Fatalf("failover drill: %v", err)
	}
}

// TestRetentionDrillEndToEnd runs the retention drill — a primary under a
// tiny disk budget with a fast compactor, a standby tailing it live through
// at least three snapshot-then-prune rounds with zero re-seeds, promotion,
// byte-compare against golden. Same assertion as the CI failover-drill job's
// retention step, shrunk to test size.
func TestRetentionDrillEndToEnd(t *testing.T) {
	if err := drillRun(config{
		serverBin: buildServer(t),
		mode:      "retention",
		seed:      7,
		requests:  12,
		employees: 60,
		patients:  300,
		history:   6,
		startWait: 2 * time.Minute,
	}); err != nil {
		t.Fatalf("retention drill: %v", err)
	}
}
