// Command sagbench regenerates every table and figure of the paper plus the
// ablations, writing the full experiment report (the source material for
// EXPERIMENTS.md). The runtime table compares the sequential solver against
// the parallel candidate fan-out and the quantized decision cache, reporting
// the cache hit rate and per-arm speedup alongside the paper's ≈20 ms/alert
// latency claim.
//
// Usage:
//
//	sagbench                 # full scale: 56 days, 15 groups (paper protocol)
//	sagbench -scale quick    # reduced protocol for smoke runs
//	sagbench -only table1    # run a single experiment
//	sagbench -out report.txt
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"github.com/auditgames/sag/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sagbench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scaleName = flag.String("scale", "full", "experiment scale: full | quick")
		only      = flag.String("only", "", "run one experiment: table1|table2|figure2|figure3|runtime|rollback|budget|estimator|robust|variants|validation|throughput")
		out       = flag.String("out", "-", "output path (- for stdout)")
	)
	flag.Parse()

	var scale experiments.Scale
	switch *scaleName {
	case "full":
		scale = experiments.FullScale()
	case "quick":
		scale = experiments.QuickScale()
	default:
		return fmt.Errorf("unknown scale %q (want full or quick)", *scaleName)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	switch *only {
	case "":
		return experiments.RunAll(w, scale)
	case "table1":
		rep, err := experiments.Table1(scale)
		if err != nil {
			return err
		}
		rep.Render(w)
	case "table2":
		experiments.Table2().Render(w)
	case "figure2":
		rep, err := experiments.Figure2(scale)
		if err != nil {
			return err
		}
		rep.Render(w)
	case "figure3":
		rep, err := experiments.Figure3(scale)
		if err != nil {
			return err
		}
		rep.Render(w)
	case "runtime":
		reps, err := experiments.Runtime(scale)
		if err != nil {
			return err
		}
		experiments.RenderRuntime(w, reps)
	case "rollback":
		rep, err := experiments.AblationRollback(scale)
		if err != nil {
			return err
		}
		rep.Render(w)
	case "budget":
		rep, err := experiments.AblationBudget(scale, nil)
		if err != nil {
			return err
		}
		rep.Render(w)
	case "estimator":
		experiments.AblationEstimator(nil, nil).Render(w)
	case "robust":
		rep, err := experiments.AblationRobust(1, nil, nil)
		if err != nil {
			return err
		}
		rep.Render(w)
	case "variants":
		rep, err := experiments.AblationRollbackVariants(scale)
		if err != nil {
			return err
		}
		rep.Render(w)
	case "validation":
		rep, err := experiments.Validation(scale, 400)
		if err != nil {
			return err
		}
		rep.Render(w)
	case "throughput":
		days, perDay := 56, 192_000 // the paper's full volume
		if *scaleName == "quick" {
			days, perDay = 4, 20_000
		}
		rep, err := experiments.Throughput(scale.Seed, days, perDay)
		if err != nil {
			return err
		}
		rep.Render(w)
	default:
		return fmt.Errorf("unknown experiment %q", *only)
	}
	return nil
}
