package retain

import (
	"sync"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/wal"
)

// fakeTenant is a scriptable Tenant: Prune frees PrunableBytes, Compact
// frees ReclaimableBytes and drops a segment, and either can be forced to
// fail.
type fakeTenant struct {
	id string

	mu         sync.Mutex
	st         wal.RetainStats
	ok         bool
	last       time.Time
	compactErr error

	prunes   int
	compacts int
}

func (f *fakeTenant) RetainID() string { return f.id }

func (f *fakeTenant) RetainStats() (wal.RetainStats, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.st, f.ok
}

func (f *fakeTenant) Prune() (int, int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.prunes++
	freed := f.st.PrunableBytes
	if freed <= 0 {
		return 0, 0, nil
	}
	f.st.TotalBytes -= freed
	f.st.ReclaimableBytes -= freed
	f.st.PrunableBytes = 0
	f.st.Segments--
	return 1, freed, nil
}

func (f *fakeTenant) Compact() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.compacts++
	if f.compactErr != nil {
		return f.compactErr
	}
	f.st.TotalBytes -= f.st.ReclaimableBytes
	f.st.ReclaimableBytes = 0
	f.st.PrunableBytes = 0
	f.st.Segments--
	return nil
}

func (f *fakeTenant) LastAppend() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.last
}

func newCompactor(t *testing.T, budget int64, tenants ...*fakeTenant) *Compactor {
	t.Helper()
	list := func() []Tenant {
		out := make([]Tenant, len(tenants))
		for i, ft := range tenants {
			out[i] = ft
		}
		return out
	}
	c, err := New(Config{BudgetBytes: budget, Interval: time.Minute, List: list})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{List: func() []Tenant { return nil }}); err == nil {
		t.Fatal("New accepted a zero budget")
	}
	if _, err := New(Config{BudgetBytes: 1}); err == nil {
		t.Fatal("New accepted a nil List")
	}
	c, err := New(Config{BudgetBytes: 1, List: func() []Tenant { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.Interval != DefaultInterval {
		t.Fatalf("Interval defaulted to %v, want %v", c.cfg.Interval, DefaultInterval)
	}
}

func TestRunOnceOpportunisticPrune(t *testing.T) {
	ft := &fakeTenant{id: "a", ok: true, last: time.Now(),
		st: wal.RetainStats{Segments: 3, TotalBytes: 300, PrunableBytes: 100, ReclaimableBytes: 100}}
	c := newCompactor(t, 1000, ft)
	c.RunOnce()
	if ft.prunes != 1 {
		t.Fatalf("prunes = %d, want 1", ft.prunes)
	}
	if ft.compacts != 0 {
		t.Fatalf("compaction ran while under budget (compacts = %d)", ft.compacts)
	}
	if ft.st.TotalBytes != 200 {
		t.Fatalf("TotalBytes = %d after prune, want 200", ft.st.TotalBytes)
	}
	if c.Pressure() {
		t.Fatal("pressure set while under budget")
	}
}

func TestRunOnceCompactsUntilUnderBudget(t *testing.T) {
	a := &fakeTenant{id: "a", ok: true, last: time.Now(),
		st: wal.RetainStats{Segments: 4, TotalBytes: 400, ReclaimableBytes: 300}}
	b := &fakeTenant{id: "b", ok: true, last: time.Now(),
		st: wal.RetainStats{Segments: 4, TotalBytes: 400, ReclaimableBytes: 100}}
	c := newCompactor(t, 500, a, b)
	c.RunOnce()
	// a alone brings 800 down to 500: b must be left alone.
	if a.compacts != 1 {
		t.Fatalf("a.compacts = %d, want 1", a.compacts)
	}
	if b.compacts != 0 {
		t.Fatalf("b.compacts = %d, want 0 (box already fit)", b.compacts)
	}
	if c.Pressure() {
		t.Fatal("pressure set after compaction brought the box under budget")
	}
	if _, blocked := c.Blocked("a"); blocked {
		t.Fatal("tenant blocked while box fits")
	}
}

func TestRunOncePressureAndBlocked(t *testing.T) {
	// All live tail: nothing reclaimable anywhere, box hopelessly over.
	a := &fakeTenant{id: "a", ok: true, last: time.Now(),
		st: wal.RetainStats{Segments: 1, TotalBytes: 900}}
	b := &fakeTenant{id: "b", ok: true, last: time.Now(),
		st: wal.RetainStats{Segments: 2, TotalBytes: 300, ReclaimableBytes: 200}}
	c := newCompactor(t, 500, a, b)
	c.RunOnce()
	if !c.Pressure() {
		t.Fatal("pressure not set with box over budget and nothing left to reclaim")
	}
	ra, blocked := c.Blocked("a")
	if !blocked {
		t.Fatal("tenant with no reclaimable bytes not blocked under pressure")
	}
	if ra != time.Minute {
		t.Fatalf("retryAfter = %v, want the scan interval (1m)", ra)
	}
	// b was compacted to zero reclaimable, so it is blocked too — but only
	// after its compaction actually ran.
	if b.compacts != 1 {
		t.Fatalf("b.compacts = %d, want 1", b.compacts)
	}
	if _, blocked := c.Blocked("b"); !blocked {
		t.Fatal("fully-compacted tenant not blocked while box still over budget")
	}

	// Eviction lifts the block.
	c.Forget("a")
	if _, blocked := c.Blocked("a"); blocked {
		t.Fatal("Blocked after Forget")
	}

	// Recovery: a snapshot elsewhere frees enough; the next round clears all.
	a.mu.Lock()
	a.st.TotalBytes = 100
	a.mu.Unlock()
	c.RunOnce()
	if c.Pressure() {
		t.Fatal("pressure still set after the box shrank under budget")
	}
	if _, blocked := c.Blocked("b"); blocked {
		t.Fatal("block survived pressure clearing")
	}
}

func TestRunOnceSkipsBusyTenant(t *testing.T) {
	a := &fakeTenant{id: "a", ok: true, last: time.Now(), compactErr: ErrBusy,
		st: wal.RetainStats{Segments: 4, TotalBytes: 600, ReclaimableBytes: 500}}
	b := &fakeTenant{id: "b", ok: true, last: time.Now(),
		st: wal.RetainStats{Segments: 4, TotalBytes: 400, ReclaimableBytes: 300}}
	c := newCompactor(t, 500, a, b)
	c.RunOnce()
	// a (more reclaimable) is tried first but busy; b is compacted instead.
	if a.compacts != 1 || b.compacts != 1 {
		t.Fatalf("compacts = a:%d b:%d, want 1 and 1 (busy skip falls through)", a.compacts, b.compacts)
	}
}

func TestRunOnceSkipsJournallessTenant(t *testing.T) {
	a := &fakeTenant{id: "a", ok: false,
		st: wal.RetainStats{Segments: 9, TotalBytes: 9999, ReclaimableBytes: 9999}}
	c := newCompactor(t, 1, a)
	c.RunOnce()
	if a.compacts != 0 || a.prunes != 0 {
		t.Fatal("tenant without a journal was touched")
	}
	if c.Pressure() {
		t.Fatal("journalless tenant counted against the budget")
	}
}

func TestCompactionOrder(t *testing.T) {
	cands := []candidate{
		{id: "busy-big", idle: false, st: wal.RetainStats{ReclaimableBytes: 900}},
		{id: "idle-small", idle: true, st: wal.RetainStats{ReclaimableBytes: 10}},
		{id: "idle-big", idle: true, st: wal.RetainStats{ReclaimableBytes: 500}},
		{id: "busy-small", idle: false, st: wal.RetainStats{ReclaimableBytes: 20}},
	}
	got := compactionOrder(cands, 0)
	want := []string{"idle-big", "idle-small", "busy-big", "busy-small"}
	for i, idx := range got {
		if cands[idx].id != want[i] {
			t.Fatalf("order[%d] = %s, want %s (full order %v)", i, cands[idx].id, want[i], got)
		}
	}
	// Rotation shifts the start position without reordering the cycle.
	rot := compactionOrder(cands, 1)
	if cands[rot[0]].id != "idle-small" || cands[rot[3]].id != "idle-big" {
		t.Fatalf("rr=1 rotation wrong: got %s..%s", cands[rot[0]].id, cands[rot[3]].id)
	}
	if len(compactionOrder(nil, 3)) != 0 {
		t.Fatal("empty candidate set must yield an empty order")
	}
}

func TestStartStopKickLifecycle(t *testing.T) {
	ft := &fakeTenant{id: "a", ok: true, last: time.Now(),
		st: wal.RetainStats{Segments: 1, TotalBytes: 10}}
	c := newCompactor(t, 100, ft)
	c.Start()
	c.Start() // idempotent
	c.Kick()
	c.Kick() // coalesced, never blocks
	c.Stop()
	c.Stop() // idempotent
	c.Kick() // after Stop: still safe
	// Start after Stop must not relaunch the loop.
	c.Start()
	ft.mu.Lock()
	ft.last = time.Now()
	ft.mu.Unlock()
}

func TestKickDebounce(t *testing.T) {
	var clock struct {
		sync.Mutex
		t time.Time
	}
	clock.t = time.Unix(1000, 0)
	now := func() time.Time {
		clock.Lock()
		defer clock.Unlock()
		return clock.t
	}
	ft := &fakeTenant{id: "a", ok: true, st: wal.RetainStats{TotalBytes: 1}}
	var scans int
	var smu sync.Mutex
	list := func() []Tenant {
		smu.Lock()
		scans++
		smu.Unlock()
		return []Tenant{ft}
	}
	c, err := New(Config{BudgetBytes: 100, Interval: time.Hour, List: list, Now: now})
	if err != nil {
		t.Fatal(err)
	}
	c.RunOnce() // stamps lastKick at the fake clock
	base := scans

	// Within the debounce window a kick must be dropped by the loop's check:
	// replicate the loop's arithmetic directly (the loop itself is driven by
	// real channels; the decision under test is pure clock math).
	c.mu.Lock()
	since := now().Sub(c.lastKick)
	c.mu.Unlock()
	if since >= kickDebounce {
		t.Fatalf("fake clock did not hold still: since = %v", since)
	}

	clock.Lock()
	clock.t = clock.t.Add(time.Second)
	clock.Unlock()
	c.mu.Lock()
	since = now().Sub(c.lastKick)
	c.mu.Unlock()
	if since < kickDebounce {
		t.Fatalf("advanced clock still inside debounce window: %v", since)
	}
	c.RunOnce()
	smu.Lock()
	grew := scans > base
	smu.Unlock()
	if !grew {
		t.Fatal("RunOnce did not rescan")
	}
}
