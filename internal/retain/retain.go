// Package retain bounds the box-wide disk footprint of the per-tenant
// write-ahead journals. Segments are immutable once sealed and only a
// snapshot makes older ones re-derivable, so without intervention a
// long-lived multi-tenant box grows disk without bound. The compactor here
// closes that loop: it accounts journal bytes per tenant and box-wide
// against a configured budget, schedules snapshot-then-prune on the tenants
// holding the most reclaimable bytes (idle tenants first, rotating the
// start position under pressure so no tenant is compacted repeatedly while
// its neighbors grow), and — when a full round cannot bring the box back
// under budget — marks the tenants that have nothing left to reclaim so the
// server can shed their mutations with 507 + Retry-After instead of filling
// the volume.
//
// Pruning itself is lease-aware (see wal.Lease): a replication stream pins
// the oldest cursor its follower still needs, and the journal's Prune never
// crosses that floor, so compaction under a live follower does not force a
// re-seed.
package retain

import (
	"errors"
	"sort"
	"sync"
	"time"

	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/wal"
)

// Retention metric names.
const (
	// MetricBytes gauges each tenant's journal size on disk.
	MetricBytes = "sag_retain_bytes"
	// MetricPrunedSegments counts journal segments deleted, per tenant.
	MetricPrunedSegments = "sag_retain_pruned_segments_total"
	// MetricLeaseFloor gauges, per tenant, the lowest segment a replication
	// lease pins (-1 when no lease is held).
	MetricLeaseFloor = "sag_retain_lease_floor"
	// MetricPressure gauges box-wide journal bytes over the disk budget: at
	// or below 1 the box fits; above 1 it is overcommitted and mutations of
	// non-reclaiming tenants are shed.
	MetricPressure = "sag_retain_pressure"
)

// DefaultInterval is the compaction scan cadence when Config.Interval is 0.
const DefaultInterval = 15 * time.Second

// kickDebounce is the minimum gap between kick-triggered scans, so a hot
// append path cannot turn every write into a full tenant scan.
const kickDebounce = 100 * time.Millisecond

// ErrBusy is returned by a Tenant's Compact when the tenant's lifecycle
// write lock is held (a cycle rollover or another snapshot in flight); the
// compactor skips it this round rather than queueing behind the rollover.
var ErrBusy = errors.New("retain: tenant lifecycle busy; skipped")

// Tenant is the compactor's view of one resident tenant.
type Tenant interface {
	// RetainID is the tenant ID (metric label, log lines).
	RetainID() string
	// RetainStats returns the tenant journal's disk accounting; ok is
	// false when the tenant has no open journal (follower before promote,
	// eviction race) and the tenant is skipped.
	RetainStats() (st wal.RetainStats, ok bool)
	// Prune deletes already-prunable segments (snapshot-superseded, below
	// the lease floor) without writing a new snapshot.
	Prune() (segs int, bytes int64, err error)
	// Compact snapshots the tenant and prunes superseded segments. It must
	// not block behind the tenant's lifecycle write lock — return ErrBusy.
	Compact() error
	// LastAppend is when the tenant last journaled a record; idle tenants
	// are compacted first (their snapshot is cheapest per byte freed — no
	// in-flight decisions to drain and no tail regrowth).
	LastAppend() time.Time
}

// Config parameterizes a Compactor.
type Config struct {
	// BudgetBytes is the box-wide journal byte budget. Required (> 0).
	BudgetBytes int64
	// Interval is the background scan cadence; 0 selects DefaultInterval.
	Interval time.Duration
	// List enumerates the resident tenants. Required.
	List func() []Tenant
	// Metrics receives the sag_retain_* instruments; nil disables.
	Metrics *obs.Registry
	// Logf receives compaction traces; nil discards them.
	Logf func(format string, args ...any)
	// Now is the clock (tests inject a fake); nil selects time.Now.
	Now func() time.Time
}

// Compactor is the background retention scheduler. Start launches the scan
// loop; Kick requests an immediate scan (coalesced and debounced); Stop
// terminates the loop. Blocked answers the server's disk-pressure gate.
type Compactor struct {
	cfg  Config
	logf func(string, ...any)
	now  func() time.Time

	kickCh chan struct{}
	done   chan struct{}
	wg     sync.WaitGroup

	mu       sync.Mutex
	started  bool
	stopped  bool
	pressure bool
	blocked  map[string]bool
	lastKick time.Time
	rr       int // rotation offset across pressure rounds

	bytesG    func(tenant string) *obs.Gauge
	leaseG    func(tenant string) *obs.Gauge
	prunedC   func(tenant string) *obs.Counter
	pressureG *obs.Gauge
}

// New builds a Compactor. Config.BudgetBytes and Config.List are required.
func New(cfg Config) (*Compactor, error) {
	if cfg.BudgetBytes <= 0 {
		return nil, errors.New("retain: BudgetBytes must be positive")
	}
	if cfg.List == nil {
		return nil, errors.New("retain: List is required")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	c := &Compactor{
		cfg:     cfg,
		logf:    cfg.Logf,
		now:     cfg.Now,
		kickCh:  make(chan struct{}, 1),
		done:    make(chan struct{}),
		blocked: make(map[string]bool),
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	if c.now == nil {
		c.now = time.Now
	}
	reg := cfg.Metrics
	c.bytesG = func(tenant string) *obs.Gauge {
		return reg.Gauge(MetricBytes, "Journal bytes on disk.", obs.L("tenant", tenant))
	}
	c.leaseG = func(tenant string) *obs.Gauge {
		return reg.Gauge(MetricLeaseFloor, "Lowest journal segment a replication lease pins (-1: none).", obs.L("tenant", tenant))
	}
	c.prunedC = func(tenant string) *obs.Counter {
		return reg.Counter(MetricPrunedSegments, "Journal segments pruned.", obs.L("tenant", tenant))
	}
	c.pressureG = reg.Gauge(MetricPressure, "Box-wide journal bytes over the disk budget (>1: overcommitted).")
	return c, nil
}

// Start launches the background scan loop. Idempotent.
func (c *Compactor) Start() {
	c.mu.Lock()
	if c.started || c.stopped {
		c.mu.Unlock()
		return
	}
	c.started = true
	c.mu.Unlock()
	c.wg.Add(1)
	go c.loop()
}

// Stop terminates the scan loop and waits for it. Idempotent.
func (c *Compactor) Stop() {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return
	}
	c.stopped = true
	started := c.started
	c.mu.Unlock()
	close(c.done)
	if started {
		c.wg.Wait()
	}
}

// Kick requests a prompt scan — the append path calls it so a write burst
// is met with compaction now, not at the next tick. Coalesced; debounced in
// the loop.
func (c *Compactor) Kick() {
	select {
	case c.kickCh <- struct{}{}:
	default:
	}
}

// Pressure reports whether the box was over budget at the last scan even
// after compaction.
func (c *Compactor) Pressure() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pressure
}

// Blocked reports whether tenant's mutations should be shed for disk
// pressure: the box is over budget and this tenant has nothing left to
// reclaim, so its writes are pure growth. retryAfter is the suggested
// client backoff (the scan cadence — the soonest the verdict can change).
func (c *Compactor) Blocked(tenant string) (retryAfter time.Duration, blocked bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.pressure || !c.blocked[tenant] {
		return 0, false
	}
	return c.cfg.Interval, true
}

// Forget clears tenant's retention state on eviction: the gauges are zeroed
// (the journal directory may well persist, but the tenant no longer counts
// against the resident budget until it is restored) and any block is lifted.
func (c *Compactor) Forget(tenant string) {
	c.mu.Lock()
	delete(c.blocked, tenant)
	c.mu.Unlock()
	c.bytesG(tenant).Set(0)
	c.leaseG(tenant).Set(-1)
}

// loop is the background scheduler: scan on the tick, on a kick (debounced),
// and once at startup so boot-time debt is collected promptly.
func (c *Compactor) loop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.Interval)
	defer tick.Stop()
	c.RunOnce()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
			c.RunOnce()
		case <-c.kickCh:
			c.mu.Lock()
			since := c.now().Sub(c.lastKick)
			c.mu.Unlock()
			if since < kickDebounce {
				// Too soon; the pending tick (or next kick) covers it.
				continue
			}
			c.RunOnce()
		}
	}
}

// candidate is one tenant's scan snapshot.
type candidate struct {
	t    Tenant
	id   string
	st   wal.RetainStats
	idle bool
}

// RunOnce performs one full scan-and-compact round synchronously: refresh
// accounting, free what is already prunable, and — while over budget —
// snapshot-then-prune tenants in reclaimable-bytes order until the box fits
// or nothing more can be freed. Exposed for drills and tests; the
// background loop calls it on every tick and kick.
func (c *Compactor) RunOnce() {
	c.mu.Lock()
	c.lastKick = c.now()
	rr := c.rr
	c.mu.Unlock()

	cands, total := c.scan()
	// Opportunistic prune first: segments whose lease was released after
	// the snapshot that superseded them are free bytes, no snapshot needed.
	for i := range cands {
		if cands[i].st.PrunableBytes > 0 {
			segs, bytes, err := cands[i].t.Prune()
			if err != nil {
				c.logf("retain: tenant %s: prune: %v", cands[i].id, err)
				continue
			}
			if segs > 0 {
				c.prunedC(cands[i].id).Add(uint64(segs))
				total -= bytes
				cands[i].st.TotalBytes -= bytes
				cands[i].st.PrunableBytes = 0
			}
		}
	}

	budget := c.cfg.BudgetBytes
	if total > budget {
		// Over budget: compact in reclaimable order, idle tenants first.
		// The rotation offset keeps repeated rounds from hammering the same
		// tenant while its neighbors hold just slightly fewer bytes.
		order := compactionOrder(cands, rr)
		for _, i := range order {
			if total <= budget {
				break
			}
			cand := &cands[i]
			if cand.st.ReclaimableBytes <= 0 {
				continue
			}
			if err := cand.t.Compact(); err != nil {
				if errors.Is(err, ErrBusy) {
					c.logf("retain: tenant %s: compaction skipped (lifecycle busy)", cand.id)
				} else {
					c.logf("retain: tenant %s: compaction: %v", cand.id, err)
				}
				continue
			}
			st, ok := cand.t.RetainStats()
			if !ok {
				continue
			}
			freed := cand.st.TotalBytes - st.TotalBytes
			total -= freed
			if d := cand.st.Segments - st.Segments; d > 0 {
				c.prunedC(cand.id).Add(uint64(d))
			}
			c.logf("retain: tenant %s: compacted, freed %d bytes (box %d/%d)",
				cand.id, freed, total, budget)
			cand.st = st
		}
		c.mu.Lock()
		c.rr++
		c.mu.Unlock()
	}

	// Publish the verdict: pressure plus the per-tenant block set. A tenant
	// is blocked only when the box still does not fit and compacting it
	// could not help — its journal is all live tail (or pinned by a lease
	// whose follower is still reading it).
	pressure := total > budget
	blocked := make(map[string]bool)
	if pressure {
		for i := range cands {
			if cands[i].st.ReclaimableBytes <= 0 {
				blocked[cands[i].id] = true
			}
		}
	}
	c.mu.Lock()
	c.pressure = pressure
	c.blocked = blocked
	c.mu.Unlock()
	c.pressureG.Set(float64(total) / float64(budget))
	for i := range cands {
		c.bytesG(cands[i].id).Set(float64(cands[i].st.TotalBytes))
		c.leaseG(cands[i].id).Set(float64(cands[i].st.LeaseFloorSeg))
	}
}

// scan snapshots every tenant's retention stats and the box-wide total.
func (c *Compactor) scan() ([]candidate, int64) {
	var (
		cands []candidate
		total int64
	)
	idleCutoff := c.now().Add(-c.cfg.Interval)
	for _, t := range c.cfg.List() {
		st, ok := t.RetainStats()
		if !ok {
			continue
		}
		cands = append(cands, candidate{
			t:    t,
			id:   t.RetainID(),
			st:   st,
			idle: t.LastAppend().Before(idleCutoff),
		})
		total += st.TotalBytes
	}
	return cands, total
}

// compactionOrder returns candidate indices in compaction priority: idle
// tenants before busy ones, more reclaimable bytes first within each class,
// the whole order rotated by rr so successive pressure rounds start at a
// different tenant.
func compactionOrder(cands []candidate, rr int) []int {
	order := make([]int, len(cands))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ca, cb := cands[order[a]], cands[order[b]]
		if ca.idle != cb.idle {
			return ca.idle
		}
		return ca.st.ReclaimableBytes > cb.st.ReclaimableBytes
	})
	if n := len(order); n > 1 {
		rot := rr % n
		order = append(order[rot:], order[:rot]...)
	}
	return order
}
