// Package payoff defines the per-alert-type utility structures of the
// Signaling Audit Game and the paper's Table 2 instantiation.
//
// For every alert type t the game assigns four utilities around the "victim
// alert" (the alert an actual attack triggers):
//
//	U_{d,c} — auditor ("defender") utility when the victim alert is audited (covered)
//	U_{d,u} — auditor utility when it is not audited (uncovered)
//	U_{a,c} — attacker utility when audited
//	U_{a,u} — attacker utility when not audited
//
// The paper's sign conventions (§2.2) are U_{a,c} < 0 < U_{a,u} and
// U_{d,c} ≥ 0 > U_{d,u}: being caught hurts the attacker, missing an attack
// hurts the auditor. Theorem 3 additionally relies on
// U_{a,c}·U_{d,u} − U_{d,c}·U_{a,u} > 0, equivalently
// −U_{a,c}/U_{a,u} > −U_{d,c}/U_{d,u}: the attacker's penalty-to-gain ratio
// exceeds the auditor's catch-benefit-to-miss-loss ratio, which the paper's
// remark argues is the natural regime in audit domains.
package payoff

import (
	"fmt"
	"math"
)

// Payoff holds the four utilities of one alert type.
type Payoff struct {
	DefenderCovered   float64 // U_{d,c} ≥ 0
	DefenderUncovered float64 // U_{d,u} < 0
	AttackerCovered   float64 // U_{a,c} < 0
	AttackerUncovered float64 // U_{a,u} > 0
}

// Validate checks the paper's sign conventions. It returns a descriptive
// error naming the violated inequality.
func (p Payoff) Validate() error {
	for _, v := range []float64{p.DefenderCovered, p.DefenderUncovered, p.AttackerCovered, p.AttackerUncovered} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("payoff: non-finite utility in %+v", p)
		}
	}
	if !(p.AttackerCovered < 0) {
		return fmt.Errorf("payoff: need U_ac < 0, got %g", p.AttackerCovered)
	}
	if !(p.AttackerUncovered > 0) {
		return fmt.Errorf("payoff: need U_au > 0, got %g", p.AttackerUncovered)
	}
	if !(p.DefenderCovered >= 0) {
		return fmt.Errorf("payoff: need U_dc >= 0, got %g", p.DefenderCovered)
	}
	if !(p.DefenderUncovered < 0) {
		return fmt.Errorf("payoff: need U_du < 0, got %g", p.DefenderUncovered)
	}
	return nil
}

// SatisfiesTheorem3 reports whether U_{a,c}·U_{d,u} − U_{d,c}·U_{a,u} > 0,
// the condition under which the paper's Theorem 3 guarantees that the
// optimal signaling scheme never audits unwarned alerts (p0 = 0).
func (p Payoff) SatisfiesTheorem3() bool {
	return p.AttackerCovered*p.DefenderUncovered-p.DefenderCovered*p.AttackerUncovered > 0
}

// AttackerExpected returns the attacker's expected utility for an alert of
// this type covered with probability theta.
func (p Payoff) AttackerExpected(theta float64) float64 {
	return theta*p.AttackerCovered + (1-theta)*p.AttackerUncovered
}

// DefenderExpected returns the auditor's expected utility for a victim
// alert of this type covered with probability theta.
func (p Payoff) DefenderExpected(theta float64) float64 {
	return theta*p.DefenderCovered + (1-theta)*p.DefenderUncovered
}

// DeterrenceThreshold returns the smallest coverage probability θ* at which
// the attacker's expected utility is non-positive, i.e. the attack is fully
// deterred: θ* = U_{a,u} / (U_{a,u} − U_{a,c}). The value is in (0,1) for
// any payoff satisfying the sign conventions.
func (p Payoff) DeterrenceThreshold() float64 {
	return p.AttackerUncovered / (p.AttackerUncovered - p.AttackerCovered)
}

// Table2 returns the paper's Table 2 payoff structures for the seven
// predefined alert types, indexed by type ID 1..7 (index 0 is unused and
// zero-valued so callers can write Table2()[typeID]).
func Table2() [8]Payoff {
	return [8]Payoff{
		1: {DefenderCovered: 100, DefenderUncovered: -400, AttackerCovered: -2000, AttackerUncovered: 400},
		2: {DefenderCovered: 150, DefenderUncovered: -500, AttackerCovered: -2250, AttackerUncovered: 400},
		3: {DefenderCovered: 150, DefenderUncovered: -600, AttackerCovered: -2500, AttackerUncovered: 450},
		4: {DefenderCovered: 300, DefenderUncovered: -800, AttackerCovered: -2500, AttackerUncovered: 600},
		5: {DefenderCovered: 400, DefenderUncovered: -1000, AttackerCovered: -3000, AttackerUncovered: 650},
		6: {DefenderCovered: 600, DefenderUncovered: -1500, AttackerCovered: -5000, AttackerUncovered: 700},
		7: {DefenderCovered: 700, DefenderUncovered: -2000, AttackerCovered: -6000, AttackerUncovered: 800},
	}
}

// Table2Slice returns the Table 2 payoffs as a 7-element slice indexed by
// position (type 1 at index 0), the layout the game solvers use.
func Table2Slice() []Payoff {
	t := Table2()
	return t[1:]
}
