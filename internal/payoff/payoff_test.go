package payoff

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable2MatchesPaper(t *testing.T) {
	tab := Table2()
	// Spot-check the exact numbers printed in the paper's Table 2.
	cases := []struct {
		id             int
		dc, du, ac, au float64
	}{
		{1, 100, -400, -2000, 400},
		{2, 150, -500, -2250, 400},
		{3, 150, -600, -2500, 450},
		{4, 300, -800, -2500, 600},
		{5, 400, -1000, -3000, 650},
		{6, 600, -1500, -5000, 700},
		{7, 700, -2000, -6000, 800},
	}
	for _, c := range cases {
		p := tab[c.id]
		if p.DefenderCovered != c.dc || p.DefenderUncovered != c.du ||
			p.AttackerCovered != c.ac || p.AttackerUncovered != c.au {
			t.Errorf("type %d: %+v does not match Table 2", c.id, p)
		}
	}
}

func TestTable2AllValid(t *testing.T) {
	for id, p := range Table2() {
		if id == 0 {
			continue
		}
		if err := p.Validate(); err != nil {
			t.Errorf("type %d: %v", id, err)
		}
		if !p.SatisfiesTheorem3() {
			t.Errorf("type %d: Table 2 payoffs should satisfy the Theorem 3 condition", id)
		}
	}
}

func TestTable2Slice(t *testing.T) {
	s := Table2Slice()
	if len(s) != 7 {
		t.Fatalf("len = %d, want 7", len(s))
	}
	if s[0] != Table2()[1] || s[6] != Table2()[7] {
		t.Fatal("slice layout should be type 1 at index 0 .. type 7 at index 6")
	}
}

func TestValidateRejectsEachViolation(t *testing.T) {
	good := Payoff{DefenderCovered: 10, DefenderUncovered: -10, AttackerCovered: -10, AttackerUncovered: 10}
	if err := good.Validate(); err != nil {
		t.Fatalf("good payoff rejected: %v", err)
	}
	bad := []Payoff{
		{DefenderCovered: 10, DefenderUncovered: -10, AttackerCovered: 1, AttackerUncovered: 10},   // U_ac >= 0
		{DefenderCovered: 10, DefenderUncovered: -10, AttackerCovered: -10, AttackerUncovered: -1}, // U_au <= 0
		{DefenderCovered: -1, DefenderUncovered: -10, AttackerCovered: -10, AttackerUncovered: 10}, // U_dc < 0
		{DefenderCovered: 10, DefenderUncovered: 1, AttackerCovered: -10, AttackerUncovered: 10},   // U_du >= 0
		{DefenderCovered: math.NaN(), DefenderUncovered: -10, AttackerCovered: -10, AttackerUncovered: 10},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad payoff %d accepted: %+v", i, p)
		}
	}
}

func TestExpectedUtilities(t *testing.T) {
	p := Table2()[1]
	// theta = 0: attacker gets U_au, defender U_du.
	if p.AttackerExpected(0) != 400 || p.DefenderExpected(0) != -400 {
		t.Fatal("theta=0 expectations wrong")
	}
	// theta = 1: attacker U_ac, defender U_dc.
	if p.AttackerExpected(1) != -2000 || p.DefenderExpected(1) != 100 {
		t.Fatal("theta=1 expectations wrong")
	}
	// Linear midpoint.
	if got := p.AttackerExpected(0.5); math.Abs(got-(-800)) > 1e-12 {
		t.Fatalf("AttackerExpected(0.5) = %g, want -800", got)
	}
}

func TestDeterrenceThreshold(t *testing.T) {
	p := Table2()[1]
	th := p.DeterrenceThreshold()
	want := 400.0 / 2400.0
	if math.Abs(th-want) > 1e-12 {
		t.Fatalf("threshold = %g, want %g", th, want)
	}
	// At the threshold the attacker is exactly indifferent.
	if got := p.AttackerExpected(th); math.Abs(got) > 1e-9 {
		t.Fatalf("AttackerExpected(threshold) = %g, want 0", got)
	}
}

func TestQuickDeterrenceThresholdInUnitInterval(t *testing.T) {
	prop := func(acRaw, auRaw float64) bool {
		ac := -1 - math.Mod(math.Abs(acRaw), 1e4) // < 0
		au := 1 + math.Mod(math.Abs(auRaw), 1e4)  // > 0
		if math.IsNaN(ac) || math.IsNaN(au) {
			return true
		}
		p := Payoff{DefenderCovered: 1, DefenderUncovered: -1, AttackerCovered: ac, AttackerUncovered: au}
		th := p.DeterrenceThreshold()
		if th <= 0 || th >= 1 {
			return false
		}
		// Monotone deterrence: attacker utility at the threshold is ~0 and
		// strictly negative above it.
		return math.Abs(p.AttackerExpected(th)) < 1e-6*(math.Abs(ac)+au) &&
			p.AttackerExpected(math.Min(1, th+0.01)) < 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickExpectedUtilityMonotonicity(t *testing.T) {
	// Attacker utility decreases in coverage; defender utility increases.
	prop := func(t1, t2 float64) bool {
		a := math.Mod(math.Abs(t1), 1)
		b := math.Mod(math.Abs(t2), 1)
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		p := Table2()[4]
		return p.AttackerExpected(hi) <= p.AttackerExpected(lo)+1e-12 &&
			p.DefenderExpected(hi) >= p.DefenderExpected(lo)-1e-12
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
