package signaling

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/auditgames/sag/internal/payoff"
)

func type1() payoff.Payoff { return payoff.Table2()[1] }

func TestClosedFormBetaPositive(t *testing.T) {
	// Type 1, θ = 0.1: β = 0.1·(−2000)+0.9·400 = 160 > 0.
	s, err := Solve(type1(), 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(0.1); err != nil {
		t.Fatal(err)
	}
	if s.Deterred {
		t.Fatal("β > 0 should not be deterred")
	}
	if math.Abs(s.P1-0.1) > 1e-12 || math.Abs(s.P0) > 1e-12 {
		t.Fatalf("want p1=θ, p0=0; got %+v", s)
	}
	wantQ0 := 160.0 / 400.0
	if math.Abs(s.Q0-wantQ0) > 1e-12 {
		t.Fatalf("q0 = %g, want %g", s.Q0, wantQ0)
	}
	// Auditor utility: U_du·β/U_au = −400·160/400 = −160.
	if math.Abs(s.DefenderUtility-(-160)) > 1e-9 {
		t.Fatalf("defender utility = %g, want -160", s.DefenderUtility)
	}
	// Theorem 4: attacker utility equals β.
	if math.Abs(s.AttackerUtility-160) > 1e-9 {
		t.Fatalf("attacker utility = %g, want 160", s.AttackerUtility)
	}
}

func TestClosedFormBetaNonPositive(t *testing.T) {
	// Type 1 deterrence threshold is 1/6; any θ above it gives β ≤ 0.
	th := type1().DeterrenceThreshold()
	s, err := Solve(type1(), th+0.05)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Deterred {
		t.Fatal("θ above threshold should deter")
	}
	if s.DefenderUtility != 0 || s.AttackerUtility != 0 {
		t.Fatal("deterred game should have zero utilities")
	}
	if math.Abs(s.P1-(th+0.05)) > 1e-12 || s.P0 != 0 || s.Q0 != 0 {
		t.Fatalf("deterred scheme should warn with the full distribution: %+v", s)
	}
	if err := s.Validate(th + 0.05); err != nil {
		t.Fatal(err)
	}
}

func TestClosedFormAtExactThreshold(t *testing.T) {
	th := type1().DeterrenceThreshold()
	s, err := Solve(type1(), th)
	if err != nil {
		t.Fatal(err)
	}
	// β = 0 exactly: deterred branch.
	if !s.Deterred {
		t.Fatal("β = 0 should deter")
	}
	if err := s.Validate(th); err != nil {
		t.Fatal(err)
	}
}

func TestClosedFormMatchesLPAcrossTheta(t *testing.T) {
	for id := 1; id <= 7; id++ {
		pf := payoff.Table2()[id]
		for theta := 0.0; theta <= 1.0001; theta += 0.05 {
			th := math.Min(theta, 1)
			cf, err := Solve(pf, th)
			if err != nil {
				t.Fatal(err)
			}
			lps, err := SolveLP(pf, th)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(cf.DefenderUtility-lps.DefenderUtility) > 1e-6 {
				t.Fatalf("type %d θ=%.2f: closed form %g vs LP %g", id, th, cf.DefenderUtility, lps.DefenderUtility)
			}
			if math.Abs(cf.AttackerUtility-lps.AttackerUtility) > 1e-6 {
				t.Fatalf("type %d θ=%.2f: attacker closed form %g vs LP %g", id, th, cf.AttackerUtility, lps.AttackerUtility)
			}
			if cf.Deterred != lps.Deterred {
				t.Fatalf("type %d θ=%.2f: deterred mismatch (cf=%v lp=%v)", id, th, cf.Deterred, lps.Deterred)
			}
		}
	}
}

func TestSolveRejectsInvalidInput(t *testing.T) {
	if _, err := Solve(type1(), -0.1); err == nil {
		t.Error("negative theta should be rejected")
	}
	if _, err := Solve(type1(), 1.1); err == nil {
		t.Error("theta > 1 should be rejected")
	}
	if _, err := Solve(type1(), math.NaN()); err == nil {
		t.Error("NaN theta should be rejected")
	}
	if _, err := Solve(payoff.Payoff{}, 0.5); err == nil {
		t.Error("invalid payoff should be rejected")
	}
	// A payoff violating the Theorem 3 condition must route to SolveLP.
	weird := payoff.Payoff{DefenderCovered: 5000, DefenderUncovered: -1, AttackerCovered: -1, AttackerUncovered: 1000}
	if weird.SatisfiesTheorem3() {
		t.Fatal("test payoff unexpectedly satisfies the Theorem 3 condition")
	}
	if _, err := Solve(weird, 0.5); err == nil {
		t.Error("closed form should refuse payoffs outside the Theorem 3 regime")
	}
	if _, err := SolveLP(weird, 0.5); err != nil {
		t.Errorf("SolveLP should handle the general case: %v", err)
	}
}

func TestSchemeAccessors(t *testing.T) {
	s := Scheme{P1: 0.1, Q1: 0.5, P0: 0.05, Q0: 0.35}
	if math.Abs(s.WarnProbability()-0.6) > 1e-12 {
		t.Fatalf("WarnProbability = %g", s.WarnProbability())
	}
	if math.Abs(s.AuditGivenWarn()-0.1/0.6) > 1e-12 {
		t.Fatalf("AuditGivenWarn = %g", s.AuditGivenWarn())
	}
	if math.Abs(s.AuditGivenSilent()-0.05/0.4) > 1e-12 {
		t.Fatalf("AuditGivenSilent = %g", s.AuditGivenSilent())
	}
	if math.Abs(s.MarginalAudit()-0.15) > 1e-12 {
		t.Fatalf("MarginalAudit = %g", s.MarginalAudit())
	}
	zero := Scheme{P0: 0.3, Q0: 0.7}
	if zero.AuditGivenWarn() != 0 {
		t.Fatal("AuditGivenWarn with empty warn branch should be 0")
	}
	empty := Scheme{P1: 0.3, Q1: 0.7}
	if empty.AuditGivenSilent() != 0 {
		t.Fatal("AuditGivenSilent with empty silent branch should be 0")
	}
}

func TestValidateCatchesBrokenSchemes(t *testing.T) {
	if err := (Scheme{P1: 0.5, Q1: 0.6}).Validate(0.5); err == nil {
		t.Error("sum > 1 should fail validation")
	}
	if err := (Scheme{P1: 0.2, Q1: 0.8}).Validate(0.5); err == nil {
		t.Error("marginal mismatch should fail validation")
	}
	if err := (Scheme{P1: -0.1, Q1: 1.1}).Validate(-0.1); err == nil {
		t.Error("negative probability should fail validation")
	}
}

func TestTheoremPredicatesOnTable2(t *testing.T) {
	for id := 1; id <= 7; id++ {
		pf := payoff.Table2()[id]
		for _, theta := range []float64{0, 0.05, 0.1, pf.DeterrenceThreshold(), 0.3, 0.7, 1} {
			if ok, err := Theorem2Holds(pf, theta, 1e-7); err != nil || !ok {
				t.Errorf("type %d θ=%g: Theorem 2 violated (err=%v)", id, theta, err)
			}
			if ok, err := Theorem3Holds(pf, theta, 1e-7); err != nil || !ok {
				t.Errorf("type %d θ=%g: Theorem 3 violated (err=%v)", id, theta, err)
			}
			if ok, err := Theorem4Holds(pf, theta, 1e-6); err != nil || !ok {
				t.Errorf("type %d θ=%g: Theorem 4 violated (err=%v)", id, theta, err)
			}
		}
	}
}

func TestTheorem3VacuousOutsideRegime(t *testing.T) {
	weird := payoff.Payoff{DefenderCovered: 5000, DefenderUncovered: -1, AttackerCovered: -1, AttackerUncovered: 1000}
	ok, err := Theorem3Holds(weird, 0.5, 1e-9)
	if err != nil || !ok {
		t.Fatalf("Theorem3Holds outside regime = %v, %v; want vacuous true", ok, err)
	}
}

// The strict-improvement question the paper answers empirically: whenever
// θ is below the deterrence threshold but positive, OSSP strictly improves
// on the plain SSE for Table 2 payoffs.
func TestSignalingStrictlyImproves(t *testing.T) {
	for id := 1; id <= 7; id++ {
		pf := payoff.Table2()[id]
		theta := pf.DeterrenceThreshold() * 0.6 // attack not deterred by coverage alone
		s, err := Solve(pf, theta)
		if err != nil {
			t.Fatal(err)
		}
		sse := pf.DefenderExpected(theta)
		if s.DefenderUtility <= sse+1e-9 {
			t.Errorf("type %d: OSSP %g does not strictly improve on SSE %g", id, s.DefenderUtility, sse)
		}
	}
}

func TestQuickOSSPValidAndTheoremsHold(t *testing.T) {
	prop := func(rawTheta float64, id uint8) bool {
		theta := math.Mod(math.Abs(rawTheta), 1)
		if math.IsNaN(theta) {
			theta = 0.2
		}
		pf := payoff.Table2()[1+int(id)%7]
		s, err := SolveLP(pf, theta)
		if err != nil {
			return false
		}
		if s.Validate(theta) != nil {
			return false
		}
		ok2, err2 := Theorem2Holds(pf, theta, 1e-6)
		ok3, err3 := Theorem3Holds(pf, theta, 1e-6)
		ok4, err4 := Theorem4Holds(pf, theta, 1e-6)
		return err2 == nil && err3 == nil && err4 == nil && ok2 && ok3 && ok4
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickOSSPGeneralPayoffs(t *testing.T) {
	// Random payoffs respecting only the sign conventions; the LP must
	// produce a valid scheme and never hand the auditor less than the
	// participation-aware SSE value (Theorem 2 in its general form).
	prop := func(dc, du, ac, au, rawTheta float64) bool {
		clean := func(x, lo, hi float64) float64 {
			v := math.Mod(math.Abs(x), hi-lo)
			if math.IsNaN(v) {
				v = 0
			}
			return lo + v
		}
		pf := payoff.Payoff{
			DefenderCovered:   clean(dc, 0, 1000),
			DefenderUncovered: -clean(du, 0.001, 1000),
			AttackerCovered:   -clean(ac, 0.001, 1000),
			AttackerUncovered: clean(au, 0.001, 1000),
		}
		theta := clean(rawTheta, 0, 1)
		s, err := SolveLP(pf, theta)
		if err != nil {
			return false
		}
		if s.Validate(theta) != nil {
			return false
		}
		var sse float64
		if pf.AttackerExpected(theta) < 0 {
			sse = 0
		} else {
			sse = pf.DefenderExpected(theta)
		}
		return s.DefenderUtility >= sse-1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
