package signaling

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/auditgames/sag/internal/payoff"
)

func TestRobustZeroMarginEqualsOSSP(t *testing.T) {
	for id := 1; id <= 7; id++ {
		pf := payoff.Table2()[id]
		for _, theta := range []float64{0, 0.05, 0.1, 0.3, 0.7, 1} {
			exact, err := Solve(pf, theta)
			if err != nil {
				t.Fatal(err)
			}
			robust, err := SolveRobust(pf, theta, 0)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(exact.DefenderUtility-robust.DefenderUtility) > 1e-9 {
				t.Fatalf("type %d θ=%g: ε=0 robust %g vs exact %g",
					id, theta, robust.DefenderUtility, exact.DefenderUtility)
			}
		}
	}
}

func TestRobustMatchesLPAcrossMargins(t *testing.T) {
	pf := payoff.Table2()[1]
	for _, eps := range []float64{0, 10, 50, 150, 399} {
		for _, theta := range []float64{0, 0.05, 0.1, 0.166, 0.3, 0.8} {
			cf, err := SolveRobust(pf, theta, eps)
			if err != nil {
				t.Fatal(err)
			}
			lps, err := SolveRobustLP(pf, theta, eps)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(cf.DefenderUtility-lps.DefenderUtility) > 1e-5 {
				t.Fatalf("ε=%g θ=%g: closed form %g vs LP %g",
					eps, theta, cf.DefenderUtility, lps.DefenderUtility)
			}
		}
	}
}

func TestRobustMarginMonotone(t *testing.T) {
	// Hardening the persuasion constraint can only cost the auditor.
	pf := payoff.Table2()[1]
	theta := 0.1
	prev := math.Inf(1)
	for _, eps := range []float64{0, 20, 50, 100, 200, 390} {
		s, err := SolveRobust(pf, theta, eps)
		if err != nil {
			t.Fatal(err)
		}
		if s.DefenderUtility > prev+1e-9 {
			t.Fatalf("ε=%g: utility %g increased from %g", eps, s.DefenderUtility, prev)
		}
		prev = s.DefenderUtility
	}
}

func TestRobustMarginPersuasionHolds(t *testing.T) {
	pf := payoff.Table2()[1]
	for _, eps := range []float64{0, 25, 100, 350} {
		s, err := SolveRobust(pf, 0.1, eps)
		if err != nil {
			t.Fatal(err)
		}
		if w := s.P1 + s.Q1; w > 1e-9 {
			// Conditional warn-branch utility must be ≤ −ε.
			cond := (s.P1*pf.AttackerCovered + s.Q1*pf.AttackerUncovered) / w
			if cond > -eps+1e-6 {
				t.Fatalf("ε=%g: conditional warn utility %g > −ε", eps, cond)
			}
		}
		total := s.P1 + s.Q1 + s.P0 + s.Q0
		if math.Abs(total-1) > 1e-7 {
			t.Fatalf("ε=%g: probabilities sum to %g", eps, total)
		}
	}
}

func TestRobustHugeMarginDegeneratesToSilent(t *testing.T) {
	pf := payoff.Table2()[1] // U_ac = −2000
	s, err := SolveRobust(pf, 0.1, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if s.P1 != 0 || s.Q1 != 0 {
		t.Fatalf("margin beyond |U_ac| should produce a silent-only scheme: %+v", s)
	}
	// Silent-only at θ=0.1 equals the plain SSE value.
	want := pf.DefenderExpected(0.1)
	if math.Abs(s.DefenderUtility-want) > 1e-9 {
		t.Fatalf("degenerate utility %g, want SSE %g", s.DefenderUtility, want)
	}
}

func TestRobustHugeMarginDeterredCase(t *testing.T) {
	// θ above the deterrence threshold with an unpersuadable margin: the
	// silent commitment alone deters, utilities 0.
	pf := payoff.Table2()[1]
	s, err := SolveRobust(pf, 0.5, 2500)
	if err != nil {
		t.Fatal(err)
	}
	if !s.Deterred || s.DefenderUtility != 0 {
		t.Fatalf("want deterred zero-utility scheme, got %+v", s)
	}
}

func TestRobustValidation(t *testing.T) {
	pf := payoff.Table2()[1]
	if _, err := SolveRobust(pf, -0.1, 1); err == nil {
		t.Error("bad theta should be rejected")
	}
	if _, err := SolveRobust(pf, 0.1, -1); err == nil {
		t.Error("negative margin should be rejected")
	}
	if _, err := SolveRobust(pf, 0.1, math.Inf(1)); err == nil {
		t.Error("infinite margin should be rejected")
	}
	if _, err := SolveRobust(payoff.Payoff{}, 0.1, 1); err == nil {
		t.Error("invalid payoff should be rejected")
	}
	if _, err := SolveRobustLP(pf, 2, 1); err == nil {
		t.Error("LP path should validate theta too")
	}
}

func TestRobustnessPremium(t *testing.T) {
	pf := payoff.Table2()[1]
	p0, err := RobustnessPremium(pf, 0.1, 0)
	if err != nil || math.Abs(p0) > 1e-9 {
		t.Fatalf("zero-margin premium = %g, %v", p0, err)
	}
	p100, err := RobustnessPremium(pf, 0.1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if p100 < 0 {
		t.Fatalf("premium must be nonnegative, got %g", p100)
	}
	p300, err := RobustnessPremium(pf, 0.1, 300)
	if err != nil {
		t.Fatal(err)
	}
	if p300 < p100-1e-9 {
		t.Fatalf("premium should grow with the margin: ε=100 → %g, ε=300 → %g", p100, p300)
	}
}

func TestQuickRobustNeverAboveExact(t *testing.T) {
	prop := func(rawTheta, rawEps float64, id uint8) bool {
		theta := math.Mod(math.Abs(rawTheta), 1)
		eps := math.Mod(math.Abs(rawEps), 500)
		if math.IsNaN(theta) || math.IsNaN(eps) {
			return true
		}
		pf := payoff.Table2()[1+int(id)%7]
		exact, err1 := Solve(pf, theta)
		robust, err2 := SolveRobust(pf, theta, eps)
		if err1 != nil || err2 != nil {
			return false
		}
		return robust.DefenderUtility <= exact.DefenderUtility+1e-7
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
