// Package signaling computes the Online Stackelberg Signaling Policy (OSSP)
// of the Signaling Audit Game: the joint distribution over (warn / stay
// silent) × (audit / don't audit) for one triggered alert, given the
// marginal audit probability θ of the alert's type.
//
// The four decision variables follow the paper's LP (3):
//
//	p1 = P(warn,  audit)      q1 = P(warn,  no audit)
//	p0 = P(silent, audit)     q0 = P(silent, no audit)
//
// subject to p1+p0 = θ, q1+q0 = 1−θ, and the persuasion constraint
// p1·U_ac + q1·U_au ≤ 0 that makes quitting the attacker's best response to
// a warning. The objective maximizes the auditor's expected utility
// p0·U_dc + q0·U_du (only the silent branch contributes: a warned attacker
// quits, yielding 0).
//
// Both an LP-based solver (SolveLP, exercising internal/lp) and the closed
// form of the paper's Theorem 3 (Solve) are provided; they agree to solver
// tolerance whenever the Theorem 3 payoff condition holds, and the engine
// cross-checks them in tests. Theorems 2–4 are exposed as predicates for
// property-based testing.
package signaling

import (
	"context"
	"fmt"
	"math"

	"github.com/auditgames/sag/internal/lp"
	"github.com/auditgames/sag/internal/payoff"
)

// Scheme is a joint signaling/audit distribution for one alert.
type Scheme struct {
	P1 float64 // P(warn, audit)
	Q1 float64 // P(warn, no audit)
	P0 float64 // P(silent, audit)
	Q0 float64 // P(silent, no audit)
	// DefenderUtility is the auditor's expected utility for the alert under
	// this scheme, assuming it is the victim alert of a rational attacker:
	// p0·U_dc + q0·U_du (the warned branch contributes zero — the attacker
	// quits).
	DefenderUtility float64
	// AttackerUtility is the rational attacker's expected utility against
	// this scheme: max(0, p0·U_ac + q0·U_au) accounting for the option to
	// quit after a warning (and to not attack at all when the whole game
	// is unprofitable).
	AttackerUtility float64
	// Deterred reports whether the attacker's best response is to not
	// attack this type at all (β ≤ 0 in the paper's Theorem 3 analysis).
	Deterred bool
}

// WarnProbability returns P(ξ1) = p1 + q1, the chance this alert triggers a
// warning dialog.
func (s Scheme) WarnProbability() float64 { return s.P1 + s.Q1 }

// AuditGivenWarn returns P(audit | warn); 0 when the warn branch has zero
// probability.
func (s Scheme) AuditGivenWarn() float64 {
	if w := s.P1 + s.Q1; w > 0 {
		return s.P1 / w
	}
	return 0
}

// AuditGivenSilent returns P(audit | silent); 0 when the silent branch has
// zero probability.
func (s Scheme) AuditGivenSilent() float64 {
	if w := s.P0 + s.Q0; w > 0 {
		return s.P0 / w
	}
	return 0
}

// MarginalAudit returns the unconditional audit probability p1 + p0, which
// equals θ by construction (paper Theorem 1: θ_SAG = θ_SSE).
func (s Scheme) MarginalAudit() float64 { return s.P1 + s.P0 }

// Validate checks that the scheme is a probability distribution consistent
// with marginal audit probability theta.
func (s Scheme) Validate(theta float64) error {
	for _, v := range []float64{s.P1, s.Q1, s.P0, s.Q0} {
		if v < -1e-9 || v > 1+1e-9 || math.IsNaN(v) {
			return fmt.Errorf("signaling: probability out of range in %+v", s)
		}
	}
	if d := math.Abs(s.P1 + s.Q1 + s.P0 + s.Q0 - 1); d > 1e-8 {
		return fmt.Errorf("signaling: probabilities sum to %g, want 1", s.P1+s.Q1+s.P0+s.Q0)
	}
	if d := math.Abs(s.P1 + s.P0 - theta); d > 1e-8 {
		return fmt.Errorf("signaling: marginal audit %g, want θ=%g", s.P1+s.P0, theta)
	}
	return nil
}

// Solve computes the OSSP for one alert of a type with payoffs pf and
// marginal audit probability theta ∈ [0,1] using the closed form proved in
// the paper's Theorem 3. It requires the Theorem 3 condition
// U_ac·U_du − U_dc·U_au > 0 (always true for the paper's Table 2); callers
// with exotic payoffs should use SolveLP, which is fully general.
func Solve(pf payoff.Payoff, theta float64) (Scheme, error) {
	if err := pf.Validate(); err != nil {
		return Scheme{}, err
	}
	if theta < 0 || theta > 1 || math.IsNaN(theta) {
		return Scheme{}, fmt.Errorf("signaling: theta %g out of [0,1]", theta)
	}
	if !pf.SatisfiesTheorem3() {
		return Scheme{}, fmt.Errorf("signaling: payoff %+v violates the Theorem 3 condition; use SolveLP", pf)
	}
	beta := pf.AttackerExpected(theta) // θ·U_ac + (1−θ)·U_au
	// Relative tolerance keeps the two branches consistent when θ sits
	// exactly on the deterrence threshold up to floating-point round-off.
	betaTol := 1e-9 * (math.Abs(pf.AttackerCovered) + pf.AttackerUncovered)
	if beta <= betaTol {
		// Warn with the full distribution; the attacker quits on warning and
		// would not attack at all: both sides get 0.
		return Scheme{
			P1: theta, Q1: 1 - theta,
			DefenderUtility: 0,
			AttackerUtility: 0,
			Deterred:        true,
		}, nil
	}
	// β > 0: warn as often as persuasion allows. p0 = 0, q0 = β/U_au.
	q0 := beta / pf.AttackerUncovered
	s := Scheme{
		P1: theta,
		Q1: 1 - theta - q0,
		P0: 0,
		Q0: q0,
	}
	// Guard round-off: q1 can dip epsilon-negative when θ ≈ deterrence
	// threshold.
	if s.Q1 < 0 && s.Q1 > -1e-12 {
		s.Q1 = 0
	}
	s.DefenderUtility = s.P0*pf.DefenderCovered + s.Q0*pf.DefenderUncovered
	s.AttackerUtility = s.P0*pf.AttackerCovered + s.Q0*pf.AttackerUncovered
	return s, nil
}

// SolveLP computes the OSSP by solving LP (3) directly. It handles payoffs
// outside the Theorem 3 regime. The attacker's participation (attack vs.
// stay out) is resolved after the LP exactly as in the paper's Theorem 2
// argument: if the silent branch gives the attacker a non-positive expected
// utility, the rational attacker stays out and both utilities are 0.
func SolveLP(pf payoff.Payoff, theta float64) (Scheme, error) {
	return SolveLPCtx(context.Background(), pf, theta)
}

// SolveLPCtx is SolveLP with cooperative cancellation: both LP (3) solves
// poll ctx between simplex iterations (see lp.SolveCtx), so a decision
// deadline bounds the signaling stage as well as the SSE stage.
func SolveLPCtx(ctx context.Context, pf payoff.Payoff, theta float64) (Scheme, error) {
	if err := pf.Validate(); err != nil {
		return Scheme{}, err
	}
	if theta < 0 || theta > 1 || math.IsNaN(theta) {
		return Scheme{}, fmt.Errorf("signaling: theta %g out of [0,1]", theta)
	}
	return solveSignalingLP(ctx, pf, pf, theta)
}

// solveSignalingLP is the LP core shared by SolveLP and SolveRobustLP: the
// persuasion constraint is built from persuade's attacker utilities (which
// robust callers shift by their margin) while the objective, participation
// constraint, and reported utilities use the true payoffs pf.
func solveSignalingLP(ctx context.Context, pf, persuade payoff.Payoff, theta float64) (Scheme, error) {
	// Variables: p1, q1, p0, q0.
	prob := lp.New(lp.Maximize, 4)
	if err := prob.SetObjective([]float64{0, 0, pf.DefenderCovered, pf.DefenderUncovered}); err != nil {
		return Scheme{}, err
	}
	for i := 0; i < 4; i++ {
		if err := prob.SetBounds(i, 0, 1); err != nil {
			return Scheme{}, err
		}
	}
	// Persuasion: p1·U_ac + q1·U_au ≤ 0 (robust callers pass margin-shifted
	// utilities in persuade).
	if err := prob.AddConstraint([]float64{persuade.AttackerCovered, persuade.AttackerUncovered, 0, 0}, lp.LE, 0); err != nil {
		return Scheme{}, err
	}
	// Participation: p0·U_ac + q0·U_au ≥ 0. The paper notes this holds
	// automatically when the attack is profitable overall (β > 0) but it is
	// load-bearing when β ≤ 0: without it the LP would "profit" from
	// auditing an attacker who would never attack (the objective's utility
	// model is only valid against a participating attacker).
	if err := prob.AddConstraint([]float64{0, 0, pf.AttackerCovered, pf.AttackerUncovered}, lp.GE, 0); err != nil {
		return Scheme{}, err
	}
	// Marginals: p1 + p0 = θ, q1 + q0 = 1−θ.
	if err := prob.AddConstraint([]float64{1, 0, 1, 0}, lp.EQ, theta); err != nil {
		return Scheme{}, err
	}
	if err := prob.AddConstraint([]float64{0, 1, 0, 1}, lp.EQ, 1-theta); err != nil {
		return Scheme{}, err
	}
	sol, err := lp.SolveCtx(ctx, prob)
	if err != nil {
		return Scheme{}, err
	}
	if sol.Status != lp.Optimal {
		return Scheme{}, fmt.Errorf("signaling: LP(3) status %v (theta=%g)", sol.Status, theta)
	}
	// The LP can have a face of optima (e.g. when the attack is already
	// deterred every scheme with p0·U_dc + q0·U_du = 0 is optimal). The
	// paper's OSSP is the canonical vertex with minimal p0 (Theorem 3), so
	// re-solve lexicographically: minimize p0 subject to optimal value.
	second := lp.New(lp.Minimize, 4)
	if err := second.SetObjective([]float64{0, 0, 1, 0}); err != nil {
		return Scheme{}, err
	}
	for i := 0; i < 4; i++ {
		if err := second.SetBounds(i, 0, 1); err != nil {
			return Scheme{}, err
		}
	}
	if err := second.AddConstraint([]float64{persuade.AttackerCovered, persuade.AttackerUncovered, 0, 0}, lp.LE, 0); err != nil {
		return Scheme{}, err
	}
	if err := second.AddConstraint([]float64{0, 0, pf.AttackerCovered, pf.AttackerUncovered}, lp.GE, 0); err != nil {
		return Scheme{}, err
	}
	if err := second.AddConstraint([]float64{1, 0, 1, 0}, lp.EQ, theta); err != nil {
		return Scheme{}, err
	}
	if err := second.AddConstraint([]float64{0, 1, 0, 1}, lp.EQ, 1-theta); err != nil {
		return Scheme{}, err
	}
	optTol := 1e-10 * (1 + math.Abs(sol.Objective))
	if err := second.AddConstraint([]float64{0, 0, pf.DefenderCovered, pf.DefenderUncovered}, lp.GE, sol.Objective-optTol); err != nil {
		return Scheme{}, err
	}
	if sol2, err := lp.SolveCtx(ctx, second); err == nil && sol2.Status == lp.Optimal {
		sol = &lp.Solution{Status: lp.Optimal, X: sol2.X, Objective: prob.ObjectiveAt(sol2.X)}
	}
	s := Scheme{P1: sol.X[0], Q1: sol.X[1], P0: sol.X[2], Q0: sol.X[3]}
	attacker := s.P0*pf.AttackerCovered + s.Q0*pf.AttackerUncovered
	attackerTol := 1e-9 * (math.Abs(pf.AttackerCovered) + pf.AttackerUncovered)
	if attacker <= attackerTol {
		// Rational attacker stays out entirely; both sides get zero.
		s.Deterred = true
		s.DefenderUtility = 0
		s.AttackerUtility = 0
		return s, nil
	}
	s.DefenderUtility = sol.Objective
	s.AttackerUtility = attacker
	return s, nil
}

// Theorem2Holds checks the paper's Theorem 2 on a concrete instance: the
// auditor's OSSP utility is never worse than the SSE utility at the same
// marginal coverage θ. sseUtility must account for attacker participation
// (0 when the attack is deterred at coverage θ).
func Theorem2Holds(pf payoff.Payoff, theta float64, tol float64) (bool, error) {
	s, err := SolveLP(pf, theta)
	if err != nil {
		return false, err
	}
	var sse float64
	if pf.AttackerExpected(theta) < 0 {
		sse = 0 // attacker would not attack even without signaling
	} else {
		sse = pf.DefenderExpected(theta)
	}
	return s.DefenderUtility >= sse-tol, nil
}

// Theorem3Holds checks that p0 = 0 in the OSSP when the payoff condition
// holds.
func Theorem3Holds(pf payoff.Payoff, theta float64, tol float64) (bool, error) {
	if !pf.SatisfiesTheorem3() {
		return true, nil // theorem's hypothesis not met; vacuously true
	}
	s, err := SolveLP(pf, theta)
	if err != nil {
		return false, err
	}
	return math.Abs(s.P0) <= tol, nil
}

// Theorem4Holds checks that the attacker's expected utility is identical
// under the OSSP and under the plain SSE at the same θ (both clamped below
// by 0, the stay-out option).
func Theorem4Holds(pf payoff.Payoff, theta float64, tol float64) (bool, error) {
	s, err := SolveLP(pf, theta)
	if err != nil {
		return false, err
	}
	sse := math.Max(0, pf.AttackerExpected(theta))
	ossp := math.Max(0, s.AttackerUtility)
	return math.Abs(sse-ossp) <= tol, nil
}
