package signaling

import (
	"context"
	"fmt"
	"math"

	"github.com/auditgames/sag/internal/payoff"
)

// This file implements the robust extension the paper's conclusions call
// for ("we assume that the attacker is perfectly rational; such a strong
// assumption may lead to an unexpected loss in practice; thus, a robust
// version of the SAG should be developed for deployment").
//
// The robustness model: a boundedly rational attacker quits after a
// warning only when proceeding is worse than quitting by a strict margin —
// his conditional expected utility must be at most −ε, not merely ≤ 0.
// Equivalently, the persuasion constraint of LP (3) hardens to
//
//	p1·U_ac + q1·U_au ≤ −ε·(p1 + q1),
//
// the right-hand side scaling with the warn-branch mass so ε is a margin on
// the attacker's *conditional* utility. ε = 0 recovers the exact OSSP.

// SolveRobust computes the ε-robust OSSP for one alert of a type with
// payoffs pf and marginal audit probability theta. It requires the Theorem
// 3 payoff condition (as Solve does) and ε ≥ 0.
//
// Closed form (the Theorem 3 geometry shifted by the margin): let
// β_ε = θ·(U_ac+ε) + (1−θ)·(U_au+ε) = β + ε. If β_ε ≤ 0 the whole
// distribution can be warned and the attack is deterred with margin. If
// β_ε > 0 the warn branch is filled until its conditional utility is
// exactly −ε: p1 = θ, q1 chosen with p1·U_ac + q1·U_au = −ε(p1+q1), i.e.
// q1 = θ·(−U_ac−ε)/(U_au+ε), the rest silent with p0 = 0.
func SolveRobust(pf payoff.Payoff, theta, epsilon float64) (Scheme, error) {
	if err := pf.Validate(); err != nil {
		return Scheme{}, err
	}
	if theta < 0 || theta > 1 || math.IsNaN(theta) {
		return Scheme{}, fmt.Errorf("signaling: theta %g out of [0,1]", theta)
	}
	if epsilon < 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return Scheme{}, fmt.Errorf("signaling: robustness margin %g must be a finite nonnegative number", epsilon)
	}
	if !pf.SatisfiesTheorem3() {
		return Scheme{}, fmt.Errorf("signaling: payoff %+v violates the Theorem 3 condition", pf)
	}
	// Margin-shifted attacker utilities.
	ac := pf.AttackerCovered + epsilon
	au := pf.AttackerUncovered + epsilon
	if ac >= 0 {
		// The margin exceeds the attacker's penalty: no warning can ever
		// persuade with that margin, so signaling degenerates to the plain
		// SSE commitment (everything silent).
		s := Scheme{Q0: 1 - theta, P0: theta}
		s.DefenderUtility = s.P0*pf.DefenderCovered + s.Q0*pf.DefenderUncovered
		s.AttackerUtility = s.P0*pf.AttackerCovered + s.Q0*pf.AttackerUncovered
		if s.AttackerUtility <= 0 {
			s.Deterred = true
			s.DefenderUtility = 0
			s.AttackerUtility = 0
		}
		return s, nil
	}
	betaEps := theta*ac + (1-theta)*au
	tol := 1e-9 * (math.Abs(pf.AttackerCovered) + pf.AttackerUncovered + epsilon)
	if betaEps <= tol {
		// Warn everything; the attacker quits with margin and stays out.
		return Scheme{
			P1: theta, Q1: 1 - theta,
			Deterred: true,
		}, nil
	}
	// Fill the warn branch to its margin capacity.
	q1 := theta * (-ac) / au
	s := Scheme{
		P1: theta,
		Q1: q1,
		P0: 0,
		Q0: 1 - theta - q1,
	}
	if s.Q0 < 0 && s.Q0 > -1e-12 {
		s.Q0 = 0
	}
	if s.Q0 < 0 {
		return Scheme{}, fmt.Errorf("signaling: internal: negative q0 %g (theta=%g eps=%g)", s.Q0, theta, epsilon)
	}
	s.DefenderUtility = s.P0*pf.DefenderCovered + s.Q0*pf.DefenderUncovered
	s.AttackerUtility = s.P0*pf.AttackerCovered + s.Q0*pf.AttackerUncovered
	return s, nil
}

// SolveRobustLP computes the ε-robust OSSP by LP, mirroring SolveLP with
// the hardened persuasion constraint p1·(U_ac+ε) + q1·(U_au+ε) ≤ 0. It is
// the general-payoff path and the cross-check for SolveRobust's closed
// form.
func SolveRobustLP(pf payoff.Payoff, theta, epsilon float64) (Scheme, error) {
	if err := pf.Validate(); err != nil {
		return Scheme{}, err
	}
	if theta < 0 || theta > 1 || math.IsNaN(theta) {
		return Scheme{}, fmt.Errorf("signaling: theta %g out of [0,1]", theta)
	}
	if epsilon < 0 || math.IsNaN(epsilon) || math.IsInf(epsilon, 0) {
		return Scheme{}, fmt.Errorf("signaling: robustness margin %g must be a finite nonnegative number", epsilon)
	}
	shifted := pf
	shifted.AttackerCovered += epsilon
	shifted.AttackerUncovered += epsilon
	if shifted.AttackerCovered >= 0 {
		// Persuasion impossible at this margin; defer to the closed form's
		// degenerate all-silent branch.
		return SolveRobust(pf, theta, epsilon)
	}
	// SolveLP's persuasion row uses the payoff's attacker utilities; feed
	// it the shifted ones but keep the true utilities for the objective
	// and participation by rebuilding the pieces here.
	s, err := solveSignalingLP(context.Background(), pf, shifted, theta)
	if err != nil {
		return Scheme{}, err
	}
	return s, nil
}

// RobustnessPremium returns the auditor utility the margin costs at one
// (θ, ε) point: exact OSSP value minus robust value. It is ≥ 0 (hardening
// a constraint cannot help) and 0 at ε = 0.
func RobustnessPremium(pf payoff.Payoff, theta, epsilon float64) (float64, error) {
	exact, err := Solve(pf, theta)
	if err != nil {
		return 0, err
	}
	robust, err := SolveRobust(pf, theta, epsilon)
	if err != nil {
		return 0, err
	}
	return exact.DefenderUtility - robust.DefenderUtility, nil
}
