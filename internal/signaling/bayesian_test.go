package signaling

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/auditgames/sag/internal/payoff"
)

func defSide() DefenderSide { return DefenderSide{Covered: 100, Uncovered: -400} }

func TestBayesianSingleTypeReducesToOSSP(t *testing.T) {
	// With one attacker type, the Bayesian solver must reproduce the plain
	// OSSP across the θ range.
	pf := payoff.Table2()[1]
	types := []AttackerType{{Prior: 1, Covered: pf.AttackerCovered, Uncovered: pf.AttackerUncovered}}
	def := DefenderSide{Covered: pf.DefenderCovered, Uncovered: pf.DefenderUncovered}
	for theta := 0.0; theta <= 1.0001; theta += 0.1 {
		th := math.Min(theta, 1)
		b, err := SolveBayesian(def, types, th)
		if err != nil {
			t.Fatal(err)
		}
		s, err := SolveLP(pf, th)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(b.DefenderUtility-s.DefenderUtility) > 1e-6 {
			t.Fatalf("θ=%.1f: Bayesian %g vs OSSP %g", th, b.DefenderUtility, s.DefenderUtility)
		}
	}
}

func TestBayesianValidation(t *testing.T) {
	def := defSide()
	good := []AttackerType{{Prior: 1, Covered: -2000, Uncovered: 400}}
	cases := []struct {
		name  string
		def   DefenderSide
		types []AttackerType
		theta float64
	}{
		{"no types", def, nil, 0.1},
		{"bad theta", def, good, 1.5},
		{"NaN theta", def, good, math.NaN()},
		{"bad prior", def, []AttackerType{{Prior: 0, Covered: -1, Uncovered: 1}}, 0.1},
		{"priors not summing", def, []AttackerType{{Prior: 0.4, Covered: -1, Uncovered: 1}}, 0.1},
		{"bad covered sign", def, []AttackerType{{Prior: 1, Covered: 1, Uncovered: 1}}, 0.1},
		{"bad uncovered sign", def, []AttackerType{{Prior: 1, Covered: -1, Uncovered: -1}}, 0.1},
		{"bad defender", DefenderSide{Covered: -1, Uncovered: -1}, good, 0.1},
	}
	for _, c := range cases {
		if _, err := SolveBayesian(c.def, c.types, c.theta); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	// Too many types.
	many := make([]AttackerType, MaxBayesianTypes+1)
	for i := range many {
		many[i] = AttackerType{Prior: 1 / float64(len(many)), Covered: -10, Uncovered: 1}
	}
	if _, err := SolveBayesian(def, many, 0.1); err == nil {
		t.Error("too many types should be rejected")
	}
}

func TestBayesianSchemeIsDistribution(t *testing.T) {
	def := defSide()
	types := []AttackerType{
		{Prior: 0.6, Covered: -2000, Uncovered: 400},
		{Prior: 0.4, Covered: -500, Uncovered: 900}, // bolder type
	}
	for _, theta := range []float64{0, 0.05, 0.1, 0.2, 0.5, 1} {
		s, err := SolveBayesian(def, types, theta)
		if err != nil {
			t.Fatal(err)
		}
		total := s.P1 + s.Q1 + s.P0 + s.Q0
		if math.Abs(total-1) > 1e-7 {
			t.Fatalf("θ=%g: probabilities sum to %g", theta, total)
		}
		if math.Abs(s.P1+s.P0-theta) > 1e-7 {
			t.Fatalf("θ=%g: marginal audit %g", theta, s.P1+s.P0)
		}
		for _, v := range []float64{s.P1, s.Q1, s.P0, s.Q0} {
			if v < -1e-9 || v > 1+1e-9 {
				t.Fatalf("θ=%g: probability %g out of range", theta, v)
			}
		}
		if len(s.QuitsAfterWarn) != 2 || len(s.Participates) != 2 || len(s.TypeUtilities) != 2 {
			t.Fatal("per-type slices sized wrong")
		}
	}
}

func TestBayesianBestResponseConsistency(t *testing.T) {
	// The reported pattern must be consistent with the scheme: quitting
	// types have non-positive warn-branch utility, proceeding types
	// non-negative; participating types have non-negative overall utility.
	def := defSide()
	types := []AttackerType{
		{Prior: 0.5, Covered: -2000, Uncovered: 400},
		{Prior: 0.3, Covered: -300, Uncovered: 800},
		{Prior: 0.2, Covered: -5000, Uncovered: 200},
	}
	for _, theta := range []float64{0.02, 0.08, 0.15, 0.3} {
		s, err := SolveBayesian(def, types, theta)
		if err != nil {
			t.Fatal(err)
		}
		for k, at := range types {
			warnU := s.P1*at.Covered + s.Q1*at.Uncovered
			if s.QuitsAfterWarn[k] && warnU > 1e-6 {
				t.Fatalf("θ=%g type %d: quits but warn utility %g > 0", theta, k, warnU)
			}
			if !s.QuitsAfterWarn[k] && warnU < -1e-6 {
				t.Fatalf("θ=%g type %d: proceeds but warn utility %g < 0", theta, k, warnU)
			}
			a := s.P0*at.Covered + s.Q0*at.Uncovered
			if !s.QuitsAfterWarn[k] {
				a += warnU
			}
			if s.Participates[k] && a < -1e-6 {
				t.Fatalf("θ=%g type %d: participates at utility %g", theta, k, a)
			}
			if !s.Participates[k] && a > 1e-6 {
				t.Fatalf("θ=%g type %d: stays out despite utility %g", theta, k, a)
			}
			if s.Participates[k] && math.Abs(s.TypeUtilities[k]-a) > 1e-6 {
				t.Fatalf("θ=%g type %d: reported utility %g vs computed %g", theta, k, s.TypeUtilities[k], a)
			}
		}
	}
}

func TestBayesianDominatesWorstCaseSingleType(t *testing.T) {
	// Facing a mixture, the Bayesian optimum is at least the prior-weighted
	// value of any fixed feasible scheme — in particular the scheme
	// optimized for the timid type alone. Sanity-check the direction.
	def := defSide()
	timid := AttackerType{Prior: 0.7, Covered: -2000, Uncovered: 400}
	bold := AttackerType{Prior: 0.3, Covered: -300, Uncovered: 900}
	theta := 0.1
	b, err := SolveBayesian(def, []AttackerType{timid, bold}, theta)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate the timid-only OSSP scheme against the mixture.
	pfTimid := payoff.Payoff{
		DefenderCovered: def.Covered, DefenderUncovered: def.Uncovered,
		AttackerCovered: timid.Covered, AttackerUncovered: timid.Uncovered,
	}
	s, err := SolveLP(pfTimid, theta)
	if err != nil {
		t.Fatal(err)
	}
	mixture := 0.0
	for _, at := range []AttackerType{timid, bold} {
		warnU := s.P1*at.Covered + s.Q1*at.Uncovered
		attackU := s.P0*at.Covered + s.Q0*at.Uncovered
		if warnU > 0 {
			attackU += warnU
		}
		if attackU <= 0 {
			continue // this type stays out → contributes 0
		}
		contrib := s.P0*def.Covered + s.Q0*def.Uncovered
		if warnU > 0 {
			contrib += s.P1*def.Covered + s.Q1*def.Uncovered
		}
		mixture += at.Prior * contrib
	}
	if b.DefenderUtility < mixture-1e-6 {
		t.Fatalf("Bayesian optimum %g below fixed-scheme value %g", b.DefenderUtility, mixture)
	}
}

func TestQuickBayesianNeverBelowNoSignal(t *testing.T) {
	// Not signaling at all (everything silent) is always feasible, so the
	// Bayesian optimum is bounded below by the no-signal mixture value.
	def := defSide()
	prop := func(c1, u1, c2, u2, pr, rawTheta float64) bool {
		clean := func(x, lo, hi float64) float64 {
			v := math.Mod(math.Abs(x), hi-lo)
			if math.IsNaN(v) {
				v = 0
			}
			return lo + v
		}
		t1 := AttackerType{Covered: -clean(c1, 1, 5000), Uncovered: clean(u1, 1, 1000)}
		t2 := AttackerType{Covered: -clean(c2, 1, 5000), Uncovered: clean(u2, 1, 1000)}
		t1.Prior = clean(pr, 0.05, 0.95)
		t2.Prior = 1 - t1.Prior
		theta := clean(rawTheta, 0, 1)
		b, err := SolveBayesian(def, []AttackerType{t1, t2}, theta)
		if err != nil {
			return false
		}
		// No-signal value: each type attacks iff θ-coverage leaves him
		// positive utility.
		noSignal := 0.0
		for _, at := range []AttackerType{t1, t2} {
			if theta*at.Covered+(1-theta)*at.Uncovered > 0 {
				noSignal += at.Prior * (theta*def.Covered + (1-theta)*def.Uncovered)
			}
		}
		return b.DefenderUtility >= noSignal-1e-6
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
