package signaling

import (
	"fmt"
	"math"

	"github.com/auditgames/sag/internal/lp"
)

// This file implements the Bayesian extension the paper sketches in its
// conclusions ("in practice, there may exist many types of attacker; thus,
// SAG can be generalized into a Bayesian setting"): the auditor faces an
// attacker whose payoff structure is private, drawn from a known prior over
// finitely many types. The auditor still commits to one joint
// signaling/audit scheme per alert; each attacker type best-responds to it
// separately (quit or proceed after a warning; attack or stay out
// overall).
//
// The optimal Bayesian scheme is found by enumerating the attacker types'
// joint best-response pattern — which types a warning persuades to quit,
// and which types participate at all — and solving one LP per pattern with
// the pattern enforced as constraints. With m types this is 4^m small LPs;
// the implementation caps m at 8, far beyond what the audit setting needs.

// AttackerType is one attacker type in the Bayesian SAG: its prior
// probability and its private utilities for attacking a covered/uncovered
// alert.
type AttackerType struct {
	Prior float64
	// Covered is the attacker's utility when his victim alert is audited
	// (must be < 0).
	Covered float64
	// Uncovered is his utility when it is not audited (must be > 0).
	Uncovered float64
}

// DefenderSide is the auditor's side of the payoff matrix (hers is public
// and type-independent).
type DefenderSide struct {
	// Covered is the auditor's utility for auditing the victim alert
	// (≥ 0); Uncovered for missing it (< 0).
	Covered   float64
	Uncovered float64
}

// BayesianScheme is the optimal joint scheme against a type-uncertain
// attacker, with each type's induced behavior.
type BayesianScheme struct {
	P1, Q1, P0, Q0 float64
	// DefenderUtility is the prior-weighted expected auditor utility.
	DefenderUtility float64
	// QuitsAfterWarn[k] reports whether type k quits on seeing a warning.
	QuitsAfterWarn []bool
	// Participates[k] reports whether type k attacks at all.
	Participates []bool
	// TypeUtilities[k] is type k's expected utility under the scheme
	// (0 when it stays out).
	TypeUtilities []float64
}

// MaxBayesianTypes bounds the enumeration (4^m LPs).
const MaxBayesianTypes = 8

// SolveBayesian computes the optimal Bayesian OSSP for one alert with
// marginal audit probability theta, defender payoffs def, and attacker
// type distribution types. Priors must be positive and sum to 1 (within
// 1e-9).
func SolveBayesian(def DefenderSide, types []AttackerType, theta float64) (BayesianScheme, error) {
	if len(types) == 0 {
		return BayesianScheme{}, fmt.Errorf("signaling: no attacker types")
	}
	if len(types) > MaxBayesianTypes {
		return BayesianScheme{}, fmt.Errorf("signaling: %d attacker types exceeds the supported %d", len(types), MaxBayesianTypes)
	}
	if theta < 0 || theta > 1 || math.IsNaN(theta) {
		return BayesianScheme{}, fmt.Errorf("signaling: theta %g out of [0,1]", theta)
	}
	if !(def.Covered >= 0) || !(def.Uncovered < 0) {
		return BayesianScheme{}, fmt.Errorf("signaling: defender payoffs %+v violate U_dc >= 0 > U_du", def)
	}
	sum := 0.0
	for k, t := range types {
		if !(t.Prior > 0) {
			return BayesianScheme{}, fmt.Errorf("signaling: type %d prior %g must be positive", k, t.Prior)
		}
		if !(t.Covered < 0) || !(t.Uncovered > 0) {
			return BayesianScheme{}, fmt.Errorf("signaling: type %d payoffs %+v violate U_ac < 0 < U_au", k, t)
		}
		sum += t.Prior
	}
	if math.Abs(sum-1) > 1e-9 {
		return BayesianScheme{}, fmt.Errorf("signaling: priors sum to %g, want 1", sum)
	}

	m := len(types)
	best := BayesianScheme{DefenderUtility: math.Inf(-1)}
	found := false
	for quitMask := 0; quitMask < 1<<m; quitMask++ {
		for partMask := 0; partMask < 1<<m; partMask++ {
			s, ok, err := solveBayesianPattern(def, types, theta, quitMask, partMask)
			if err != nil {
				return BayesianScheme{}, err
			}
			if ok && (!found || s.DefenderUtility > best.DefenderUtility+1e-12) {
				best = s
				found = true
			}
		}
	}
	if !found {
		// Cannot happen: the all-quit/none-participate pattern admits
		// p1=θ, q1=1−θ whenever every type's β ≤ 0, and the complementary
		// patterns cover the rest; kept as a defensive error.
		return BayesianScheme{}, fmt.Errorf("signaling: no feasible best-response pattern (internal invariant violated)")
	}
	return best, nil
}

// solveBayesianPattern solves the LP that enforces a fixed best-response
// pattern: bit k of quitMask = type k quits after a warning; bit k of
// partMask = type k participates (attacks).
func solveBayesianPattern(def DefenderSide, types []AttackerType, theta float64, quitMask, partMask int) (BayesianScheme, bool, error) {
	m := len(types)
	prob := lp.New(lp.Maximize, 4) // p1, q1, p0, q0
	for i := 0; i < 4; i++ {
		if err := prob.SetBounds(i, 0, 1); err != nil {
			return BayesianScheme{}, false, err
		}
	}
	// Marginals.
	if err := prob.AddConstraint([]float64{1, 0, 1, 0}, lp.EQ, theta); err != nil {
		return BayesianScheme{}, false, err
	}
	if err := prob.AddConstraint([]float64{0, 1, 0, 1}, lp.EQ, 1-theta); err != nil {
		return BayesianScheme{}, false, err
	}

	obj := make([]float64, 4)
	for k, t := range types {
		quits := quitMask&(1<<k) != 0
		participates := partMask&(1<<k) != 0

		// Persuasion sign: warn-branch utility p1·U_ac + q1·U_au.
		warnRow := []float64{t.Covered, t.Uncovered, 0, 0}
		if quits {
			if err := prob.AddConstraint(warnRow, lp.LE, 0); err != nil {
				return BayesianScheme{}, false, err
			}
		} else {
			if err := prob.AddConstraint(warnRow, lp.GE, 0); err != nil {
				return BayesianScheme{}, false, err
			}
		}

		// Participation sign on the overall attack utility A_k.
		aRow := []float64{0, 0, t.Covered, t.Uncovered}
		if !quits {
			aRow[0] += t.Covered
			aRow[1] += t.Uncovered
		}
		if participates {
			if err := prob.AddConstraint(aRow, lp.GE, 0); err != nil {
				return BayesianScheme{}, false, err
			}
		} else {
			if err := prob.AddConstraint(aRow, lp.LE, 0); err != nil {
				return BayesianScheme{}, false, err
			}
		}

		// Objective contribution: participating types expose the auditor
		// to the silent branch always and to the warn branch only when
		// they proceed through it.
		if participates {
			obj[2] += t.Prior * def.Covered
			obj[3] += t.Prior * def.Uncovered
			if !quits {
				obj[0] += t.Prior * def.Covered
				obj[1] += t.Prior * def.Uncovered
			}
		}
	}
	if err := prob.SetObjective(obj); err != nil {
		return BayesianScheme{}, false, err
	}

	sol, err := lp.Solve(prob)
	if err != nil {
		return BayesianScheme{}, false, err
	}
	if sol.Status != lp.Optimal {
		return BayesianScheme{}, false, nil
	}

	s := BayesianScheme{
		P1: sol.X[0], Q1: sol.X[1], P0: sol.X[2], Q0: sol.X[3],
		DefenderUtility: sol.Objective,
		QuitsAfterWarn:  make([]bool, m),
		Participates:    make([]bool, m),
		TypeUtilities:   make([]float64, m),
	}
	for k, t := range types {
		s.QuitsAfterWarn[k] = quitMask&(1<<k) != 0
		s.Participates[k] = partMask&(1<<k) != 0
		if s.Participates[k] {
			u := s.P0*t.Covered + s.Q0*t.Uncovered
			if !s.QuitsAfterWarn[k] {
				u += s.P1*t.Covered + s.Q1*t.Uncovered
			}
			s.TypeUtilities[k] = u
		}
	}
	return s, true, nil
}
