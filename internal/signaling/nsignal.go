package signaling

import (
	"fmt"
	"math"

	"github.com/auditgames/sag/internal/lp"
	"github.com/auditgames/sag/internal/payoff"
)

// This file generalizes the signaling scheme from the paper's binary
// alphabet {warn, silent} to n distinct signals, each with its own audit
// probability. Persuasion theory (Kamenica–Gentzkow; Xu et al. 2015) says
// the binary scheme is already optimal — against a single receiver with a
// binary action, more signals cannot help — and SolveNSignal lets the test
// suite verify that claim numerically on this game rather than take it on
// faith.

// NSignalScheme is a joint distribution over n signals × {audit, skip}.
type NSignalScheme struct {
	// P[s] = P(signal s, audit); Q[s] = P(signal s, no audit).
	P, Q []float64
	// Proceeds[s] reports the attacker's best response to signal s.
	Proceeds        []bool
	DefenderUtility float64
	AttackerUtility float64
}

// MaxSignals bounds the response-pattern enumeration (2^n LPs).
const MaxSignals = 10

// SolveNSignal computes the optimal n-signal scheme for one alert with
// marginal audit probability theta. Signal 0 plays the paper's "silent"
// role: the requester sees nothing and always proceeds. Signals 1..n-1 are
// distinct warning dialogs whose proceed/quit responses are the attacker's
// choice; the solver enumerates all response patterns and keeps the best
// feasible one. n = 2 is exactly the paper's LP (3).
func SolveNSignal(pf payoff.Payoff, theta float64, n int) (NSignalScheme, error) {
	if err := pf.Validate(); err != nil {
		return NSignalScheme{}, err
	}
	if theta < 0 || theta > 1 || math.IsNaN(theta) {
		return NSignalScheme{}, fmt.Errorf("signaling: theta %g out of [0,1]", theta)
	}
	if n < 1 || n > MaxSignals {
		return NSignalScheme{}, fmt.Errorf("signaling: n %d out of [1,%d]", n, MaxSignals)
	}
	best := NSignalScheme{DefenderUtility: math.Inf(-1)}
	found := false
	// Enumerate proceed/quit patterns for the warning signals (signal 0
	// always proceeds) and, per pattern, both participation regimes — the
	// attacker attacking (utility ≥ 0 enforced) or staying out (≤ 0, both
	// sides scoring zero).
	warnings := n - 1
	for mask := 0; mask < 1<<warnings; mask++ {
		for _, participates := range []bool{true, false} {
			s, ok, err := solveNSignalPattern(pf, theta, n, mask, participates)
			if err != nil {
				return NSignalScheme{}, err
			}
			if ok && (!found || s.DefenderUtility > best.DefenderUtility+1e-12) {
				best = s
				found = true
			}
		}
	}
	if !found {
		return NSignalScheme{}, fmt.Errorf("signaling: no feasible response pattern (internal invariant violated)")
	}
	return best, nil
}

// solveNSignalPattern solves the LP with a fixed response pattern: bit
// s-1 of mask set means the attacker proceeds through warning signal s;
// participates fixes whether the attacker attacks at all.
func solveNSignalPattern(pf payoff.Payoff, theta float64, n, mask int, participates bool) (NSignalScheme, bool, error) {
	// Variables: p_0..p_{n-1}, q_0..q_{n-1}.
	nv := 2 * n
	prob := lp.New(lp.Maximize, nv)
	pIdx := func(s int) int { return s }
	qIdx := func(s int) int { return n + s }
	for i := 0; i < nv; i++ {
		if err := prob.SetBounds(i, 0, 1); err != nil {
			return NSignalScheme{}, false, err
		}
	}
	proceeds := func(s int) bool {
		if s == 0 {
			return true
		}
		return mask&(1<<(s-1)) != 0
	}

	// Objective: the auditor collects her victim-alert utility on every
	// signal the attacker proceeds through; a non-participating attacker
	// yields zero regardless of the split.
	obj := make([]float64, nv)
	if participates {
		for s := 0; s < n; s++ {
			if proceeds(s) {
				obj[pIdx(s)] = pf.DefenderCovered
				obj[qIdx(s)] = pf.DefenderUncovered
			}
		}
	}
	if err := prob.SetObjective(obj); err != nil {
		return NSignalScheme{}, false, err
	}

	// Marginals: Σ p_s = θ, Σ q_s = 1−θ.
	rowP := make([]float64, nv)
	rowQ := make([]float64, nv)
	for s := 0; s < n; s++ {
		rowP[pIdx(s)] = 1
		rowQ[qIdx(s)] = 1
	}
	if err := prob.AddConstraint(rowP, lp.EQ, theta); err != nil {
		return NSignalScheme{}, false, err
	}
	if err := prob.AddConstraint(rowQ, lp.EQ, 1-theta); err != nil {
		return NSignalScheme{}, false, err
	}

	// Incentive rows: the attacker's conditional utility at each warning
	// signal must match its assigned response; participation bounds the
	// total.
	for s := 1; s < n; s++ {
		row := make([]float64, nv)
		row[pIdx(s)] = pf.AttackerCovered
		row[qIdx(s)] = pf.AttackerUncovered
		if proceeds(s) {
			if err := prob.AddConstraint(row, lp.GE, 0); err != nil {
				return NSignalScheme{}, false, err
			}
		} else {
			if err := prob.AddConstraint(row, lp.LE, 0); err != nil {
				return NSignalScheme{}, false, err
			}
		}
	}
	// Participation sign: attacking must be weakly profitable when the
	// pattern says the attacker participates, weakly unprofitable when he
	// stays out.
	part := make([]float64, nv)
	for s := 0; s < n; s++ {
		if proceeds(s) {
			part[pIdx(s)] += pf.AttackerCovered
			part[qIdx(s)] += pf.AttackerUncovered
		}
	}
	rel := lp.GE
	if !participates {
		rel = lp.LE
	}
	if err := prob.AddConstraint(part, rel, 0); err != nil {
		return NSignalScheme{}, false, err
	}

	sol, err := lp.Solve(prob)
	if err != nil {
		return NSignalScheme{}, false, err
	}
	if sol.Status != lp.Optimal {
		return NSignalScheme{}, false, nil
	}
	s := NSignalScheme{
		P:        append([]float64(nil), sol.X[:n]...),
		Q:        append([]float64(nil), sol.X[n:]...),
		Proceeds: make([]bool, n),
	}
	attacker := 0.0
	for sig := 0; sig < n; sig++ {
		s.Proceeds[sig] = proceeds(sig)
		if proceeds(sig) {
			attacker += s.P[sig]*pf.AttackerCovered + s.Q[sig]*pf.AttackerUncovered
		}
	}
	if !participates {
		// Staying out: both sides realize zero.
		s.DefenderUtility = 0
		s.AttackerUtility = 0
		return s, true, nil
	}
	tol := 1e-9 * (math.Abs(pf.AttackerCovered) + pf.AttackerUncovered)
	if attacker <= tol {
		// Exactly indifferent: strong-SSE tie-break, attacker stays out.
		s.DefenderUtility = math.Max(0, sol.Objective)
		s.AttackerUtility = 0
		return s, true, nil
	}
	s.DefenderUtility = sol.Objective
	s.AttackerUtility = attacker
	return s, true, nil
}
