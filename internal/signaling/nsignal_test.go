package signaling

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/auditgames/sag/internal/payoff"
)

func TestNSignalTwoEqualsBinaryOSSP(t *testing.T) {
	for id := 1; id <= 7; id++ {
		pf := payoff.Table2()[id]
		for _, theta := range []float64{0, 0.05, 0.1, 0.2, 0.5, 1} {
			binary, err := SolveLP(pf, theta)
			if err != nil {
				t.Fatal(err)
			}
			two, err := SolveNSignal(pf, theta, 2)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(two.DefenderUtility-binary.DefenderUtility) > 1e-6 {
				t.Fatalf("type %d θ=%g: 2-signal %g vs binary %g",
					id, theta, two.DefenderUtility, binary.DefenderUtility)
			}
		}
	}
}

func TestTwoSignalsSuffice(t *testing.T) {
	// The persuasion-theoretic claim, verified numerically: 3, 4, and 5
	// signal alphabets buy the auditor nothing over the paper's binary
	// warn/silent scheme.
	for _, id := range []int{1, 4, 7} {
		pf := payoff.Table2()[id]
		for _, theta := range []float64{0.03, 0.1, 0.166, 0.4} {
			binary, err := SolveLP(pf, theta)
			if err != nil {
				t.Fatal(err)
			}
			for n := 3; n <= 5; n++ {
				multi, err := SolveNSignal(pf, theta, n)
				if err != nil {
					t.Fatal(err)
				}
				if multi.DefenderUtility > binary.DefenderUtility+1e-6 {
					t.Fatalf("type %d θ=%g: %d signals beat binary (%g > %g) — persuasion theory violated",
						id, theta, n, multi.DefenderUtility, binary.DefenderUtility)
				}
				if multi.DefenderUtility < binary.DefenderUtility-1e-6 {
					t.Fatalf("type %d θ=%g: %d signals worse than binary (%g < %g) — superset should match",
						id, theta, n, multi.DefenderUtility, binary.DefenderUtility)
				}
			}
		}
	}
}

func TestNSignalOneSignalIsNoSignaling(t *testing.T) {
	// With a single (silent) signal there is nothing to reveal: the value
	// equals the plain SSE commitment at θ, with participation accounting.
	pf := payoff.Table2()[1]
	for _, theta := range []float64{0.05, 0.1, 0.3} {
		s, err := SolveNSignal(pf, theta, 1)
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		if pf.AttackerExpected(theta) <= 0 {
			want = 0
		} else {
			want = pf.DefenderExpected(theta)
		}
		if math.Abs(s.DefenderUtility-want) > 1e-6 {
			t.Fatalf("θ=%g: 1-signal %g, want %g", theta, s.DefenderUtility, want)
		}
	}
}

func TestNSignalValidation(t *testing.T) {
	pf := payoff.Table2()[1]
	if _, err := SolveNSignal(pf, -0.1, 2); err == nil {
		t.Error("bad theta should be rejected")
	}
	if _, err := SolveNSignal(pf, 0.1, 0); err == nil {
		t.Error("zero signals should be rejected")
	}
	if _, err := SolveNSignal(pf, 0.1, MaxSignals+1); err == nil {
		t.Error("too many signals should be rejected")
	}
	if _, err := SolveNSignal(payoff.Payoff{}, 0.1, 2); err == nil {
		t.Error("invalid payoff should be rejected")
	}
}

func TestNSignalSchemeIsDistribution(t *testing.T) {
	pf := payoff.Table2()[3]
	s, err := SolveNSignal(pf, 0.12, 4)
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	auditMass := 0.0
	for i := range s.P {
		if s.P[i] < -1e-9 || s.Q[i] < -1e-9 {
			t.Fatalf("negative probability in %+v", s)
		}
		total += s.P[i] + s.Q[i]
		auditMass += s.P[i]
	}
	if math.Abs(total-1) > 1e-7 {
		t.Fatalf("probabilities sum to %g", total)
	}
	if math.Abs(auditMass-0.12) > 1e-7 {
		t.Fatalf("audit marginal %g, want 0.12", auditMass)
	}
	if !s.Proceeds[0] {
		t.Fatal("signal 0 (silent) must always proceed")
	}
}

func TestQuickTwoSignalsSufficeRandomPayoffs(t *testing.T) {
	prop := func(dc, du, ac, au, rawTheta float64) bool {
		clean := func(x, lo, hi float64) float64 {
			v := math.Mod(math.Abs(x), hi-lo)
			if math.IsNaN(v) {
				v = 0
			}
			return lo + v
		}
		pf := payoff.Payoff{
			DefenderCovered:   clean(dc, 0, 500),
			DefenderUncovered: -clean(du, 0.01, 500),
			AttackerCovered:   -clean(ac, 0.01, 2000),
			AttackerUncovered: clean(au, 0.01, 500),
		}
		theta := clean(rawTheta, 0, 1)
		binary, err1 := SolveLP(pf, theta)
		three, err2 := SolveNSignal(pf, theta, 3)
		if err1 != nil || err2 != nil {
			return false
		}
		return math.Abs(three.DefenderUtility-binary.DefenderUtility) < 1e-5*(1+math.Abs(binary.DefenderUtility))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
