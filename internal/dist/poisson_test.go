package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPoissonPMFSumsToOne(t *testing.T) {
	for _, lambda := range []float64{0.1, 1, 4, 25, 140.46, 196.57} {
		p := Poisson{Lambda: lambda}
		sum := 0.0
		limit := int(lambda + 15*math.Sqrt(lambda+1) + 20)
		for k := 0; k <= limit; k++ {
			sum += p.PMF(k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("lambda=%g: PMF sums to %g", lambda, sum)
		}
	}
}

func TestPoissonPMFKnownValues(t *testing.T) {
	p := Poisson{Lambda: 2}
	// P(X=0)=e^-2, P(X=1)=2e^-2, P(X=3)=8/6·e^-2.
	e2 := math.Exp(-2)
	cases := []struct {
		k    int
		want float64
	}{
		{0, e2}, {1, 2 * e2}, {3, 8.0 / 6.0 * e2}, {-1, 0},
	}
	for _, c := range cases {
		if got := p.PMF(c.k); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("PMF(%d) = %g, want %g", c.k, got, c.want)
		}
	}
}

func TestPoissonZeroRate(t *testing.T) {
	p := Poisson{}
	if p.PMF(0) != 1 || p.PMF(1) != 0 {
		t.Error("zero-rate Poisson should be a point mass at 0")
	}
	if p.CDF(0) != 1 {
		t.Error("zero-rate CDF(0) should be 1")
	}
	if p.Quantile(0.99) != 0 {
		t.Error("zero-rate quantile should be 0")
	}
	if p.InverseMeanCoefficient() != 1 {
		t.Error("zero-rate inverse-mean coefficient should be 1")
	}
	rng := rand.New(rand.NewSource(1))
	if p.Sample(rng) != 0 {
		t.Error("zero-rate sample should be 0")
	}
}

func TestNewPoissonValidation(t *testing.T) {
	if _, err := NewPoisson(-1); err == nil {
		t.Error("negative rate should be rejected")
	}
	if _, err := NewPoisson(math.NaN()); err == nil {
		t.Error("NaN rate should be rejected")
	}
	if _, err := NewPoisson(math.Inf(1)); err == nil {
		t.Error("infinite rate should be rejected")
	}
	if p, err := NewPoisson(3.5); err != nil || p.Lambda != 3.5 {
		t.Errorf("NewPoisson(3.5) = %v, %v", p, err)
	}
}

func TestPoissonCDFMonotoneAndConsistent(t *testing.T) {
	p := Poisson{Lambda: 7.3}
	prev := 0.0
	acc := 0.0
	for k := 0; k <= 40; k++ {
		acc += p.PMF(k)
		c := p.CDF(k)
		if c < prev-1e-12 {
			t.Fatalf("CDF not monotone at k=%d", k)
		}
		if math.Abs(c-acc) > 1e-9 {
			t.Fatalf("CDF(%d)=%g disagrees with PMF prefix sum %g", k, c, acc)
		}
		prev = c
	}
}

func TestPoissonQuantileInvertsCDF(t *testing.T) {
	p := Poisson{Lambda: 12}
	for _, q := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		k := p.Quantile(q)
		if p.CDF(k) < q {
			t.Errorf("CDF(Quantile(%g)) = %g < %g", q, p.CDF(k), q)
		}
		if k > 0 && p.CDF(k-1) >= q {
			t.Errorf("Quantile(%g) = %d is not minimal", q, k)
		}
	}
}

func TestPoissonSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, lambda := range []float64{0.5, 3, 29, 45, 196.57} {
		p := Poisson{Lambda: lambda}
		var r Running
		n := 20000
		for i := 0; i < n; i++ {
			r.Add(float64(p.Sample(rng)))
		}
		se := math.Sqrt(lambda / float64(n))
		if math.Abs(r.Mean()-lambda) > 6*se+0.05 {
			t.Errorf("lambda=%g: sample mean %g too far", lambda, r.Mean())
		}
		// Variance should be close to lambda too (loose 10% band).
		v := r.Std() * r.Std()
		if math.Abs(v-lambda) > 0.12*lambda+0.2 {
			t.Errorf("lambda=%g: sample variance %g too far", lambda, v)
		}
	}
}

func TestInverseMeanCoefficientSmallRates(t *testing.T) {
	// For lambda→0 the coefficient → 1; it must be strictly decreasing in
	// lambda and ≈ 1/lambda for large lambda.
	prev := 1.0
	for _, lambda := range []float64{0.001, 0.1, 0.5, 1, 2, 5, 10, 50, 200} {
		c := Poisson{Lambda: lambda}.InverseMeanCoefficient()
		if c <= 0 || c > 1 {
			t.Fatalf("coefficient out of (0,1]: %g at lambda=%g", c, lambda)
		}
		if c >= prev+1e-12 {
			t.Fatalf("coefficient not decreasing at lambda=%g", lambda)
		}
		prev = c
	}
	// Large-lambda asymptotic: E[1/max(D,1)] ≈ 1/(lambda-1) for large lambda.
	c := Poisson{Lambda: 200}.InverseMeanCoefficient()
	if math.Abs(c-1.0/199.0) > 2e-4 {
		t.Errorf("large-lambda coefficient %g, want ≈ %g", c, 1.0/199.0)
	}
}

func TestInverseMeanCoefficientMatchesBruteForce(t *testing.T) {
	for _, lambda := range []float64{0.3, 1.7, 4, 11, 43.27} {
		p := Poisson{Lambda: lambda}
		brute := p.PMF(0)
		limit := int(lambda + 20*math.Sqrt(lambda+1) + 30)
		for d := 1; d <= limit; d++ {
			brute += p.PMF(d) / float64(d)
		}
		if got := p.InverseMeanCoefficient(); math.Abs(got-brute) > 1e-9 {
			t.Errorf("lambda=%g: coefficient %g, brute force %g", lambda, got, brute)
		}
	}
}

func TestFitPoisson(t *testing.T) {
	p, err := FitPoisson([]float64{1, 2, 3, 4})
	if err != nil || p.Lambda != 2.5 {
		t.Errorf("FitPoisson = %v, %v; want lambda 2.5", p, err)
	}
	if _, err := FitPoisson(nil); err == nil {
		t.Error("empty sample should be rejected")
	}
	if _, err := FitPoisson([]float64{1, -2}); err == nil {
		t.Error("negative count should be rejected")
	}
}

func TestQuickPMFNonNegative(t *testing.T) {
	prop := func(rawLambda float64, k int) bool {
		lambda := math.Mod(math.Abs(rawLambda), 300)
		if math.IsNaN(lambda) {
			lambda = 1
		}
		p := Poisson{Lambda: lambda}
		v := p.PMF(k % 1000)
		return v >= 0 && v <= 1 && !math.IsNaN(v)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCDFBounds(t *testing.T) {
	prop := func(rawLambda float64, rawK int) bool {
		lambda := math.Mod(math.Abs(rawLambda), 250)
		if math.IsNaN(lambda) {
			lambda = 2
		}
		k := rawK % 500
		if k < 0 {
			k = -k
		}
		c := Poisson{Lambda: lambda}.CDF(k)
		return c >= 0 && c <= 1 && !math.IsNaN(c)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
