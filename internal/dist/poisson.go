// Package dist provides the probability primitives the audit game needs:
// Poisson distributions (future-alert counts are modeled as Poisson in the
// paper, §3.1), the truncated harmonic expectation that linearizes LP (2),
// normal deviates for calibrating daily alert volumes, and small streaming
// statistics helpers used to reproduce Table 1.
//
// Everything is implemented on top of math and math/rand from the standard
// library; no external numerics packages are used.
package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Poisson is a Poisson distribution with rate Lambda ≥ 0. The zero value is
// the degenerate distribution at 0 (Lambda == 0), which the audit engine
// uses for alert types with no expected future arrivals.
type Poisson struct {
	Lambda float64
}

// NewPoisson returns a Poisson distribution with the given rate. It returns
// an error if lambda is negative or not finite.
func NewPoisson(lambda float64) (Poisson, error) {
	if math.IsNaN(lambda) || math.IsInf(lambda, 0) || lambda < 0 {
		return Poisson{}, fmt.Errorf("dist: invalid Poisson rate %g", lambda)
	}
	return Poisson{Lambda: lambda}, nil
}

// PMF returns P(X = k). Computed in log space to stay finite for large
// lambda and k.
func (p Poisson) PMF(k int) float64 {
	if k < 0 {
		return 0
	}
	if p.Lambda == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(p.Lambda) - p.Lambda - lg)
}

// CDF returns P(X ≤ k) by direct summation with a recurrence; the audit
// game's rates are at most a few hundred, so this is both fast and accurate.
func (p Poisson) CDF(k int) float64 {
	if k < 0 {
		return 0
	}
	if p.Lambda == 0 {
		return 1
	}
	term := math.Exp(-p.Lambda)
	sum := term
	for i := 1; i <= k; i++ {
		term *= p.Lambda / float64(i)
		sum += term
	}
	if sum > 1 {
		return 1
	}
	return sum
}

// Mean returns E[X] = Lambda.
func (p Poisson) Mean() float64 { return p.Lambda }

// Var returns Var[X] = Lambda.
func (p Poisson) Var() float64 { return p.Lambda }

// Quantile returns the smallest k with CDF(k) ≥ q for q in (0,1).
func (p Poisson) Quantile(q float64) int {
	if q <= 0 {
		return 0
	}
	if p.Lambda == 0 {
		return 0
	}
	term := math.Exp(-p.Lambda)
	sum := term
	k := 0
	// Walk the CDF; cap the walk at mean + 12 stddev + 32 for safety.
	limit := int(p.Lambda+12*math.Sqrt(p.Lambda)) + 32
	for sum < q && k < limit {
		k++
		term *= p.Lambda / float64(k)
		sum += term
	}
	return k
}

// Sample draws one variate using rng. For small rates it uses Knuth's
// product method; for large rates it uses the normal approximation with a
// continuity correction, which is accurate to well under the calibration
// noise of the synthetic workload at the rates the generator uses (≥ 30).
func (p Poisson) Sample(rng *rand.Rand) int {
	if p.Lambda == 0 {
		return 0
	}
	if p.Lambda < 30 {
		l := math.Exp(-p.Lambda)
		k := 0
		prod := 1.0
		for {
			prod *= rng.Float64()
			if prod <= l {
				return k
			}
			k++
		}
	}
	for {
		x := p.Lambda + math.Sqrt(p.Lambda)*rng.NormFloat64()
		if x >= -0.5 {
			return int(math.Round(x))
		}
	}
}

// InverseMeanCoefficient returns E[1/max(D,1)] where D ~ Poisson(Lambda).
//
// This is the coefficient that linearizes the paper's LP (2): the marginal
// coverage of a type with allocated budget B, audit cost V and future count
// D is θ = E[B/(V·D)] ≈ (B/V)·E[1/max(D,1)]. The D = 0 term is kept at
// weight 1 — with no future alerts a unit of budget fully covers a single
// hypothetical alert — which also makes the coefficient continuous as
// Lambda → 0. The series is summed until the Poisson tail is below 1e-12.
func (p Poisson) InverseMeanCoefficient() float64 {
	if p.Lambda == 0 {
		return 1
	}
	term := math.Exp(-p.Lambda) // P(D = 0)
	sum := term                 // d = 0 contributes weight 1
	cum := term
	d := 0
	limit := int(p.Lambda+12*math.Sqrt(p.Lambda)) + 64
	for d < limit && 1-cum > 1e-12 {
		d++
		term *= p.Lambda / float64(d)
		cum += term
		sum += term / float64(d)
	}
	// Remaining tail mass contributes ≈ tail/d; bounded by 1e-12, ignore.
	return sum
}

// FitPoisson estimates the rate from observed counts by maximum likelihood
// (the sample mean). It returns an error on empty input or negative counts.
func FitPoisson(counts []float64) (Poisson, error) {
	if len(counts) == 0 {
		return Poisson{}, fmt.Errorf("dist: FitPoisson on empty sample")
	}
	sum := 0.0
	for _, c := range counts {
		if c < 0 || math.IsNaN(c) {
			return Poisson{}, fmt.Errorf("dist: FitPoisson: invalid count %g", c)
		}
		sum += c
	}
	return Poisson{Lambda: sum / float64(len(counts))}, nil
}
