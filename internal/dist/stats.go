package dist

import (
	"fmt"
	"math"
	"math/rand"
)

// Normal is a normal distribution used by the synthetic workload generator
// to reproduce the per-type daily volume spread reported in Table 1.
type Normal struct {
	Mu    float64
	Sigma float64
}

// NewNormal returns a Normal with the given mean and standard deviation.
// Sigma must be nonnegative and both parameters finite.
func NewNormal(mu, sigma float64) (Normal, error) {
	if math.IsNaN(mu) || math.IsInf(mu, 0) || math.IsNaN(sigma) || math.IsInf(sigma, 0) || sigma < 0 {
		return Normal{}, fmt.Errorf("dist: invalid normal parameters mu=%g sigma=%g", mu, sigma)
	}
	return Normal{Mu: mu, Sigma: sigma}, nil
}

// Sample draws one variate.
func (n Normal) Sample(rng *rand.Rand) float64 {
	return n.Mu + n.Sigma*rng.NormFloat64()
}

// SamplePositive draws variates until one is > 0, with a deterministic
// fallback to Mu after 64 rejections (only reachable with Mu ≤ 0, which the
// calibrated workloads never use). The generator needs strictly positive
// daily volumes.
func (n Normal) SamplePositive(rng *rand.Rand) float64 {
	for i := 0; i < 64; i++ {
		if v := n.Sample(rng); v > 0 {
			return v
		}
	}
	return math.Max(n.Mu, 1)
}

// Running accumulates a stream of observations and reports count, mean, and
// (sample) standard deviation using Welford's online algorithm. The zero
// value is ready to use. It is the workhorse behind the Table 1
// reproduction and the experiment reports.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		if x < r.min {
			r.min = x
		}
		if x > r.max {
			r.max = x
		}
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the number of observations.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 for an empty accumulator).
func (r *Running) Mean() float64 { return r.mean }

// Std returns the sample standard deviation (n-1 denominator; 0 when fewer
// than two observations have been added).
func (r *Running) Std() float64 {
	if r.n < 2 {
		return 0
	}
	return math.Sqrt(r.m2 / float64(r.n-1))
}

// Min returns the smallest observation (0 for an empty accumulator).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest observation (0 for an empty accumulator).
func (r *Running) Max() float64 { return r.max }

// Merge combines another accumulator into r (parallel Welford merge), so
// per-day statistics can be aggregated across simulation shards.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	delta := o.mean - r.mean
	mean := r.mean + delta*float64(o.n)/float64(n)
	m2 := r.m2 + o.m2 + delta*delta*float64(r.n)*float64(o.n)/float64(n)
	minV := math.Min(r.min, o.min)
	maxV := math.Max(r.max, o.max)
	*r = Running{n: n, mean: mean, m2: m2, min: minV, max: maxV}
}

// MeanStd is a convenience that returns the mean and sample standard
// deviation of xs (0,0 for empty input).
func MeanStd(xs []float64) (mean, std float64) {
	var r Running
	for _, x := range xs {
		r.Add(x)
	}
	return r.Mean(), r.Std()
}
