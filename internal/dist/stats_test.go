package dist

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Std() != 0 {
		t.Fatal("zero-value Running should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Fatalf("N = %d, want 8", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Fatalf("Mean = %g, want 5", r.Mean())
	}
	// Sample std of that classic dataset: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if math.Abs(r.Std()-want) > 1e-12 {
		t.Fatalf("Std = %g, want %g", r.Std(), want)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g, want 2/9", r.Min(), r.Max())
	}
}

func TestRunningSingleObservation(t *testing.T) {
	var r Running
	r.Add(3.5)
	if r.Std() != 0 {
		t.Error("Std with one observation should be 0")
	}
	if r.Min() != 3.5 || r.Max() != 3.5 {
		t.Error("Min/Max with one observation should equal it")
	}
}

func TestRunningMergeMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.NormFloat64()*3 + 1
	}
	var whole Running
	for _, x := range xs {
		whole.Add(x)
	}
	var a, b Running
	for i, x := range xs {
		if i < 400 {
			a.Add(x)
		} else {
			b.Add(x)
		}
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-10 {
		t.Fatalf("merged mean = %g, want %g", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Std()-whole.Std()) > 1e-10 {
		t.Fatalf("merged std = %g, want %g", a.Std(), whole.Std())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Fatal("merged min/max disagree")
	}
}

func TestRunningMergeEmptyCases(t *testing.T) {
	var a, b Running
	a.Add(1)
	a.Add(3)
	before := a
	a.Merge(b) // merging empty is a no-op
	if a != before {
		t.Error("merging an empty accumulator changed the receiver")
	}
	var c Running
	c.Merge(a) // merging into empty copies
	if c != a {
		t.Error("merging into an empty accumulator should copy")
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := MeanStd([]float64{1, 2, 3})
	if mean != 2 || math.Abs(std-1) > 1e-12 {
		t.Fatalf("MeanStd = %g, %g; want 2, 1", mean, std)
	}
	mean, std = MeanStd(nil)
	if mean != 0 || std != 0 {
		t.Fatal("MeanStd(nil) should be 0,0")
	}
}

func TestNormalValidationAndSampling(t *testing.T) {
	if _, err := NewNormal(0, -1); err == nil {
		t.Error("negative sigma should be rejected")
	}
	if _, err := NewNormal(math.NaN(), 1); err == nil {
		t.Error("NaN mu should be rejected")
	}
	n, err := NewNormal(10, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	var r Running
	for i := 0; i < 20000; i++ {
		r.Add(n.Sample(rng))
	}
	if math.Abs(r.Mean()-10) > 0.1 {
		t.Errorf("sample mean %g, want ≈10", r.Mean())
	}
	if math.Abs(r.Std()-2) > 0.1 {
		t.Errorf("sample std %g, want ≈2", r.Std())
	}
}

func TestSamplePositive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := Normal{Mu: 0.5, Sigma: 5} // frequently negative draws
	for i := 0; i < 1000; i++ {
		if v := n.SamplePositive(rng); v <= 0 {
			t.Fatalf("SamplePositive returned %g", v)
		}
	}
	// Degenerate distribution that can never be positive exercises the
	// fallback path.
	d := Normal{Mu: -3, Sigma: 0}
	if v := d.SamplePositive(rng); v != 1 {
		t.Fatalf("fallback = %g, want max(mu,1)=1", v)
	}
}

func TestQuickRunningMeanWithinMinMax(t *testing.T) {
	prop := func(xs []float64) bool {
		var r Running
		n := 0
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			x = math.Mod(x, 1e6)
			r.Add(x)
			n++
		}
		if n == 0 {
			return true
		}
		return r.Mean() >= r.Min()-1e-9 && r.Mean() <= r.Max()+1e-9 && r.Std() >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMergeCommutesWithConcat(t *testing.T) {
	prop := func(as, bs []float64) bool {
		clean := func(xs []float64) []float64 {
			out := xs[:0:0]
			for _, x := range xs {
				if !math.IsNaN(x) && !math.IsInf(x, 0) {
					out = append(out, math.Mod(x, 1e5))
				}
			}
			return out
		}
		as, bs = clean(as), clean(bs)
		var a, b, whole Running
		for _, x := range as {
			a.Add(x)
			whole.Add(x)
		}
		for _, x := range bs {
			b.Add(x)
			whole.Add(x)
		}
		a.Merge(b)
		if a.N() != whole.N() {
			return false
		}
		if a.N() == 0 {
			return true
		}
		tol := 1e-7 * (1 + math.Abs(whole.Mean()))
		return math.Abs(a.Mean()-whole.Mean()) < tol && math.Abs(a.Std()-whole.Std()) < 1e-6*(1+whole.Std())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
