package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs_total", "requests")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Same name+labels yields the same series.
	if r.Counter("reqs_total", "requests") != c {
		t.Fatal("counter lookup is not stable")
	}

	g := r.Gauge("budget", "remaining budget")
	g.Set(50)
	g.Add(-12.5)
	if got := g.Value(); got != 37.5 {
		t.Fatalf("gauge = %g, want 37.5", got)
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", L("b", "2"), L("a", "1"))
	b := r.Counter("x_total", "", L("a", "1"), L("b", "2"))
	if a != b {
		t.Fatal("label order must not distinguish series")
	}
	a.Inc()
	snap := r.Snapshot()
	if got := snap.Counters[Key("x_total", L("a", "1"), L("b", "2"))]; got != 1 {
		t.Fatalf("snapshot lookup via Key failed: %+v", snap.Counters)
	}
}

func TestHistogramBucketsAndExport(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.01, 0.1, 1})
	for _, v := range []float64{0.005, 0.05, 0.5, 5, math.NaN()} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4 (NaN dropped)", h.Count())
	}
	if math.Abs(h.Sum()-5.555) > 1e-12 {
		t.Fatalf("sum = %g, want 5.555", h.Sum())
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE lat_seconds histogram",
		`lat_seconds_bucket{le="0.01"} 1`,
		`lat_seconds_bucket{le="0.1"} 2`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="+Inf"} 4`,
		"lat_seconds_sum 5.555",
		"lat_seconds_count 4",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("export missing %q:\n%s", want, out)
		}
	}
}

func TestHistogramSnapshotCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "", []float64{1, 2})
	h.Observe(0.5)
	h.Observe(1.5)
	h.Observe(99)
	hd, ok := r.Snapshot().Histograms["h"]
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	wantCum := []uint64{1, 2, 3}
	for i, b := range hd.Buckets {
		if b.Count != wantCum[i] {
			t.Fatalf("bucket %d cumulative = %d, want %d", i, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(hd.Buckets[2].UpperBound, 1) {
		t.Fatal("last bucket must be +Inf")
	}
}

func TestLabeledExportSortedAndEscaped(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "reqs", L("route", "/v1/access"), L("code", "200")).Inc()
	r.Counter("req_total", "reqs", L("route", "/v1/access"), L("code", "500")).Add(2)
	r.Gauge("g", "", L("weird", "a\"b\\c\nd")).Set(1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	i200 := strings.Index(out, `req_total{code="200",route="/v1/access"} 1`)
	i500 := strings.Index(out, `req_total{code="500",route="/v1/access"} 2`)
	if i200 < 0 || i500 < 0 || i200 > i500 {
		t.Fatalf("labeled series missing or unsorted:\n%s", out)
	}
	if !strings.Contains(out, `g{weird="a\"b\\c\nd"} 1`) {
		t.Fatalf("label escaping wrong:\n%s", out)
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1})
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil instruments")
	}
	// None of these may panic.
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveSince(time.Now())
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
	if h.Enabled() {
		t.Fatal("nil histogram reports enabled")
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil registry export: err=%v out=%q", err, sb.String())
	}
	snap := r.Snapshot()
	if snap.Counters == nil || len(snap.Counters) != 0 {
		t.Fatal("nil registry snapshot must be empty and non-nil")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("m", "")
}

// TestConcurrentInstruments is the registry's race-detector canary: get-or-
// create races against reads, writes race against the exporter and
// snapshots.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const workers, iters = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c_total", "", L("w", string(rune('a'+w%4)))).Inc()
				r.Gauge("g", "").Add(1)
				r.Histogram("h_seconds", "", DefTimeBuckets).Observe(float64(i) * 1e-4)
				if i%100 == 0 {
					var sb strings.Builder
					_ = r.WritePrometheus(&sb)
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()

	snap := r.Snapshot()
	var total uint64
	for k, v := range snap.Counters {
		if strings.HasPrefix(k, "c_total") {
			total += v
		}
	}
	if total != workers*iters {
		t.Fatalf("lost counter increments: %d, want %d", total, workers*iters)
	}
	if got := snap.Gauges["g"]; got != workers*iters {
		t.Fatalf("gauge = %g, want %d", got, workers*iters)
	}
	if hd := snap.Histograms["h_seconds"]; hd.Count != workers*iters {
		t.Fatalf("histogram count = %d, want %d", hd.Count, workers*iters)
	}
}

func TestBucketHelpers(t *testing.T) {
	lin := LinearBuckets(0, 10, 3)
	if lin[0] != 0 || lin[1] != 10 || lin[2] != 20 {
		t.Fatalf("linear buckets %v", lin)
	}
	exp := ExponentialBuckets(1, 2, 4)
	if exp[3] != 8 {
		t.Fatalf("exponential buckets %v", exp)
	}
}
