// Package obs is the repository's zero-dependency observability substrate:
// a concurrency-safe metrics registry with atomic counters, gauges, and
// fixed-bucket histograms, a Prometheus-text-format exporter, and a typed
// snapshot API for tests.
//
// The package exists because the ROADMAP's north star is a production-scale
// service, and the paper's own requirement — OSSP must run "in real time for
// each triggered alert" — makes per-stage solve latency, simplex effort, and
// budget trajectory first-class operational signals. No third-party metrics
// library is available (stdlib-only constraint), so this is a small, exact
// implementation of the subset the SAG pipeline needs.
//
// Design points:
//
//   - Every instrument is identified by a family name plus an optional,
//     order-insensitive label set. Families are created on first use and
//     cached; the hot path (Inc/Set/Observe) is pure atomics, no locks.
//   - Nil-safety is pervasive: a nil *Registry hands out nil instruments,
//     and every method on a nil instrument is a no-op. Library users that
//     do not configure metrics pay one predictable-branch nil check.
//   - The exporter emits the Prometheus text exposition format (version
//     0.0.4) with families and series in sorted order, so output is
//     deterministic and diffable in tests.
package obs

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Label is one name/value pair attached to an instrument.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// seriesKey renders a canonical (sorted, escaped) label suffix such as
// `{code="200",route="/v1/access"}`, or "" for an unlabeled series.
func seriesKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// Key returns the canonical series identifier ("name" or `name{k="v",...}`)
// used by Snapshot maps and the exporter. Exposed so tests can look up
// series without re-deriving the label encoding.
func Key(name string, labels ...Label) string { return name + seriesKey(labels) }

// kind discriminates metric families.
type kind int

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// family is one named metric family with its series keyed by label set.
type family struct {
	name    string
	help    string
	kind    kind
	buckets []float64 // histogram families only
	series  map[string]any
}

// Registry owns metric families and hands out instruments. The zero value
// is not usable — create one with NewRegistry. A nil *Registry is valid
// everywhere and disables collection.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup returns the series instrument, creating family and series as
// needed. It panics on a kind mismatch — registering the same name as two
// different metric types is always a programming error and silently
// returning the wrong instrument would corrupt the export.
func (r *Registry) lookup(name, help string, k kind, buckets []float64, labels []Label) any {
	key := seriesKey(labels)
	r.mu.RLock()
	f := r.families[name]
	if f != nil {
		if inst, ok := f.series[key]; ok {
			kindOK := f.kind == k
			r.mu.RUnlock()
			if !kindOK {
				panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, k))
			}
			return inst
		}
	}
	r.mu.RUnlock()

	r.mu.Lock()
	defer r.mu.Unlock()
	f = r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k, buckets: buckets, series: make(map[string]any)}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: metric %q registered as %v, requested as %v", name, f.kind, k))
	}
	if inst, ok := f.series[key]; ok {
		return inst
	}
	var inst any
	switch k {
	case kindCounter:
		inst = &Counter{}
	case kindGauge:
		inst = &Gauge{}
	case kindHistogram:
		inst = newHistogram(f.buckets)
	}
	f.series[key] = inst
	return inst
}

// Counter returns (creating if absent) the counter series for the given
// name and labels. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindCounter, nil, labels).(*Counter)
}

// Gauge returns (creating if absent) the gauge series for the given name
// and labels. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, kindGauge, nil, labels).(*Gauge)
}

// Histogram returns (creating if absent) the histogram series for the given
// name and labels. buckets are ascending upper bounds; a final +Inf bucket
// is implicit. The bucket layout is fixed by the first registration of the
// family; later calls may pass nil. Returns nil on a nil registry.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	if buckets != nil {
		buckets = append([]float64(nil), buckets...)
		sort.Float64s(buckets)
	}
	return r.lookup(name, help, kindHistogram, buckets, labels).(*Histogram)
}

// Counter is a monotonically increasing uint64. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Counter struct {
	v atomic.Uint64
}

// Inc adds 1.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down. All methods are safe for
// concurrent use and no-ops on a nil receiver.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds delta with a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets (ascending upper
// bounds, implicit +Inf last) and tracks their sum. All methods are safe
// for concurrent use and no-ops on a nil receiver.
type Histogram struct {
	bounds  []float64       // finite upper bounds, ascending
	counts  []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	sumBits atomic.Uint64
	total   atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one sample. NaN observations are dropped — they would
// poison the sum without being attributable to any bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// First bucket whose upper bound contains v; linear scan is faster than
	// binary search at the ≤20 bucket counts used here.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveSince records the elapsed time since t0 in seconds. On a nil
// receiver it is a no-op (and callers should skip the time.Now() that
// produced t0; see Enabled).
func (h *Histogram) ObserveSince(t0 time.Time) {
	if h != nil {
		h.Observe(time.Since(t0).Seconds())
	}
}

// Count returns the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Enabled reports whether observations will be recorded. Hot paths use it
// to skip the time.Now() calls that feed ObserveSince when metrics are off.
func (h *Histogram) Enabled() bool { return h != nil }

// DefTimeBuckets is the default latency bucket layout, in seconds, spanning
// the SAG pipeline's realistic range: single-LP solves land in tens of
// microseconds, full 7-type decisions in the low milliseconds, and the
// paper's reported per-alert budget is 20 ms.
var DefTimeBuckets = []float64{
	50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
	0.25, 0.5, 1, 2.5,
}

// DefWaitBuckets is a bucket layout, in seconds, for queueing delays —
// admission-queue waits, drain times, retry hints. These routinely exceed
// the solve latencies DefTimeBuckets is shaped for, so the layout trades
// sub-millisecond resolution for coverage out to half a minute.
var DefWaitBuckets = []float64{
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3, 100e-3,
	0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// LinearBuckets returns count ascending bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

// ExponentialBuckets returns count ascending bounds start, start·factor, ...
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}
