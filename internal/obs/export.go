package obs

import (
	"bufio"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
)

// WritePrometheus writes every family in the Prometheus text exposition
// format (version 0.0.4). Families and series appear in sorted order so the
// output is deterministic. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)

	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	for _, name := range names {
		f := r.families[name]
		if f.help != "" {
			bw.WriteString("# HELP " + f.name + " " + f.help + "\n")
		}
		bw.WriteString("# TYPE " + f.name + " " + f.kind.String() + "\n")
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch inst := f.series[k].(type) {
			case *Counter:
				bw.WriteString(f.name + k + " " + strconv.FormatUint(inst.Value(), 10) + "\n")
			case *Gauge:
				bw.WriteString(f.name + k + " " + formatFloat(inst.Value()) + "\n")
			case *Histogram:
				writeHistogram(bw, f.name, k, inst)
			}
		}
	}
	r.mu.RUnlock()
	return bw.Flush()
}

// writeHistogram emits the cumulative _bucket series plus _sum and _count.
func writeHistogram(bw *bufio.Writer, name, key string, h *Histogram) {
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatFloat(h.bounds[i])
		}
		bw.WriteString(name + "_bucket" + withLabel(key, "le", le) + " " +
			strconv.FormatUint(cum, 10) + "\n")
	}
	bw.WriteString(name + "_sum" + key + " " + formatFloat(h.Sum()) + "\n")
	bw.WriteString(name + "_count" + key + " " + strconv.FormatUint(h.Count(), 10) + "\n")
}

// withLabel splices one extra label pair into an existing (possibly empty)
// rendered label set.
func withLabel(key, name, value string) string {
	pair := name + `="` + escapeLabelValue(value) + `"`
	if key == "" {
		return "{" + pair + "}"
	}
	return key[:len(key)-1] + "," + pair + "}"
}

func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Handler returns an http.Handler serving the registry in Prometheus text
// format; usable on a nil registry (serves an empty exposition).
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	UpperBound float64 // +Inf for the last bucket
	Count      uint64  // observations ≤ UpperBound
}

// HistogramData is the snapshot of one histogram series.
type HistogramData struct {
	Buckets []Bucket
	Sum     float64
	Count   uint64
}

// Snapshot is a point-in-time copy of every series, keyed by the canonical
// series identifier (see Key). Concurrent writers may land between field
// reads; each individual value is atomically read.
type Snapshot struct {
	Counters   map[string]uint64
	Gauges     map[string]float64
	Histograms map[string]HistogramData
}

// Snapshot copies the current state of every series for test assertions.
// A nil registry yields empty (non-nil) maps.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramData),
	}
	if r == nil {
		return s
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for name, f := range r.families {
		for k, raw := range f.series {
			id := name + k
			switch inst := raw.(type) {
			case *Counter:
				s.Counters[id] = inst.Value()
			case *Gauge:
				s.Gauges[id] = inst.Value()
			case *Histogram:
				hd := HistogramData{Sum: inst.Sum(), Count: inst.Count()}
				cum := uint64(0)
				for i := range inst.counts {
					cum += inst.counts[i].Load()
					ub := math.Inf(1)
					if i < len(inst.bounds) {
						ub = inst.bounds[i]
					}
					hd.Buckets = append(hd.Buckets, Bucket{UpperBound: ub, Count: cum})
				}
				s.Histograms[id] = hd
			}
		}
	}
	return s
}
