// Package sim is the evaluation harness that reproduces the paper's §5
// protocol: from a multi-week alert dataset it forms rolling groups of 41
// history days plus 1 test day, replays each test day in real time, and
// scores three policies per triggered alert —
//
//   - OSSP (the paper's contribution; optimal objective of LP (3)),
//   - online SSE (no signaling; optimal objective of LP (2)),
//   - offline SSE (the end-of-cycle Stackelberg baseline; one value per
//     day, the flat line in Figures 2–3),
//
// emitting the per-alert utility time series that Figures 2 and 3 plot.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/history"
	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/payoff"
)

// Simulation metric names (see Config.Metrics).
const (
	// MetricGroupSeconds is a histogram of wall-clock time per replication
	// (one RunGroup call: both online engines over one test day).
	MetricGroupSeconds = "sag_sim_group_seconds"
	// MetricGroupAlertsPerSecond is a histogram of per-replication
	// throughput in alerts/second.
	MetricGroupAlertsPerSecond = "sag_sim_group_alerts_per_second"
	// MetricAlertsTotal counts alerts replayed across all replications.
	MetricAlertsTotal = "sag_sim_alerts_total"
	// MetricGroupsTotal counts completed replications.
	MetricGroupsTotal = "sag_sim_groups_total"
)

// TimedAlert is one alert of a modeled type within a day, with its type
// already mapped to a contiguous 0-based index.
type TimedAlert struct {
	Type int
	Time time.Duration
}

// Dataset is a multi-day alert stream over a fixed set of modeled types.
type Dataset struct {
	// NumTypes is the number of modeled types (contiguous indices).
	NumTypes int
	// TypeIDs maps each index back to its taxonomy ID (Table 1: 1..7).
	TypeIDs []int
	// Days holds each day's alerts sorted by time.
	Days [][]TimedAlert
}

// NumDays returns the number of days in the dataset.
func (d *Dataset) NumDays() int { return len(d.Days) }

// DayCounts returns the per-type alert counts of one day.
func (d *Dataset) DayCounts(day int) []float64 {
	counts := make([]float64, d.NumTypes)
	for _, a := range d.Days[day] {
		counts[a.Type]++
	}
	return counts
}

// Records flattens a window of days [start, start+n) into history.Records
// with days renumbered from zero, the input NewCurves expects.
func (d *Dataset) Records(start, n int) []history.Record {
	var recs []history.Record
	for day := start; day < start+n && day < len(d.Days); day++ {
		for _, a := range d.Days[day] {
			recs = append(recs, history.Record{Day: day - start, Type: a.Type, Time: a.Time})
		}
	}
	return recs
}

// BuildDataset scans numDays of generated access logs through the detection
// engine and keeps alerts whose taxonomy ID appears in typeIDs, mapping them
// to contiguous indices in typeIDs order.
func BuildDataset(gen *emr.Generator, eng *alerts.Engine, numDays int, typeIDs []int) (*Dataset, error) {
	if gen == nil || eng == nil {
		return nil, fmt.Errorf("sim: nil generator or engine")
	}
	if numDays <= 0 {
		return nil, fmt.Errorf("sim: need at least one day, got %d", numDays)
	}
	if len(typeIDs) == 0 {
		return nil, fmt.Errorf("sim: need at least one type ID")
	}
	index := make(map[int]int, len(typeIDs))
	for i, id := range typeIDs {
		if _, dup := index[id]; dup {
			return nil, fmt.Errorf("sim: duplicate type ID %d", id)
		}
		index[id] = i
	}
	ds := &Dataset{NumTypes: len(typeIDs), TypeIDs: append([]int(nil), typeIDs...)}
	for day := 0; day < numDays; day++ {
		scanned, err := eng.Scan(gen.Day(day))
		if err != nil {
			return nil, fmt.Errorf("sim: scanning day %d: %w", day, err)
		}
		var das []TimedAlert
		for _, a := range scanned {
			if idx, ok := index[a.Type]; ok {
				das = append(das, TimedAlert{Type: idx, Time: a.Time})
			}
		}
		sort.Slice(das, func(i, j int) bool { return das[i].Time < das[j].Time })
		ds.Days = append(ds.Days, das)
	}
	return ds, nil
}

// Group is one evaluation fold: HistoryDays days of history starting at
// Start, followed by the test day Start+HistoryDays.
type Group struct {
	Start       int
	HistoryDays int
}

// TestDay returns the index of the group's test day.
func (g Group) TestDay() int { return g.Start + g.HistoryDays }

// Groups builds the paper's rolling folds: with totalDays=56 and
// historyDays=41 it yields 15 groups (the paper's construction).
func Groups(totalDays, historyDays int) []Group {
	var out []Group
	for s := 0; s+historyDays < totalDays; s++ {
		out = append(out, Group{Start: s, HistoryDays: historyDays})
	}
	return out
}

// Config parameterizes a Runner.
type Config struct {
	// Instance is the audit game over the dataset's modeled types (same
	// order as Dataset.TypeIDs).
	Instance *game.Instance
	// Budget is the per-day audit budget (paper: 20 single-type, 50
	// multi-type).
	Budget float64
	// RollbackThreshold is the knowledge-rollback threshold (paper: 4).
	// Negative disables rollback (raw curves are used).
	RollbackThreshold float64
	// NewEstimator, when non-nil, overrides how each group's estimator is
	// built from its history curves (RollbackThreshold is then ignored).
	// Used by the estimator ablations to swap rollback variants.
	NewEstimator func(*history.Curves) (core.Estimator, error)
	// Seed drives OSSP signal sampling.
	Seed int64
	// UseLPSignaling routes OSSP through LP (3) instead of the closed form.
	UseLPSignaling bool
	// Metrics, when non-nil, receives per-replication throughput
	// instrumentation (see the Metric* constants). Instruments are
	// atomic, so RunGroupsParallel replications share them safely.
	Metrics *obs.Registry
}

// AlertOutcome is the per-alert score triple of Figures 2–3.
type AlertOutcome struct {
	Time time.Duration
	// Type is the modeled type index of the alert.
	Type int
	// OSSP is the auditor's expected utility with signaling.
	OSSP float64
	// OnlineSSE is the auditor's expected utility without signaling.
	OnlineSSE float64
}

// DayResult is the evaluation of one group's test day.
type DayResult struct {
	Group    Group
	Outcomes []AlertOutcome
	// OfflineSSE is the constant per-alert utility of the offline baseline
	// for this day.
	OfflineSSE float64
	// OSSPSummary and SSESummary aggregate the two online engines.
	OSSPSummary core.CycleSummary
	SSESummary  core.CycleSummary
}

// Runner evaluates groups of a dataset under a fixed game configuration.
type Runner struct {
	ds  *Dataset
	cfg Config

	// Pre-resolved instruments (nil when Config.Metrics is nil; every
	// record call is then a no-op).
	groupSeconds *obs.Histogram
	groupRate    *obs.Histogram
	alertsTotal  *obs.Counter
	groupsTotal  *obs.Counter
}

// NewRunner validates inputs and builds a Runner.
func NewRunner(ds *Dataset, cfg Config) (*Runner, error) {
	if ds == nil {
		return nil, fmt.Errorf("sim: nil dataset")
	}
	if cfg.Instance == nil {
		return nil, fmt.Errorf("sim: Config.Instance is required")
	}
	if cfg.Instance.NumTypes() != ds.NumTypes {
		return nil, fmt.Errorf("sim: instance has %d types, dataset %d", cfg.Instance.NumTypes(), ds.NumTypes)
	}
	if cfg.Budget < 0 {
		return nil, fmt.Errorf("sim: negative budget %g", cfg.Budget)
	}
	reg := cfg.Metrics
	return &Runner{
		ds:  ds,
		cfg: cfg,
		groupSeconds: reg.Histogram(MetricGroupSeconds,
			"Wall-clock seconds per replication (one group's test day).",
			obs.ExponentialBuckets(0.01, 2, 13)),
		groupRate: reg.Histogram(MetricGroupAlertsPerSecond,
			"Per-replication throughput in alerts/second.",
			obs.ExponentialBuckets(8, 2, 13)),
		alertsTotal: reg.Counter(MetricAlertsTotal, "Alerts replayed across all replications."),
		groupsTotal: reg.Counter(MetricGroupsTotal, "Completed replications."),
	}, nil
}

// RunGroup replays one group's test day under OSSP, online SSE, and the
// offline SSE baseline.
func (r *Runner) RunGroup(g Group) (*DayResult, error) {
	if g.Start < 0 || g.HistoryDays <= 0 || g.TestDay() >= r.ds.NumDays() {
		return nil, fmt.Errorf("sim: group %+v out of dataset range (%d days)", g, r.ds.NumDays())
	}
	var t0 time.Time
	if r.groupSeconds.Enabled() {
		t0 = time.Now()
	}
	recs := r.ds.Records(g.Start, g.HistoryDays)
	curves, err := history.NewCurves(recs, r.ds.NumTypes, g.HistoryDays)
	if err != nil {
		return nil, err
	}

	newEstimator := func() (core.Estimator, error) {
		if r.cfg.NewEstimator != nil {
			return r.cfg.NewEstimator(curves)
		}
		if r.cfg.RollbackThreshold < 0 {
			return curves, nil
		}
		return history.NewRollback(curves, r.cfg.RollbackThreshold)
	}
	estOSSP, err := newEstimator()
	if err != nil {
		return nil, err
	}
	estSSE, err := newEstimator()
	if err != nil {
		return nil, err
	}

	osspEng, err := core.NewEngine(core.Config{
		Instance:       r.cfg.Instance,
		Budget:         r.cfg.Budget,
		Estimator:      estOSSP,
		Policy:         core.PolicyOSSP,
		Rand:           rand.New(rand.NewSource(r.cfg.Seed*7919 + int64(g.Start))),
		UseLPSignaling: r.cfg.UseLPSignaling,
	})
	if err != nil {
		return nil, err
	}
	sseEng, err := core.NewEngine(core.Config{
		Instance:  r.cfg.Instance,
		Budget:    r.cfg.Budget,
		Estimator: estSSE,
		Policy:    core.PolicySSE,
	})
	if err != nil {
		return nil, err
	}

	testDay := r.ds.Days[g.TestDay()]
	res := &DayResult{Group: g}
	for _, a := range testDay {
		alert := core.Alert{Type: a.Type, Time: a.Time}
		dOSSP, err := osspEng.Process(alert)
		if err != nil {
			return nil, fmt.Errorf("sim: OSSP engine: %w", err)
		}
		dSSE, err := sseEng.Process(alert)
		if err != nil {
			return nil, fmt.Errorf("sim: SSE engine: %w", err)
		}
		res.Outcomes = append(res.Outcomes, AlertOutcome{
			Time:      a.Time,
			Type:      a.Type,
			OSSP:      dOSSP.OSSPUtility,
			OnlineSSE: dSSE.SSEUtility,
		})
	}

	offline, err := game.SolveOfflineSSE(r.cfg.Instance, r.cfg.Budget, r.ds.DayCounts(g.TestDay()))
	if err != nil {
		return nil, fmt.Errorf("sim: offline SSE: %w", err)
	}
	res.OfflineSSE = offline.DefenderUtility
	res.OSSPSummary = osspEng.Summary()
	res.SSESummary = sseEng.Summary()
	if r.groupSeconds.Enabled() {
		elapsed := time.Since(t0)
		r.groupSeconds.Observe(elapsed.Seconds())
		r.groupsTotal.Inc()
		r.alertsTotal.Add(uint64(len(testDay)))
		if s := elapsed.Seconds(); s > 0 {
			r.groupRate.Observe(float64(len(testDay)) / s)
		}
	}
	return res, nil
}

// RunGroups evaluates a list of groups in order.
func (r *Runner) RunGroups(gs []Group) ([]*DayResult, error) {
	out := make([]*DayResult, 0, len(gs))
	for _, g := range gs {
		res, err := r.RunGroup(g)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// PipelineConfig bundles the full synthetic pipeline: world, generator, and
// detection engine sized for an experiment.
type PipelineConfig struct {
	Seed             int64
	Days             int // default 56 (the paper's window)
	BackgroundPerDay int // default 2000
	PairsPerKind     int // default 300
	WorldEmployees   int // default 400 (kept small; alert volume is what matters)
	WorldPatients    int // default 2000
}

func (c *PipelineConfig) applyDefaults() {
	if c.Days <= 0 {
		c.Days = 56
	}
	if c.WorldEmployees <= 0 {
		c.WorldEmployees = 400
	}
	if c.WorldPatients <= 0 {
		c.WorldPatients = 2000
	}
}

// BuildTable1Pipeline assembles the end-to-end synthetic pipeline of the
// paper's evaluation: a world, a Table 1–calibrated generator, a detection
// engine, and the dataset of typed alerts for the requested taxonomy IDs
// (pass 1..7 for the multi-type experiment, just 1 for single-type).
func BuildTable1Pipeline(cfg PipelineConfig, typeIDs []int) (*Dataset, error) {
	cfg.applyDefaults()
	world, err := emr.NewWorld(emr.WorldConfig{
		Seed:      cfg.Seed,
		Employees: cfg.WorldEmployees,
		Patients:  cfg.WorldPatients,
	})
	if err != nil {
		return nil, err
	}
	gen, err := emr.NewGenerator(world, emr.GeneratorConfig{
		Seed:             cfg.Seed,
		BackgroundPerDay: cfg.BackgroundPerDay,
		PairsPerKind:     cfg.PairsPerKind,
	})
	if err != nil {
		return nil, err
	}
	eng, err := alerts.NewEngine(world, alerts.NewTable1Taxonomy())
	if err != nil {
		return nil, err
	}
	return BuildDataset(gen, eng, cfg.Days, typeIDs)
}

// Table1Instance builds the audit-game instance for a subset of the paper's
// type IDs with uniform audit cost 1 (the paper's evaluation setting).
func Table1Instance(typeIDs []int) (*game.Instance, error) {
	table := payoff.Table2()
	pays := make([]payoff.Payoff, 0, len(typeIDs))
	for _, id := range typeIDs {
		if id < 1 || id > 7 {
			return nil, fmt.Errorf("sim: type ID %d outside Table 2 (1..7)", id)
		}
		pays = append(pays, table[id])
	}
	return game.NewInstance(pays, game.UniformCost(len(typeIDs), 1))
}

// AllTable1TypeIDs returns [1 2 3 4 5 6 7].
func AllTable1TypeIDs() []int { return []int{1, 2, 3, 4, 5, 6, 7} }
