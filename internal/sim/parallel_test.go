package sim

import (
	"testing"
)

func TestParallelMatchesSerial(t *testing.T) {
	ds := syntheticDataset(2, 10, 25)
	inst, err := Table1Instance([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(ds, Config{Instance: inst, Budget: 5, RollbackThreshold: 4, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	groups := Groups(10, 7)
	serial, err := r.RunGroups(groups)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := r.RunGroupsParallel(groups, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].OfflineSSE != parallel[i].OfflineSSE {
			t.Fatalf("group %d offline differs", i)
		}
		if len(serial[i].Outcomes) != len(parallel[i].Outcomes) {
			t.Fatalf("group %d outcome counts differ", i)
		}
		for j := range serial[i].Outcomes {
			if serial[i].Outcomes[j] != parallel[i].Outcomes[j] {
				t.Fatalf("group %d alert %d differs between serial and parallel", i, j)
			}
		}
	}
}

func TestParallelEdgeCases(t *testing.T) {
	ds := syntheticDataset(1, 6, 5)
	inst, err := Table1Instance([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(ds, Config{Instance: inst, Budget: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Empty group list.
	if res, err := r.RunGroupsParallel(nil, 4); err != nil || res != nil {
		t.Fatalf("empty groups: %v, %v", res, err)
	}
	// More workers than groups; workers <= 0 auto-selects.
	for _, w := range []int{-1, 0, 1, 100} {
		res, err := r.RunGroupsParallel(Groups(6, 4), w)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(res) != 2 {
			t.Fatalf("workers=%d: %d results, want 2", w, len(res))
		}
	}
	// Errors propagate with group context.
	if _, err := r.RunGroupsParallel([]Group{{Start: 0, HistoryDays: 99}}, 2); err == nil {
		t.Fatal("out-of-range group should error")
	}
}
