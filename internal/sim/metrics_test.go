package sim

import (
	"testing"

	"github.com/auditgames/sag/internal/obs"
)

// TestRunnerMetrics: parallel replications share one registry and report
// per-replication throughput.
func TestRunnerMetrics(t *testing.T) {
	ds, err := BuildTable1Pipeline(PipelineConfig{
		Seed: 11, Days: 8, BackgroundPerDay: 40, PairsPerKind: 2,
		WorldEmployees: 40, WorldPatients: 160,
	}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := Table1Instance([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	r, err := NewRunner(ds, Config{Instance: inst, Budget: 20, RollbackThreshold: -1, Seed: 3, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	groups := Groups(8, 6) // 2 replications
	results, err := r.RunGroupsParallel(groups, 2)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	if got := snap.Counters[MetricGroupsTotal]; got != uint64(len(groups)) {
		t.Fatalf("groups counter = %d, want %d", got, len(groups))
	}
	var alerts uint64
	for _, res := range results {
		alerts += uint64(len(res.Outcomes))
	}
	if got := snap.Counters[MetricAlertsTotal]; got != alerts {
		t.Fatalf("alerts counter = %d, want %d", got, alerts)
	}
	if hd := snap.Histograms[MetricGroupSeconds]; hd.Count != uint64(len(groups)) {
		t.Fatalf("group seconds count = %d, want %d", hd.Count, len(groups))
	}

	// No registry → no instrumentation, identical results.
	r2, err := NewRunner(ds, Config{Instance: inst, Budget: 20, RollbackThreshold: -1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := r2.RunGroups(groups)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain {
		if plain[i].OfflineSSE != results[i].OfflineSSE || len(plain[i].Outcomes) != len(results[i].Outcomes) {
			t.Fatalf("metrics changed simulation results at group %d", i)
		}
	}
}
