package sim

import (
	"math"
	"testing"
)

func TestRunSequentialMatchesGroupedSSE(t *testing.T) {
	// The SSE baseline is fully deterministic, so the sequential runner
	// (sliding window + engine reuse via NewCycle) must reproduce the
	// per-group runner's SSE utilities exactly — a strong end-to-end check
	// of both the Window estimator and NewCycle.
	ds := syntheticDataset(2, 10, 25)
	inst, err := Table1Instance([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(ds, Config{Instance: inst, Budget: 5, RollbackThreshold: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	grouped, err := r.RunGroups(Groups(10, 7))
	if err != nil {
		t.Fatal(err)
	}
	sequential, err := r.RunSequential(7)
	if err != nil {
		t.Fatal(err)
	}
	if len(grouped) != len(sequential) {
		t.Fatalf("day counts differ: %d vs %d", len(grouped), len(sequential))
	}
	for i := range grouped {
		if len(grouped[i].Outcomes) != len(sequential[i].Outcomes) {
			t.Fatalf("day %d: outcome counts differ", i)
		}
		for j := range grouped[i].Outcomes {
			g, s := grouped[i].Outcomes[j], sequential[i].Outcomes[j]
			if g.OnlineSSE != s.OnlineSSE {
				t.Fatalf("day %d alert %d: grouped SSE %g vs sequential %g",
					i, j, g.OnlineSSE, s.OnlineSSE)
			}
			if g.Time != s.Time || g.Type != s.Type {
				t.Fatalf("day %d alert %d: alert identity differs", i, j)
			}
		}
		if grouped[i].OfflineSSE != sequential[i].OfflineSSE {
			t.Fatalf("day %d: offline SSE differs", i)
		}
	}
}

func TestRunSequentialOSSPShapeHolds(t *testing.T) {
	ds := syntheticDataset(2, 12, 30)
	inst, err := Table1Instance([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(ds, Config{Instance: inst, Budget: 6, RollbackThreshold: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	results, err := r.RunSequential(8)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("days = %d, want 4", len(results))
	}
	for i, res := range results {
		var ossp, sse float64
		for _, o := range res.Outcomes {
			ossp += o.OSSP
			sse += o.OnlineSSE
		}
		n := float64(len(res.Outcomes))
		if ossp/n < sse/n-1 {
			t.Fatalf("day %d: mean OSSP %g below mean SSE %g", i, ossp/n, sse/n)
		}
		if math.IsNaN(res.OfflineSSE) {
			t.Fatalf("day %d: NaN offline", i)
		}
	}
}

func TestRunSequentialValidation(t *testing.T) {
	ds := syntheticDataset(1, 5, 3)
	inst, err := Table1Instance([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(ds, Config{Instance: inst, Budget: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.RunSequential(0); err == nil {
		t.Error("zero history should be rejected")
	}
	if _, err := r.RunSequential(5); err == nil {
		t.Error("history consuming the whole dataset should be rejected")
	}
}
