package sim

import (
	"fmt"

	"github.com/auditgames/sag/internal/pool"
)

// RunGroupsParallel evaluates the groups concurrently across at most
// workers executors (≤ 0 selects the full shared pool) and returns results
// in input order. Each group's evaluation is fully independent — its
// engines, RNG streams, and rollback state are per-group — so the output is
// identical to RunGroups for the same configuration.
//
// The fan-out runs on the process-wide worker pool shared with the
// parallel candidate solves in internal/game: when the replication layer
// saturates the pool, nested per-decision solves degrade to inline
// execution instead of oversubscribing the CPU.
func (r *Runner) RunGroupsParallel(gs []Group, workers int) ([]*DayResult, error) {
	if len(gs) == 0 {
		return nil, nil
	}
	results := make([]*DayResult, len(gs))
	errs := make([]error, len(gs))
	pool.Shared().ForEach(len(gs), workers, func(i int) {
		results[i], errs[i] = r.RunGroup(gs[i])
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: group %d (%+v): %w", i, gs[i], err)
		}
	}
	return results, nil
}
