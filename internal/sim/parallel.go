package sim

import (
	"fmt"
	"runtime"
	"sync"
)

// RunGroupsParallel evaluates the groups concurrently across at most
// workers goroutines (≤ 0 selects GOMAXPROCS) and returns results in input
// order. Each group's evaluation is fully independent — its engines, RNG
// streams, and rollback state are per-group — so the output is identical
// to RunGroups for the same configuration.
func (r *Runner) RunGroupsParallel(gs []Group, workers int) ([]*DayResult, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(gs) {
		workers = len(gs)
	}
	if len(gs) == 0 {
		return nil, nil
	}

	results := make([]*DayResult, len(gs))
	errs := make([]error, len(gs))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = r.RunGroup(gs[i])
			}
		}()
	}
	for i := range gs {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: group %d (%+v): %w", i, gs[i], err)
		}
	}
	return results, nil
}
