package sim

import (
	"math"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/history"
)

func hour(h float64) time.Duration { return time.Duration(h * float64(time.Hour)) }

// syntheticDataset builds a small deterministic dataset directly (without
// the EMR pipeline) so runner behavior can be tested quickly: numDays days,
// each with alerts of the listed types at fixed times.
func syntheticDataset(numTypes, numDays, perDay int) *Dataset {
	ds := &Dataset{NumTypes: numTypes}
	for i := 0; i < numTypes; i++ {
		ds.TypeIDs = append(ds.TypeIDs, i+1)
	}
	for d := 0; d < numDays; d++ {
		var day []TimedAlert
		for i := 0; i < perDay; i++ {
			day = append(day, TimedAlert{
				Type: (d + i) % numTypes,
				Time: hour(8) + time.Duration(i)*30*time.Minute,
			})
		}
		ds.Days = append(ds.Days, day)
	}
	return ds
}

func TestGroupsConstruction(t *testing.T) {
	gs := Groups(56, 41)
	if len(gs) != 15 {
		t.Fatalf("Groups(56,41) yields %d groups, want 15 (the paper's count)", len(gs))
	}
	if gs[0].Start != 0 || gs[0].TestDay() != 41 {
		t.Fatalf("first group %+v", gs[0])
	}
	if gs[14].Start != 14 || gs[14].TestDay() != 55 {
		t.Fatalf("last group %+v", gs[14])
	}
	if got := Groups(10, 20); got != nil {
		t.Fatalf("history longer than data should yield no groups, got %v", got)
	}
}

func TestDatasetHelpers(t *testing.T) {
	ds := syntheticDataset(2, 3, 4)
	if ds.NumDays() != 3 {
		t.Fatalf("NumDays = %d", ds.NumDays())
	}
	counts := ds.DayCounts(0)
	if counts[0]+counts[1] != 4 {
		t.Fatalf("DayCounts(0) = %v", counts)
	}
	recs := ds.Records(0, 2)
	if len(recs) != 8 {
		t.Fatalf("Records(0,2) has %d entries, want 8", len(recs))
	}
	for _, r := range recs {
		if r.Day < 0 || r.Day > 1 {
			t.Fatalf("record day %d not renumbered", r.Day)
		}
	}
}

func TestNewRunnerValidation(t *testing.T) {
	ds := syntheticDataset(2, 5, 3)
	inst2, err := Table1Instance([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	inst1, err := Table1Instance([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewRunner(nil, Config{Instance: inst2}); err == nil {
		t.Error("nil dataset should be rejected")
	}
	if _, err := NewRunner(ds, Config{}); err == nil {
		t.Error("nil instance should be rejected")
	}
	if _, err := NewRunner(ds, Config{Instance: inst1}); err == nil {
		t.Error("type-count mismatch should be rejected")
	}
	if _, err := NewRunner(ds, Config{Instance: inst2, Budget: -1}); err == nil {
		t.Error("negative budget should be rejected")
	}
}

func TestTable1Instance(t *testing.T) {
	inst, err := Table1Instance(AllTable1TypeIDs())
	if err != nil {
		t.Fatal(err)
	}
	if inst.NumTypes() != 7 {
		t.Fatalf("NumTypes = %d", inst.NumTypes())
	}
	if inst.AuditCosts[3] != 1 {
		t.Fatal("audit costs should be uniform 1")
	}
	if _, err := Table1Instance([]int{0}); err == nil {
		t.Error("type 0 should be rejected")
	}
	if _, err := Table1Instance([]int{8}); err == nil {
		t.Error("type 8 should be rejected")
	}
}

func TestRunGroupBasicProperties(t *testing.T) {
	ds := syntheticDataset(2, 12, 30)
	inst, err := Table1Instance([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(ds, Config{
		Instance:          inst,
		Budget:            5,
		RollbackThreshold: history.DefaultRollbackThreshold,
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := Group{Start: 0, HistoryDays: 10}
	res, err := r.RunGroup(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) != len(ds.Days[g.TestDay()]) {
		t.Fatalf("outcomes %d, want %d", len(res.Outcomes), len(ds.Days[g.TestDay()]))
	}
	// The two engines evolve their budgets on different stochastic
	// trajectories, so OSSP dominance is exact only at equal game state
	// (tested in internal/core); across trajectories allow trajectory
	// noise per alert and require dominance of the means.
	var meanOSSP, meanSSE float64
	for i, o := range res.Outcomes {
		if o.OSSP < o.OnlineSSE-0.05*math.Abs(o.OnlineSSE)-5 {
			t.Fatalf("alert %d: OSSP %g far below online SSE %g", i, o.OSSP, o.OnlineSSE)
		}
		meanOSSP += o.OSSP
		meanSSE += o.OnlineSSE
	}
	n := float64(len(res.Outcomes))
	if meanOSSP/n < meanSSE/n-1 {
		t.Fatalf("mean OSSP %g below mean SSE %g", meanOSSP/n, meanSSE/n)
	}
	if res.OSSPSummary.Alerts != len(res.Outcomes) || res.SSESummary.Alerts != len(res.Outcomes) {
		t.Fatal("summaries should count every alert")
	}
}

func TestRunGroupRangeChecks(t *testing.T) {
	ds := syntheticDataset(1, 5, 3)
	inst, err := Table1Instance([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(ds, Config{Instance: inst, Budget: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	bad := []Group{
		{Start: -1, HistoryDays: 2},
		{Start: 0, HistoryDays: 0},
		{Start: 3, HistoryDays: 2}, // test day == 5, out of range
	}
	for _, g := range bad {
		if _, err := r.RunGroup(g); err == nil {
			t.Errorf("group %+v should be rejected", g)
		}
	}
}

func TestRunGroupsDeterministic(t *testing.T) {
	run := func() []*DayResult {
		ds := syntheticDataset(2, 8, 20)
		inst, err := Table1Instance([]int{1, 3})
		if err != nil {
			t.Fatal(err)
		}
		r, err := NewRunner(ds, Config{Instance: inst, Budget: 4, RollbackThreshold: 4, Seed: 99})
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.RunGroups(Groups(8, 6))
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("nondeterministic group count")
	}
	for i := range a {
		if len(a[i].Outcomes) != len(b[i].Outcomes) {
			t.Fatalf("group %d: outcome counts differ", i)
		}
		for j := range a[i].Outcomes {
			if a[i].Outcomes[j] != b[i].Outcomes[j] {
				t.Fatalf("group %d alert %d differs across runs", i, j)
			}
		}
		if a[i].OfflineSSE != b[i].OfflineSSE {
			t.Fatalf("group %d offline SSE differs", i)
		}
	}
}

func TestOfflineSSEConstantAndDominated(t *testing.T) {
	// With ample in-day knowledge the online policies should beat or match
	// the offline baseline on average (the paper's headline ordering).
	ds := syntheticDataset(2, 10, 24)
	inst, err := Table1Instance([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(ds, Config{Instance: inst, Budget: 6, RollbackThreshold: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunGroup(Group{Start: 0, HistoryDays: 9})
	if err != nil {
		t.Fatal(err)
	}
	var meanOSSP float64
	for _, o := range res.Outcomes {
		meanOSSP += o.OSSP
	}
	meanOSSP /= float64(len(res.Outcomes))
	if meanOSSP < res.OfflineSSE-1e-7 {
		t.Fatalf("mean OSSP %g below offline SSE %g", meanOSSP, res.OfflineSSE)
	}
}

func TestBuildDatasetValidation(t *testing.T) {
	if _, err := BuildDataset(nil, nil, 1, []int{1}); err == nil {
		t.Error("nil generator/engine should be rejected")
	}
}

func TestEndToEndPipelineSmall(t *testing.T) {
	ds, err := BuildTable1Pipeline(PipelineConfig{
		Seed:             13,
		Days:             8,
		BackgroundPerDay: 50,
		PairsPerKind:     20,
		WorldEmployees:   30,
		WorldPatients:    100,
	}, AllTable1TypeIDs())
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumDays() != 8 || ds.NumTypes != 7 {
		t.Fatalf("dataset %d days, %d types", ds.NumDays(), ds.NumTypes)
	}
	// Every day should carry alerts of several types.
	nonEmpty := 0
	for d := 0; d < ds.NumDays(); d++ {
		if len(ds.Days[d]) > 100 {
			nonEmpty++
		}
	}
	if nonEmpty != 8 {
		t.Fatalf("only %d days carry a realistic alert volume", nonEmpty)
	}

	inst, err := Table1Instance(AllTable1TypeIDs())
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(ds, Config{Instance: inst, Budget: 50, RollbackThreshold: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunGroup(Group{Start: 0, HistoryDays: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outcomes) == 0 {
		t.Fatal("test day produced no outcomes")
	}
	var meanOSSP, meanSSE float64
	for i, o := range res.Outcomes {
		if o.OSSP < o.OnlineSSE-0.05*math.Abs(o.OnlineSSE)-5 {
			t.Fatalf("alert %d: OSSP %g far below SSE %g", i, o.OSSP, o.OnlineSSE)
		}
		if math.IsNaN(o.OSSP) || math.IsNaN(o.OnlineSSE) {
			t.Fatalf("alert %d: NaN utility", i)
		}
		meanOSSP += o.OSSP
		meanSSE += o.OnlineSSE
	}
	n := float64(len(res.Outcomes))
	if meanOSSP/n < meanSSE/n-1 {
		t.Fatalf("mean OSSP %g below mean SSE %g", meanOSSP/n, meanSSE/n)
	}
}

func TestSingleTypePipeline(t *testing.T) {
	ds, err := BuildTable1Pipeline(PipelineConfig{
		Seed:             3,
		Days:             6,
		BackgroundPerDay: 20,
		PairsPerKind:     15,
		WorldEmployees:   20,
		WorldPatients:    60,
	}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumTypes != 1 {
		t.Fatalf("NumTypes = %d, want 1", ds.NumTypes)
	}
	// Single-type days should average near Table 1's 196.57.
	total := 0
	for d := 0; d < ds.NumDays(); d++ {
		total += len(ds.Days[d])
	}
	mean := float64(total) / float64(ds.NumDays())
	if mean < 150 || mean > 250 {
		t.Fatalf("single-type daily mean %g far from 196.57", mean)
	}
}
