package sim

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/history"
)

// switchableEstimator lets the sequential runner swap the underlying
// per-day estimator without rebuilding the engines; Reset (called by
// Engine.NewCycle) is forwarded to the active estimator.
type switchableEstimator struct {
	inner core.Estimator
}

func (s *switchableEstimator) FutureRates(at time.Duration) ([]float64, error) {
	if s.inner == nil {
		return nil, fmt.Errorf("sim: estimator not initialized")
	}
	return s.inner.FutureRates(at)
}

// Reset forwards to the active estimator's per-cycle reset, if any.
func (s *switchableEstimator) Reset() {
	if r, ok := s.inner.(interface{ Reset() }); ok {
		r.Reset()
	}
}

// RunSequential replays the dataset the way a production deployment runs:
// one pass over the calendar with a sliding historyDays-day window feeding
// the estimator, and a single pair of engines (OSSP + SSE baseline) reused
// across audit cycles via NewCycle. Every day after the warm-up window is
// a test day; results are returned in calendar order.
//
// The SSE baseline is deterministic, so its per-alert utilities are
// identical to the per-group runner's; the OSSP engine's signal sampling
// continues one RNG stream across days instead of reseeding per group.
func (r *Runner) RunSequential(historyDays int) ([]*DayResult, error) {
	if historyDays <= 0 || historyDays >= r.ds.NumDays() {
		return nil, fmt.Errorf("sim: historyDays %d outside (0,%d)", historyDays, r.ds.NumDays())
	}
	window, err := history.NewWindow(r.ds.NumTypes, historyDays)
	if err != nil {
		return nil, err
	}
	dayRecords := func(day int) []history.Record {
		recs := make([]history.Record, 0, len(r.ds.Days[day]))
		for _, a := range r.ds.Days[day] {
			recs = append(recs, history.Record{Type: a.Type, Time: a.Time})
		}
		return recs
	}
	for day := 0; day < historyDays; day++ {
		if err := window.AddDay(dayRecords(day)); err != nil {
			return nil, err
		}
	}

	swOSSP := &switchableEstimator{}
	swSSE := &switchableEstimator{}
	osspEng, err := core.NewEngine(core.Config{
		Instance:       r.cfg.Instance,
		Budget:         r.cfg.Budget,
		Estimator:      swOSSP,
		Policy:         core.PolicyOSSP,
		Rand:           rand.New(rand.NewSource(r.cfg.Seed * 7919)),
		UseLPSignaling: r.cfg.UseLPSignaling,
	})
	if err != nil {
		return nil, err
	}
	sseEng, err := core.NewEngine(core.Config{
		Instance:  r.cfg.Instance,
		Budget:    r.cfg.Budget,
		Estimator: swSSE,
		Policy:    core.PolicySSE,
	})
	if err != nil {
		return nil, err
	}

	newEstimator := func(curves *history.Curves) (core.Estimator, error) {
		if r.cfg.NewEstimator != nil {
			return r.cfg.NewEstimator(curves)
		}
		if r.cfg.RollbackThreshold < 0 {
			return curves, nil
		}
		return history.NewRollback(curves, r.cfg.RollbackThreshold)
	}

	var out []*DayResult
	for day := historyDays; day < r.ds.NumDays(); day++ {
		curves, err := window.Curves()
		if err != nil {
			return nil, err
		}
		if swOSSP.inner, err = newEstimator(curves); err != nil {
			return nil, err
		}
		if swSSE.inner, err = newEstimator(curves); err != nil {
			return nil, err
		}
		if err := osspEng.NewCycle(r.cfg.Budget); err != nil {
			return nil, err
		}
		if err := sseEng.NewCycle(r.cfg.Budget); err != nil {
			return nil, err
		}

		res := &DayResult{Group: Group{Start: day - historyDays, HistoryDays: historyDays}}
		for _, a := range r.ds.Days[day] {
			alert := core.Alert{Type: a.Type, Time: a.Time}
			dOSSP, err := osspEng.Process(alert)
			if err != nil {
				return nil, err
			}
			dSSE, err := sseEng.Process(alert)
			if err != nil {
				return nil, err
			}
			res.Outcomes = append(res.Outcomes, AlertOutcome{
				Time:      a.Time,
				Type:      a.Type,
				OSSP:      dOSSP.OSSPUtility,
				OnlineSSE: dSSE.SSEUtility,
			})
		}
		offline, err := game.SolveOfflineSSE(r.cfg.Instance, r.cfg.Budget, r.ds.DayCounts(day))
		if err != nil {
			return nil, err
		}
		res.OfflineSSE = offline.DefenderUtility
		res.OSSPSummary = osspEng.Summary()
		res.SSESummary = sseEng.Summary()
		out = append(out, res)

		if err := window.AddDay(dayRecords(day)); err != nil {
			return nil, err
		}
	}
	return out, nil
}
