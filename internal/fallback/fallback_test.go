package fallback

import (
	"errors"
	"math"
	"testing"
)

func TestLevelStrings(t *testing.T) {
	cases := map[Level]string{
		None:      "none",
		Cache:     "cache",
		LastGood:  "last_good",
		Static:    "static",
		Level(42): "Level(42)",
	}
	for lvl, want := range cases {
		if got := lvl.String(); got != want {
			t.Errorf("Level(%d).String() = %q, want %q", int(lvl), got, want)
		}
	}
	if None.Degraded() {
		t.Error("None should not be degraded")
	}
	for _, lvl := range []Level{Cache, LastGood, Static} {
		if !lvl.Degraded() {
			t.Errorf("%v should be degraded", lvl)
		}
	}
}

func TestRunFirstSuccessWins(t *testing.T) {
	v, lvl, err := Run(
		Step[int]{Level: None, Try: func() (int, error) { return 7, nil }},
		Step[int]{Level: Cache, Try: func() (int, error) { t.Fatal("later step ran"); return 0, nil }},
	)
	if err != nil || v != 7 || lvl != None {
		t.Fatalf("Run = (%d, %v, %v), want (7, none, nil)", v, lvl, err)
	}
}

func TestRunDescendsInOrder(t *testing.T) {
	var order []Level
	boom := errors.New("boom")
	v, lvl, err := Run(
		Step[string]{Level: None, Try: func() (string, error) { order = append(order, None); return "", boom }},
		Step[string]{Level: Cache, Try: func() (string, error) { order = append(order, Cache); return "", boom }},
		Step[string]{Level: LastGood, Try: func() (string, error) { order = append(order, LastGood); panic("solver degeneracy") }},
		Step[string]{Level: Static, Try: func() (string, error) { order = append(order, Static); return "static", nil }},
	)
	if err != nil || v != "static" || lvl != Static {
		t.Fatalf("Run = (%q, %v, %v), want (static, static, nil)", v, lvl, err)
	}
	want := []Level{None, Cache, LastGood, Static}
	if len(order) != len(want) {
		t.Fatalf("ran %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("ran %v, want %v", order, want)
		}
	}
}

func TestRunAllFail(t *testing.T) {
	boom := errors.New("boom")
	_, lvl, err := Run(
		Step[int]{Level: Cache, Try: func() (int, error) { return 0, errors.New("first") }},
		Step[int]{Level: Static, Try: func() (int, error) { return 0, boom }},
	)
	if !errors.Is(err, boom) {
		t.Fatalf("want last error, got %v", err)
	}
	if lvl != Static {
		t.Fatalf("want last level static, got %v", lvl)
	}
}

func TestRunEmptyLadder(t *testing.T) {
	if _, _, err := Run[int](); err == nil {
		t.Fatal("empty ladder should error")
	}
}

func TestAttemptContainsPanics(t *testing.T) {
	_, err := Attempt(func() (int, error) { panic("kaboom") })
	if err == nil {
		t.Fatal("panic should be converted to error")
	}
	v, err := Attempt(func() (int, error) { return 3, nil })
	if err != nil || v != 3 {
		t.Fatalf("Attempt = (%d, %v), want (3, nil)", v, err)
	}
}

func TestStaticAuditProbability(t *testing.T) {
	cases := []struct {
		name            string
		remaining, cost float64
		want            float64
	}{
		{"proportional", 10, 40, 0.25},
		{"capped at one", 50, 10, 1},
		{"exact", 20, 20, 1},
		{"no budget", 0, 40, 0},
		{"negative budget", -1, 40, 0},
		{"no expected cost", 5, 0, 1},
		{"negative expected cost", 5, -3, 1},
		{"nan remaining", math.NaN(), 40, 0},
		{"nan cost", 5, math.NaN(), 0},
	}
	for _, c := range cases {
		if got := StaticAuditProbability(c.remaining, c.cost); got != c.want {
			t.Errorf("%s: StaticAuditProbability(%g, %g) = %g, want %g", c.name, c.remaining, c.cost, got, c.want)
		}
	}
}
