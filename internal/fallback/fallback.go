// Package fallback implements the engine's graceful-degradation ladder.
//
// The paper's whole premise is that the warn/audit decision happens online,
// while the access is in flight (§1, §6.6): a solver error or a slow solve
// is not an inconvenience, it is "no decision at the moment of access". This
// package therefore turns every failure of the primary SAG pipeline into a
// deliberately degraded — but always produced — decision, descending a fixed
// ladder:
//
//	Level 0 (None)     the primary pipeline succeeded within its deadline
//	Level 1 (Cache)    reuse the most recent cached decision for the type
//	Level 2 (LastGood) re-run the signaling stage on the last successfully
//	                   solved θ vector
//	Level 3 (Static)   a conservative static policy: audit with probability
//	                   remaining-budget / expected-remaining-cost, never warn
//
// The never-warn choice at the bottom rung is justified by Theorem 2
// ("signaling never hurts" — equivalently, not signaling is the worst case
// the OSSP already dominates): silence plus a marginal audit probability is
// exactly the no-signaling SSE posture, so the static rung degrades to the
// paper's baseline game rather than to undefined behavior.
//
// The ladder itself is generic (Run); the engine in internal/core supplies
// the rungs. Every rung is panic-contained, so an LP degeneracy or injected
// fault (internal/faultinject) can never escape a Step.
package fallback

import (
	"fmt"
	"math"
)

// Level identifies how far down the degradation ladder a decision was
// produced. The zero value None means the primary pipeline succeeded.
type Level int

const (
	// None is the primary pipeline: no degradation.
	None Level = iota
	// Cache reused the most recent per-cycle cached decision for the
	// alert's type.
	Cache
	// LastGood re-ran the signaling stage against the last successfully
	// solved θ vector.
	LastGood
	// Static applied the conservative static policy (audit with probability
	// budget-remaining / expected-remaining-cost, never warn).
	Static
)

// String returns the metric-label spelling of the level, used as the
// `level` label of sag_engine_fallback_total.
func (l Level) String() string {
	switch l {
	case None:
		return "none"
	case Cache:
		return "cache"
	case LastGood:
		return "last_good"
	case Static:
		return "static"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// Degraded reports whether the level is anything but the primary pipeline.
func (l Level) Degraded() bool { return l != None }

// Step is one rung of a degradation ladder: the level it produces and the
// attempt that may fail (by error or panic).
type Step[T any] struct {
	Level Level
	Try   func() (T, error)
}

// Run descends the ladder: each step is attempted in order with panic
// containment, and the first success wins. When every step fails, the zero
// value, the last step's level, and the last error are returned — callers
// that end their ladder with an infallible step (the engine's static policy)
// therefore always receive a usable value.
func Run[T any](steps ...Step[T]) (T, Level, error) {
	var (
		zero T
		last error
		lvl  Level
	)
	for _, s := range steps {
		lvl = s.Level
		v, err := Attempt(s.Try)
		if err == nil {
			return v, s.Level, nil
		}
		last = err
	}
	if last == nil {
		last = fmt.Errorf("fallback: empty ladder")
	}
	return zero, lvl, last
}

// Attempt runs try, converting a panic into an error so callers can treat
// "the solver blew up" and "the solver returned an error" identically.
func Attempt[T any](try func() (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("fallback: recovered panic: %v", r)
		}
	}()
	return try()
}

// StaticAuditProbability is the bottom rung's audit probability: spend the
// remaining budget evenly over the expected remaining audit cost,
//
//	p = clamp01(remaining / expectedRemainingCost).
//
// Degenerate inputs resolve conservatively: no budget means never audit;
// budget with no expected future cost means audit surely (there is nothing
// to save the budget for). NaN inputs yield 0 — charging budget on garbage
// would double-count against later, healthier decisions.
func StaticAuditProbability(remaining, expectedRemainingCost float64) float64 {
	if math.IsNaN(remaining) || math.IsNaN(expectedRemainingCost) || remaining <= 0 {
		return 0
	}
	if expectedRemainingCost <= 0 {
		return 1
	}
	p := remaining / expectedRemainingCost
	if p > 1 {
		return 1
	}
	return p
}
