package shard

import (
	"errors"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/sim"
)

// newTestEngine builds a real OSSP engine over the paper's Table 1/2
// instance with a fixed-rate estimator and the given cache capacity.
func newTestEngine(t *testing.T, seed int64, cacheSize int) *core.Engine {
	t.Helper()
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(core.Config{
		Instance: inst,
		Budget:   50,
		Estimator: core.EstimatorFunc(func(time.Duration) ([]float64, error) {
			return []float64{196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27}, nil
		}),
		Policy: core.PolicyOSSP,
		Rand:   rand.New(rand.NewSource(seed)),
		Cache:  core.CacheConfig{Size: cacheSize},
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.New == nil {
		cfg.New = func(id string) (*core.Engine, any, error) {
			return newTestEngine(t, int64(Seed(id)), 8), id, nil
		}
	}
	r, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestValidID(t *testing.T) {
	for _, id := range []string{"a", "hospital-7", "T.9_x", strings.Repeat("a", MaxIDLength)} {
		if !ValidID(id) {
			t.Errorf("ValidID(%q) = false, want true", id)
		}
	}
	for _, id := range []string{"", "has space", "semi;colon", "new\nline", "ünïcode", strings.Repeat("a", MaxIDLength+1)} {
		if ValidID(id) {
			t.Errorf("ValidID(%q) = true, want false", id)
		}
	}
}

func TestSeedIsStableAndDistinct(t *testing.T) {
	if Seed("a") != Seed("a") {
		t.Fatal("Seed is not deterministic")
	}
	if Seed("a") == Seed("b") {
		t.Fatal("distinct IDs hashed to one seed")
	}
}

func TestGetOrCreateRoutesAndCaps(t *testing.T) {
	reg := obs.NewRegistry()
	r := newTestRouter(t, Config{MaxTenants: 2, Metrics: reg})

	ta, created, err := r.GetOrCreate("a")
	if err != nil || !created {
		t.Fatalf("create a: created=%v err=%v", created, err)
	}
	again, created, err := r.GetOrCreate("a")
	if err != nil || created {
		t.Fatalf("second GetOrCreate(a): created=%v err=%v", created, err)
	}
	if again != ta {
		t.Fatal("GetOrCreate returned a different tenant for one ID")
	}
	if _, _, err := r.GetOrCreate("b"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.GetOrCreate("c"); !errors.Is(err, ErrTenantLimit) {
		t.Fatalf("third tenant err = %v, want ErrTenantLimit", err)
	}
	if n := r.Len(); n != 2 {
		t.Fatalf("Len = %d, want 2", n)
	}
	snap := reg.Snapshot()
	if got := snap.Gauges[obs.Key(MetricTenantsActive)]; got != 2 {
		t.Fatalf("%s = %v, want 2", MetricTenantsActive, got)
	}
	if got := snap.Counters[obs.Key(MetricTenantLimitTotal)]; got != 1 {
		t.Fatalf("%s = %v, want 1", MetricTenantLimitTotal, got)
	}

	if !r.Remove("a") {
		t.Fatal("Remove(a) = false")
	}
	if r.Remove("a") {
		t.Fatal("second Remove(a) = true")
	}
	if _, ok := r.Get("a"); ok {
		t.Fatal("removed tenant still resident")
	}
	if _, _, err := r.GetOrCreate("c"); err != nil {
		t.Fatalf("create after removal: %v", err)
	}
}

func TestGetOrCreateRace(t *testing.T) {
	var built int
	var builtMu sync.Mutex
	r := newTestRouter(t, Config{New: func(id string) (*core.Engine, any, error) {
		builtMu.Lock()
		built++
		builtMu.Unlock()
		return newTestEngine(t, 1, 8), nil, nil
	}})
	var wg sync.WaitGroup
	tenants := make([]*Tenant, 32)
	for i := range tenants {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tt, _, err := r.GetOrCreate("shared")
			if err != nil {
				t.Error(err)
			}
			tenants[i] = tt
		}(i)
	}
	wg.Wait()
	if built != 1 {
		t.Fatalf("constructor ran %d times for one ID, want 1", built)
	}
	for _, tt := range tenants[1:] {
		if tt != tenants[0] {
			t.Fatal("racing GetOrCreate returned distinct tenants")
		}
	}
}

// TestCacheBudgetRebalance: the box-wide cache budget is divided across
// resident tenants, and adding a tenant shrinks — and evicts down — the
// caches of the existing ones.
func TestCacheBudgetRebalance(t *testing.T) {
	reg := obs.NewRegistry()
	r := newTestRouter(t, Config{CacheBudget: 8, Metrics: reg})

	ta, _, err := r.GetOrCreate("a")
	if err != nil {
		t.Fatal(err)
	}
	if share := r.CacheShare(); share != 8 {
		t.Fatalf("CacheShare with one tenant = %d, want 8", share)
	}
	// Fill tenant a's cache: each decision spends budget, so every alert is
	// a fresh exact-match state and a fresh entry.
	for i := 0; i < 6; i++ {
		if _, err := ta.Engine.Process(core.Alert{Type: i % 7, Time: time.Duration(i) * time.Minute}); err != nil {
			t.Fatal(err)
		}
	}
	if got := ta.Engine.CacheStats().Entries; got != 6 {
		t.Fatalf("tenant a cache entries = %d, want 6", got)
	}

	if _, _, err := r.GetOrCreate("b"); err != nil {
		t.Fatal(err)
	}
	if share := r.CacheShare(); share != 4 {
		t.Fatalf("CacheShare with two tenants = %d, want 4", share)
	}
	if got := ta.Engine.CacheStats().Entries; got > 4 {
		t.Fatalf("tenant a holds %d cached decisions after rebalance, want <= 4", got)
	}
	snap := reg.Snapshot()
	if got := snap.Counters[obs.Key(MetricRebalanceTotal)]; got != 2 {
		t.Fatalf("%s = %v, want 2 (one per create)", MetricRebalanceTotal, got)
	}
}
