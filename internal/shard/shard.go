// Package shard routes work across many independent audit-game engines —
// one per tenant — behind a single process. Each tenant (a hospital, in the
// paper's deployment story) runs its own audit cycle, budget, and OSSP
// state; the router owns the map from tenant ID to engine and keeps the
// box-wide resource envelope bounded:
//
//   - Solve parallelism is bounded because every tenant engine shares one
//     game.Instance whose worker bound feeds the shared internal/pool — the
//     pool's width caps concurrent simplex work no matter how many tenants
//     are resident.
//   - The decision-cache footprint is bounded by Config.CacheBudget: on
//     every tenant create/remove the router rebalances the per-engine cache
//     capacity to budget/n, evicting LRU entries down to the new share.
//
// Routing is by explicit tenant ID. IDs are mapped to lock-striped buckets
// with an FNV hash, so tenant lookup — on the decision hot path — takes one
// striped read lock and never contends with lookups for tenants in other
// buckets. Creation is serialized on a single mutex: it is rare (once per
// tenant lifetime), and serializing it makes the cap check and the cache
// rebalance atomic.
//
// The router deliberately knows nothing about HTTP. The serving layer
// (internal/server) stores its per-tenant request state in Tenant.Data and
// handles header parsing, create-on-first-use policy, and error mapping.
package shard

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/obs"
)

// Shard metric names, exported so operators and tests share one spelling.
const (
	// MetricTenantsActive gauges the number of resident tenants.
	MetricTenantsActive = "sag_shard_tenants_active"
	// MetricRebalanceTotal counts cache-budget rebalances (one per tenant
	// create or remove when a cache budget is configured).
	MetricRebalanceTotal = "sag_shard_rebalance_total"
	// MetricTenantsCreatedTotal counts tenants ever created, including ones
	// since removed.
	MetricTenantsCreatedTotal = "sag_shard_tenants_created_total"
	// MetricTenantLimitTotal counts creations refused by the tenant cap.
	MetricTenantLimitTotal = "sag_shard_tenant_limit_total"
	// MetricEvictionsTotal counts tenants evicted via Remove. Before the WAL
	// an eviction silently dropped the tenant's cycle state; now every one is
	// counted, logged with its tenant ID, and (when durability is configured)
	// preceded by a snapshot via Config.OnEvict.
	MetricEvictionsTotal = "sag_shard_evictions_total"
)

// Defaults for Config fields left zero.
const (
	DefaultMaxTenants = 64
	DefaultBuckets    = 16
)

// ErrTenantLimit reports that creating one more tenant would exceed
// Config.MaxTenants. The serving layer maps it to 429.
var ErrTenantLimit = errors.New("shard: tenant limit reached")

// MaxIDLength bounds tenant identifiers; see ValidID.
const MaxIDLength = 64

// ValidID reports whether id is an acceptable tenant identifier: 1 to
// MaxIDLength characters drawn from [A-Za-z0-9._-]. The restriction keeps
// IDs safe as metric label values and log tokens.
func ValidID(id string) bool {
	if len(id) == 0 || len(id) > MaxIDLength {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// Seed derives a stable 64-bit value from a tenant ID (FNV-1a). The serving
// layer XORs it into its base RNG seed so every tenant gets a distinct,
// reproducible signal-sampling stream.
func Seed(id string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(id))
	return h.Sum64()
}

// Tenant is one resident tenant: its identifier, its dedicated engine, and
// an opaque slot for the embedding layer's per-tenant state (the HTTP
// server keeps its lifecycle lock, counters, and flagged-user set there).
type Tenant struct {
	ID     string
	Engine *core.Engine
	Data   any
}

// Config assembles a Router.
type Config struct {
	// New builds a tenant's engine (and optional embedder state) on first
	// use. Required. It runs under the router's creation lock, so it must
	// not call back into the router.
	New func(id string) (*core.Engine, any, error)
	// MaxTenants caps resident tenants; GetOrCreate returns ErrTenantLimit
	// beyond it. Zero or negative selects DefaultMaxTenants.
	MaxTenants int
	// Buckets is the number of lock stripes for tenant lookup. Zero or
	// negative selects DefaultBuckets.
	Buckets int
	// CacheBudget is the total decision-cache entry budget shared by all
	// tenant engines: each resident tenant's cache capacity is rebalanced
	// to CacheBudget/n (at least 1) on every create/remove. Zero disables
	// rebalancing (each engine keeps the capacity it was built with).
	CacheBudget int
	// Metrics receives the sag_shard_* instruments; nil uses a private
	// registry so the router's accounting always works.
	Metrics *obs.Registry
	// OnEvict, when non-nil, runs for each tenant Remove evicts — after the
	// tenant is unlinked from the map (no new lookup can reach it) but
	// before Remove returns, under the creation lock. The durable server
	// uses it to drain the tenant's in-flight work, snapshot its engine
	// state, and seal its journal so eviction is unload, not loss. It must
	// not call back into the router.
	OnEvict func(*Tenant)
	// Logf, when non-nil, receives eviction log lines (tenant ID included),
	// so unloads are always traceable. Nil disables logging.
	Logf func(format string, args ...any)
}

type bucket struct {
	mu      sync.RWMutex
	tenants map[string]*Tenant
}

// Router owns the tenant map. Lock hierarchy (acquire top to bottom):
//
//	createMu  — serializes tenant creation, removal, and the cache-budget
//	            rebalance that accompanies them.
//	bucket.mu — striped RWMutex over one bucket's tenant map; the lookup
//	            hot path takes only this, in read mode.
//
// Engine-internal locks are below both and are never held while acquiring
// either.
type Router struct {
	cfg      Config
	buckets  []bucket
	createMu sync.Mutex
	count    atomic.Int64

	active    *obs.Gauge
	rebalance *obs.Counter
	created   *obs.Counter
	limited   *obs.Counter
	evicted   *obs.Counter
}

// NewRouter validates cfg and returns an empty router.
func NewRouter(cfg Config) (*Router, error) {
	if cfg.New == nil {
		return nil, errors.New("shard: Config.New is required")
	}
	if cfg.MaxTenants <= 0 {
		cfg.MaxTenants = DefaultMaxTenants
	}
	if cfg.Buckets <= 0 {
		cfg.Buckets = DefaultBuckets
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Router{
		cfg:       cfg,
		buckets:   make([]bucket, cfg.Buckets),
		active:    reg.Gauge(MetricTenantsActive, "Resident tenants."),
		rebalance: reg.Counter(MetricRebalanceTotal, "Cache-budget rebalances across tenant engines."),
		created:   reg.Counter(MetricTenantsCreatedTotal, "Tenants ever created."),
		limited:   reg.Counter(MetricTenantLimitTotal, "Tenant creations refused by the cap."),
		evicted:   reg.Counter(MetricEvictionsTotal, "Tenants evicted (state snapshotted first when durable)."),
	}
	for i := range r.buckets {
		r.buckets[i].tenants = make(map[string]*Tenant)
	}
	return r, nil
}

// bucketFor maps a tenant ID to its lock stripe.
func (r *Router) bucketFor(id string) *bucket {
	h := fnv.New32a()
	_, _ = h.Write([]byte(id))
	return &r.buckets[h.Sum32()%uint32(len(r.buckets))]
}

// Get returns the resident tenant for id, if any. This is the decision
// hot path: one striped read lock, no allocation beyond the hash.
func (r *Router) Get(id string) (*Tenant, bool) {
	b := r.bucketFor(id)
	b.mu.RLock()
	t, ok := b.tenants[id]
	b.mu.RUnlock()
	return t, ok
}

// GetOrCreate returns the tenant for id, building it via Config.New on
// first use. The boolean reports whether this call created the tenant.
// Creation respects MaxTenants (ErrTenantLimit beyond it) and rebalances
// the shared cache budget across all resident engines.
func (r *Router) GetOrCreate(id string) (*Tenant, bool, error) {
	if t, ok := r.Get(id); ok {
		return t, false, nil
	}
	r.createMu.Lock()
	defer r.createMu.Unlock()
	if t, ok := r.Get(id); ok { // lost the creation race
		return t, false, nil
	}
	if int(r.count.Load()) >= r.cfg.MaxTenants {
		r.limited.Inc()
		return nil, false, fmt.Errorf("%w (%d resident)", ErrTenantLimit, r.count.Load())
	}
	eng, data, err := r.cfg.New(id)
	if err != nil {
		return nil, false, err
	}
	t := &Tenant{ID: id, Engine: eng, Data: data}
	b := r.bucketFor(id)
	b.mu.Lock()
	b.tenants[id] = t
	b.mu.Unlock()
	n := r.count.Add(1)
	r.active.Set(float64(n))
	r.created.Inc()
	r.rebalanceLocked(int(n))
	return t, true, nil
}

// Remove evicts a tenant, rebalancing the cache budget across the
// remainder. It reports whether the tenant was resident. The eviction is
// never silent: it is counted in sag_shard_evictions_total and logged with
// the tenant ID via Config.Logf, and Config.OnEvict runs after the tenant
// is unlinked (so the embedder can drain it, snapshot its state, and seal
// its journal) but before Remove returns.
func (r *Router) Remove(id string) bool {
	r.createMu.Lock()
	defer r.createMu.Unlock()
	b := r.bucketFor(id)
	b.mu.Lock()
	t, ok := b.tenants[id]
	delete(b.tenants, id)
	b.mu.Unlock()
	if !ok {
		return false
	}
	n := r.count.Add(-1)
	r.active.Set(float64(n))
	if r.cfg.OnEvict != nil {
		r.cfg.OnEvict(t)
	}
	r.rebalanceLocked(int(n))
	r.evicted.Inc()
	if r.cfg.Logf != nil {
		r.cfg.Logf("shard: evicted tenant %s (%d resident)", t.ID, n)
	}
	return true
}

// rebalanceLocked divides the cache budget evenly across the n resident
// engines, evicting LRU entries from any engine above its new share. The
// caller holds createMu.
func (r *Router) rebalanceLocked(n int) {
	if r.cfg.CacheBudget <= 0 || n <= 0 {
		return
	}
	share := r.cfg.CacheBudget / n
	if share < 1 {
		share = 1
	}
	r.Range(func(t *Tenant) bool {
		t.Engine.SetCacheCapacity(share)
		return true
	})
	r.rebalance.Inc()
}

// CacheShare returns the per-tenant cache capacity the router last
// rebalanced to (0 when no budget is configured or no tenant is resident).
func (r *Router) CacheShare() int {
	n := r.Len()
	if r.cfg.CacheBudget <= 0 || n == 0 {
		return 0
	}
	share := r.cfg.CacheBudget / n
	if share < 1 {
		share = 1
	}
	return share
}

// Len returns the number of resident tenants.
func (r *Router) Len() int { return int(r.count.Load()) }

// Range calls fn for every resident tenant until fn returns false. The
// iteration order is unspecified. Tenants created or removed concurrently
// may or may not be visited; fn runs without any router lock held beyond
// the bucket snapshot, so it may call back into Get/GetOrCreate.
func (r *Router) Range(fn func(*Tenant) bool) {
	for i := range r.buckets {
		b := &r.buckets[i]
		b.mu.RLock()
		snapshot := make([]*Tenant, 0, len(b.tenants))
		for _, t := range b.tenants {
			snapshot = append(snapshot, t)
		}
		b.mu.RUnlock()
		for _, t := range snapshot {
			if !fn(t) {
				return
			}
		}
	}
}

// IDs returns the resident tenant IDs, sorted. It is Range distilled to the
// one projection every caller of Range-for-listing re-implemented.
func (r *Router) IDs() []string {
	ids := make([]string, 0, r.Len())
	r.Range(func(t *Tenant) bool {
		ids = append(ids, t.ID)
		return true
	})
	sort.Strings(ids)
	return ids
}
