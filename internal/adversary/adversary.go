// Package adversary provides attacker models and a Monte-Carlo harness
// that validates the game-theoretic expectations empirically: it replays
// audit days with an actual planted attack, samples the engine's signals
// and the end-of-cycle audits, and measures the realized utilities both
// sides collect. Agreement between these empirical averages and the
// analytic LP values is the strongest end-to-end check of the whole
// machinery — it exercises signal sampling, budget pacing, the
// retrospective audit draw, and the attacker's best-response logic
// together.
//
// Attacker strategies plan from public information only (the committed
// game instance, the budget, and the historical arrival curves — exactly
// the Stackelberg information set), never from the realized day.
package adversary

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/history"
)

// Attack is one planned attack: trigger an alert of Type at Time.
type Attack struct {
	Type int
	Time time.Duration
}

// PlanContext is the attacker's (public) information set.
type PlanContext struct {
	Instance *game.Instance
	Budget   float64
	// Curves are the historical arrival curves both sides estimate from
	// public log volumes.
	Curves *history.Curves
	// Rand drives randomized strategies.
	Rand *rand.Rand
}

// Strategy plans an attack from public information. ok=false means the
// attacker chooses not to attack at all.
type Strategy interface {
	Name() string
	Plan(ctx PlanContext) (Attack, bool)
}

// UniformAttacker attacks at a time drawn from the historical arrival
// distribution, using the attacker-preferred type at day start (argmax of
// his unprotected utility).
type UniformAttacker struct{}

// Name implements Strategy.
func (UniformAttacker) Name() string { return "uniform" }

// Plan implements Strategy.
func (UniformAttacker) Plan(ctx PlanContext) (Attack, bool) {
	t := preferType(ctx.Instance)
	// Sample an arrival time by inverting the day-start future curve:
	// pick uniformly among expected arrivals.
	at := sampleHistoricalTime(ctx, ctx.Rand)
	return Attack{Type: t, Time: at}, true
}

// EndOfDayAttacker waits until the configured late hour — the adversary the
// knowledge-rollback trick is aimed at.
type EndOfDayAttacker struct {
	// Hour of day to strike (default 23).
	Hour int
}

// Name implements Strategy.
func (a EndOfDayAttacker) Name() string { return "end-of-day" }

// Plan implements Strategy.
func (a EndOfDayAttacker) Plan(ctx PlanContext) (Attack, bool) {
	h := a.Hour
	if h <= 0 || h > 23 {
		h = 23
	}
	return Attack{Type: preferType(ctx.Instance), Time: time.Duration(h)*time.Hour + 30*time.Minute}, true
}

// BestResponseAttacker simulates the auditor's expected (deterministic)
// budget trajectory over the historical day shape and strikes the
// (type, hour) cell with the highest expected attacker utility — the
// strongest attacker consistent with the Stackelberg information set.
type BestResponseAttacker struct{}

// Name implements Strategy.
func (BestResponseAttacker) Name() string { return "best-response" }

// Plan implements Strategy.
func (BestResponseAttacker) Plan(ctx PlanContext) (Attack, bool) {
	inst := ctx.Instance
	k := inst.NumTypes()
	budget := ctx.Budget
	bestU := 0.0 // attacking must beat not attacking (utility 0)
	var best Attack
	found := false
	// Walk the expected day hour by hour, decaying the budget the way the
	// auditor's own pacing would in expectation.
	for h := 0; h <= 23; h++ {
		at := time.Duration(h) * time.Hour
		rates, err := ctx.Curves.FutureRates(at)
		if err != nil {
			return Attack{}, false
		}
		futures := make([]dist.Poisson, k)
		for i, r := range rates {
			futures[i] = dist.Poisson{Lambda: r}
		}
		res, err := game.SolveOnlineSSE(inst, budget, futures)
		if err != nil || res.BestType == -1 {
			continue
		}
		for t := 0; t < k; t++ {
			if rates[t] <= 0 {
				continue
			}
			// Under the OSSP the attacker's utility for type t equals his
			// SSE utility when positive, and 0 when coverage deters
			// (Theorem 4).
			u := math.Max(0, inst.Payoffs[t].AttackerExpected(res.Coverage[t]))
			if u > bestU+1e-9 {
				bestU = u
				best = Attack{Type: t, Time: at + 30*time.Minute}
				found = true
			}
		}
		// Expected spend over the next hour: arrivals × their coverage.
		next := at + time.Hour
		nextRates, err := ctx.Curves.FutureRates(next)
		if err != nil {
			return Attack{}, false
		}
		for t := 0; t < k; t++ {
			arrivals := rates[t] - nextRates[t]
			if arrivals > 0 {
				budget -= arrivals * res.Coverage[t] * inst.AuditCosts[t]
			}
		}
		if budget < 0 {
			budget = 0
		}
	}
	return best, found
}

// preferType returns argmax U_au — the attacker's favorite unprotected
// target.
func preferType(inst *game.Instance) int {
	best, bestU := 0, math.Inf(-1)
	for t, p := range inst.Payoffs {
		if p.AttackerUncovered > bestU {
			best, bestU = t, p.AttackerUncovered
		}
	}
	return best
}

// sampleHistoricalTime draws an arrival time from the historical curve by
// picking a uniform expected arrival and finding the hour where the
// remaining-count curve crosses it.
func sampleHistoricalTime(ctx PlanContext, rng *rand.Rand) time.Duration {
	total := ctx.Curves.TotalFutureMean(0)
	if total <= 0 {
		return 12 * time.Hour
	}
	target := rng.Float64() * total
	lo, hi := time.Duration(0), 24*time.Hour
	for hi-lo > time.Minute {
		mid := (lo + hi) / 2
		// Remaining after mid decreases with mid; passed = total−remaining.
		passed := total - ctx.Curves.TotalFutureMean(mid)
		if passed < target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// TrialResult is one Monte-Carlo day with a planted attack.
type TrialResult struct {
	Attacked bool
	Warned   bool
	Quit     bool
	Audited  bool
	// AuditorUtility / AttackerUtility are the realized utilities of the
	// planted attack (0 when the attacker stays out or quits).
	AuditorUtility  float64
	AttackerUtility float64
	// ExpectedAuditor is the analytic OSSP value for the attack alert at
	// decision time, for calibration checks.
	ExpectedAuditor float64
}

// Config parameterizes the Monte-Carlo evaluation.
type Config struct {
	Instance *game.Instance
	Budget   float64
	// Day is the base (false-positive) alert stream the attack is planted
	// into, sorted by time; types are indices into Instance.
	Day []core.Alert
	// Curves estimate futures; the engine wraps them with rollback at
	// RollbackThreshold (negative disables).
	Curves            *history.Curves
	RollbackThreshold float64
	Strategy          Strategy
	Trials            int
	Seed              int64
}

// Report aggregates the Monte-Carlo trials.
type Report struct {
	StrategyName string
	Trials       int
	Attacked     int
	Warnings     int
	Quits        int
	Caught       int
	MeanAuditor  float64
	MeanAttacker float64
	MeanExpected float64
}

// Run evaluates the strategy over seeded Monte-Carlo trials. Each trial
// replays the day with the planted attack through a fresh OSSP engine,
// samples the warning for every alert, and samples the retrospective audit
// for the attack alert; a warned rational attacker quits (the paper's §4
// argument makes quit-then-retry dominated, so quitting ends the trial).
func Run(cfg Config) (*Report, error) {
	if cfg.Instance == nil || cfg.Curves == nil || cfg.Strategy == nil {
		return nil, fmt.Errorf("adversary: Instance, Curves and Strategy are required")
	}
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("adversary: Trials must be positive, got %d", cfg.Trials)
	}
	rep := &Report{StrategyName: cfg.Strategy.Name(), Trials: cfg.Trials}
	var audSum, atkSum, expSum float64
	for trial := 0; trial < cfg.Trials; trial++ {
		res, err := runTrial(cfg, int64(trial))
		if err != nil {
			return nil, err
		}
		if res.Attacked {
			rep.Attacked++
		}
		if res.Warned {
			rep.Warnings++
		}
		if res.Quit {
			rep.Quits++
		}
		if res.Audited {
			rep.Caught++
		}
		audSum += res.AuditorUtility
		atkSum += res.AttackerUtility
		expSum += res.ExpectedAuditor
	}
	rep.MeanAuditor = audSum / float64(cfg.Trials)
	rep.MeanAttacker = atkSum / float64(cfg.Trials)
	rep.MeanExpected = expSum / float64(cfg.Trials)
	return rep, nil
}

func runTrial(cfg Config, trial int64) (TrialResult, error) {
	seed := cfg.Seed*1_000_003 + trial
	rng := rand.New(rand.NewSource(seed))

	var estimator core.Estimator = cfg.Curves
	if cfg.RollbackThreshold >= 0 {
		rb, err := history.NewRollback(cfg.Curves, cfg.RollbackThreshold)
		if err != nil {
			return TrialResult{}, err
		}
		estimator = rb
	}
	eng, err := core.NewEngine(core.Config{
		Instance:  cfg.Instance,
		Budget:    cfg.Budget,
		Estimator: estimator,
		Policy:    core.PolicyOSSP,
		Rand:      rand.New(rand.NewSource(seed ^ 0x9E3779B9)),
	})
	if err != nil {
		return TrialResult{}, err
	}

	attack, attacks := cfg.Strategy.Plan(PlanContext{
		Instance: cfg.Instance,
		Budget:   cfg.Budget,
		Curves:   cfg.Curves,
		Rand:     rng,
	})
	if !attacks {
		// No attack: replay the plain day; both sides get 0 from the
		// (nonexistent) attack.
		for _, a := range cfg.Day {
			if _, err := eng.Process(a); err != nil {
				return TrialResult{}, err
			}
		}
		return TrialResult{}, nil
	}

	// Merge the attack alert into the day stream at its time position.
	stream := make([]core.Alert, 0, len(cfg.Day)+1)
	stream = append(stream, cfg.Day...)
	stream = append(stream, core.Alert{Type: attack.Type, Time: attack.Time})
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].Time < stream[j].Time })
	attackIdx := -1
	for i, a := range stream {
		if a.Type == attack.Type && a.Time == attack.Time {
			attackIdx = i
			break
		}
	}

	res := TrialResult{Attacked: true}
	for i, a := range stream {
		d, err := eng.Process(a)
		if err != nil {
			return TrialResult{}, err
		}
		if i != attackIdx {
			continue
		}
		if d.Vacuous {
			continue
		}
		// The analytic value of the attack alert is its own scheme's
		// defender utility (the attack type need not be the equilibrium
		// best response when the strategy is suboptimal).
		res.ExpectedAuditor = d.Scheme.DefenderUtility
		pf := cfg.Instance.Payoffs[a.Type]
		if d.Warned {
			res.Warned = true
			// Rational response to the warning: proceed only if the
			// conditional utility is strictly positive. The OSSP makes the
			// persuasion constraint binding (conditional utility exactly
			// 0), so indifference — resolved toward quitting per the
			// strong-SSE convention — needs a round-off tolerance.
			cond := d.Scheme.AuditGivenWarn()*pf.AttackerCovered + (1-d.Scheme.AuditGivenWarn())*pf.AttackerUncovered
			tol := 1e-9 * (math.Abs(pf.AttackerCovered) + pf.AttackerUncovered)
			if cond <= tol {
				res.Quit = true
				continue // both sides realize 0
			}
		}
		// Attack goes through; the retrospective audit draw decides who
		// wins.
		if rng.Float64() < d.AuditCharge {
			res.Audited = true
			res.AuditorUtility = pf.DefenderCovered
			res.AttackerUtility = pf.AttackerCovered
		} else {
			res.AuditorUtility = pf.DefenderUncovered
			res.AttackerUtility = pf.AttackerUncovered
		}
	}
	return res, nil
}
