package adversary

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/history"
	"github.com/auditgames/sag/internal/payoff"
)

// fixture builds a single-type world: a base day of n alerts spread over
// working hours plus matching historical curves.
func fixture(t *testing.T, n, histDays int) (*game.Instance, []core.Alert, *history.Curves) {
	t.Helper()
	inst, err := game.NewInstance([]payoff.Payoff{payoff.Table2()[1]}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	var day []core.Alert
	var recs []history.Record
	for d := 0; d < histDays; d++ {
		for i := 0; i < n; i++ {
			at := 7*time.Hour + time.Duration(i)*(10*time.Hour)/time.Duration(n)
			recs = append(recs, history.Record{Day: d, Type: 0, Time: at})
			if d == 0 {
				day = append(day, core.Alert{Type: 0, Time: at})
			}
		}
	}
	curves, err := history.NewCurves(recs, 1, histDays)
	if err != nil {
		t.Fatal(err)
	}
	return inst, day, curves
}

func TestRunValidation(t *testing.T) {
	inst, day, curves := fixture(t, 10, 3)
	base := Config{Instance: inst, Budget: 5, Day: day, Curves: curves, Strategy: UniformAttacker{}, Trials: 1}
	bad := base
	bad.Instance = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil instance should be rejected")
	}
	bad = base
	bad.Strategy = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil strategy should be rejected")
	}
	bad = base
	bad.Trials = 0
	if _, err := Run(bad); err == nil {
		t.Error("zero trials should be rejected")
	}
}

func TestStrategiesPlanSensibly(t *testing.T) {
	inst, _, curves := fixture(t, 40, 5)
	ctx := PlanContext{Instance: inst, Budget: 5, Curves: curves, Rand: rand.New(rand.NewSource(1))}

	u, ok := UniformAttacker{}.Plan(ctx)
	if !ok || u.Time < 0 || u.Time >= 24*time.Hour {
		t.Fatalf("uniform plan %+v ok=%v", u, ok)
	}
	e, ok := EndOfDayAttacker{}.Plan(ctx)
	if !ok || e.Time < 23*time.Hour {
		t.Fatalf("end-of-day plan %+v ok=%v", e, ok)
	}
	b, ok := BestResponseAttacker{}.Plan(ctx)
	if ok && (b.Type != 0 || b.Time < 0) {
		t.Fatalf("best-response plan %+v", b)
	}
	if (UniformAttacker{}).Name() == "" || (EndOfDayAttacker{}).Name() == "" || (BestResponseAttacker{}).Name() == "" {
		t.Fatal("strategies must be named")
	}
}

func TestMonteCarloMatchesAnalyticValue(t *testing.T) {
	// The heart of the package: realized auditor utility over many trials
	// must match the mean analytic scheme value (LP (3) objective) at the
	// attack alerts.
	inst, day, curves := fixture(t, 40, 5)
	rep, err := Run(Config{
		Instance:          inst,
		Budget:            5,
		Day:               day,
		Curves:            curves,
		RollbackThreshold: history.DefaultRollbackThreshold,
		Strategy:          UniformAttacker{},
		Trials:            600,
		Seed:              17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Attacked != rep.Trials {
		t.Fatalf("uniform attacker should always attack: %d/%d", rep.Attacked, rep.Trials)
	}
	// Monte-Carlo error: utilities are bounded by ~[-400, 100]; with 600
	// trials the standard error of the mean is ≈ 200/√600 ≈ 8; allow 5 SE.
	if diff := math.Abs(rep.MeanAuditor - rep.MeanExpected); diff > 40 {
		t.Fatalf("realized auditor mean %.1f vs analytic %.1f (diff %.1f)",
			rep.MeanAuditor, rep.MeanExpected, diff)
	}
	if rep.Warnings == 0 {
		t.Fatal("no warnings across 600 trials is implausible at positive coverage")
	}
	if rep.Quits != rep.Warnings {
		// In the Table 2 regime every warned rational attacker quits.
		t.Fatalf("quits %d != warnings %d under OSSP", rep.Quits, rep.Warnings)
	}
	if rep.Caught != 0 {
		// Theorem 3: p0 = 0, silent alerts are never audited, so the
		// attack is never caught — deterrence works via the warning.
		t.Fatalf("caught %d attacks; OSSP should never audit silent alerts", rep.Caught)
	}
}

func TestWarnedAttackerGetsZero(t *testing.T) {
	inst, day, curves := fixture(t, 40, 5)
	rep, err := Run(Config{
		Instance:          inst,
		Budget:            5,
		Day:               day,
		Curves:            curves,
		RollbackThreshold: history.DefaultRollbackThreshold,
		Strategy:          UniformAttacker{},
		Trials:            300,
		Seed:              3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Attacker's mean utility = P(silent)·U_au ≤ U_au, strictly less when
	// warnings happen.
	if rep.MeanAttacker >= 400 {
		t.Fatalf("attacker mean %.1f should be reduced by warnings", rep.MeanAttacker)
	}
	if rep.MeanAttacker <= 0 {
		t.Fatalf("attacker mean %.1f should be positive below deterrence coverage", rep.MeanAttacker)
	}
}

func TestEndOfDayVsUniform(t *testing.T) {
	// The end-of-day attacker's realized utility should be no worse for
	// him than the uniform attacker's (that's why the paper worries about
	// him); with rollback both must stay below U_au.
	inst, day, curves := fixture(t, 40, 5)
	run := func(s Strategy) *Report {
		rep, err := Run(Config{
			Instance:          inst,
			Budget:            5,
			Day:               day,
			Curves:            curves,
			RollbackThreshold: history.DefaultRollbackThreshold,
			Strategy:          s,
			Trials:            300,
			Seed:              7,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	uni := run(UniformAttacker{})
	late := run(EndOfDayAttacker{})
	if late.MeanAttacker > 400+1e-9 || uni.MeanAttacker > 400+1e-9 {
		t.Fatal("no attacker can beat the unprotected payoff")
	}
}

func TestBestResponseBeatsUniformForAttacker(t *testing.T) {
	inst, day, curves := fixture(t, 40, 5)
	run := func(s Strategy) *Report {
		rep, err := Run(Config{
			Instance:          inst,
			Budget:            5,
			Day:               day,
			Curves:            curves,
			RollbackThreshold: history.DefaultRollbackThreshold,
			Strategy:          s,
			Trials:            400,
			Seed:              23,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	uni := run(UniformAttacker{})
	br := run(BestResponseAttacker{})
	if br.Attacked == 0 {
		t.Skip("best-response attacker chose to stay out at this budget")
	}
	// Allow Monte-Carlo noise; the planner optimizes an expected model, so
	// require it not to be substantially worse than naive timing.
	if br.MeanAttacker < uni.MeanAttacker-60 {
		t.Fatalf("best-response attacker (%.1f) much worse than uniform (%.1f)",
			br.MeanAttacker, uni.MeanAttacker)
	}
}

func TestCloseCycleCalibration(t *testing.T) {
	// The engine's end-of-cycle audit draw must realize, on average, the
	// budget it charged in real time.
	inst, day, curves := fixture(t, 40, 5)
	rb, err := history.NewRollback(curves, history.DefaultRollbackThreshold)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(core.Config{
		Instance:  inst,
		Budget:    5,
		Estimator: rb,
		Policy:    core.PolicyOSSP,
		Rand:      rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range day {
		if _, err := eng.Process(a); err != nil {
			t.Fatal(err)
		}
	}
	charged := eng.InitialBudget() - eng.RemainingBudget()
	rng := rand.New(rand.NewSource(5))
	var total float64
	const draws = 400
	for i := 0; i < draws; i++ {
		outcomes, cost := eng.CloseCycle(rng)
		if len(outcomes) != len(day) {
			t.Fatalf("outcomes %d, want %d", len(outcomes), len(day))
		}
		total += cost
	}
	mean := total / draws
	if math.Abs(mean-charged) > 0.25*charged+0.5 {
		t.Fatalf("mean realized audit cost %.2f vs charged budget %.2f", mean, charged)
	}
}
