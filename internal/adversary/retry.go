package adversary

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/history"
)

// This file simulates the attacker the paper's §4 discussion rules out:
// "can the attacker keep attacking until receiving no warning, in which
// case he can attack safely under OSSP?" The paper argues no — once an
// attacker quits, his identity is essentially revealed (quits are rare),
// so a later "successful" access only hands the auditor forensic evidence.
//
// RunRetry makes that argument empirical: the retry attacker quits on a
// warning and strikes again later; the auditor flags quitters and always
// investigates their subsequent suspicious accesses. The report compares
// his realized utility to the rational single-shot attacker's.

// RetryReport compares the quit-and-retry strategy against the rational
// single-shot response.
type RetryReport struct {
	Trials int
	// Warned counts trials whose first attempt drew a warning (and hence
	// a retry).
	Warned int
	// CaughtOnRetry counts retries investigated via the quitter flag.
	CaughtOnRetry int
	// MeanRetryAttacker / MeanSingleShotAttacker are the attacker's
	// realized mean utilities under each response to warnings.
	MeanRetryAttacker      float64
	MeanSingleShotAttacker float64
	// MeanRetryAuditor is the auditor's realized mean utility against the
	// retry attacker (forensic catches pay U_dc).
	MeanRetryAuditor float64
}

// RunRetry evaluates the quit-and-retry attacker over seeded trials using
// the same day/curves machinery as Run. The retry, when it happens, is
// always investigated (the quitter flag), so it realizes the covered
// payoffs for both sides.
func RunRetry(cfg Config) (*RetryReport, error) {
	if cfg.Instance == nil || cfg.Curves == nil || cfg.Strategy == nil {
		return nil, fmt.Errorf("adversary: Instance, Curves and Strategy are required")
	}
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("adversary: Trials must be positive, got %d", cfg.Trials)
	}
	rep := &RetryReport{Trials: cfg.Trials}
	var retrySum, singleSum, auditorSum float64
	for trial := 0; trial < cfg.Trials; trial++ {
		res, err := runRetryTrial(cfg, int64(trial))
		if err != nil {
			return nil, err
		}
		if res.firstWarned {
			rep.Warned++
		}
		if res.caughtOnRetry {
			rep.CaughtOnRetry++
		}
		retrySum += res.retryAttacker
		singleSum += res.singleAttacker
		auditorSum += res.retryAuditor
	}
	n := float64(cfg.Trials)
	rep.MeanRetryAttacker = retrySum / n
	rep.MeanSingleShotAttacker = singleSum / n
	rep.MeanRetryAuditor = auditorSum / n
	return rep, nil
}

type retryTrial struct {
	firstWarned    bool
	caughtOnRetry  bool
	retryAttacker  float64
	singleAttacker float64
	retryAuditor   float64
}

func runRetryTrial(cfg Config, trial int64) (retryTrial, error) {
	seed := cfg.Seed*1_000_003 + trial
	rng := rand.New(rand.NewSource(seed))

	var estimator core.Estimator = cfg.Curves
	if cfg.RollbackThreshold >= 0 {
		rb, err := history.NewRollback(cfg.Curves, cfg.RollbackThreshold)
		if err != nil {
			return retryTrial{}, err
		}
		estimator = rb
	}
	eng, err := core.NewEngine(core.Config{
		Instance:  cfg.Instance,
		Budget:    cfg.Budget,
		Estimator: estimator,
		Policy:    core.PolicyOSSP,
		Rand:      rand.New(rand.NewSource(seed ^ 0x9E3779B9)),
	})
	if err != nil {
		return retryTrial{}, err
	}

	attack, attacks := cfg.Strategy.Plan(PlanContext{
		Instance: cfg.Instance,
		Budget:   cfg.Budget,
		Curves:   cfg.Curves,
		Rand:     rng,
	})
	if !attacks {
		return retryTrial{}, nil
	}

	stream := make([]core.Alert, 0, len(cfg.Day)+1)
	stream = append(stream, cfg.Day...)
	stream = append(stream, core.Alert{Type: attack.Type, Time: attack.Time})
	sort.SliceStable(stream, func(i, j int) bool { return stream[i].Time < stream[j].Time })

	var out retryTrial
	pf := cfg.Instance.Payoffs[attack.Type]
	for _, a := range stream {
		d, err := eng.Process(a)
		if err != nil {
			return retryTrial{}, err
		}
		if a.Type != attack.Type || a.Time != attack.Time {
			continue
		}
		if d.Vacuous {
			continue
		}
		if !d.Warned {
			// No warning: both strategies proceed identically; the silent
			// branch is never audited under the OSSP (Theorem 3).
			if rng.Float64() < d.AuditCharge {
				out.retryAttacker = pf.AttackerCovered
				out.singleAttacker = pf.AttackerCovered
				out.retryAuditor = pf.DefenderCovered
			} else {
				out.retryAttacker = pf.AttackerUncovered
				out.singleAttacker = pf.AttackerUncovered
				out.retryAuditor = pf.DefenderUncovered
			}
			continue
		}
		// Warned. The rational single-shot attacker quits for good: 0.
		out.firstWarned = true
		out.singleAttacker = 0
		// The retry attacker quits now (revealing himself) and strikes
		// again later in the cycle. The auditor flags quitters, so the
		// retry is always investigated: covered payoffs on both sides.
		// (Retrying at time t' still shows a warning with some chance, but
		// even an unwarned retry is investigated via the flag, so the
		// outcome is deterministic.)
		out.caughtOnRetry = true
		out.retryAttacker = pf.AttackerCovered
		out.retryAuditor = pf.DefenderCovered
	}
	return out, nil
}

// RetryIsDominated reports the paper's §4 claim on a finished report: the
// retry strategy earns the attacker no more than quitting for good.
func (r *RetryReport) RetryIsDominated(tol float64) bool {
	return r.MeanRetryAttacker <= r.MeanSingleShotAttacker+tol
}

// timeOfDay is a tiny helper for tests.
func timeOfDay(h float64) time.Duration { return time.Duration(h * float64(time.Hour)) }
