package adversary

import (
	"testing"

	"github.com/auditgames/sag/internal/history"
)

func TestRetryIsDominated(t *testing.T) {
	// The paper's §4 claim: quitting and retrying is dominated by quitting
	// for good, because the quit reveals the attacker.
	inst, day, curves := fixture(t, 40, 5)
	rep, err := RunRetry(Config{
		Instance:          inst,
		Budget:            5,
		Day:               day,
		Curves:            curves,
		RollbackThreshold: history.DefaultRollbackThreshold,
		Strategy:          UniformAttacker{},
		Trials:            400,
		Seed:              9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Warned == 0 {
		t.Fatal("no first-attempt warnings across 400 trials is implausible")
	}
	if rep.CaughtOnRetry != rep.Warned {
		t.Fatalf("every warned retry should be caught via the flag: %d vs %d",
			rep.CaughtOnRetry, rep.Warned)
	}
	if !rep.RetryIsDominated(1e-9) {
		t.Fatalf("retrying should be dominated: retry %.1f vs single-shot %.1f",
			rep.MeanRetryAttacker, rep.MeanSingleShotAttacker)
	}
	// With warnings happening, the domination is strict: each warned trial
	// costs the retry attacker U_ac < 0 instead of 0.
	if rep.MeanRetryAttacker >= rep.MeanSingleShotAttacker {
		t.Fatalf("domination should be strict when warnings occur: %.1f vs %.1f",
			rep.MeanRetryAttacker, rep.MeanSingleShotAttacker)
	}
	// The auditor profits from retries (forensic catches pay U_dc).
	if rep.MeanRetryAuditor <= -400 {
		t.Fatalf("auditor mean %.1f implausible", rep.MeanRetryAuditor)
	}
}

func TestRunRetryValidation(t *testing.T) {
	inst, day, curves := fixture(t, 10, 2)
	base := Config{Instance: inst, Budget: 2, Day: day, Curves: curves, Strategy: UniformAttacker{}, Trials: 1}
	bad := base
	bad.Curves = nil
	if _, err := RunRetry(bad); err == nil {
		t.Error("nil curves should be rejected")
	}
	bad = base
	bad.Trials = -1
	if _, err := RunRetry(bad); err == nil {
		t.Error("negative trials should be rejected")
	}
}

func TestTimeOfDayHelper(t *testing.T) {
	if timeOfDay(1.5).Minutes() != 90 {
		t.Fatal("timeOfDay(1.5) should be 90 minutes")
	}
}
