// Package game implements the Stackelberg audit game underlying the SAG:
// the auditor (leader) commits to a randomized audit allocation over alert
// types; the attacker (follower) observes the commitment and picks the alert
// type that maximizes his expected utility.
//
// Two solvers are provided, both using the classic multiple-LP method (one
// LP per candidate attacker best response; the paper's LP (2)):
//
//   - SolveOnlineSSE — the online equilibrium used at each alert arrival,
//     where future alert volumes are Poisson random variables and coverage is
//     linearized through E[1/max(D,1)] (see dist.InverseMeanCoefficient).
//   - SolveOfflineSSE — the offline baseline, where the day's alert counts
//     are fixed and known, matching the "offline SSE" lines of Figures 2–3.
//
// The online SSE's marginal coverage probabilities are exactly the marginal
// audit probabilities of the optimal signaling scheme (paper Theorem 1), so
// this package is the first half of every SAG decision; package signaling is
// the second half.
package game

import (
	"context"
	"fmt"
	"math"

	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/lp"
	"github.com/auditgames/sag/internal/payoff"
	"github.com/auditgames/sag/internal/pool"
)

// Instance describes the static part of an audit game: the alert-type
// payoff structures and the per-type audit costs V^t (the budget consumed by
// auditing one alert of that type).
type Instance struct {
	Payoffs    []payoff.Payoff
	AuditCosts []float64

	// workers bounds the candidate-LP fan-out of solveSSE; see SetWorkers.
	workers int
}

// SetWorkers bounds the per-candidate LP fan-out for SSE solves on this
// instance: 0 (the default) uses the shared GOMAXPROCS-sized worker pool,
// 1 forces the sequential reference path, and n > 1 caps the number of
// concurrent candidate solves at n. Parallel and sequential solves return
// bit-identical Results: candidate LPs are independent and deterministic,
// results are reduced in ascending type order with ties broken toward the
// lowest type index, and solver-effort counters are integer sums (exact and
// order-independent). Configure before solving begins — the setting is read
// by every solve and must not be changed concurrently with solves.
func (in *Instance) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	in.workers = n
}

// Workers returns the configured candidate-solve fan-out bound (0 = shared
// pool default).
func (in *Instance) Workers() int { return in.workers }

// NewInstance validates and builds an Instance. Payoffs and costs must have
// equal nonzero length, every payoff must satisfy the paper's sign
// conventions, and every audit cost must be positive and finite.
func NewInstance(payoffs []payoff.Payoff, auditCosts []float64) (*Instance, error) {
	if len(payoffs) == 0 {
		return nil, fmt.Errorf("game: instance needs at least one alert type")
	}
	if len(payoffs) != len(auditCosts) {
		return nil, fmt.Errorf("game: %d payoffs but %d audit costs", len(payoffs), len(auditCosts))
	}
	for i, p := range payoffs {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("game: type %d: %w", i, err)
		}
	}
	for i, v := range auditCosts {
		if !(v > 0) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("game: type %d: audit cost must be positive and finite, got %g", i, v)
		}
	}
	return &Instance{
		Payoffs:    append([]payoff.Payoff(nil), payoffs...),
		AuditCosts: append([]float64(nil), auditCosts...),
	}, nil
}

// NumTypes returns the number of alert types.
func (in *Instance) NumTypes() int { return len(in.Payoffs) }

// UniformCost builds the cost vector the paper's evaluation uses: V^t = c
// for every type.
func UniformCost(numTypes int, c float64) []float64 {
	costs := make([]float64, numTypes)
	for i := range costs {
		costs[i] = c
	}
	return costs
}

// Result is the Strong Stackelberg Equilibrium of one audit game.
type Result struct {
	// BestType is the attacker's best-response alert type (index into the
	// instance), or -1 when no type is attackable (all expected future
	// counts are zero), in which case the game is vacuous and utilities are
	// zero.
	BestType int
	// Coverage is the equilibrium marginal audit probability θ^{t'} per
	// type under the winning commitment.
	Coverage []float64
	// Allocation is the budget split B^{t'} per type chosen by the LP.
	Allocation []float64
	// DefenderUtility is the auditor's expected utility against the
	// victim alert of the best-response type.
	DefenderUtility float64
	// AttackerUtility is the attacker's expected utility at his best
	// response.
	AttackerUtility float64
	// CandidateFeasible records, per type, whether the "force t to be the
	// best response" LP was feasible — useful for diagnostics and tests.
	CandidateFeasible []bool
	// BudgetShadowPrice is the dual value of the shared budget constraint
	// in the winning LP: the marginal auditor utility of one more unit of
	// audit budget at this game state (0 when budget is not binding).
	BudgetShadowPrice float64
	// Stats aggregates simplex effort across every candidate LP of this
	// multiple-LP solve (feasible and infeasible alike) — the per-decision
	// solver cost the engine exports as counters.
	Stats SolveStats
}

// SolveStats itemizes the LP work behind one SSE solve.
type SolveStats struct {
	// LPSolves counts candidate LPs solved (one per attackable type).
	LPSolves int
	// Simplex accumulates iteration and pivot counts across those LPs.
	Simplex lp.Stats
}

// Accumulate adds o into s, for callers aggregating across many solves.
func (s *SolveStats) Accumulate(o SolveStats) {
	s.LPSolves += o.LPSolves
	s.Simplex.Accumulate(o.Simplex)
}

// SolveOnlineSSE computes the online SSE given the remaining audit budget
// and the Poisson-distributed future alert counts per type (paper §3.1).
func SolveOnlineSSE(inst *Instance, budget float64, futures []dist.Poisson) (*Result, error) {
	return SolveOnlineSSECtx(context.Background(), inst, budget, futures)
}

// SolveOnlineSSECtx is SolveOnlineSSE with cooperative cancellation:
// candidate LPs not yet started are skipped once ctx is done, in-flight
// simplex solves abort at their next iteration check, and the ctx error is
// returned. A context that can never be canceled costs nothing extra.
func SolveOnlineSSECtx(ctx context.Context, inst *Instance, budget float64, futures []dist.Poisson) (*Result, error) {
	if len(futures) != inst.NumTypes() {
		return nil, fmt.Errorf("game: %d future distributions for %d types", len(futures), inst.NumTypes())
	}
	if budget < 0 || math.IsNaN(budget) {
		return nil, fmt.Errorf("game: invalid budget %g", budget)
	}
	coeffs := make([]float64, inst.NumTypes())
	attackable := make([]bool, inst.NumTypes())
	for t, f := range futures {
		coeffs[t] = f.InverseMeanCoefficient()
		// A type with zero expected future arrivals cannot host an attack;
		// the paper's estimate d^t_τ counts alerts strictly after τ, so a
		// zero-rate type is excluded from the attacker's menu.
		attackable[t] = f.Lambda > 0
	}
	return solveSSE(ctx, inst, budget, coeffs, attackable)
}

// SolveOfflineSSE computes the offline SSE baseline for a full audit cycle
// whose per-type alert counts are fixed and known. Coverage of type t with
// allocation B is B/(V^t·d^t); types with zero count are not attackable.
func SolveOfflineSSE(inst *Instance, budget float64, counts []float64) (*Result, error) {
	if len(counts) != inst.NumTypes() {
		return nil, fmt.Errorf("game: %d counts for %d types", len(counts), inst.NumTypes())
	}
	if budget < 0 || math.IsNaN(budget) {
		return nil, fmt.Errorf("game: invalid budget %g", budget)
	}
	coeffs := make([]float64, inst.NumTypes())
	attackable := make([]bool, inst.NumTypes())
	for t, d := range counts {
		if d < 0 || math.IsNaN(d) {
			return nil, fmt.Errorf("game: invalid count %g for type %d", d, t)
		}
		if d > 0 {
			coeffs[t] = 1 / d
			attackable[t] = true
		} else {
			coeffs[t] = 1
		}
	}
	return solveSSE(context.Background(), inst, budget, coeffs, attackable)
}

// solveSSE runs the multiple-LP method. coeffs[t] is the linear coverage
// coefficient: θ^t = coeffs[t]·B^t/V^t. attackable[t] gates both the
// candidate set and the best-response constraints.
//
// The k candidate LPs are independent, so they fan out across the shared
// worker pool (bounded by Instance.SetWorkers). Each candidate writes into
// its own index slot; the reduction below runs sequentially in ascending
// type order with the strong-SSE tie-break (lowest type index at equal
// defender utility, within the 1e-12 comparison tolerance), so the parallel
// and sequential paths produce bit-identical Results.
//
// Cancellation is cooperative at two grains: between candidates (a canceled
// ctx stops new candidate solves from starting, via pool.ForEachCtx and the
// per-candidate check below) and inside a candidate (lp.SolveCtx polls ctx
// every few simplex iterations). Either way the reduction surfaces the ctx
// error deterministically.
func solveSSE(ctx context.Context, inst *Instance, budget float64, coeffs []float64, attackable []bool) (*Result, error) {
	k := inst.NumTypes()
	cands := make([]int, 0, k)
	for t, a := range attackable {
		if a {
			cands = append(cands, t)
		}
	}
	if len(cands) == 0 {
		return &Result{
			BestType:          -1,
			Coverage:          make([]float64, k),
			Allocation:        make([]float64, k),
			CandidateFeasible: make([]bool, k),
		}, nil
	}

	results := make([]*Result, k)
	feasible := make([]bool, k)
	ran := make([]bool, k)
	errs := make([]error, k)
	var simplex lp.AtomicStats
	solve := func(i int) {
		t := cands[i]
		// Cooperative cancellation between candidates: a candidate that has
		// not started when the deadline fires is never solved.
		if ctx.Err() != nil {
			return
		}
		res, lpStats, ok, err := solveCandidate(ctx, inst, budget, coeffs, attackable, t)
		ran[t] = true
		if err != nil {
			errs[t] = err
			return
		}
		simplex.Add(lpStats)
		feasible[t] = ok
		if ok {
			results[t] = res
		}
	}
	if w := inst.workers; w == 1 || len(cands) == 1 {
		for i := range cands {
			solve(i)
		}
	} else {
		// ForEachCtx additionally skips scheduling once ctx is done; the
		// ran[] bookkeeping below distinguishes skipped from infeasible.
		_ = pool.Shared().ForEachCtx(ctx, len(cands), w, solve)
	}

	// Deterministic reduction: errors and candidates are examined in
	// ascending type order regardless of solve scheduling. A candidate that
	// never ran means the context fired mid-solve — a partial reduction
	// could silently crown the wrong best response, so cancellation is
	// surfaced as an error and the caller decides how to degrade.
	var stats SolveStats
	best := (*Result)(nil)
	for _, t := range cands {
		if !ran[t] {
			err := ctx.Err()
			if err == nil {
				err = context.Canceled
			}
			return nil, fmt.Errorf("game: online SSE canceled before candidate %d: %w", t, err)
		}
		if errs[t] != nil {
			return nil, errs[t]
		}
		stats.LPSolves++
		res := results[t]
		if res == nil {
			continue
		}
		if best == nil || res.DefenderUtility > best.DefenderUtility+1e-12 {
			best = res
		}
	}
	if best == nil {
		// Cannot happen for valid inputs: the unconstrained-attacker
		// candidate argmax U_au is always feasible with zero allocation.
		return nil, fmt.Errorf("game: no feasible best-response candidate (internal invariant violated)")
	}
	stats.Simplex = simplex.Load()
	best.CandidateFeasible = feasible
	best.Stats = stats
	return best, nil
}

// solveCandidate solves LP (2) assuming alert type t is the attacker's best
// response. Variables are the budget allocations B^0..B^{k-1}.
func solveCandidate(ctx context.Context, inst *Instance, budget float64, coeffs []float64, attackable []bool, t int) (*Result, lp.Stats, bool, error) {
	k := inst.NumTypes()
	prob := lp.New(lp.Maximize, k)

	// slope[j] dθ^j/dB^j = coeffs[j]/V^j.
	slope := make([]float64, k)
	for j := 0; j < k; j++ {
		slope[j] = coeffs[j] / inst.AuditCosts[j]
	}

	// Objective: θ^t·U_dc + (1−θ^t)·U_du = slope[t]·(U_dc−U_du)·B^t + U_du.
	pt := inst.Payoffs[t]
	obj := make([]float64, k)
	obj[t] = slope[t] * (pt.DefenderCovered - pt.DefenderUncovered)
	if err := prob.SetObjective(obj); err != nil {
		return nil, lp.Stats{}, false, err
	}

	// Bounds: B^j ∈ [0, V^j/coeffs[j]] keeps θ^j ≤ 1 (and ≤ budget
	// implicitly via the shared budget row). A zero coefficient means
	// coverage never accrues for type j (zero expected future alerts), so
	// the θ^j ≤ 1 cap is vacuous and only the budget bounds B^j — dividing
	// by it would inject ±Inf into the variable bounds.
	for j := 0; j < k; j++ {
		hi := budget
		if coeffs[j] > 0 {
			if c := inst.AuditCosts[j] / coeffs[j]; c < hi {
				hi = c
			}
		}
		if err := prob.SetBounds(j, 0, hi); err != nil {
			return nil, lp.Stats{}, false, err
		}
	}

	// Best-response rows: for every attackable j ≠ t,
	// θ^t·U_ac^t + (1−θ^t)·U_au^t ≥ θ^j·U_ac^j + (1−θ^j)·U_au^j
	// ⇔ slope[t]·(U_ac^t−U_au^t)·B^t − slope[j]·(U_ac^j−U_au^j)·B^j ≥ U_au^j − U_au^t.
	for j := 0; j < k; j++ {
		if j == t || !attackable[j] {
			continue
		}
		pj := inst.Payoffs[j]
		row := make([]float64, k)
		row[t] = slope[t] * (pt.AttackerCovered - pt.AttackerUncovered)
		row[j] = -slope[j] * (pj.AttackerCovered - pj.AttackerUncovered)
		rhs := pj.AttackerUncovered - pt.AttackerUncovered
		if err := prob.AddConstraint(row, lp.GE, rhs); err != nil {
			return nil, lp.Stats{}, false, err
		}
	}

	// Shared budget: Σ B^j ≤ budget.
	ones := make([]float64, k)
	for j := range ones {
		ones[j] = 1
	}
	if err := prob.AddConstraint(ones, lp.LE, budget); err != nil {
		return nil, lp.Stats{}, false, err
	}

	sol, err := lp.SolveCtx(ctx, prob)
	if err != nil {
		return nil, lp.Stats{}, false, err
	}
	if sol.Status != lp.Optimal {
		return nil, sol.Stats, false, nil
	}

	cov := make([]float64, k)
	for j := 0; j < k; j++ {
		cov[j] = clamp01(slope[j] * sol.X[j])
	}
	res := &Result{
		BestType:        t,
		Coverage:        cov,
		Allocation:      sol.X,
		DefenderUtility: pt.DefenderExpected(cov[t]),
		AttackerUtility: pt.AttackerExpected(cov[t]),
	}
	// The shared budget row is the last constraint added above.
	if n := len(sol.Duals); n > 0 {
		res.BudgetShadowPrice = sol.Duals[n-1]
	}
	return res, sol.Stats, true, nil
}

func clamp01(x float64) float64 {
	if x < 0 {
		return 0
	}
	if x > 1 {
		return 1
	}
	return x
}
