package game

import (
	"fmt"
	"math"

	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/lp"
)

// This file implements the multi-attacker extension the paper's conclusions
// propose ("we focus on the one attacker setting as a pilot study of SAG,
// but it is necessary in the next step to investigate the situation of
// multiple attackers").
//
// Model: n attackers act simultaneously and independently against the same
// committed coverage vector. Attacker i may only attack alert types in his
// capability set C_i (e.g. a billing clerk cannot trigger a co-worker
// alert in cardiology). Each attacker best-responds separately; the
// auditor's utility is the sum over attackers of her victim-alert utility.
// The equilibrium is computed by the natural generalization of the
// multiple-LP method: enumerate joint best-response profiles (t_1..t_n),
// one LP per profile with every attacker's best-response constraint
// enforced, keep the feasible profile with the best total auditor utility.

// MultiResult is the Strong Stackelberg Equilibrium of the multi-attacker
// audit game. As with Result, utilities are LP objectives that assume every
// attacker goes through with his attack; callers that model participation
// (an attacker with negative best-response utility stays out) should clamp
// per-attacker contributions the way core.participationAwareUtility does
// for the single-attacker game.
type MultiResult struct {
	// BestTypes[i] is attacker i's equilibrium alert type (index into the
	// instance), or -1 when attacker i has no attackable type.
	BestTypes []int
	// Coverage and Allocation are as in Result.
	Coverage   []float64
	Allocation []float64
	// DefenderUtility is the auditor's total expected utility across all
	// attackers' victim alerts.
	DefenderUtility float64
	// AttackerUtilities[i] is attacker i's expected utility (0 when he has
	// no attackable type).
	AttackerUtilities []float64
}

// MaxJointProfiles bounds the best-response enumeration.
const MaxJointProfiles = 1 << 14

// SolveMultiAttackerSSE computes the multi-attacker online SSE. futures
// gives the Poisson future-count distribution per type; capabilities[i]
// lists the types attacker i can use (nil or empty means "all types").
func SolveMultiAttackerSSE(inst *Instance, budget float64, futures []dist.Poisson, capabilities [][]int) (*MultiResult, error) {
	if len(futures) != inst.NumTypes() {
		return nil, fmt.Errorf("game: %d future distributions for %d types", len(futures), inst.NumTypes())
	}
	if budget < 0 || math.IsNaN(budget) {
		return nil, fmt.Errorf("game: invalid budget %g", budget)
	}
	if len(capabilities) == 0 {
		return nil, fmt.Errorf("game: need at least one attacker")
	}
	coeffs := make([]float64, inst.NumTypes())
	attackable := make([]bool, inst.NumTypes())
	for t, f := range futures {
		coeffs[t] = f.InverseMeanCoefficient()
		attackable[t] = f.Lambda > 0
	}

	// Per-attacker candidate menus: capability ∩ attackable.
	menus := make([][]int, len(capabilities))
	profileCount := 1
	for i, caps := range capabilities {
		if len(caps) == 0 {
			for t := 0; t < inst.NumTypes(); t++ {
				if attackable[t] {
					menus[i] = append(menus[i], t)
				}
			}
		} else {
			seen := map[int]bool{}
			for _, t := range caps {
				if t < 0 || t >= inst.NumTypes() {
					return nil, fmt.Errorf("game: attacker %d capability %d out of range", i, t)
				}
				if seen[t] {
					return nil, fmt.Errorf("game: attacker %d lists type %d twice", i, t)
				}
				seen[t] = true
				if attackable[t] {
					menus[i] = append(menus[i], t)
				}
			}
		}
		if len(menus[i]) > 0 {
			profileCount *= len(menus[i])
		}
		if profileCount > MaxJointProfiles {
			return nil, fmt.Errorf("game: joint best-response space exceeds %d profiles", MaxJointProfiles)
		}
	}

	n := len(capabilities)
	best := (*MultiResult)(nil)
	profile := make([]int, n) // index into each menu; -1 handled below
	var rec func(i int) error
	rec = func(i int) error {
		if i == n {
			res, ok, err := solveJointProfile(inst, budget, coeffs, menus, profile)
			if err != nil {
				return err
			}
			if ok && (best == nil || res.DefenderUtility > best.DefenderUtility+1e-12) {
				best = res
			}
			return nil
		}
		if len(menus[i]) == 0 {
			profile[i] = -1
			return rec(i + 1)
		}
		for c := range menus[i] {
			profile[i] = c
			if err := rec(i + 1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := rec(0); err != nil {
		return nil, err
	}
	if best == nil {
		// Every attacker had an empty menu: vacuous game.
		return &MultiResult{
			BestTypes:         fillSlice(n, -1),
			Coverage:          make([]float64, inst.NumTypes()),
			Allocation:        make([]float64, inst.NumTypes()),
			AttackerUtilities: make([]float64, n),
		}, nil
	}
	return best, nil
}

func fillSlice(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

// newAllocationProblem builds the shared frame of every coverage LP: one
// budget-allocation variable per type, bounded so θ ≤ 1, plus the shared
// budget row.
func newAllocationProblem(inst *Instance, budget float64, coeffs []float64) (*lp.Problem, error) {
	k := inst.NumTypes()
	prob := lp.New(lp.Maximize, k)
	for j := 0; j < k; j++ {
		hi := budget
		if cap := inst.AuditCosts[j] / coeffs[j]; cap < hi {
			hi = cap
		}
		if err := prob.SetBounds(j, 0, hi); err != nil {
			return nil, err
		}
	}
	ones := make([]float64, k)
	for j := range ones {
		ones[j] = 1
	}
	if err := prob.AddConstraint(ones, lp.LE, budget); err != nil {
		return nil, err
	}
	return prob, nil
}

// solveAllocation runs the LP and reports (allocation, feasible, error).
func solveAllocation(prob *lp.Problem) ([]float64, bool, error) {
	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, false, err
	}
	if sol.Status != lp.Optimal {
		return nil, false, nil
	}
	return sol.X, true, nil
}

// solveJointProfile solves the coverage LP for one joint best-response
// profile (profile[i] indexes menus[i]; -1 = attacker i inactive).
func solveJointProfile(inst *Instance, budget float64, coeffs []float64, menus [][]int, profile []int) (*MultiResult, bool, error) {
	k := inst.NumTypes()
	prob, err := newAllocationProblem(inst, budget, coeffs)
	if err != nil {
		return nil, false, err
	}
	slope := make([]float64, k)
	for j := 0; j < k; j++ {
		slope[j] = coeffs[j] / inst.AuditCosts[j]
	}

	// Objective: sum of defender utilities at each active attacker's type.
	obj := make([]float64, k)
	for i, c := range profile {
		if c < 0 {
			continue
		}
		t := menus[i][c]
		pt := inst.Payoffs[t]
		obj[t] += slope[t] * (pt.DefenderCovered - pt.DefenderUncovered)
	}
	if err := prob.SetObjective(obj); err != nil {
		return nil, false, err
	}

	// Best-response rows per active attacker, within his own menu.
	for i, c := range profile {
		if c < 0 {
			continue
		}
		t := menus[i][c]
		pt := inst.Payoffs[t]
		for _, j := range menus[i] {
			if j == t {
				continue
			}
			pj := inst.Payoffs[j]
			row := make([]float64, k)
			row[t] += slope[t] * (pt.AttackerCovered - pt.AttackerUncovered)
			row[j] -= slope[j] * (pj.AttackerCovered - pj.AttackerUncovered)
			if err := prob.AddConstraint(row, lp.GE, pj.AttackerUncovered-pt.AttackerUncovered); err != nil {
				return nil, false, err
			}
		}
	}

	sol, ok, err := solveAllocation(prob)
	if err != nil || !ok {
		return nil, ok, err
	}
	cov := make([]float64, k)
	for j := 0; j < k; j++ {
		cov[j] = clamp01(slope[j] * sol[j])
	}
	res := &MultiResult{
		BestTypes:         make([]int, len(profile)),
		Coverage:          cov,
		Allocation:        sol,
		AttackerUtilities: make([]float64, len(profile)),
	}
	for i, c := range profile {
		if c < 0 {
			res.BestTypes[i] = -1
			continue
		}
		t := menus[i][c]
		res.BestTypes[i] = t
		res.DefenderUtility += inst.Payoffs[t].DefenderExpected(cov[t])
		res.AttackerUtilities[i] = inst.Payoffs[t].AttackerExpected(cov[t])
	}
	return res, true, nil
}
