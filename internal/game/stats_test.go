package game

import (
	"testing"

	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/payoff"
)

// TestSolveStatsAggregation: the multiple-LP solve must report one
// candidate LP per attackable type and nonzero simplex effort.
func TestSolveStatsAggregation(t *testing.T) {
	inst, err := NewInstance(payoff.Table2Slice(), UniformCost(7, 1))
	if err != nil {
		t.Fatal(err)
	}
	futures := make([]dist.Poisson, 7)
	for i := range futures {
		p, err := dist.NewPoisson(10)
		if err != nil {
			t.Fatal(err)
		}
		futures[i] = p
	}
	res, err := SolveOnlineSSE(inst, 20, futures)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.LPSolves != 7 {
		t.Fatalf("LPSolves = %d, want 7 (one candidate per attackable type)", res.Stats.LPSolves)
	}
	if res.Stats.Simplex.Iterations() == 0 || res.Stats.Simplex.Pivots == 0 {
		t.Fatalf("simplex stats empty: %+v", res.Stats.Simplex)
	}

	var agg SolveStats
	agg.Accumulate(res.Stats)
	agg.Accumulate(res.Stats)
	if agg.LPSolves != 14 || agg.Simplex.Pivots != 2*res.Stats.Simplex.Pivots {
		t.Fatalf("Accumulate wrong: %+v", agg)
	}
}

// TestSolveStatsVacuous: a vacuous game (no attackable type) solves no LPs.
func TestSolveStatsVacuous(t *testing.T) {
	inst, err := NewInstance(payoff.Table2Slice()[:1], UniformCost(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	zero, err := dist.NewPoisson(0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveOnlineSSE(inst, 20, []dist.Poisson{zero})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestType != -1 || res.Stats.LPSolves != 0 {
		t.Fatalf("vacuous game stats %+v", res.Stats)
	}
}
