package game

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/payoff"
)

func table2Instance(t *testing.T, cost float64) *Instance {
	t.Helper()
	inst, err := NewInstance(payoff.Table2Slice(), UniformCost(7, cost))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func singleTypeInstance(t *testing.T) *Instance {
	t.Helper()
	inst, err := NewInstance([]payoff.Payoff{payoff.Table2()[1]}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func TestNewInstanceValidation(t *testing.T) {
	if _, err := NewInstance(nil, nil); err == nil {
		t.Error("empty instance should be rejected")
	}
	if _, err := NewInstance(payoff.Table2Slice(), []float64{1}); err == nil {
		t.Error("length mismatch should be rejected")
	}
	if _, err := NewInstance([]payoff.Payoff{{}}, []float64{1}); err == nil {
		t.Error("invalid payoff should be rejected")
	}
	if _, err := NewInstance([]payoff.Payoff{payoff.Table2()[1]}, []float64{0}); err == nil {
		t.Error("zero audit cost should be rejected")
	}
	if _, err := NewInstance([]payoff.Payoff{payoff.Table2()[1]}, []float64{math.Inf(1)}); err == nil {
		t.Error("infinite audit cost should be rejected")
	}
}

func TestInstanceCopiesInputs(t *testing.T) {
	pays := []payoff.Payoff{payoff.Table2()[1]}
	costs := []float64{1}
	inst, err := NewInstance(pays, costs)
	if err != nil {
		t.Fatal(err)
	}
	costs[0] = 99
	if inst.AuditCosts[0] != 1 {
		t.Error("NewInstance must copy the cost slice")
	}
}

func TestUniformCost(t *testing.T) {
	c := UniformCost(3, 2.5)
	if len(c) != 3 || c[0] != 2.5 || c[2] != 2.5 {
		t.Fatalf("UniformCost = %v", c)
	}
}

// Single type closed form: θ* = min(1, κ·B/V) where κ = E[1/max(D,1)].
func TestOnlineSSESingleTypeClosedForm(t *testing.T) {
	inst := singleTypeInstance(t)
	for _, tc := range []struct {
		budget float64
		lambda float64
	}{
		{20, 196.57}, {5, 196.57}, {200, 196.57}, {1, 3}, {50, 3},
	} {
		fut := []dist.Poisson{{Lambda: tc.lambda}}
		res, err := SolveOnlineSSE(inst, tc.budget, fut)
		if err != nil {
			t.Fatal(err)
		}
		kappa := fut[0].InverseMeanCoefficient()
		want := math.Min(1, kappa*tc.budget)
		if res.BestType != 0 {
			t.Fatalf("BestType = %d, want 0", res.BestType)
		}
		if math.Abs(res.Coverage[0]-want) > 1e-6 {
			t.Fatalf("B=%g λ=%g: coverage %g, want %g", tc.budget, tc.lambda, res.Coverage[0], want)
		}
		wantU := inst.Payoffs[0].DefenderExpected(want)
		if math.Abs(res.DefenderUtility-wantU) > 1e-6 {
			t.Fatalf("defender utility %g, want %g", res.DefenderUtility, wantU)
		}
	}
}

func TestOfflineSSESingleTypeClosedForm(t *testing.T) {
	inst := singleTypeInstance(t)
	res, err := SolveOfflineSSE(inst, 20, []float64{200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Coverage[0]-0.1) > 1e-9 {
		t.Fatalf("coverage = %g, want 0.1", res.Coverage[0])
	}
	// Budget exceeding the day's alert volume caps coverage at 1.
	res, err = SolveOfflineSSE(inst, 500, []float64{200})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Coverage[0]-1) > 1e-9 {
		t.Fatalf("coverage = %g, want 1", res.Coverage[0])
	}
}

func TestSSEZeroBudget(t *testing.T) {
	inst := table2Instance(t, 1)
	futures := make([]dist.Poisson, 7)
	for i := range futures {
		futures[i] = dist.Poisson{Lambda: 10}
	}
	res, err := SolveOnlineSSE(inst, 0, futures)
	if err != nil {
		t.Fatal(err)
	}
	// With no budget, the attacker picks the type with the highest U_au
	// (type 7, index 6, U_au = 800) and the auditor eats U_du of that type.
	if res.BestType != 6 {
		t.Fatalf("BestType = %d, want 6", res.BestType)
	}
	if math.Abs(res.AttackerUtility-800) > 1e-9 {
		t.Fatalf("attacker utility = %g, want 800", res.AttackerUtility)
	}
	if math.Abs(res.DefenderUtility-(-2000)) > 1e-9 {
		t.Fatalf("defender utility = %g, want -2000", res.DefenderUtility)
	}
}

func TestSSENoAttackableTypes(t *testing.T) {
	inst := table2Instance(t, 1)
	res, err := SolveOnlineSSE(inst, 50, make([]dist.Poisson, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestType != -1 {
		t.Fatalf("BestType = %d, want -1 (vacuous game)", res.BestType)
	}
	if res.DefenderUtility != 0 || res.AttackerUtility != 0 {
		t.Fatal("vacuous game should have zero utilities")
	}
}

func TestSSEBestResponseConstraintHolds(t *testing.T) {
	inst := table2Instance(t, 1)
	futures := []dist.Poisson{
		{Lambda: 196.57}, {Lambda: 29.02}, {Lambda: 140.46}, {Lambda: 10.84},
		{Lambda: 25.43}, {Lambda: 15.14}, {Lambda: 43.27},
	}
	res, err := SolveOnlineSSE(inst, 50, futures)
	if err != nil {
		t.Fatal(err)
	}
	best := res.BestType
	bestU := inst.Payoffs[best].AttackerExpected(res.Coverage[best])
	for j := 0; j < inst.NumTypes(); j++ {
		if futures[j].Lambda == 0 {
			continue
		}
		u := inst.Payoffs[j].AttackerExpected(res.Coverage[j])
		if u > bestU+1e-6 {
			t.Fatalf("type %d gives attacker %g > best type %d's %g", j, u, best, bestU)
		}
	}
	// Budget is respected.
	total := 0.0
	for _, b := range res.Allocation {
		total += b
	}
	if total > 50+1e-6 {
		t.Fatalf("allocation %g exceeds budget 50", total)
	}
	for j, c := range res.Coverage {
		if c < -1e-9 || c > 1+1e-9 {
			t.Fatalf("coverage[%d] = %g out of [0,1]", j, c)
		}
	}
}

func TestSSELargeBudgetDetersEverything(t *testing.T) {
	inst := table2Instance(t, 1)
	counts := []float64{10, 10, 10, 10, 10, 10, 10}
	res, err := SolveOfflineSSE(inst, 70, counts) // enough to audit every alert
	if err != nil {
		t.Fatal(err)
	}
	// Full coverage of the best type is achievable; the attacker's utility
	// must be at most that of attacking a fully covered alert.
	if res.AttackerUtility > 1e-9 {
		// All types have enough budget to be covered beyond their
		// deterrence threshold.
		t.Fatalf("attacker utility = %g, want ≤ 0 with saturating budget", res.AttackerUtility)
	}
}

func TestSSEBudgetMonotonicity(t *testing.T) {
	inst := table2Instance(t, 1)
	futures := []dist.Poisson{
		{Lambda: 196.57}, {Lambda: 29.02}, {Lambda: 140.46}, {Lambda: 10.84},
		{Lambda: 25.43}, {Lambda: 15.14}, {Lambda: 43.27},
	}
	prev := math.Inf(-1)
	for _, b := range []float64{0, 5, 10, 20, 35, 50, 80, 120, 200, 400} {
		res, err := SolveOnlineSSE(inst, b, futures)
		if err != nil {
			t.Fatal(err)
		}
		if res.DefenderUtility < prev-1e-7 {
			t.Fatalf("budget %g: defender utility %g decreased from %g", b, res.DefenderUtility, prev)
		}
		prev = res.DefenderUtility
	}
}

func TestSSEAttackerUtilityMonotoneInBudget(t *testing.T) {
	inst := table2Instance(t, 1)
	futures := []dist.Poisson{
		{Lambda: 196.57}, {Lambda: 29.02}, {Lambda: 140.46}, {Lambda: 10.84},
		{Lambda: 25.43}, {Lambda: 15.14}, {Lambda: 43.27},
	}
	prev := math.Inf(1)
	for _, b := range []float64{0, 10, 25, 50, 100, 250} {
		res, err := SolveOnlineSSE(inst, b, futures)
		if err != nil {
			t.Fatal(err)
		}
		if res.AttackerUtility > prev+1e-7 {
			t.Fatalf("budget %g: attacker utility %g increased from %g", b, res.AttackerUtility, prev)
		}
		prev = res.AttackerUtility
	}
}

func TestSSEInputValidation(t *testing.T) {
	inst := singleTypeInstance(t)
	if _, err := SolveOnlineSSE(inst, -1, []dist.Poisson{{Lambda: 1}}); err == nil {
		t.Error("negative budget should be rejected")
	}
	if _, err := SolveOnlineSSE(inst, 1, nil); err == nil {
		t.Error("future-count length mismatch should be rejected")
	}
	if _, err := SolveOfflineSSE(inst, 1, []float64{-3}); err == nil {
		t.Error("negative count should be rejected")
	}
	if _, err := SolveOfflineSSE(inst, 1, []float64{1, 2}); err == nil {
		t.Error("count length mismatch should be rejected")
	}
	if _, err := SolveOfflineSSE(inst, math.NaN(), []float64{1}); err == nil {
		t.Error("NaN budget should be rejected")
	}
}

func TestOfflineSSETwoTypesHandVerified(t *testing.T) {
	// Two identical types with 10 alerts each and budget 10: symmetry and
	// the best-response constraint force equal coverage 0.5 on both.
	pf := payoff.Payoff{DefenderCovered: 100, DefenderUncovered: -400, AttackerCovered: -2000, AttackerUncovered: 400}
	inst, err := NewInstance([]payoff.Payoff{pf, pf}, UniformCost(2, 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveOfflineSSE(inst, 10, []float64{10, 10})
	if err != nil {
		t.Fatal(err)
	}
	// θ = 0.5 on each type is enough to deter (threshold = 400/2400 = 1/6),
	// but the SSE still reports the LP coverage; both coverages must be
	// equal by symmetry and sum to the normalized budget.
	if math.Abs(res.Coverage[0]-res.Coverage[1]) > 1e-6 {
		t.Fatalf("asymmetric coverage %v for symmetric game", res.Coverage)
	}
	if res.Coverage[res.BestType] < pf.DeterrenceThreshold()-1e-9 {
		t.Fatalf("coverage %g below deterrence threshold with ample budget", res.Coverage[res.BestType])
	}
}

func TestBudgetShadowPrice(t *testing.T) {
	inst := singleTypeInstance(t)
	fut := []dist.Poisson{{Lambda: 196.57}}
	// Scarce budget: the budget row binds and the shadow price equals the
	// objective slope dU/dB = κ·(U_dc − U_du).
	res, err := SolveOnlineSSE(inst, 20, fut)
	if err != nil {
		t.Fatal(err)
	}
	kappa := fut[0].InverseMeanCoefficient()
	want := kappa * (inst.Payoffs[0].DefenderCovered - inst.Payoffs[0].DefenderUncovered)
	if math.Abs(res.BudgetShadowPrice-want) > 1e-9 {
		t.Fatalf("shadow price %g, want %g", res.BudgetShadowPrice, want)
	}
	// Saturating budget: coverage capped at 1, the budget row is loose.
	res, err = SolveOnlineSSE(inst, 1e6, fut)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BudgetShadowPrice) > 1e-9 {
		t.Fatalf("loose budget should have zero shadow price, got %g", res.BudgetShadowPrice)
	}
}

func TestQuickSSEFeasibilityInvariants(t *testing.T) {
	inst, err := NewInstance(payoff.Table2Slice(), UniformCost(7, 1))
	if err != nil {
		t.Fatal(err)
	}
	prop := func(rawBudget float64, seeds [7]uint8) bool {
		budget := math.Mod(math.Abs(rawBudget), 120)
		if math.IsNaN(budget) {
			budget = 10
		}
		futures := make([]dist.Poisson, 7)
		for i, s := range seeds {
			futures[i] = dist.Poisson{Lambda: float64(s % 50)}
		}
		res, err := SolveOnlineSSE(inst, budget, futures)
		if err != nil {
			return false
		}
		if res.BestType == -1 {
			for _, f := range futures {
				if f.Lambda > 0 {
					return false
				}
			}
			return true
		}
		total := 0.0
		for j, b := range res.Allocation {
			if b < -1e-9 {
				return false
			}
			total += b
			if res.Coverage[j] < -1e-9 || res.Coverage[j] > 1+1e-9 {
				return false
			}
		}
		if total > budget+1e-6 {
			return false
		}
		// Best-response dominance.
		bestU := inst.Payoffs[res.BestType].AttackerExpected(res.Coverage[res.BestType])
		for j := range futures {
			if futures[j].Lambda == 0 {
				continue
			}
			if inst.Payoffs[j].AttackerExpected(res.Coverage[j]) > bestU+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
