package game

import (
	"context"
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/payoff"
)

// randomParallelInstance builds a valid random instance with k types for the
// parallel-vs-sequential equivalence property.
func randomParallelInstance(t *testing.T, rng *rand.Rand, k int) *Instance {
	t.Helper()
	pays := make([]payoff.Payoff, k)
	costs := make([]float64, k)
	for i := range pays {
		pays[i] = payoff.Payoff{
			DefenderCovered:   rng.Float64() * 700,
			DefenderUncovered: -(10 + rng.Float64()*2000),
			AttackerCovered:   -(10 + rng.Float64()*6000),
			AttackerUncovered: 10 + rng.Float64()*800,
		}
		costs[i] = 0.5 + rng.Float64()*5
	}
	inst, err := NewInstance(pays, costs)
	if err != nil {
		t.Fatalf("random instance invalid: %v", err)
	}
	return inst
}

// TestParallelSolveMatchesSequential is the equivalence property the parallel
// fan-out must uphold: for randomized instances, budgets and future-rate
// vectors, the parallel solve (shared pool, and an explicit 3-worker cap)
// returns a Result identical — field for field, including CandidateFeasible
// and the accumulated SolveStats — to the sequential reference (workers=1).
func TestParallelSolveMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	for trial := 0; trial < 60; trial++ {
		k := 1 + rng.Intn(9)
		inst := randomParallelInstance(t, rng, k)
		budget := rng.Float64() * 30
		futures := make([]dist.Poisson, k)
		for i := range futures {
			switch rng.Intn(4) {
			case 0:
				futures[i] = dist.Poisson{Lambda: 0} // unattackable type
			default:
				futures[i] = dist.Poisson{Lambda: rng.Float64() * 60}
			}
		}

		inst.SetWorkers(1)
		seq, seqErr := SolveOnlineSSE(inst, budget, futures)
		for _, w := range []int{0, 3} {
			inst.SetWorkers(w)
			par, parErr := SolveOnlineSSE(inst, budget, futures)
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("trial %d workers=%d: error mismatch seq=%v par=%v", trial, w, seqErr, parErr)
			}
			if seqErr != nil {
				continue
			}
			if !reflect.DeepEqual(seq, par) {
				t.Fatalf("trial %d workers=%d: parallel result diverges\nseq: %+v\npar: %+v", trial, w, seq, par)
			}
		}
	}
}

// TestParallelSolveMatchesSequentialOffline runs the same equivalence
// property through the offline entry point, whose coefficient construction
// (1/d with exclusion of zero-count types) differs from the online path.
func TestParallelSolveMatchesSequentialOffline(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(7)
		inst := randomParallelInstance(t, rng, k)
		budget := rng.Float64() * 20
		counts := make([]float64, k)
		for i := range counts {
			if rng.Intn(4) > 0 {
				counts[i] = float64(rng.Intn(50))
			}
		}

		inst.SetWorkers(1)
		seq, err := SolveOfflineSSE(inst, budget, counts)
		if err != nil {
			t.Fatal(err)
		}
		inst.SetWorkers(0)
		par, err := SolveOfflineSSE(inst, budget, counts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(seq, par) {
			t.Fatalf("trial %d: offline parallel result diverges\nseq: %+v\npar: %+v", trial, seq, par)
		}
	}
}

// TestSetWorkersClamp checks the workers knob normalizes negative values.
func TestSetWorkersClamp(t *testing.T) {
	inst := randomParallelInstance(t, rand.New(rand.NewSource(1)), 2)
	inst.SetWorkers(-5)
	if inst.Workers() != 0 {
		t.Fatalf("Workers() = %d after SetWorkers(-5), want 0", inst.Workers())
	}
	inst.SetWorkers(4)
	if inst.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", inst.Workers())
	}
}

// TestZeroCoefficientBounds is the regression test for the coeffs[j] == 0
// guard in solveCandidate: a type with a zero (or negative-zero) expected
// future-alert coefficient must fall back to the plain budget cap on its
// allocation variable rather than deriving a ±Inf bound from AuditCosts/0.
func TestZeroCoefficientBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	inst := randomParallelInstance(t, rng, 3)
	inst.SetWorkers(1)
	budget := 10.0

	for _, zero := range []float64{0, math.Copysign(0, -1)} {
		coeffs := []float64{0.8, zero, 0.5}
		attackable := []bool{true, true, true}
		res, err := solveSSE(context.Background(), inst, budget, coeffs, attackable)
		if err != nil {
			t.Fatalf("zero=%g: solveSSE failed: %v", zero, err)
		}
		for j, v := range res.Allocation {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > budget+1e-9 {
				t.Fatalf("zero=%g: allocation[%d] = %g outside [0, budget]", zero, j, v)
			}
		}
		for j, c := range res.Coverage {
			if math.IsNaN(c) || c < 0 || c > 1+1e-9 {
				t.Fatalf("zero=%g: coverage[%d] = %g outside [0, 1]", zero, j, c)
			}
		}
		// The zero-coefficient type yields zero marginal coverage however
		// much budget it gets, so its coverage must be exactly zero.
		if res.Coverage[1] != 0 {
			t.Fatalf("zero=%g: zero-coefficient type has coverage %g, want 0", zero, res.Coverage[1])
		}
	}
}
