package game

import (
	"math"
	"testing"

	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/payoff"
)

func table1Futures() []dist.Poisson {
	return []dist.Poisson{
		{Lambda: 196.57}, {Lambda: 29.02}, {Lambda: 140.46}, {Lambda: 10.84},
		{Lambda: 25.43}, {Lambda: 15.14}, {Lambda: 43.27},
	}
}

func TestMultiAttackerSingleReducesToSSE(t *testing.T) {
	inst := table2Instance(t, 1)
	futures := table1Futures()
	single, err := SolveOnlineSSE(inst, 50, futures)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := SolveMultiAttackerSSE(inst, 50, futures, [][]int{nil}) // one unrestricted attacker
	if err != nil {
		t.Fatal(err)
	}
	if multi.BestTypes[0] != single.BestType {
		t.Fatalf("best type %d vs single-attacker %d", multi.BestTypes[0], single.BestType)
	}
	if math.Abs(multi.DefenderUtility-single.DefenderUtility) > 1e-6 {
		t.Fatalf("defender utility %g vs %g", multi.DefenderUtility, single.DefenderUtility)
	}
}

func TestMultiAttackerValidation(t *testing.T) {
	inst := table2Instance(t, 1)
	futures := table1Futures()
	if _, err := SolveMultiAttackerSSE(inst, 50, futures, nil); err == nil {
		t.Error("zero attackers should be rejected")
	}
	if _, err := SolveMultiAttackerSSE(inst, -1, futures, [][]int{nil}); err == nil {
		t.Error("negative budget should be rejected")
	}
	if _, err := SolveMultiAttackerSSE(inst, 50, futures[:2], [][]int{nil}); err == nil {
		t.Error("future-count mismatch should be rejected")
	}
	if _, err := SolveMultiAttackerSSE(inst, 50, futures, [][]int{{99}}); err == nil {
		t.Error("out-of-range capability should be rejected")
	}
	if _, err := SolveMultiAttackerSSE(inst, 50, futures, [][]int{{1, 1}}); err == nil {
		t.Error("duplicate capability should be rejected")
	}
}

func TestMultiAttackerDisjointCapabilities(t *testing.T) {
	// Two attackers confined to disjoint type sets: each must best-respond
	// within his own menu, and budget splits between them.
	inst := table2Instance(t, 1)
	futures := table1Futures()
	caps := [][]int{{0, 1, 2}, {3, 4, 5, 6}}
	res, err := SolveMultiAttackerSSE(inst, 50, futures, caps)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestTypes[0] > 2 || res.BestTypes[0] < 0 {
		t.Fatalf("attacker 0 best type %d outside capability", res.BestTypes[0])
	}
	if res.BestTypes[1] < 3 {
		t.Fatalf("attacker 1 best type %d outside capability", res.BestTypes[1])
	}
	// Best-response dominance within each menu.
	for i, menu := range caps {
		bt := res.BestTypes[i]
		bu := inst.Payoffs[bt].AttackerExpected(res.Coverage[bt])
		for _, j := range menu {
			if u := inst.Payoffs[j].AttackerExpected(res.Coverage[j]); u > bu+1e-6 {
				t.Fatalf("attacker %d: type %d utility %g beats chosen %d's %g", i, j, u, bt, bu)
			}
		}
	}
	// Budget respected.
	total := 0.0
	for _, b := range res.Allocation {
		total += b
	}
	if total > 50+1e-6 {
		t.Fatalf("allocation %g exceeds budget", total)
	}
}

func TestMultiAttackerUtilityAdditive(t *testing.T) {
	// Defender utility must equal the sum over attackers of her per-victim
	// utility at the equilibrium coverage.
	inst := table2Instance(t, 1)
	futures := table1Futures()
	res, err := SolveMultiAttackerSSE(inst, 50, futures, [][]int{nil, nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for _, bt := range res.BestTypes {
		sum += inst.Payoffs[bt].DefenderExpected(res.Coverage[bt])
	}
	if math.Abs(sum-res.DefenderUtility) > 1e-9 {
		t.Fatalf("reported %g vs recomputed %g", res.DefenderUtility, sum)
	}
}

func TestMultiAttackerMoreAttackersMoreLoss(t *testing.T) {
	inst := table2Instance(t, 1)
	futures := table1Futures()
	u1, err := SolveMultiAttackerSSE(inst, 50, futures, [][]int{nil})
	if err != nil {
		t.Fatal(err)
	}
	u3, err := SolveMultiAttackerSSE(inst, 50, futures, [][]int{nil, nil, nil})
	if err != nil {
		t.Fatal(err)
	}
	if u3.DefenderUtility > u1.DefenderUtility+1e-9 {
		t.Fatalf("three attackers (%g) cannot hurt less than one (%g)",
			u3.DefenderUtility, u1.DefenderUtility)
	}
}

func TestMultiAttackerVacuousMenus(t *testing.T) {
	inst := table2Instance(t, 1)
	futures := make([]dist.Poisson, 7) // nothing attackable
	res, err := SolveMultiAttackerSSE(inst, 50, futures, [][]int{nil, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for i, bt := range res.BestTypes {
		if bt != -1 {
			t.Fatalf("attacker %d best type %d, want -1", i, bt)
		}
	}
	if res.DefenderUtility != 0 {
		t.Fatal("vacuous game should be zero-utility")
	}
}

func TestMultiAttackerPartiallyVacuous(t *testing.T) {
	// Attacker 1's entire menu has zero future volume → inactive, while
	// attacker 0 still plays.
	inst := table2Instance(t, 1)
	futures := table1Futures()
	futures[3] = dist.Poisson{}
	futures[4] = dist.Poisson{}
	res, err := SolveMultiAttackerSSE(inst, 50, futures, [][]int{nil, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestTypes[1] != -1 {
		t.Fatalf("attacker 1 should be inactive, got type %d", res.BestTypes[1])
	}
	if res.BestTypes[0] < 0 {
		t.Fatal("attacker 0 should be active")
	}
	if res.AttackerUtilities[1] != 0 {
		t.Fatal("inactive attacker utility should be 0")
	}
}

func TestMultiAttackerProfileExplosionGuard(t *testing.T) {
	pays := make([]payoff.Payoff, 8)
	for i := range pays {
		pays[i] = payoff.Table2()[1]
	}
	inst, err := NewInstance(pays, UniformCost(8, 1))
	if err != nil {
		t.Fatal(err)
	}
	futures := make([]dist.Poisson, 8)
	for i := range futures {
		futures[i] = dist.Poisson{Lambda: 10}
	}
	// 8 unrestricted attackers → 8^8 ≈ 16.7M profiles, over the cap.
	caps := make([][]int, 8)
	if _, err := SolveMultiAttackerSSE(inst, 50, futures, caps); err == nil {
		t.Fatal("profile explosion should be rejected")
	}
}
