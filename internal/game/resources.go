package game

import (
	"fmt"
	"math"

	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/lp"
)

// This file generalizes the audit game to multiple defender resource
// classes, the direction of Blocki et al., "Audit games with multiple
// defender resources" (AAAI 2015), which the paper builds on. A hospital
// compliance office is not one undifferentiated budget: senior
// investigators can work any alert type but are scarce; junior staff are
// plentiful but certified only for routine types; an external firm can be
// engaged for VIP cases at a premium.
//
// Each ResourceClass has its own budget, a capability mask over alert
// types, and a cost multiplier against the instance's base audit costs.
// Coverage adds across classes: θ^t = Σ_r κ^t · A^{t,r} / (V^t·Mult_r),
// where A^{t,r} is the budget of class r allocated to type t. The SSE is
// computed with the same multiple-LP method as the base game, with one
// allocation variable per (type, class) pair.

// ResourceClass is one kind of audit capacity.
type ResourceClass struct {
	// Name is a label for reports.
	Name string
	// Budget is this class's own audit budget.
	Budget float64
	// CanAudit masks the alert types the class may audit (nil = all).
	CanAudit []bool
	// CostMultiplier scales the instance's per-type audit cost for this
	// class (1 = baseline; must be positive).
	CostMultiplier float64
}

// ResourceResult is the SSE of the multi-resource audit game.
type ResourceResult struct {
	BestType int
	Coverage []float64
	// Allocation[r][t] is class r's budget assigned to type t.
	Allocation      [][]float64
	DefenderUtility float64
	AttackerUtility float64
}

// SolveResourceSSE computes the online SSE with per-class budgets. futures
// provides the Poisson future-count distribution per type, as in
// SolveOnlineSSE.
func SolveResourceSSE(inst *Instance, classes []ResourceClass, futures []dist.Poisson) (*ResourceResult, error) {
	if len(futures) != inst.NumTypes() {
		return nil, fmt.Errorf("game: %d future distributions for %d types", len(futures), inst.NumTypes())
	}
	if len(classes) == 0 {
		return nil, fmt.Errorf("game: need at least one resource class")
	}
	k := inst.NumTypes()
	for ci, c := range classes {
		if c.Budget < 0 || math.IsNaN(c.Budget) {
			return nil, fmt.Errorf("game: class %d: invalid budget %g", ci, c.Budget)
		}
		if !(c.CostMultiplier > 0) || math.IsInf(c.CostMultiplier, 0) {
			return nil, fmt.Errorf("game: class %d: invalid cost multiplier %g", ci, c.CostMultiplier)
		}
		if c.CanAudit != nil && len(c.CanAudit) != k {
			return nil, fmt.Errorf("game: class %d: capability mask has %d entries for %d types", ci, len(c.CanAudit), k)
		}
	}
	coeffs := make([]float64, k)
	attackable := make([]bool, k)
	for t, f := range futures {
		coeffs[t] = f.InverseMeanCoefficient()
		attackable[t] = f.Lambda > 0
	}
	anyAttackable := false
	for _, a := range attackable {
		anyAttackable = anyAttackable || a
	}
	if !anyAttackable {
		return &ResourceResult{
			BestType:   -1,
			Coverage:   make([]float64, k),
			Allocation: zeroAllocation(len(classes), k),
		}, nil
	}

	var best *ResourceResult
	for t := 0; t < k; t++ {
		if !attackable[t] {
			continue
		}
		res, ok, err := solveResourceCandidate(inst, classes, coeffs, attackable, t)
		if err != nil {
			return nil, err
		}
		if ok && (best == nil || res.DefenderUtility > best.DefenderUtility+1e-12) {
			best = res
		}
	}
	if best == nil {
		return nil, fmt.Errorf("game: no feasible best-response candidate (internal invariant violated)")
	}
	return best, nil
}

func zeroAllocation(classes, types int) [][]float64 {
	out := make([][]float64, classes)
	for i := range out {
		out[i] = make([]float64, types)
	}
	return out
}

// solveResourceCandidate solves the LP forcing type t to be the best
// response. Variables are indexed var(t', r) = r·k + t'.
func solveResourceCandidate(inst *Instance, classes []ResourceClass, coeffs []float64, attackable []bool, t int) (*ResourceResult, bool, error) {
	k := inst.NumTypes()
	nc := len(classes)
	nv := k * nc
	prob := lp.New(lp.Maximize, nv)

	// slope(t', r): dθ^{t'} / dA^{t',r}, zero when the class cannot audit
	// the type (enforced via a [0,0] bound).
	slope := func(tt, r int) float64 {
		return coeffs[tt] / (inst.AuditCosts[tt] * classes[r].CostMultiplier)
	}
	varIdx := func(tt, r int) int { return r*k + tt }
	for r, c := range classes {
		for tt := 0; tt < k; tt++ {
			hi := c.Budget
			if c.CanAudit != nil && !c.CanAudit[tt] {
				hi = 0
			}
			if err := prob.SetBounds(varIdx(tt, r), 0, hi); err != nil {
				return nil, false, err
			}
		}
	}

	// Objective: θ^t·(U_dc−U_du) + const.
	pt := inst.Payoffs[t]
	obj := make([]float64, nv)
	for r := range classes {
		obj[varIdx(t, r)] = slope(t, r) * (pt.DefenderCovered - pt.DefenderUncovered)
	}
	if err := prob.SetObjective(obj); err != nil {
		return nil, false, err
	}

	// θ^{t'} ≤ 1 rows (coverage now sums across classes, so variable
	// bounds alone cannot cap it).
	for tt := 0; tt < k; tt++ {
		row := make([]float64, nv)
		for r := range classes {
			row[varIdx(tt, r)] = slope(tt, r)
		}
		if err := prob.AddConstraint(row, lp.LE, 1); err != nil {
			return nil, false, err
		}
	}

	// Best-response rows.
	for j := 0; j < k; j++ {
		if j == t || !attackable[j] {
			continue
		}
		pj := inst.Payoffs[j]
		row := make([]float64, nv)
		for r := range classes {
			row[varIdx(t, r)] += slope(t, r) * (pt.AttackerCovered - pt.AttackerUncovered)
			row[varIdx(j, r)] -= slope(j, r) * (pj.AttackerCovered - pj.AttackerUncovered)
		}
		if err := prob.AddConstraint(row, lp.GE, pj.AttackerUncovered-pt.AttackerUncovered); err != nil {
			return nil, false, err
		}
	}

	// Per-class budget rows.
	for r, c := range classes {
		row := make([]float64, nv)
		for tt := 0; tt < k; tt++ {
			row[varIdx(tt, r)] = 1
		}
		if err := prob.AddConstraint(row, lp.LE, c.Budget); err != nil {
			return nil, false, err
		}
	}

	sol, err := lp.Solve(prob)
	if err != nil {
		return nil, false, err
	}
	if sol.Status != lp.Optimal {
		return nil, false, nil
	}

	cov := make([]float64, k)
	alloc := zeroAllocation(nc, k)
	for r := range classes {
		for tt := 0; tt < k; tt++ {
			a := sol.X[varIdx(tt, r)]
			alloc[r][tt] = a
			cov[tt] += slope(tt, r) * a
		}
	}
	for tt := range cov {
		cov[tt] = clamp01(cov[tt])
	}
	return &ResourceResult{
		BestType:        t,
		Coverage:        cov,
		Allocation:      alloc,
		DefenderUtility: pt.DefenderExpected(cov[t]),
		AttackerUtility: pt.AttackerExpected(cov[t]),
	}, true, nil
}
