package game

import (
	"math"
	"testing"

	"github.com/auditgames/sag/internal/dist"
)

func TestResourceSSESingleClassReducesToBase(t *testing.T) {
	inst := table2Instance(t, 1)
	futures := table1Futures()
	base, err := SolveOnlineSSE(inst, 50, futures)
	if err != nil {
		t.Fatal(err)
	}
	res, err := SolveResourceSSE(inst, []ResourceClass{
		{Name: "staff", Budget: 50, CostMultiplier: 1},
	}, futures)
	if err != nil {
		t.Fatal(err)
	}
	if res.BestType != base.BestType {
		t.Fatalf("best type %d vs base %d", res.BestType, base.BestType)
	}
	if math.Abs(res.DefenderUtility-base.DefenderUtility) > 1e-6 {
		t.Fatalf("utility %g vs base %g", res.DefenderUtility, base.DefenderUtility)
	}
	for j := range res.Coverage {
		if math.Abs(res.Coverage[j]-base.Coverage[j]) > 1e-6 {
			t.Fatalf("coverage[%d] %g vs base %g", j, res.Coverage[j], base.Coverage[j])
		}
	}
}

func TestResourceSSEValidation(t *testing.T) {
	inst := table2Instance(t, 1)
	futures := table1Futures()
	if _, err := SolveResourceSSE(inst, nil, futures); err == nil {
		t.Error("no classes should be rejected")
	}
	if _, err := SolveResourceSSE(inst, []ResourceClass{{Budget: -1, CostMultiplier: 1}}, futures); err == nil {
		t.Error("negative budget should be rejected")
	}
	if _, err := SolveResourceSSE(inst, []ResourceClass{{Budget: 1, CostMultiplier: 0}}, futures); err == nil {
		t.Error("zero multiplier should be rejected")
	}
	if _, err := SolveResourceSSE(inst, []ResourceClass{{Budget: 1, CostMultiplier: 1, CanAudit: []bool{true}}}, futures); err == nil {
		t.Error("mask length mismatch should be rejected")
	}
	if _, err := SolveResourceSSE(inst, []ResourceClass{{Budget: 1, CostMultiplier: 1}}, futures[:2]); err == nil {
		t.Error("futures length mismatch should be rejected")
	}
}

func TestResourceSSECapabilityMasksRespected(t *testing.T) {
	inst := table2Instance(t, 1)
	futures := table1Futures()
	// Junior staff can only audit types 0–2; seniors anything.
	juniorMask := []bool{true, true, true, false, false, false, false}
	res, err := SolveResourceSSE(inst, []ResourceClass{
		{Name: "junior", Budget: 40, CanAudit: juniorMask, CostMultiplier: 1},
		{Name: "senior", Budget: 10, CostMultiplier: 1},
	}, futures)
	if err != nil {
		t.Fatal(err)
	}
	for tt := 3; tt < 7; tt++ {
		if res.Allocation[0][tt] > 1e-9 {
			t.Fatalf("junior class allocated %g to uncertified type %d", res.Allocation[0][tt], tt)
		}
	}
	// Per-class budgets respected.
	for r, class := range []float64{40, 10} {
		total := 0.0
		for tt := 0; tt < 7; tt++ {
			total += res.Allocation[r][tt]
		}
		if total > class+1e-6 {
			t.Fatalf("class %d spent %g of %g", r, total, class)
		}
	}
}

func TestResourceSSEExpensiveClassIsDiscounted(t *testing.T) {
	// Same total budget, but one setup pays double per audit for half the
	// work: the defender utility must be no better than the baseline's.
	inst := table2Instance(t, 1)
	futures := table1Futures()
	cheap, err := SolveResourceSSE(inst, []ResourceClass{
		{Budget: 50, CostMultiplier: 1},
	}, futures)
	if err != nil {
		t.Fatal(err)
	}
	pricey, err := SolveResourceSSE(inst, []ResourceClass{
		{Budget: 50, CostMultiplier: 2},
	}, futures)
	if err != nil {
		t.Fatal(err)
	}
	if pricey.DefenderUtility > cheap.DefenderUtility+1e-9 {
		t.Fatalf("doubling audit cost should not help: %g vs %g",
			pricey.DefenderUtility, cheap.DefenderUtility)
	}
	// And it should match the base game at half budget.
	half, err := SolveOnlineSSE(inst, 25, futures)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pricey.DefenderUtility-half.DefenderUtility) > 1e-6 {
		t.Fatalf("2× cost at 50 should equal 1× at 25: %g vs %g",
			pricey.DefenderUtility, half.DefenderUtility)
	}
}

func TestResourceSSESplitBudgetsNeverBeatPooled(t *testing.T) {
	// Constrained budgets (earmarked per class with capability masks) can
	// never beat one pooled unrestricted budget of the same size.
	inst := table2Instance(t, 1)
	futures := table1Futures()
	pooled, err := SolveResourceSSE(inst, []ResourceClass{
		{Budget: 50, CostMultiplier: 1},
	}, futures)
	if err != nil {
		t.Fatal(err)
	}
	split, err := SolveResourceSSE(inst, []ResourceClass{
		{Budget: 25, CanAudit: []bool{true, true, true, true, false, false, false}, CostMultiplier: 1},
		{Budget: 25, CanAudit: []bool{false, false, false, false, true, true, true}, CostMultiplier: 1},
	}, futures)
	if err != nil {
		t.Fatal(err)
	}
	if split.DefenderUtility > pooled.DefenderUtility+1e-6 {
		t.Fatalf("earmarked budgets beat pooled: %g vs %g",
			split.DefenderUtility, pooled.DefenderUtility)
	}
}

func TestResourceSSEVacuous(t *testing.T) {
	inst := table2Instance(t, 1)
	res, err := SolveResourceSSE(inst, []ResourceClass{
		{Budget: 50, CostMultiplier: 1},
	}, make([]dist.Poisson, 7))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestType != -1 || res.DefenderUtility != 0 {
		t.Fatalf("vacuous game: %+v", res)
	}
}
