// Package faultinject provides deterministic, seeded fault injection for the
// SAG decision pipeline. It is compiled unconditionally — no build tags — so
// the chaos tests exercise exactly the binaries that ship; the zero value
// (and a nil *Point) injects nothing and costs one predictable branch.
//
// A Point is one injection site. Each call through a Point rolls against the
// configured fault rates using a private seeded RNG, so a given (seed, call
// sequence) reproduces the same fault schedule on every run — chaos tests
// are replayable, not flaky. Wrap the engine's dependencies with Estimator
// and SSESolve to inject estimator failures, solver errors, solver latency
// (which a decision deadline converts into timeouts), and solver panics.
package faultinject

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// ErrInjected is the sentinel wrapped by every injected error, so tests can
// distinguish injected failures from organic ones with errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Fault enumerates the failure modes a Point can fire.
type Fault int

const (
	// FaultError makes the wrapped call return an injected error.
	FaultError Fault = iota
	// FaultLatency delays the wrapped call by Config.Latency. Under a
	// context deadline the delay observes cancellation, so a long injected
	// latency manifests as a timeout rather than a hung test.
	FaultLatency
	// FaultPanic makes the wrapped call panic with a *PanicValue.
	FaultPanic
	numFaults
)

// String returns the fault's name.
func (f Fault) String() string {
	switch f {
	case FaultError:
		return "error"
	case FaultLatency:
		return "latency"
	case FaultPanic:
		return "panic"
	default:
		return fmt.Sprintf("Fault(%d)", int(f))
	}
}

// PanicValue is the value injected panics carry, so recovery layers can
// attribute a contained panic to the injector.
type PanicValue struct{ Site string }

func (p *PanicValue) String() string {
	return "faultinject: injected panic at " + p.Site
}

// Config sets a Point's fault schedule. Rates are independent probabilities
// in [0, 1] rolled per call, in the order latency → panic → error (a single
// call can therefore be both slow and failing, like a solve that burns its
// deadline before erroring).
type Config struct {
	// Seed drives the Point's private RNG; runs with equal seeds and equal
	// call sequences inject identical fault schedules.
	Seed int64
	// ErrorRate is the per-call probability of an injected error.
	ErrorRate float64
	// LatencyRate is the per-call probability of an injected delay of
	// Latency.
	LatencyRate float64
	// Latency is the injected delay duration (zero disables even when
	// LatencyRate fires).
	Latency time.Duration
	// PanicRate is the per-call probability of an injected panic.
	PanicRate float64
}

// Point is one injection site. All methods are safe for concurrent use and
// inert on a nil receiver.
type Point struct {
	name string
	cfg  Config

	mu     sync.Mutex
	rng    *rand.Rand
	counts [numFaults]uint64
	calls  uint64
}

// New returns a Point named for its site (the name appears in injected
// errors and panics).
func New(name string, cfg Config) *Point {
	return &Point{name: name, cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Counts reports how many times each fault has fired, plus the total number
// of calls that passed through the point.
func (p *Point) Counts() (perFault map[Fault]uint64, calls uint64) {
	if p == nil {
		return map[Fault]uint64{}, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	m := make(map[Fault]uint64, numFaults)
	for f := Fault(0); f < numFaults; f++ {
		m[f] = p.counts[f]
	}
	return m, p.calls
}

// roll decides this call's faults under the mutex, then releases it before
// any sleeping or panicking, so concurrent callers and Counts never block on
// an injected delay.
func (p *Point) roll() (delay time.Duration, doPanic bool, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.calls++
	if p.cfg.LatencyRate > 0 && p.cfg.Latency > 0 && p.rng.Float64() < p.cfg.LatencyRate {
		p.counts[FaultLatency]++
		delay = p.cfg.Latency
	}
	if p.cfg.PanicRate > 0 && p.rng.Float64() < p.cfg.PanicRate {
		p.counts[FaultPanic]++
		doPanic = true
	}
	if p.cfg.ErrorRate > 0 && p.rng.Float64() < p.cfg.ErrorRate {
		p.counts[FaultError]++
		err = fmt.Errorf("faultinject: %s: %w", p.name, ErrInjected)
	}
	return delay, doPanic, err
}

// fire applies one rolled schedule: sleep (bounded by done when non-nil),
// then panic, then error. A nil *Point fires nothing.
func (p *Point) fire(done <-chan struct{}) error {
	if p == nil {
		return nil
	}
	delay, doPanic, err := p.roll()
	if delay > 0 {
		if done == nil {
			time.Sleep(delay)
		} else {
			t := time.NewTimer(delay)
			select {
			case <-t.C:
			case <-done:
				t.Stop()
			}
		}
	}
	if doPanic {
		panic(&PanicValue{Site: p.name})
	}
	return err
}

// Fire triggers the point once with no cancellation: sleep any injected
// latency, then panic or return the injected error per the seeded schedule.
// It is the seam for call sites that are not wrapped behind an interface —
// e.g. the server's journal-append path — and is a no-op on a nil *Point.
func (p *Point) Fire() error { return p.fire(nil) }
