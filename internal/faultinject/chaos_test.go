package faultinject_test

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/fallback"
	"github.com/auditgames/sag/internal/faultinject"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/payoff"
)

// armed is a late-binding injection slot: the wrappers capture the slot, so
// a test can run the engine clean, then arm a fault Point between alerts.
type armed struct {
	mu sync.Mutex
	p  *faultinject.Point
}

func (a *armed) set(p *faultinject.Point) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.p = p
}

func (a *armed) get() *faultinject.Point {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.p
}

// chaosEngine wires a multi-type OSSP engine whose estimator and SSE solver
// both pass through late-binding injection slots.
type chaosEngine struct {
	eng    *core.Engine
	reg    *obs.Registry
	est    *armed
	solver *armed
	inst   *game.Instance
}

func newChaosEngine(t *testing.T, budget float64, deadline time.Duration, cacheSize int) *chaosEngine {
	t.Helper()
	inst, err := game.NewInstance(payoff.Table2Slice(), game.UniformCost(7, 1))
	if err != nil {
		t.Fatal(err)
	}
	ce := &chaosEngine{reg: obs.NewRegistry(), est: &armed{}, solver: &armed{}, inst: inst}
	base := core.EstimatorFunc(func(time.Duration) ([]float64, error) {
		return []float64{4, 3, 5, 2, 6, 1, 3}, nil
	})
	ce.eng, err = core.NewEngine(core.Config{
		Instance: inst,
		Budget:   budget,
		Estimator: core.EstimatorFunc(func(at time.Duration) ([]float64, error) {
			return faultinject.Estimator(ce.est.get(), base).FutureRates(at)
		}),
		Policy:           core.PolicyOSSP,
		Rand:             rand.New(rand.NewSource(11)),
		Metrics:          ce.reg,
		Cache:            core.CacheConfig{Size: cacheSize},
		DecisionDeadline: deadline,
		Fallback:         true,
		SSESolve: func(ctx context.Context, inst *game.Instance, budget float64, futures []dist.Poisson) (*game.Result, error) {
			return faultinject.SSESolve(ce.solver.get(), nil)(ctx, inst, budget, futures)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ce
}

func (ce *chaosEngine) fallbackCount(t *testing.T, lvl fallback.Level) uint64 {
	t.Helper()
	return ce.reg.Counter(core.MetricFallbackTotal, "", obs.L("level", lvl.String())).Value()
}

// checkBudgetChain asserts every recorded decision charged the budget
// exactly once and consistently: BudgetAfter follows from BudgetBefore, the
// chain is contiguous across decisions, and the engine's remaining budget is
// the chain's tail.
func checkBudgetChain(t *testing.T, ce *chaosEngine) {
	t.Helper()
	ds := ce.eng.Decisions()
	prev := ce.eng.InitialBudget()
	for i, d := range ds {
		if d.BudgetBefore != prev {
			t.Fatalf("decision %d: BudgetBefore = %g, want %g (chain broken)", i, d.BudgetBefore, prev)
		}
		V := 1.0 // UniformCost(7, 1)
		want := math.Max(0, d.BudgetBefore-d.AuditCharge*V)
		if math.Abs(d.BudgetAfter-want) > 1e-12 {
			t.Fatalf("decision %d: BudgetAfter = %g, want %g (charge %g)", i, d.BudgetAfter, want, d.AuditCharge)
		}
		if d.AuditCharge < 0 || d.AuditCharge > 1+1e-9 {
			t.Fatalf("decision %d: AuditCharge = %g outside [0,1]", i, d.AuditCharge)
		}
		prev = d.BudgetAfter
	}
	if got := ce.eng.RemainingBudget(); got != prev {
		t.Fatalf("RemainingBudget = %g, want chain tail %g", got, prev)
	}
}

// TestFallbackLevels is the satellite table: each injected failure mode must
// degrade to its expected ladder rung, keep the budget accounting exact, and
// increment exactly the matching fallback counter.
func TestFallbackLevels(t *testing.T) {
	cases := []struct {
		name string
		// deadline/cacheSize configure the engine; prime runs one clean
		// decision first; arm injects the fault before the probe alert.
		deadline  time.Duration
		cacheSize int
		prime     bool
		arm       func(ce *chaosEngine)
		want      fallback.Level
		// wantDeadline is the expected deadline-exceeded counter value.
		wantDeadline uint64
	}{
		{
			name:      "estimator error with no prior state degrades to static",
			cacheSize: 64,
			arm: func(ce *chaosEngine) {
				ce.est.set(faultinject.New("estimator", faultinject.Config{Seed: 1, ErrorRate: 1}))
			},
			want: fallback.Static,
		},
		{
			name:      "solver error without cache degrades to last-good theta",
			cacheSize: 0,
			prime:     true,
			arm: func(ce *chaosEngine) {
				ce.solver.set(faultinject.New("sse", faultinject.Config{Seed: 1, ErrorRate: 1}))
			},
			want: fallback.LastGood,
		},
		{
			name:      "solver timeout with cache degrades to cached decision",
			deadline:  30 * time.Millisecond,
			cacheSize: 64,
			prime:     true,
			arm: func(ce *chaosEngine) {
				ce.solver.set(faultinject.New("sse", faultinject.Config{
					Seed: 1, LatencyRate: 1, Latency: 10 * time.Second,
				}))
			},
			want:         fallback.Cache,
			wantDeadline: 1,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ce := newChaosEngine(t, 20, c.deadline, c.cacheSize)
			alert := core.Alert{Type: 2, Time: time.Minute}
			if c.prime {
				d, err := ce.eng.Process(alert)
				if err != nil {
					t.Fatalf("priming decision failed: %v", err)
				}
				if d.Fallback != fallback.None {
					t.Fatalf("priming decision degraded to %v", d.Fallback)
				}
			}
			c.arm(ce)
			d, err := ce.eng.Process(alert)
			if err != nil {
				t.Fatalf("Process with injected fault errored: %v", err)
			}
			if d.Fallback != c.want {
				t.Fatalf("Fallback = %v, want %v", d.Fallback, c.want)
			}
			checkBudgetChain(t, ce)
			for _, lvl := range []fallback.Level{fallback.Cache, fallback.LastGood, fallback.Static} {
				want := uint64(0)
				if lvl == c.want {
					want = 1
				}
				if got := ce.fallbackCount(t, lvl); got != want {
					t.Errorf("fallback counter %v = %d, want %d", lvl, got, want)
				}
			}
			dl := ce.reg.Counter(core.MetricDeadlineExceededTotal, "").Value()
			if dl != c.wantDeadline {
				t.Errorf("deadline-exceeded counter = %d, want %d", dl, c.wantDeadline)
			}
		})
	}
}

// TestSolverPanicContained injects a solver panic and asserts the engine
// converts it into a degraded decision instead of crashing, and stays usable
// afterwards.
func TestSolverPanicContained(t *testing.T) {
	ce := newChaosEngine(t, 20, 0, 0)
	ce.solver.set(faultinject.New("sse", faultinject.Config{Seed: 1, PanicRate: 1}))
	d, err := ce.eng.Process(core.Alert{Type: 1})
	if err != nil {
		t.Fatalf("Process with injected panic errored: %v", err)
	}
	if !d.Fallback.Degraded() {
		t.Fatalf("panic did not degrade: level %v", d.Fallback)
	}
	ce.solver.set(nil)
	d, err = ce.eng.Process(core.Alert{Type: 1})
	if err != nil || d.Fallback != fallback.None {
		t.Fatalf("engine unusable after contained panic: %v, level %v", err, d.Fallback)
	}
	checkBudgetChain(t, ce)
}

// TestChaosNeverErrors runs a long alert stream under randomized estimator
// and solver faults (errors, panics, deadline-burning latency) and asserts
// the acceptance property: once a cycle is open, Process never returns an
// error — every alert gets a budget-consistent decision at some fallback
// level — and the degraded count matches the fallback counters.
func TestChaosNeverErrors(t *testing.T) {
	ce := newChaosEngine(t, 50, 40*time.Millisecond, 128)
	ce.est.set(faultinject.New("estimator", faultinject.Config{Seed: 3, ErrorRate: 0.15}))
	ce.solver.set(faultinject.New("sse", faultinject.Config{
		Seed: 4, ErrorRate: 0.15, PanicRate: 0.1, LatencyRate: 0.1, Latency: 10 * time.Second,
	}))
	rng := rand.New(rand.NewSource(9))
	const alerts = 200
	degraded := 0
	for i := 0; i < alerts; i++ {
		a := core.Alert{Type: rng.Intn(7), Time: time.Duration(i) * time.Second}
		d, err := ce.eng.Process(a)
		if err != nil {
			t.Fatalf("alert %d: Process errored under injection: %v", i, err)
		}
		if d.Fallback.Degraded() {
			degraded++
		}
	}
	if ds := ce.eng.Decisions(); len(ds) != alerts {
		t.Fatalf("recorded %d decisions, want %d", len(ds), alerts)
	}
	checkBudgetChain(t, ce)
	if degraded == 0 {
		t.Fatal("chaos schedule injected no faults; rates or seed are wrong")
	}
	if degraded == alerts {
		t.Fatal("every decision degraded; primary pipeline never ran")
	}
	var counted uint64
	for _, lvl := range []fallback.Level{fallback.Cache, fallback.LastGood, fallback.Static} {
		counted += ce.fallbackCount(t, lvl)
	}
	if counted != uint64(degraded) {
		t.Fatalf("fallback counters sum to %d, want %d degraded decisions", counted, degraded)
	}
	// Invalid alerts must still error — no ladder rung can cover them.
	if _, err := ce.eng.Process(core.Alert{Type: 99}); err == nil {
		t.Fatal("out-of-range type must error even with fallback enabled")
	}
}

// TestChaosConcurrent hammers one shared engine from many goroutines under
// fault injection while readers poll the cycle state. Run under -race this
// is the satellite's concurrency-contract test: no errors, no races, and a
// linearized budget chain at the end.
func TestChaosConcurrent(t *testing.T) {
	ce := newChaosEngine(t, 100, 40*time.Millisecond, 64)
	ce.est.set(faultinject.New("estimator", faultinject.Config{Seed: 5, ErrorRate: 0.1}))
	ce.solver.set(faultinject.New("sse", faultinject.Config{Seed: 6, ErrorRate: 0.1, PanicRate: 0.05}))

	const workers, perWorker = 8, 25
	errs := make(chan error, workers*perWorker)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for i := 0; i < perWorker; i++ {
				a := core.Alert{Type: rng.Intn(7), Time: time.Duration(i) * time.Second}
				if _, err := ce.eng.Process(a); err != nil {
					errs <- err
				}
			}
		}(w)
	}
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for i := 0; i < 200; i++ {
			_ = ce.eng.RemainingBudget()
			_ = ce.eng.Summary()
			_ = ce.eng.CacheStats()
		}
	}()
	wg.Wait()
	<-readerDone
	close(errs)
	for err := range errs {
		t.Errorf("concurrent Process errored: %v", err)
	}
	if ds := ce.eng.Decisions(); len(ds) != workers*perWorker {
		t.Fatalf("recorded %d decisions, want %d", len(ds), workers*perWorker)
	}
	checkBudgetChain(t, ce)
	// The engine must accept a fresh cycle after the storm.
	if err := ce.eng.NewCycle(100); err != nil {
		t.Fatalf("NewCycle after chaos: %v", err)
	}
	if _, err := ce.eng.Process(core.Alert{Type: 0}); err != nil {
		t.Fatalf("Process in fresh cycle: %v", err)
	}
}
