package faultinject

import (
	"errors"
	"testing"
	"time"
)

func TestNilPointIsInert(t *testing.T) {
	var p *Point
	if err := p.fire(nil); err != nil {
		t.Fatalf("nil point fired: %v", err)
	}
	counts, calls := p.Counts()
	if calls != 0 || len(counts) != 0 {
		t.Fatalf("nil point counted: %v, %d", counts, calls)
	}
}

func TestZeroConfigNeverFires(t *testing.T) {
	p := New("quiet", Config{Seed: 1})
	for i := 0; i < 1000; i++ {
		if err := p.fire(nil); err != nil {
			t.Fatalf("call %d: zero-rate point fired: %v", i, err)
		}
	}
	counts, calls := p.Counts()
	if calls != 1000 {
		t.Fatalf("calls = %d, want 1000", calls)
	}
	for f, n := range counts {
		if n != 0 {
			t.Errorf("fault %v fired %d times with zero rates", f, n)
		}
	}
}

func TestDeterministicSchedule(t *testing.T) {
	cfg := Config{Seed: 7, ErrorRate: 0.3}
	a, b := New("a", cfg), New("b", cfg)
	for i := 0; i < 500; i++ {
		ea, eb := a.fire(nil), b.fire(nil)
		if (ea == nil) != (eb == nil) {
			t.Fatalf("call %d: schedules diverged (%v vs %v)", i, ea, eb)
		}
	}
	ca, _ := a.Counts()
	cb, _ := b.Counts()
	if ca[FaultError] != cb[FaultError] || ca[FaultError] == 0 {
		t.Fatalf("error counts diverged or zero: %d vs %d", ca[FaultError], cb[FaultError])
	}
}

func TestErrorsWrapSentinel(t *testing.T) {
	p := New("site", Config{Seed: 1, ErrorRate: 1})
	err := p.fire(nil)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("injected error %v does not wrap ErrInjected", err)
	}
}

func TestPanicCarriesSite(t *testing.T) {
	p := New("boom-site", Config{Seed: 1, PanicRate: 1})
	defer func() {
		r := recover()
		pv, ok := r.(*PanicValue)
		if !ok || pv.Site != "boom-site" {
			t.Fatalf("recovered %v, want *PanicValue for boom-site", r)
		}
	}()
	_ = p.fire(nil)
	t.Fatal("point with PanicRate 1 did not panic")
}

func TestLatencyObservesCancellation(t *testing.T) {
	p := New("slow", Config{Seed: 1, LatencyRate: 1, Latency: time.Minute})
	done := make(chan struct{})
	close(done)
	start := time.Now()
	if err := p.fire(done); err != nil {
		t.Fatalf("latency-only point errored: %v", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("canceled sleep still took %v", d)
	}
}

func TestFaultStrings(t *testing.T) {
	cases := map[Fault]string{
		FaultError:   "error",
		FaultLatency: "latency",
		FaultPanic:   "panic",
		Fault(9):     "Fault(9)",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("Fault(%d).String() = %q, want %q", int(f), got, want)
		}
	}
}
