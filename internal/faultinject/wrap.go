package faultinject

import (
	"context"
	"time"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/game"
)

// Estimator wraps est so every FutureRates call first passes through p:
// injected latency delays the call, injected panics propagate (the engine's
// fallback layer contains them), and injected errors preempt the underlying
// estimator. A nil p returns est unchanged.
func Estimator(p *Point, est core.Estimator) core.Estimator {
	if p == nil {
		return est
	}
	return core.EstimatorFunc(func(at time.Duration) ([]float64, error) {
		if err := p.fire(nil); err != nil {
			return nil, err
		}
		return est.FutureRates(at)
	})
}

// SSESolve wraps the engine's online SSE solver with p (nil solve means the
// default game.SolveOnlineSSECtx). Injected latency sleeps under the
// decision context, so with a DecisionDeadline it surfaces as a solver
// timeout — the exact production failure the deadline exists for. A nil p
// returns the solver unchanged.
func SSESolve(p *Point, solve core.SSESolveFunc) core.SSESolveFunc {
	if solve == nil {
		solve = game.SolveOnlineSSECtx
	}
	if p == nil {
		return solve
	}
	return func(ctx context.Context, inst *game.Instance, budget float64, futures []dist.Poisson) (*game.Result, error) {
		if err := p.fire(ctx.Done()); err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return solve(ctx, inst, budget, futures)
	}
}
