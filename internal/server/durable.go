package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/retain"
	"github.com/auditgames/sag/internal/shard"
	"github.com/auditgames/sag/internal/wal"
)

// MetricRecoveryReplayed gauges, per tenant, how many journal records boot
// recovery replayed on top of the restored snapshot.
const MetricRecoveryReplayed = "sag_recovery_replayed_records"

// DefaultSnapshotEvery is the automatic snapshot cadence (journal records
// between snapshots) when Config.SnapshotEvery is zero.
const DefaultSnapshotEvery = 4096

// estimator state snapshot seams: stateful estimators (the knowledge-
// rollback history estimator) opt in by implementing both; stateless ones
// need neither.
type stateMarshaler interface{ MarshalState() ([]byte, error) }
type stateUnmarshaler interface{ UnmarshalState([]byte) error }

// tenantSnapshot is the owner-encoded payload of a WAL snapshot record: the
// engine's full cycle state plus the HTTP layer's per-tenant state. JSON is
// used deliberately — Go's encoder round-trips float64 exactly — and the
// blob never crosses a version boundary unvalidated (decode errors fail
// recovery loudly rather than restoring a half-right tenant).
type tenantSnapshot struct {
	Engine    core.EngineState `json:"engine"`
	Estimator []byte           `json:"estimator,omitempty"`
	Accesses  int64            `json:"accesses"`
	Alerts    int64            `json:"alerts"`
	Warned    int64            `json:"warned"`
	Quits     int64            `json:"quits"`
	Flagged   []int            `json:"flagged,omitempty"`
	Closed    bool             `json:"closed"`
}

// durable reports whether the server was configured with a data directory.
func (s *Server) durable() bool { return s.cfg.DataDir != "" }

// tenantWALDir maps a tenant ID to its journal directory. The "t-" prefix
// is load-bearing: shard.ValidID admits IDs like ".." and "." (dots are
// legal ID characters), so raw IDs must never become path components.
func (s *Server) tenantWALDir(id string) string {
	return filepath.Join(s.cfg.DataDir, "tenants", "t-"+id)
}

// tenantOnDisk reports whether id has journal state under the data dir, so
// tenant resolution can distinguish "unloaded" from "unknown".
func (s *Server) tenantOnDisk(id string) bool {
	info, err := os.Stat(s.tenantWALDir(id))
	return err == nil && info.IsDir()
}

// openTenantJournal opens (and recovers) one tenant's journal and replays
// the recovered state onto t. Called from buildTenant after the engine is
// constructed but before the tenant serves its first request.
func (s *Server) openTenantJournal(t *tenantState) error {
	j, rec, err := wal.Open(s.tenantWALDir(t.id), wal.Options{
		Fsync:        s.cfg.Fsync,
		SegmentBytes: s.cfg.SegmentBytes,
		Metrics:      s.met.reg,
		Labels:       []obs.Label{obs.L("tenant", t.id)},
	})
	if err != nil {
		return fmt.Errorf("server: opening journal for tenant %q: %w", t.id, err)
	}
	if rec.Truncated {
		s.logf("server: tenant %s: truncated corrupt journal tail of %s at offset %d",
			t.id, rec.TruncatedSegment, rec.TruncatedOffset)
	}
	if err := s.replayTenant(t, rec); err != nil {
		_ = j.Close()
		return fmt.Errorf("server: recovering tenant %q: %w", t.id, err)
	}
	t.journal = j
	replayed := len(rec.Tail)
	s.met.reg.Gauge(MetricRecoveryReplayed,
		"Journal records replayed on top of the restored snapshot at boot.",
		obs.L("tenant", t.id)).Set(float64(replayed))
	if rec.Snapshot != nil || replayed > 0 {
		s.logf("server: tenant %s: recovered snapshot=%dB + %d replayed records (%d segments scanned)",
			t.id, len(rec.Snapshot), replayed, rec.Segments)
	}
	return nil
}

// replayTenant restores t from a journal recovery: first the snapshot (if
// any), then the tail records in journal order. Exactly one record was
// written per acknowledged request, so replay applies each record's full
// counter delta and never double-applies a half-recorded request.
func (s *Server) replayTenant(t *tenantState, rec *wal.Recovery) error {
	if rec.Snapshot != nil {
		if err := s.restoreSnapshot(t, rec.Snapshot); err != nil {
			return err
		}
	}
	for _, r := range rec.Tail {
		if err := s.applyRecord(t, r); err != nil {
			return err
		}
	}
	t.flaggedMu.RLock()
	flagged := len(t.flagged)
	t.flaggedMu.RUnlock()
	t.met.flagged.Set(float64(flagged))
	return nil
}

// restoreSnapshot decodes one snapshot blob onto t. The engine must be
// pristine (core.RestoreState enforces it): boot replay calls this before
// the tenant serves, and a follower only applies a snapshot as the very
// first record of a seed.
func (s *Server) restoreSnapshot(t *tenantState, blob []byte) error {
	var snap tenantSnapshot
	if err := json.Unmarshal(blob, &snap); err != nil {
		return fmt.Errorf("decoding snapshot: %w", err)
	}
	if snap.Estimator != nil {
		u, ok := t.est.(stateUnmarshaler)
		if !ok {
			return errors.New("snapshot carries estimator state but the estimator cannot restore it")
		}
		if err := u.UnmarshalState(snap.Estimator); err != nil {
			return err
		}
	}
	if err := t.engine.RestoreState(snap.Engine); err != nil {
		return err
	}
	t.accesses.Store(snap.Accesses)
	t.alerts.Store(snap.Alerts)
	t.warned.Store(snap.Warned)
	t.quits.Store(snap.Quits)
	t.flaggedMu.Lock()
	for _, emp := range snap.Flagged {
		t.flagged[emp] = true
	}
	t.met.flagged.Set(float64(len(t.flagged)))
	t.flaggedMu.Unlock()
	t.closed = snap.Closed
	return nil
}

// applyRecord replays one non-snapshot journal record onto t — shared by
// boot recovery and live follower apply, so both walk the identical state
// machine. Counter semantics mirror the handlers that wrote each record.
func (s *Server) applyRecord(t *tenantState, r wal.Record) error {
	switch r.Kind {
	case wal.KindDecision:
		// A decision record is one full acknowledged /v1/access request
		// of a gamed alert: one access, one alert, and the engine's
		// committed decision (recorded signal, recorded budget chain).
		if err := t.engine.ApplyDecision(r.Decision); err != nil {
			return err
		}
		t.accesses.Add(1)
		t.alerts.Add(1)
		if r.Decision.Warned {
			t.warned.Add(1)
		}
	case wal.KindMeta:
		// One acknowledged request that bypassed the engine.
		t.accesses.Add(1)
		if r.Meta.Alerted {
			t.alerts.Add(1)
		}
		if r.Meta.Warned {
			t.warned.Add(1)
		}
	case wal.KindQuit:
		t.flaggedMu.Lock()
		first := !t.flagged[r.Employee]
		if first {
			t.flagged[r.Employee] = true
			t.met.flagged.Set(float64(len(t.flagged)))
		}
		t.flaggedMu.Unlock()
		if first {
			t.quits.Add(1)
		}
	case wal.KindCycleOpen:
		if err := t.engine.NewCycle(r.Budget); err != nil {
			return err
		}
		t.closed = false
		t.accesses.Store(0)
		t.alerts.Store(0)
		t.warned.Store(0)
		t.quits.Store(0)
	case wal.KindCycleClose:
		t.closed = true
	default:
		return fmt.Errorf("unknown journal record kind %v", r.Kind)
	}
	return nil
}

// noteAppend accounts one journaled record toward the automatic snapshot
// cadence, kicking a background snapshot when the cadence is reached. Safe
// to call from the engine's journal hook (it only touches atomics and at
// most spawns one goroutine).
func (s *Server) noteAppend(t *tenantState) {
	t.lastAppend.Store(time.Now().UnixNano())
	if s.retain != nil {
		// Snapshot-now under pressure: a write burst meets compaction at the
		// kick (coalesced, debounced in the compactor), not at the next tick.
		s.retain.Kick()
	}
	every := s.cfg.SnapshotEvery
	if every <= 0 {
		every = DefaultSnapshotEvery
	}
	if t.walRecords.Add(1) < int64(every) {
		return
	}
	if !t.snapshotting.CompareAndSwap(false, true) {
		return
	}
	go func() {
		defer t.snapshotting.Store(false)
		if err := s.snapshotTenant(t); err != nil {
			s.logf("server: tenant %s: background snapshot: %v", t.id, err)
		}
	}()
}

// journalRecord appends one record for an acknowledged request and waits
// for it to reach the journal's durability level, answering the 500 itself
// on failure. Handlers call it on every state-changing path that bypasses
// the engine (the engine's own commits journal through the hook). Returns
// false when the response has already been written.
func (s *Server) journalRecord(w http.ResponseWriter, t *tenantState, r wal.Record) bool {
	if t.journal == nil {
		return true
	}
	err := s.fireJournalFault()
	var wait func() error
	if err == nil {
		wait, err = t.journal.Append(r)
	}
	if err == nil && wait != nil {
		err = wait()
	}
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "journal: " + err.Error()})
		return false
	}
	s.noteAppend(t)
	return true
}

// retainTarget adapts one tenant to the retention compactor's Tenant view.
// Every method tolerates the tenant's journal being nil (a follower before
// promotion) or sealed (eviction raced the scan) by reporting nothing to do.
type retainTarget struct {
	s *Server
	t *tenantState
}

func (rt retainTarget) RetainID() string { return rt.t.id }

func (rt retainTarget) RetainStats() (wal.RetainStats, bool) {
	j := rt.t.journal
	if j == nil {
		return wal.RetainStats{}, false
	}
	return j.RetainStats(), true
}

func (rt retainTarget) Prune() (int, int64, error) {
	j := rt.t.journal
	if j == nil {
		return 0, 0, nil
	}
	return j.Prune()
}

// Compact snapshots-then-prunes the tenant. TryLock is the "never while a
// cycle rollover holds the lifecycle write lock" rule: a rollover (or an
// in-flight snapshot, or eviction) owns the write side, and queueing behind
// it would stall the whole compaction round on one busy tenant — the
// compactor skips it and returns next round.
func (rt retainTarget) Compact() error {
	t := rt.t
	if !t.lifecycle.TryLock() {
		return retain.ErrBusy
	}
	defer t.lifecycle.Unlock()
	if t.sealed || t.journal == nil {
		return nil
	}
	return rt.s.snapshotTenantLocked(t)
}

func (rt retainTarget) LastAppend() time.Time {
	return time.Unix(0, rt.t.lastAppend.Load())
}

// listRetainTenants is the compactor's Config.List: the resident tenants as
// retention targets.
func (s *Server) listRetainTenants() []retain.Tenant {
	out := make([]retain.Tenant, 0, s.router.Len())
	s.router.Range(func(tn *shard.Tenant) bool {
		out = append(out, retainTarget{s: s, t: tn.Data.(*tenantState)})
		return true
	})
	return out
}

// exportTenant encodes t's full state. The caller holds t.lifecycle
// exclusively, so no decision is mid-commit and the engine export, the
// counters, and the journal position are mutually consistent.
func (s *Server) exportTenant(t *tenantState) ([]byte, error) {
	snap := tenantSnapshot{
		Engine:   t.engine.ExportState(),
		Accesses: t.accesses.Load(),
		Alerts:   t.alerts.Load(),
		Warned:   t.warned.Load(),
		Quits:    t.quits.Load(),
		Closed:   t.closed,
	}
	if m, ok := t.est.(stateMarshaler); ok {
		blob, err := m.MarshalState()
		if err != nil {
			return nil, fmt.Errorf("estimator state: %w", err)
		}
		snap.Estimator = blob
	}
	t.flaggedMu.RLock()
	for emp := range t.flagged {
		snap.Flagged = append(snap.Flagged, emp)
	}
	t.flaggedMu.RUnlock()
	sort.Ints(snap.Flagged)
	return json.Marshal(snap)
}

// snapshotTenant writes one tenant's full state as a journal snapshot
// record, fsyncs it, and prunes superseded segments. It takes the tenant's
// lifecycle write lock, so it drains in-flight decisions first — the
// snapshot can never miss a decision that was journaled before it.
func (s *Server) snapshotTenant(t *tenantState) error {
	if t.journal == nil {
		return errors.New("server: tenant has no journal")
	}
	s.lockLifecycleW(t)
	defer t.lifecycle.Unlock()
	if t.sealed {
		// Eviction won the race: the tenant's final state is already
		// snapshotted into the sealed journal, which is everything this
		// call exists to guarantee.
		return nil
	}
	return s.snapshotTenantLocked(t)
}

// snapshotTenantLocked is snapshotTenant for callers already holding the
// tenant's lifecycle write lock.
func (s *Server) snapshotTenantLocked(t *tenantState) error {
	blob, err := s.exportTenant(t)
	if err != nil {
		return err
	}
	if err := t.journal.Snapshot(blob); err != nil {
		return err
	}
	t.walRecords.Store(0)
	return nil
}

// SnapshotAll snapshots every resident tenant's state to its journal. The
// graceful-shutdown drain and the /v1/admin/snapshot endpoint call it; a
// no-op (nil) when durability is disabled. The first error is returned but
// every tenant is attempted.
func (s *Server) SnapshotAll() error {
	if !s.durable() {
		return nil
	}
	var first error
	s.router.Range(func(tn *shard.Tenant) bool {
		t := tn.Data.(*tenantState)
		if t.journal == nil {
			return true
		}
		if err := s.snapshotTenant(t); err != nil {
			s.logf("server: tenant %s: snapshot: %v", t.id, err)
			if first == nil {
				first = err
			}
		}
		return true
	})
	return first
}

// Close seals every tenant journal (snapshotting each first). Call it after
// the HTTP listener has stopped; it is what makes SIGTERM indistinguishable
// from a clean restart.
func (s *Server) Close() error {
	if s.retain != nil {
		// Stop the compactor before sealing journals so no compaction round
		// races the close-time snapshots.
		s.retain.Stop()
	}
	if !s.durable() {
		return nil
	}
	err := s.SnapshotAll()
	s.router.Range(func(tn *shard.Tenant) bool {
		t := tn.Data.(*tenantState)
		if t.journal != nil {
			if cerr := t.journal.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		return true
	})
	return err
}

// RemoveTenant evicts a resident tenant. With durability on, the shard
// router's OnEvict hook snapshots the tenant and seals its journal first,
// so the eviction is an unload — a later request for the ID rebuilds the
// tenant from its journal. Reports whether the tenant was resident.
func (s *Server) RemoveTenant(id string) bool {
	return s.router.Remove(id)
}

// evictTenant is the shard.Config.OnEvict hook: drain, snapshot, seal. It
// runs under the router's creation lock with the tenant already unlinked,
// so no new request can resolve it; the lifecycle write lock drains the
// ones already holding it, and the sealed flag (set under the same lock)
// diverts requests that resolved the holder before the unlink but have not
// locked it yet — they re-resolve and rebuild from the sealed journal
// instead of writing into it.
func (s *Server) evictTenant(tn *shard.Tenant) {
	t := tn.Data.(*tenantState)
	// Drop the tenant's admission gate (if idle) so the gate table tracks
	// the resident set; this must run even for non-durable tenants, which
	// return before the journal work below.
	if s.admit != nil {
		s.admit.Forget(t.id)
	}
	if s.retain != nil {
		// The evicted tenant no longer counts against the resident budget
		// (its journal directory persists, but restore-on-first-use re-adds
		// it); zero its gauges and lift any disk-pressure block.
		s.retain.Forget(t.id)
	}
	if t.journal == nil {
		return
	}
	s.lockLifecycleW(t)
	defer t.lifecycle.Unlock()
	if err := s.snapshotTenantLocked(t); err != nil {
		s.logf("server: tenant %s: eviction snapshot: %v", t.id, err)
	}
	if err := t.journal.Close(); err != nil {
		s.logf("server: tenant %s: sealing journal: %v", t.id, err)
	}
	t.sealed = true
}

// SnapshotRequest is the body of POST /v1/admin/snapshot. An empty tenant
// snapshots every resident tenant.
type SnapshotRequest struct {
	Tenant string `json:"tenant,omitempty"`
}

// SnapshotResponse reports what /v1/admin/snapshot persisted.
type SnapshotResponse struct {
	Tenants int `json:"tenants"`
}

// handleSnapshot is POST /v1/admin/snapshot: force a snapshot of one tenant
// (or all, when none is named) so an operator can bound replay length
// before a planned restart. 400 when the server runs without a data dir.
func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfFollowing(w) {
		return
	}
	if !s.durable() {
		writeJSON(w, http.StatusBadRequest,
			apiError{Error: "durability is disabled (server started without a data dir)"})
		return
	}
	// The body is optional (operators curl this with none); malformed JSON
	// is tolerated but an oversized body is a hard 413.
	var req SnapshotRequest
	if !s.decodeJSONLenient(w, r, &req) {
		return
	}
	id := req.Tenant
	if h := r.Header.Get(TenantHeader); h != "" {
		id = h
	}
	if id == "" {
		n := 0
		var first error
		s.router.Range(func(tn *shard.Tenant) bool {
			t := tn.Data.(*tenantState)
			if t.journal == nil {
				return true
			}
			if err := s.snapshotTenant(t); err != nil {
				if first == nil {
					first = err
				}
				return true
			}
			n++
			return true
		})
		if first != nil {
			writeJSON(w, http.StatusInternalServerError, apiError{Error: first.Error()})
			return
		}
		writeJSON(w, http.StatusOK, SnapshotResponse{Tenants: n})
		return
	}
	t := s.resolveTenant(w, id, false)
	if t == nil {
		return
	}
	if err := s.snapshotTenant(t); err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, SnapshotResponse{Tenants: 1})
}

// handleCycleSummary is GET /v1/cycle/summary: the tenant's aggregate view
// of the current cycle — the same summary the drain path logs — so restart
// drills can compare recovered state against a golden run byte for byte.
func (s *Server) handleCycleSummary(w http.ResponseWriter, r *http.Request) {
	t := s.resolveTenantLocked(w, s.tenantID(r, r.URL.Query().Get("tenant")), false, false)
	if t == nil {
		return
	}
	defer t.lifecycle.RUnlock()
	writeJSON(w, http.StatusOK, t.engine.Summary())
}

// logf writes a server log line via Config.Logf; silent when unset.
func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}
