package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestEvictionVsTrafficRace hammers a durable tenant with concurrent access
// traffic while another goroutine evicts it in a tight loop. The invariants:
// every request completes with a full 200 response (no partial engine is
// ever observable — eviction drains in-flight holders and later requests
// rebuild the tenant from its journal), and no acked commit is lost — the
// final /v1/status access counter equals the number of 200s, surviving a
// last restart on top of that.
func TestEvictionVsTrafficRace(t *testing.T) {
	dir := t.TempDir()
	srv, ts, bgE, bgP := durableFixture(t, dir, nil)

	const workers = 8
	const perWorker = 25
	var ok200 atomic.Int64
	var wg sync.WaitGroup
	body, err := json.Marshal(AccessRequest{EmployeeID: bgE, PatientID: bgP})
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, err := http.Post(ts.URL+"/v1/access", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errs <- &statusError{code: resp.StatusCode, body: string(raw)}
					return
				}
				var out AccessResponse
				decErr := json.Unmarshal(raw, &out)
				if decErr != nil {
					errs <- decErr // a torn body would mean a partially-built engine answered
					return
				}
				ok200.Add(1)
			}
		}()
	}

	stop := make(chan struct{})
	var evictions atomic.Int64
	var evictWG sync.WaitGroup
	evictWG.Add(1)
	go func() {
		defer evictWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if srv.RemoveTenant(DefaultTenantID) {
				evictions.Add(1)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	wg.Wait()
	close(stop)
	evictWG.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("worker: %v", err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if evictions.Load() == 0 {
		t.Fatal("the eviction loop never won the race; the test exercised nothing")
	}

	var st Status
	if code := get(t, ts, "/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status after race: %d", code)
	}
	if int64(st.Accesses) != ok200.Load() {
		t.Fatalf("tenant counted %d accesses, but %d were acked with 200 (evictions: %d)",
			st.Accesses, ok200.Load(), evictions.Load())
	}

	// A fresh process over the same dir must agree: every acked access was
	// journaled before its 200 left the building. Seal the first server's
	// journal before the second one opens it.
	if !srv.RemoveTenant(DefaultTenantID) {
		t.Fatal("tenant not resident after status read")
	}
	_, ts2, _, _ := durableFixture(t, dir, nil)
	var st2 Status
	if code := get(t, ts2, "/v1/status", &st2); code != http.StatusOK {
		t.Fatalf("status after restart: %d", code)
	}
	if st2.Accesses != st.Accesses {
		t.Fatalf("restart lost acked accesses: %d on disk, %d acked", st2.Accesses, st.Accesses)
	}
}

type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string { return http.StatusText(e.code) + ": " + e.body }
