package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/sim"
)

// gatedSolver is an SSESolveFunc wrapper that parks every solve until
// release is closed, signaling each entry on entered. It lets tests prove
// that two HTTP decisions are inside the solver at the same time — the
// tentpole property the old global server lock made impossible.
type gatedSolver struct {
	entered chan struct{}
	release chan struct{}
	calls   atomic.Int32
}

func newGatedSolver() *gatedSolver {
	return &gatedSolver{
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (b *gatedSolver) solve(ctx context.Context, inst *game.Instance, budget float64, futures []dist.Poisson) (*game.Result, error) {
	b.calls.Add(1)
	b.entered <- struct{}{}
	select {
	case <-b.release:
	case <-time.After(10 * time.Second):
		return nil, errors.New("gatedSolver: never released")
	}
	return game.SolveOnlineSSECtx(ctx, inst, budget, futures)
}

// fixtureWith builds the standard test server, letting the caller mutate the
// Config (inject a solver, enable the cache) before construction. The
// returned IDs are the type-1 (same last name) planted pair; the type-2
// (coworker) pair is at (bgE+3, bgP+3) — PairsPerKind pairs are planted per
// kind, in kind order.
func fixtureWith(t *testing.T, mutate func(*Config)) (*Server, *httptest.Server, int, int) {
	t.Helper()
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 5, Employees: 30, Patients: 100, Departments: 4})
	if err != nil {
		t.Fatal(err)
	}
	bgE, bgP := world.NumEmployees(), world.NumPatients()
	if _, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: 5, PairsPerKind: 3, BackgroundPerDay: 1}); err != nil {
		t.Fatal(err)
	}
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		World:    world,
		Taxonomy: alerts.NewTable1Taxonomy(),
		TypeIDs:  sim.AllTable1TypeIDs(),
		Instance: inst,
		Budget:   50,
		Estimator: core.EstimatorFunc(func(time.Duration) ([]float64, error) {
			return []float64{196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27}, nil
		}),
		Seed:  1,
		Clock: func() time.Duration { return 9 * time.Hour },
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, bgE, bgP
}

// TestConcurrentAccessSolvesOverlap is the regression test for the global
// server lock: two slow /v1/access solves of different alert types must be
// inside the SSE solver simultaneously. Under the old handler — which held
// s.mu across the whole decision — the second request could not reach the
// solver until the first returned, and this test times out at the barrier.
func TestConcurrentAccessSolvesOverlap(t *testing.T) {
	bs := newGatedSolver()
	_, ts, bgE, bgP := fixtureWith(t, func(cfg *Config) { cfg.SSESolve = bs.solve })

	var wg sync.WaitGroup
	type result struct {
		resp AccessResponse
		code int
	}
	results := make(chan result, 2)
	for _, pair := range [][2]int{{bgE, bgP}, {bgE + 3, bgP + 3}} { // type 1 and type 2: distinct state keys
		wg.Add(1)
		go func(emp, pat int) {
			defer wg.Done()
			var resp AccessResponse
			code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: emp, PatientID: pat}, &resp)
			results <- result{resp, code}
		}(pair[0], pair[1])
	}
	for i := 0; i < 2; i++ {
		select {
		case <-bs.entered:
		case <-time.After(5 * time.Second):
			t.Fatal("second /v1/access never reached the solver: the serving path is serialized")
		}
	}
	close(bs.release)
	wg.Wait()
	close(results)
	for r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("access status %d", r.code)
		}
		if !r.resp.Alert {
			t.Fatalf("planted pair did not alert: %+v", r.resp)
		}
		if r.resp.Fallback != "" {
			t.Fatalf("decision degraded (%s): the solver barrier timed out", r.resp.Fallback)
		}
	}
}

// TestBurstOfIdenticalAlertsCoalesces: while one solve for a state is in
// flight, an identical request (same type, same quantized budget/rates)
// waits for that solve instead of running its own — one LP pipeline for the
// whole burst — and the coalescing is visible in the metrics.
func TestBurstOfIdenticalAlertsCoalesces(t *testing.T) {
	bs := newGatedSolver()
	_, ts, bgE, bgP := fixtureWith(t, func(cfg *Config) {
		cfg.SSESolve = bs.solve
		cfg.Cache = core.CacheConfig{Size: 32, BudgetQuantum: 1000, RateQuantum: 1}
	})

	var wg sync.WaitGroup
	codes := make(chan int, 2)
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			codes <- post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
		}()
	}
	launch()
	select {
	case <-bs.entered: // leader inside the solver
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached the solver")
	}
	launch()
	time.Sleep(100 * time.Millisecond) // follower joins the in-flight solve
	close(bs.release)
	wg.Wait()
	close(codes)
	for code := range codes {
		if code != http.StatusOK {
			t.Fatalf("access status %d", code)
		}
	}
	if got := bs.calls.Load(); got != 1 {
		t.Fatalf("solver ran %d times for an identical burst, want 1", got)
	}

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), core.MetricCoalescedSolvesTotal+`{tenant="default"} 1`) {
		t.Fatalf("coalesced-solve counter not exported:\n%s", body)
	}
}

// TestCloseCycleGuard: the cycle can be closed once. A second close — which
// would re-sample the audit plan and re-charge its total — answers 409, as
// does /v1/access, until /v1/cycle/new reopens the server.
func TestCloseCycleGuard(t *testing.T) {
	_, ts, bgE, bgP := fixture(t)
	for i := 0; i < 5; i++ {
		if code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusOK {
			t.Fatalf("access status %d", code)
		}
	}
	var first CloseResponse
	if code := post(t, ts, "/v1/cycle/close", struct{}{}, &first); code != http.StatusOK {
		t.Fatalf("first close status %d", code)
	}
	if code := post(t, ts, "/v1/cycle/close", struct{}{}, nil); code != http.StatusConflict {
		t.Fatalf("second close status %d, want 409", code)
	}
	if code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusConflict {
		t.Fatalf("access after close status %d, want 409", code)
	}
	var st Status
	get(t, ts, "/v1/status", &st)
	if !st.Closed {
		t.Fatalf("status does not report the closed cycle: %+v", st)
	}
	if st.Accesses != 5 {
		t.Fatalf("rejected access inflated the counter: %+v", st)
	}
	if code := post(t, ts, "/v1/cycle/new", NewCycleRequest{Budget: 40}, nil); code != http.StatusOK {
		t.Fatalf("new cycle status %d", code)
	}
	get(t, ts, "/v1/status", &st)
	if st.Closed {
		t.Fatalf("new cycle did not reopen: %+v", st)
	}
	if code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusOK {
		t.Fatalf("access after reopen status %d", code)
	}
	if code := post(t, ts, "/v1/cycle/close", struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("close of the new cycle status %d", code)
	}
}

// TestQuitIsIdempotent: repeated quit reports for one employee re-confirm
// the flag but must not inflate the quit counter — front ends retry.
func TestQuitIsIdempotent(t *testing.T) {
	_, ts, bgE, _ := fixture(t)
	for i := 0; i < 3; i++ {
		var out struct {
			Flagged bool `json:"flagged"`
		}
		if code := post(t, ts, "/v1/quit", QuitRequest{EmployeeID: bgE}, &out); code != http.StatusOK || !out.Flagged {
			t.Fatalf("quit %d: status %d flagged %v", i, code, out.Flagged)
		}
	}
	var st Status
	get(t, ts, "/v1/status", &st)
	if st.Quits != 1 || st.FlaggedUsers != 1 {
		t.Fatalf("repeated quits inflated counters: %+v", st)
	}
}
