package server

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/sim"
	"github.com/auditgames/sag/internal/wal"
)

// replicaFixture is durableFixture with a config hook, so replication tests
// can set FollowPrimary, SegmentBytes, and FollowerReadyLag while keeping the
// exact same world and engine seeds on both sides of the stream.
func replicaFixture(t *testing.T, dir string, logs *logBuf, mod func(*Config)) (*Server, *httptest.Server, int, int) {
	t.Helper()
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 5, Employees: 30, Patients: 100, Departments: 4})
	if err != nil {
		t.Fatal(err)
	}
	bgE, bgP := world.NumEmployees(), world.NumPatients()
	if _, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: 5, PairsPerKind: 3, BackgroundPerDay: 1}); err != nil {
		t.Fatal(err)
	}
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		World:    world,
		Taxonomy: alerts.NewTable1Taxonomy(),
		TypeIDs:  sim.AllTable1TypeIDs(),
		Instance: inst,
		Budget:   50,
		Estimator: core.EstimatorFunc(func(time.Duration) ([]float64, error) {
			return []float64{196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27}, nil
		}),
		Seed:    1,
		Clock:   func() time.Duration { return 9 * time.Hour },
		DataDir: dir,
		Fsync:   wal.FsyncAlways,
	}
	if logs != nil {
		cfg.Logf = logs.logf
	}
	if mod != nil {
		mod(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, bgE, bgP
}

// startFollower builds a follower over dir replicating from primaryURL and
// starts its replication clients.
func startFollower(t *testing.T, dir, primaryURL string, logs *logBuf, readyLag int) (*Server, *httptest.Server) {
	t.Helper()
	srv, ts, _, _ := replicaFixture(t, dir, logs, func(cfg *Config) {
		cfg.FollowPrimary = primaryURL
		cfg.FollowerReadyLag = readyLag
	})
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := srv.StartFollowing(ctx); err != nil {
		t.Fatalf("StartFollowing: %v", err)
	}
	return srv, ts
}

type readyzBody struct {
	Status     string `json:"status"`
	LagRecords int64  `json:"lag_records"`
}

// waitFollowerReady polls the follower's /v1/readyz until it answers 200,
// asserting the body advertises the following state along the way.
func waitFollowerReady(t *testing.T, ts *httptest.Server) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	var lastCode int
	var lastBody string
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/readyz")
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		lastCode, lastBody = resp.StatusCode, string(raw)
		var body readyzBody
		if err := json.Unmarshal(raw, &body); err != nil {
			t.Fatalf("readyz body %q: %v", raw, err)
		}
		if body.Status != "following" {
			t.Fatalf("readyz status %q, want \"following\": %s", body.Status, raw)
		}
		if resp.StatusCode == http.StatusOK {
			if body.LagRecords != 0 {
				t.Fatalf("ready follower reports lag %d: %s", body.LagRecords, raw)
			}
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("follower never became ready (last: %d %s)", lastCode, lastBody)
}

// postRaw posts a JSON body and returns the raw response for byte compares.
func postRaw(t *testing.T, ts *httptest.Server, path string, body any) (int, string, http.Header) {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw), resp.Header
}

// tenantSegRange reads the min and max WAL segment numbers of the default
// tenant under a data dir.
func tenantSegRange(t *testing.T, dir string) (lo, hi int) {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "tenants", "t-"+DefaultTenantID))
	if err != nil {
		t.Fatalf("listing segments: %v", err)
	}
	lo = -1
	for _, e := range entries {
		name, ok := strings.CutPrefix(e.Name(), "wal-")
		if !ok {
			continue
		}
		name, ok = strings.CutSuffix(name, ".sagw")
		if !ok {
			continue
		}
		n, err := strconv.Atoi(name)
		if err != nil {
			continue
		}
		if lo == -1 || n < lo {
			lo = n
		}
		if n > hi {
			hi = n
		}
	}
	if lo == -1 {
		t.Fatalf("no segments under %s", dir)
	}
	return lo, hi
}

// TestFollowerCatchUpGateAndPromote is the in-process version of the failover
// drill's happy path: a follower discovers the primary's tenant, catches up
// to zero lag, rejects mutations with 503 + Retry-After while standing by,
// and after promotion serves mutations over state byte-identical to the
// primary's.
func TestFollowerCatchUpGateAndPromote(t *testing.T) {
	primDir, folDir := t.TempDir(), t.TempDir()
	_, prim, bgE, bgP := replicaFixture(t, primDir, nil, nil)
	for i := 0; i < 6; i++ {
		if code := post(t, prim, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusOK {
			t.Fatalf("primary access status %d", code)
		}
	}
	post(t, prim, "/v1/access", AccessRequest{EmployeeID: 0, PatientID: 0}, nil)
	if code := post(t, prim, "/v1/quit", QuitRequest{EmployeeID: bgE + 1}, nil); code != http.StatusOK {
		t.Fatalf("primary quit status %d", code)
	}

	folSrv, fol := startFollower(t, folDir, prim.URL, nil, 0)
	waitFollowerReady(t, fol)

	// Reads serve the replicated state: the cycle summary is byte-identical.
	code, wantSummary := getRaw(t, prim, "/v1/cycle/summary")
	if code != http.StatusOK {
		t.Fatalf("primary summary status %d", code)
	}
	code, gotSummary := getRaw(t, fol, "/v1/cycle/summary")
	if code != http.StatusOK {
		t.Fatalf("follower summary status %d", code)
	}
	if gotSummary != wantSummary {
		t.Fatalf("follower summary diverged:\nprimary:  %s\nfollower: %s", wantSummary, gotSummary)
	}

	// Mutations are gated with 503 + Retry-After until promotion.
	for _, path := range []string{"/v1/access", "/v1/quit", "/v1/cycle/close", "/v1/cycle/new"} {
		code, body, hdr := postRaw(t, fol, path, AccessRequest{EmployeeID: bgE, PatientID: bgP})
		if code != http.StatusServiceUnavailable {
			t.Fatalf("%s on follower: status %d body %s, want 503", path, code, body)
		}
		if hdr.Get("Retry-After") == "" {
			t.Fatalf("%s on follower: 503 without Retry-After", path)
		}
		if !strings.Contains(body, "promote") {
			t.Fatalf("%s on follower: body %q does not point at promotion", path, body)
		}
	}
	// A follower cannot feed another follower.
	code, body := getRaw(t, fol, "/v1/replicate?tenant="+DefaultTenantID)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("replicate from follower: status %d body %s, want 503", code, body)
	}

	var promoted struct {
		Promoted int `json:"promoted"`
	}
	if code := post(t, fol, "/v1/admin/promote", struct{}{}, &promoted); code != http.StatusOK {
		t.Fatalf("promote status %d", code)
	}
	if promoted.Promoted != 1 {
		t.Fatalf("promoted %d tenants, want 1", promoted.Promoted)
	}
	if code := post(t, fol, "/v1/admin/promote", struct{}{}, nil); code != http.StatusConflict {
		t.Fatalf("second promote status %d, want 409", code)
	}

	// The promoted standby closes the cycle bit-identically to the primary —
	// same engine state, same deterministic signal draws.
	code, wantClose, _ := postRaw(t, prim, "/v1/cycle/close", struct{}{})
	if code != http.StatusOK {
		t.Fatalf("primary close status %d", code)
	}
	code, gotClose, _ := postRaw(t, fol, "/v1/cycle/close", struct{}{})
	if code != http.StatusOK {
		t.Fatalf("promoted close status %d", code)
	}
	if gotClose != wantClose {
		t.Fatalf("promoted cycle close diverged:\nprimary:  %s\npromoted: %s", wantClose, gotClose)
	}

	// Mutations land in the promoted standby's own journal.
	if code := post(t, fol, "/v1/cycle/new", struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("post-promotion cycle/new status %d", code)
	}
	var acc AccessResponse
	if code := post(t, fol, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, &acc); code != http.StatusOK {
		t.Fatalf("post-promotion access status %d", code)
	}
	if got := folSrv.Tenants(); len(got) != 1 {
		t.Fatalf("promoted server tenants %v", got)
	}
	var ready struct {
		Status string `json:"status"`
	}
	if code := get(t, fol, "/v1/readyz", &ready); code != http.StatusOK || ready.Status != "ready" {
		t.Fatalf("promoted readyz %d %+v, want 200 ready", code, ready)
	}
}

// TestFollowerReseedAfterGappedCursor deliberately invalidates a follower's
// resume cursor — the primary snapshots and prunes past it while the
// follower is offline — and requires the restarted follower to re-seed from
// the primary's snapshot rather than diverge or stall (the ISSUE's
// acceptance scenario).
func TestFollowerReseedAfterGappedCursor(t *testing.T) {
	primDir, folDir := t.TempDir(), t.TempDir()
	_, prim, bgE, bgP := replicaFixture(t, primDir, nil, func(cfg *Config) {
		cfg.SegmentBytes = 256 // roll fast so snapshots prune quickly
	})
	for i := 0; i < 3; i++ {
		if code := post(t, prim, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusOK {
			t.Fatalf("primary access status %d", code)
		}
	}

	// First follower incarnation catches up, then goes offline (its
	// replication context is canceled, modelling a crash).
	logs1 := &logBuf{}
	folSrv1, folTS1, _, _ := replicaFixture(t, folDir, logs1, func(cfg *Config) {
		cfg.FollowPrimary = prim.URL
	})
	ctx1, cancel1 := context.WithCancel(context.Background())
	if err := folSrv1.StartFollowing(ctx1); err != nil {
		t.Fatalf("StartFollowing: %v", err)
	}
	waitFollowerReady(t, folTS1)
	cancel1()
	if fc := folSrv1.follow.Load(); fc != nil {
		fc.stop() // wait: a still-draining client must not mirror the pruning below
	}
	folTS1.Close()
	_, folMax := tenantSegRange(t, folDir)

	// While the follower is down, the primary advances past snapshot
	// pruning: every segment the follower mirrored disappears.
	for i := 0; i < 40; i++ {
		if code := post(t, prim, "/v1/admin/snapshot", struct{}{}, nil); code != http.StatusOK {
			t.Fatalf("snapshot %d status %d", i, code)
		}
		if lo, _ := tenantSegRange(t, primDir); lo > folMax {
			break
		}
	}
	if lo, _ := tenantSegRange(t, primDir); lo <= folMax {
		t.Fatalf("primary min segment %d never pruned past follower max %d", lo, folMax)
	}
	if code := post(t, prim, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusOK {
		t.Fatal("post-prune access failed")
	}

	// Second incarnation over the same dir: its recovered cursor is gapped,
	// the primary demands a re-seed, and catch-up completes anyway.
	logs2 := &logBuf{}
	_, fol2 := startFollower(t, folDir, prim.URL, logs2, 0)
	waitFollowerReady(t, fol2)
	if !logs2.contains("re-seed") {
		t.Fatalf("follower caught up without a re-seed; logs: %v", logs2.lines)
	}
	if lo, _ := tenantSegRange(t, folDir); lo <= folMax {
		t.Fatalf("re-seeded follower min segment %d did not advance past stale max %d", lo, folMax)
	}
	code, wantSummary := getRaw(t, prim, "/v1/cycle/summary")
	if code != http.StatusOK {
		t.Fatalf("primary summary status %d", code)
	}
	code, gotSummary := getRaw(t, fol2, "/v1/cycle/summary")
	if code != http.StatusOK {
		t.Fatalf("follower summary status %d", code)
	}
	if gotSummary != wantSummary {
		t.Fatalf("re-seeded follower summary diverged:\nprimary:  %s\nfollower: %s", wantSummary, gotSummary)
	}
}

// TestFollowerRequiresDataDir pins the config contract: following without
// durability is a construction-time error, not a silent no-op.
func TestFollowerRequiresDataDir(t *testing.T) {
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 5, Employees: 30, Patients: 100, Departments: 4})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{
		World:    world,
		Taxonomy: alerts.NewTable1Taxonomy(),
		TypeIDs:  sim.AllTable1TypeIDs(),
		Instance: inst,
		Budget:   50,
		Estimator: core.EstimatorFunc(func(time.Duration) ([]float64, error) {
			return []float64{1, 1, 1, 1, 1, 1, 1}, nil
		}),
		FollowPrimary: "http://127.0.0.1:1",
	})
	if err == nil || !strings.Contains(err.Error(), "data dir") {
		t.Fatalf("New without DataDir but with FollowPrimary: err %v", err)
	}
}
