package server

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/sim"
	"github.com/auditgames/sag/internal/wal"
)

// logBuf collects Logf lines from the server under test (background
// snapshots may log concurrently with the test goroutine).
type logBuf struct {
	mu    sync.Mutex
	lines []string
}

func (l *logBuf) logf(format string, args ...any) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.lines = append(l.lines, fmt.Sprintf(format, args...))
}

func (l *logBuf) contains(sub string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	for _, ln := range l.lines {
		if strings.Contains(ln, sub) {
			return true
		}
	}
	return false
}

// durableFixture is fixture with durability on: same world, same seeds, but
// every tenant journals to dir. Building a second fixture over the same dir
// models a process restart.
func durableFixture(t *testing.T, dir string, logs *logBuf) (*Server, *httptest.Server, int, int) {
	t.Helper()
	return replicaFixture(t, dir, logs, nil)
}

// getRaw fetches a path and returns the raw body for byte-level comparison.
func getRaw(t *testing.T, ts *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(raw)
}

// TestDurableCleanRestartRestoresState drives traffic through the whole API
// surface, shuts the server down cleanly, boots a second server over the
// same data dir, and requires the recovered /v1/status and /v1/cycle/summary
// to match the pre-shutdown ones byte for byte.
func TestDurableCleanRestartRestoresState(t *testing.T) {
	dir := t.TempDir()
	srv, ts, bgE, bgP := durableFixture(t, dir, nil)
	for i := 0; i < 15; i++ {
		if code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusOK {
			t.Fatalf("access status %d", code)
		}
	}
	post(t, ts, "/v1/access", AccessRequest{EmployeeID: 0, PatientID: 0}, nil) // benign
	if code := post(t, ts, "/v1/quit", QuitRequest{EmployeeID: bgE + 1}, nil); code != http.StatusOK {
		t.Fatalf("quit status %d", code)
	}
	_, wantStatus := getRaw(t, ts, "/v1/status")
	_, wantSummary := getRaw(t, ts, "/v1/cycle/summary")
	if err := srv.Close(); err != nil {
		t.Fatalf("clean shutdown: %v", err)
	}

	logs := &logBuf{}
	_, ts2, _, _ := durableFixture(t, dir, logs)
	if code, got := getRaw(t, ts2, "/v1/status"); code != http.StatusOK || got != wantStatus {
		t.Fatalf("recovered status diverged:\n got %s\nwant %s", got, wantStatus)
	}
	if _, got := getRaw(t, ts2, "/v1/cycle/summary"); got != wantSummary {
		t.Fatalf("recovered summary diverged:\n got %s\nwant %s", got, wantSummary)
	}
	if !logs.contains("recovered snapshot") {
		t.Fatalf("no recovery banner logged: %v", logs.lines)
	}
	// The recovered tenant keeps serving: budget keeps descending from the
	// recovered point, and the flag set survived.
	var before, after Status
	get(t, ts2, "/v1/status", &before)
	if before.FlaggedUsers != 1 || before.Quits != 1 {
		t.Fatalf("flag set lost in recovery: %+v", before)
	}
	for i := 0; i < 5; i++ {
		post(t, ts2, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
	}
	get(t, ts2, "/v1/status", &after)
	if after.Accesses != before.Accesses+5 || after.RemainingBudget > before.RemainingBudget {
		t.Fatalf("recovered tenant not live: before %+v after %+v", before, after)
	}
}

// TestDurableCrashRestartReplaysJournal models kill -9: the first server is
// abandoned without Close (no shutdown snapshot), so the second boot must
// rebuild the tenant purely by replaying decision records — and end up in
// the identical state.
func TestDurableCrashRestartReplaysJournal(t *testing.T) {
	dir := t.TempDir()
	_, ts, bgE, bgP := durableFixture(t, dir, nil)
	var last AccessResponse
	for i := 0; i < 12; i++ {
		post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, &last)
	}
	post(t, ts, "/v1/quit", QuitRequest{EmployeeID: bgE}, nil)
	_, wantStatus := getRaw(t, ts, "/v1/status")
	_, wantSummary := getRaw(t, ts, "/v1/cycle/summary")
	// No Close: every acknowledged request was fsynced (FsyncAlways), and
	// nothing else is durable.

	logs := &logBuf{}
	_, ts2, _, _ := durableFixture(t, dir, logs)
	if _, got := getRaw(t, ts2, "/v1/status"); got != wantStatus {
		t.Fatalf("replayed status diverged:\n got %s\nwant %s", got, wantStatus)
	}
	if _, got := getRaw(t, ts2, "/v1/cycle/summary"); got != wantSummary {
		t.Fatalf("replayed summary diverged:\n got %s\nwant %s", got, wantSummary)
	}
	// A flagged employee keeps being flagged on the recovered server.
	var resp AccessResponse
	post(t, ts2, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, &resp)
	if !resp.Flagged || !resp.Warn {
		t.Fatalf("flag lost across crash: %+v", resp)
	}
}

// TestDurableCycleLifecycleSurvivesCrash closes a cycle, opens a new one,
// adds traffic, crashes, and checks the recovered tenant is mid-way through
// the NEW cycle — not the old one.
func TestDurableCycleLifecycleSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	_, ts, bgE, bgP := durableFixture(t, dir, nil)
	for i := 0; i < 8; i++ {
		post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
	}
	if code := post(t, ts, "/v1/cycle/close", struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("close status %d", code)
	}
	if code := post(t, ts, "/v1/cycle/new", NewCycleRequest{Budget: 30}, nil); code != http.StatusOK {
		t.Fatalf("new cycle status %d", code)
	}
	for i := 0; i < 3; i++ {
		post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
	}
	_, wantStatus := getRaw(t, ts, "/v1/status")

	_, ts2, _, _ := durableFixture(t, dir, nil)
	var st Status
	if _, got := getRaw(t, ts2, "/v1/status"); got != wantStatus {
		t.Fatalf("recovered status diverged:\n got %s\nwant %s", got, wantStatus)
	}
	get(t, ts2, "/v1/status", &st)
	if st.Budget != 30 || st.Accesses != 3 {
		t.Fatalf("recovered into the wrong cycle: %+v", st)
	}
	// The closed-cycle marker must not have leaked into the new cycle: the
	// recovered server accepts a close of the new cycle.
	var closed CloseResponse
	if code := post(t, ts2, "/v1/cycle/close", struct{}{}, &closed); code != http.StatusOK {
		t.Fatalf("close after recovery status %d", code)
	}
	if len(closed.Audits) != 3 {
		t.Fatalf("close after recovery covers %d alerts, want 3", len(closed.Audits))
	}
}

// TestDurableTornTailBootsWithTruncation cuts bytes off the journal tail
// (the torn final write of a crash) and requires the next boot to truncate,
// log the offset, and serve the surviving prefix.
func TestDurableTornTailBootsWithTruncation(t *testing.T) {
	dir := t.TempDir()
	srv, ts, bgE, bgP := durableFixture(t, dir, nil)
	for i := 0; i < 6; i++ {
		post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the shutdown snapshot record off the sealed segment: recovery
	// must fall back to replaying the six decision records before it.
	tdir := filepath.Join(dir, "tenants", "t-"+DefaultTenantID)
	segs, err := filepath.Glob(filepath.Join(tdir, "wal-*.sagw"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", tdir, err)
	}
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-3); err != nil {
		t.Fatal(err)
	}

	logs := &logBuf{}
	_, ts2, _, _ := durableFixture(t, dir, logs)
	if !logs.contains("truncated corrupt journal tail") {
		t.Fatalf("truncation not logged: %v", logs.lines)
	}
	var st Status
	if code := get(t, ts2, "/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status after torn-tail boot: %d", code)
	}
	if st.Accesses != 6 || st.Alerts != 6 {
		t.Fatalf("torn-tail boot lost acknowledged records: %+v", st)
	}
}

// TestDurableEvictionIsUnloadNotLoss evicts a tenant with live state and
// checks that (a) the eviction is counted and logged, and (b) the next
// request for the same ID rebuilds the tenant from its journal with nothing
// lost.
func TestDurableEvictionIsUnloadNotLoss(t *testing.T) {
	dir := t.TempDir()
	logs := &logBuf{}
	srv, ts, bgE, bgP := durableFixture(t, dir, logs)
	for i := 0; i < 9; i++ {
		post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
	}
	post(t, ts, "/v1/quit", QuitRequest{EmployeeID: bgE}, nil)
	_, wantStatus := getRaw(t, ts, "/v1/status")

	if !srv.RemoveTenant(DefaultTenantID) {
		t.Fatal("default tenant not resident")
	}
	if !logs.contains("evicted tenant " + DefaultTenantID) {
		t.Fatalf("eviction not logged: %v", logs.lines)
	}
	_, metrics := getRaw(t, ts, "/v1/metrics")
	if !strings.Contains(metrics, "sag_shard_evictions_total 1") {
		t.Fatal("sag_shard_evictions_total not incremented")
	}

	// Next touch re-creates the tenant — from its journal, not from zero.
	if code, got := getRaw(t, ts, "/v1/status"); code != http.StatusOK || got != wantStatus {
		t.Fatalf("re-created tenant diverged:\n got %s\nwant %s", got, wantStatus)
	}
}

// TestDurableSnapshotEndpoint covers /v1/admin/snapshot: all tenants, one
// tenant by header, unknown tenant, and the 400 when durability is off.
func TestDurableSnapshotEndpoint(t *testing.T) {
	dir := t.TempDir()
	_, ts, bgE, bgP := durableFixture(t, dir, nil)
	post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
	postTenant(t, ts, "acme", "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)

	var snap SnapshotResponse
	if code := post(t, ts, "/v1/admin/snapshot", SnapshotRequest{}, &snap); code != http.StatusOK {
		t.Fatalf("snapshot-all status %d", code)
	}
	if snap.Tenants != 2 {
		t.Fatalf("snapshotted %d tenants, want 2", snap.Tenants)
	}
	if code := postTenant(t, ts, "acme", "/v1/admin/snapshot", SnapshotRequest{}, &snap); code != http.StatusOK || snap.Tenants != 1 {
		t.Fatalf("single-tenant snapshot: code %d, %+v", code, snap)
	}
	var apiErr apiError
	if code := postTenant(t, ts, "ghost", "/v1/admin/snapshot", SnapshotRequest{}, &apiErr); code != http.StatusNotFound {
		t.Fatalf("unknown tenant snapshot status %d", code)
	}

	// A forced snapshot bounds replay: a crash right after it recovers from
	// the snapshot alone (zero replayed records).
	logs := &logBuf{}
	_, ts2, _, _ := durableFixture(t, dir, logs)
	var st Status
	get(t, ts2, "/v1/status", &st)
	if st.Accesses != 1 {
		t.Fatalf("snapshot-recovered status %+v", st)
	}
	if !logs.contains("+ 0 replayed records") {
		t.Fatalf("expected snapshot-only recovery, logs: %v", logs.lines)
	}

	// Durability off: the endpoint must refuse rather than pretend.
	_, plain, _, _ := fixture(t)
	if code := post(t, plain, "/v1/admin/snapshot", SnapshotRequest{}, &apiErr); code != http.StatusBadRequest {
		t.Fatalf("snapshot without data dir status %d", code)
	}
	if !strings.Contains(apiErr.Error, "durability is disabled") {
		t.Fatalf("unhelpful error: %+v", apiErr)
	}
}

// TestDurablePerTenantIsolation checks that two tenants journal and recover
// independently — tenant A's records never leak into tenant B.
func TestDurablePerTenantIsolation(t *testing.T) {
	dir := t.TempDir()
	_, ts, bgE, bgP := durableFixture(t, dir, nil)
	for i := 0; i < 4; i++ {
		postTenant(t, ts, "alpha", "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
	}
	for i := 0; i < 7; i++ {
		postTenant(t, ts, "beta", "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
	}
	_, wantAlpha := getRaw(t, ts, "/v1/status?tenant=alpha")
	_, wantBeta := getRaw(t, ts, "/v1/status?tenant=beta")

	_, ts2, _, _ := durableFixture(t, dir, nil)
	// Restore is lazy (first touch), so warm both tenants before comparing:
	// active_tenants counts resident tenants, which grows as each journal is
	// restored.
	getRaw(t, ts2, "/v1/status?tenant=alpha")
	getRaw(t, ts2, "/v1/status?tenant=beta")
	if _, got := getRaw(t, ts2, "/v1/status?tenant=alpha"); got != wantAlpha {
		t.Fatalf("alpha diverged:\n got %s\nwant %s", got, wantAlpha)
	}
	if _, got := getRaw(t, ts2, "/v1/status?tenant=beta"); got != wantBeta {
		t.Fatalf("beta diverged:\n got %s\nwant %s", got, wantBeta)
	}
}

// TestCycleSummaryEndpoint pins the read-only summary route used by the
// crash drill: wrong method, unknown tenant, and a live summary.
func TestCycleSummaryEndpoint(t *testing.T) {
	_, ts, bgE, bgP := fixture(t)
	post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
	var sum core.CycleSummary
	if code := get(t, ts, "/v1/cycle/summary", &sum); code != http.StatusOK {
		t.Fatalf("summary status %d", code)
	}
	if sum.Alerts != 1 {
		t.Fatalf("summary %+v", sum)
	}
	if code := get(t, ts, "/v1/cycle/summary?tenant=ghost", nil); code != http.StatusNotFound {
		t.Fatalf("unknown tenant summary status %d", code)
	}
	resp, err := http.Post(ts.URL+"/v1/cycle/summary", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST on summary status %d", resp.StatusCode)
	}
}

// TestDurableAutoSnapshotCadence sets a tiny SnapshotEvery and checks the
// background snapshot fires (journal position counter resets and the next
// boot recovers from a snapshot, not a cold replay of everything).
func TestDurableAutoSnapshotCadence(t *testing.T) {
	dir := t.TempDir()
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 5, Employees: 30, Patients: 100, Departments: 4})
	if err != nil {
		t.Fatal(err)
	}
	bgE, bgP := world.NumEmployees(), world.NumPatients()
	if _, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: 5, PairsPerKind: 3, BackgroundPerDay: 1}); err != nil {
		t.Fatal(err)
	}
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		World:    world,
		Taxonomy: alerts.NewTable1Taxonomy(),
		TypeIDs:  sim.AllTable1TypeIDs(),
		Instance: inst,
		Budget:   50,
		Estimator: core.EstimatorFunc(func(time.Duration) ([]float64, error) {
			return []float64{196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27}, nil
		}),
		Seed:          1,
		Clock:         func() time.Duration { return 9 * time.Hour },
		DataDir:       dir,
		Fsync:         wal.FsyncAlways,
		SnapshotEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for i := 0; i < 20; i++ {
		post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
	}
	// Background snapshots are asynchronous; wait for at least one snapshot
	// record to land.
	tdir := filepath.Join(dir, "tenants", "t-"+DefaultTenantID)
	deadline := time.Now().Add(5 * time.Second)
	for {
		rec, err := wal.Recover(tdir)
		if err == nil && rec.Snapshot != nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no automatic snapshot within 5s despite SnapshotEvery=5")
		}
		time.Sleep(20 * time.Millisecond)
	}
	_, wantStatus := getRaw(t, ts, "/v1/status")
	_, ts2, _, _ := durableFixture(t, dir, nil)
	if _, got := getRaw(t, ts2, "/v1/status"); got != wantStatus {
		t.Fatalf("auto-snapshot recovery diverged:\n got %s\nwant %s", got, wantStatus)
	}
}
