package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/shard"
)

// postTenant is post with the X-SAG-Tenant header set.
func postTenant(t *testing.T, ts *httptest.Server, tenant, path string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+path, &buf)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if tenant != "" {
		req.Header.Set(TenantHeader, tenant)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
	}
	return resp.StatusCode
}

// TestTenantRouting: the header wins over the body field, the body field
// wins over the default, and each addressing form reaches its own engine.
func TestTenantRouting(t *testing.T) {
	srv, ts, bgE, bgP := fixture(t)

	// Body field creates and routes.
	if code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP, Tenant: "body-tenant"}, nil); code != http.StatusOK {
		t.Fatalf("body-routed access status %d", code)
	}
	// Header wins over a conflicting body field.
	if code := postTenant(t, ts, "header-tenant", "/v1/access",
		AccessRequest{EmployeeID: bgE, PatientID: bgP, Tenant: "body-tenant"}, nil); code != http.StatusOK {
		t.Fatalf("header-routed access status %d", code)
	}
	var st Status
	if code := get(t, ts, "/v1/status?tenant=header-tenant", &st); code != http.StatusOK || st.Accesses != 1 {
		t.Fatalf("header tenant status code %d, %+v (header must win over body)", code, st)
	}
	if get(t, ts, "/v1/status?tenant=body-tenant", &st); st.Accesses != 1 {
		t.Fatalf("body tenant saw %d accesses, want 1", st.Accesses)
	}
	// No tenant anywhere routes to the default.
	if get(t, ts, "/v1/status", &st); st.Tenant != DefaultTenantID || st.Accesses != 0 {
		t.Fatalf("default tenant status %+v", st)
	}
	if st.ActiveTenants != 3 {
		t.Fatalf("ActiveTenants = %d, want 3", st.ActiveTenants)
	}
	if got := srv.Tenants(); len(got) != 3 || got[0] != "body-tenant" || got[1] != DefaultTenantID || got[2] != "header-tenant" {
		t.Fatalf("Tenants() = %v", got)
	}
}

// TestTenantErrorPaths: malformed IDs answer 400, endpoints that must not
// create answer 404 for unknown tenants, and the cap answers 429.
func TestTenantErrorPaths(t *testing.T) {
	world, ts, bgE, bgP := fixtureTenants(t, 3) // default + 2 more
	_ = world

	if code := postTenant(t, ts, "bad tenant!", "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusBadRequest {
		t.Fatalf("invalid tenant ID: status %d, want 400", code)
	}
	if code := get(t, ts, "/v1/status?tenant=ghost", nil); code != http.StatusNotFound {
		t.Fatalf("status for unknown tenant: %d, want 404", code)
	}
	var e apiError
	if code := postTenant(t, ts, "ghost", "/v1/cycle/close", struct{}{}, &e); code != http.StatusNotFound || e.Error == "" {
		t.Fatalf("close for unknown tenant: %d %q, want 404 with error body", code, e.Error)
	}
	// Fill the cap: default is resident, two more fit, the third hits 429.
	for _, id := range []string{"t1", "t2"} {
		if code := postTenant(t, ts, id, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusOK {
			t.Fatalf("tenant %s: status %d", id, code)
		}
	}
	e = apiError{}
	if code := postTenant(t, ts, "t3", "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, &e); code != http.StatusTooManyRequests || e.Error == "" {
		t.Fatalf("over-cap tenant: %d %q, want 429 with error body", code, e.Error)
	}
	// Existing tenants keep serving at the cap.
	if code := postTenant(t, ts, "t1", "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusOK {
		t.Fatalf("resident tenant after cap: status %d", code)
	}
}

// fixtureTenants is fixture(t) with a tenant cap and the decision cache
// enabled (the box-wide budget the router divides across tenants). The
// coarse quanta put every same-type request of one tenant in one cache
// bucket, which is what the isolation tests lean on.
func fixtureTenants(t *testing.T, maxTenants int) (*Server, *httptest.Server, int, int) {
	t.Helper()
	return fixtureWith(t, func(cfg *Config) {
		cfg.MaxTenants = maxTenants
		cfg.Cache = core.CacheConfig{Size: 64, BudgetQuantum: 1e6, RateQuantum: 1}
	})
}

// TestNoCrossTenantCacheSharing is the satellite-1 regression test: two
// tenants never share cached decisions, even at identical game states. The
// coarse budget quantum makes every same-type request within one tenant hit
// the same cache bucket, so if the caches were shared — the engine-level
// singleton bug this PR audits for — tenant b's very first request would be
// a cache hit off tenant a's warm entry. It must be a miss.
func TestNoCrossTenantCacheSharing(t *testing.T) {
	_, ts, bgE, bgP := fixtureTenants(t, 8)

	// Warm the default tenant: first request misses and fills, the second
	// hits (same type, same quantized budget and rates).
	for i := 0; i < 3; i++ {
		if code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusOK {
			t.Fatalf("warm access %d: status %d", i, code)
		}
	}
	var st Status
	get(t, ts, "/v1/status", &st)
	if st.CacheHits < 2 || st.CacheMisses != 1 {
		t.Fatalf("default tenant cache not warm: %+v", st)
	}

	// Tenant b's first identical request must re-solve, not reuse a's entry.
	if code := postTenant(t, ts, "b", "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusOK {
		t.Fatalf("tenant b access: status %d", code)
	}
	get(t, ts, "/v1/status?tenant=b", &st)
	if st.CacheHits != 0 || st.CacheMisses != 1 {
		t.Fatalf("tenant b first lookup: hits=%d misses=%d, want a cold miss (cross-tenant cache sharing)", st.CacheHits, st.CacheMisses)
	}

	// Budget chains are independent too: a different budget on b must not
	// bleed into a's remaining budget or vice versa.
	if code := post(t, ts, "/v1/cycle/new", NewCycleRequest{Budget: 10, Tenant: "b"}, nil); code != http.StatusOK {
		t.Fatalf("tenant b new cycle: status %d", code)
	}
	var ra, rb Status
	get(t, ts, "/v1/status", &ra)
	get(t, ts, "/v1/status?tenant=b", &rb)
	if rb.Budget != 10 || rb.RemainingBudget != 10 {
		t.Fatalf("tenant b budget %+v, want a fresh 10", rb)
	}
	if ra.Budget != 50 {
		t.Fatalf("tenant a budget %+v was disturbed by b's cycle", ra)
	}
}

// TestTenantIsolationUnderConcurrency storms four tenants with different
// budgets concurrently and asserts the acceptance criterion of zero
// cross-tenant cache hits: every tenant's hit+miss tally equals its own
// gamed-alert count, each tenant's budget chain moves independently, and no
// tenant ever observes another tenant's budget level.
func TestTenantIsolationUnderConcurrency(t *testing.T) {
	_, ts, bgE, bgP := fixtureTenants(t, 8)
	tenants := []string{"h1", "h2", "h3", "h4"}
	budgets := map[string]float64{"h1": 40, "h2": 30, "h3": 20, "h4": 12}
	for id, b := range budgets {
		if code := post(t, ts, "/v1/cycle/new", NewCycleRequest{Budget: b, Tenant: id}, nil); code != http.StatusOK {
			t.Fatalf("tenant %s new cycle: status %d", id, code)
		}
	}

	const perTenant = 12
	errs := make(chan error, len(tenants))
	var wg sync.WaitGroup
	for _, id := range tenants {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			initial := budgets[id]
			for i := 0; i < perTenant; i++ {
				var body bytes.Buffer
				_ = json.NewEncoder(&body).Encode(AccessRequest{EmployeeID: bgE, PatientID: bgP})
				req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/access", &body)
				if err != nil {
					errs <- err
					return
				}
				req.Header.Set(TenantHeader, id)
				r, err := http.DefaultClient.Do(req)
				if err != nil {
					errs <- err
					return
				}
				var resp AccessResponse
				err = json.NewDecoder(r.Body).Decode(&resp)
				r.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.RemainingBudget > initial {
					errs <- fmt.Errorf("tenant %s observed budget %g above its own initial %g: cross-tenant state", id, resp.RemainingBudget, initial)
					return
				}
			}
			errs <- nil
		}(id)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	for _, id := range tenants {
		var st Status
		get(t, ts, "/v1/status?tenant="+id, &st)
		if st.Accesses != perTenant || st.Alerts != perTenant {
			t.Fatalf("tenant %s lost updates: %+v", id, st)
		}
		// Every gamed alert was answered by this tenant's own cache or its
		// own solves — a shared cache would show hits+misses < alerts for
		// the tenants that freeloaded on another's entries.
		if st.CacheHits+st.CacheMisses != perTenant {
			t.Fatalf("tenant %s: hits(%d)+misses(%d) != %d gamed alerts", id, st.CacheHits, st.CacheMisses, perTenant)
		}
		if st.Budget != budgets[id] {
			t.Fatalf("tenant %s initial budget drifted: %+v", id, st)
		}
	}
}

// TestTenantMetricsLabels: the exposition carries per-tenant series for
// both the server counters and the engine pipeline, plus the shard gauges.
func TestTenantMetricsLabels(t *testing.T) {
	_, ts, bgE, bgP := fixtureTenants(t, 8)
	for _, id := range []string{"", "x"} { // default + one named tenant
		if code := postTenant(t, ts, id, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusOK {
			t.Fatalf("tenant %q access: status %d", id, code)
		}
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	body := string(raw)
	for _, want := range []string{
		`sag_server_accesses_total{tenant="default"} 1`,
		`sag_server_accesses_total{tenant="x"} 1`,
		`sag_engine_decisions_total{policy="OSSP",tenant="default"} 1`,
		`sag_engine_decisions_total{policy="OSSP",tenant="x"} 1`,
		`sag_http_tenant_requests_total{tenant="x"} 1`,
		"sag_shard_tenants_active 2",
		"sag_shard_rebalance_total 2",
		"sag_shard_tenants_created_total 2",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}
}

// TestCycleSummariesAndDrain: per-tenant summaries come back keyed by ID,
// and oversized bodies are rejected with 413 before touching any tenant.
func TestCycleSummariesAndDrain(t *testing.T) {
	srv, ts, bgE, bgP := fixtureTenants(t, 8)
	for _, id := range []string{"", "y"} {
		for i := 0; i < 2; i++ {
			if code := postTenant(t, ts, id, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusOK {
				t.Fatalf("tenant %q access: status %d", id, code)
			}
		}
	}
	sums := srv.CycleSummaries()
	if len(sums) != 2 {
		t.Fatalf("CycleSummaries has %d tenants, want 2: %v", len(sums), sums)
	}
	for _, id := range []string{DefaultTenantID, "y"} {
		if sums[id].Alerts != 2 {
			t.Fatalf("tenant %s summary %+v, want 2 alerts", id, sums[id])
		}
	}
	if got := srv.CycleSummary(); got != sums[DefaultTenantID] {
		t.Fatalf("CycleSummary() = %+v, want the default tenant's %+v", got, sums[DefaultTenantID])
	}

	// Oversized body: rejected with a JSON 413, no tenant touched. The body
	// must be syntactically plausible past the cap, or the decoder answers
	// 400 for the malformed prefix before the size limit trips.
	huge := append([]byte(`{"employee_id":1,"patient_id":2,"tenant":"`),
		bytes.Repeat([]byte("a"), defaultMaxBodyBytes+1)...)
	resp, err := http.Post(ts.URL+"/v1/access", "application/json", bytes.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	var e apiError
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e.Error == "" {
		t.Fatalf("oversized-body error not JSON: %v %q", err, e.Error)
	}
}

// TestEnsureTenantAndSeedDistinctness: pre-provisioned tenants are resident
// without traffic, and distinct tenants draw distinct RNG streams (their
// seeds fold in shard.Seed).
func TestEnsureTenantAndSeedDistinctness(t *testing.T) {
	srv, _, _, _ := fixtureTenants(t, 8)
	if err := srv.EnsureTenant("pre-1"); err != nil {
		t.Fatal(err)
	}
	if err := srv.EnsureTenant("pre-1"); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := srv.EnsureTenant("no good"); err == nil {
		t.Fatal("EnsureTenant accepted an invalid ID")
	}
	got := srv.Tenants()
	if len(got) != 2 || got[0] != DefaultTenantID || got[1] != "pre-1" {
		t.Fatalf("Tenants() = %v", got)
	}
	if shard.Seed("pre-1") == shard.Seed("pre-2") {
		t.Fatal("tenant seeds collide")
	}
}
