// Package server exposes the online Signaling Audit Game as an HTTP
// service — the deployment shape the paper describes: an EMR front end
// calls the service for every access request; benign requests pass
// silently, suspicious ones get a real-time warn/allow decision; at the end
// of the audit cycle the service emits the retrospective audit plan.
//
// Endpoints (JSON over HTTP, stdlib net/http only):
//
//	POST /v1/access        — evaluate one access; returns whether to warn
//	POST /v1/quit          — report that a warned user abandoned the access
//	POST /v1/cycle/close   — sample and return the retrospective audit plan
//	POST /v1/cycle/new     — start the next audit cycle with a fresh budget
//	GET  /v1/status        — budget, counts, and configuration snapshot
//	GET  /v1/metrics       — Prometheus text exposition (HTTP + engine + solver)
//	GET  /v1/healthz       — liveness probe (always 200 while serving)
//	GET  /v1/readyz        — readiness probe (503 once draining)
//
// Concurrency: the serving hot path is not globally serialized. Decisions
// run concurrently through the engine's optimistic snapshot/commit protocol
// (see core.Engine); the server itself only takes a read lock on the cycle
// lifecycle, so /v1/access requests overlap freely while /v1/cycle/close
// and /v1/cycle/new take the write side and drain in-flight decisions
// before the rollover. Per-cycle counters are atomics and the flagged-user
// set has its own small mutex. The full locking hierarchy is documented in
// DESIGN.md.
//
// The serving path is hardened for production shapes: the API is wrapped in
// panic recovery and an optional per-request timeout, each engine decision
// can carry a deadline with graceful degradation (the fallback ladder in
// internal/fallback), and Run provides the full listener lifecycle — server
// timeouts, health-gated draining, and coordinated shutdown of the main and
// debug listeners.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/obs"
)

// Config assembles a Server.
type Config struct {
	// World and detection rules: every access is joined against these.
	World    *emr.World
	Taxonomy *alerts.Taxonomy
	// TypeIDs maps taxonomy type IDs to engine type indices (position in
	// the slice = engine index). Alerts of unlisted types are logged but
	// not gamed (treated as benign for auditing purposes).
	TypeIDs []int
	// Instance, Budget, Estimator, Seed configure the game engine.
	Instance  *game.Instance
	Budget    float64
	Estimator core.Estimator
	Seed      int64
	// Cache configures the engine's per-cycle decision cache (see
	// core.CacheConfig); the zero value disables caching.
	Cache core.CacheConfig
	// Clock returns the current offset within the audit cycle; defaults to
	// wall-clock time-of-day. Tests inject a fake.
	Clock func() time.Duration
	// Metrics, when non-nil, is the registry served by GET /v1/metrics and
	// shared with the game engine. When nil the server creates a private
	// registry, so the endpoint is always live.
	Metrics *obs.Registry
	// DecisionDeadline bounds each engine decision (see
	// core.Config.DecisionDeadline). The server always enables the engine's
	// graceful degradation, so an expired deadline yields a degraded
	// decision, never a 5xx. Zero means no per-decision deadline.
	DecisionDeadline time.Duration
	// RequestTimeout bounds each request end to end; requests that exceed it
	// are answered 503. Zero disables the per-request timeout.
	RequestTimeout time.Duration
	// SSESolve overrides the engine's online SSE solver (nil means the real
	// game.SolveOnlineSSECtx). Injection seam for fault-injection and for
	// the concurrency tests, which substitute a blocking solver to prove
	// decisions overlap.
	SSESolve core.SSESolveFunc
}

// Server is the HTTP facade. Create with New and mount via Handler.
//
// Locking hierarchy (acquire top to bottom, never upward):
//
//	lifecycle — RWMutex over cycle transitions. Decision handlers hold the
//	            read side for their whole request, so any number overlap;
//	            /v1/cycle/close and /v1/cycle/new hold the write side, so a
//	            rollover waits for in-flight decisions and no decision ever
//	            spans a cycle boundary. Also guards closed.
//	flaggedMu — RWMutex over the flagged-quitter set only.
//	engine    — core.Engine's own internal locks (optimistic commit).
//
// Per-cycle counters (accesses, alerts, warned, quits) are atomics: they
// are written on the hot path and read only by /v1/status and the close
// handler's seed derivation.
type Server struct {
	detector *alerts.Engine
	engine   *core.Engine
	cfg      Config
	met      serverMetrics
	typeIdx  map[int]int // taxonomy ID → engine index

	lifecycle sync.RWMutex
	closed    bool // cycle closed, awaiting /v1/cycle/new; guarded by lifecycle

	flaggedMu sync.RWMutex
	flagged   map[int]bool

	accesses atomic.Int64
	alerts   atomic.Int64
	warned   atomic.Int64
	quits    atomic.Int64
	ready    atomic.Bool
}

// New validates the configuration and builds the server.
func New(cfg Config) (*Server, error) {
	if cfg.World == nil || cfg.Taxonomy == nil {
		return nil, errors.New("server: World and Taxonomy are required")
	}
	if cfg.Instance == nil || cfg.Estimator == nil {
		return nil, errors.New("server: Instance and Estimator are required")
	}
	if len(cfg.TypeIDs) != cfg.Instance.NumTypes() {
		return nil, fmt.Errorf("server: %d type IDs for %d engine types", len(cfg.TypeIDs), cfg.Instance.NumTypes())
	}
	detector, err := alerts.NewEngine(cfg.World, cfg.Taxonomy)
	if err != nil {
		return nil, err
	}
	met := newServerMetrics(cfg.Metrics)
	engine, err := core.NewEngine(core.Config{
		Instance:  cfg.Instance,
		Budget:    cfg.Budget,
		Estimator: cfg.Estimator,
		Policy:    core.PolicyOSSP,
		Rand:      rand.New(rand.NewSource(cfg.Seed)),
		Cache:     cfg.Cache,
		Metrics:   met.reg,
		// The serving path never trades availability for optimality: a
		// failed or slow solve degrades down the fallback ladder (cache →
		// last-good θ → static never-warn policy) instead of surfacing as an
		// error to the EMR front end.
		DecisionDeadline: cfg.DecisionDeadline,
		Fallback:         true,
		SSESolve:         cfg.SSESolve,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = func() time.Duration {
			now := time.Now()
			return time.Duration(now.Hour())*time.Hour +
				time.Duration(now.Minute())*time.Minute +
				time.Duration(now.Second())*time.Second
		}
	}
	idx := make(map[int]int, len(cfg.TypeIDs))
	for i, id := range cfg.TypeIDs {
		if _, dup := idx[id]; dup {
			return nil, fmt.Errorf("server: duplicate type ID %d", id)
		}
		idx[id] = i
	}
	s := &Server{
		detector: detector,
		engine:   engine,
		cfg:      cfg,
		met:      met,
		typeIdx:  idx,
		flagged:  make(map[int]bool),
	}
	s.ready.Store(true)
	return s, nil
}

// SetReady flips the readiness gate served by GET /v1/readyz. The graceful
// shutdown path flips it false before draining so load balancers stop
// routing new traffic while in-flight requests finish.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// CycleSummary returns the engine's aggregate view of the current cycle —
// the shutdown path logs it so an interrupted cycle is not lost silently.
func (s *Server) CycleSummary() core.CycleSummary {
	return s.engine.Summary()
}

// AccessRequest is the body of POST /v1/access.
type AccessRequest struct {
	EmployeeID int `json:"employee_id"`
	PatientID  int `json:"patient_id"`
}

// AccessResponse is the decision for one access request.
type AccessResponse struct {
	// Alert reports whether any detection rule fired.
	Alert bool `json:"alert"`
	// TypeID is the taxonomy type of the alert (0 when no alert).
	TypeID int `json:"type_id,omitempty"`
	// Rules describes the fired rules.
	Rules string `json:"rules,omitempty"`
	// Warn instructs the front end to show the warning dialog.
	Warn bool `json:"warn"`
	// Flagged reports that the employee previously abandoned a warned
	// access; per the paper's §4 discussion such users are always
	// investigated.
	Flagged bool `json:"flagged,omitempty"`
	// RemainingBudget is the post-decision audit budget.
	RemainingBudget float64 `json:"remaining_budget"`
	// Fallback names the degradation rung ("cache", "last_good", "static")
	// when the decision pipeline could not complete in time; empty for a
	// fully solved decision.
	Fallback string `json:"fallback,omitempty"`
}

// QuitRequest is the body of POST /v1/quit: a warned user abandoned the
// access. Quitting reveals the requester (the paper's Theorem 3 remark),
// so the server flags the employee.
type QuitRequest struct {
	EmployeeID int `json:"employee_id"`
}

// CloseResponse is the retrospective audit plan.
type CloseResponse struct {
	Audits    []core.AuditOutcome `json:"audits"`
	TotalCost float64             `json:"total_cost"`
}

// NewCycleRequest starts the next audit cycle.
type NewCycleRequest struct {
	Budget float64 `json:"budget"`
}

// Status is the GET /v1/status snapshot.
type Status struct {
	Budget          float64 `json:"budget"`
	RemainingBudget float64 `json:"remaining_budget"`
	Accesses        int     `json:"accesses"`
	Alerts          int     `json:"alerts"`
	Warned          int     `json:"warned"`
	Quits           int     `json:"quits"`
	FlaggedUsers    int     `json:"flagged_users"`
	NumTypes        int     `json:"num_types"`
	// Closed reports that the cycle's audit plan has been drawn: further
	// /v1/access and /v1/cycle/close calls answer 409 until /v1/cycle/new.
	Closed bool `json:"closed"`
	// Decision-cache effectiveness; all zero when caching is disabled.
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEvictions uint64  `json:"cache_evictions"`
	CacheEntries   int     `json:"cache_entries"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
}

// Handler returns the HTTP handler with all routes mounted. Every route is
// wrapped in the metrics middleware (request count by status, latency
// histogram); /v1/metrics serves the shared registry. The whole API is
// wrapped in the panic-recovery middleware and, when Config.RequestTimeout
// is set, the per-request timeout — except the health probes, which must
// answer even when the API is saturated.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/access", s.instrument("/v1/access", s.handleAccess))
	mux.Handle("POST /v1/quit", s.instrument("/v1/quit", s.handleQuit))
	mux.Handle("POST /v1/cycle/close", s.instrument("/v1/cycle/close", s.handleClose))
	mux.Handle("POST /v1/cycle/new", s.instrument("/v1/cycle/new", s.handleNewCycle))
	mux.Handle("GET /v1/status", s.instrument("/v1/status", s.handleStatus))
	mux.Handle("GET /v1/metrics", s.met.reg.Handler())

	var api http.Handler = mux
	if s.cfg.RequestTimeout > 0 {
		api = http.TimeoutHandler(api, s.cfg.RequestTimeout,
			`{"error":"request timed out"}`)
	}
	api = s.recovery(api)

	root := http.NewServeMux()
	root.Handle("GET /v1/healthz", http.HandlerFunc(s.handleHealthz))
	root.Handle("GET /v1/readyz", http.HandlerFunc(s.handleReadyz))
	root.Handle("/", api)
	return root
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// handleReadyz is the readiness probe: 200 while accepting traffic, 503
// once graceful shutdown has begun (see SetReady).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ready"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// lockLifecycleR / lockLifecycleW acquire the lifecycle lock, observing the
// wait in sag_http_lock_wait_seconds so re-serialization regressions show up
// on dashboards before they show up as latency.
func (s *Server) lockLifecycleR() {
	t0 := time.Now()
	s.lifecycle.RLock()
	s.met.lockWaitRead.ObserveSince(t0)
}

func (s *Server) lockLifecycleW() {
	t0 := time.Now()
	s.lifecycle.Lock()
	s.met.lockWaitWrite.ObserveSince(t0)
}

func (s *Server) handleAccess(w http.ResponseWriter, r *http.Request) {
	var req AccessRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid JSON: " + err.Error()})
		return
	}
	// Read side only: any number of access decisions overlap; the solve
	// itself runs under the engine's optimistic-commit protocol, not under
	// any server lock.
	s.lockLifecycleR()
	defer s.lifecycle.RUnlock()
	if s.closed {
		writeJSON(w, http.StatusConflict, apiError{Error: "audit cycle is closed; POST /v1/cycle/new to start the next one"})
		return
	}
	s.accesses.Add(1)
	s.met.accesses.Inc()

	now := s.cfg.Clock()
	alert, fired, err := s.detector.Evaluate(emr.AccessEvent{
		Time:       now,
		EmployeeID: req.EmployeeID,
		PatientID:  req.PatientID,
	})
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	resp := AccessResponse{RemainingBudget: s.engine.RemainingBudget()}
	if !fired {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.alerts.Add(1)
	s.met.alerts.Inc()
	resp.Alert = true
	resp.TypeID = alert.Type
	resp.Rules = alert.Rules.String()

	s.flaggedMu.RLock()
	isFlagged := s.flagged[req.EmployeeID]
	s.flaggedMu.RUnlock()
	if isFlagged {
		// Known quitter: always warn (and the access is investigated out
		// of band — the paper notes this is cheap because quits are rare).
		resp.Warn = true
		resp.Flagged = true
		s.warned.Add(1)
		s.met.warned.Inc()
		writeJSON(w, http.StatusOK, resp)
		return
	}

	idx, gamed := s.typeIdx[alert.Type]
	if !gamed {
		// Unmodeled type: logged, never warned (no payoff structure).
		writeJSON(w, http.StatusOK, resp)
		return
	}
	d, err := s.engine.ProcessContext(r.Context(), core.Alert{Type: idx, Time: now})
	if err != nil {
		// ErrCycleRolledOver cannot fire while we hold the lifecycle read
		// lock, but embedders drive the engine directly too — map it to the
		// same conflict the closed-cycle guard answers.
		if errors.Is(err, core.ErrCycleRolledOver) {
			writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	resp.Warn = d.Warned
	resp.RemainingBudget = d.BudgetAfter
	if d.Fallback.Degraded() {
		resp.Fallback = d.Fallback.String()
	}
	if d.Warned {
		s.warned.Add(1)
		s.met.warned.Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQuit(w http.ResponseWriter, r *http.Request) {
	var req QuitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid JSON: " + err.Error()})
		return
	}
	s.lockLifecycleR()
	defer s.lifecycle.RUnlock()
	if req.EmployeeID < 0 || req.EmployeeID >= len(s.cfg.World.Employees) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("unknown employee %d", req.EmployeeID)})
		return
	}
	// Idempotent: a quit reveals the requester once. Repeating the report
	// re-confirms the flag but must not inflate the quit counter (or the
	// flagged gauge) — front ends retry.
	s.flaggedMu.Lock()
	first := !s.flagged[req.EmployeeID]
	if first {
		s.flagged[req.EmployeeID] = true
		s.met.flagged.Set(float64(len(s.flagged)))
	}
	s.flaggedMu.Unlock()
	if first {
		s.quits.Add(1)
		s.met.quits.Inc()
	}
	writeJSON(w, http.StatusOK, struct {
		Flagged bool `json:"flagged"`
	}{Flagged: true})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	// Write side: wait for in-flight decisions, then freeze the cycle. A
	// second close is a conflict — re-sampling would draw a fresh audit
	// plan (and re-charge its total) for a cycle that already has one.
	s.lockLifecycleW()
	defer s.lifecycle.Unlock()
	if s.closed {
		writeJSON(w, http.StatusConflict, apiError{Error: "audit cycle already closed; POST /v1/cycle/new to start the next one"})
		return
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ s.accesses.Load()))
	audits, total := s.engine.CloseCycle(rng)
	s.closed = true
	writeJSON(w, http.StatusOK, CloseResponse{Audits: audits, TotalCost: total})
}

func (s *Server) handleNewCycle(w http.ResponseWriter, r *http.Request) {
	var req NewCycleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid JSON: " + err.Error()})
		return
	}
	s.lockLifecycleW()
	defer s.lifecycle.Unlock()
	if err := s.engine.NewCycle(req.Budget); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	// Reset every per-cycle counter. Flagged users deliberately survive the
	// rollover: a quit reveals the requester for good (paper §4).
	s.closed = false
	s.accesses.Store(0)
	s.alerts.Store(0)
	s.warned.Store(0)
	s.quits.Store(0)
	writeJSON(w, http.StatusOK, struct {
		Budget float64 `json:"budget"`
	}{Budget: req.Budget})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.lockLifecycleR()
	closed := s.closed
	s.lifecycle.RUnlock()
	s.flaggedMu.RLock()
	flagged := len(s.flagged)
	s.flaggedMu.RUnlock()
	cs := s.engine.CacheStats()
	writeJSON(w, http.StatusOK, Status{
		Budget:          s.engine.InitialBudget(),
		RemainingBudget: s.engine.RemainingBudget(),
		Accesses:        int(s.accesses.Load()),
		Alerts:          int(s.alerts.Load()),
		Warned:          int(s.warned.Load()),
		Quits:           int(s.quits.Load()),
		FlaggedUsers:    flagged,
		NumTypes:        s.cfg.Instance.NumTypes(),
		Closed:          closed,
		CacheHits:       cs.Hits,
		CacheMisses:     cs.Misses,
		CacheEvictions:  cs.Evictions,
		CacheEntries:    cs.Entries,
		CacheHitRate:    cs.HitRate(),
	})
}
