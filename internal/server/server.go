// Package server exposes the online Signaling Audit Game as an HTTP
// service — the deployment shape the paper describes: an EMR front end
// calls the service for every access request; benign requests pass
// silently, suspicious ones get a real-time warn/allow decision; at the end
// of the audit cycle the service emits the retrospective audit plan.
//
// Endpoints (JSON over HTTP, stdlib net/http only):
//
//	POST /v1/access        — evaluate one access; returns whether to warn
//	POST /v1/quit          — report that a warned user abandoned the access
//	POST /v1/cycle/close   — sample and return the retrospective audit plan
//	POST /v1/cycle/new     — start the next audit cycle with a fresh budget
//	GET  /v1/status        — budget, counts, and configuration snapshot
//	GET  /v1/metrics       — Prometheus text exposition (HTTP + engine + solver)
//	GET  /v1/healthz       — liveness probe (always 200 while serving)
//	GET  /v1/readyz        — readiness probe (503 once draining)
//
// The server serializes all engine access through a mutex: the engine is
// deliberately single-threaded per audit cycle (decisions are order-
// dependent through the budget), and the per-decision cost is tens of
// microseconds, far below any plausible request rate in this domain.
//
// The serving path is hardened for production shapes: the API is wrapped in
// panic recovery and an optional per-request timeout, each engine decision
// can carry a deadline with graceful degradation (the fallback ladder in
// internal/fallback), and Run provides the full listener lifecycle — server
// timeouts, health-gated draining, and coordinated shutdown of the main and
// debug listeners.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/obs"
)

// Config assembles a Server.
type Config struct {
	// World and detection rules: every access is joined against these.
	World    *emr.World
	Taxonomy *alerts.Taxonomy
	// TypeIDs maps taxonomy type IDs to engine type indices (position in
	// the slice = engine index). Alerts of unlisted types are logged but
	// not gamed (treated as benign for auditing purposes).
	TypeIDs []int
	// Instance, Budget, Estimator, Seed configure the game engine.
	Instance  *game.Instance
	Budget    float64
	Estimator core.Estimator
	Seed      int64
	// Cache configures the engine's per-cycle decision cache (see
	// core.CacheConfig); the zero value disables caching.
	Cache core.CacheConfig
	// Clock returns the current offset within the audit cycle; defaults to
	// wall-clock time-of-day. Tests inject a fake.
	Clock func() time.Duration
	// Metrics, when non-nil, is the registry served by GET /v1/metrics and
	// shared with the game engine. When nil the server creates a private
	// registry, so the endpoint is always live.
	Metrics *obs.Registry
	// DecisionDeadline bounds each engine decision (see
	// core.Config.DecisionDeadline). The server always enables the engine's
	// graceful degradation, so an expired deadline yields a degraded
	// decision, never a 5xx. Zero means no per-decision deadline.
	DecisionDeadline time.Duration
	// RequestTimeout bounds each request end to end; requests that exceed it
	// are answered 503. Zero disables the per-request timeout.
	RequestTimeout time.Duration
}

// Server is the HTTP facade. Create with New and mount via Handler.
type Server struct {
	mu       sync.Mutex
	detector *alerts.Engine
	engine   *core.Engine
	cfg      Config
	met      serverMetrics
	typeIdx  map[int]int // taxonomy ID → engine index
	flagged  map[int]bool
	accesses int
	alerts   int
	warned   int
	quits    int
	ready    atomic.Bool
}

// New validates the configuration and builds the server.
func New(cfg Config) (*Server, error) {
	if cfg.World == nil || cfg.Taxonomy == nil {
		return nil, errors.New("server: World and Taxonomy are required")
	}
	if cfg.Instance == nil || cfg.Estimator == nil {
		return nil, errors.New("server: Instance and Estimator are required")
	}
	if len(cfg.TypeIDs) != cfg.Instance.NumTypes() {
		return nil, fmt.Errorf("server: %d type IDs for %d engine types", len(cfg.TypeIDs), cfg.Instance.NumTypes())
	}
	detector, err := alerts.NewEngine(cfg.World, cfg.Taxonomy)
	if err != nil {
		return nil, err
	}
	met := newServerMetrics(cfg.Metrics)
	engine, err := core.NewEngine(core.Config{
		Instance:  cfg.Instance,
		Budget:    cfg.Budget,
		Estimator: cfg.Estimator,
		Policy:    core.PolicyOSSP,
		Rand:      rand.New(rand.NewSource(cfg.Seed)),
		Cache:     cfg.Cache,
		Metrics:   met.reg,
		// The serving path never trades availability for optimality: a
		// failed or slow solve degrades down the fallback ladder (cache →
		// last-good θ → static never-warn policy) instead of surfacing as an
		// error to the EMR front end.
		DecisionDeadline: cfg.DecisionDeadline,
		Fallback:         true,
	})
	if err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = func() time.Duration {
			now := time.Now()
			return time.Duration(now.Hour())*time.Hour +
				time.Duration(now.Minute())*time.Minute +
				time.Duration(now.Second())*time.Second
		}
	}
	idx := make(map[int]int, len(cfg.TypeIDs))
	for i, id := range cfg.TypeIDs {
		if _, dup := idx[id]; dup {
			return nil, fmt.Errorf("server: duplicate type ID %d", id)
		}
		idx[id] = i
	}
	s := &Server{
		detector: detector,
		engine:   engine,
		cfg:      cfg,
		met:      met,
		typeIdx:  idx,
		flagged:  make(map[int]bool),
	}
	s.ready.Store(true)
	return s, nil
}

// SetReady flips the readiness gate served by GET /v1/readyz. The graceful
// shutdown path flips it false before draining so load balancers stop
// routing new traffic while in-flight requests finish.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// CycleSummary returns the engine's aggregate view of the current cycle —
// the shutdown path logs it so an interrupted cycle is not lost silently.
func (s *Server) CycleSummary() core.CycleSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.engine.Summary()
}

// AccessRequest is the body of POST /v1/access.
type AccessRequest struct {
	EmployeeID int `json:"employee_id"`
	PatientID  int `json:"patient_id"`
}

// AccessResponse is the decision for one access request.
type AccessResponse struct {
	// Alert reports whether any detection rule fired.
	Alert bool `json:"alert"`
	// TypeID is the taxonomy type of the alert (0 when no alert).
	TypeID int `json:"type_id,omitempty"`
	// Rules describes the fired rules.
	Rules string `json:"rules,omitempty"`
	// Warn instructs the front end to show the warning dialog.
	Warn bool `json:"warn"`
	// Flagged reports that the employee previously abandoned a warned
	// access; per the paper's §4 discussion such users are always
	// investigated.
	Flagged bool `json:"flagged,omitempty"`
	// RemainingBudget is the post-decision audit budget.
	RemainingBudget float64 `json:"remaining_budget"`
	// Fallback names the degradation rung ("cache", "last_good", "static")
	// when the decision pipeline could not complete in time; empty for a
	// fully solved decision.
	Fallback string `json:"fallback,omitempty"`
}

// QuitRequest is the body of POST /v1/quit: a warned user abandoned the
// access. Quitting reveals the requester (the paper's Theorem 3 remark),
// so the server flags the employee.
type QuitRequest struct {
	EmployeeID int `json:"employee_id"`
}

// CloseResponse is the retrospective audit plan.
type CloseResponse struct {
	Audits    []core.AuditOutcome `json:"audits"`
	TotalCost float64             `json:"total_cost"`
}

// NewCycleRequest starts the next audit cycle.
type NewCycleRequest struct {
	Budget float64 `json:"budget"`
}

// Status is the GET /v1/status snapshot.
type Status struct {
	Budget          float64 `json:"budget"`
	RemainingBudget float64 `json:"remaining_budget"`
	Accesses        int     `json:"accesses"`
	Alerts          int     `json:"alerts"`
	Warned          int     `json:"warned"`
	Quits           int     `json:"quits"`
	FlaggedUsers    int     `json:"flagged_users"`
	NumTypes        int     `json:"num_types"`
	// Decision-cache effectiveness; all zero when caching is disabled.
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEvictions uint64  `json:"cache_evictions"`
	CacheEntries   int     `json:"cache_entries"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
}

// Handler returns the HTTP handler with all routes mounted. Every route is
// wrapped in the metrics middleware (request count by status, latency
// histogram); /v1/metrics serves the shared registry. The whole API is
// wrapped in the panic-recovery middleware and, when Config.RequestTimeout
// is set, the per-request timeout — except the health probes, which must
// answer even when the API is saturated.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/access", s.instrument("/v1/access", s.handleAccess))
	mux.Handle("POST /v1/quit", s.instrument("/v1/quit", s.handleQuit))
	mux.Handle("POST /v1/cycle/close", s.instrument("/v1/cycle/close", s.handleClose))
	mux.Handle("POST /v1/cycle/new", s.instrument("/v1/cycle/new", s.handleNewCycle))
	mux.Handle("GET /v1/status", s.instrument("/v1/status", s.handleStatus))
	mux.Handle("GET /v1/metrics", s.met.reg.Handler())

	var api http.Handler = mux
	if s.cfg.RequestTimeout > 0 {
		api = http.TimeoutHandler(api, s.cfg.RequestTimeout,
			`{"error":"request timed out"}`)
	}
	api = s.recovery(api)

	root := http.NewServeMux()
	root.Handle("GET /v1/healthz", http.HandlerFunc(s.handleHealthz))
	root.Handle("GET /v1/readyz", http.HandlerFunc(s.handleReadyz))
	root.Handle("/", api)
	return root
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// handleReadyz is the readiness probe: 200 while accepting traffic, 503
// once graceful shutdown has begun (see SetReady).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{Status: "draining"})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ready"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

func (s *Server) handleAccess(w http.ResponseWriter, r *http.Request) {
	var req AccessRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid JSON: " + err.Error()})
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.accesses++
	s.met.accesses.Inc()

	now := s.cfg.Clock()
	alert, fired, err := s.detector.Evaluate(emr.AccessEvent{
		Time:       now,
		EmployeeID: req.EmployeeID,
		PatientID:  req.PatientID,
	})
	if err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	resp := AccessResponse{RemainingBudget: s.engine.RemainingBudget()}
	if !fired {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.alerts++
	s.met.alerts.Inc()
	resp.Alert = true
	resp.TypeID = alert.Type
	resp.Rules = alert.Rules.String()

	if s.flagged[req.EmployeeID] {
		// Known quitter: always warn (and the access is investigated out
		// of band — the paper notes this is cheap because quits are rare).
		resp.Warn = true
		resp.Flagged = true
		s.warned++
		s.met.warned.Inc()
		writeJSON(w, http.StatusOK, resp)
		return
	}

	idx, gamed := s.typeIdx[alert.Type]
	if !gamed {
		// Unmodeled type: logged, never warned (no payoff structure).
		writeJSON(w, http.StatusOK, resp)
		return
	}
	d, err := s.engine.ProcessContext(r.Context(), core.Alert{Type: idx, Time: now})
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	resp.Warn = d.Warned
	resp.RemainingBudget = d.BudgetAfter
	if d.Fallback.Degraded() {
		resp.Fallback = d.Fallback.String()
	}
	if d.Warned {
		s.warned++
		s.met.warned.Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleQuit(w http.ResponseWriter, r *http.Request) {
	var req QuitRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid JSON: " + err.Error()})
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if req.EmployeeID < 0 || req.EmployeeID >= len(s.cfg.World.Employees) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("unknown employee %d", req.EmployeeID)})
		return
	}
	s.quits++
	s.met.quits.Inc()
	s.flagged[req.EmployeeID] = true
	s.met.flagged.Set(float64(len(s.flagged)))
	writeJSON(w, http.StatusOK, struct {
		Flagged bool `json:"flagged"`
	}{Flagged: true})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ int64(s.accesses)))
	audits, total := s.engine.CloseCycle(rng)
	writeJSON(w, http.StatusOK, CloseResponse{Audits: audits, TotalCost: total})
}

func (s *Server) handleNewCycle(w http.ResponseWriter, r *http.Request) {
	var req NewCycleRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid JSON: " + err.Error()})
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.engine.NewCycle(req.Budget); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	// Reset every per-cycle counter. Flagged users deliberately survive the
	// rollover: a quit reveals the requester for good (paper §4).
	s.accesses, s.alerts, s.warned, s.quits = 0, 0, 0, 0
	writeJSON(w, http.StatusOK, struct {
		Budget float64 `json:"budget"`
	}{Budget: req.Budget})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cs := s.engine.CacheStats()
	writeJSON(w, http.StatusOK, Status{
		Budget:          s.engine.InitialBudget(),
		RemainingBudget: s.engine.RemainingBudget(),
		Accesses:        s.accesses,
		Alerts:          s.alerts,
		Warned:          s.warned,
		Quits:           s.quits,
		FlaggedUsers:    len(s.flagged),
		NumTypes:        s.cfg.Instance.NumTypes(),
		CacheHits:       cs.Hits,
		CacheMisses:     cs.Misses,
		CacheEvictions:  cs.Evictions,
		CacheEntries:    cs.Entries,
		CacheHitRate:    cs.HitRate(),
	})
}
