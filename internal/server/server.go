// Package server exposes the online Signaling Audit Game as an HTTP
// service — the deployment shape the paper describes: an EMR front end
// calls the service for every access request; benign requests pass
// silently, suspicious ones get a real-time warn/allow decision; at the end
// of the audit cycle the service emits the retrospective audit plan.
//
// Endpoints (JSON over HTTP, stdlib net/http only):
//
//	POST /v1/access        — evaluate one access; returns whether to warn
//	POST /v1/quit          — report that a warned user abandoned the access
//	POST /v1/cycle/close   — sample and return the retrospective audit plan
//	POST /v1/cycle/new     — start the next audit cycle with a fresh budget
//	GET  /v1/status        — budget, counts, and configuration snapshot
//	GET  /v1/metrics       — Prometheus text exposition (HTTP + engine + solver)
//	GET  /v1/healthz       — liveness probe (always 200 while serving)
//	GET  /v1/readyz        — readiness probe (503 once draining)
//
// Multi-tenancy: one server hosts many independent audit cycles — one per
// tenant (a hospital, in the paper's deployment story) — routed by the
// X-SAG-Tenant header, the "tenant" body field, or (for GET /v1/status) the
// ?tenant= query parameter; requests that carry none use the default
// tenant. Each tenant owns a dedicated core.Engine behind a shard.Router
// (see internal/shard): its own budget chain, decision cache, fallback
// state, and RNG stream. Tenants are created on first use up to
// Config.MaxTenants (429 beyond it); the world, detection rules, and game
// instance — all immutable during serving — are shared, which also bounds
// box-wide solve parallelism through the instance's shared worker pool.
//
// Concurrency: the serving hot path is not globally serialized. Decisions
// run concurrently through each engine's optimistic snapshot/commit
// protocol (see core.Engine); the server takes only a per-tenant read lock
// on the cycle lifecycle, so /v1/access requests overlap freely — across
// tenants and within one — while /v1/cycle/close and /v1/cycle/new take
// that tenant's write side and drain its in-flight decisions before the
// rollover. Per-cycle counters are atomics and each tenant's flagged-user
// set has its own small mutex. The full locking hierarchy is documented in
// DESIGN.md.
//
// The serving path is hardened for production shapes: request bodies are
// capped (Config.MaxBodyBytes), the API is wrapped in panic recovery and an
// optional per-request timeout, each engine decision can carry a deadline
// with graceful degradation (the fallback ladder in internal/fallback), and
// Run provides the full listener lifecycle — server timeouts, health-gated
// draining, and coordinated shutdown of the main and debug listeners.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/auditgames/sag/internal/admit"
	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/faultinject"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/retain"
	"github.com/auditgames/sag/internal/shard"
	"github.com/auditgames/sag/internal/wal"
)

// TenantHeader is the request header naming the tenant an API call is for.
// It wins over the "tenant" body field; absent both, the request routes to
// Config.DefaultTenant.
const TenantHeader = "X-SAG-Tenant"

// DefaultTenantID is the tenant used when Config.DefaultTenant is empty and
// a request names no tenant.
const DefaultTenantID = "default"

// defaultMaxBodyBytes caps request bodies when Config.MaxBodyBytes is zero.
const defaultMaxBodyBytes = 1 << 20

// Config assembles a Server.
type Config struct {
	// World and detection rules: every access is joined against these. Both
	// are shared by all tenants — the world is immutable during serving and
	// the taxonomy is append-only and self-locking.
	World    *emr.World
	Taxonomy *alerts.Taxonomy
	// TypeIDs maps taxonomy type IDs to engine type indices (position in
	// the slice = engine index). Alerts of unlisted types are logged but
	// not gamed (treated as benign for auditing purposes).
	TypeIDs []int
	// Instance, Budget, Estimator, Seed configure the game engines. The
	// instance is shared by every tenant engine: payoffs are immutable and
	// its worker bound feeds the shared internal/pool, so box-wide solve
	// parallelism stays capped no matter how many tenants are resident.
	// Budget is each new tenant's initial cycle budget. Seed seeds the
	// default tenant's RNG exactly; other tenants fold in a hash of their
	// ID (see shard.Seed) so streams are distinct but reproducible.
	Instance  *game.Instance
	Budget    float64
	Estimator core.Estimator
	Seed      int64
	// NewEstimator, when non-nil, builds a dedicated estimator per tenant —
	// required for stateful estimators (the knowledge-rollback history
	// estimator), which must not share observation state across tenants.
	// When nil, every tenant engine shares Estimator; that is only sound
	// for stateless estimators (fixed rate curves).
	NewEstimator func(tenant string) (core.Estimator, error)
	// Cache is the box-wide decision-cache budget: Cache.Size entries are
	// divided evenly across resident tenants (rebalanced as tenants come
	// and go), each share keyed with Cache's quanta. The zero value
	// disables caching for every tenant.
	Cache core.CacheConfig
	// MaxTenants caps resident tenants; creation beyond it answers 429.
	// Zero selects shard.DefaultMaxTenants.
	MaxTenants int
	// DefaultTenant names the tenant used by requests that carry none;
	// empty selects DefaultTenantID. It is created eagerly by New.
	DefaultTenant string
	// MaxBodyBytes caps request bodies; oversized ones answer 413. Zero
	// selects 1 MiB.
	MaxBodyBytes int64
	// Clock returns the current offset within the audit cycle; defaults to
	// wall-clock time-of-day. Tests inject a fake.
	Clock func() time.Duration
	// Metrics, when non-nil, is the registry served by GET /v1/metrics and
	// shared with the game engines. When nil the server creates a private
	// registry, so the endpoint is always live. Engine and per-tenant
	// server series carry a tenant="<id>" label.
	Metrics *obs.Registry
	// DecisionDeadline bounds each engine decision (see
	// core.Config.DecisionDeadline). The server always enables the engine's
	// graceful degradation, so an expired deadline yields a degraded
	// decision, never a 5xx. Zero means no per-decision deadline.
	DecisionDeadline time.Duration
	// RequestTimeout bounds each request end to end; requests that exceed it
	// are answered 503. Zero disables the per-request timeout.
	RequestTimeout time.Duration
	// Admission configures overload protection for the mutation hot path
	// (/v1/access and /v1/quit): per-tenant token-bucket rate limits, a
	// box-wide inflight cap with a bounded round-robin-fair admission
	// queue, and deadline-aware shedding (503 + computed Retry-After). The
	// zero value admits everything. When Admission.MaxWait is zero it
	// defaults to DecisionDeadline — a queue wait that would eat the whole
	// decision deadline is shed up front. See internal/admit.
	Admission admit.Config
	// SSESolve overrides the engines' online SSE solver (nil means the real
	// game.SolveOnlineSSECtx). Injection seam for fault-injection and for
	// the concurrency tests, which substitute a blocking solver to prove
	// decisions overlap.
	SSESolve core.SSESolveFunc
	// DataDir, when non-empty, enables durability: every tenant gets a
	// write-ahead journal under DataDir/tenants/, each acknowledged
	// state-changing request is journaled before its response is written,
	// and a tenant booting with an existing journal recovers its full cycle
	// state (snapshot + tail replay) bit-identically. Empty keeps the
	// previous in-memory-only behavior.
	DataDir string
	// Fsync selects the journal durability policy (always / interval /
	// none); the zero value is wal.FsyncAlways. Only meaningful with
	// DataDir.
	Fsync wal.FsyncPolicy
	// SnapshotEvery is the automatic snapshot cadence in journal records
	// per tenant; zero selects DefaultSnapshotEvery. Only meaningful with
	// DataDir.
	SnapshotEvery int
	// SegmentBytes overrides the journal segment roll size; zero keeps
	// wal.DefaultSegmentBytes. Only meaningful with DataDir. Drills shrink
	// it to force segment rolls (and snapshot pruning) quickly.
	SegmentBytes int64
	// DiskBudgetBytes, when positive, bounds the box-wide journal footprint:
	// a background compactor (see internal/retain) accounts every resident
	// tenant's journal bytes against this budget and schedules
	// snapshot-then-prune on the tenants holding the most reclaimable bytes.
	// When the box stays over budget and a tenant has nothing left to
	// reclaim, its hot-path mutations answer 507 + Retry-After. Zero
	// disables retention (journals grow until their own snapshot cadence
	// prunes them). Only meaningful with DataDir.
	DiskBudgetBytes int64
	// CompactInterval is the retention compactor's scan cadence; zero
	// selects retain.DefaultInterval. Only meaningful with DiskBudgetBytes.
	CompactInterval time.Duration
	// FollowPrimary, when non-empty, starts the server as a hot standby of
	// the primary at this base URL: every durable tenant is replicated via
	// WAL log shipping (see internal/replica), reads are served from the
	// warm engines, and every mutation answers 503 until POST
	// /v1/admin/promote. Requires DataDir.
	FollowPrimary string
	// FollowerReadyLag is the catch-up threshold for a follower's readiness
	// probe: /v1/readyz answers 200 only once every replicated tenant's lag
	// is at or below this many records (default 0 — fully caught up).
	FollowerReadyLag int
	// Logf receives server log lines (recovery banners, truncation notices,
	// eviction traces). Nil disables logging.
	Logf func(format string, args ...any)
}

// tenantState is one tenant's serving state: its engine plus the HTTP
// layer's per-tenant lifecycle and counters. It rides in shard.Tenant.Data.
//
// Locking hierarchy (acquire top to bottom, never upward):
//
//	lifecycle — RWMutex over this tenant's cycle transitions. Decision
//	            handlers hold the read side for their whole request, so any
//	            number overlap; /v1/cycle/close and /v1/cycle/new hold the
//	            write side, so a rollover waits for in-flight decisions and
//	            no decision ever spans a cycle boundary. Also guards closed.
//	flaggedMu — RWMutex over this tenant's flagged-quitter set only.
//	engine    — core.Engine's own internal locks (optimistic commit).
//
// Per-cycle counters (accesses, alerts, warned, quits) are atomics: they
// are written on the hot path and read only by /v1/status and the close
// handler's seed derivation.
type tenantState struct {
	id         string
	seedOffset int64 // folded into RNG seeds; 0 for the default tenant
	engine     *core.Engine
	est        core.Estimator // this tenant's estimator (for state snapshots)
	met        tenantMetrics
	journal    *wal.Journal // nil when durability is disabled

	lifecycle sync.RWMutex
	closed    bool // cycle closed, awaiting /v1/cycle/new; guarded by lifecycle
	// sealed is set (under lifecycle) when eviction has snapshotted the
	// tenant and closed its journal. A request that resolved this holder
	// before the router unlinked it must not use it — re-resolving rebuilds
	// the tenant from the sealed journal (see resolveTenantLocked).
	sealed bool

	flaggedMu sync.RWMutex
	flagged   map[int]bool

	accesses atomic.Int64
	alerts   atomic.Int64
	warned   atomic.Int64
	quits    atomic.Int64

	walRecords   atomic.Int64 // journal records since the last snapshot
	snapshotting atomic.Bool  // one background snapshot at a time
	lastAppend   atomic.Int64 // unix nanos of the last journal append (retention idleness)

	// repl is the follower-side replication position recovered from the
	// tenant's mirrored journal at build time, and written back by the
	// replication client when it stops (synchronized by the follow
	// controller's WaitGroup; promotion reads it after the clients exit).
	repl replState
}

// replState is a tenant's replication resume position: where its mirrored
// journal ends, the checksum proving it, and whether the warm engine has
// been seeded with applied state.
type replState struct {
	cur     wal.Cursor
	crc     uint32
	records int64
	seeded  bool
}

// Server is the HTTP facade. Create with New and mount via Handler.
type Server struct {
	detector  *alerts.Engine
	cfg       Config
	met       serverMetrics
	typeIdx   map[int]int // taxonomy ID → engine index
	router    *shard.Router
	defaultID string
	maxBody   int64
	ready     atomic.Bool

	// admit is the admission controller gating the mutation hot path; nil
	// when Config.Admission is the zero value (admit everything).
	admit *admit.Controller

	// retain is the background retention compactor bounding journal disk
	// use; nil unless DataDir and DiskBudgetBytes are both set.
	retain *retain.Compactor

	// following is true while the server is a replicating standby; flipped
	// false (permanently) by Promote. Mutation handlers gate on it.
	following atomic.Bool
	follow    atomic.Pointer[followController] // set by StartFollowing

	// journalFault, when set, is fired before every WAL append — the
	// handlers' journalRecord and the engine's decision hook. Testing seam
	// for the journal-failure consistency suite (SetJournalFault).
	journalFault atomic.Pointer[faultinject.Point]
}

// New validates the configuration and builds the server. The default
// tenant is created eagerly, so a single-tenant deployment never pays the
// create-on-first-use path.
func New(cfg Config) (*Server, error) {
	if cfg.World == nil || cfg.Taxonomy == nil {
		return nil, errors.New("server: World and Taxonomy are required")
	}
	if cfg.Instance == nil {
		return nil, errors.New("server: Instance is required")
	}
	if cfg.Estimator == nil && cfg.NewEstimator == nil {
		return nil, errors.New("server: Estimator or NewEstimator is required")
	}
	if len(cfg.TypeIDs) != cfg.Instance.NumTypes() {
		return nil, fmt.Errorf("server: %d type IDs for %d engine types", len(cfg.TypeIDs), cfg.Instance.NumTypes())
	}
	if cfg.DefaultTenant == "" {
		cfg.DefaultTenant = DefaultTenantID
	}
	if !shard.ValidID(cfg.DefaultTenant) {
		return nil, fmt.Errorf("server: invalid default tenant %q", cfg.DefaultTenant)
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	if cfg.FollowPrimary != "" && cfg.DataDir == "" {
		return nil, errors.New("server: following a primary requires a data dir")
	}
	if cfg.DiskBudgetBytes > 0 && cfg.DataDir == "" {
		return nil, errors.New("server: a disk budget requires a data dir")
	}
	detector, err := alerts.NewEngine(cfg.World, cfg.Taxonomy)
	if err != nil {
		return nil, err
	}
	if cfg.Clock == nil {
		cfg.Clock = func() time.Duration {
			now := time.Now()
			return time.Duration(now.Hour())*time.Hour +
				time.Duration(now.Minute())*time.Minute +
				time.Duration(now.Second())*time.Second
		}
	}
	idx := make(map[int]int, len(cfg.TypeIDs))
	for i, id := range cfg.TypeIDs {
		if _, dup := idx[id]; dup {
			return nil, fmt.Errorf("server: duplicate type ID %d", id)
		}
		idx[id] = i
	}
	s := &Server{
		detector:  detector,
		cfg:       cfg,
		met:       newServerMetrics(cfg.Metrics),
		typeIdx:   idx,
		defaultID: cfg.DefaultTenant,
		maxBody:   cfg.MaxBodyBytes,
	}
	if cfg.Admission.Enabled() {
		adm := cfg.Admission
		if adm.MaxWait == 0 {
			// A queue wait that would consume the whole decision deadline
			// leaves the engine nothing but its static fallback rung; shed
			// those requests at the door instead.
			adm.MaxWait = cfg.DecisionDeadline
		}
		if adm.MaxTenants == 0 {
			// Gate bookkeeping is tiny; 4× the resident-tenant cap leaves
			// room for evicted tenants whose clients are still arriving.
			residents := cfg.MaxTenants
			if residents <= 0 {
				residents = shard.DefaultMaxTenants
			}
			adm.MaxTenants = 4 * residents
		}
		if adm.Metrics == nil {
			adm.Metrics = s.met.reg
		}
		ctl, err := admit.New(adm)
		if err != nil {
			return nil, fmt.Errorf("server: admission: %w", err)
		}
		s.admit = ctl
	}
	// Set before the first buildTenant call: follower tenants recover their
	// local mirror instead of opening a writable journal.
	s.following.Store(cfg.FollowPrimary != "")
	s.router, err = shard.NewRouter(shard.Config{
		New:         s.buildTenant,
		MaxTenants:  cfg.MaxTenants,
		CacheBudget: cfg.Cache.Size,
		Metrics:     s.met.reg,
		OnEvict:     s.evictTenant,
		Logf:        cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	if _, _, err := s.router.GetOrCreate(s.defaultID); err != nil {
		return nil, err
	}
	if s.durable() && cfg.DiskBudgetBytes > 0 {
		comp, err := retain.New(retain.Config{
			BudgetBytes: cfg.DiskBudgetBytes,
			Interval:    cfg.CompactInterval,
			List:        s.listRetainTenants,
			Metrics:     s.met.reg,
			Logf:        cfg.Logf,
		})
		if err != nil {
			return nil, fmt.Errorf("server: retention: %w", err)
		}
		s.retain = comp
		comp.Start()
	}
	s.ready.Store(true)
	return s, nil
}

// buildTenant is the shard.Router constructor: one engine + serving state
// per tenant. The default tenant's RNG seed is Config.Seed exactly, so a
// single-tenant deployment is bit-identical (decisions, signal draws, audit
// plans) to the pre-sharding server; other tenants fold in shard.Seed(id).
func (s *Server) buildTenant(id string) (*core.Engine, any, error) {
	var seedOffset int64
	if id != s.defaultID {
		seedOffset = int64(shard.Seed(id))
	}
	est := s.cfg.Estimator
	if s.cfg.NewEstimator != nil {
		var err error
		if est, err = s.cfg.NewEstimator(id); err != nil {
			return nil, nil, fmt.Errorf("server: estimator for tenant %q: %w", id, err)
		}
	}
	t := &tenantState{
		id:         id,
		seedOffset: seedOffset,
		est:        est,
		met:        newTenantMetrics(s.met.reg, id),
		flagged:    make(map[int]bool),
	}
	// The engine's durability hook: enqueue the committed decision on this
	// tenant's journal (the engine calls it under its budget lock, in commit
	// order, and awaits the returned group-commit wait after unlocking).
	// t.journal is set by openTenantJournal before the router publishes the
	// tenant — except on a follower, where it stays nil until Promote opens
	// it; the mutation gate keeps decisions out until then.
	var journalFn core.JournalFunc
	if s.durable() {
		journalFn = func(rec core.DecisionRecord) (func() error, error) {
			j := t.journal
			if j == nil {
				return nil, errors.New("server: tenant journal not open (standby not promoted)")
			}
			if err := s.fireJournalFault(); err != nil {
				return nil, err
			}
			wait, err := j.Append(wal.Record{Kind: wal.KindDecision, Decision: rec})
			if err != nil {
				return nil, err
			}
			s.noteAppend(t)
			return wait, nil
		}
	}
	engine, err := core.NewEngine(core.Config{
		Instance:  s.cfg.Instance,
		Budget:    s.cfg.Budget,
		Estimator: est,
		Policy:    core.PolicyOSSP,
		Rand:      rand.New(rand.NewSource(s.cfg.Seed ^ seedOffset)),
		Cache:     s.cfg.Cache,
		Metrics:   s.met.reg,
		// Every engine series carries the tenant label so one scrape
		// separates the tenants' budget chains, cache effectiveness, and
		// fallback activity.
		MetricLabels: []obs.Label{obs.L("tenant", id)},
		// The serving path never trades availability for optimality: a
		// failed or slow solve degrades down the fallback ladder (cache →
		// last-good θ → static never-warn policy) instead of surfacing as an
		// error to the EMR front end.
		DecisionDeadline: s.cfg.DecisionDeadline,
		Fallback:         true,
		SSESolve:         s.cfg.SSESolve,
		Journal:          journalFn,
	})
	if err != nil {
		return nil, nil, err
	}
	t.engine = engine
	switch {
	case s.durable() && s.following.Load():
		// Follower: recover whatever the mirror already holds so the engine
		// is warm, but leave the journal closed — the replication client owns
		// the directory until Promote.
		if err := s.recoverTenantLocal(t); err != nil {
			return nil, nil, err
		}
	case s.durable():
		// Open (and recover) the tenant's journal before the router publishes
		// the tenant: a restart restores the snapshot + replays the tail, so
		// the first request after boot continues the interrupted cycle.
		if err := s.openTenantJournal(t); err != nil {
			return nil, nil, err
		}
	}
	return engine, t, nil
}

// EnsureTenant creates the tenant if it is not yet resident — the
// pre-provisioning hook cmd/sagserver's -tenants flag uses so benchmarked
// tenants skip the create-on-first-use path.
func (s *Server) EnsureTenant(id string) error {
	if !shard.ValidID(id) {
		return fmt.Errorf("server: invalid tenant ID %q", id)
	}
	_, _, err := s.router.GetOrCreate(id)
	return err
}

// Tenants returns the IDs of the resident tenants, sorted.
func (s *Server) Tenants() []string { return s.router.IDs() }

// SetReady flips the readiness gate served by GET /v1/readyz. The graceful
// shutdown path flips it false before draining so load balancers stop
// routing new traffic while in-flight requests finish.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// CycleSummary returns the default tenant's aggregate view of the current
// cycle.
func (s *Server) CycleSummary() core.CycleSummary {
	t, ok := s.router.Get(s.defaultID)
	if !ok {
		return core.CycleSummary{}
	}
	return t.Engine.Summary()
}

// CycleSummaries returns every resident tenant's aggregate view of its
// current cycle, keyed by tenant ID — the shutdown path logs them so no
// tenant's interrupted cycle is lost silently.
func (s *Server) CycleSummaries() map[string]core.CycleSummary {
	out := make(map[string]core.CycleSummary, s.router.Len())
	s.router.Range(func(t *shard.Tenant) bool {
		out[t.ID] = t.Engine.Summary()
		return true
	})
	return out
}

// AccessRequest is the body of POST /v1/access.
type AccessRequest struct {
	EmployeeID int `json:"employee_id"`
	PatientID  int `json:"patient_id"`
	// Tenant routes the request; empty means the X-SAG-Tenant header or,
	// absent that too, the default tenant.
	Tenant string `json:"tenant,omitempty"`
}

// AccessResponse is the decision for one access request.
type AccessResponse struct {
	// Alert reports whether any detection rule fired.
	Alert bool `json:"alert"`
	// TypeID is the taxonomy type of the alert (0 when no alert).
	TypeID int `json:"type_id,omitempty"`
	// Rules describes the fired rules.
	Rules string `json:"rules,omitempty"`
	// Warn instructs the front end to show the warning dialog.
	Warn bool `json:"warn"`
	// Flagged reports that the employee previously abandoned a warned
	// access; per the paper's §4 discussion such users are always
	// investigated.
	Flagged bool `json:"flagged,omitempty"`
	// RemainingBudget is the post-decision audit budget.
	RemainingBudget float64 `json:"remaining_budget"`
	// Fallback names the degradation rung ("cache", "last_good", "static")
	// when the decision pipeline could not complete in time; empty for a
	// fully solved decision.
	Fallback string `json:"fallback,omitempty"`
}

// QuitRequest is the body of POST /v1/quit: a warned user abandoned the
// access. Quitting reveals the requester (the paper's Theorem 3 remark),
// so the server flags the employee.
type QuitRequest struct {
	EmployeeID int    `json:"employee_id"`
	Tenant     string `json:"tenant,omitempty"`
}

// CloseRequest is the (optional) body of POST /v1/cycle/close; the close
// itself needs no parameters, the body exists to carry the tenant field.
type CloseRequest struct {
	Tenant string `json:"tenant,omitempty"`
}

// CloseResponse is the retrospective audit plan.
type CloseResponse struct {
	Audits    []core.AuditOutcome `json:"audits"`
	TotalCost float64             `json:"total_cost"`
}

// NewCycleRequest starts the next audit cycle.
type NewCycleRequest struct {
	Budget float64 `json:"budget"`
	Tenant string  `json:"tenant,omitempty"`
}

// Status is the GET /v1/status snapshot for one tenant.
type Status struct {
	// Tenant is the tenant this snapshot describes; ActiveTenants counts
	// all resident tenants on the server.
	Tenant          string  `json:"tenant"`
	ActiveTenants   int     `json:"active_tenants"`
	Budget          float64 `json:"budget"`
	RemainingBudget float64 `json:"remaining_budget"`
	Accesses        int     `json:"accesses"`
	Alerts          int     `json:"alerts"`
	Warned          int     `json:"warned"`
	Quits           int     `json:"quits"`
	FlaggedUsers    int     `json:"flagged_users"`
	NumTypes        int     `json:"num_types"`
	// Closed reports that the cycle's audit plan has been drawn: further
	// /v1/access and /v1/cycle/close calls answer 409 until /v1/cycle/new.
	Closed bool `json:"closed"`
	// Decision-cache effectiveness; all zero when caching is disabled.
	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEvictions uint64  `json:"cache_evictions"`
	CacheEntries   int     `json:"cache_entries"`
	CacheHitRate   float64 `json:"cache_hit_rate"`
}

// Handler returns the HTTP handler with all routes mounted. Every route is
// wrapped in the metrics middleware (request count by status, latency
// histogram); /v1/metrics serves the shared registry. The whole API is
// wrapped in the panic-recovery middleware and, when Config.RequestTimeout
// is set, the per-request timeout — except the health probes, which must
// answer even when the API is saturated.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("POST /v1/access", s.instrument("/v1/access", s.handleAccess))
	mux.Handle("POST /v1/quit", s.instrument("/v1/quit", s.handleQuit))
	mux.Handle("POST /v1/cycle/close", s.instrument("/v1/cycle/close", s.handleClose))
	mux.Handle("POST /v1/cycle/new", s.instrument("/v1/cycle/new", s.handleNewCycle))
	mux.Handle("GET /v1/status", s.instrument("/v1/status", s.handleStatus))
	mux.Handle("GET /v1/cycle/summary", s.instrument("/v1/cycle/summary", s.handleCycleSummary))
	mux.Handle("POST /v1/admin/snapshot", s.instrument("/v1/admin/snapshot", s.handleSnapshot))
	mux.Handle("GET /v1/metrics", s.met.reg.Handler())

	var api http.Handler = mux
	if s.cfg.RequestTimeout > 0 {
		api = http.TimeoutHandler(api, s.cfg.RequestTimeout,
			`{"error":"request timed out"}`)
	}
	api = s.recovery(api)

	root := http.NewServeMux()
	root.Handle("GET /v1/healthz", http.HandlerFunc(s.handleHealthz))
	root.Handle("GET /v1/readyz", http.HandlerFunc(s.handleReadyz))
	// The replication stream is unbounded and must not pass through
	// http.TimeoutHandler (which buffers the whole response) or the panic
	// middleware's deferred write; promote rides alongside it so a follower
	// can be promoted even when the API wrapper is saturated.
	root.Handle("GET /v1/replicate", http.HandlerFunc(s.handleReplicate))
	root.Handle("POST /v1/admin/promote", http.HandlerFunc(s.handlePromote))
	root.Handle("/", api)
	return s.retryAfter(root)
}

// RetryAfterMsHeader carries the backoff hint in integral milliseconds.
// Retry-After itself is constrained by RFC 9110 to whole delta-seconds, so
// sub-second hints round up to "1" there; clients wanting the precise hint
// (cmd/sagload does) read this header and fall back to Retry-After.
const RetryAfterMsHeader = "X-SAG-Retry-After-Ms"

// setRetryHeaders stamps both backoff headers for one hint: Retry-After as
// RFC 9110 whole seconds, X-SAG-Retry-After-Ms as precise milliseconds.
func setRetryHeaders(h http.Header, d time.Duration) {
	h.Set("Retry-After", admit.FormatRetryAfter(d))
	h.Set(RetryAfterMsHeader, admit.FormatRetryAfterMs(d))
}

// retryAfterWriter stamps backpressure responses (429 tenant limit, 503
// draining / request timeout / standby, 507 disk pressure) with Retry-After
// and X-SAG-Retry-After-Ms hints so well-behaved clients back off instead of
// hammering. Responses that already carry Retry-After — admission sheds and
// the disk-pressure gate compute per-request hints — keep theirs; the rest
// get this writer's fallback hint, which the admission controller derives
// from the observed queue drain rate (a constant 1s only when admission
// control is disabled and the server has no drain measurements to compute
// from).
type retryAfterWriter struct {
	http.ResponseWriter
	hint func() time.Duration
}

func (w *retryAfterWriter) WriteHeader(code int) {
	switch code {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusInsufficientStorage:
		if w.Header().Get("Retry-After") == "" {
			setRetryHeaders(w.Header(), w.hint())
		}
	}
	w.ResponseWriter.WriteHeader(code)
}

// Unwrap lets http.ResponseController reach the underlying writer, so the
// replication stream's per-write deadlines and flushes work through the wrap.
func (w *retryAfterWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

func (s *Server) retryAfter(h http.Handler) http.Handler {
	hint := func() time.Duration {
		if s.admit != nil {
			return s.admit.RetryHint()
		}
		return time.Second
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		h.ServeHTTP(&retryAfterWriter{ResponseWriter: w, hint: hint}, r)
	})
}

// handleHealthz is the liveness probe: the process is up and serving.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// handleReadyz is the readiness probe: 200 while accepting traffic, 503
// once graceful shutdown has begun (see SetReady). On a follower it reports
// replication catch-up instead: {"status":"following","lag_records":N},
// flipping 200 only once every tenant's lag is at or below
// Config.FollowerReadyLag.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if !s.ready.Load() {
		writeJSON(w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{Status: "draining"})
		return
	}
	if s.following.Load() {
		lag, known := s.follow.Load().maxLag()
		code := http.StatusOK
		if !known || lag > int64(s.cfg.FollowerReadyLag) {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, struct {
			Status     string `json:"status"`
			LagRecords int64  `json:"lag_records"`
		}{Status: "following", LagRecords: lag})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ready"})
}

// rejectIfDiskPressure answers 507 + Retry-After for hot-path mutations of a
// tenant the retention compactor has blocked: the box is over its disk
// budget and this tenant's journal is all live tail, so its writes are pure
// growth. Deliberately NOT applied to /v1/cycle/close, /v1/cycle/new, or
// /v1/admin/snapshot — those are exactly how a blocked tenant's bytes become
// reclaimable again. Runs before admission control so a doomed request
// cannot consume a token or a queue slot.
func (s *Server) rejectIfDiskPressure(w http.ResponseWriter, tenant string) bool {
	if s.retain == nil {
		return false
	}
	ra, blocked := s.retain.Blocked(tenant)
	if !blocked {
		return false
	}
	setRetryHeaders(w.Header(), ra)
	writeJSON(w, http.StatusInsufficientStorage, apiError{
		Error: fmt.Sprintf("disk budget exhausted: tenant %q has no reclaimable journal bytes; close the cycle or retry later", tenant)})
	return true
}

// rejectIfFollowing answers 503 for mutations while the server is a standby;
// reads stay available so operators can inspect catch-up state.
func (s *Server) rejectIfFollowing(w http.ResponseWriter) bool {
	if !s.following.Load() {
		return false
	}
	writeJSON(w, http.StatusServiceUnavailable,
		apiError{Error: "standby follower: mutations are rejected until POST /v1/admin/promote"})
	return true
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

type apiError struct {
	Error string `json:"error"`
}

// decodeJSON decodes a capped request body into v, answering the error
// response (400 for malformed JSON, 413 for an oversized body) itself.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: "invalid JSON: " + err.Error()})
		return false
	}
	return true
}

// decodeJSONLenient decodes a capped request body into v, tolerating a
// malformed (or absent) body — v keeps its zero value — but still answering
// 413 for an oversized one. For endpoints whose body is optional and
// historically junk-tolerant (cycle close, admin snapshot): before this
// helper their raw Decode swallowed the MaxBytesReader error too, silently
// treating an over-limit body as an empty request.
func (s *Server) decodeJSONLenient(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.maxBody)
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				apiError{Error: fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
	}
	return true
}

// admitRequest passes one mutation request through admission control,
// answering the 503 (with the computed Retry-After) itself on a shed.
// Returns ok=false when the response has been written; otherwise release is
// the slot-return hook to defer (nil when admission control is off or the
// tenant ID is malformed — those requests die in resolveTenant with a 400
// and must not occupy admission state).
func (s *Server) admitRequest(w http.ResponseWriter, r *http.Request, tenant string) (release func(), ok bool) {
	if s.admit == nil || !shard.ValidID(tenant) {
		return nil, true
	}
	release, err := s.admit.Admit(r.Context(), tenant)
	if err != nil {
		var shed *admit.ShedError
		if errors.As(err, &shed) {
			setRetryHeaders(w.Header(), shed.RetryAfter)
			writeJSON(w, http.StatusServiceUnavailable, apiError{
				Error: fmt.Sprintf("overloaded (%s): request shed; retry after %ss",
					shed.Reason, admit.FormatRetryAfter(shed.RetryAfter))})
		} else {
			writeJSON(w, http.StatusServiceUnavailable, apiError{Error: err.Error()})
		}
		return nil, false
	}
	return release, true
}

// SetJournalFault installs (or, with nil, removes) a fault-injection point
// fired before every WAL append — both the handlers' journalRecord and the
// engine's decision hook. It exists for the journal-failure consistency
// suite, which proves a failed append leaves in-memory state identical to
// a crash-recovery replay.
func (s *Server) SetJournalFault(p *faultinject.Point) { s.journalFault.Store(p) }

// fireJournalFault triggers the installed fault point, if any.
func (s *Server) fireJournalFault() error {
	if p := s.journalFault.Load(); p != nil {
		return p.Fire()
	}
	return nil
}

// tenantID resolves the tenant a request addresses: the X-SAG-Tenant header
// wins, then the body's tenant field, then the default tenant.
func (s *Server) tenantID(r *http.Request, bodyTenant string) string {
	if h := r.Header.Get(TenantHeader); h != "" {
		return h
	}
	if bodyTenant != "" {
		return bodyTenant
	}
	return s.defaultID
}

// resolveTenant returns the serving state for id, answering the error
// response itself when it cannot: 400 for a malformed ID, 429 when
// create-on-first-use would exceed the tenant cap, 404 for an unknown
// tenant on endpoints that must not create one, 500 for a constructor
// failure.
func (s *Server) resolveTenant(w http.ResponseWriter, id string, create bool) *tenantState {
	if !shard.ValidID(id) {
		writeJSON(w, http.StatusBadRequest,
			apiError{Error: fmt.Sprintf("invalid tenant ID %q: want 1-%d chars of [A-Za-z0-9._-]", id, shard.MaxIDLength)})
		return nil
	}
	tn, ok := s.router.Get(id)
	if !ok && !create && s.durable() && s.tenantOnDisk(id) {
		// A durable tenant that was evicted (or predates this boot) is
		// unloaded, not unknown: restore it from its journal on first use,
		// even on endpoints that never create fresh tenants.
		create = true
	}
	if !ok && !create {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("unknown tenant %q", id)})
		return nil
	}
	if !ok {
		var err error
		tn, _, err = s.router.GetOrCreate(id)
		if err != nil {
			if errors.Is(err, shard.ErrTenantLimit) {
				writeJSON(w, http.StatusTooManyRequests,
					apiError{Error: fmt.Sprintf("tenant limit reached (%d resident); tenant %q not created", s.router.Len(), id)})
				return nil
			}
			writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
			return nil
		}
	}
	t := tn.Data.(*tenantState)
	t.met.requests.Inc()
	return t
}

// resolveTenantLocked resolves id and acquires its lifecycle lock (write
// when write is set, read otherwise), retrying when the tenant was evicted
// between resolution and the lock: the sealed holder is already unlinked
// from the router, so the retry rebuilds the tenant from its journal. On
// success the caller owns the lock (RUnlock/Unlock to release); nil means
// the error response was already written. The bound exists only to turn a
// pathological eviction storm into a retryable 503 instead of a spin.
func (s *Server) resolveTenantLocked(w http.ResponseWriter, id string, create, write bool) *tenantState {
	for attempt := 0; attempt < 16; attempt++ {
		t := s.resolveTenant(w, id, create)
		if t == nil {
			return nil
		}
		if write {
			s.lockLifecycleW(t)
		} else {
			s.lockLifecycleR(t)
		}
		if !t.sealed {
			return t
		}
		if write {
			t.lifecycle.Unlock()
		} else {
			t.lifecycle.RUnlock()
		}
	}
	writeJSON(w, http.StatusServiceUnavailable,
		apiError{Error: fmt.Sprintf("tenant %q is being evicted; retry", id)})
	return nil
}

// lockLifecycleR / lockLifecycleW acquire one tenant's lifecycle lock,
// observing the wait in sag_http_lock_wait_seconds so re-serialization
// regressions show up on dashboards before they show up as latency.
func (s *Server) lockLifecycleR(t *tenantState) {
	t0 := time.Now()
	t.lifecycle.RLock()
	s.met.lockWaitRead.ObserveSince(t0)
}

func (s *Server) lockLifecycleW(t *tenantState) {
	t0 := time.Now()
	t.lifecycle.Lock()
	s.met.lockWaitWrite.ObserveSince(t0)
}

func (s *Server) handleAccess(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfFollowing(w) {
		return
	}
	var req AccessRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	id := s.tenantID(r, req.Tenant)
	if s.rejectIfDiskPressure(w, id) {
		return
	}
	// Admission control runs before any tenant state is touched: a shed
	// request costs the box one token-bucket check, not a solve.
	release, ok := s.admitRequest(w, r, id)
	if !ok {
		return
	}
	if release != nil {
		defer release()
	}
	// Read side only: any number of access decisions overlap; the solve
	// itself runs under the engine's optimistic-commit protocol, not under
	// any server lock.
	t := s.resolveTenantLocked(w, id, true, false)
	if t == nil {
		return
	}
	defer t.lifecycle.RUnlock()
	if t.closed {
		writeJSON(w, http.StatusConflict, apiError{Error: "audit cycle is closed; POST /v1/cycle/new to start the next one"})
		return
	}
	t.accesses.Add(1)
	t.met.accesses.Inc()

	now := s.cfg.Clock()
	alert, fired, err := s.detector.Evaluate(emr.AccessEvent{
		Time:       now,
		EmployeeID: req.EmployeeID,
		PatientID:  req.PatientID,
	})
	if err != nil {
		// The access was counted before it turned out malformed; journal the
		// bare access so a recovered tenant reproduces the same counters.
		if !s.journalRecord(w, t, wal.Record{Kind: wal.KindMeta}) {
			t.rollbackAccess(false, false)
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	resp := AccessResponse{RemainingBudget: t.engine.RemainingBudget()}
	if !fired {
		if !s.journalRecord(w, t, wal.Record{Kind: wal.KindMeta}) {
			t.rollbackAccess(false, false)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	t.alerts.Add(1)
	t.met.alerts.Inc()
	resp.Alert = true
	resp.TypeID = alert.Type
	resp.Rules = alert.Rules.String()

	t.flaggedMu.RLock()
	isFlagged := t.flagged[req.EmployeeID]
	t.flaggedMu.RUnlock()
	if isFlagged {
		// Known quitter: always warn (and the access is investigated out
		// of band — the paper notes this is cheap because quits are rare).
		resp.Warn = true
		resp.Flagged = true
		t.warned.Add(1)
		t.met.warned.Inc()
		if !s.journalRecord(w, t, wal.Record{Kind: wal.KindMeta, Meta: wal.Meta{Alerted: true, Warned: true}}) {
			t.rollbackAccess(true, true)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}

	idx, gamed := s.typeIdx[alert.Type]
	if !gamed {
		// Unmodeled type: logged, never warned (no payoff structure).
		if !s.journalRecord(w, t, wal.Record{Kind: wal.KindMeta, Meta: wal.Meta{Alerted: true}}) {
			t.rollbackAccess(true, false)
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	d, err := t.engine.ProcessContext(r.Context(), core.Alert{Type: idx, Time: now})
	if err != nil {
		// No decision committed (the engine rolls its own state back on a
		// journaling failure), so the request is not acknowledged and the
		// counters must forget it too.
		t.rollbackAccess(true, false)
		// ErrCycleRolledOver cannot fire while we hold the lifecycle read
		// lock, but embedders drive the engine directly too — map it to the
		// same conflict the closed-cycle guard answers.
		if errors.Is(err, core.ErrCycleRolledOver) {
			writeJSON(w, http.StatusConflict, apiError{Error: err.Error()})
			return
		}
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	resp.Warn = d.Warned
	resp.RemainingBudget = d.BudgetAfter
	if d.Fallback.Degraded() {
		resp.Fallback = d.Fallback.String()
	}
	if d.Warned {
		t.warned.Add(1)
		t.met.warned.Inc()
	}
	writeJSON(w, http.StatusOK, resp)
}

// rollbackAccess undoes the per-cycle counter increments of an access whose
// journal record could not be written: the request was answered 5xx, not
// acknowledged, so the atomics — which recovery rebuilds from the journal —
// must not remember it. The cumulative t.met counters deliberately keep
// counting attempts; only recovered state is rolled back.
func (t *tenantState) rollbackAccess(alerted, warned bool) {
	t.accesses.Add(-1)
	if alerted {
		t.alerts.Add(-1)
	}
	if warned {
		t.warned.Add(-1)
	}
}

func (s *Server) handleQuit(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfFollowing(w) {
		return
	}
	var req QuitRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	id := s.tenantID(r, req.Tenant)
	if s.rejectIfDiskPressure(w, id) {
		return
	}
	release, ok := s.admitRequest(w, r, id)
	if !ok {
		return
	}
	if release != nil {
		defer release()
	}
	t := s.resolveTenantLocked(w, id, true, false)
	if t == nil {
		return
	}
	defer t.lifecycle.RUnlock()
	if req.EmployeeID < 0 || req.EmployeeID >= len(s.cfg.World.Employees) {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("unknown employee %d", req.EmployeeID)})
		return
	}
	// Idempotent: a quit reveals the requester once. Repeating the report
	// re-confirms the flag but must not inflate the quit counter (or the
	// flagged gauge) — front ends retry.
	t.flaggedMu.Lock()
	first := !t.flagged[req.EmployeeID]
	if first {
		t.flagged[req.EmployeeID] = true
		t.met.flagged.Set(float64(len(t.flagged)))
	}
	t.flaggedMu.Unlock()
	if first {
		t.quits.Add(1)
		t.met.quits.Inc()
		// Only the first report changes state; repeats are idempotent on
		// replay too (the flag check above) so they need no record.
		if !s.journalRecord(w, t, wal.Record{Kind: wal.KindQuit, Employee: req.EmployeeID}) {
			// The quit never became durable: the live server answered 500,
			// so memory must forget the flag exactly as a crash-recovered
			// replay would never learn it. (A concurrent access may have
			// observed the flag in its transient window — the same exposure
			// an acknowledged-then-crashed quit already has.)
			t.flaggedMu.Lock()
			delete(t.flagged, req.EmployeeID)
			t.met.flagged.Set(float64(len(t.flagged)))
			t.flaggedMu.Unlock()
			t.quits.Add(-1)
			return
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Flagged bool `json:"flagged"`
	}{Flagged: true})
}

func (s *Server) handleClose(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfFollowing(w) {
		return
	}
	// The close itself takes no parameters; the body is decoded only for
	// its optional tenant field and malformed bodies are deliberately
	// tolerated (callers historically POST empty or junk bodies here) —
	// but an oversized body is still a hard 413, not an empty request.
	var req CloseRequest
	if !s.decodeJSONLenient(w, r, &req) {
		return
	}
	// Closing must not create: an unknown tenant has no cycle to close.
	// Write side: wait for this tenant's in-flight decisions, then freeze
	// the cycle. A second close is a conflict — re-sampling would draw a
	// fresh audit plan (and re-charge its total) for a cycle that already
	// has one.
	t := s.resolveTenantLocked(w, s.tenantID(r, req.Tenant), false, true)
	if t == nil {
		return
	}
	defer t.lifecycle.Unlock()
	if t.closed {
		writeJSON(w, http.StatusConflict, apiError{Error: "audit cycle already closed; POST /v1/cycle/new to start the next one"})
		return
	}
	rng := rand.New(rand.NewSource(s.cfg.Seed ^ t.seedOffset ^ t.accesses.Load()))
	audits, total := t.engine.CloseCycle(rng)
	t.closed = true
	// Durable before acknowledged: if the record is lost to a crash the
	// client never saw the plan, recovery reopens the cycle, and a retried
	// close re-derives the identical plan (same access count → same seed).
	if !s.journalRecord(w, t, wal.Record{Kind: wal.KindCycleClose}) {
		t.closed = false
		return
	}
	writeJSON(w, http.StatusOK, CloseResponse{Audits: audits, TotalCost: total})
}

func (s *Server) handleNewCycle(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfFollowing(w) {
		return
	}
	var req NewCycleRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	t := s.resolveTenantLocked(w, s.tenantID(r, req.Tenant), true, true)
	if t == nil {
		return
	}
	defer t.lifecycle.Unlock()
	if err := core.ValidateBudget(req.Budget); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	// Journal-first: unlike a close (whose pre-state is one boolean) the
	// rollover has no cheap rollback — NewCycle discards the old cycle's
	// decisions, fallback state, and cache. Making the record durable
	// before mutating anything means a failed append leaves the old cycle
	// fully intact, and with the budget pre-validated the engine call below
	// cannot fail after the record is on disk.
	if !s.journalRecord(w, t, wal.Record{Kind: wal.KindCycleOpen, Budget: req.Budget}) {
		return
	}
	if err := t.engine.NewCycle(req.Budget); err != nil {
		// Unreachable for a validated budget; if it ever fires the journal
		// holds a cycle-open that memory does not, so say so loudly.
		s.logf("server: tenant %s: cycle open journaled but engine rollover failed: %v", t.id, err)
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	// Reset every per-cycle counter. Flagged users deliberately survive the
	// rollover: a quit reveals the requester for good (paper §4).
	t.closed = false
	t.accesses.Store(0)
	t.alerts.Store(0)
	t.warned.Store(0)
	t.quits.Store(0)
	writeJSON(w, http.StatusOK, struct {
		Budget float64 `json:"budget"`
	}{Budget: req.Budget})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	// GET carries no body; the query parameter stands in for it.
	t := s.resolveTenantLocked(w, s.tenantID(r, r.URL.Query().Get("tenant")), false, false)
	if t == nil {
		return
	}
	closed := t.closed
	t.lifecycle.RUnlock()
	t.flaggedMu.RLock()
	flagged := len(t.flagged)
	t.flaggedMu.RUnlock()
	cs := t.engine.CacheStats()
	writeJSON(w, http.StatusOK, Status{
		Tenant:          t.id,
		ActiveTenants:   s.router.Len(),
		Budget:          t.engine.InitialBudget(),
		RemainingBudget: t.engine.RemainingBudget(),
		Accesses:        int(t.accesses.Load()),
		Alerts:          int(t.alerts.Load()),
		Warned:          int(t.warned.Load()),
		Quits:           int(t.quits.Load()),
		FlaggedUsers:    flagged,
		NumTypes:        s.cfg.Instance.NumTypes(),
		Closed:          closed,
		CacheHits:       cs.Hits,
		CacheMisses:     cs.Misses,
		CacheEvictions:  cs.Evictions,
		CacheEntries:    cs.Entries,
		CacheHitRate:    cs.HitRate(),
	})
}
