package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/replica"
	"github.com/auditgames/sag/internal/shard"
	"github.com/auditgames/sag/internal/wal"
)

// discoverInterval is how often a follower polls the primary's tenant
// listing for tenants it is not replicating yet.
const discoverInterval = 2 * time.Second

// followController owns a follower's replication clients: one goroutine per
// tenant plus a discovery loop, all stopped together by Promote (or by the
// context StartFollowing was given).
type followController struct {
	s      *Server
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu      sync.Mutex
	clients map[string]*replica.Client // nil while the tenant is starting
}

// StartFollowing launches replication against Config.FollowPrimary:
// locally-present tenants resume from their mirrored journals immediately
// (even while the primary is unreachable), and a discovery loop picks up new
// tenants from the primary's listing. It returns an error when the server
// was not configured as a follower. Cancel ctx to stop replicating without
// promoting (shutdown).
func (s *Server) StartFollowing(ctx context.Context) error {
	if s.cfg.FollowPrimary == "" {
		return errors.New("server: not configured with a primary to follow")
	}
	if !s.following.Load() {
		return errors.New("server: already promoted")
	}
	fctx, cancel := context.WithCancel(ctx)
	fc := &followController{
		s:       s,
		ctx:     fctx,
		cancel:  cancel,
		clients: make(map[string]*replica.Client),
	}
	if !s.follow.CompareAndSwap(nil, fc) {
		cancel()
		return errors.New("server: already following")
	}
	for _, id := range s.onDiskTenantIDs() {
		fc.ensureTenant(id)
	}
	fc.wg.Add(1)
	go func() {
		defer fc.wg.Done()
		fc.discoverLoop()
	}()
	s.logf("server: following primary %s (%d local tenants resumed)",
		s.cfg.FollowPrimary, len(fc.snapshotClients()))
	return nil
}

// stop cancels every replication goroutine and waits for them to exit.
func (fc *followController) stop() {
	fc.cancel()
	fc.wg.Wait()
}

// discoverLoop polls the primary's tenant listing and starts replication for
// tenants this follower does not know yet.
func (fc *followController) discoverLoop() {
	fc.discoverOnce()
	t := time.NewTicker(discoverInterval)
	defer t.Stop()
	for {
		select {
		case <-fc.ctx.Done():
			return
		case <-t.C:
			fc.discoverOnce()
		}
	}
}

// tenantListing is the JSON body of GET /v1/replicate without a tenant.
type tenantListing struct {
	Tenants []string `json:"tenants"`
}

func (fc *followController) discoverOnce() {
	ctx, cancel := context.WithTimeout(fc.ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fc.s.cfg.FollowPrimary+"/v1/replicate", nil)
	if err != nil {
		return
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return // primary unreachable; per-tenant clients keep retrying too
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return
	}
	var listing tenantListing
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		return
	}
	for _, id := range listing.Tenants {
		if shard.ValidID(id) {
			fc.ensureTenant(id)
		}
	}
}

// ensureTenant starts (at most once) the replication goroutine for id.
func (fc *followController) ensureTenant(id string) {
	fc.mu.Lock()
	if _, ok := fc.clients[id]; ok {
		fc.mu.Unlock()
		return
	}
	fc.clients[id] = nil // reserve before the goroutine builds the client
	fc.mu.Unlock()
	fc.wg.Add(1)
	go func() {
		defer fc.wg.Done()
		fc.runTenant(id)
	}()
}

// runTenant replicates one tenant until the controller stops. The local
// tenantState is swapped out on re-seed, so the apply callback always loads
// the current one through the holder.
func (fc *followController) runTenant(id string) {
	s := fc.s
	tn, _, err := s.router.GetOrCreate(id)
	if err != nil {
		s.logf("server: follower: tenant %s: %v", id, err)
		fc.mu.Lock()
		delete(fc.clients, id) // discovery retries later
		fc.mu.Unlock()
		return
	}
	var holder atomicTenant
	holder.store(tn.Data.(*tenantState))
	t := holder.load()
	cl := replica.NewClient(replica.ClientConfig{
		Primary: s.cfg.FollowPrimary,
		Tenant:  id,
		Dir:     s.tenantWALDir(id),
		Apply: func(rec wal.Record, _ wal.Cursor) error {
			return s.applyReplicated(holder.load(), rec)
		},
		Reset: func() error {
			fresh, err := s.reseedTenant(id)
			if err != nil {
				return err
			}
			holder.store(fresh)
			return nil
		},
		Cursor:  t.repl.cur,
		LastCRC: t.repl.crc,
		Records: t.repl.records,
		Seeded:  t.repl.seeded,
		Metrics: s.met.reg,
		Logf:    s.cfg.Logf,
	})
	fc.mu.Lock()
	fc.clients[id] = cl
	fc.mu.Unlock()
	_ = cl.Run(fc.ctx)
	// Write the final position back so Promote (which runs after wg.Wait,
	// so it observes this) can cross-check the reopened journal against
	// what was actually applied.
	st := cl.State()
	cur := holder.load()
	cur.repl = replState{cur: st.Cursor, crc: st.LastCRC, records: st.Records, seeded: st.Seeded}
}

// snapshotClients returns the current client set.
func (fc *followController) snapshotClients() map[string]*replica.Client {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	out := make(map[string]*replica.Client, len(fc.clients))
	for id, cl := range fc.clients {
		out[id] = cl
	}
	return out
}

// maxLag reports the worst per-tenant replication lag in records. known is
// false until every replicated tenant has heard at least one heartbeat (lag
// is then unknown, not zero) or when no tenant is replicating yet. Nil-safe:
// a follower that has not started replication reports unknown.
func (fc *followController) maxLag() (lag int64, known bool) {
	if fc == nil {
		return 0, false
	}
	clients := fc.snapshotClients()
	if len(clients) == 0 {
		return 0, false
	}
	for _, cl := range clients {
		if cl == nil {
			return 0, false // still starting
		}
		l, ok := cl.Lag()
		if !ok {
			return 0, false
		}
		if l > lag {
			lag = l
		}
	}
	return lag, true
}

// recoverTenantLocal replays a follower tenant's mirrored journal into its
// warm engine without opening the journal for writing — the replication
// client owns the directory until promotion. The recovered end position
// seeds the client's resume cursor.
func (s *Server) recoverTenantLocal(t *tenantState) error {
	rec, err := wal.Recover(s.tenantWALDir(t.id))
	if err != nil {
		return fmt.Errorf("server: recovering follower tenant %q: %w", t.id, err)
	}
	if rec.Truncated {
		s.logf("server: follower tenant %s: truncated mirrored tail of %s at offset %d",
			t.id, rec.TruncatedSegment, rec.TruncatedOffset)
	}
	if err := s.replayTenant(t, rec); err != nil {
		return fmt.Errorf("server: recovering follower tenant %q: %w", t.id, err)
	}
	t.repl = replState{
		cur:     rec.End,
		crc:     rec.LastCRC,
		records: int64(rec.Records),
		seeded:  rec.Records > 0,
	}
	if rec.Records > 0 {
		s.logf("server: follower tenant %s: resumed mirror at %v (%d records)",
			t.id, rec.End, rec.Records)
	}
	return nil
}

// applyReplicated replays one replicated record onto the live tenant under
// the same locking the HTTP handlers use: lifecycle transitions (snapshot
// seed, cycle open/close) take the write side, everything else the read side
// — so status reads on the follower never observe a half-applied rollover.
func (s *Server) applyReplicated(t *tenantState, rec wal.Record) error {
	switch rec.Kind {
	case wal.KindSnapshot:
		s.lockLifecycleW(t)
		defer t.lifecycle.Unlock()
		return s.restoreSnapshot(t, rec.Snapshot)
	case wal.KindCycleOpen, wal.KindCycleClose:
		s.lockLifecycleW(t)
		defer t.lifecycle.Unlock()
		return s.applyRecord(t, rec)
	default:
		s.lockLifecycleR(t)
		defer t.lifecycle.RUnlock()
		return s.applyRecord(t, rec)
	}
}

// reseedTenant discards a follower tenant's local state — engine and
// mirrored journal — ahead of a snapshot re-seed, and returns the fresh
// tenant. Called by the replication client when its history has diverged
// from the primary's retained journal.
func (s *Server) reseedTenant(id string) (*tenantState, error) {
	s.router.Remove(id) // evict hook is a no-op: follower tenants hold no journal
	if err := os.RemoveAll(s.tenantWALDir(id)); err != nil {
		return nil, fmt.Errorf("server: wiping tenant %q for re-seed: %w", id, err)
	}
	tn, _, err := s.router.GetOrCreate(id)
	if err != nil {
		return nil, err
	}
	s.logf("server: follower tenant %s: local state discarded for re-seed", id)
	return tn.Data.(*tenantState), nil
}

// Promote turns the standby into a primary: stop every replication client,
// reopen each tenant's mirrored journal for writing, and lift the mutation
// gate. A tenant whose journal cannot be reopened — or whose on-disk record
// count does not match what was applied — is unloaded instead of served
// with forked history; the first request after promotion rebuilds it from
// disk through the normal recovery path. Returns the number of tenants
// promoted with open journals.
func (s *Server) Promote() (int, error) {
	if !s.following.Load() {
		return 0, errors.New("server: not a standby")
	}
	if fc := s.follow.Load(); fc != nil {
		fc.stop()
	}
	var tenants []*tenantState
	s.router.Range(func(tn *shard.Tenant) bool {
		tenants = append(tenants, tn.Data.(*tenantState))
		return true
	})
	n := 0
	var firstErr error
	for _, t := range tenants {
		j, rec, err := wal.Open(s.tenantWALDir(t.id), wal.Options{
			Fsync:        s.cfg.Fsync,
			SegmentBytes: s.cfg.SegmentBytes,
			Metrics:      s.met.reg,
			Labels:       []obs.Label{obs.L("tenant", t.id)},
		})
		if err == nil && int64(rec.Records) != t.repl.records {
			_ = j.Close()
			err = fmt.Errorf("journal holds %d records, %d were applied", rec.Records, t.repl.records)
		}
		if err != nil {
			s.logf("server: promote: tenant %s unloaded: %v", t.id, err)
			if firstErr == nil {
				firstErr = fmt.Errorf("server: promoting tenant %q: %w", t.id, err)
			}
			s.router.Remove(t.id)
			continue
		}
		t.journal = j
		t.walRecords.Store(int64(len(rec.Tail)))
		n++
	}
	s.following.Store(false)
	s.logf("server: promoted to primary (%d tenants)", n)
	return n, firstErr
}

// onDiskTenantIDs lists tenants with journal state under the data dir.
func (s *Server) onDiskTenantIDs() []string {
	entries, err := os.ReadDir(filepath.Join(s.cfg.DataDir, "tenants"))
	if err != nil {
		return nil
	}
	var ids []string
	for _, e := range entries {
		id, ok := strings.CutPrefix(e.Name(), "t-")
		if ok && e.IsDir() && shard.ValidID(id) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// durableTenantIDs lists every tenant a follower could replicate: resident
// tenants with open journals plus unloaded ones with on-disk state.
func (s *Server) durableTenantIDs() []string {
	seen := make(map[string]bool)
	s.router.Range(func(tn *shard.Tenant) bool {
		t := tn.Data.(*tenantState)
		if t.journal != nil {
			seen[t.id] = true
		}
		return true
	})
	for _, id := range s.onDiskTenantIDs() {
		seen[id] = true
	}
	ids := make([]string, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// handleReplicate is GET /v1/replicate: without a tenant parameter, the JSON
// listing a follower's discovery loop polls; with one, the unbounded
// log-shipping stream (see internal/replica). Mounted outside the timeout
// and recovery middleware — the response must not be buffered.
func (s *Server) handleReplicate(w http.ResponseWriter, r *http.Request) {
	if !s.durable() {
		writeJSON(w, http.StatusBadRequest,
			apiError{Error: "durability is disabled (server started without a data dir)"})
		return
	}
	if s.following.Load() {
		writeJSON(w, http.StatusServiceUnavailable,
			apiError{Error: "standby follower cannot serve replication; promote it first"})
		return
	}
	id := r.URL.Query().Get("tenant")
	if id == "" {
		writeJSON(w, http.StatusOK, tenantListing{Tenants: s.durableTenantIDs()})
		return
	}
	t := s.resolveTenant(w, id, false)
	if t == nil {
		return
	}
	if t.journal == nil {
		writeJSON(w, http.StatusInternalServerError,
			apiError{Error: fmt.Sprintf("tenant %q has no open journal", id)})
		return
	}
	replica.ServeStream(w, r, replica.StreamConfig{Source: t.journal, Logf: s.cfg.Logf})
}

// handlePromote is POST /v1/admin/promote: turn this standby into the
// primary. 409 when the server is not a standby; the body reports how many
// tenants were promoted with open journals.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if !s.following.Load() {
		writeJSON(w, http.StatusConflict, apiError{Error: "server is not a standby"})
		return
	}
	n, err := s.Promote()
	if err != nil {
		// Promotion still happened — the gate is lifted — but some tenant
		// was unloaded; surface that to the operator.
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Promoted int `json:"promoted"`
	}{Promoted: n})
}

// atomicTenant is a swap-safe reference to a follower tenant's current
// serving state (re-seed replaces the tenantState wholesale).
type atomicTenant struct {
	mu sync.Mutex
	t  *tenantState
}

func (a *atomicTenant) store(t *tenantState) {
	a.mu.Lock()
	a.t = t
	a.mu.Unlock()
}

func (a *atomicTenant) load() *tenantState {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.t
}
