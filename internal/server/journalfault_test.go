package server

import (
	"io/fs"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/auditgames/sag/internal/faultinject"
)

// The journal-failure consistency suite: every mutation handler is driven
// into a WAL-append failure (via the Server's journal fault point) and the
// server's post-failure in-memory state must be byte-identical to what a
// crash-recovery replay of the same directory produces — i.e. a 500 means
// "this request never happened", in memory exactly as on disk.
// (postRaw, the byte-compare helper, lives in replication_test.go.)

// copyTree clones a data dir so a "crash-recovered" server can boot from the
// exact bytes the live server had durable, without sharing file handles.
func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.WalkDir(src, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		blob, err := os.ReadFile(p)
		if err != nil {
			return err
		}
		return os.WriteFile(target, blob, 0o644)
	})
	if err != nil {
		t.Fatalf("copying data dir: %v", err)
	}
}

// alwaysFail is a fault point that fails every journal append.
func alwaysFail() *faultinject.Point {
	return faultinject.New("journal", faultinject.Config{Seed: 1, ErrorRate: 1})
}

func TestJournalFaultLeavesRecoverableState(t *testing.T) {
	scenarios := []struct {
		name string
		// prep runs with the fault disarmed (extra state some scenarios need).
		prep func(t *testing.T, ts *httptest.Server, bgE, bgP int)
		// hit issues the request whose journal append will fail.
		hit func(t *testing.T, ts *httptest.Server, bgE, bgP int) int
	}{
		{
			// Gamed alert: the engine commits, journals through its hook,
			// and must roll the decision (budget, decision list, signal
			// draw) back when the append fails.
			name: "decision",
			hit: func(t *testing.T, ts *httptest.Server, bgE, bgP int) int {
				return post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
			},
		},
		{
			// Benign access: the handler counted it before journaling the
			// bare-access meta record.
			name: "benign-meta",
			hit: func(t *testing.T, ts *httptest.Server, bgE, bgP int) int {
				return post(t, ts, "/v1/access", AccessRequest{EmployeeID: 0, PatientID: 0}, nil)
			},
		},
		{
			// Malformed access (unknown employee): counted, then journaled,
			// then answered 400 — the journal failure must win and the
			// count must roll back.
			name: "malformed-meta",
			hit: func(t *testing.T, ts *httptest.Server, bgE, bgP int) int {
				return post(t, ts, "/v1/access", AccessRequest{EmployeeID: 1 << 20, PatientID: 0}, nil)
			},
		},
		{
			// Flagged quitter's alert: accesses, alerts, and warned all
			// increment before the meta record is appended.
			name: "flagged-meta",
			prep: func(t *testing.T, ts *httptest.Server, bgE, bgP int) {
				if code := post(t, ts, "/v1/quit", QuitRequest{EmployeeID: bgE}, nil); code != http.StatusOK {
					t.Fatalf("prep quit status %d", code)
				}
			},
			hit: func(t *testing.T, ts *httptest.Server, bgE, bgP int) int {
				return post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
			},
		},
		{
			// First quit: flag map, flagged gauge, and quit counter mutate
			// before the KindQuit record.
			name: "quit",
			hit: func(t *testing.T, ts *httptest.Server, bgE, bgP int) int {
				return post(t, ts, "/v1/quit", QuitRequest{EmployeeID: 5}, nil)
			},
		},
		{
			// Cycle close: the plan was drawn and closed was set.
			name: "close",
			hit: func(t *testing.T, ts *httptest.Server, bgE, bgP int) int {
				return post(t, ts, "/v1/cycle/close", CloseRequest{}, nil)
			},
		},
		{
			// Cycle open: journaled first, so a failed append must leave the
			// old cycle (decisions, counters, budget chain) fully intact.
			name: "new-cycle",
			hit: func(t *testing.T, ts *httptest.Server, bgE, bgP int) int {
				return post(t, ts, "/v1/cycle/new", NewCycleRequest{Budget: 40}, nil)
			},
		},
	}

	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			srv, ts, bgE, bgP := durableFixture(t, dir, nil)

			// Warm traffic across record kinds, fault disarmed.
			for i := 0; i < 4; i++ {
				if code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusOK {
					t.Fatalf("warm access status %d", code)
				}
			}
			post(t, ts, "/v1/access", AccessRequest{EmployeeID: 0, PatientID: 0}, nil)
			if code := post(t, ts, "/v1/quit", QuitRequest{EmployeeID: 3}, nil); code != http.StatusOK {
				t.Fatalf("warm quit status %d", code)
			}
			if sc.prep != nil {
				sc.prep(t, ts, bgE, bgP)
			}

			srv.SetJournalFault(alwaysFail())
			if code := sc.hit(t, ts, bgE, bgP); code != http.StatusInternalServerError {
				t.Fatalf("faulted %s request: status %d, want 500", sc.name, code)
			}
			srv.SetJournalFault(nil)

			liveStatus := mustGetRaw(t, ts, "/v1/status")
			liveSummary := mustGetRaw(t, ts, "/v1/cycle/summary")

			// Boot a "crash-recovered" twin from a byte copy of the data dir
			// (no clean shutdown: replay is all it gets).
			dir2 := t.TempDir()
			copyTree(t, dir, dir2)
			_, ts2, _, _ := durableFixture(t, dir2, nil)

			if got := mustGetRaw(t, ts2, "/v1/status"); got != liveStatus {
				t.Fatalf("post-failure status diverges from crash replay:\nlive:      %s\nrecovered: %s", liveStatus, got)
			}
			if got := mustGetRaw(t, ts2, "/v1/cycle/summary"); got != liveSummary {
				t.Fatalf("post-failure summary diverges from crash replay:\nlive:      %s\nrecovered: %s", liveSummary, got)
			}

			// Drive both servers forward identically: every response — and
			// in particular every signal draw — must stay byte-identical,
			// proving the rollback left the RNG stream aligned, not just
			// the counters.
			for i := 0; i < 3; i++ {
				req := AccessRequest{EmployeeID: bgE, PatientID: bgP}
				c1, r1, _ := postRaw(t, ts, "/v1/access", req)
				c2, r2, _ := postRaw(t, ts2, "/v1/access", req)
				if c1 != c2 || r1 != r2 {
					t.Fatalf("post-rollback access %d diverges:\nlive:      %d %s\nrecovered: %d %s", i, c1, r1, c2, r2)
				}
			}
			// The audit plan is the cycle's final word: its sampling seed
			// folds in the access count, so it diverges loudly if any
			// rolled-back request was half-remembered.
			c1, p1, _ := postRaw(t, ts, "/v1/cycle/close", CloseRequest{})
			c2, p2, _ := postRaw(t, ts2, "/v1/cycle/close", CloseRequest{})
			if c1 != c2 || p1 != p2 {
				t.Fatalf("audit plans diverge:\nlive:      %d %s\nrecovered: %d %s", c1, p1, c2, p2)
			}
		})
	}
}

// mustGetRaw is getRaw asserting 200.
func mustGetRaw(t *testing.T, ts *httptest.Server, path string) string {
	t.Helper()
	code, raw := getRaw(t, ts, path)
	if code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, code, raw)
	}
	return raw
}

// TestJournalFaultRollbackMetric: a rolled-back decision is observable.
func TestJournalFaultRollbackMetric(t *testing.T) {
	dir := t.TempDir()
	srv, ts, bgE, bgP := durableFixture(t, dir, nil)
	srv.SetJournalFault(alwaysFail())
	if code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusInternalServerError {
		t.Fatalf("faulted decision: status %d, want 500", code)
	}
	srv.SetJournalFault(nil)
	body := mustGetRaw(t, ts, "/v1/metrics")
	if !strings.Contains(body, "sag_engine_journal_rollbacks_total") {
		t.Fatal("metrics export missing sag_engine_journal_rollbacks_total")
	}
}

// TestJournalFaultIntermittent hammers one tenant with a 30% append failure
// rate and then requires the surviving state to equal its own crash replay —
// the accumulated effect of many interleaved rollbacks must still be exactly
// the journal's contents.
func TestJournalFaultIntermittent(t *testing.T) {
	dir := t.TempDir()
	srv, ts, bgE, bgP := durableFixture(t, dir, nil)
	srv.SetJournalFault(faultinject.New("journal", faultinject.Config{Seed: 7, ErrorRate: 0.3}))
	oks, fails := 0, 0
	for i := 0; i < 40; i++ {
		var code int
		switch i % 4 {
		case 0, 1:
			code = post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
		case 2:
			code = post(t, ts, "/v1/access", AccessRequest{EmployeeID: 0, PatientID: 0}, nil)
		case 3:
			code = post(t, ts, "/v1/quit", QuitRequest{EmployeeID: i % 7}, nil)
		}
		switch code {
		case http.StatusOK:
			oks++
		case http.StatusInternalServerError:
			fails++
		default:
			t.Fatalf("request %d: unexpected status %d", i, code)
		}
	}
	if oks == 0 || fails == 0 {
		t.Fatalf("want a mix of successes and injected failures, got %d ok / %d failed", oks, fails)
	}
	srv.SetJournalFault(nil)

	liveStatus := mustGetRaw(t, ts, "/v1/status")
	liveSummary := mustGetRaw(t, ts, "/v1/cycle/summary")
	dir2 := t.TempDir()
	copyTree(t, dir, dir2)
	_, ts2, _, _ := durableFixture(t, dir2, nil)
	if got := mustGetRaw(t, ts2, "/v1/status"); got != liveStatus {
		t.Fatalf("status diverges after intermittent faults:\nlive:      %s\nrecovered: %s", liveStatus, got)
	}
	if got := mustGetRaw(t, ts2, "/v1/cycle/summary"); got != liveSummary {
		t.Fatalf("summary diverges after intermittent faults:\nlive:      %s\nrecovered: %s", liveSummary, got)
	}
	c1, p1, _ := postRaw(t, ts, "/v1/cycle/close", CloseRequest{})
	c2, p2, _ := postRaw(t, ts2, "/v1/cycle/close", CloseRequest{})
	if c1 != c2 || p1 != p2 {
		t.Fatalf("audit plans diverge after intermittent faults:\nlive:      %d %s\nrecovered: %d %s", c1, p1, c2, p2)
	}
}
