package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/sim"
)

// fuzzServer builds one small multi-tenant server shared by every fuzz
// iteration: a tight tenant cap so the fuzzer exercises the 429 path, the
// cache enabled so rebalancing runs, and a canned instant solver so
// iterations are microseconds, not LP solves.
func fuzzServer(f *testing.F) http.Handler {
	f.Helper()
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 5, Employees: 30, Patients: 100, Departments: 4})
	if err != nil {
		f.Fatal(err)
	}
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		f.Fatal(err)
	}
	srv, err := New(Config{
		World:    world,
		Taxonomy: alerts.NewTable1Taxonomy(),
		TypeIDs:  sim.AllTable1TypeIDs(),
		Instance: inst,
		Budget:   50,
		Estimator: core.EstimatorFunc(func(time.Duration) ([]float64, error) {
			return []float64{196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27}, nil
		}),
		Seed:       1,
		Cache:      core.CacheConfig{Size: 16, BudgetQuantum: 1e6, RateQuantum: 1},
		MaxTenants: 4,
		Clock:      func() time.Duration { return 9 * time.Hour },
		SSESolve: func(ctx context.Context, inst *game.Instance, budget float64, futures []dist.Poisson) (*game.Result, error) {
			return &game.Result{BestType: -1, Coverage: make([]float64, inst.NumTypes())}, nil
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	return srv.Handler()
}

// fuzzRoundTrip drives one fuzzed request through the handler and asserts
// the two invariants every response must hold: the server never panics
// (a panic fails the fuzz run via the recovery middleware being bypassed
// in-process — ServeHTTP panics propagate to the test) and every response
// body is well-formed JSON with a sane status code.
func fuzzRoundTrip(t *testing.T, h http.Handler, method, path, tenant string, body []byte) {
	t.Helper()
	req := httptest.NewRequest(method, path, bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	// Header values with control bytes cannot arise from net/http's reader;
	// setting them via the map would fuzz the httptest plumbing, not the
	// server. Restrict the fuzzed header to printable bytes and let the
	// tenant validation see everything else via the body field.
	if tenant != "" && !strings.ContainsFunc(tenant, func(r rune) bool { return r < 0x20 || r == 0x7f }) {
		req.Header.Set(TenantHeader, tenant)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code < 200 || rec.Code > 599 {
		t.Fatalf("status %d outside valid range", rec.Code)
	}
	if !json.Valid(rec.Body.Bytes()) {
		t.Fatalf("status %d: response body is not JSON: %q", rec.Code, rec.Body.String())
	}
	if rec.Code >= 400 {
		var e apiError
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil || e.Error == "" {
			t.Fatalf("status %d: error response lacks an \"error\" field: %q", rec.Code, rec.Body.String())
		}
	}
}

// FuzzDecisionHandler fuzzes POST /v1/access across tenants: malformed
// JSON, out-of-range IDs, unknown and invalid tenants, oversized bodies.
func FuzzDecisionHandler(f *testing.F) {
	h := fuzzServer(f)
	f.Add("", []byte(`{"employee_id":30,"patient_id":100}`))
	f.Add("t1", []byte(`{"employee_id":0,"patient_id":0}`))
	f.Add("", []byte(`{"employee_id":30,"patient_id":100,"tenant":"t2"}`))
	f.Add("bad tenant!", []byte(`{}`))
	f.Add("t3", []byte(`{not json`))
	f.Add("", []byte(`{"employee_id":-5,"patient_id":1048576}`))
	f.Add("overflow-tenant-5", []byte(`{"employee_id":30,"patient_id":100}`)) // beyond MaxTenants
	f.Add("t1", bytes.Repeat([]byte(`{"employee_id":1},`), 512))
	f.Add("", append([]byte(`{"tenant":"`), bytes.Repeat([]byte("a"), 1<<21)...))
	f.Fuzz(func(t *testing.T, tenant string, body []byte) {
		fuzzRoundTrip(t, h, http.MethodPost, "/v1/access", tenant, body)
	})
}

// FuzzNewCycleHandler fuzzes POST /v1/cycle/new: NaN/Inf/negative budgets,
// junk bodies, tenant storms against the cap.
func FuzzNewCycleHandler(f *testing.F) {
	h := fuzzServer(f)
	f.Add("", []byte(`{"budget":40}`))
	f.Add("t1", []byte(`{"budget":-1}`))
	f.Add("", []byte(`{"budget":"lots"}`))
	f.Add("", []byte(`{"budget":1e308}`))
	f.Add("t2", []byte(`{"budget":40,"tenant":"t3"}`))
	f.Add("no/slash", []byte(`{"budget":40}`))
	f.Add("t4-over-cap", []byte(`{"budget":40}`))
	f.Add("", []byte(`null`))
	f.Add("", append([]byte(`{"tenant":"`), bytes.Repeat([]byte("b"), 1<<21)...))
	f.Fuzz(func(t *testing.T, tenant string, body []byte) {
		fuzzRoundTrip(t, h, http.MethodPost, "/v1/cycle/new", tenant, body)
	})
}
