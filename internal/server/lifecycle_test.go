package server

import (
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/sim"
)

func TestHealthAndReadiness(t *testing.T) {
	srv, ts, _, _ := fixture(t)

	var probe struct {
		Status string `json:"status"`
	}
	if code := get(t, ts, "/v1/healthz", &probe); code != http.StatusOK || probe.Status != "ok" {
		t.Fatalf("healthz = %d %q, want 200 ok", code, probe.Status)
	}
	if code := get(t, ts, "/v1/readyz", &probe); code != http.StatusOK || probe.Status != "ready" {
		t.Fatalf("readyz = %d %q, want 200 ready", code, probe.Status)
	}

	srv.SetReady(false)
	if code := get(t, ts, "/v1/readyz", &probe); code != http.StatusServiceUnavailable || probe.Status != "draining" {
		t.Fatalf("draining readyz = %d %q, want 503 draining", code, probe.Status)
	}
	// Liveness is not readiness: the process is still up.
	if code := get(t, ts, "/v1/healthz", &probe); code != http.StatusOK {
		t.Fatalf("healthz while draining = %d, want 200", code)
	}
	srv.SetReady(true)
	if code := get(t, ts, "/v1/readyz", &probe); code != http.StatusOK {
		t.Fatalf("readyz after re-ready = %d, want 200", code)
	}
}

func TestRecoveryMiddlewareContainsPanics(t *testing.T) {
	srv, _, _, _ := fixture(t)
	h := srv.recovery(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("handler bug")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/status", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("panicking handler answered %d, want 500", rec.Code)
	}
	if n := srv.met.reg.Counter(MetricHTTPPanicsTotal, "").Value(); n != 1 {
		t.Fatalf("panic counter = %d, want 1", n)
	}
	// The non-panicking path is untouched.
	ok := srv.recovery(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	rec = httptest.NewRecorder()
	ok.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/status", nil))
	if rec.Code != http.StatusNoContent {
		t.Fatalf("clean handler answered %d, want 204", rec.Code)
	}
}

// failingEstimatorFixture builds a server whose estimator always errors, so
// every gamed alert exercises the engine's degradation ladder end to end
// through the HTTP path.
func failingEstimatorFixture(t *testing.T) (*httptest.Server, int, int) {
	t.Helper()
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 5, Employees: 30, Patients: 100, Departments: 4})
	if err != nil {
		t.Fatal(err)
	}
	bgE, bgP := world.NumEmployees(), world.NumPatients()
	if _, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: 5, PairsPerKind: 3, BackgroundPerDay: 1}); err != nil {
		t.Fatal(err)
	}
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		World:    world,
		Taxonomy: alerts.NewTable1Taxonomy(),
		TypeIDs:  sim.AllTable1TypeIDs(),
		Instance: inst,
		Budget:   50,
		Estimator: core.EstimatorFunc(func(time.Duration) ([]float64, error) {
			return nil, context.DeadlineExceeded
		}),
		Seed:  1,
		Clock: func() time.Duration { return 9 * time.Hour },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, bgE, bgP
}

func TestAccessDegradesInsteadOf500(t *testing.T) {
	ts, bgE, bgP := failingEstimatorFixture(t)
	var resp AccessResponse
	code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, &resp)
	if code != http.StatusOK {
		t.Fatalf("access with broken estimator = %d, want 200 (degraded)", code)
	}
	if !resp.Alert {
		t.Fatal("planted pair did not alert")
	}
	if resp.Fallback != "static" {
		t.Fatalf("Fallback = %q, want static (no prior state to reuse)", resp.Fallback)
	}
	if resp.Warn {
		t.Fatal("static degraded decision must never warn")
	}
}

func TestRunGracefulShutdown(t *testing.T) {
	srv, _, _, _ := fixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	addrCh := make(chan net.Addr, 2)
	var drained, shutdown atomic.Bool
	done := make(chan error, 1)
	go func() {
		done <- Run(ctx, RunConfig{
			Addr:          "127.0.0.1:0",
			Handler:       srv.Handler(),
			DebugAddr:     "127.0.0.1:0",
			DebugHandler:  srv.Metrics().Handler(),
			ShutdownGrace: 5 * time.Second,
			Logf:          t.Logf,
			OnListen:      func(a net.Addr) { addrCh <- a },
			OnDrainStart: func() {
				srv.SetReady(false)
				drained.Store(true)
			},
			OnShutdown: func() { shutdown.Store(true) },
		})
	}()
	mainAddr, dbgAddr := <-addrCh, <-addrCh

	// Both listeners serve while running.
	resp, err := http.Get("http://" + mainAddr.String() + "/v1/healthz")
	if err != nil {
		t.Fatalf("main listener: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get("http://" + dbgAddr.String() + "/")
	if err != nil {
		t.Fatalf("debug listener: %v", err)
	}
	resp.Body.Close()

	// Shutdown: Run must drain both listeners and return nil within grace.
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run returned %v, want nil on clean drain", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not return within the grace period")
	}
	if !drained.Load() || !shutdown.Load() {
		t.Fatalf("lifecycle hooks: drain=%v shutdown=%v, want both true", drained.Load(), shutdown.Load())
	}
	if _, err := http.Get("http://" + mainAddr.String() + "/v1/healthz"); err == nil {
		t.Fatal("main listener still serving after shutdown")
	}
}

func TestRunListenError(t *testing.T) {
	srv, _, _, _ := fixture(t)
	// Occupy a port, then ask Run to bind it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if err := Run(context.Background(), RunConfig{
		Addr:    ln.Addr().String(),
		Handler: srv.Handler(),
		Logf:    t.Logf,
	}); err == nil {
		t.Fatal("Run on an occupied port must error")
	}
}

func TestRequestTimeoutAnswers503(t *testing.T) {
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 5, Employees: 30, Patients: 100, Departments: 4})
	if err != nil {
		t.Fatal(err)
	}
	bgE, bgP := world.NumEmployees(), world.NumPatients()
	if _, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: 5, PairsPerKind: 3, BackgroundPerDay: 1}); err != nil {
		t.Fatal(err)
	}
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	srv, err := New(Config{
		World:    world,
		Taxonomy: alerts.NewTable1Taxonomy(),
		TypeIDs:  sim.AllTable1TypeIDs(),
		Instance: inst,
		Budget:   50,
		Estimator: core.EstimatorFunc(func(time.Duration) ([]float64, error) {
			<-release // hold the request until the test finishes
			return nil, context.Canceled
		}),
		Seed:           1,
		Clock:          func() time.Duration { return 9 * time.Hour },
		RequestTimeout: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	// Runs before ts.Close (LIFO): unblocks the parked handler goroutine.
	t.Cleanup(func() { close(release) })

	var resp apiError
	code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, &resp)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("stuck request answered %d, want 503", code)
	}
}
