package server

import (
	"net/http"
	"strconv"
	"time"

	"github.com/auditgames/sag/internal/obs"
)

// Server metric names. The engine's sag_engine_* and sag_simplex family
// land in the same registry (see core.Metric*), so one /v1/metrics scrape
// covers the whole decide/commit pipeline.
const (
	// MetricHTTPRequestsTotal counts requests by route and status code.
	MetricHTTPRequestsTotal = "sag_http_requests_total"
	// MetricHTTPRequestSeconds is a latency histogram by route.
	MetricHTTPRequestSeconds = "sag_http_request_seconds"
	// MetricAccessesTotal / MetricAlertsTotal / MetricWarnedTotal /
	// MetricQuitsTotal are cumulative service counters. Unlike the
	// /v1/status snapshot they do NOT reset on cycle rollover — Prometheus
	// counters are forever-cumulative by convention and rates are taken
	// with range queries.
	MetricAccessesTotal = "sag_server_accesses_total"
	MetricAlertsTotal   = "sag_server_alerts_total"
	MetricWarnedTotal   = "sag_server_warned_total"
	MetricQuitsTotal    = "sag_server_quits_total"
	// MetricFlaggedUsers gauges the number of currently flagged employees.
	MetricFlaggedUsers = "sag_server_flagged_users"
	// MetricHTTPLockWaitSeconds is a histogram of time spent waiting to
	// acquire the server's lifecycle lock, labeled side=read|write. The
	// read side is the decision hot path: sustained waits there mean
	// something is re-serializing the handlers.
	MetricHTTPLockWaitSeconds = "sag_http_lock_wait_seconds"
	// MetricHTTPInflightRequests gauges requests currently inside an
	// instrumented handler.
	MetricHTTPInflightRequests = "sag_http_inflight_requests"
	// MetricHTTPTenantRequestsTotal counts API requests by the tenant they
	// resolved to (after validation, before the handler body).
	MetricHTTPTenantRequestsTotal = "sag_http_tenant_requests_total"
)

// serverMetrics holds the server-wide pre-resolved instruments — the
// route-level middleware and the lifecycle-lock histograms, which span all
// tenants. All fields are non-nil: the server always owns a registry (its
// own when the caller supplied none) so that GET /v1/metrics is always
// live. Per-tenant series live in tenantMetrics.
type serverMetrics struct {
	reg           *obs.Registry
	lockWaitRead  *obs.Histogram
	lockWaitWrite *obs.Histogram
	inflight      *obs.Gauge
}

func newServerMetrics(reg *obs.Registry) serverMetrics {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	const lockHelp = "Time waiting to acquire a tenant lifecycle lock, by side."
	return serverMetrics{
		reg:           reg,
		lockWaitRead:  reg.Histogram(MetricHTTPLockWaitSeconds, lockHelp, obs.DefTimeBuckets, obs.L("side", "read")),
		lockWaitWrite: reg.Histogram(MetricHTTPLockWaitSeconds, lockHelp, obs.DefTimeBuckets, obs.L("side", "write")),
		inflight:      reg.Gauge(MetricHTTPInflightRequests, "Requests currently inside an instrumented handler."),
	}
}

// tenantMetrics holds one tenant's pre-resolved instruments; every series
// carries tenant="<id>", matching the label the tenant's engine stamps on
// its sag_engine_* series.
type tenantMetrics struct {
	requests *obs.Counter
	accesses *obs.Counter
	alerts   *obs.Counter
	warned   *obs.Counter
	quits    *obs.Counter
	flagged  *obs.Gauge
}

func newTenantMetrics(reg *obs.Registry, tenant string) tenantMetrics {
	l := obs.L("tenant", tenant)
	return tenantMetrics{
		requests: reg.Counter(MetricHTTPTenantRequestsTotal, "API requests by resolved tenant.", l),
		accesses: reg.Counter(MetricAccessesTotal, "Access requests evaluated.", l),
		alerts:   reg.Counter(MetricAlertsTotal, "Accesses on which a detection rule fired.", l),
		warned:   reg.Counter(MetricWarnedTotal, "Accesses answered with a warning.", l),
		quits:    reg.Counter(MetricQuitsTotal, "Warned accesses reported abandoned.", l),
		flagged:  reg.Gauge(MetricFlaggedUsers, "Employees currently flagged as quitters.", l),
	}
}

// statusRecorder captures the response code written by a handler (200 when
// the handler never calls WriteHeader explicitly).
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a route handler with request counting and latency
// observation. The route label is the mount pattern's path, so cardinality
// stays bounded by the route table.
func (s *Server) instrument(route string, h http.HandlerFunc) http.Handler {
	lat := s.met.reg.Histogram(MetricHTTPRequestSeconds,
		"HTTP request latency in seconds by route.", obs.DefTimeBuckets, obs.L("route", route))
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		s.met.inflight.Add(1)
		defer s.met.inflight.Add(-1)
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		h(rec, r)
		lat.ObserveSince(t0)
		s.met.reg.Counter(MetricHTTPRequestsTotal, "HTTP requests by route and status code.",
			obs.L("route", route), obs.L("code", strconv.Itoa(rec.code))).Inc()
	})
}

// Metrics returns the server's registry — the one /v1/metrics serves —
// so embedders (e.g. cmd/sagserver's debug listener) can export or extend
// the same instrument set.
func (s *Server) Metrics() *obs.Registry { return s.met.reg }
