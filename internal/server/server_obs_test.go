package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/sim"
)

// fixtureSubset builds a server that only games taxonomy type 2, so the
// planted same-last-name (type 1) pair produces unmodeled-type alerts.
func fixtureSubset(t *testing.T) (*httptest.Server, int, int) {
	t.Helper()
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 5, Employees: 30, Patients: 100, Departments: 4})
	if err != nil {
		t.Fatal(err)
	}
	bgE, bgP := world.NumEmployees(), world.NumPatients()
	if _, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: 5, PairsPerKind: 3, BackgroundPerDay: 1}); err != nil {
		t.Fatal(err)
	}
	inst, err := sim.Table1Instance([]int{2})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		World:    world,
		Taxonomy: alerts.NewTable1Taxonomy(),
		TypeIDs:  []int{2},
		Instance: inst,
		Budget:   50,
		Estimator: core.EstimatorFunc(func(time.Duration) ([]float64, error) {
			return []float64{29.02}, nil
		}),
		Seed:  1,
		Clock: func() time.Duration { return 9 * time.Hour },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts, bgE, bgP
}

// TestCycleRolloverResetsFullStatus is the regression test for the stale
// `quits` counter: after traffic, a quit, and a cycle rollover, the full
// /v1/status snapshot must show every per-cycle counter reset, with the
// flagged-user set (deliberately) surviving.
func TestCycleRolloverResetsFullStatus(t *testing.T) {
	_, ts, bgE, bgP := fixture(t)
	for i := 0; i < 10; i++ {
		post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
	}
	if code := post(t, ts, "/v1/quit", QuitRequest{EmployeeID: bgE}, nil); code != http.StatusOK {
		t.Fatalf("quit status %d", code)
	}
	if code := post(t, ts, "/v1/cycle/new", NewCycleRequest{Budget: 30}, nil); code != http.StatusOK {
		t.Fatalf("new cycle status %d", code)
	}
	var st Status
	if code := get(t, ts, "/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	want := Status{
		Tenant:          DefaultTenantID,
		ActiveTenants:   1,
		Budget:          30,
		RemainingBudget: 30,
		Accesses:        0,
		Alerts:          0,
		Warned:          0,
		Quits:           0, // the previously stale field
		FlaggedUsers:    1, // quits reveal the requester for good
		NumTypes:        7,
	}
	if st != want {
		t.Fatalf("post-rollover status = %+v, want %+v", st, want)
	}
}

// TestHandlerErrorPaths covers every POST route's malformed-JSON branch and
// the domain error branches, asserting status codes and the JSON error
// shape.
func TestHandlerErrorPaths(t *testing.T) {
	_, ts, _, _ := fixture(t)
	cases := []struct {
		name     string
		path     string
		body     string
		wantCode int
	}{
		{"access invalid json", "/v1/access", "{not json", http.StatusBadRequest},
		{"access truncated json", "/v1/access", `{"employee_id":`, http.StatusBadRequest},
		{"quit invalid json", "/v1/quit", "][", http.StatusBadRequest},
		{"quit unknown employee", "/v1/quit", `{"employee_id": 1048576}`, http.StatusBadRequest},
		{"quit negative employee", "/v1/quit", `{"employee_id": -1}`, http.StatusBadRequest},
		{"cycle new invalid json", "/v1/cycle/new", "budget=5", http.StatusBadRequest},
		{"cycle new negative budget", "/v1/cycle/new", `{"budget": -1}`, http.StatusBadRequest},
		{"cycle new NaN-free garbage", "/v1/cycle/new", `{"budget": "lots"}`, http.StatusBadRequest},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+c.path, "application/json", strings.NewReader(c.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != c.wantCode {
				t.Fatalf("status %d, want %d", resp.StatusCode, c.wantCode)
			}
			var e struct {
				Error string `json:"error"`
			}
			if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
				t.Fatalf("error body is not JSON: %v", err)
			}
			if e.Error == "" {
				t.Fatal("error body must carry a non-empty \"error\" field")
			}
		})
	}

	// /v1/cycle/close takes no body and ignores whatever is posted.
	resp, err := http.Post(ts.URL+"/v1/cycle/close", "application/json", strings.NewReader("{garbage"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cycle/close with garbage body: status %d, want 200 (body ignored)", resp.StatusCode)
	}
}

// TestUnmodeledTypePassthrough: alerts whose taxonomy type has no payoff
// structure are reported but never warned and never charged.
func TestUnmodeledTypePassthrough(t *testing.T) {
	ts, bgE, bgP := fixtureSubset(t)
	for i := 0; i < 5; i++ {
		var resp AccessResponse
		if code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, &resp); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !resp.Alert || resp.TypeID != 1 {
			t.Fatalf("planted pair should alert with type 1: %+v", resp)
		}
		if resp.Warn {
			t.Fatalf("unmodeled type must never warn: %+v", resp)
		}
		if resp.RemainingBudget != 50 {
			t.Fatalf("unmodeled type must not charge budget: %+v", resp)
		}
	}
	var st Status
	get(t, ts, "/v1/status", &st)
	if st.Accesses != 5 || st.Alerts != 5 || st.Warned != 0 {
		t.Fatalf("status %+v", st)
	}
}

// TestFlaggedQuitterAlwaysWarn: once an employee quits, every subsequent
// alerting access is warned and marked flagged, regardless of the game.
func TestFlaggedQuitterAlwaysWarn(t *testing.T) {
	_, ts, bgE, bgP := fixture(t)
	if code := post(t, ts, "/v1/quit", QuitRequest{EmployeeID: bgE}, nil); code != http.StatusOK {
		t.Fatalf("quit status %d", code)
	}
	for i := 0; i < 10; i++ {
		var resp AccessResponse
		if code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, &resp); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !resp.Warn || !resp.Flagged {
			t.Fatalf("flagged quitter must always be warned: %+v", resp)
		}
	}
	var st Status
	get(t, ts, "/v1/status", &st)
	if st.Warned != 10 || st.FlaggedUsers != 1 {
		t.Fatalf("status %+v", st)
	}
}

// TestMetricsEndpoint drives real traffic and asserts the acceptance
// criteria on /v1/metrics: Prometheus text format with request latency
// histograms, per-stage engine timings, simplex counters, and the
// remaining-budget gauge.
func TestMetricsEndpoint(t *testing.T) {
	reg := obs.NewRegistry()
	srv, bgE, bgP := fixtureWithRegistry(t, reg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	for i := 0; i < 10; i++ {
		post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
	}
	post(t, ts, "/v1/quit", QuitRequest{EmployeeID: bgE}, nil)
	get(t, ts, "/v1/status", nil)

	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		// HTTP middleware.
		`sag_http_requests_total{code="200",route="/v1/access"} 10`,
		`sag_http_request_seconds_count{route="/v1/access"} 10`,
		`sag_http_request_seconds_bucket{route="/v1/access",le="+Inf"} 10`,
		// Service counters, labeled by tenant.
		`sag_server_accesses_total{tenant="default"} 10`,
		`sag_server_alerts_total{tenant="default"} 10`,
		`sag_server_quits_total{tenant="default"} 1`,
		`sag_server_flagged_users{tenant="default"} 1`,
		`sag_http_tenant_requests_total{tenant="default"}`,
		// Engine per-stage timings and solver counters, labeled by tenant.
		`sag_engine_stage_seconds_count{stage="estimate",tenant="default"} 10`,
		`sag_engine_stage_seconds_count{stage="sse",tenant="default"} 10`,
		`sag_engine_stage_seconds_count{stage="signal",tenant="default"} 10`,
		"sag_engine_simplex_iterations_total",
		"sag_engine_simplex_pivots_total",
		`sag_engine_lp_solves_total{tenant="default"} 70`, // 10 decisions × 7 attackable types
		// Shard accounting.
		"sag_shard_tenants_active 1",
		// Budget gauge.
		"sag_engine_budget_remaining",
		"# TYPE sag_http_request_seconds histogram",
		"# TYPE sag_engine_budget_remaining gauge",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("full exposition:\n%s", body)
	}

	// The same registry instance is reachable for embedders.
	if srv.Metrics() != reg {
		t.Fatal("Metrics() must return the configured registry")
	}
	// Warned split: server-level warned counter matches the status snapshot.
	var st Status
	get(t, ts, "/v1/status", &st)
	if got := reg.Snapshot().Counters[obs.Key(MetricWarnedTotal, obs.L("tenant", DefaultTenantID))]; got != uint64(st.Warned) {
		t.Fatalf("warned counter %d vs status %d", got, st.Warned)
	}
}

// fixtureWithRegistry is fixture(t) with an injected metrics registry. It
// returns the server plus the planted same-last-name pair's IDs.
func fixtureWithRegistry(t *testing.T, reg *obs.Registry) (*Server, int, int) {
	t.Helper()
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 5, Employees: 30, Patients: 100, Departments: 4})
	if err != nil {
		t.Fatal(err)
	}
	bgE, bgP := world.NumEmployees(), world.NumPatients()
	if _, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: 5, PairsPerKind: 3, BackgroundPerDay: 1}); err != nil {
		t.Fatal(err)
	}
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		World:    world,
		Taxonomy: alerts.NewTable1Taxonomy(),
		TypeIDs:  sim.AllTable1TypeIDs(),
		Instance: inst,
		Budget:   50,
		Estimator: core.EstimatorFunc(func(time.Duration) ([]float64, error) {
			return []float64{196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27}, nil
		}),
		Seed:    1,
		Clock:   func() time.Duration { return 9 * time.Hour },
		Metrics: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv, bgE, bgP
}

// TestConcurrencySmoke is the canary for the middleware's lock discipline:
// parallel goroutines hammer /v1/access, /v1/status, and /v1/metrics while
// the test asserts the cycle invariants — the budget each goroutine
// observes is monotone non-increasing, and the final counters are
// consistent with the traffic sent.
func TestConcurrencySmoke(t *testing.T) {
	_, ts, bgE, bgP := fixture(t)
	const (
		writers = 6
		readers = 4
		iters   = 30
	)
	errs := make(chan error, writers+readers)
	var wg sync.WaitGroup

	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := 51.0 // above the initial budget
			for i := 0; i < iters; i++ {
				body, _ := json.Marshal(AccessRequest{EmployeeID: bgE, PatientID: bgP})
				r, err := http.Post(ts.URL+"/v1/access", "application/json", bytes.NewReader(body))
				if err != nil {
					errs <- err
					return
				}
				var resp AccessResponse
				err = json.NewDecoder(r.Body).Decode(&resp)
				r.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if resp.RemainingBudget > last {
					errs <- fmt.Errorf("budget grew within a cycle: %g -> %g", last, resp.RemainingBudget)
					return
				}
				last = resp.RemainingBudget
			}
			errs <- nil
		}()
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastBudget := 51.0
			for i := 0; i < iters; i++ {
				r, err := http.Get(ts.URL + "/v1/status")
				if err != nil {
					errs <- err
					return
				}
				var st Status
				err = json.NewDecoder(r.Body).Decode(&st)
				r.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if st.RemainingBudget > lastBudget {
					errs <- fmt.Errorf("status budget grew: %g -> %g", lastBudget, st.RemainingBudget)
					return
				}
				lastBudget = st.RemainingBudget
				if st.Warned > st.Alerts || st.Alerts > st.Accesses {
					errs <- fmt.Errorf("inconsistent counters: %+v", st)
					return
				}
				m, err := http.Get(ts.URL + "/v1/metrics")
				if err != nil {
					errs <- err
					return
				}
				_, err = io.ReadAll(m.Body)
				m.Body.Close()
				if err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	var st Status
	get(t, ts, "/v1/status", &st)
	if st.Accesses != writers*iters || st.Alerts != writers*iters {
		t.Fatalf("lost updates: %+v, want %d accesses", st, writers*iters)
	}

	// Metrics agree with the status snapshot after the dust settles.
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintf(`sag_server_accesses_total{tenant="default"} %d`, writers*iters)
	if !strings.Contains(string(raw), want) {
		t.Fatalf("metrics missing %q", want)
	}
}
