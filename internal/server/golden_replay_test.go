package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden replay snapshots under testdata/")

// replayEvent is one access of the replayed day and the server's verbatim
// answer to it. The full AccessResponse is embedded, so any drift in the
// decision pipeline — a different warn draw, a changed budget charge, an
// unexpected fallback — shows up as a golden diff pinned to the exact event.
type replayEvent struct {
	Index    int            `json:"index"`
	Tenant   string         `json:"tenant,omitempty"`
	Employee int            `json:"employee_id"`
	Patient  int            `json:"patient_id"`
	Code     int            `json:"code"`
	Response AccessResponse `json:"response"`
}

// replaySnapshot is the golden file layout: the per-event transcript plus
// the end-of-day rollups. encoding/json sorts map keys, so the snapshot is
// byte-stable across runs.
type replaySnapshot struct {
	Events    []replayEvent                `json:"events"`
	Summaries map[string]core.CycleSummary `json:"summaries"`
	Statuses  map[string]Status            `json:"statuses"`
}

// TestGoldenReplaySingleTenant replays one generated day of EMR traffic
// through the HTTP API against the default tenant and compares every
// response byte-for-byte with the recorded snapshot. The whole pipeline is
// deterministic — fixed world/generator seeds, a fixed-rate estimator, the
// real LP solver, and a sequential replay driving the engine's seeded rng —
// so any diff is a behavior change, not noise. Regenerate with
//
//	go test ./internal/server -run TestGoldenReplay -update
func TestGoldenReplaySingleTenant(t *testing.T) {
	runGoldenReplay(t, nil, "golden_replay_single.json")
}

// TestGoldenReplayMultiTenant replays the same day fanned round-robin
// across four tenants. Beyond determinism it pins the isolation story:
// each tenant's transcript, budget drawdown, and cycle summary must be a
// pure function of the events routed to it.
func TestGoldenReplayMultiTenant(t *testing.T) {
	runGoldenReplay(t, []string{"ward-a", "ward-b", "ward-c", "ward-d"}, "golden_replay_multi.json")
}

func runGoldenReplay(t *testing.T, tenants []string, goldenFile string) {
	t.Helper()
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 5, Employees: 30, Patients: 100, Departments: 4})
	if err != nil {
		t.Fatal(err)
	}
	var volumes [emr.NumKinds]dist.Normal
	for k := range volumes {
		volumes[k] = dist.Normal{Mu: 3, Sigma: 1}
	}
	gen, err := emr.NewGenerator(world, emr.GeneratorConfig{
		Seed:             7,
		PairsPerKind:     3,
		BackgroundPerDay: 30,
		Volumes:          volumes,
	})
	if err != nil {
		t.Fatal(err)
	}
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		t.Fatal(err)
	}

	// The clock follows the replayed event stream; requests are sequential,
	// so the plain variable is race-free.
	clock := time.Duration(0)
	srv, err := New(Config{
		World:    world,
		Taxonomy: alerts.NewTable1Taxonomy(),
		TypeIDs:  sim.AllTable1TypeIDs(),
		Instance: inst,
		Budget:   50,
		Estimator: core.EstimatorFunc(func(time.Duration) ([]float64, error) {
			return []float64{196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27}, nil
		}),
		Seed:       1,
		Cache:      core.CacheConfig{Size: 64, BudgetQuantum: 1e6, RateQuantum: 1},
		MaxTenants: 8,
		Clock:      func() time.Duration { return clock },
	})
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()

	do := func(method, path, tenant string, body any, out any) int {
		t.Helper()
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				t.Fatal(err)
			}
		}
		req := httptest.NewRequest(method, path, &buf)
		req.Header.Set("Content-Type", "application/json")
		if tenant != "" {
			req.Header.Set(TenantHeader, tenant)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if out != nil && rec.Code == http.StatusOK {
			if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
				t.Fatalf("%s %s: bad body %q: %v", method, path, rec.Body.String(), err)
			}
		}
		return rec.Code
	}

	events := gen.Day(0)
	if len(events) == 0 {
		t.Fatal("generator produced an empty day")
	}
	snap := replaySnapshot{Summaries: map[string]core.CycleSummary{}, Statuses: map[string]Status{}}
	for i, ev := range events {
		clock = ev.Time
		tenant := ""
		if len(tenants) > 0 {
			tenant = tenants[i%len(tenants)]
		}
		re := replayEvent{Index: i, Tenant: tenant, Employee: ev.EmployeeID, Patient: ev.PatientID}
		re.Code = do(http.MethodPost, "/v1/access",
			tenant, AccessRequest{EmployeeID: ev.EmployeeID, PatientID: ev.PatientID}, &re.Response)
		if re.Code != http.StatusOK {
			t.Fatalf("event %d: access status %d", i, re.Code)
		}
		if re.Response.Fallback != "" {
			t.Fatalf("event %d: replay degraded to %q; the golden path must be fully solved", i, re.Response.Fallback)
		}
		snap.Events = append(snap.Events, re)
	}
	snap.Summaries = srv.CycleSummaries()
	for _, id := range srv.Tenants() {
		var st Status
		if code := do(http.MethodGet, "/v1/status?tenant="+id, "", nil, &st); code != http.StatusOK {
			t.Fatalf("status for %q: %d", id, code)
		}
		snap.Statuses[id] = st
	}

	got, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", goldenFile)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d events)", path, len(snap.Events))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v — run `go test ./internal/server -run TestGoldenReplay -update` to record the snapshot", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal(diffSnapshots(want, got))
	}
}

// diffSnapshots renders the first divergence between two golden snapshots
// with a few lines of context, so a failure message names the drifting
// event instead of dumping two multi-kilobyte blobs.
func diffSnapshots(want, got []byte) string {
	wl, gl := bytes.Split(want, []byte("\n")), bytes.Split(got, []byte("\n"))
	n := len(wl)
	if len(gl) < n {
		n = len(gl)
	}
	for i := 0; i < n; i++ {
		if !bytes.Equal(wl[i], gl[i]) {
			lo := i - 2
			if lo < 0 {
				lo = 0
			}
			var b bytes.Buffer
			fmt.Fprintf(&b, "golden replay diverges at line %d:\n", i+1)
			for j := lo; j <= i; j++ {
				fmt.Fprintf(&b, "  want: %s\n", wl[j])
			}
			for j := lo; j <= i; j++ {
				fmt.Fprintf(&b, "  got:  %s\n", gl[j])
			}
			return b.String()
		}
	}
	return fmt.Sprintf("golden replay length changed: want %d lines, got %d", len(wl), len(gl))
}
