package server

import (
	"context"
	"errors"
	"log"
	"net"
	"net/http"
	"time"
)

// MetricHTTPPanicsTotal counts handler panics contained by the recovery
// middleware. A nonzero value means a bug was survived, not absent.
const MetricHTTPPanicsTotal = "sag_http_panics_total"

// recovery wraps h so a panicking handler answers 500 instead of killing
// the connection (and, under http.Server's default behavior, leaking a
// goroutine's worth of stack into the log with the request half-written).
// The panic is counted and logged; the server keeps serving.
func (s *Server) recovery(h http.Handler) http.Handler {
	panics := s.met.reg.Counter(MetricHTTPPanicsTotal, "Handler panics contained by the recovery middleware.")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				panics.Inc()
				log.Printf("server: panic in %s %s: %v", r.Method, r.URL.Path, rec)
				writeJSON(w, http.StatusInternalServerError, apiError{Error: "internal error"})
			}
		}()
		h.ServeHTTP(w, r)
	})
}

// RunConfig configures the hardened serving lifecycle (see Run).
type RunConfig struct {
	// Addr is the main listen address (":8080"). Required.
	Addr string
	// Handler serves the main listener; typically Server.Handler().
	Handler http.Handler
	// DebugAddr, when non-empty, starts a second listener (pprof, /metrics)
	// sharing the same lifecycle: it drains and stops with the main one
	// instead of dying with the process.
	DebugAddr string
	// DebugHandler serves the debug listener; required when DebugAddr is set.
	DebugHandler http.Handler
	// ShutdownGrace bounds draining on shutdown: in-flight requests get this
	// long to finish before the listeners are torn down. Zero means 10s.
	ShutdownGrace time.Duration
	// ReadHeaderTimeout / ReadTimeout / WriteTimeout / IdleTimeout harden
	// both http.Servers against slow-loris and stuck peers. Zeros get
	// conservative defaults (5s / 15s / 30s / 120s).
	ReadHeaderTimeout time.Duration
	ReadTimeout       time.Duration
	WriteTimeout      time.Duration
	IdleTimeout       time.Duration
	// OnDrainStart runs when shutdown begins, before the listeners drain —
	// the place to flip readiness (Server.SetReady(false)).
	OnDrainStart func()
	// OnShutdown runs after both listeners have stopped — the place to log
	// the final cycle summary.
	OnShutdown func()
	// Logf receives lifecycle log lines; defaults to log.Printf.
	Logf func(format string, args ...any)
	// OnListen, when non-nil, is called with each bound listener address
	// (main first, then debug). Tests use it to learn ":0" ports.
	OnListen func(addr net.Addr)
}

func (c *RunConfig) fillDefaults() {
	if c.ShutdownGrace <= 0 {
		c.ShutdownGrace = 10 * time.Second
	}
	if c.ReadHeaderTimeout <= 0 {
		c.ReadHeaderTimeout = 5 * time.Second
	}
	if c.ReadTimeout <= 0 {
		c.ReadTimeout = 15 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 30 * time.Second
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 120 * time.Second
	}
	if c.Logf == nil {
		c.Logf = log.Printf
	}
}

func (c *RunConfig) newServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: c.ReadHeaderTimeout,
		ReadTimeout:       c.ReadTimeout,
		WriteTimeout:      c.WriteTimeout,
		IdleTimeout:       c.IdleTimeout,
	}
}

// Run serves cfg.Handler on cfg.Addr (and cfg.DebugHandler on cfg.DebugAddr
// when set) until ctx is canceled, then shuts down gracefully: readiness is
// flipped via OnDrainStart, in-flight requests get ShutdownGrace to finish,
// both listeners stop together, and OnShutdown runs. It returns nil on a
// clean drain — including when the grace period expires with requests still
// in flight (they are cut off, but the process exits orderly) — and the
// first listener error otherwise.
func Run(ctx context.Context, cfg RunConfig) error {
	cfg.fillDefaults()

	mainLn, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return err
	}
	defer mainLn.Close()
	if cfg.OnListen != nil {
		cfg.OnListen(mainLn.Addr())
	}

	servers := []*http.Server{cfg.newServer(cfg.Handler)}
	listeners := []net.Listener{mainLn}
	if cfg.DebugAddr != "" {
		dbgLn, err := net.Listen("tcp", cfg.DebugAddr)
		if err != nil {
			return err
		}
		defer dbgLn.Close()
		if cfg.OnListen != nil {
			cfg.OnListen(dbgLn.Addr())
		}
		servers = append(servers, cfg.newServer(cfg.DebugHandler))
		listeners = append(listeners, dbgLn)
		cfg.Logf("debug listener (pprof, /metrics) on %s", dbgLn.Addr())
	}

	serveErr := make(chan error, len(servers))
	for i, srv := range servers {
		go func(srv *http.Server, ln net.Listener) {
			if err := srv.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
				serveErr <- err
				return
			}
			serveErr <- nil
		}(srv, listeners[i])
	}

	select {
	case <-ctx.Done():
		cfg.Logf("shutdown requested; draining for up to %v", cfg.ShutdownGrace)
	case err := <-serveErr:
		if err != nil {
			return err
		}
		// A listener stopped without error outside shutdown: treat as a
		// shutdown request for the rest.
	}

	if cfg.OnDrainStart != nil {
		cfg.OnDrainStart()
	}
	drainCtx, cancel := context.WithTimeout(context.Background(), cfg.ShutdownGrace)
	defer cancel()
	for _, srv := range servers {
		if err := srv.Shutdown(drainCtx); err != nil {
			cfg.Logf("shutdown: %v (in-flight requests cut off)", err)
		}
	}
	if cfg.OnShutdown != nil {
		cfg.OnShutdown()
	}
	return nil
}
