package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/admit"
	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/sim"
)

// The overload smoke test: a capped admission queue, one greedy tenant
// flooding it, and paced polite tenants whose goodput must survive. This is
// the test-matrix twin of the BenchmarkServerOverload regression gate.

// overloadFixture builds a server whose every decision costs solveDelay in
// the solver, behind the given admission config.
func overloadFixture(t *testing.T, adm admit.Config, solveDelay time.Duration) (*Server, *httptest.Server, int, int) {
	t.Helper()
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 5, Employees: 30, Patients: 100, Departments: 4})
	if err != nil {
		t.Fatal(err)
	}
	bgE, bgP := world.NumEmployees(), world.NumPatients()
	if _, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: 5, PairsPerKind: 3, BackgroundPerDay: 1}); err != nil {
		t.Fatal(err)
	}
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		World:    world,
		Taxonomy: alerts.NewTable1Taxonomy(),
		TypeIDs:  sim.AllTable1TypeIDs(),
		Instance: inst,
		Budget:   1e9,
		Estimator: core.EstimatorFunc(func(time.Duration) ([]float64, error) {
			return []float64{196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27}, nil
		}),
		Seed:      1,
		Clock:     func() time.Duration { return 9 * time.Hour },
		Admission: adm,
		SSESolve: func(ctx context.Context, inst *game.Instance, budget float64, futures []dist.Poisson) (*game.Result, error) {
			select {
			case <-time.After(solveDelay):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			return &game.Result{BestType: -1, Coverage: make([]float64, inst.NumTypes())}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, bgE, bgP
}

// tenantAccess fires one decision request for tenant and returns the status
// plus both backoff headers (empty unless shed): the coarse RFC 9110
// Retry-After and the precise X-SAG-Retry-After-Ms.
func tenantAccess(t *testing.T, ts *httptest.Server, tenant string, bgE, bgP int) (int, string, string) {
	t.Helper()
	body := strings.NewReader(`{"employee_id":` + strconv.Itoa(bgE) + `,"patient_id":` + strconv.Itoa(bgP) + `}`)
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/access", body)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, tenant)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp.StatusCode, resp.Header.Get("Retry-After"), resp.Header.Get(RetryAfterMsHeader)
}

// TestOverloadGreedyTenantShedPoliteSurvives runs the acceptance shape at
// test scale: one greedy tenant floods a small queue from several unpaced
// workers while a polite tenant sends paced singles. The polite tenant must
// keep near-full goodput; the greedy tenant must see 503s carrying computed
// (non-constant) backoff hints — sub-second projections all collapse to the
// RFC 9110 integer floor "1" in Retry-After, so load-dependence shows in the
// precise X-SAG-Retry-After-Ms header; the shed must show up in /v1/metrics.
func TestOverloadGreedyTenantShedPoliteSurvives(t *testing.T) {
	// 10ms solves and 2 greedy slots cap the greedy tenant at ~200
	// decisions/s; 12 closed-loop greedy workers keep its queue pinned past
	// QueueDepth, so every further greedy arrival (and every polite
	// push-out) sheds with a projection-computed Retry-After.
	const solveDelay = 10 * time.Millisecond
	_, ts, bgE, bgP := overloadFixture(t, admit.Config{
		MaxInflight:    4,
		TenantInflight: 2,
		QueueDepth:     6,
		MaxWait:        250 * time.Millisecond,
	}, solveDelay)

	// Warm both tenants (creates engines; also seeds the drain-rate window).
	for _, tenant := range []string{"greedy", "polite"} {
		if code, _, _ := tenantAccess(t, ts, tenant, bgE, bgP); code != http.StatusOK {
			t.Fatalf("warm access for %s: status %d", tenant, code)
		}
	}

	const (
		greedyWorkers   = 12
		politeRequests  = 30
		politeInterval  = 8 * time.Millisecond
		politeGoodFloor = 24 // 80% of politeRequests
	)
	var (
		stop       atomic.Bool
		greedyOK   atomic.Int64
		greedyShed atomic.Int64
		hintsMu    sync.Mutex
		hints      = map[string]int{}
	)
	var wg sync.WaitGroup
	for w := 0; w < greedyWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				code, ra, ms := tenantAccess(t, ts, "greedy", bgE, bgP)
				switch code {
				case http.StatusOK:
					greedyOK.Add(1)
				case http.StatusServiceUnavailable:
					greedyShed.Add(1)
					if ra == "" {
						ms = "" // missing either header is the failure below
					}
					hintsMu.Lock()
					hints[ms]++
					hintsMu.Unlock()
				default:
					t.Errorf("greedy access: unexpected status %d", code)
					return
				}
			}
		}()
	}

	politeOK := 0
	for i := 0; i < politeRequests; i++ {
		if code, _, _ := tenantAccess(t, ts, "polite", bgE, bgP); code == http.StatusOK {
			politeOK++
		}
		time.Sleep(politeInterval)
	}
	stop.Store(true)
	wg.Wait()

	if politeOK < politeGoodFloor {
		t.Errorf("polite tenant goodput %d/%d, want >= %d: greedy flood starved a paced tenant",
			politeOK, politeRequests, politeGoodFloor)
	}
	if greedyShed.Load() == 0 {
		t.Errorf("greedy tenant was never shed (ok=%d): the queue bound is not being enforced", greedyOK.Load())
	}
	if greedyOK.Load() == 0 {
		t.Error("greedy tenant made no progress at all: shed should ration, not blackhole")
	}
	hintsMu.Lock()
	distinct := len(hints)
	_, sawEmpty := hints[""]
	hintsMu.Unlock()
	if sawEmpty {
		t.Error("a 503 shed response was missing a backoff header")
	}
	if greedyShed.Load() >= 10 && distinct < 2 {
		t.Errorf("all %d sheds carried the same %s hint %v: hint is not computed from load",
			greedyShed.Load(), RetryAfterMsHeader, hints)
	}

	code, metrics := getRaw(t, ts, "/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics status %d", code)
	}
	for _, want := range []string{
		admit.MetricShedTotal,
		admit.MetricAdmittedTotal,
		admit.MetricQueueWaitSeconds,
		`tenant="greedy"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics export missing %q", want)
		}
	}
}

// TestOverloadRateLimitRetryAfter: a pure rate-limit config sheds the
// over-rate tenant with spec-valid Retry-After hints — the sub-second bucket
// refill rounds up to RFC 9110's integer floor of 1s (the precise hint rides
// in X-SAG-Retry-After-Ms; see retain_test.go's checkRetryHeaders).
func TestOverloadRateLimitRetryAfter(t *testing.T) {
	_, ts, bgE, bgP := overloadFixture(t, admit.Config{Rate: 5, Burst: 2}, 0)

	okCount, shed := 0, 0
	var hints []string
	for i := 0; i < 6; i++ {
		code, ra, _ := tenantAccess(t, ts, "bursty", bgE, bgP)
		switch code {
		case http.StatusOK:
			okCount++
		case http.StatusServiceUnavailable:
			shed++
			hints = append(hints, ra)
		default:
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	// Burst 2 admits the first two back-to-back requests; the rest shed.
	if okCount < 1 || shed < 3 {
		t.Fatalf("want ~2 admitted and >=3 shed, got ok=%d shed=%d", okCount, shed)
	}
	for _, ra := range hints {
		v, err := strconv.ParseFloat(ra, 64)
		if err != nil {
			t.Fatalf("unparseable Retry-After %q: %v", ra, err)
		}
		if v <= 0 || v > 1 {
			t.Fatalf("rate-shed Retry-After %q outside (0, 1]: a 200ms refill must ceil to exactly 1s", ra)
		}
	}
	// A tenant that waits out its hint gets back in.
	time.Sleep(450 * time.Millisecond)
	if code, _, _ := tenantAccess(t, ts, "bursty", bgE, bgP); code != http.StatusOK {
		t.Fatalf("after backoff: status %d, want 200", code)
	}
}

// TestOverloadAdmissionDisabledByDefault: the zero-value Admission config
// must leave the serving path untouched.
func TestOverloadAdmissionDisabledByDefault(t *testing.T) {
	srv, ts, bgE, bgP := fixture(t)
	if srv.admit != nil {
		t.Fatal("zero-value Admission config built a controller")
	}
	for i := 0; i < 20; i++ {
		if code, ra, ms := tenantAccess(t, ts, "anyone", bgE, bgP); code != http.StatusOK || ra != "" || ms != "" {
			t.Fatalf("request %d: status %d retry-after %q/%q, want 200 with no backoff headers", i, code, ra, ms)
		}
	}
}
