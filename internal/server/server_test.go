package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/payoff"
	"github.com/auditgames/sag/internal/sim"
)

// fixture builds a server over a small world with planted pairs, plus the
// IDs of one planted same-last-name (type 1) pair for deterministic alert
// traffic.
func fixture(t *testing.T) (*Server, *httptest.Server, int, int) {
	t.Helper()
	return fixtureWithCache(t, core.CacheConfig{})
}

func fixtureWithCache(t *testing.T, cache core.CacheConfig) (*Server, *httptest.Server, int, int) {
	t.Helper()
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 5, Employees: 30, Patients: 100, Departments: 4})
	if err != nil {
		t.Fatal(err)
	}
	bgE, bgP := world.NumEmployees(), world.NumPatients()
	if _, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: 5, PairsPerKind: 3, BackgroundPerDay: 1}); err != nil {
		t.Fatal(err)
	}
	// First planted pair is kind 0 (Same Last Name): employee bgE, patient
	// bgP.
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		t.Fatal(err)
	}
	clockAt := 9 * time.Hour
	srv, err := New(Config{
		World:    world,
		Taxonomy: alerts.NewTable1Taxonomy(),
		TypeIDs:  sim.AllTable1TypeIDs(),
		Instance: inst,
		Budget:   50,
		Estimator: core.EstimatorFunc(func(time.Duration) ([]float64, error) {
			return []float64{196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27}, nil
		}),
		Seed:  1,
		Cache: cache,
		Clock: func() time.Duration { return clockAt },
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts, bgE, bgP
}

func post(t *testing.T, ts *httptest.Server, path string, body any, out any) int {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+path, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s: decoding response: %v", path, err)
		}
	}
	return resp.StatusCode
}

func get(t *testing.T, ts *httptest.Server, path string, out any) int {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestBenignAccessPassesSilently(t *testing.T) {
	_, ts, _, _ := fixture(t)
	var resp AccessResponse
	code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: 0, PatientID: 0}, &resp)
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if resp.Alert || resp.Warn {
		t.Fatalf("benign access should pass silently: %+v", resp)
	}
	if resp.RemainingBudget != 50 {
		t.Fatalf("benign access must not spend budget: %+v", resp)
	}
}

func TestSuspiciousAccessTriggersGame(t *testing.T) {
	_, ts, bgE, bgP := fixture(t)
	warned := 0
	for i := 0; i < 50; i++ {
		var resp AccessResponse
		code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, &resp)
		if code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
		if !resp.Alert || resp.TypeID != 1 {
			t.Fatalf("planted same-last-name access should alert type 1: %+v", resp)
		}
		if resp.Warn {
			warned++
		}
		if resp.RemainingBudget > 50 {
			t.Fatalf("budget grew: %+v", resp)
		}
	}
	if warned == 0 {
		t.Fatal("no warnings over 50 suspicious accesses is implausible")
	}
	var st Status
	if code := get(t, ts, "/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if st.Accesses != 50 || st.Alerts != 50 || st.Warned != warned {
		t.Fatalf("status counters %+v", st)
	}
	if st.RemainingBudget >= 50 {
		t.Fatal("suspicious traffic should consume budget")
	}
}

// TestStatusReportsCache: with a coarsely-quantized decision cache, repeated
// alerts of one type at a near-constant budget hit the cache, and the status
// endpoint surfaces the counters. The uncached fixture must report zeros.
func TestStatusReportsCache(t *testing.T) {
	_, ts, bgE, bgP := fixtureWithCache(t, core.CacheConfig{Size: 32, BudgetQuantum: 1000, RateQuantum: 1})
	for i := 0; i < 10; i++ {
		if code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil); code != http.StatusOK {
			t.Fatalf("access status %d", code)
		}
	}
	var st Status
	if code := get(t, ts, "/v1/status", &st); code != http.StatusOK {
		t.Fatalf("status code %d", code)
	}
	if st.CacheMisses == 0 || st.CacheHits == 0 {
		t.Fatalf("expected cache traffic after repeated identical alerts: %+v", st)
	}
	if st.CacheEntries == 0 || st.CacheHitRate <= 0 {
		t.Fatalf("cache entries/hit-rate not surfaced: %+v", st)
	}

	_, plain, bgE2, bgP2 := fixture(t)
	post(t, plain, "/v1/access", AccessRequest{EmployeeID: bgE2, PatientID: bgP2}, nil)
	var st2 Status
	get(t, plain, "/v1/status", &st2)
	if st2.CacheHits != 0 || st2.CacheMisses != 0 || st2.CacheEntries != 0 {
		t.Fatalf("uncached server reported cache stats: %+v", st2)
	}
}

func TestQuitFlagsUser(t *testing.T) {
	_, ts, bgE, bgP := fixture(t)
	if code := post(t, ts, "/v1/quit", QuitRequest{EmployeeID: bgE}, nil); code != http.StatusOK {
		t.Fatalf("quit status %d", code)
	}
	var resp AccessResponse
	post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, &resp)
	if !resp.Flagged || !resp.Warn {
		t.Fatalf("flagged user should always be warned: %+v", resp)
	}
	var st Status
	get(t, ts, "/v1/status", &st)
	if st.FlaggedUsers != 1 || st.Quits != 1 {
		t.Fatalf("status %+v", st)
	}
	// Unknown employee is rejected.
	if code := post(t, ts, "/v1/quit", QuitRequest{EmployeeID: 1 << 20}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown employee quit status %d", code)
	}
}

func TestCycleCloseAndNew(t *testing.T) {
	_, ts, bgE, bgP := fixture(t)
	for i := 0; i < 20; i++ {
		post(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP}, nil)
	}
	var closed CloseResponse
	if code := post(t, ts, "/v1/cycle/close", struct{}{}, &closed); code != http.StatusOK {
		t.Fatalf("close status %d", code)
	}
	if len(closed.Audits) != 20 {
		t.Fatalf("audit plan covers %d alerts, want 20", len(closed.Audits))
	}
	audited := 0
	for _, a := range closed.Audits {
		if a.Audited {
			audited++
			if a.Cost <= 0 {
				t.Fatal("audited outcome must carry its cost")
			}
		}
	}
	if float64(audited) != closed.TotalCost {
		t.Fatalf("total cost %g vs %d audited at cost 1", closed.TotalCost, audited)
	}

	if code := post(t, ts, "/v1/cycle/new", NewCycleRequest{Budget: 30}, nil); code != http.StatusOK {
		t.Fatalf("new cycle status %d", code)
	}
	var st Status
	get(t, ts, "/v1/status", &st)
	if st.Budget != 30 || st.RemainingBudget != 30 || st.Accesses != 0 {
		t.Fatalf("post-reset status %+v", st)
	}
	if code := post(t, ts, "/v1/cycle/new", NewCycleRequest{Budget: -5}, nil); code != http.StatusBadRequest {
		t.Fatalf("negative budget status %d", code)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts, _, _ := fixture(t)
	resp, err := http.Post(ts.URL+"/v1/access", "application/json", bytes.NewBufferString("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage body status %d", resp.StatusCode)
	}
	var out AccessResponse
	if code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: 1 << 20, PatientID: 0}, &out); code != http.StatusBadRequest {
		t.Fatalf("out-of-range employee status %d", code)
	}
	// Wrong method.
	r, err := http.Get(ts.URL + "/v1/access")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET on POST route status %d", r.StatusCode)
	}
}

func TestNewValidation(t *testing.T) {
	world, _ := emr.NewWorld(emr.WorldConfig{Seed: 1, Employees: 2, Patients: 2, Departments: 1})
	inst, _ := game.NewInstance([]payoff.Payoff{payoff.Table2()[1]}, []float64{1})
	est := core.EstimatorFunc(func(time.Duration) ([]float64, error) { return []float64{10}, nil })
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil world", Config{Taxonomy: alerts.NewTable1Taxonomy(), Instance: inst, Estimator: est, TypeIDs: []int{1}}},
		{"nil taxonomy", Config{World: world, Instance: inst, Estimator: est, TypeIDs: []int{1}}},
		{"nil instance", Config{World: world, Taxonomy: alerts.NewTable1Taxonomy(), Estimator: est, TypeIDs: []int{1}}},
		{"type count mismatch", Config{World: world, Taxonomy: alerts.NewTable1Taxonomy(), Instance: inst, Estimator: est, TypeIDs: []int{1, 2}}},
		{"duplicate ids", Config{World: world, Taxonomy: alerts.NewTable1Taxonomy(), Instance: inst, Estimator: est, TypeIDs: []int{1, 1}}},
	}
	for _, c := range cases {
		if c.name == "duplicate ids" {
			// needs a 2-type instance for the duplicate check to be reached
			c.cfg.Instance, _ = game.NewInstance(
				[]payoff.Payoff{payoff.Table2()[1], payoff.Table2()[2]},
				game.UniformCost(2, 1))
		}
		if _, err := New(c.cfg); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

// TestConcurrentAccessesKeepInvariants hammers the (now unserialized)
// access path and checks that the shared counters and the budget survive:
// no lost updates, no negative budget. The overlap proof itself lives in
// TestConcurrentAccessSolvesOverlap.
func TestConcurrentAccessesKeepInvariants(t *testing.T) {
	_, ts, bgE, bgP := fixture(t)
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 25; i++ {
				var resp AccessResponse
				body, _ := json.Marshal(AccessRequest{EmployeeID: bgE, PatientID: bgP})
				r, err := http.Post(ts.URL+"/v1/access", "application/json", bytes.NewReader(body))
				if err != nil {
					done <- err
					return
				}
				err = json.NewDecoder(r.Body).Decode(&resp)
				r.Body.Close()
				if err != nil {
					done <- err
					return
				}
				if resp.RemainingBudget < 0 {
					done <- fmt.Errorf("negative budget %g", resp.RemainingBudget)
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	var st Status
	get(t, ts, "/v1/status", &st)
	if st.Accesses != 200 || st.Alerts != 200 {
		t.Fatalf("lost updates under concurrency: %+v", st)
	}
}
