package server

import (
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/admit"
	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/retain"
	"github.com/auditgames/sag/internal/shard"
)

var integerRE = regexp.MustCompile(`^[0-9]+$`)

// checkRetryHeaders asserts the RFC 9110 contract: Retry-After is whole
// delta-seconds (no decimals — the bug this PR fixes), and the precise
// millisecond hint rides in X-SAG-Retry-After-Ms, consistent with it.
func checkRetryHeaders(t *testing.T, h http.Header) {
	t.Helper()
	ra := h.Get("Retry-After")
	ms := h.Get(RetryAfterMsHeader)
	if ra == "" || ms == "" {
		t.Fatalf("missing retry headers: Retry-After=%q %s=%q", ra, RetryAfterMsHeader, ms)
	}
	if !integerRE.MatchString(ra) {
		t.Fatalf("Retry-After %q is not integer delta-seconds (RFC 9110 §10.2.3)", ra)
	}
	if !integerRE.MatchString(ms) {
		t.Fatalf("%s %q is not integer milliseconds", RetryAfterMsHeader, ms)
	}
	sec, _ := strconv.ParseInt(ra, 10, 64)
	msec, _ := strconv.ParseInt(ms, 10, 64)
	if sec < 1 {
		t.Fatalf("Retry-After %d < 1: clients would hammer immediately", sec)
	}
	if msec > sec*1000 {
		t.Fatalf("precise hint %dms exceeds coarse Retry-After %ds", msec, sec)
	}
}

func dirBytes(t *testing.T, root string) int64 {
	t.Helper()
	var total int64
	err := filepath.Walk(root, func(_ string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.IsDir() {
			total += info.Size()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return total
}

func TestDiskBudgetRequiresDataDir(t *testing.T) {
	_, err := New(Config{DiskBudgetBytes: 1 << 20})
	if err == nil {
		t.Fatal("New accepted a disk budget without a data dir")
	}
}

// TestReadPathsDoNotCreateTenants is the create-on-read regression test: a
// GET against a tenant that does not exist must answer 404 and leave the
// tenant-creation counter untouched (reads used to be able to materialize a
// tenant, spending engine build work on a typo).
func TestReadPathsDoNotCreateTenants(t *testing.T) {
	reg := obs.NewRegistry()
	srv, _, _ := fixtureWithRegistry(t, reg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)

	createdKey := obs.Key(shard.MetricTenantsCreatedTotal)
	before := reg.Snapshot().Counters[createdKey]
	if before == 0 {
		t.Fatal("fixture created no tenants; counter wiring broken")
	}

	for _, path := range []string{
		"/v1/status?tenant=ghost",
		"/v1/cycle/summary?tenant=ghost",
	} {
		if code := get(t, ts, path, nil); code != http.StatusNotFound {
			t.Fatalf("GET %s = %d, want 404 for an unknown tenant", path, code)
		}
	}
	// Header routing takes the same no-create path.
	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/status", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(TenantHeader, "ghost")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("header-routed GET /v1/status = %d, want 404", resp.StatusCode)
	}

	if after := reg.Snapshot().Counters[createdKey]; after != before {
		t.Fatalf("read-only requests created tenants: %s %d -> %d", createdKey, before, after)
	}
	// Mutations still create: the counter moves when a write names a new
	// tenant.
	post(t, ts, "/v1/access", AccessRequest{Tenant: "real", EmployeeID: 0, PatientID: 0}, nil)
	if after := reg.Snapshot().Counters[createdKey]; after != before+1 {
		t.Fatalf("mutation did not create the tenant: %s %d -> %d", createdKey, before, after)
	}
}

// TestShedRetryAfterIsSpecValid drives the admission shedder into a 503 and
// checks both retry headers on the way out.
func TestShedRetryAfterIsSpecValid(t *testing.T) {
	srv, ts, bgE, bgP := replicaFixture(t, t.TempDir(), nil, func(cfg *Config) {
		cfg.Admission = admit.Config{Rate: 0.01, Burst: 1}
	})
	defer srv.Close()

	shed := false
	for i := 0; i < 5; i++ {
		code, _, hdr := postRaw(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP})
		if code == http.StatusServiceUnavailable {
			checkRetryHeaders(t, hdr)
			shed = true
			break
		}
	}
	if !shed {
		t.Fatal("rate limiter never shed; cannot check headers")
	}
}

// TestDiskPressureAnswers507 pins the backpressure contract: with the box
// over its disk budget and the tenant holding nothing reclaimable, mutations
// answer 507 with both retry headers — but the paths that make bytes
// reclaimable (cycle close/new, snapshot) and all reads stay open.
func TestDiskPressureAnswers507(t *testing.T) {
	reg := obs.NewRegistry()
	srv, ts, bgE, bgP := replicaFixture(t, t.TempDir(), nil, func(cfg *Config) {
		cfg.Metrics = reg
		cfg.SegmentBytes = 256
		cfg.DiskBudgetBytes = 1 // hopelessly over: even an empty journal exceeds it
		cfg.CompactInterval = time.Hour
	})
	defer srv.Close()

	// Deterministic verdict: run a scan round synchronously instead of
	// racing the background loop's startup scan.
	srv.retain.RunOnce()
	if _, blocked := srv.retain.Blocked(DefaultTenantID); !blocked {
		t.Fatal("tenant not blocked with a 1-byte budget and no reclaimable segments")
	}

	code, _, hdr := postRaw(t, ts, "/v1/access", AccessRequest{EmployeeID: bgE, PatientID: bgP})
	if code != http.StatusInsufficientStorage {
		t.Fatalf("mutation under disk pressure = %d, want 507", code)
	}
	checkRetryHeaders(t, hdr)

	// Reads are never disk-gated.
	if code := get(t, ts, "/v1/status", nil); code != http.StatusOK {
		t.Fatalf("GET /v1/status under pressure = %d, want 200", code)
	}
	// The reclaim paths stay open — they are how the tenant gets unstuck.
	if code := post(t, ts, "/v1/cycle/close", struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("POST /v1/cycle/close under pressure = %d, want 200", code)
	}
	if code := post(t, ts, "/v1/admin/snapshot", struct{}{}, nil); code != http.StatusOK {
		t.Fatalf("POST /v1/admin/snapshot under pressure = %d, want 200", code)
	}

	// The scan published its verdict to the metrics registry.
	snap := reg.Snapshot()
	if p := snap.Gauges[obs.Key(retain.MetricPressure)]; p <= 1 {
		t.Fatalf("%s = %g, want > 1 while overcommitted", retain.MetricPressure, p)
	}
	if b := snap.Gauges[obs.Key(retain.MetricBytes, obs.L("tenant", DefaultTenantID))]; b <= 0 {
		t.Fatalf("%s = %g, want > 0", retain.MetricBytes, b)
	}
}

// TestCompactionBoundsJournalBytes is the tentpole's steady-state guarantee:
// under sustained writes with a realistic (small) budget, compaction rounds
// keep the on-disk journal bounded — under twice the budget at every
// checkpoint — without ever shedding the writer.
func TestCompactionBoundsJournalBytes(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	// Benign accesses journal ~7 bytes each and keep the tenant snapshot
	// small, so a 1 KiB budget forces several genuine compaction rounds over
	// 600 writes. (Alert-heavy traffic grows the snapshot with the cycle's
	// alert list, so its budget must be sized above one snapshot — the
	// README runbook covers that sizing.)
	const budget = 1 << 10
	srv, ts, _, _ := replicaFixture(t, dir, nil, func(cfg *Config) {
		cfg.Metrics = reg
		cfg.SegmentBytes = 512
		cfg.DiskBudgetBytes = budget
		cfg.CompactInterval = time.Hour
	})
	defer srv.Close()

	for i := 0; i < 600; i++ {
		code := post(t, ts, "/v1/access", AccessRequest{EmployeeID: 0, PatientID: 0}, nil)
		if code != http.StatusOK {
			t.Fatalf("access %d = %d: a reclaiming tenant must never be shed", i, code)
		}
		if i%10 == 9 {
			srv.retain.RunOnce()
			if got := dirBytes(t, dir); got > 2*budget {
				t.Fatalf("after %d writes journal holds %d bytes, budget %d: compaction not keeping up", i+1, got, budget)
			}
		}
	}
	pruned := reg.Snapshot().Counters[obs.Key(retain.MetricPrunedSegments, obs.L("tenant", DefaultTenantID))]
	if pruned < 3 {
		t.Fatalf("%s = %d, want >= 3 (sustained writes must force repeated compaction)", retain.MetricPrunedSegments, pruned)
	}
	if _, blocked := srv.retain.Blocked(DefaultTenantID); blocked {
		t.Fatal("reclaiming tenant ended up blocked")
	}
}
