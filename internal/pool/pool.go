// Package pool provides the bounded worker pool shared by the CPU-bound
// fan-outs in this repository: the per-candidate LP solves of the online SSE
// (internal/game) and the independent replications of the evaluation harness
// (internal/sim).
//
// Design points:
//
//   - A Pool owns a fixed set of long-lived worker goroutines (default
//     runtime.GOMAXPROCS(0)), started lazily on first use and reused across
//     every ForEach call, so the microsecond-scale solve fan-outs pay no
//     per-call goroutine creation cost once warm.
//   - The calling goroutine always participates in its own job, and idle
//     workers join via a non-blocking handoff. A busy pool therefore never
//     blocks a caller: nested fan-outs (a parallel simulation whose engines
//     issue parallel candidate solves) degrade to inline execution instead
//     of deadlocking, and total parallelism stays bounded by the pool width.
//   - Work is distributed by an atomic counter. Scheduling order is
//     nondeterministic, but every index in [0, n) runs exactly once; callers
//     that need deterministic output write results into per-index slots and
//     reduce sequentially afterwards (see game.solveSSE).
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// job is one ForEach invocation: a closed-over fn plus the atomic cursor the
// executors (caller + any helpers) pull indices from.
type job struct {
	fn        func(int)
	n         int64
	next      atomic.Int64
	completed atomic.Int64
	done      chan struct{}

	mu       sync.Mutex
	panicked bool
	panicVal any
}

// run pulls indices until the cursor is exhausted.
func (j *job) run() {
	for {
		i := j.next.Add(1) - 1
		if i >= j.n {
			return
		}
		j.exec(int(i))
	}
}

// exec runs one index, capturing the first panic so it can be re-raised in
// the caller's goroutine instead of crashing a pool worker.
func (j *job) exec(i int) {
	defer func() {
		if r := recover(); r != nil {
			j.mu.Lock()
			if !j.panicked {
				j.panicked, j.panicVal = true, r
			}
			j.mu.Unlock()
		}
		if j.completed.Add(1) == j.n {
			close(j.done)
		}
	}()
	j.fn(i)
}

// Pool is a reusable set of worker goroutines. The zero value is not usable;
// create one with New or use the package-level Shared pool.
type Pool struct {
	width int
	jobs  chan *job
	once  sync.Once
}

// New returns a pool with the given number of persistent workers
// (width <= 0 selects runtime.GOMAXPROCS(0)). Workers start lazily on the
// first ForEach call and live for the life of the process; pools are cheap
// enough that tests create dedicated ones freely.
func New(width int) *Pool {
	if width <= 0 {
		width = runtime.GOMAXPROCS(0)
	}
	return &Pool{width: width, jobs: make(chan *job)}
}

// Width returns the number of persistent workers.
func (p *Pool) Width() int { return p.width }

var shared = New(0)

// Shared returns the package-level GOMAXPROCS-sized pool used by default
// throughout the repository.
func Shared() *Pool { return shared }

// start launches the persistent workers exactly once.
func (p *Pool) start() {
	p.once.Do(func() {
		for w := 0; w < p.width; w++ {
			go func() {
				for j := range p.jobs {
					j.run()
				}
			}()
		}
	})
}

// ForEach runs fn(i) for every i in [0, n) and returns when all calls have
// finished. The caller's goroutine always executes work; up to max-1 idle
// pool workers (max <= 0 means width+1, i.e. every worker plus the caller)
// are recruited without blocking, so ForEach never waits for a busy pool.
// If any fn panics, the first recovered value is re-panicked in the caller's
// goroutine after the remaining calls complete.
func (p *Pool) ForEach(n, max int, fn func(int)) {
	if n <= 0 {
		return
	}
	if max <= 0 {
		max = p.width + 1
	}
	if n == 1 || max == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	p.start()
	j := &job{fn: fn, n: int64(n), done: make(chan struct{})}
	helpers := min(max-1, n-1, p.width)
offer:
	for h := 0; h < helpers; h++ {
		select {
		case p.jobs <- j:
		default:
			break offer // no idle worker right now; don't block
		}
	}
	j.run()
	<-j.done
	if j.panicked {
		panic(j.panicVal)
	}
}

// ForEachCtx is ForEach with cooperative cancellation: once ctx is done,
// indices that have not started yet are skipped (each slot still completes
// immediately so the call returns promptly), and ctx.Err() is returned.
// Indices already executing run to completion — fn itself is responsible
// for observing ctx inside long-running work. A nil error means every index
// ran. This is the entry point the candidate-LP fan-out uses so a decision
// deadline stops scheduling new simplex solves between candidates.
func (p *Pool) ForEachCtx(ctx context.Context, n, max int, fn func(int)) error {
	done := ctx.Done()
	if done == nil {
		p.ForEach(n, max, fn)
		return nil
	}
	p.ForEach(n, max, func(i int) {
		select {
		case <-done:
			// Canceled: skip the work but let the job counter advance.
		default:
			fn(i)
		}
	})
	return ctx.Err()
}
