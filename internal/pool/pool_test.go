package pool

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestForEachCoversAllIndices checks every index runs exactly once across a
// range of n/width/max combinations.
func TestForEachCoversAllIndices(t *testing.T) {
	for _, width := range []int{1, 2, 4, 8} {
		p := New(width)
		for _, n := range []int{0, 1, 2, 3, 7, 64, 1000} {
			for _, max := range []int{0, 1, 2, 16} {
				counts := make([]atomic.Int64, n)
				p.ForEach(n, max, func(i int) { counts[i].Add(1) })
				for i := range counts {
					if got := counts[i].Load(); got != 1 {
						t.Fatalf("width=%d n=%d max=%d: index %d ran %d times", width, n, max, i, got)
					}
				}
			}
		}
	}
}

// TestForEachConcurrency verifies real cross-goroutine execution: the job is
// handed to the single pool worker with a blocking send (guaranteed
// delivery), the caller participates too, and the two executors must be in
// flight simultaneously for either to finish. A 1-wide pool plus the caller
// gives two executors even on one CPU.
func TestForEachConcurrency(t *testing.T) {
	p := New(1)
	p.start()
	var inFlight, peak atomic.Int64
	var mu sync.Mutex
	barrier := make(chan struct{})
	first := true
	j := &job{n: 2, done: make(chan struct{})}
	j.fn = func(i int) {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		if cur > peak.Load() {
			peak.Store(cur)
		}
		mu.Lock()
		mine := first
		first = false
		mu.Unlock()
		if mine {
			<-barrier // parked until the other executor arrives
		} else {
			close(barrier)
		}
	}
	p.jobs <- j // blocking handoff: the worker definitely runs this job
	j.run()     // caller participates, exactly as ForEach does
	<-j.done
	if peak.Load() != 2 {
		t.Fatalf("peak concurrency %d, want 2", peak.Load())
	}
}

// TestForEachMaxOne forces the sequential path and checks ordering: with
// max=1 the caller must run the indices itself, in order.
func TestForEachMaxOne(t *testing.T) {
	p := New(4)
	var got []int
	p.ForEach(5, 1, func(i int) { got = append(got, i) })
	for i, v := range got {
		if v != i {
			t.Fatalf("sequential path out of order: %v", got)
		}
	}
	if len(got) != 5 {
		t.Fatalf("ran %d of 5 indices", len(got))
	}
}

// TestForEachNested exercises the deadlock-freedom claim: jobs submitted
// from inside pool workers must complete even when every worker is busy.
func TestForEachNested(t *testing.T) {
	p := New(2)
	var total atomic.Int64
	p.ForEach(4, 0, func(i int) {
		p.ForEach(8, 0, func(j int) { total.Add(1) })
	})
	if got := total.Load(); got != 32 {
		t.Fatalf("nested ForEach ran %d inner calls, want 32", got)
	}
}

// TestForEachPanic checks a panic inside fn is re-raised in the caller after
// the job drains, not in a pool worker (which would crash the process).
func TestForEachPanic(t *testing.T) {
	p := New(2)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	p.ForEach(8, 0, func(i int) {
		if i == 3 {
			panic("boom")
		}
	})
	t.Fatal("ForEach returned instead of panicking")
}

// TestSharedPool sanity-checks the package-level pool.
func TestSharedPool(t *testing.T) {
	if Shared().Width() != runtime.GOMAXPROCS(0) {
		t.Fatalf("shared width %d, want GOMAXPROCS %d", Shared().Width(), runtime.GOMAXPROCS(0))
	}
	var n atomic.Int64
	Shared().ForEach(100, 0, func(int) { n.Add(1) })
	if n.Load() != 100 {
		t.Fatalf("shared pool ran %d of 100", n.Load())
	}
}
