// Package history turns historical alert logs into the two things the
// online game needs at run time:
//
//   - per-type arrival curves, from which the expected number of future
//     alerts after any time of day is estimated (the Poisson means λ^t(s)
//     of the paper's §3.1, footnote: "the vast majority of alerts are false
//     positives; consequently we can estimate d^t_τ from alert log data"),
//   - the paper's "knowledge rollback" stabilizer: when the estimated total
//     future volume drops below a threshold (4 in the paper), the estimate
//     freezes at the last healthy query point, so a late-day attacker finds
//     no free lunch after the budget model thinks the day is over.
//
// It also reproduces the daily per-type statistics of Table 1.
package history

import (
	"fmt"
	"sort"
	"time"

	"github.com/auditgames/sag/internal/dist"
)

// Record is one historical alert, reduced to what estimation needs: the day
// it occurred, its (0-based, contiguous) type index, and its time of day.
type Record struct {
	Day  int
	Type int
	Time time.Duration
}

// Stats summarizes the daily volume of one alert type over the historical
// window — the row format of the paper's Table 1.
type Stats struct {
	Type int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
}

// DailyStats computes per-type daily count statistics over numDays days
// (days without alerts of a type contribute zero counts). Records must have
// Day in [0, numDays) and Type in [0, numTypes).
func DailyStats(recs []Record, numTypes, numDays int) ([]Stats, error) {
	if numTypes <= 0 || numDays <= 0 {
		return nil, fmt.Errorf("history: need positive numTypes (%d) and numDays (%d)", numTypes, numDays)
	}
	counts := make([][]float64, numTypes)
	for t := range counts {
		counts[t] = make([]float64, numDays)
	}
	for _, r := range recs {
		if r.Type < 0 || r.Type >= numTypes {
			return nil, fmt.Errorf("history: record type %d out of [0,%d)", r.Type, numTypes)
		}
		if r.Day < 0 || r.Day >= numDays {
			return nil, fmt.Errorf("history: record day %d out of [0,%d)", r.Day, numDays)
		}
		counts[r.Type][r.Day]++
	}
	out := make([]Stats, numTypes)
	for t := range counts {
		var r dist.Running
		for _, c := range counts[t] {
			r.Add(c)
		}
		out[t] = Stats{Type: t, Mean: r.Mean(), Std: r.Std(), Min: r.Min(), Max: r.Max()}
	}
	return out, nil
}

// Curves holds the historical per-type arrival times and answers "how many
// alerts of each type are still expected after time s" by averaging over
// the historical days.
type Curves struct {
	numTypes int
	numDays  int
	// times[t] is the sorted concatenation of all type-t arrival times
	// across the window; the expected future count after s is
	// |{x > s}| / numDays.
	times [][]time.Duration
}

// NewCurves builds arrival curves from the historical window. Records must
// have Type in [0, numTypes) and Day in [0, numDays); numDays is the window
// length used for averaging.
func NewCurves(recs []Record, numTypes, numDays int) (*Curves, error) {
	if numTypes <= 0 || numDays <= 0 {
		return nil, fmt.Errorf("history: need positive numTypes (%d) and numDays (%d)", numTypes, numDays)
	}
	c := &Curves{numTypes: numTypes, numDays: numDays, times: make([][]time.Duration, numTypes)}
	for _, r := range recs {
		if r.Type < 0 || r.Type >= numTypes {
			return nil, fmt.Errorf("history: record type %d out of [0,%d)", r.Type, numTypes)
		}
		if r.Day < 0 || r.Day >= numDays {
			return nil, fmt.Errorf("history: record day %d out of [0,%d)", r.Day, numDays)
		}
		c.times[r.Type] = append(c.times[r.Type], r.Time)
	}
	for t := range c.times {
		sort.Slice(c.times[t], func(i, j int) bool { return c.times[t][i] < c.times[t][j] })
	}
	return c, nil
}

// NumTypes returns the number of alert types the curves cover.
func (c *Curves) NumTypes() int { return c.numTypes }

// FutureRates returns, per type, the expected number of alerts arriving
// strictly after the given time of day. It implements core.Estimator.
func (c *Curves) FutureRates(at time.Duration) ([]float64, error) {
	out := make([]float64, c.numTypes)
	for t, ts := range c.times {
		// First index with time > at.
		idx := sort.Search(len(ts), func(i int) bool { return ts[i] > at })
		out[t] = float64(len(ts)-idx) / float64(c.numDays)
	}
	return out, nil
}

// TotalFutureMean returns the expected total number of future alerts across
// all types after the given time — the quantity the rollback threshold is
// compared against.
func (c *Curves) TotalFutureMean(at time.Duration) float64 {
	total := 0.0
	rates, _ := c.FutureRates(at)
	for _, r := range rates {
		total += r
	}
	return total
}

// DefaultRollbackThreshold is the threshold the paper uses in both the
// single-type and multi-type experiments.
const DefaultRollbackThreshold = 4.0

// Rollback wraps Curves with the paper's knowledge-rollback rule: while the
// estimated total future volume stays at or above the threshold, queries
// pass through (and the query time is remembered); once it drops below, the
// estimate is frozen at the last healthy query time. A Rollback is stateful
// per audit cycle — build a fresh one (or Reset) for each day.
type Rollback struct {
	curves    *Curves
	threshold float64
	lastGood  time.Duration
	seenGood  bool
}

// NewRollback wraps curves with the given threshold (pass
// DefaultRollbackThreshold for the paper's setting).
func NewRollback(curves *Curves, threshold float64) (*Rollback, error) {
	if curves == nil {
		return nil, fmt.Errorf("history: nil curves")
	}
	if threshold < 0 {
		return nil, fmt.Errorf("history: negative rollback threshold %g", threshold)
	}
	return &Rollback{curves: curves, threshold: threshold}, nil
}

// FutureRates implements core.Estimator with rollback semantics.
func (r *Rollback) FutureRates(at time.Duration) ([]float64, error) {
	if r.curves.TotalFutureMean(at) >= r.threshold {
		r.lastGood = at
		r.seenGood = true
		return r.curves.FutureRates(at)
	}
	if r.seenGood {
		return r.curves.FutureRates(r.lastGood)
	}
	// The whole day is below threshold (tiny historical volume): fall back
	// to the start-of-day estimate, the most conservative choice.
	return r.curves.FutureRates(0)
}

// Engaged reports whether the last query was answered from a rolled-back
// time rather than the query time.
func (r *Rollback) Engaged(at time.Duration) bool {
	return r.curves.TotalFutureMean(at) < r.threshold
}

// Reset clears the per-cycle rollback state.
func (r *Rollback) Reset() {
	r.lastGood = 0
	r.seenGood = false
}

// Window maintains a sliding window of the most recent days' alert
// records, the way a production deployment runs the paper's protocol: each
// night the finished day enters the window, the oldest falls out, and the
// next cycle's curves are fit on what remains. Building a Window and
// calling Curves is equivalent to NewCurves over the same records, so the
// evaluation harness and the server share identical estimation.
type Window struct {
	numTypes int
	capacity int
	days     [][]Record // ring buffer in arrival order
}

// NewWindow creates a sliding window holding up to capacity days over
// numTypes alert types.
func NewWindow(numTypes, capacity int) (*Window, error) {
	if numTypes <= 0 {
		return nil, fmt.Errorf("history: need positive numTypes, got %d", numTypes)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("history: need positive capacity, got %d", capacity)
	}
	return &Window{numTypes: numTypes, capacity: capacity}, nil
}

// AddDay pushes one finished day's records (their Day fields are ignored;
// the window renumbers) and evicts the oldest day when over capacity.
func (w *Window) AddDay(recs []Record) error {
	day := make([]Record, 0, len(recs))
	for _, r := range recs {
		if r.Type < 0 || r.Type >= w.numTypes {
			return fmt.Errorf("history: record type %d out of [0,%d)", r.Type, w.numTypes)
		}
		day = append(day, r)
	}
	w.days = append(w.days, day)
	if len(w.days) > w.capacity {
		w.days = w.days[1:]
	}
	return nil
}

// Len returns the number of days currently in the window.
func (w *Window) Len() int { return len(w.days) }

// Curves fits arrival curves on the window's current contents.
func (w *Window) Curves() (*Curves, error) {
	if len(w.days) == 0 {
		return nil, fmt.Errorf("history: window is empty")
	}
	var recs []Record
	for d, day := range w.days {
		for _, r := range day {
			r.Day = d
			recs = append(recs, r)
		}
	}
	return NewCurves(recs, w.numTypes, len(w.days))
}

// RateRollback is the alternative reading of the paper's rollback trigger:
// instead of freezing when the total *remaining* volume drops below the
// threshold, it freezes when the expected arrival *rate* — the mean number
// of arrivals inside the next Window — drops below it. This engages
// earlier in the evening (while tens of alerts may still remain), trading
// a slightly staler estimate for an earlier stabilization point. Ablation
// A6 compares the two readings.
type RateRollback struct {
	curves    *Curves
	threshold float64
	window    time.Duration
	lastGood  time.Duration
	seenGood  bool
}

// DefaultRateWindow is the default window over which the arrival rate is
// measured (one hour).
const DefaultRateWindow = time.Hour

// NewRateRollback wraps curves with the rate-triggered rollback. window
// ≤ 0 selects DefaultRateWindow.
func NewRateRollback(curves *Curves, threshold float64, window time.Duration) (*RateRollback, error) {
	if curves == nil {
		return nil, fmt.Errorf("history: nil curves")
	}
	if threshold < 0 {
		return nil, fmt.Errorf("history: negative rollback threshold %g", threshold)
	}
	if window <= 0 {
		window = DefaultRateWindow
	}
	return &RateRollback{curves: curves, threshold: threshold, window: window}, nil
}

// windowRate returns the expected number of arrivals in (at, at+window].
func (r *RateRollback) windowRate(at time.Duration) float64 {
	return r.curves.TotalFutureMean(at) - r.curves.TotalFutureMean(at+r.window)
}

// FutureRates implements core.Estimator with rate-triggered rollback.
func (r *RateRollback) FutureRates(at time.Duration) ([]float64, error) {
	if r.windowRate(at) >= r.threshold {
		r.lastGood = at
		r.seenGood = true
		return r.curves.FutureRates(at)
	}
	if r.seenGood {
		return r.curves.FutureRates(r.lastGood)
	}
	return r.curves.FutureRates(0)
}

// Engaged reports whether a query at this time would be rolled back.
func (r *RateRollback) Engaged(at time.Duration) bool {
	return r.windowRate(at) < r.threshold
}

// Reset clears the per-cycle state.
func (r *RateRollback) Reset() {
	r.lastGood = 0
	r.seenGood = false
}
