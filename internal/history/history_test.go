package history

import (
	"math"
	"testing"
	"time"
)

func hour(h float64) time.Duration { return time.Duration(h * float64(time.Hour)) }

func TestDailyStatsBasic(t *testing.T) {
	// Type 0: 2 alerts day 0, 4 alerts day 1 → mean 3, std sqrt(2).
	// Type 1: none → mean 0.
	recs := []Record{
		{Day: 0, Type: 0, Time: hour(9)},
		{Day: 0, Type: 0, Time: hour(10)},
		{Day: 1, Type: 0, Time: hour(9)},
		{Day: 1, Type: 0, Time: hour(10)},
		{Day: 1, Type: 0, Time: hour(11)},
		{Day: 1, Type: 0, Time: hour(12)},
	}
	stats, err := DailyStats(recs, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stats[0].Mean != 3 || math.Abs(stats[0].Std-math.Sqrt2) > 1e-12 {
		t.Fatalf("type 0 stats = %+v", stats[0])
	}
	if stats[0].Min != 2 || stats[0].Max != 4 {
		t.Fatalf("type 0 min/max = %g/%g", stats[0].Min, stats[0].Max)
	}
	if stats[1].Mean != 0 || stats[1].Std != 0 {
		t.Fatalf("type 1 stats = %+v", stats[1])
	}
}

func TestDailyStatsValidation(t *testing.T) {
	if _, err := DailyStats(nil, 0, 1); err == nil {
		t.Error("zero types should be rejected")
	}
	if _, err := DailyStats([]Record{{Day: 0, Type: 5}}, 2, 1); err == nil {
		t.Error("out-of-range type should be rejected")
	}
	if _, err := DailyStats([]Record{{Day: 9, Type: 0}}, 2, 1); err == nil {
		t.Error("out-of-range day should be rejected")
	}
}

func TestCurvesFutureRates(t *testing.T) {
	// Two history days. Type 0 arrives at 9:00 and 15:00 each day; type 1
	// arrives at 12:00 on day 0 only.
	recs := []Record{
		{Day: 0, Type: 0, Time: hour(9)},
		{Day: 0, Type: 0, Time: hour(15)},
		{Day: 1, Type: 0, Time: hour(9)},
		{Day: 1, Type: 0, Time: hour(15)},
		{Day: 0, Type: 1, Time: hour(12)},
	}
	c, err := NewCurves(recs, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	check := func(at time.Duration, want0, want1 float64) {
		t.Helper()
		rates, err := c.FutureRates(at)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(rates[0]-want0) > 1e-12 || math.Abs(rates[1]-want1) > 1e-12 {
			t.Fatalf("FutureRates(%v) = %v, want [%g %g]", at, rates, want0, want1)
		}
	}
	check(0, 2, 0.5)
	check(hour(9), 1, 0.5)     // strictly after 9:00 → one per day for type 0
	check(hour(12), 1, 0)      // type 1's 12:00 arrival is not "after" 12:00
	check(hour(15), 0, 0)      // day over
	check(hour(8.999), 2, 0.5) // just before the morning batch
	if c.NumTypes() != 2 {
		t.Fatalf("NumTypes = %d", c.NumTypes())
	}
}

func TestCurvesTotalFutureMean(t *testing.T) {
	recs := []Record{
		{Day: 0, Type: 0, Time: hour(9)},
		{Day: 0, Type: 1, Time: hour(10)},
	}
	c, err := NewCurves(recs, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TotalFutureMean(0); got != 2 {
		t.Fatalf("TotalFutureMean(0) = %g, want 2", got)
	}
	if got := c.TotalFutureMean(hour(9)); got != 1 {
		t.Fatalf("TotalFutureMean(9h) = %g, want 1", got)
	}
}

func TestCurvesValidation(t *testing.T) {
	if _, err := NewCurves(nil, 0, 1); err == nil {
		t.Error("zero types should be rejected")
	}
	if _, err := NewCurves([]Record{{Type: 3}}, 2, 1); err == nil {
		t.Error("out-of-range type should be rejected")
	}
	if _, err := NewCurves([]Record{{Day: 2}}, 2, 1); err == nil {
		t.Error("out-of-range day should be rejected")
	}
}

// denseCurves builds a history with many early alerts and a thin tail, the
// shape that makes rollback matter.
func denseCurves(t *testing.T) *Curves {
	t.Helper()
	var recs []Record
	for d := 0; d < 10; d++ {
		for i := 0; i < 20; i++ {
			recs = append(recs, Record{Day: d, Type: 0, Time: hour(8) + time.Duration(i)*20*time.Minute})
		}
		// One lonely evening alert every other day.
		if d%2 == 0 {
			recs = append(recs, Record{Day: d, Type: 0, Time: hour(21)})
		}
	}
	c, err := NewCurves(recs, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRollbackFreezesLateDay(t *testing.T) {
	c := denseCurves(t)
	rb, err := NewRollback(c, DefaultRollbackThreshold)
	if err != nil {
		t.Fatal(err)
	}
	// Morning: plenty of future volume, passthrough.
	morning, err := rb.FutureRates(hour(9))
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := c.FutureRates(hour(9))
	if morning[0] != direct[0] {
		t.Fatal("rollback should pass through while above threshold")
	}
	if rb.Engaged(hour(9)) {
		t.Fatal("rollback should not be engaged in the morning")
	}
	// Find the last healthy time by scanning like the engine would.
	var lastGoodRate float64
	for h := 8.0; h <= 23.5; h += 0.25 {
		rates, err := rb.FutureRates(hour(h))
		if err != nil {
			t.Fatal(err)
		}
		if !rb.Engaged(hour(h)) {
			lastGoodRate = rates[0]
			continue
		}
		// Engaged: the frozen estimate equals the last healthy one.
		if rates[0] != lastGoodRate {
			t.Fatalf("rollback at %.2fh returned %g, want frozen %g", h, rates[0], lastGoodRate)
		}
		if rates[0] < DefaultRollbackThreshold {
			t.Fatalf("frozen estimate %g below threshold", rates[0])
		}
	}
}

func TestRollbackWholeDayBelowThreshold(t *testing.T) {
	// History so thin the day never reaches the threshold: fall back to the
	// start-of-day estimate.
	recs := []Record{{Day: 0, Type: 0, Time: hour(9)}}
	c, err := NewCurves(recs, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := NewRollback(c, DefaultRollbackThreshold)
	if err != nil {
		t.Fatal(err)
	}
	rates, err := rb.FutureRates(hour(15))
	if err != nil {
		t.Fatal(err)
	}
	start, _ := c.FutureRates(0)
	if rates[0] != start[0] {
		t.Fatalf("want start-of-day fallback %g, got %g", start[0], rates[0])
	}
}

func TestRollbackReset(t *testing.T) {
	c := denseCurves(t)
	rb, err := NewRollback(c, DefaultRollbackThreshold)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rb.FutureRates(hour(12)); err != nil {
		t.Fatal(err)
	}
	rb.Reset()
	// After reset with an immediately-below-threshold query, the start-of-
	// day fallback applies (no remembered lastGood).
	rates, err := rb.FutureRates(hour(23))
	if err != nil {
		t.Fatal(err)
	}
	start, _ := c.FutureRates(0)
	if rates[0] != start[0] {
		t.Fatalf("post-reset fallback = %g, want %g", rates[0], start[0])
	}
}

func TestRollbackValidation(t *testing.T) {
	if _, err := NewRollback(nil, 1); err == nil {
		t.Error("nil curves should be rejected")
	}
	c := denseCurves(t)
	if _, err := NewRollback(c, -1); err == nil {
		t.Error("negative threshold should be rejected")
	}
}

func TestRateRollbackEngagesEarlierThanCountRollback(t *testing.T) {
	c := denseCurves(t)
	count, err := NewRollback(c, DefaultRollbackThreshold)
	if err != nil {
		t.Fatal(err)
	}
	rate, err := NewRateRollback(c, DefaultRollbackThreshold, time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	var firstCount, firstRate time.Duration = -1, -1
	for h := 0.0; h <= 23.75; h += 0.25 {
		at := hour(h)
		if firstCount < 0 && count.Engaged(at) {
			firstCount = at
		}
		if firstRate < 0 && rate.Engaged(at) {
			firstRate = at
		}
	}
	if firstRate < 0 {
		t.Fatal("rate rollback never engaged on the dense fixture")
	}
	if firstCount >= 0 && firstRate > firstCount {
		t.Fatalf("rate rollback engaged at %v, after count rollback at %v", firstRate, firstCount)
	}
}

func TestRateRollbackFreezeAndReset(t *testing.T) {
	c := denseCurves(t)
	// The dense fixture runs at ≈3 arrivals/hour, so a threshold of 2
	// keeps the morning healthy and engages once arrivals stop.
	rr, err := NewRateRollback(c, 2, 0) // default window
	if err != nil {
		t.Fatal(err)
	}
	// Healthy morning query records lastGood.
	morning, err := rr.FutureRates(hour(9))
	if err != nil {
		t.Fatal(err)
	}
	direct, _ := c.FutureRates(hour(9))
	if morning[0] != direct[0] {
		t.Fatal("healthy query should pass through")
	}
	// Find an engaged time and verify the frozen value matches the last
	// healthy query.
	var frozenAt time.Duration = -1
	for h := 9.25; h <= 23.5; h += 0.25 {
		at := hour(h)
		if rr.Engaged(at) {
			frozenAt = at
			break
		}
		if _, err := rr.FutureRates(at); err != nil {
			t.Fatal(err)
		}
	}
	if frozenAt < 0 {
		t.Fatal("rate rollback never engaged")
	}
	before, _ := rr.FutureRates(frozenAt - 15*time.Minute)
	frozen, err := rr.FutureRates(frozenAt)
	if err != nil {
		t.Fatal(err)
	}
	if frozen[0] != before[0] {
		t.Fatalf("frozen rate %g, want last healthy %g", frozen[0], before[0])
	}
	rr.Reset()
	rates, err := rr.FutureRates(hour(23))
	if err != nil {
		t.Fatal(err)
	}
	start, _ := c.FutureRates(0)
	if rates[0] != start[0] {
		t.Fatal("post-reset engaged query should fall back to start of day")
	}
}

func TestRateRollbackValidation(t *testing.T) {
	if _, err := NewRateRollback(nil, 1, time.Hour); err == nil {
		t.Error("nil curves should be rejected")
	}
	c := denseCurves(t)
	if _, err := NewRateRollback(c, -1, time.Hour); err == nil {
		t.Error("negative threshold should be rejected")
	}
}

func TestWindowMatchesNewCurves(t *testing.T) {
	w, err := NewWindow(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	var all []Record
	for d := 0; d < 4; d++ {
		var day []Record
		for i := 0; i < 6; i++ {
			r := Record{Type: i % 2, Time: hour(float64(8 + i))}
			day = append(day, r)
			all = append(all, Record{Day: d, Type: r.Type, Time: r.Time})
		}
		if err := w.AddDay(day); err != nil {
			t.Fatal(err)
		}
	}
	if w.Len() != 4 {
		t.Fatalf("Len = %d", w.Len())
	}
	fromWindow, err := w.Curves()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := NewCurves(all, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0.0; h < 24; h += 2 {
		a, _ := fromWindow.FutureRates(hour(h))
		b, _ := direct.FutureRates(hour(h))
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("window and direct curves disagree at %gh type %d: %g vs %g", h, i, a[i], b[i])
			}
		}
	}
}

func TestWindowEviction(t *testing.T) {
	w, err := NewWindow(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Day A: 10 alerts; days B, C: 1 alert each. Capacity 2 evicts A.
	mkDay := func(n int) []Record {
		var day []Record
		for i := 0; i < n; i++ {
			day = append(day, Record{Type: 0, Time: hour(9)})
		}
		return day
	}
	_ = w.AddDay(mkDay(10))
	_ = w.AddDay(mkDay(1))
	_ = w.AddDay(mkDay(1))
	if w.Len() != 2 {
		t.Fatalf("Len = %d, want 2 after eviction", w.Len())
	}
	c, err := w.Curves()
	if err != nil {
		t.Fatal(err)
	}
	rates, _ := c.FutureRates(0)
	if rates[0] != 1 {
		t.Fatalf("post-eviction mean %g, want 1 (day A gone)", rates[0])
	}
}

func TestWindowValidation(t *testing.T) {
	if _, err := NewWindow(0, 1); err == nil {
		t.Error("zero types should be rejected")
	}
	if _, err := NewWindow(1, 0); err == nil {
		t.Error("zero capacity should be rejected")
	}
	w, _ := NewWindow(1, 2)
	if err := w.AddDay([]Record{{Type: 5}}); err == nil {
		t.Error("out-of-range type should be rejected")
	}
	if _, err := w.Curves(); err == nil {
		t.Error("empty window should refuse to fit curves")
	}
}

func TestZeroThresholdRollbackIsPassthrough(t *testing.T) {
	c := denseCurves(t)
	rb, err := NewRollback(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	for h := 0.0; h < 24; h += 1.5 {
		got, err := rb.FutureRates(hour(h))
		if err != nil {
			t.Fatal(err)
		}
		want, _ := c.FutureRates(hour(h))
		if got[0] != want[0] {
			t.Fatalf("threshold 0 at %gh: got %g, want %g", h, got[0], want[0])
		}
	}
}
