package history

import (
	"encoding/json"
	"fmt"
	"time"
)

// rollbackState is the durable form of the per-cycle rollback memory shared
// by Rollback and RateRollback: the last healthy query time and whether one
// has been seen this cycle. The curves themselves are fit from history and
// rebuilt at boot, so they are not part of the snapshot.
type rollbackState struct {
	LastGood time.Duration `json:"last_good"`
	SeenGood bool          `json:"seen_good"`
}

// MarshalState exports the estimator's per-cycle state for inclusion in an
// engine snapshot. It implements the optional interface the durable server
// probes for (see server durability docs).
func (r *Rollback) MarshalState() ([]byte, error) {
	return json.Marshal(rollbackState{LastGood: r.lastGood, SeenGood: r.seenGood})
}

// UnmarshalState restores per-cycle state exported by MarshalState.
func (r *Rollback) UnmarshalState(b []byte) error {
	var st rollbackState
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("history: restoring rollback state: %w", err)
	}
	if st.LastGood < 0 {
		return fmt.Errorf("history: restoring negative last-good time %v", st.LastGood)
	}
	r.lastGood = st.LastGood
	r.seenGood = st.SeenGood
	return nil
}

// MarshalState exports the estimator's per-cycle state; see
// Rollback.MarshalState.
func (r *RateRollback) MarshalState() ([]byte, error) {
	return json.Marshal(rollbackState{LastGood: r.lastGood, SeenGood: r.seenGood})
}

// UnmarshalState restores per-cycle state exported by MarshalState.
func (r *RateRollback) UnmarshalState(b []byte) error {
	var st rollbackState
	if err := json.Unmarshal(b, &st); err != nil {
		return fmt.Errorf("history: restoring rate-rollback state: %w", err)
	}
	if st.LastGood < 0 {
		return fmt.Errorf("history: restoring negative last-good time %v", st.LastGood)
	}
	r.lastGood = st.LastGood
	r.seenGood = st.SeenGood
	return nil
}
