package logstore

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/emr"
)

func ev(day int, h float64, emp, pat int) emr.AccessEvent {
	return emr.AccessEvent{
		Day:        day,
		Time:       time.Duration(h * float64(time.Hour)),
		EmployeeID: emp,
		PatientID:  pat,
	}
}

func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	events := []emr.AccessEvent{
		ev(0, 8.5, 1, 2),
		ev(0, 9.25, 3, 4),
		ev(1, 0, 0, 0),
		ev(55, 23.99, 1<<20, 1<<24),
	}
	if err := w.AppendAll(events); err != nil {
		t.Fatal(err)
	}
	if w.Count() != int64(len(events)) {
		t.Fatalf("Count = %d", w.Count())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(events) {
		t.Fatalf("read %d events, want %d", len(got), len(events))
	}
	for i := range events {
		if got[i] != events[i] {
			t.Fatalf("event %d: %+v != %+v", i, got[i], events[i])
		}
	}
	if n, err := store.Count(); err != nil || n != int64(len(events)) {
		t.Fatalf("Count = %d, %v", n, err)
	}
}

func TestSegmentRollover(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments: every ~100 bytes rolls.
	w, err := NewWriter(dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := w.Append(ev(i%56, float64(i%24), i, i*2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store.Segments() < 5 {
		t.Fatalf("expected many segments at 100-byte roll size, got %d", store.Segments())
	}
	got, err := store.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("read %d, want %d", len(got), n)
	}
	for i, g := range got {
		if g.EmployeeID != i {
			t.Fatalf("order lost at %d: %+v", i, g)
		}
	}
}

func TestReopenStartsFreshSegment(t *testing.T) {
	dir := t.TempDir()
	w1, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = w1.Append(ev(0, 1, 1, 1))
	_ = w1.Close()
	w2, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	_ = w2.Append(ev(0, 2, 2, 2))
	_ = w2.Close()
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if store.Segments() != 2 {
		t.Fatalf("segments = %d, want 2 (sealed files are immutable)", store.Segments())
	}
	got, err := store.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].EmployeeID != 1 || got[1].EmployeeID != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestCorruptionDetection(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		_ = w.Append(ev(0, float64(i%24), i, i))
	}
	_ = w.Close()
	segs, _ := segments(dir)
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the data area.
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(segs[0], raw, 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	_, err = store.ReadAll()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("want ErrCorrupt, got %v", err)
	}
}

func TestBadMagicAndVersion(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "segment-000000.sagl"), []byte("NOPE\x01"), 0o644); err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := store.ReadAll(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad magic: want ErrCorrupt, got %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "segment-000000.sagl"), []byte("SAGL\x09"), 0o644); err != nil {
		t.Fatal(err)
	}
	store, _ = Open(dir)
	if _, err := store.ReadAll(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("bad version: want ErrCorrupt, got %v", err)
	}
}

func TestTruncatedSegment(t *testing.T) {
	dir := t.TempDir()
	w, _ := NewWriter(dir, 0)
	for i := 0; i < 10; i++ {
		_ = w.Append(ev(0, 1, i, i))
	}
	_ = w.Close()
	segs, _ := segments(dir)
	raw, _ := os.ReadFile(segs[0])
	if err := os.WriteFile(segs[0], raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	store, _ := Open(dir)
	if _, err := store.ReadAll(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("truncation: want ErrCorrupt, got %v", err)
	}
}

func TestWriterRejectsInvalidEvents(t *testing.T) {
	dir := t.TempDir()
	w, err := NewWriter(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Append(emr.AccessEvent{Day: -1}); err == nil {
		t.Error("negative day should be rejected")
	}
	if err := w.Append(emr.AccessEvent{EmployeeID: -2}); err == nil {
		t.Error("negative employee should be rejected")
	}
}

func TestClosedWriter(t *testing.T) {
	dir := t.TempDir()
	w, _ := NewWriter(dir, 0)
	_ = w.Close()
	if err := w.Append(ev(0, 1, 1, 1)); err == nil {
		t.Error("append after close should fail")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close should be a no-op: %v", err)
	}
}

func TestEmptyStore(t *testing.T) {
	store, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if store.Segments() != 0 {
		t.Fatal("fresh dir should have no segments")
	}
	got, err := store.ReadAll()
	if err != nil || len(got) != 0 {
		t.Fatalf("empty store read: %v, %v", got, err)
	}
}

func TestIterateEarlyStop(t *testing.T) {
	dir := t.TempDir()
	w, _ := NewWriter(dir, 0)
	for i := 0; i < 20; i++ {
		_ = w.Append(ev(0, 1, i, i))
	}
	_ = w.Close()
	store, _ := Open(dir)
	stop := errors.New("stop")
	n := 0
	err := store.Iterate(func(emr.AccessEvent) error {
		n++
		if n == 5 {
			return stop
		}
		return nil
	})
	if !errors.Is(err, stop) || n != 5 {
		t.Fatalf("early stop: n=%d err=%v", n, err)
	}
}

func TestGeneratorIntegrationThroughStore(t *testing.T) {
	// Full-day generator output survives the store byte for byte.
	world, err := emr.NewWorld(emr.WorldConfig{Seed: 2, Employees: 20, Patients: 50, Departments: 3})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := emr.NewGenerator(world, emr.GeneratorConfig{Seed: 2, PairsPerKind: 5, BackgroundPerDay: 200})
	if err != nil {
		t.Fatal(err)
	}
	day := gen.Day(0)
	dir := t.TempDir()
	w, err := NewWriter(dir, 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendAll(day); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	store, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := store.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(day) {
		t.Fatalf("read %d, want %d", len(got), len(day))
	}
	for i := range day {
		if got[i] != day[i] {
			t.Fatalf("event %d mismatch", i)
		}
	}
}
