// Package logstore is the access-log retention substrate: an append-only,
// segmented, checksummed binary log for EMR access events.
//
// The paper's deployment retains every access (≈192k/day, 10.75M over the
// study window) so that the end-of-cycle retrospective audit can pull any
// alert's full context. JSON at that volume is wasteful; this store costs
// a few bytes per event and scans millions of events per second.
//
// # Format
//
// A store is a directory of segment files named segment-NNNNNN.sagl. Each
// segment starts with a 5-byte header (magic "SAGL" + format version) and
// contains length-prefixed records:
//
//	uvarint  payloadLen
//	payload  uvarint day · uvarint timeNanos · uvarint employeeID · uvarint patientID
//	uint32   CRC-32 (IEEE) of payload, little endian
//
// Corruption (bad magic, truncated record, CRC mismatch) is detected at
// read time and reported with the segment name and offset. Writers roll to
// a new segment once the active one exceeds the configured size; a
// reopened store always starts a fresh segment, so previously sealed files
// are immutable — the property that makes retention audits trustworthy.
package logstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"github.com/auditgames/sag/internal/emr"
)

const (
	magic   = "SAGL"
	version = 1
	// headerSize is magic + version byte.
	headerSize = 5
	// maxPayload guards against corrupt length prefixes on read.
	maxPayload = 64
)

// DefaultSegmentBytes is the default segment roll size (64 MiB).
const DefaultSegmentBytes = 64 << 20

// ErrCorrupt is wrapped by all corruption errors.
var ErrCorrupt = errors.New("logstore: corrupt segment")

// Writer appends access events to a store directory. Not safe for
// concurrent use; wrap externally if needed.
type Writer struct {
	dir          string
	segmentBytes int64
	seq          int
	f            *os.File
	bw           *bufio.Writer
	written      int64
	count        int64
	buf          []byte
}

// NewWriter opens (or creates) a store directory for appending.
// segmentBytes ≤ 0 selects DefaultSegmentBytes. The writer always starts a
// fresh segment numbered after the highest existing one.
func NewWriter(dir string, segmentBytes int64) (*Writer, error) {
	if segmentBytes <= 0 {
		segmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("logstore: creating store dir: %w", err)
	}
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	next := 0
	if n := len(segs); n > 0 {
		last := segs[n-1]
		if _, err := fmt.Sscanf(filepath.Base(last), "segment-%06d.sagl", &next); err != nil {
			return nil, fmt.Errorf("logstore: unparsable segment name %q", last)
		}
		next++
	}
	w := &Writer{dir: dir, segmentBytes: segmentBytes, seq: next, buf: make([]byte, 0, 64)}
	if err := w.roll(); err != nil {
		return nil, err
	}
	return w, nil
}

// roll seals the active segment (if any) and opens the next one.
func (w *Writer) roll() error {
	if w.f != nil {
		if err := w.flushClose(); err != nil {
			return err
		}
	}
	name := filepath.Join(w.dir, fmt.Sprintf("segment-%06d.sagl", w.seq))
	f, err := os.OpenFile(name, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("logstore: creating segment: %w", err)
	}
	w.f = f
	w.bw = bufio.NewWriterSize(f, 1<<16)
	if _, err := w.bw.WriteString(magic); err != nil {
		return err
	}
	if err := w.bw.WriteByte(version); err != nil {
		return err
	}
	w.written = headerSize
	w.seq++
	return nil
}

func (w *Writer) flushClose() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	w.f = nil
	return nil
}

// Append writes one event.
func (w *Writer) Append(ev emr.AccessEvent) error {
	if w.f == nil {
		return errors.New("logstore: writer is closed")
	}
	if ev.Day < 0 || ev.Time < 0 || ev.EmployeeID < 0 || ev.PatientID < 0 {
		return fmt.Errorf("logstore: negative field in event %+v", ev)
	}
	w.buf = w.buf[:0]
	w.buf = binary.AppendUvarint(w.buf, uint64(ev.Day))
	w.buf = binary.AppendUvarint(w.buf, uint64(ev.Time))
	w.buf = binary.AppendUvarint(w.buf, uint64(ev.EmployeeID))
	w.buf = binary.AppendUvarint(w.buf, uint64(ev.PatientID))

	var lenBuf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lenBuf[:], uint64(len(w.buf)))
	if _, err := w.bw.Write(lenBuf[:n]); err != nil {
		return err
	}
	if _, err := w.bw.Write(w.buf); err != nil {
		return err
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(w.buf))
	if _, err := w.bw.Write(crcBuf[:]); err != nil {
		return err
	}
	w.written += int64(n + len(w.buf) + 4)
	w.count++
	if w.written >= w.segmentBytes {
		return w.roll()
	}
	return nil
}

// AppendAll writes a batch of events.
func (w *Writer) AppendAll(evs []emr.AccessEvent) error {
	for _, ev := range evs {
		if err := w.Append(ev); err != nil {
			return err
		}
	}
	return nil
}

// Count returns the number of events appended through this writer.
func (w *Writer) Count() int64 { return w.count }

// Close flushes and seals the active segment.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	return w.flushClose()
}

// segments lists the store's segment files in sequence order.
func segments(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("logstore: reading store dir: %w", err)
	}
	var out []string
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, "segment-") && strings.HasSuffix(name, ".sagl") {
			out = append(out, filepath.Join(dir, name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// Store reads a store directory.
type Store struct {
	dir  string
	segs []string
}

// Open lists the segments of a store directory.
func Open(dir string) (*Store, error) {
	segs, err := segments(dir)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, segs: segs}, nil
}

// Segments returns the number of segment files.
func (s *Store) Segments() int { return len(s.segs) }

// Iterate streams every event in append order, invoking fn for each. It
// stops early if fn returns an error (which it propagates).
func (s *Store) Iterate(fn func(emr.AccessEvent) error) error {
	for _, seg := range s.segs {
		if err := iterateSegment(seg, fn); err != nil {
			return err
		}
	}
	return nil
}

// Count scans the store and returns the total number of events.
func (s *Store) Count() (int64, error) {
	var n int64
	err := s.Iterate(func(emr.AccessEvent) error {
		n++
		return nil
	})
	return n, err
}

// ReadAll loads the whole store into memory (tests and small stores).
func (s *Store) ReadAll() ([]emr.AccessEvent, error) {
	var out []emr.AccessEvent
	err := s.Iterate(func(ev emr.AccessEvent) error {
		out = append(out, ev)
		return nil
	})
	return out, err
}

func iterateSegment(path string, fn func(emr.AccessEvent) error) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("logstore: opening segment: %w", err)
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<16)

	head := make([]byte, headerSize)
	if _, err := io.ReadFull(br, head); err != nil {
		return fmt.Errorf("%w: %s: short header: %v", ErrCorrupt, filepath.Base(path), err)
	}
	if string(head[:4]) != magic {
		return fmt.Errorf("%w: %s: bad magic %q", ErrCorrupt, filepath.Base(path), head[:4])
	}
	if head[4] != version {
		return fmt.Errorf("%w: %s: unsupported version %d", ErrCorrupt, filepath.Base(path), head[4])
	}

	offset := int64(headerSize)
	payload := make([]byte, 0, maxPayload)
	for {
		plen, err := binary.ReadUvarint(br)
		if err == io.EOF {
			return nil // clean end of segment
		}
		if err != nil {
			return fmt.Errorf("%w: %s@%d: reading length: %v", ErrCorrupt, filepath.Base(path), offset, err)
		}
		if plen == 0 || plen > maxPayload {
			return fmt.Errorf("%w: %s@%d: implausible payload length %d", ErrCorrupt, filepath.Base(path), offset, plen)
		}
		payload = payload[:plen]
		if _, err := io.ReadFull(br, payload); err != nil {
			return fmt.Errorf("%w: %s@%d: truncated payload: %v", ErrCorrupt, filepath.Base(path), offset, err)
		}
		var crcBuf [4]byte
		if _, err := io.ReadFull(br, crcBuf[:]); err != nil {
			return fmt.Errorf("%w: %s@%d: truncated checksum: %v", ErrCorrupt, filepath.Base(path), offset, err)
		}
		if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
			return fmt.Errorf("%w: %s@%d: checksum mismatch", ErrCorrupt, filepath.Base(path), offset)
		}
		ev, err := decodePayload(payload)
		if err != nil {
			return fmt.Errorf("%w: %s@%d: %v", ErrCorrupt, filepath.Base(path), offset, err)
		}
		if err := fn(ev); err != nil {
			return err
		}
		offset += int64(plen) + 4 // approximate (length prefix omitted); used for error context only
	}
}

func decodePayload(p []byte) (emr.AccessEvent, error) {
	var ev emr.AccessEvent
	vals := [4]uint64{}
	rest := p
	for i := range vals {
		v, n := binary.Uvarint(rest)
		if n <= 0 {
			return ev, fmt.Errorf("field %d: bad varint", i)
		}
		vals[i] = v
		rest = rest[n:]
	}
	if len(rest) != 0 {
		return ev, fmt.Errorf("%d trailing bytes", len(rest))
	}
	ev.Day = int(vals[0])
	ev.Time = time.Duration(vals[1])
	ev.EmployeeID = int(vals[2])
	ev.PatientID = int(vals[3])
	return ev, nil
}
