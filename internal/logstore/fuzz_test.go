package logstore

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"github.com/auditgames/sag/internal/emr"
)

// FuzzDecodePayload hardens the record decoder: arbitrary payload bytes
// must decode or error, never panic, and a successful decode must
// round-trip through the encoder.
func FuzzDecodePayload(f *testing.F) {
	good := binary.AppendUvarint(nil, 3)
	good = binary.AppendUvarint(good, 12345)
	good = binary.AppendUvarint(good, 42)
	good = binary.AppendUvarint(good, 77)
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Add([]byte{0x00})

	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := decodePayload(data)
		if err != nil {
			return
		}
		// Round-trip: re-encode and decode again.
		enc := binary.AppendUvarint(nil, uint64(ev.Day))
		enc = binary.AppendUvarint(enc, uint64(ev.Time))
		enc = binary.AppendUvarint(enc, uint64(ev.EmployeeID))
		enc = binary.AppendUvarint(enc, uint64(ev.PatientID))
		back, err := decodePayload(enc)
		if err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
		// Varint overflow into int can flip signs for adversarial inputs;
		// the writer rejects negative fields, so decode parity is only
		// guaranteed on the non-negative domain.
		if ev.Day >= 0 && ev.Time >= 0 && ev.EmployeeID >= 0 && ev.PatientID >= 0 && back != ev {
			t.Fatalf("round trip changed event: %+v vs %+v", ev, back)
		}
	})
}

// FuzzIterateSegment feeds arbitrary bytes as a segment file: Iterate must
// either succeed or report corruption — never panic or loop forever.
func FuzzIterateSegment(f *testing.F) {
	// Seed with a real segment.
	dir := f.TempDir()
	w, err := NewWriter(dir, 0)
	if err != nil {
		f.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		_ = w.Append(ev(0, float64(i), i, i))
	}
	_ = w.Close()
	segs, _ := segments(dir)
	raw, err := os.ReadFile(segs[0])
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add([]byte("SAGL\x01"))
	f.Add([]byte("SAGL"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		tmp := t.TempDir()
		path := filepath.Join(tmp, "segment-000000.sagl")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		n := 0
		_ = iterateSegment(path, func(emr.AccessEvent) error {
			n++
			if n > 1_000_000 {
				t.Fatal("implausible record count from fuzzed bytes")
			}
			return nil
		})
	})
}
