package experiments

import (
	"fmt"
	"io"
)

// RunAll executes every experiment at the given scale and renders a full
// report to w — the content EXPERIMENTS.md is built from and what
// `sagbench -all` prints.
func RunAll(w io.Writer, scale Scale) error {
	fmt.Fprintf(w, "=== SAG experiment suite (days=%d, history=%d, seed=%d) ===\n\n",
		scale.Days, scale.HistoryDays, scale.Seed)

	t1, err := Table1(scale)
	if err != nil {
		return fmt.Errorf("table1: %w", err)
	}
	t1.Render(w)
	fmt.Fprintln(w)

	Table2().Render(w)
	fmt.Fprintln(w)

	f2, err := Figure2(scale)
	if err != nil {
		return fmt.Errorf("figure2: %w", err)
	}
	f2.Render(w)
	fmt.Fprintln(w)
	renderCheckList(w, "Figure 2 shape", f2.ShapeChecks())
	fmt.Fprintln(w)

	f3, err := Figure3(scale)
	if err != nil {
		return fmt.Errorf("figure3: %w", err)
	}
	f3.Render(w)
	fmt.Fprintln(w)
	renderCheckList(w, "Figure 3 shape", f3.ShapeChecks())
	fmt.Fprintln(w)

	rt, err := Runtime(scale)
	if err != nil {
		return fmt.Errorf("runtime: %w", err)
	}
	RenderRuntime(w, rt)
	fmt.Fprintln(w)

	rb, err := AblationRollback(scale)
	if err != nil {
		return fmt.Errorf("ablation rollback: %w", err)
	}
	rb.Render(w)
	fmt.Fprintln(w)

	bud, err := AblationBudget(scale, nil)
	if err != nil {
		return fmt.Errorf("ablation budget: %w", err)
	}
	bud.Render(w)
	fmt.Fprintln(w)

	AblationEstimator(nil, nil).Render(w)
	fmt.Fprintln(w)

	rob, err := AblationRobust(1, nil, nil)
	if err != nil {
		return fmt.Errorf("ablation robust: %w", err)
	}
	rob.Render(w)
	fmt.Fprintln(w)

	rv, err := AblationRollbackVariants(scale)
	if err != nil {
		return fmt.Errorf("ablation rollback variants: %w", err)
	}
	rv.Render(w)
	fmt.Fprintln(w)

	val, err := Validation(scale, 400)
	if err != nil {
		return fmt.Errorf("validation: %w", err)
	}
	val.Render(w)
	fmt.Fprintln(w)

	// Full paper volume only at full scale; a reduced sweep otherwise.
	tpDays, tpPerDay := 56, 192_000
	if scale.Days < 56 {
		tpDays, tpPerDay = scale.Days, 10_000
	}
	tp, err := Throughput(scale.Seed, tpDays, tpPerDay)
	if err != nil {
		return fmt.Errorf("throughput: %w", err)
	}
	tp.Render(w)
	return nil
}
