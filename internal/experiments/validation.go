package experiments

import (
	"fmt"
	"io"

	"github.com/auditgames/sag/internal/adversary"
	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/history"
	"github.com/auditgames/sag/internal/sim"
)

// ValidationRow is the Monte-Carlo calibration result for one attacker
// strategy.
type ValidationRow struct {
	Strategy     string
	Trials       int
	WarnRate     float64 // fraction of attacks that drew a warning
	QuitRate     float64 // fraction that quit (== warn rate under OSSP)
	CatchRate    float64 // fraction caught by the retrospective audit
	MeanRealized float64 // realized auditor utility per trial
	MeanAnalytic float64 // analytic LP (3) value at the attack alerts
}

// ValidationReport is experiment V1: the end-to-end empirical check that
// realized utilities (sampled signals + sampled retrospective audits
// against simulated attackers) match the analytic equilibrium values — the
// property every figure in the paper silently relies on.
type ValidationReport struct {
	Rows []ValidationRow
}

// Validation runs the Monte-Carlo harness for the uniform, end-of-day, and
// best-response attackers on the single-type setting.
func Validation(scale Scale, trials int) (*ValidationReport, error) {
	if trials <= 0 {
		trials = 300
	}
	ds, err := sim.BuildTable1Pipeline(scale.pipeline(), []int{1})
	if err != nil {
		return nil, err
	}
	inst, err := sim.Table1Instance([]int{1})
	if err != nil {
		return nil, err
	}
	curves, err := history.NewCurves(ds.Records(0, scale.HistoryDays), ds.NumTypes, scale.HistoryDays)
	if err != nil {
		return nil, err
	}
	day := make([]core.Alert, 0, len(ds.Days[scale.HistoryDays]))
	for _, a := range ds.Days[scale.HistoryDays] {
		day = append(day, core.Alert{Type: a.Type, Time: a.Time})
	}

	rep := &ValidationReport{}
	for _, strat := range []adversary.Strategy{
		adversary.UniformAttacker{},
		adversary.EndOfDayAttacker{},
		adversary.BestResponseAttacker{},
	} {
		mc, err := adversary.Run(adversary.Config{
			Instance:          inst,
			Budget:            20,
			Day:               day,
			Curves:            curves,
			RollbackThreshold: history.DefaultRollbackThreshold,
			Strategy:          strat,
			Trials:            trials,
			Seed:              scale.Seed,
		})
		if err != nil {
			return nil, err
		}
		n := float64(mc.Trials)
		rep.Rows = append(rep.Rows, ValidationRow{
			Strategy:     mc.StrategyName,
			Trials:       mc.Trials,
			WarnRate:     float64(mc.Warnings) / n,
			QuitRate:     float64(mc.Quits) / n,
			CatchRate:    float64(mc.Caught) / n,
			MeanRealized: mc.MeanAuditor,
			MeanAnalytic: mc.MeanExpected,
		})
	}
	return rep, nil
}

// Render writes the calibration table.
func (r *ValidationReport) Render(w io.Writer) {
	fmt.Fprintln(w, "Validation V1 — Monte-Carlo realized vs analytic auditor utility (single type, B=20)")
	fmt.Fprintf(w, "%-14s %7s %9s %9s %9s %12s %12s\n",
		"strategy", "trials", "warn", "quit", "caught", "realized", "analytic")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-14s %7d %9.3f %9.3f %9.3f %12.2f %12.2f\n",
			row.Strategy, row.Trials, row.WarnRate, row.QuitRate, row.CatchRate,
			row.MeanRealized, row.MeanAnalytic)
	}
}
