package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/sim"
)

// testScale is even smaller than QuickScale so the full suite stays fast in
// unit tests.
func testScale() Scale {
	return Scale{Days: 8, HistoryDays: 6, BackgroundPerDay: 50, PairsPerKind: 40, Seed: 42}
}

func TestTable1ReproducesPaperShape(t *testing.T) {
	rep, err := Table1(Scale{Days: 20, HistoryDays: 15, BackgroundPerDay: 50, PairsPerKind: 60, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		// Allow 5 standard errors of the configured normal plus slack.
		tol := 5*row.PaperStd/math.Sqrt(20) + 2
		if math.Abs(row.Mean-row.PaperMean) > tol {
			t.Errorf("type %d: mean %.2f vs paper %.2f (tol %.2f)", row.TypeID, row.Mean, row.PaperMean, tol)
		}
		if row.Std <= 0 {
			t.Errorf("type %d: nonpositive std %g", row.TypeID, row.Std)
		}
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "Same Last Name") {
		t.Error("render should include type descriptions")
	}
}

func TestTable2Render(t *testing.T) {
	var buf bytes.Buffer
	Table2().Render(&buf)
	out := buf.String()
	for _, want := range []string{"U_d,c", "U_a,u", "-2000", "700"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 render missing %q", want)
		}
	}
}

func TestFigure2ShapeHolds(t *testing.T) {
	rep, err := Figure2(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Days) != 2 { // 8 days, 6 history → 2 groups
		t.Fatalf("days = %d, want 2", len(rep.Days))
	}
	if bad := rep.ShapeChecks(); len(bad) != 0 {
		t.Fatalf("shape violations: %v", bad)
	}
	for i, d := range rep.Days {
		if len(d.Points) == 0 {
			t.Fatalf("day %d has no points", i)
		}
		for _, p := range d.Points {
			if p.Time < 0 || p.Time >= 24*time.Hour {
				t.Fatalf("point time %v out of range", p.Time)
			}
		}
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "hourly series") {
		t.Error("figure render should include hourly panels")
	}
	if s := rep.Summary(); !strings.Contains(s, "OSSP") {
		t.Errorf("summary = %q", s)
	}
}

func TestFigure3ShapeHolds(t *testing.T) {
	rep, err := Figure3(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if bad := rep.ShapeChecks(); len(bad) != 0 {
		t.Fatalf("shape violations: %v", bad)
	}
	if len(rep.TypeIDs) != 7 {
		t.Fatalf("TypeIDs = %v", rep.TypeIDs)
	}
	// Multi-type days must include alerts of several distinct types.
	seen := map[int]bool{}
	for _, p := range rep.Days[0].Points {
		seen[p.Type] = true
	}
	if len(seen) < 3 {
		t.Errorf("day 1 covers only %d types", len(seen))
	}
}

func TestRuntimeWellUnderPaperBudget(t *testing.T) {
	reps, err := Runtime(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 4 {
		t.Fatalf("settings = %d, want 4 (single + sequential/parallel/cached 7-type arms)", len(reps))
	}
	for _, r := range reps {
		if r.Alerts == 0 {
			t.Fatalf("%s: no alerts timed", r.Setting)
		}
		// The paper's laptop needed ≈20ms; anything under that counts as
		// reproducing the "imperceptible overhead" claim.
		if r.Mean > 20*time.Millisecond {
			t.Errorf("%s: mean %v exceeds the paper's 20ms", r.Setting, r.Mean)
		}
		if r.LPSolves == 0 || r.SimplexIterations == 0 {
			t.Errorf("%s: solver stats empty (LPs=%d iters=%d)", r.Setting, r.LPSolves, r.SimplexIterations)
		}
		if r.SimplexPivots < r.SimplexIterations {
			t.Errorf("%s: pivots %d < iterations %d", r.Setting, r.SimplexPivots, r.SimplexIterations)
		}
	}
	// Sequential and parallel arms must report identical solver effort —
	// that is the determinism guarantee of the fan-out — while the cached
	// arm may only do less work, never more.
	seq, par, cac := reps[1], reps[2], reps[3]
	if seq.LPSolves != par.LPSolves || seq.SimplexPivots != par.SimplexPivots {
		t.Errorf("parallel arm effort (%d LPs, %d pivots) differs from sequential (%d, %d)",
			par.LPSolves, par.SimplexPivots, seq.LPSolves, seq.SimplexPivots)
	}
	if cac.LPSolves > seq.LPSolves {
		t.Errorf("cached arm solved more LPs (%d) than sequential (%d)", cac.LPSolves, seq.LPSolves)
	}
	if cac.CacheHits+cac.CacheMisses == 0 {
		t.Errorf("cached arm recorded no cache traffic: %+v", cac)
	}
	if par.SpeedupVsSeq <= 0 || cac.SpeedupVsSeq <= 0 {
		t.Errorf("speedup ratios not populated: parallel %g, cached %g", par.SpeedupVsSeq, cac.SpeedupVsSeq)
	}
	var buf bytes.Buffer
	RenderRuntime(&buf, reps)
	for _, col := range []string{"mean", "LPs", "simplex", "pivots", "hit%", "speedup"} {
		if !strings.Contains(buf.String(), col) {
			t.Errorf("runtime render missing %q column", col)
		}
	}
}

func TestAblationRollbackEndOfDay(t *testing.T) {
	rep, err := AblationRollback(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Days) == 0 {
		t.Fatal("no days")
	}
	for i, d := range rep.Days {
		// Rollback only alters late-day estimates, so whole-day means must
		// stay close; budget spends must be positive and bounded by B=50.
		if math.Abs(d.MeanOSSPWith-d.MeanOSSPWithout) > 25 {
			t.Errorf("day %d: rollback changed the day mean too much (%g vs %g)",
				i+1, d.MeanOSSPWith, d.MeanOSSPWithout)
		}
		for _, spent := range []float64{d.SpentWith, d.SpentWithout} {
			if spent <= 0 || spent > 50+1e-6 {
				t.Errorf("day %d: budget spent %g out of (0,50]", i+1, spent)
			}
		}
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "rollback") {
		t.Error("rollback render incomplete")
	}
}

func TestAblationBudgetMonotoneGap(t *testing.T) {
	rep, err := AblationBudget(testScale(), []float64{5, 20, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) != 3 {
		t.Fatalf("points = %d", len(rep.Points))
	}
	// More budget never hurts either policy's mean utility.
	for i := 1; i < len(rep.Points); i++ {
		if rep.Points[i].MeanOSSP < rep.Points[i-1].MeanOSSP-1 {
			t.Errorf("OSSP mean decreased with budget: %v", rep.Points)
		}
		if rep.Points[i].MeanSSE < rep.Points[i-1].MeanSSE-1 {
			t.Errorf("SSE mean decreased with budget: %v", rep.Points)
		}
	}
	// Signaling never hurts at any budget.
	for _, p := range rep.Points {
		if p.Gap < -1e-6 {
			t.Errorf("negative OSSP-SSE gap at budget %g: %g", p.Budget, p.Gap)
		}
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "budget sweep") {
		t.Error("budget render incomplete")
	}
}

func TestAblationEstimatorJensenDirection(t *testing.T) {
	rep := AblationEstimator(nil, nil)
	if len(rep.Points) == 0 {
		t.Fatal("no points")
	}
	for _, p := range rep.Points {
		// Jensen: E[1/max(D,1)] ≥ 1/E[D] ⇒ θ-poisson ≥ θ-naive before both
		// saturate at 1.
		if p.ThetaPoisson < p.ThetaNaive-1e-9 && p.ThetaNaive < 1 {
			t.Errorf("B=%g λ=%g: θ-poisson %g < θ-naive %g", p.Budget, p.Lambda, p.ThetaPoisson, p.ThetaNaive)
		}
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "naive") {
		t.Error("estimator render incomplete")
	}
}

func TestAblationRobustMonotonePremium(t *testing.T) {
	rep, err := AblationRobust(1, []float64{0.1}, []float64{0, 50, 150, 400})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TypeID != 1 || len(rep.Points) != 4 {
		t.Fatalf("report shape: %+v", rep)
	}
	prev := -1.0
	for _, p := range rep.Points {
		if p.Premium < -1e-9 {
			t.Fatalf("negative premium %g at ε=%g", p.Premium, p.Epsilon)
		}
		if p.Premium < prev-1e-9 {
			t.Fatalf("premium not monotone in ε: %v", rep.Points)
		}
		prev = p.Premium
	}
	if rep.Points[0].Premium > 1e-9 {
		t.Fatal("ε=0 premium should be 0")
	}
	if _, err := AblationRobust(0, nil, nil); err == nil {
		t.Error("type 0 should be rejected")
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "premium") {
		t.Error("robust render incomplete")
	}
}

func TestAblationRollbackVariants(t *testing.T) {
	rep, err := AblationRollbackVariants(testScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Days) == 0 {
		t.Fatal("no days")
	}
	for i, d := range rep.Days {
		// All three variants see the same morning; day means stay close.
		if math.Abs(d.MeanCount-d.MeanOff) > 30 || math.Abs(d.MeanRate-d.MeanOff) > 30 {
			t.Errorf("day %d: variant means diverged: %+v", i+1, d)
		}
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "final-rate") {
		t.Error("variant render incomplete")
	}
}

func TestRunAllProducesFullReport(t *testing.T) {
	var buf bytes.Buffer
	if err := RunAll(&buf, testScale()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, section := range []string{
		"Table 1", "Table 2", "Figure 2", "Figure 3",
		"Runtime", "Ablation A1", "Ablation A2", "Ablation A4", "Ablation A5",
		"shape: all shape checks PASS",
	} {
		if !strings.Contains(out, section) {
			t.Errorf("report missing section %q", section)
		}
	}
}

func TestValidationCalibration(t *testing.T) {
	rep, err := Validation(testScale(), 250)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 strategies", len(rep.Rows))
	}
	for _, row := range rep.Rows {
		if row.Trials != 250 {
			t.Fatalf("%s: trials %d", row.Strategy, row.Trials)
		}
		if row.Strategy == "best-response" && row.WarnRate == 0 && row.MeanRealized == 0 {
			continue // the planner may choose not to attack at this budget
		}
		// Realized vs analytic within Monte-Carlo noise (≈5 SE).
		if diff := row.MeanRealized - row.MeanAnalytic; diff > 60 || diff < -60 {
			t.Errorf("%s: realized %.1f vs analytic %.1f", row.Strategy, row.MeanRealized, row.MeanAnalytic)
		}
		// Under the exact OSSP every warned attacker quits and silent
		// alerts are never audited.
		if row.QuitRate != row.WarnRate {
			t.Errorf("%s: quit rate %.3f != warn rate %.3f", row.Strategy, row.QuitRate, row.WarnRate)
		}
		if row.CatchRate != 0 {
			t.Errorf("%s: catch rate %.3f, want 0 (Theorem 3)", row.Strategy, row.CatchRate)
		}
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "realized") {
		t.Error("validation render incomplete")
	}
}

func TestWriteDayCSV(t *testing.T) {
	rep, err := Figure2(testScale())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WriteDayCSV(&buf, 0); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "time_sec,type,ossp,online_sse,offline_sse" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != len(rep.Days[0].Points)+1 {
		t.Fatalf("rows = %d, want %d", len(lines)-1, len(rep.Days[0].Points))
	}
	if err := rep.WriteDayCSV(&buf, 99); err == nil {
		t.Error("out-of-range day should error")
	}
}

func TestFigureFromDatasetMatchesFigure(t *testing.T) {
	scale := testScale()
	ds, err := sim.BuildTable1Pipeline(sim.PipelineConfig{
		Seed:             scale.Seed,
		Days:             scale.Days,
		BackgroundPerDay: scale.BackgroundPerDay,
		PairsPerKind:     scale.PairsPerKind,
	}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := Figure2(scale)
	if err != nil {
		t.Fatal(err)
	}
	replay, err := FigureFromDataset(ds, "replay", 20, scale.HistoryDays, scale.Seed)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct.Days) != len(replay.Days) {
		t.Fatalf("day counts differ: %d vs %d", len(direct.Days), len(replay.Days))
	}
	for i := range direct.Days {
		if math.Abs(direct.Days[i].MeanOSSP-replay.Days[i].MeanOSSP) > 1e-9 {
			t.Fatalf("day %d means differ: %g vs %g",
				i, direct.Days[i].MeanOSSP, replay.Days[i].MeanOSSP)
		}
	}
}

func TestThroughputSmall(t *testing.T) {
	rep, err := Throughput(1, 2, 5000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalAccesses < 10000 {
		t.Fatalf("total accesses %d, want ≥ 10000", rep.TotalAccesses)
	}
	if rep.TotalAlerts < 500 {
		t.Fatalf("total alerts %d implausibly low", rep.TotalAlerts)
	}
	if rep.EventsPerSecond() <= 0 {
		t.Fatal("throughput should be positive")
	}
	var buf bytes.Buffer
	rep.Render(&buf)
	if !strings.Contains(buf.String(), "events/s") {
		t.Error("throughput render incomplete")
	}
	if _, err := Throughput(1, 0, 10); err == nil {
		t.Error("zero days should be rejected")
	}
}

func TestThroughputPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full 10.75M-event sweep skipped in -short mode")
	}
	// The paper's full volume: 56 days × ≈192k accesses. Streams day by
	// day, so memory stays bounded.
	rep, err := Throughput(2017, 56, 192_000)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalAccesses < 10_500_000 {
		t.Fatalf("total accesses %d, want ≈10.75M", rep.TotalAccesses)
	}
	// Daily alert volume should track Table 1's ≈460/day.
	perDay := float64(rep.TotalAlerts) / float64(rep.Days)
	if perDay < 350 || perDay > 600 {
		t.Fatalf("alerts/day %.1f far from Table 1's ≈460", perDay)
	}
	t.Logf("processed %d accesses (%.1fM events/s detection)", rep.TotalAccesses, rep.EventsPerSecond()/1e6)
}

func TestScalePresets(t *testing.T) {
	f := FullScale()
	if f.Days != 56 || f.HistoryDays != 41 {
		t.Fatalf("FullScale = %+v, want the paper's 56/41", f)
	}
	q := QuickScale()
	if q.Days <= q.HistoryDays {
		t.Fatal("QuickScale must yield at least one group")
	}
}
