package experiments

import (
	"fmt"
	"io"
	"math"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/history"
	"github.com/auditgames/sag/internal/payoff"
	"github.com/auditgames/sag/internal/signaling"
	"github.com/auditgames/sag/internal/sim"
)

// RollbackDay compares end-of-day conditions with and without knowledge
// rollback for one test day.
type RollbackDay struct {
	// FinalOSSPWith/Without are the auditor's expected utility at the
	// day's last alert (the spot a strategic late attacker would pick).
	FinalOSSPWith    float64
	FinalOSSPWithout float64
	MeanOSSPWith     float64
	MeanOSSPWithout  float64
	// SpentWith/Without are the budget totals consumed by the OSSP engine,
	// the quantity the paper says rollback steadies.
	SpentWith    float64
	SpentWithout float64
}

// RollbackReport is ablation A1: the paper's knowledge-rollback trick
// on/off. Without rollback, end-of-day future estimates collapse to ~0 and
// the solver stops protecting late alerts; the final utilities expose this.
type RollbackReport struct {
	Days []RollbackDay
}

// AblationRollback runs the multi-type experiment twice — rollback at the
// paper's threshold vs disabled — and reports per-day end-of-day health.
func AblationRollback(scale Scale) (*RollbackReport, error) {
	ds, err := sim.BuildTable1Pipeline(scale.pipeline(), sim.AllTable1TypeIDs())
	if err != nil {
		return nil, err
	}
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		return nil, err
	}
	run := func(threshold float64) ([]*sim.DayResult, error) {
		r, err := sim.NewRunner(ds, sim.Config{
			Instance:          inst,
			Budget:            50,
			RollbackThreshold: threshold,
			Seed:              scale.Seed,
		})
		if err != nil {
			return nil, err
		}
		return r.RunGroups(sim.Groups(scale.Days, scale.HistoryDays))
	}
	with, err := run(history.DefaultRollbackThreshold)
	if err != nil {
		return nil, err
	}
	without, err := run(-1) // negative disables rollback
	if err != nil {
		return nil, err
	}
	rep := &RollbackReport{}
	for i := range with {
		day := RollbackDay{}
		if n := len(with[i].Outcomes); n > 0 {
			day.FinalOSSPWith = with[i].Outcomes[n-1].OSSP
			for _, o := range with[i].Outcomes {
				day.MeanOSSPWith += o.OSSP
			}
			day.MeanOSSPWith /= float64(n)
		}
		if n := len(without[i].Outcomes); n > 0 {
			day.FinalOSSPWithout = without[i].Outcomes[n-1].OSSP
			for _, o := range without[i].Outcomes {
				day.MeanOSSPWithout += o.OSSP
			}
			day.MeanOSSPWithout /= float64(n)
		}
		day.SpentWith = with[i].OSSPSummary.BudgetSpent
		day.SpentWithout = without[i].OSSPSummary.BudgetSpent
		rep.Days = append(rep.Days, day)
	}
	return rep, nil
}

// Render writes the rollback comparison.
func (r *RollbackReport) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation A1 — knowledge rollback on/off (multi-type, B=50)")
	fmt.Fprintf(w, "%-5s %14s %14s %14s %14s %12s %12s\n",
		"day", "final(with)", "final(without)", "mean(with)", "mean(without)", "spent(with)", "spent(w/out)")
	for i, d := range r.Days {
		fmt.Fprintf(w, "%-5d %14.2f %14.2f %14.2f %14.2f %12.2f %12.2f\n",
			i+1, d.FinalOSSPWith, d.FinalOSSPWithout, d.MeanOSSPWith, d.MeanOSSPWithout,
			d.SpentWith, d.SpentWithout)
	}
	finalBetter, meanClose := 0, 0
	for _, d := range r.Days {
		if d.FinalOSSPWith >= d.FinalOSSPWithout-1e-9 {
			finalBetter++
		}
		if diff := d.MeanOSSPWith - d.MeanOSSPWithout; diff > -2 && diff < 2 {
			meanClose++
		}
	}
	fmt.Fprintf(w, "end-of-day utility at least as high with rollback on %d/%d days; ", finalBetter, len(r.Days))
	fmt.Fprintf(w, "day-mean utilities within ±2 on %d/%d days.\n", meanClose, len(r.Days))
	fmt.Fprintln(w, "Note: in this implementation the Poisson coefficient E[1/max(D,1)] already")
	fmt.Fprintln(w, "handles near-empty tails (a leftover budget sliver covers them at θ→1), so")
	fmt.Fprintln(w, "rollback's role reduces to steadier late-day budget pacing rather than the")
	fmt.Fprintln(w, "end-of-day utility rescue the paper describes; see EXPERIMENTS.md.")
}

// BudgetPoint is one budget setting of ablation A2.
type BudgetPoint struct {
	Budget   float64
	MeanOSSP float64
	MeanSSE  float64
	Gap      float64 // OSSP − SSE
}

// BudgetReport sweeps the audit budget in the single-type setting and
// reports the OSSP-over-SSE utility gap — the paper's "signaling adds
// value" claim as a function of resources.
type BudgetReport struct {
	Points []BudgetPoint
}

// AblationBudget runs the single-type experiment across budgets.
func AblationBudget(scale Scale, budgets []float64) (*BudgetReport, error) {
	if len(budgets) == 0 {
		budgets = []float64{5, 10, 20, 35, 50, 80, 120}
	}
	ds, err := sim.BuildTable1Pipeline(scale.pipeline(), []int{1})
	if err != nil {
		return nil, err
	}
	inst, err := sim.Table1Instance([]int{1})
	if err != nil {
		return nil, err
	}
	groups := sim.Groups(scale.Days, scale.HistoryDays)
	rep := &BudgetReport{}
	for _, b := range budgets {
		r, err := sim.NewRunner(ds, sim.Config{
			Instance:          inst,
			Budget:            b,
			RollbackThreshold: history.DefaultRollbackThreshold,
			Seed:              scale.Seed,
		})
		if err != nil {
			return nil, err
		}
		results, err := r.RunGroups(groups)
		if err != nil {
			return nil, err
		}
		var ossp, sse dist.Running
		for _, res := range results {
			for _, o := range res.Outcomes {
				ossp.Add(o.OSSP)
				sse.Add(o.OnlineSSE)
			}
		}
		rep.Points = append(rep.Points, BudgetPoint{
			Budget:   b,
			MeanOSSP: ossp.Mean(),
			MeanSSE:  sse.Mean(),
			Gap:      ossp.Mean() - sse.Mean(),
		})
	}
	return rep, nil
}

// Render writes the budget sweep.
func (r *BudgetReport) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation A2 — budget sweep (single type, Same Last Name)")
	fmt.Fprintf(w, "%8s %12s %12s %12s\n", "budget", "mean-OSSP", "mean-SSE", "gap")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8.0f %12.2f %12.2f %12.2f\n", p.Budget, p.MeanOSSP, p.MeanSSE, p.Gap)
	}
}

// RobustPoint is one (θ, ε) cell of ablation A5.
type RobustPoint struct {
	Theta   float64
	Epsilon float64
	// Exact and Robust are the auditor's utilities under the exact OSSP
	// and the ε-robust OSSP; Premium = Exact − Robust ≥ 0.
	Exact   float64
	Robust  float64
	Premium float64
}

// RobustReport is ablation A5: the price of robustness against boundedly
// rational attackers (the paper's future-work direction, implemented in
// signaling.SolveRobust) across margins and coverage levels.
type RobustReport struct {
	TypeID int
	Points []RobustPoint
}

// AblationRobust sweeps the robustness margin for one Table 2 type.
func AblationRobust(typeID int, thetas, epsilons []float64) (*RobustReport, error) {
	if typeID < 1 || typeID > 7 {
		return nil, fmt.Errorf("experiments: type ID %d outside 1..7", typeID)
	}
	if len(thetas) == 0 {
		thetas = []float64{0.05, 0.10, 0.15}
	}
	if len(epsilons) == 0 {
		epsilons = []float64{0, 25, 50, 100, 200, 400}
	}
	pf := payoff.Table2()[typeID]
	rep := &RobustReport{TypeID: typeID}
	for _, th := range thetas {
		for _, eps := range epsilons {
			exact, err := signaling.Solve(pf, th)
			if err != nil {
				return nil, err
			}
			robust, err := signaling.SolveRobust(pf, th, eps)
			if err != nil {
				return nil, err
			}
			rep.Points = append(rep.Points, RobustPoint{
				Theta:   th,
				Epsilon: eps,
				Exact:   exact.DefenderUtility,
				Robust:  robust.DefenderUtility,
				Premium: exact.DefenderUtility - robust.DefenderUtility,
			})
		}
	}
	return rep, nil
}

// Render writes the robustness sweep.
func (r *RobustReport) Render(w io.Writer) {
	fmt.Fprintf(w, "Ablation A5 — price of robustness (type %d payoffs; ε-margin persuasion)\n", r.TypeID)
	fmt.Fprintf(w, "%8s %8s %12s %12s %12s\n", "theta", "epsilon", "exact", "robust", "premium")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8.2f %8.0f %12.2f %12.2f %12.2f\n", p.Theta, p.Epsilon, p.Exact, p.Robust, p.Premium)
	}
}

// RollbackVariantDay compares the three estimator variants on one day.
type RollbackVariantDay struct {
	// Final and Mean OSSP utilities per variant: count-triggered rollback
	// (the reading this library defaults to), rate-triggered rollback (the
	// alternative reading of the paper's "mean of arrivals drops under 4"),
	// and no rollback.
	FinalCount, FinalRate, FinalOff float64
	MeanCount, MeanRate, MeanOff    float64
}

// RollbackVariantReport is ablation A6: which reading of the paper's
// rollback trigger stabilizes the end of day better.
type RollbackVariantReport struct {
	Days []RollbackVariantDay
}

// AblationRollbackVariants runs the multi-type experiment under the three
// estimator variants.
func AblationRollbackVariants(scale Scale) (*RollbackVariantReport, error) {
	ds, err := sim.BuildTable1Pipeline(scale.pipeline(), sim.AllTable1TypeIDs())
	if err != nil {
		return nil, err
	}
	inst, err := sim.Table1Instance(sim.AllTable1TypeIDs())
	if err != nil {
		return nil, err
	}
	groups := sim.Groups(scale.Days, scale.HistoryDays)
	run := func(factory func(*history.Curves) (core.Estimator, error)) ([]*sim.DayResult, error) {
		r, err := sim.NewRunner(ds, sim.Config{
			Instance:     inst,
			Budget:       50,
			NewEstimator: factory,
			Seed:         scale.Seed,
		})
		if err != nil {
			return nil, err
		}
		return r.RunGroups(groups)
	}
	count, err := run(func(c *history.Curves) (core.Estimator, error) {
		return history.NewRollback(c, history.DefaultRollbackThreshold)
	})
	if err != nil {
		return nil, err
	}
	rate, err := run(func(c *history.Curves) (core.Estimator, error) {
		return history.NewRateRollback(c, history.DefaultRollbackThreshold, history.DefaultRateWindow)
	})
	if err != nil {
		return nil, err
	}
	off, err := run(func(c *history.Curves) (core.Estimator, error) { return c, nil })
	if err != nil {
		return nil, err
	}

	rep := &RollbackVariantReport{}
	finalMean := func(res *sim.DayResult) (fin, mean float64) {
		n := len(res.Outcomes)
		if n == 0 {
			return 0, 0
		}
		fin = res.Outcomes[n-1].OSSP
		for _, o := range res.Outcomes {
			mean += o.OSSP
		}
		return fin, mean / float64(n)
	}
	for i := range count {
		var d RollbackVariantDay
		d.FinalCount, d.MeanCount = finalMean(count[i])
		d.FinalRate, d.MeanRate = finalMean(rate[i])
		d.FinalOff, d.MeanOff = finalMean(off[i])
		rep.Days = append(rep.Days, d)
	}
	return rep, nil
}

// Render writes the variant comparison.
func (r *RollbackVariantReport) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation A6 — rollback trigger readings (multi-type, B=50)")
	fmt.Fprintf(w, "%-5s %12s %12s %12s %12s %12s %12s\n",
		"day", "final-count", "final-rate", "final-off", "mean-count", "mean-rate", "mean-off")
	for i, d := range r.Days {
		fmt.Fprintf(w, "%-5d %12.2f %12.2f %12.2f %12.2f %12.2f %12.2f\n",
			i+1, d.FinalCount, d.FinalRate, d.FinalOff, d.MeanCount, d.MeanRate, d.MeanOff)
	}
}

// EstimatorPoint compares coverage models at one (budget, λ) setting.
type EstimatorPoint struct {
	Budget float64
	Lambda float64
	// ThetaPoisson uses the exact Poisson expectation E[1/max(D,1)];
	// ThetaNaive divides the budget by the mean count.
	ThetaPoisson float64
	ThetaNaive   float64
	// Utility deltas for the auditor under type-1 payoffs at each θ.
	UtilityPoisson float64
	UtilityNaive   float64
}

// EstimatorReport is ablation A4: what the Poisson-expectation coefficient
// buys over naive mean-count coverage (θ = B/(V·E[D])). At small expected
// volumes the naive model overstates coverage badly (Jensen's inequality:
// E[1/D] > 1/E[D]); near end of day this is exactly the regime that
// matters.
type EstimatorReport struct {
	Points []EstimatorPoint
}

// AblationEstimator evaluates both coverage models over a grid.
func AblationEstimator(budgets, lambdas []float64) *EstimatorReport {
	if len(budgets) == 0 {
		budgets = []float64{2, 5, 10, 20}
	}
	if len(lambdas) == 0 {
		lambdas = []float64{1, 2, 4, 10, 30, 100, 196.57}
	}
	pf := payoff.Table2()[1]
	rep := &EstimatorReport{}
	for _, b := range budgets {
		for _, l := range lambdas {
			kappa := dist.Poisson{Lambda: l}.InverseMeanCoefficient()
			thetaP := math.Min(1, kappa*b)
			thetaN := math.Min(1, b/l)
			rep.Points = append(rep.Points, EstimatorPoint{
				Budget:         b,
				Lambda:         l,
				ThetaPoisson:   thetaP,
				ThetaNaive:     thetaN,
				UtilityPoisson: pf.DefenderExpected(thetaP),
				UtilityNaive:   pf.DefenderExpected(thetaN),
			})
		}
	}
	return rep
}

// Render writes the estimator grid.
func (r *EstimatorReport) Render(w io.Writer) {
	fmt.Fprintln(w, "Ablation A4 — Poisson-expectation vs naive mean-count coverage (type 1 payoffs)")
	fmt.Fprintf(w, "%8s %9s %10s %10s %12s %12s\n", "budget", "lambda", "θ-poisson", "θ-naive", "U-poisson", "U-naive")
	for _, p := range r.Points {
		fmt.Fprintf(w, "%8.0f %9.2f %10.4f %10.4f %12.2f %12.2f\n",
			p.Budget, p.Lambda, p.ThetaPoisson, p.ThetaNaive, p.UtilityPoisson, p.UtilityNaive)
	}
}
