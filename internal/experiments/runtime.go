package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/history"
	"github.com/auditgames/sag/internal/sim"

	"math/rand"
)

// RuntimeReport measures the per-alert SAG optimization latency — the
// paper reports ≈0.02 s per alert on a 2017 laptop (§5) and argues users
// cannot perceive the warning-path overhead.
type RuntimeReport struct {
	Setting     string
	Alerts      int
	Total       time.Duration
	Mean        time.Duration
	Max         time.Duration
	PaperMeanMS float64
	// Solver effort accumulated across all alerts: the number of candidate
	// LPs solved by the multiple-LP Stackelberg method, and the simplex
	// iterations/pivots spent inside them. These explain where the latency
	// above goes.
	LPSolves          int
	SimplexIterations int
	SimplexPivots     int
	// Decision-cache effectiveness (zero when the arm runs uncached).
	CacheHits    uint64
	CacheMisses  uint64
	CacheHitRate float64
	// SpeedupVsSeq is this arm's mean-latency speedup relative to the
	// sequential 7-type arm (0 for arms without a baseline). Values below 1
	// on few-core machines are expected for the parallel arm: the fan-out
	// only pays for itself when candidate solves can actually overlap.
	SpeedupVsSeq float64
}

// Runtime measures the mean and worst per-alert decision latency of the
// full pipeline (future estimation + online SSE + OSSP) on a test day. The
// single-type setting has one arm; the 7-type setting runs three — the
// sequential solver, the parallel candidate fan-out, and the fan-out with a
// warm quantized decision cache — so the report shows what each optimization
// layer buys at the paper's scale.
func Runtime(scale Scale) ([]RuntimeReport, error) {
	var out []RuntimeReport
	settings := []struct {
		name     string
		typeIDs  []int
		budget   float64
		workers  int // game.Instance workers: 1 = sequential, 0 = shared pool
		cache    core.CacheConfig
		baseline int // index of the sequential arm this arm is compared to
	}{
		{"single type (Same Last Name), B=20", []int{1}, 20, 1, core.CacheConfig{}, -1},
		{"7 alert types, B=50 (sequential)", sim.AllTable1TypeIDs(), 50, 1, core.CacheConfig{}, -1},
		{"7 alert types, B=50 (parallel)", sim.AllTable1TypeIDs(), 50, 0, core.CacheConfig{}, 1},
		{"7 alert types, B=50 (parallel+cache)", sim.AllTable1TypeIDs(), 50, 0,
			core.CacheConfig{Size: 512, BudgetQuantum: 1, RateQuantum: 5}, 1},
	}
	for _, s := range settings {
		ds, err := sim.BuildTable1Pipeline(scale.pipeline(), s.typeIDs)
		if err != nil {
			return nil, err
		}
		inst, err := sim.Table1Instance(s.typeIDs)
		if err != nil {
			return nil, err
		}
		inst.SetWorkers(s.workers)
		curves, err := history.NewCurves(ds.Records(0, scale.HistoryDays), ds.NumTypes, scale.HistoryDays)
		if err != nil {
			return nil, err
		}
		rb, err := history.NewRollback(curves, history.DefaultRollbackThreshold)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(core.Config{
			Instance:  inst,
			Budget:    s.budget,
			Estimator: rb,
			Policy:    core.PolicyOSSP,
			Rand:      rand.New(rand.NewSource(scale.Seed)),
			Cache:     s.cache,
		})
		if err != nil {
			return nil, err
		}
		day := ds.Days[scale.HistoryDays]
		rep := RuntimeReport{Setting: s.name, PaperMeanMS: 20}
		cached := s.cache.Size > 0
		var lastMisses uint64
		for _, a := range day {
			start := time.Now()
			d, err := eng.Process(core.Alert{Type: a.Type, Time: a.Time})
			if err != nil {
				return nil, err
			}
			el := time.Since(start)
			// A cache hit replays the memoized Result, Stats included; count
			// solver effort only for decisions that actually ran the LPs.
			fresh := true
			if cached {
				m := eng.CacheStats().Misses
				fresh = m > lastMisses
				lastMisses = m
			}
			if d.SSE != nil && fresh {
				rep.LPSolves += d.SSE.Stats.LPSolves
				rep.SimplexIterations += d.SSE.Stats.Simplex.Iterations()
				rep.SimplexPivots += d.SSE.Stats.Simplex.Pivots
			}
			rep.Total += el
			if el > rep.Max {
				rep.Max = el
			}
			rep.Alerts++
		}
		if rep.Alerts > 0 {
			rep.Mean = rep.Total / time.Duration(rep.Alerts)
		}
		cs := eng.CacheStats()
		rep.CacheHits, rep.CacheMisses, rep.CacheHitRate = cs.Hits, cs.Misses, cs.HitRate()
		if s.baseline >= 0 && rep.Mean > 0 {
			rep.SpeedupVsSeq = float64(out[s.baseline].Mean) / float64(rep.Mean)
		}
		out = append(out, rep)
	}
	return out, nil
}

// RenderRuntime writes the latency table.
func RenderRuntime(w io.Writer, reps []RuntimeReport) {
	fmt.Fprintln(w, "Runtime — per-alert SAG optimization latency (paper: ≈20 ms/alert)")
	fmt.Fprintf(w, "%-40s %8s %12s %12s %9s %10s %8s %7s %9s\n",
		"setting", "alerts", "mean", "max", "LPs", "simplex", "pivots", "hit%", "speedup")
	for _, r := range reps {
		hit, speed := "-", "-"
		if r.CacheHits+r.CacheMisses > 0 {
			hit = fmt.Sprintf("%.0f%%", 100*r.CacheHitRate)
		}
		if r.SpeedupVsSeq > 0 {
			speed = fmt.Sprintf("%.2fx", r.SpeedupVsSeq)
		}
		fmt.Fprintf(w, "%-40s %8d %12s %12s %9d %10d %8d %7s %9s\n",
			r.Setting, r.Alerts, r.Mean, r.Max, r.LPSolves, r.SimplexIterations, r.SimplexPivots, hit, speed)
	}
}
