package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/auditgames/sag/internal/core"
	"github.com/auditgames/sag/internal/history"
	"github.com/auditgames/sag/internal/sim"

	"math/rand"
)

// RuntimeReport measures the per-alert SAG optimization latency — the
// paper reports ≈0.02 s per alert on a 2017 laptop (§5) and argues users
// cannot perceive the warning-path overhead.
type RuntimeReport struct {
	Setting     string
	Alerts      int
	Total       time.Duration
	Mean        time.Duration
	Max         time.Duration
	PaperMeanMS float64
	// Solver effort accumulated across all alerts: the number of candidate
	// LPs solved by the multiple-LP Stackelberg method, and the simplex
	// iterations/pivots spent inside them. These explain where the latency
	// above goes.
	LPSolves          int
	SimplexIterations int
	SimplexPivots     int
}

// Runtime measures the mean and worst per-alert decision latency of the
// full pipeline (future estimation + online SSE + OSSP) on a test day at
// the given scale, for both the single-type and 7-type settings.
func Runtime(scale Scale) ([]RuntimeReport, error) {
	var out []RuntimeReport
	settings := []struct {
		name    string
		typeIDs []int
		budget  float64
	}{
		{"single type (Same Last Name), B=20", []int{1}, 20},
		{"7 alert types, B=50", sim.AllTable1TypeIDs(), 50},
	}
	for _, s := range settings {
		ds, err := sim.BuildTable1Pipeline(scale.pipeline(), s.typeIDs)
		if err != nil {
			return nil, err
		}
		inst, err := sim.Table1Instance(s.typeIDs)
		if err != nil {
			return nil, err
		}
		curves, err := history.NewCurves(ds.Records(0, scale.HistoryDays), ds.NumTypes, scale.HistoryDays)
		if err != nil {
			return nil, err
		}
		rb, err := history.NewRollback(curves, history.DefaultRollbackThreshold)
		if err != nil {
			return nil, err
		}
		eng, err := core.NewEngine(core.Config{
			Instance:  inst,
			Budget:    s.budget,
			Estimator: rb,
			Policy:    core.PolicyOSSP,
			Rand:      rand.New(rand.NewSource(scale.Seed)),
		})
		if err != nil {
			return nil, err
		}
		day := ds.Days[scale.HistoryDays]
		rep := RuntimeReport{Setting: s.name, PaperMeanMS: 20}
		for _, a := range day {
			start := time.Now()
			d, err := eng.Process(core.Alert{Type: a.Type, Time: a.Time})
			if err != nil {
				return nil, err
			}
			el := time.Since(start)
			if d.SSE != nil {
				rep.LPSolves += d.SSE.Stats.LPSolves
				rep.SimplexIterations += d.SSE.Stats.Simplex.Iterations()
				rep.SimplexPivots += d.SSE.Stats.Simplex.Pivots
			}
			rep.Total += el
			if el > rep.Max {
				rep.Max = el
			}
			rep.Alerts++
		}
		if rep.Alerts > 0 {
			rep.Mean = rep.Total / time.Duration(rep.Alerts)
		}
		out = append(out, rep)
	}
	return out, nil
}

// RenderRuntime writes the latency table.
func RenderRuntime(w io.Writer, reps []RuntimeReport) {
	fmt.Fprintln(w, "Runtime — per-alert SAG optimization latency (paper: ≈20 ms/alert)")
	fmt.Fprintf(w, "%-40s %8s %12s %12s %9s %10s %8s\n",
		"setting", "alerts", "mean", "max", "LPs", "simplex", "pivots")
	for _, r := range reps {
		fmt.Fprintf(w, "%-40s %8d %12s %12s %9d %10d %8d\n",
			r.Setting, r.Alerts, r.Mean, r.Max, r.LPSolves, r.SimplexIterations, r.SimplexPivots)
	}
}
