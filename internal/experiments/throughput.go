package experiments

import (
	"fmt"
	"io"
	"time"

	"github.com/auditgames/sag/internal/alerts"
	"github.com/auditgames/sag/internal/emr"
)

// ThroughputReport demonstrates that the pipeline handles the paper's raw
// data volume: 56 working days at ≈192k accesses/day ≈ 10.75M events,
// generated and pushed through the full detection stack.
type ThroughputReport struct {
	Days             int
	AccessesPerDay   int
	TotalAccesses    int64
	TotalAlerts      int64
	GenerateDuration time.Duration
	ScanDuration     time.Duration
}

// EventsPerSecond returns the detection throughput.
func (r *ThroughputReport) EventsPerSecond() float64 {
	if r.ScanDuration <= 0 {
		return 0
	}
	return float64(r.TotalAccesses) / r.ScanDuration.Seconds()
}

// Throughput streams `days` synthetic days of `accessesPerDay` background
// accesses (plus the Table 1 alert traffic) through the rules engine,
// day by day so memory stays bounded, and reports volumes and timings.
// Pass days=56, accessesPerDay=192000 for the paper's full scale.
func Throughput(seed int64, days, accessesPerDay int) (*ThroughputReport, error) {
	if days <= 0 || accessesPerDay < 0 {
		return nil, fmt.Errorf("experiments: invalid throughput config days=%d accesses=%d", days, accessesPerDay)
	}
	world, err := emr.NewWorld(emr.WorldConfig{Seed: seed, Employees: 4000, Patients: 30000})
	if err != nil {
		return nil, err
	}
	gen, err := emr.NewGenerator(world, emr.GeneratorConfig{
		Seed:             seed,
		BackgroundPerDay: accessesPerDay,
		PairsPerKind:     300,
	})
	if err != nil {
		return nil, err
	}
	detector, err := alerts.NewEngine(world, alerts.NewTable1Taxonomy())
	if err != nil {
		return nil, err
	}
	rep := &ThroughputReport{Days: days, AccessesPerDay: accessesPerDay}
	for d := 0; d < days; d++ {
		t0 := time.Now()
		day := gen.Day(d)
		rep.GenerateDuration += time.Since(t0)
		rep.TotalAccesses += int64(len(day))
		t1 := time.Now()
		scanned, err := detector.Scan(day)
		if err != nil {
			return nil, err
		}
		rep.ScanDuration += time.Since(t1)
		rep.TotalAlerts += int64(len(scanned))
	}
	return rep, nil
}

// Render writes the throughput summary.
func (r *ThroughputReport) Render(w io.Writer) {
	fmt.Fprintln(w, "Throughput — full-scale data volume (paper: 10.75M accesses over 56 days)")
	fmt.Fprintf(w, "days: %d   accesses/day: %d   total accesses: %d   total alerts: %d\n",
		r.Days, r.AccessesPerDay, r.TotalAccesses, r.TotalAlerts)
	fmt.Fprintf(w, "generate: %v   detect: %v   detection throughput: %.1fM events/s\n",
		r.GenerateDuration.Round(time.Millisecond),
		r.ScanDuration.Round(time.Millisecond),
		r.EventsPerSecond()/1e6)
}
