package experiments

import (
	"fmt"
	"io"
	"math"
	"strings"
	"time"
)

// RenderASCII draws one test day's utility series as a terminal chart —
// the poor man's Figure 2 panel. Three series share the canvas:
//
//	●  OSSP          (per-alert, bucketed by time)
//	o  online SSE
//	─  offline SSE   (constant)
//
// width and height are the plot area in characters (sensible minimums are
// enforced). Buckets with no alerts are left blank, matching the paper's
// scatter-like panels.
func (d *DaySeries) RenderASCII(w io.Writer, width, height int) {
	if width < 24 {
		width = 24
	}
	if height < 8 {
		height = 8
	}
	if len(d.Points) == 0 {
		fmt.Fprintln(w, "(no alerts)")
		return
	}

	// Bucket the series over the day.
	type bucket struct {
		n          int
		ossp, ssev float64
	}
	buckets := make([]bucket, width)
	perBucket := 24 * time.Hour / time.Duration(width)
	for _, p := range d.Points {
		b := int(p.Time / perBucket)
		if b < 0 {
			b = 0
		}
		if b >= width {
			b = width - 1
		}
		buckets[b].n++
		buckets[b].ossp += p.OSSP
		buckets[b].ssev += p.OnlineSSE
	}

	// Value range across everything drawn.
	lo, hi := d.OfflineSSE, d.OfflineSSE
	for _, b := range buckets {
		if b.n == 0 {
			continue
		}
		for _, v := range []float64{b.ossp / float64(b.n), b.ssev / float64(b.n)} {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if hi-lo < 1e-9 {
		hi = lo + 1
	}
	row := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(frac * float64(height-1)))
		if r < 0 {
			r = 0
		}
		if r > height-1 {
			r = height - 1
		}
		return height - 1 - r // row 0 is the top
	}

	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	offRow := row(d.OfflineSSE)
	for x := 0; x < width; x++ {
		grid[offRow][x] = '-'
	}
	for x, b := range buckets {
		if b.n == 0 {
			continue
		}
		grid[row(b.ssev/float64(b.n))][x] = 'o'
		grid[row(b.ossp/float64(b.n))][x] = '*' // drawn last: OSSP wins collisions
	}

	fmt.Fprintf(w, "%10.1f ┤\n", hi)
	for _, line := range grid {
		fmt.Fprintf(w, "%10s │%s\n", "", line)
	}
	fmt.Fprintf(w, "%10.1f ┤%s\n", lo, strings.Repeat("─", width))
	fmt.Fprintf(w, "%10s  00:00%s23:59\n", "", strings.Repeat(" ", width-11))
	fmt.Fprintf(w, "%10s  legend: * OSSP   o online SSE   - offline SSE\n", "")
}
