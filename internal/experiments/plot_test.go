package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/sim"
)

func TestRenderASCIIBasic(t *testing.T) {
	d := DaySeries{
		OfflineSSE: -350,
		Points: []SeriesPoint{
			{Time: 8 * time.Hour, OSSP: -150, OnlineSSE: -345},
			{Time: 12 * time.Hour, OSSP: -160, OnlineSSE: -350},
			{Time: 20 * time.Hour, OSSP: -300, OnlineSSE: -390},
		},
	}
	var buf bytes.Buffer
	d.RenderASCII(&buf, 60, 12)
	out := buf.String()
	for _, want := range []string{"*", "o", "-", "legend", "00:00", "23:59"} {
		if !strings.Contains(out, want) {
			t.Errorf("plot missing %q", want)
		}
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Top label + height rows + bottom axis + time axis + legend.
	if len(lines) != 1+12+1+1+1 {
		t.Fatalf("plot has %d lines", len(lines))
	}
}

func TestRenderASCIIEmptyAndDegenerate(t *testing.T) {
	var buf bytes.Buffer
	(&DaySeries{}).RenderASCII(&buf, 40, 10)
	if !strings.Contains(buf.String(), "no alerts") {
		t.Error("empty series should say so")
	}
	// All values identical: the range guard must avoid division by zero.
	buf.Reset()
	d := DaySeries{
		OfflineSSE: -100,
		Points:     []SeriesPoint{{Time: time.Hour, OSSP: -100, OnlineSSE: -100}},
	}
	d.RenderASCII(&buf, 5, 3) // also exercises the minimum-size clamps
	if buf.Len() == 0 {
		t.Error("degenerate series should still render")
	}
}

func TestRenderASCIIFullPipeline(t *testing.T) {
	rep, err := Figure2(testScale())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rep.Days[0].RenderASCII(&buf, 72, 16)
	out := buf.String()
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Error("pipeline plot should contain both series")
	}
	_ = sim.Groups // keep the import honest if test helpers change
}
