// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the synthetic substrate, plus the ablations DESIGN.md
// calls out. Each experiment is a plain function returning a report struct
// with a text renderer, so the same code backs the sagbench command, the
// root-level benchmarks, and EXPERIMENTS.md.
//
// Experiment index:
//
//	Table1        — daily alert statistics per type (paper Table 1)
//	Table2        — payoff structures (paper Table 2)
//	Figure2       — single-type utility series, budget 20 (paper Fig. 2)
//	Figure3       — multi-type utility series, budget 50 (paper Fig. 3)
//	Runtime       — per-alert optimization latency (paper §5: ≈0.02 s)
//	AblationRollback — knowledge rollback on/off (late-attacker exposure)
//	AblationBudget   — OSSP vs SSE gap across budgets
//	AblationEstimator — Poisson-expectation vs naive mean-count coverage
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"github.com/auditgames/sag/internal/emr"
	"github.com/auditgames/sag/internal/history"
	"github.com/auditgames/sag/internal/payoff"
	"github.com/auditgames/sag/internal/sim"
)

// Scale selects how much synthetic data the experiments run over. The Full
// scale matches the paper's protocol (56 days, 15 groups); Quick is for CI
// and benchmarks.
type Scale struct {
	Days             int
	HistoryDays      int
	BackgroundPerDay int
	PairsPerKind     int
	Seed             int64
}

// FullScale is the paper's protocol: 56 days, 41-day history windows → 15
// rolling groups.
func FullScale() Scale {
	return Scale{Days: 56, HistoryDays: 41, BackgroundPerDay: 2000, PairsPerKind: 300, Seed: 2017}
}

// QuickScale is a reduced protocol for fast runs: 12 days → 3 groups.
func QuickScale() Scale {
	return Scale{Days: 12, HistoryDays: 9, BackgroundPerDay: 200, PairsPerKind: 60, Seed: 2017}
}

func (s Scale) pipeline() sim.PipelineConfig {
	return sim.PipelineConfig{
		Seed:             s.Seed,
		Days:             s.Days,
		BackgroundPerDay: s.BackgroundPerDay,
		PairsPerKind:     s.PairsPerKind,
	}
}

// Table1Row is one row of the Table 1 reproduction.
type Table1Row struct {
	TypeID      int
	Description string
	PaperMean   float64
	PaperStd    float64
	Mean        float64
	Std         float64
}

// Table1Report reproduces the paper's Table 1 from the synthetic dataset.
type Table1Report struct {
	Days int
	Rows []Table1Row
}

// Table1 builds the dataset at the given scale and measures per-type daily
// alert statistics end to end (generator → rules engine → daily counts).
func Table1(scale Scale) (*Table1Report, error) {
	ds, err := sim.BuildTable1Pipeline(scale.pipeline(), sim.AllTable1TypeIDs())
	if err != nil {
		return nil, err
	}
	recs := ds.Records(0, ds.NumDays())
	stats, err := history.DailyStats(recs, ds.NumTypes, ds.NumDays())
	if err != nil {
		return nil, err
	}
	paper := emr.Table1Volumes()
	rep := &Table1Report{Days: ds.NumDays()}
	for i, st := range stats {
		rep.Rows = append(rep.Rows, Table1Row{
			TypeID:      ds.TypeIDs[i],
			Description: emr.RelationKind(i).String(),
			PaperMean:   paper[i].Mu,
			PaperStd:    paper[i].Sigma,
			Mean:        st.Mean,
			Std:         st.Std,
		})
	}
	return rep, nil
}

// Render writes the report as an aligned text table.
func (r *Table1Report) Render(w io.Writer) {
	fmt.Fprintf(w, "Table 1 — daily alert statistics per type (%d synthetic days)\n", r.Days)
	fmt.Fprintf(w, "%-3s %-52s %10s %9s %10s %9s\n", "ID", "Alert Type Description", "paper-mean", "paper-std", "mean", "std")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-3d %-52s %10.2f %9.2f %10.2f %9.2f\n",
			row.TypeID, row.Description, row.PaperMean, row.PaperStd, row.Mean, row.Std)
	}
}

// Table2Report reproduces the paper's Table 2 (an input, rendered for
// completeness and cross-checked by tests).
type Table2Report struct {
	Payoffs [8]payoff.Payoff
}

// Table2 returns the payoff table report.
func Table2() *Table2Report {
	return &Table2Report{Payoffs: payoff.Table2()}
}

// Render writes the payoff matrix in the paper's orientation.
func (r *Table2Report) Render(w io.Writer) {
	fmt.Fprintln(w, "Table 2 — payoff structures for the pre-defined alert types")
	fmt.Fprintf(w, "%-8s", "TypeID")
	for id := 1; id <= 7; id++ {
		fmt.Fprintf(w, "%9d", id)
	}
	fmt.Fprintln(w)
	rows := []struct {
		name string
		get  func(payoff.Payoff) float64
	}{
		{"U_d,c", func(p payoff.Payoff) float64 { return p.DefenderCovered }},
		{"U_d,u", func(p payoff.Payoff) float64 { return p.DefenderUncovered }},
		{"U_a,c", func(p payoff.Payoff) float64 { return p.AttackerCovered }},
		{"U_a,u", func(p payoff.Payoff) float64 { return p.AttackerUncovered }},
	}
	for _, row := range rows {
		fmt.Fprintf(w, "%-8s", row.name)
		for id := 1; id <= 7; id++ {
			fmt.Fprintf(w, "%9.0f", row.get(r.Payoffs[id]))
		}
		fmt.Fprintln(w)
	}
}

// SeriesPoint is one alert on a figure's time axis.
type SeriesPoint struct {
	Time time.Duration
	// Type is the modeled type index of the alert (0-based).
	Type      int
	OSSP      float64
	OnlineSSE float64
}

// DaySeries is the per-alert utility series of one test day (one panel of
// Figure 2 or Figure 3).
type DaySeries struct {
	Group      sim.Group
	Points     []SeriesPoint
	OfflineSSE float64
	// Means are per-day averages for the summary table.
	MeanOSSP, MeanSSE float64
	// Final are the last-alert utilities (end-of-day health under
	// rollback).
	FinalOSSP, FinalSSE float64
}

// FigureReport is the full output of Figure 2 or Figure 3: one series per
// test day (the paper shows the first four panels).
type FigureReport struct {
	Name    string
	Budget  float64
	TypeIDs []int
	Days    []DaySeries
}

// figure runs the shared Figure 2/3 machinery over a freshly generated
// dataset.
func figure(scale Scale, name string, typeIDs []int, budget float64) (*FigureReport, error) {
	ds, err := sim.BuildTable1Pipeline(scale.pipeline(), typeIDs)
	if err != nil {
		return nil, err
	}
	return FigureFromDataset(ds, name, budget, scale.HistoryDays, scale.Seed)
}

// FigureFromDataset runs the Figure 2/3 evaluation protocol over an
// existing dataset (e.g. one loaded from disk via internal/dataio),
// forming rolling groups with the given history length.
func FigureFromDataset(ds *sim.Dataset, name string, budget float64, historyDays int, seed int64) (*FigureReport, error) {
	inst, err := sim.Table1Instance(ds.TypeIDs)
	if err != nil {
		return nil, err
	}
	runner, err := sim.NewRunner(ds, sim.Config{
		Instance:          inst,
		Budget:            budget,
		RollbackThreshold: history.DefaultRollbackThreshold,
		Seed:              seed,
	})
	if err != nil {
		return nil, err
	}
	groups := sim.Groups(ds.NumDays(), historyDays)
	if len(groups) == 0 {
		return nil, fmt.Errorf("experiments: %d days with history %d yields no groups", ds.NumDays(), historyDays)
	}
	results, err := runner.RunGroups(groups)
	if err != nil {
		return nil, err
	}
	typeIDs := ds.TypeIDs
	rep := &FigureReport{Name: name, Budget: budget, TypeIDs: typeIDs}
	for _, res := range results {
		s := DaySeries{Group: res.Group, OfflineSSE: res.OfflineSSE}
		for _, o := range res.Outcomes {
			s.Points = append(s.Points, SeriesPoint{Time: o.Time, Type: o.Type, OSSP: o.OSSP, OnlineSSE: o.OnlineSSE})
			s.MeanOSSP += o.OSSP
			s.MeanSSE += o.OnlineSSE
		}
		if n := float64(len(s.Points)); n > 0 {
			s.MeanOSSP /= n
			s.MeanSSE /= n
			s.FinalOSSP = s.Points[len(s.Points)-1].OSSP
			s.FinalSSE = s.Points[len(s.Points)-1].OnlineSSE
		}
		rep.Days = append(rep.Days, s)
	}
	return rep, nil
}

// Figure2 reproduces the single-type experiment: only "Same Last Name"
// alerts, audit budget 20, audit cost 1.
func Figure2(scale Scale) (*FigureReport, error) {
	return figure(scale, "Figure 2 (single type: Same Last Name, B=20)", []int{1}, 20)
}

// Figure3 reproduces the multi-type experiment: all 7 types, budget 50.
func Figure3(scale Scale) (*FigureReport, error) {
	return figure(scale, "Figure 3 (7 alert types, B=50)", sim.AllTable1TypeIDs(), 50)
}

// Render writes per-day summaries and, for the first four days (the panels
// the paper prints), an hourly-bucketed series.
func (r *FigureReport) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %d test days\n", r.Name, len(r.Days))
	fmt.Fprintf(w, "%-5s %7s %12s %12s %12s %12s %12s\n",
		"day", "alerts", "mean-OSSP", "mean-SSE", "offline-SSE", "final-OSSP", "final-SSE")
	for i, d := range r.Days {
		fmt.Fprintf(w, "%-5d %7d %12.2f %12.2f %12.2f %12.2f %12.2f\n",
			i+1, len(d.Points), d.MeanOSSP, d.MeanSSE, d.OfflineSSE, d.FinalOSSP, d.FinalSSE)
	}
	panels := len(r.Days)
	if panels > 4 {
		panels = 4
	}
	for i := 0; i < panels; i++ {
		fmt.Fprintf(w, "\nDay %d hourly series (mean utility per hour bucket):\n", i+1)
		fmt.Fprintf(w, "%-6s %7s %12s %12s %12s\n", "hour", "alerts", "OSSP", "online-SSE", "offline-SSE")
		r.Days[i].renderHourly(w)
	}
}

func (d *DaySeries) renderHourly(w io.Writer) {
	type bucket struct {
		n          int
		ossp, ssev float64
	}
	var buckets [24]bucket
	for _, p := range d.Points {
		h := int(p.Time / time.Hour)
		if h < 0 {
			h = 0
		}
		if h > 23 {
			h = 23
		}
		buckets[h].n++
		buckets[h].ossp += p.OSSP
		buckets[h].ssev += p.OnlineSSE
	}
	for h, b := range buckets {
		if b.n == 0 {
			continue
		}
		fmt.Fprintf(w, "%02d:00  %7d %12.2f %12.2f %12.2f\n",
			h, b.n, b.ossp/float64(b.n), b.ssev/float64(b.n), d.OfflineSSE)
	}
}

// WriteDayCSV writes one test day's series as CSV (header + one row per
// alert): time_sec, type_index, ossp, online_sse, offline_sse. The format
// is what external plotting tools consume to redraw the paper's panels.
func (r *FigureReport) WriteDayCSV(w io.Writer, day int) error {
	if day < 0 || day >= len(r.Days) {
		return fmt.Errorf("experiments: day %d out of range [0,%d)", day, len(r.Days))
	}
	d := r.Days[day]
	if _, err := fmt.Fprintln(w, "time_sec,type,ossp,online_sse,offline_sse"); err != nil {
		return err
	}
	for _, p := range d.Points {
		if _, err := fmt.Fprintf(w, "%.3f,%d,%.6f,%.6f,%.6f\n",
			p.Time.Seconds(), p.Type, p.OSSP, p.OnlineSSE, d.OfflineSSE); err != nil {
			return err
		}
	}
	return nil
}

// ShapeChecks verifies the qualitative claims of Figures 2–3 on a report:
// the OSSP mean dominates the online SSE mean on every day, and both
// dominate the offline baseline on average. It returns a list of violation
// descriptions (empty = all shape claims hold).
func (r *FigureReport) ShapeChecks() []string {
	var bad []string
	var osspWins, sseWins int
	for i, d := range r.Days {
		if d.MeanOSSP >= d.MeanSSE-1e-9 {
			osspWins++
		} else {
			bad = append(bad, fmt.Sprintf("day %d: mean OSSP %.2f < mean online SSE %.2f", i+1, d.MeanOSSP, d.MeanSSE))
		}
		if d.MeanOSSP >= d.OfflineSSE-1e-9 {
			sseWins++
		} else {
			bad = append(bad, fmt.Sprintf("day %d: mean OSSP %.2f < offline SSE %.2f", i+1, d.MeanOSSP, d.OfflineSSE))
		}
	}
	return bad
}

// Summary returns a one-line digest for logs.
func (r *FigureReport) Summary() string {
	var ossp, sse, off float64
	for _, d := range r.Days {
		ossp += d.MeanOSSP
		sse += d.MeanSSE
		off += d.OfflineSSE
	}
	n := float64(len(r.Days))
	if n == 0 {
		return r.Name + ": no days"
	}
	return fmt.Sprintf("%s: mean utility OSSP %.2f | online SSE %.2f | offline SSE %.2f over %d days",
		r.Name, ossp/n, sse/n, off/n, len(r.Days))
}

// renderCheckList writes shape-check results.
func renderCheckList(w io.Writer, name string, bad []string) {
	if len(bad) == 0 {
		fmt.Fprintf(w, "%s: all shape checks PASS\n", name)
		return
	}
	fmt.Fprintf(w, "%s: %d shape check failures:\n  %s\n", name, len(bad), strings.Join(bad, "\n  "))
}
