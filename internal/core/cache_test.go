package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/payoff"
)

func cachedEngine(t *testing.T, cache CacheConfig, reg *obs.Registry, seed int64) *Engine {
	t.Helper()
	inst, err := game.NewInstance(payoff.Table2Slice()[:3], game.UniformCost(3, 1))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Instance:  inst,
		Budget:    25,
		Estimator: constEstimator(40, 25, 10),
		Policy:    PolicyOSSP,
		Rand:      rand.New(rand.NewSource(seed)),
		Cache:     cache,
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestCachedEngineMatchesUncached: with exact (zero) quanta the cached
// engine's decision stream must be identical to an uncached engine fed the
// same alerts and the same RNG seed — a hit replays the exact solve.
func TestCachedEngineMatchesUncached(t *testing.T) {
	cached := cachedEngine(t, CacheConfig{Size: 64}, nil, 9)
	plain := cachedEngine(t, CacheConfig{}, nil, 9)
	for i := 0; i < 12; i++ {
		a := Alert{Type: i % 3, Time: time.Duration(i) * time.Minute}
		dc, err := cached.Process(a)
		if err != nil {
			t.Fatal(err)
		}
		dp, err := plain.Process(a)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(dc, dp) {
			t.Fatalf("alert %d: cached decision diverges\ncached: %+v\nplain:  %+v", i, dc, dp)
		}
	}
	if s := plain.CacheStats(); s != (CacheStats{}) {
		t.Fatalf("disabled cache reported stats %+v", s)
	}
}

// TestCacheHitEqualsFreshSolve: a Preview served from the cache must be
// field-for-field equal to the Preview that populated it — same engine state,
// no intervening budget spend.
func TestCacheHitEqualsFreshSolve(t *testing.T) {
	eng := cachedEngine(t, CacheConfig{Size: 8}, nil, 1)
	a := Alert{Type: 1, Time: 5 * time.Minute}
	fresh, err := eng.Preview(a)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := eng.Preview(a)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh, hit) {
		t.Fatalf("cache hit differs from the solve that filled it\nfresh: %+v\nhit:   %+v", fresh, hit)
	}
	s := eng.CacheStats()
	if s.Hits != 1 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats after miss+hit: %+v", s)
	}

	// A different arrival time with identical rates is the same game state:
	// it must hit, with the Alert patched to the new arrival.
	later := Alert{Type: 1, Time: 90 * time.Minute}
	d, err := eng.Preview(later)
	if err != nil {
		t.Fatal(err)
	}
	if d.Alert != later {
		t.Fatalf("hit kept stale alert %+v", d.Alert)
	}
	if d.Theta != fresh.Theta || d.OSSPUtility != fresh.OSSPUtility {
		t.Fatalf("hit at same state changed the decision: %+v vs %+v", d, fresh)
	}
	if got := eng.CacheStats().Hits; got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
}

// TestCacheQuantizedBudgetHit: with a coarse budget quantum, small budget
// spends stay in the same bucket and later alerts of the same type hit.
// With exact matching the spend changes the key, so the same stream misses.
func TestCacheQuantizedBudgetHit(t *testing.T) {
	run := func(cfg CacheConfig) CacheStats {
		eng := cachedEngine(t, cfg, nil, 3)
		for i := 0; i < 6; i++ {
			if _, err := eng.Process(Alert{Type: 0, Time: time.Duration(i) * time.Minute}); err != nil {
				t.Fatal(err)
			}
		}
		return eng.CacheStats()
	}
	coarse := run(CacheConfig{Size: 16, BudgetQuantum: 1000, RateQuantum: 1})
	if coarse.Hits != 5 || coarse.Misses != 1 {
		t.Fatalf("coarse quantum: %+v, want 5 hits / 1 miss", coarse)
	}
	exact := run(CacheConfig{Size: 16})
	if exact.Hits != 0 {
		t.Fatalf("exact matching across budget spends hit %d times", exact.Hits)
	}
}

// TestCacheEviction: a 2-entry cache cycled over 3 distinct states must
// evict and stay at capacity.
func TestCacheEviction(t *testing.T) {
	eng := cachedEngine(t, CacheConfig{Size: 2}, nil, 5)
	for i := 0; i < 9; i++ {
		if _, err := eng.Preview(Alert{Type: i % 3}); err != nil {
			t.Fatal(err)
		}
	}
	s := eng.CacheStats()
	if s.Entries != 2 {
		t.Fatalf("entries = %d, want capacity 2", s.Entries)
	}
	if s.Evictions == 0 {
		t.Fatal("cycling 3 states through a 2-entry cache must evict")
	}
	if s.Hits != 0 {
		// Round-robin over 3 states in a 2-slot LRU always evicts the next
		// state to arrive, so every lookup misses.
		t.Fatalf("hits = %d, want 0 under round-robin thrashing", s.Hits)
	}
}

// TestNewCycleClearsCache: NewCycle must drop entries (the estimator state
// and budget both reset) while keeping cumulative counters.
func TestNewCycleClearsCache(t *testing.T) {
	eng := cachedEngine(t, CacheConfig{Size: 8}, nil, 2)
	if _, err := eng.Preview(Alert{Type: 0}); err != nil {
		t.Fatal(err)
	}
	if s := eng.CacheStats(); s.Entries != 1 {
		t.Fatalf("entries = %d before NewCycle", s.Entries)
	}
	if err := eng.NewCycle(25); err != nil {
		t.Fatal(err)
	}
	s := eng.CacheStats()
	if s.Entries != 0 {
		t.Fatalf("entries = %d after NewCycle, want 0", s.Entries)
	}
	if s.Misses != 1 {
		t.Fatalf("cumulative misses lost on NewCycle: %+v", s)
	}
	if _, err := eng.Preview(Alert{Type: 0}); err != nil {
		t.Fatal(err)
	}
	if s := eng.CacheStats(); s.Hits != 0 || s.Misses != 2 {
		t.Fatalf("first lookup after NewCycle must miss: %+v", s)
	}
}

// TestCacheMetricsExported: the obs registry view must agree with
// CacheStats.
func TestCacheMetricsExported(t *testing.T) {
	reg := obs.NewRegistry()
	eng := cachedEngine(t, CacheConfig{Size: 1}, reg, 4)
	for i := 0; i < 4; i++ {
		if _, err := eng.Preview(Alert{Type: i % 2}); err != nil {
			t.Fatal(err)
		}
	}
	s := eng.CacheStats()
	snap := reg.Snapshot()
	if got := snap.Counters[MetricCacheHitsTotal]; got != s.Hits {
		t.Fatalf("hits counter %d != stats %d", got, s.Hits)
	}
	if got := snap.Counters[MetricCacheMissesTotal]; got != s.Misses {
		t.Fatalf("misses counter %d != stats %d", got, s.Misses)
	}
	if got := snap.Counters[MetricCacheEvictionsTotal]; got != s.Evictions {
		t.Fatalf("evictions counter %d != stats %d", got, s.Evictions)
	}
	if got := snap.Gauges[MetricCacheEntries]; got != float64(s.Entries) {
		t.Fatalf("entries gauge %g != stats %d", got, s.Entries)
	}
	if s.Evictions == 0 {
		t.Fatalf("alternating 2 states through a 1-entry cache must evict: %+v", s)
	}
}

// TestCacheConfigValidation: invalid quanta are rejected at construction.
func TestCacheConfigValidation(t *testing.T) {
	inst, err := game.NewInstance(payoff.Table2Slice()[:1], game.UniformCost(1, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []CacheConfig{
		{Size: 4, BudgetQuantum: -1},
		{Size: 4, RateQuantum: math.NaN()},
		{Size: 4, BudgetQuantum: math.Inf(1)},
	} {
		_, err := NewEngine(Config{
			Instance:  inst,
			Budget:    5,
			Estimator: constEstimator(3),
			Policy:    PolicyOSSP,
			Rand:      rand.New(rand.NewSource(1)),
			Cache:     bad,
		})
		if err == nil {
			t.Fatalf("cache config %+v accepted", bad)
		}
	}
}

// TestCacheHitRate covers the helper's division guard.
func TestCacheHitRate(t *testing.T) {
	if r := (CacheStats{}).HitRate(); r != 0 {
		t.Fatalf("empty hit rate %g", r)
	}
	if r := (CacheStats{Hits: 3, Misses: 1}).HitRate(); r != 0.75 {
		t.Fatalf("hit rate %g, want 0.75", r)
	}
}

// TestSetCacheCapacityRebalances: the shard router resizes tenant caches as
// tenants come and go; SetCacheCapacity must evict LRU-first, clamp the
// limit to one entry, and be a no-op on an engine without a cache.
func TestSetCacheCapacityRebalances(t *testing.T) {
	eng := cachedEngine(t, CacheConfig{Size: 8}, nil, 4)
	for i := 0; i < 3; i++ {
		if _, err := eng.Preview(Alert{Type: i}); err != nil {
			t.Fatal(err)
		}
	}
	if got := eng.CacheStats().Entries; got != 3 {
		t.Fatalf("entries = %d, want 3", got)
	}
	if ev := eng.SetCacheCapacity(1); ev != 2 {
		t.Fatalf("shrinking 3 entries to capacity 1 evicted %d, want 2", ev)
	}
	// The survivor must be the most recently used state: previewing it again
	// is a hit, not a re-solve.
	before := eng.CacheStats().Hits
	if _, err := eng.Preview(Alert{Type: 2}); err != nil {
		t.Fatal(err)
	}
	if eng.CacheStats().Hits != before+1 {
		t.Fatal("most recently used entry did not survive the shrink")
	}
	eng.SetCacheCapacity(-3)
	if got := eng.CacheStats().Entries; got != 1 {
		t.Fatalf("capacity <= 0 must clamp to 1 entry, kept %d", got)
	}
	plain := cachedEngine(t, CacheConfig{}, nil, 4)
	if ev := plain.SetCacheCapacity(4); ev != 0 {
		t.Fatalf("capacity change on a cache-less engine evicted %d", ev)
	}
}

// TestLatestForTypeDegradedLookup: the degraded-mode rung returns the
// most recently used decision for a type regardless of the budget/rate key,
// and does not disturb the LRU order or the hit/miss counters.
func TestLatestForTypeDegradedLookup(t *testing.T) {
	c := newDecisionCache(CacheConfig{Size: 8})
	c.put(c.key(1, 10, nil), Decision{Alert: Alert{Type: 1}, BudgetBefore: 10})
	c.put(c.key(2, 10, nil), Decision{Alert: Alert{Type: 2}, BudgetBefore: 10})
	c.put(c.key(1, 7, nil), Decision{Alert: Alert{Type: 1}, BudgetBefore: 7})
	d, ok := c.latestForType(1)
	if !ok || d.BudgetBefore != 7 {
		t.Fatalf("latestForType(1) = %+v, %v; want the budget-7 entry", d, ok)
	}
	if _, ok := c.latestForType(9); ok {
		t.Fatal("latestForType invented a decision for an unseen type")
	}
	if s := c.stats(); s.Hits != 0 || s.Misses != 0 {
		t.Fatalf("degraded lookup counted as cache traffic: %+v", s)
	}
}
