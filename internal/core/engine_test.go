package core

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/payoff"
	"github.com/auditgames/sag/internal/signaling"
)

// constEstimator returns fixed future rates regardless of time.
func constEstimator(rates ...float64) Estimator {
	return EstimatorFunc(func(time.Duration) ([]float64, error) {
		out := make([]float64, len(rates))
		copy(out, rates)
		return out, nil
	})
}

func singleInstance(t *testing.T) *game.Instance {
	t.Helper()
	inst, err := game.NewInstance([]payoff.Payoff{payoff.Table2()[1]}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func multiInstance(t *testing.T) *game.Instance {
	t.Helper()
	inst, err := game.NewInstance(payoff.Table2Slice(), game.UniformCost(7, 1))
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func newOSSPEngine(t *testing.T, inst *game.Instance, budget float64, est Estimator) *Engine {
	t.Helper()
	e, err := NewEngine(Config{
		Instance:  inst,
		Budget:    budget,
		Estimator: est,
		Policy:    PolicyOSSP,
		Rand:      rand.New(rand.NewSource(42)),
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestNewEngineValidation(t *testing.T) {
	inst := singleInstance(t)
	est := constEstimator(10)
	cases := []struct {
		name string
		cfg  Config
	}{
		{"nil instance", Config{Estimator: est, Budget: 1, Rand: rand.New(rand.NewSource(1))}},
		{"nil estimator", Config{Instance: inst, Budget: 1, Rand: rand.New(rand.NewSource(1))}},
		{"negative budget", Config{Instance: inst, Estimator: est, Budget: -1, Rand: rand.New(rand.NewSource(1))}},
		{"NaN budget", Config{Instance: inst, Estimator: est, Budget: math.NaN(), Rand: rand.New(rand.NewSource(1))}},
		{"bad policy", Config{Instance: inst, Estimator: est, Budget: 1, Policy: Policy(9), Rand: rand.New(rand.NewSource(1))}},
		{"OSSP without rand", Config{Instance: inst, Estimator: est, Budget: 1, Policy: PolicyOSSP}},
	}
	for _, c := range cases {
		if _, err := NewEngine(c.cfg); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
	// SSE policy does not need a Rand.
	if _, err := NewEngine(Config{Instance: inst, Estimator: est, Budget: 1, Policy: PolicySSE}); err != nil {
		t.Errorf("SSE without rand should be fine: %v", err)
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyOSSP.String() != "OSSP" || PolicySSE.String() != "online-SSE" {
		t.Fatal("policy names changed")
	}
	if Policy(7).String() == "" {
		t.Fatal("unknown policy should still stringify")
	}
}

func TestProcessSingleTypeBudgetPacing(t *testing.T) {
	inst := singleInstance(t)
	e := newOSSPEngine(t, inst, 20, constEstimator(196.57))
	var prevBudget = e.RemainingBudget()
	for i := 0; i < 50; i++ {
		d, err := e.Process(Alert{Type: 0, Time: time.Duration(i) * time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if d.BudgetAfter > prevBudget+1e-12 {
			t.Fatalf("alert %d: budget increased %g → %g", i, prevBudget, d.BudgetAfter)
		}
		if d.BudgetAfter < 0 {
			t.Fatalf("alert %d: negative budget %g", i, d.BudgetAfter)
		}
		if d.Theta < 0 || d.Theta > 1 {
			t.Fatalf("alert %d: theta %g out of range", i, d.Theta)
		}
		prevBudget = d.BudgetAfter
	}
	if len(e.Decisions()) != 50 {
		t.Fatalf("recorded %d decisions, want 50", len(e.Decisions()))
	}
	if e.InitialBudget() != 20 {
		t.Fatalf("initial budget %g, want 20", e.InitialBudget())
	}
}

func TestOSSPNeverWorseThanSSEPerAlert(t *testing.T) {
	inst := multiInstance(t)
	e := newOSSPEngine(t, inst, 50, constEstimator(196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27))
	for i := 0; i < 60; i++ {
		d, err := e.Process(Alert{Type: i % 7, Time: time.Duration(i) * time.Minute})
		if err != nil {
			t.Fatal(err)
		}
		if d.OSSPUtility < d.SSEUtility-1e-7 {
			t.Fatalf("alert %d (type %d): OSSP %g < SSE %g (Theorem 2 violated)",
				i, i%7, d.OSSPUtility, d.SSEUtility)
		}
	}
}

func TestSSEPolicyNeverWarns(t *testing.T) {
	inst := singleInstance(t)
	e, err := NewEngine(Config{Instance: inst, Budget: 20, Estimator: constEstimator(100), Policy: PolicySSE})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		d, err := e.Process(Alert{Type: 0})
		if err != nil {
			t.Fatal(err)
		}
		if d.Warned {
			t.Fatal("SSE policy must never warn")
		}
		if math.Abs(d.AuditCharge-d.Theta) > 1e-12 {
			t.Fatalf("SSE policy should charge θ (%g), charged %g", d.Theta, d.AuditCharge)
		}
		if d.OSSPUtility != d.SSEUtility {
			t.Fatal("SSE policy should report SSE utility in both fields")
		}
	}
}

func TestOSSPDeterministicWithSeed(t *testing.T) {
	run := func() []Decision {
		inst := multiInstance(t)
		e := newOSSPEngine(t, inst, 50, constEstimator(196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27))
		for i := 0; i < 40; i++ {
			if _, err := e.Process(Alert{Type: (i * 3) % 7}); err != nil {
				t.Fatal(err)
			}
		}
		return append([]Decision(nil), e.Decisions()...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i].Warned != b[i].Warned || a[i].BudgetAfter != b[i].BudgetAfter ||
			a[i].OSSPUtility != b[i].OSSPUtility {
			t.Fatalf("decision %d differs across identical seeded runs", i)
		}
	}
}

func TestPreviewDoesNotMutate(t *testing.T) {
	inst := singleInstance(t)
	e := newOSSPEngine(t, inst, 20, constEstimator(100))
	before := e.RemainingBudget()
	d, err := e.Preview(Alert{Type: 0})
	if err != nil {
		t.Fatal(err)
	}
	if e.RemainingBudget() != before {
		t.Fatal("Preview mutated the budget")
	}
	if len(e.Decisions()) != 0 {
		t.Fatal("Preview recorded a decision")
	}
	if d.Theta <= 0 {
		t.Fatal("Preview should still solve the games")
	}
}

func TestVacuousGame(t *testing.T) {
	inst := singleInstance(t)
	e := newOSSPEngine(t, inst, 20, constEstimator(0))
	d, err := e.Process(Alert{Type: 0})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Vacuous {
		t.Fatal("zero-rate estimate should yield a vacuous decision")
	}
	if d.BudgetAfter != 20 {
		t.Fatal("vacuous decision must not spend budget")
	}
	if d.OSSPUtility != 0 || d.SSEUtility != 0 {
		t.Fatal("vacuous decision should have zero utilities")
	}
}

func TestEstimatorErrorsPropagate(t *testing.T) {
	inst := singleInstance(t)
	boom := errors.New("boom")
	e, err := NewEngine(Config{
		Instance: inst, Budget: 20, Policy: PolicySSE,
		Estimator: EstimatorFunc(func(time.Duration) ([]float64, error) { return nil, boom }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Process(Alert{Type: 0}); !errors.Is(err, boom) {
		t.Fatalf("want wrapped estimator error, got %v", err)
	}
}

func TestEstimatorLengthMismatch(t *testing.T) {
	inst := multiInstance(t)
	e := newOSSPEngine(t, inst, 20, constEstimator(1, 2)) // 2 rates for 7 types
	if _, err := e.Process(Alert{Type: 0}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestEstimatorNegativeRate(t *testing.T) {
	inst := singleInstance(t)
	e := newOSSPEngine(t, inst, 20, constEstimator(-5))
	if _, err := e.Process(Alert{Type: 0}); err == nil {
		t.Fatal("negative rate should error")
	}
}

func TestAlertTypeOutOfRange(t *testing.T) {
	inst := singleInstance(t)
	e := newOSSPEngine(t, inst, 20, constEstimator(10))
	if _, err := e.Process(Alert{Type: 5}); err == nil {
		t.Fatal("out-of-range alert type should error")
	}
	if _, err := e.Process(Alert{Type: -1}); err == nil {
		t.Fatal("negative alert type should error")
	}
}

func TestBudgetExhaustionFloorsAtZero(t *testing.T) {
	inst := singleInstance(t)
	// Tiny budget, huge per-alert charge potential.
	e := newOSSPEngine(t, inst, 0.05, constEstimator(1))
	for i := 0; i < 10; i++ {
		d, err := e.Process(Alert{Type: 0})
		if err != nil {
			t.Fatal(err)
		}
		if d.BudgetAfter < 0 {
			t.Fatalf("budget went negative: %g", d.BudgetAfter)
		}
	}
}

func TestWarningsHappenWithPositiveTheta(t *testing.T) {
	inst := singleInstance(t)
	e := newOSSPEngine(t, inst, 20, constEstimator(100))
	warned := 0
	for i := 0; i < 200; i++ {
		d, err := e.Process(Alert{Type: 0})
		if err != nil {
			t.Fatal(err)
		}
		if d.Warned {
			warned++
		}
	}
	if warned == 0 {
		t.Fatal("with positive coverage the OSSP should warn sometimes")
	}
	sum := e.Summary()
	if sum.Warnings != warned {
		t.Fatalf("summary warnings %d, counted %d", sum.Warnings, warned)
	}
}

func TestUseLPSignalingMatchesClosedForm(t *testing.T) {
	mk := func(useLP bool) []Decision {
		inst := multiInstance(t)
		e, err := NewEngine(Config{
			Instance: inst, Budget: 50, Policy: PolicyOSSP,
			Estimator:      constEstimator(196.57, 29.02, 140.46, 10.84, 25.43, 15.14, 43.27),
			Rand:           rand.New(rand.NewSource(7)),
			UseLPSignaling: useLP,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			if _, err := e.Process(Alert{Type: i % 7}); err != nil {
				t.Fatal(err)
			}
		}
		return append([]Decision(nil), e.Decisions()...)
	}
	cf, lps := mk(false), mk(true)
	for i := range cf {
		if math.Abs(cf[i].OSSPUtility-lps[i].OSSPUtility) > 1e-5 {
			t.Fatalf("decision %d: closed form %g vs LP %g", i, cf[i].OSSPUtility, lps[i].OSSPUtility)
		}
	}
}

func TestBayesianEngineSingleTypeMatchesPlain(t *testing.T) {
	// One attacker type with the nominal payoffs: the Bayesian engine must
	// report the same OSSP utilities as the plain one.
	inst := singleInstance(t)
	pf := inst.Payoffs[0]
	mk := func(bayes []signaling.AttackerType) *Engine {
		e, err := NewEngine(Config{
			Instance:  inst,
			Budget:    10, // θ ≈ 0.1, safely below the deterrence threshold
			Estimator: constEstimator(100),
			Policy:    PolicyOSSP,
			Rand:      rand.New(rand.NewSource(3)),
			// Use the LP path on the plain engine too, so both engines run
			// numerically identical solvers and their budget trajectories
			// cannot drift apart.
			UseLPSignaling: true,
			AttackerTypes:  bayes,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	plain := mk(nil)
	bayes := mk([]signaling.AttackerType{{Prior: 1, Covered: pf.AttackerCovered, Uncovered: pf.AttackerUncovered}})
	for i := 0; i < 15; i++ {
		dp, err := plain.Process(Alert{Type: 0})
		if err != nil {
			t.Fatal(err)
		}
		db, err := bayes.Process(Alert{Type: 0})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(dp.Theta-db.Theta) > 1e-9 {
			t.Fatalf("alert %d: trajectories diverged (θ %g vs %g)", i, dp.Theta, db.Theta)
		}
		if math.Abs(dp.OSSPUtility-db.OSSPUtility) > 1e-6 {
			t.Fatalf("alert %d: plain %g vs Bayesian %g", i, dp.OSSPUtility, db.OSSPUtility)
		}
	}
}

func TestBayesianEngineMixedTypes(t *testing.T) {
	inst := singleInstance(t)
	e, err := NewEngine(Config{
		Instance:  inst,
		Budget:    20,
		Estimator: constEstimator(100),
		Policy:    PolicyOSSP,
		Rand:      rand.New(rand.NewSource(3)),
		AttackerTypes: []signaling.AttackerType{
			{Prior: 0.7, Covered: -2000, Uncovered: 400},
			{Prior: 0.3, Covered: -300, Uncovered: 900},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 15; i++ {
		d, err := e.Process(Alert{Type: 0})
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Scheme.Validate(d.Theta); err != nil {
			t.Fatalf("alert %d: %v", i, err)
		}
	}
	if e.Summary().Alerts != 15 {
		t.Fatal("summary lost alerts")
	}
}

func TestNewCycleResetsState(t *testing.T) {
	inst := singleInstance(t)
	e := newOSSPEngine(t, inst, 20, constEstimator(100))
	for i := 0; i < 10; i++ {
		if _, err := e.Process(Alert{Type: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if e.RemainingBudget() >= 20 {
		t.Fatal("budget should have been spent")
	}
	if err := e.NewCycle(35); err != nil {
		t.Fatal(err)
	}
	if e.RemainingBudget() != 35 || e.InitialBudget() != 35 {
		t.Fatalf("budget after NewCycle: %g/%g", e.RemainingBudget(), e.InitialBudget())
	}
	if len(e.Decisions()) != 0 {
		t.Fatal("decisions should be cleared")
	}
	if _, err := e.Process(Alert{Type: 0}); err != nil {
		t.Fatal(err)
	}
	if len(e.Decisions()) != 1 {
		t.Fatal("engine should keep working after NewCycle")
	}
	if err := e.NewCycle(-1); err == nil {
		t.Fatal("negative budget should be rejected")
	}
	if err := e.NewCycle(math.NaN()); err == nil {
		t.Fatal("NaN budget should be rejected")
	}
}

func TestCloseCycleEmptyAndVacuous(t *testing.T) {
	inst := singleInstance(t)
	e := newOSSPEngine(t, inst, 20, constEstimator(0)) // vacuous estimates
	rng := rand.New(rand.NewSource(1))
	outcomes, cost := e.CloseCycle(rng)
	if len(outcomes) != 0 || cost != 0 {
		t.Fatal("empty cycle should close with no outcomes")
	}
	if _, err := e.Process(Alert{Type: 0}); err != nil {
		t.Fatal(err)
	}
	outcomes, cost = e.CloseCycle(rng)
	if len(outcomes) != 1 || outcomes[0].Audited || cost != 0 {
		t.Fatalf("vacuous decision should never be audited: %+v cost=%g", outcomes, cost)
	}
}

func TestSummaryAggregation(t *testing.T) {
	inst := singleInstance(t)
	e := newOSSPEngine(t, inst, 20, constEstimator(100))
	if s := e.Summary(); s.Alerts != 0 || s.BudgetSpent != 0 {
		t.Fatal("empty summary should be zero")
	}
	for i := 0; i < 25; i++ {
		if _, err := e.Process(Alert{Type: 0}); err != nil {
			t.Fatal(err)
		}
	}
	s := e.Summary()
	if s.Alerts != 25 {
		t.Fatalf("Alerts = %d, want 25", s.Alerts)
	}
	if s.BudgetSpent <= 0 || s.BudgetSpent > 20 {
		t.Fatalf("BudgetSpent = %g out of (0,20]", s.BudgetSpent)
	}
	if s.MeanOSSPUtility < s.MeanSSEUtility-1e-9 {
		t.Fatalf("mean OSSP %g < mean SSE %g", s.MeanOSSPUtility, s.MeanSSEUtility)
	}
	last := e.Decisions()[24]
	if s.FinalOSSP != last.OSSPUtility || s.FinalSSE != last.SSEUtility {
		t.Fatal("final utilities should come from the last decision")
	}
	if s.SAGEngaged != 25 {
		t.Fatalf("single-type cycle should engage the SAG on every alert, got %d", s.SAGEngaged)
	}
}
