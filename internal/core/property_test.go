package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/payoff"
)

// randomPayoff draws a payoff satisfying the paper's sign conventions.
// Roughly a third of draws violate the Theorem 3 condition, so both the
// closed-form and LP signaling paths are exercised.
func randomPayoff(rng *rand.Rand) payoff.Payoff {
	p := payoff.Payoff{
		DefenderCovered:   rng.Float64() * 700,
		DefenderUncovered: -(10 + rng.Float64()*2000),
		AttackerCovered:   -(10 + rng.Float64()*6000),
		AttackerUncovered: 10 + rng.Float64()*800,
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// TestPropertyTheorems is the randomized engine invariant check of the
// paper's Theorems 1 and 2: across random instances, budgets, and alert
// streams, every non-vacuous OSSP decision must (a) never do worse than the
// no-signaling SSE (OSSPUtility ≥ SSEUtility − ε, Theorem 2) and (b) carry
// a signaling scheme whose marginal audit probability equals the SSE
// marginal θ of the alert's type (Theorem 1).
//
// Trials run across goroutines sharing one metrics registry, so under
// `go test -race` this doubles as the race canary for engine+obs.
func TestPropertyTheorems(t *testing.T) {
	const trials = 48
	seeds := make([]int64, trials)
	root := rand.New(rand.NewSource(20200406)) // fixed seed: reproducible
	for i := range seeds {
		seeds[i] = root.Int63()
	}

	reg := obs.NewRegistry()
	var wg sync.WaitGroup
	errs := make(chan error, trials)
	for _, seed := range seeds {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			if err := runTheoremTrial(seed, reg); err != nil {
				errs <- err
			}
		}(seed)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The shared registry must have seen every committed decision.
	snap := reg.Snapshot()
	if got := snap.Counters[obs.Key(MetricDecisionsTotal, obs.L("policy", "OSSP"))]; got == 0 {
		t.Fatal("shared registry recorded no decisions")
	}
}

func runTheoremTrial(seed int64, reg *obs.Registry) (err error) {
	rng := rand.New(rand.NewSource(seed))
	numTypes := 1 + rng.Intn(5)
	pays := make([]payoff.Payoff, numTypes)
	costs := make([]float64, numTypes)
	for i := range pays {
		pays[i] = randomPayoff(rng)
		costs[i] = 0.5 + rng.Float64()*2.5
	}
	inst, err := game.NewInstance(pays, costs)
	if err != nil {
		return err
	}
	rates := make([]float64, numTypes)
	for i := range rates {
		if rng.Float64() < 0.15 {
			rates[i] = 0 // exercise the unattackable-type path
		} else {
			rates[i] = rng.Float64() * 40
		}
	}
	eng, err := NewEngine(Config{
		Instance:  inst,
		Budget:    rng.Float64() * 60,
		Estimator: EstimatorFunc(func(time.Duration) ([]float64, error) { return rates, nil }),
		Policy:    PolicyOSSP,
		Rand:      rand.New(rand.NewSource(seed ^ 0x5a6)),
		Metrics:   reg,
	})
	if err != nil {
		return err
	}

	for i := 0; i < 12; i++ {
		a := Alert{Type: rng.Intn(numTypes), Time: time.Duration(i) * 10 * time.Minute}
		d, err := eng.Process(a)
		if err != nil {
			return err
		}
		if d.Vacuous {
			continue
		}
		// Theorem 2: signaling never hurts. ε covers LP tolerance at the
		// payoff magnitudes drawn above.
		eps := 1e-6 * (1 + math.Abs(d.SSEUtility))
		if d.OSSPUtility < d.SSEUtility-eps {
			return trialErr(seed, i, "Theorem 2 violated: OSSP %g < SSE %g", d.OSSPUtility, d.SSEUtility)
		}
		// Theorem 1: the scheme's marginal audit probability is θ (and the
		// scheme is a valid joint distribution).
		if err := d.Scheme.Validate(d.Theta); err != nil {
			return trialErr(seed, i, "Theorem 1 violated: %v", err)
		}
		if d.BudgetAfter > d.BudgetBefore {
			return trialErr(seed, i, "budget grew: %g -> %g", d.BudgetBefore, d.BudgetAfter)
		}
	}
	return nil
}

func trialErr(seed int64, alert int, format string, args ...any) error {
	return fmt.Errorf("trial seed %d, alert %d: %s", seed, alert, fmt.Sprintf(format, args...))
}
