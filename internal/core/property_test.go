package core

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/payoff"
)

// randomPayoff draws a payoff satisfying the paper's sign conventions.
// Roughly a third of draws violate the Theorem 3 condition, so both the
// closed-form and LP signaling paths are exercised.
func randomPayoff(rng *rand.Rand) payoff.Payoff {
	p := payoff.Payoff{
		DefenderCovered:   rng.Float64() * 700,
		DefenderUncovered: -(10 + rng.Float64()*2000),
		AttackerCovered:   -(10 + rng.Float64()*6000),
		AttackerUncovered: 10 + rng.Float64()*800,
	}
	if err := p.Validate(); err != nil {
		panic(err)
	}
	return p
}

// TestPropertyTheorems is the randomized engine invariant check of the
// paper's Theorems 1 and 2: across random instances, budgets, and alert
// streams, every non-vacuous OSSP decision must (a) never do worse than the
// no-signaling SSE (OSSPUtility ≥ SSEUtility − ε, Theorem 2) and (b) carry
// a signaling scheme whose marginal audit probability equals the SSE
// marginal θ of the alert's type (Theorem 1).
//
// Trials run across goroutines sharing one metrics registry, so under
// `go test -race` this doubles as the race canary for engine+obs.
func TestPropertyTheorems(t *testing.T) {
	const trials = 48
	seeds := make([]int64, trials)
	root := rand.New(rand.NewSource(20200406)) // fixed seed: reproducible
	for i := range seeds {
		seeds[i] = root.Int63()
	}

	reg := obs.NewRegistry()
	var wg sync.WaitGroup
	errs := make(chan error, trials)
	for _, seed := range seeds {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			if err := runTheoremTrial(seed, reg); err != nil {
				errs <- err
			}
		}(seed)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// The shared registry must have seen every committed decision.
	snap := reg.Snapshot()
	if got := snap.Counters[obs.Key(MetricDecisionsTotal, obs.L("policy", "OSSP"))]; got == 0 {
		t.Fatal("shared registry recorded no decisions")
	}
}

func runTheoremTrial(seed int64, reg *obs.Registry) (err error) {
	rng := rand.New(rand.NewSource(seed))
	numTypes := 1 + rng.Intn(5)
	pays := make([]payoff.Payoff, numTypes)
	costs := make([]float64, numTypes)
	for i := range pays {
		pays[i] = randomPayoff(rng)
		costs[i] = 0.5 + rng.Float64()*2.5
	}
	inst, err := game.NewInstance(pays, costs)
	if err != nil {
		return err
	}
	rates := make([]float64, numTypes)
	for i := range rates {
		if rng.Float64() < 0.15 {
			rates[i] = 0 // exercise the unattackable-type path
		} else {
			rates[i] = rng.Float64() * 40
		}
	}
	eng, err := NewEngine(Config{
		Instance:  inst,
		Budget:    rng.Float64() * 60,
		Estimator: EstimatorFunc(func(time.Duration) ([]float64, error) { return rates, nil }),
		Policy:    PolicyOSSP,
		Rand:      rand.New(rand.NewSource(seed ^ 0x5a6)),
		Metrics:   reg,
	})
	if err != nil {
		return err
	}

	for i := 0; i < 12; i++ {
		a := Alert{Type: rng.Intn(numTypes), Time: time.Duration(i) * 10 * time.Minute}
		d, err := eng.Process(a)
		if err != nil {
			return err
		}
		if d.Vacuous {
			continue
		}
		// Theorem 2: signaling never hurts. ε covers LP tolerance at the
		// payoff magnitudes drawn above.
		eps := 1e-6 * (1 + math.Abs(d.SSEUtility))
		if d.OSSPUtility < d.SSEUtility-eps {
			return trialErr(seed, i, "Theorem 2 violated: OSSP %g < SSE %g", d.OSSPUtility, d.SSEUtility)
		}
		// Theorem 1: the scheme's marginal audit probability is θ (and the
		// scheme is a valid joint distribution).
		if err := d.Scheme.Validate(d.Theta); err != nil {
			return trialErr(seed, i, "Theorem 1 violated: %v", err)
		}
		if d.BudgetAfter > d.BudgetBefore {
			return trialErr(seed, i, "budget grew: %g -> %g", d.BudgetBefore, d.BudgetAfter)
		}
	}
	return nil
}

// TestPropertyTheorems34 is the randomized engine invariant check of the
// paper's Theorems 3 and 4: across random instances, budgets, and alert
// streams, every non-vacuous OSSP decision must (a) never audit on the
// silent branch (p0 = 0) when the alert type's payoffs satisfy
// U_ac·U_du − U_dc·U_au > 0 (Theorem 3) and (b) leave the rational
// attacker's expected utility exactly where the plain SSE puts it at the
// same marginal coverage θ, both clamped below by the stay-out option
// (Theorem 4 — signaling deters without punishing).
//
// randomPayoff draws violate the Theorem 3 condition roughly a third of the
// time, so decisions flow through both the closed-form and LP (3) signaling
// paths; the test asserts both branches were actually exercised so a drift
// in the draw distribution cannot silently hollow it out.
func TestPropertyTheorems34(t *testing.T) {
	const trials = 48
	seeds := make([]int64, trials)
	root := rand.New(rand.NewSource(20200613)) // fixed seed: reproducible
	for i := range seeds {
		seeds[i] = root.Int63()
	}

	reg := obs.NewRegistry()
	var wg sync.WaitGroup
	var condMet, condUnmet atomic.Int64
	errs := make(chan error, trials)
	for _, seed := range seeds {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			met, unmet, err := runTheorem34Trial(seed, reg)
			condMet.Add(met)
			condUnmet.Add(unmet)
			if err != nil {
				errs <- err
			}
		}(seed)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if condMet.Load() == 0 || condUnmet.Load() == 0 {
		t.Fatalf("draws did not exercise both signaling branches: %d decisions with the Theorem 3 condition, %d without",
			condMet.Load(), condUnmet.Load())
	}
}

// runTheorem34Trial mirrors runTheoremTrial's instance construction and
// returns how many non-vacuous decisions had the Theorem 3 payoff condition
// met and unmet, so the caller can assert coverage of both signaling paths.
func runTheorem34Trial(seed int64, reg *obs.Registry) (condMet, condUnmet int64, err error) {
	rng := rand.New(rand.NewSource(seed))
	numTypes := 1 + rng.Intn(5)
	pays := make([]payoff.Payoff, numTypes)
	costs := make([]float64, numTypes)
	for i := range pays {
		pays[i] = randomPayoff(rng)
		costs[i] = 0.5 + rng.Float64()*2.5
	}
	inst, err := game.NewInstance(pays, costs)
	if err != nil {
		return 0, 0, err
	}
	rates := make([]float64, numTypes)
	for i := range rates {
		if rng.Float64() < 0.15 {
			rates[i] = 0
		} else {
			rates[i] = rng.Float64() * 40
		}
	}
	eng, err := NewEngine(Config{
		Instance:  inst,
		Budget:    rng.Float64() * 60,
		Estimator: EstimatorFunc(func(time.Duration) ([]float64, error) { return rates, nil }),
		Policy:    PolicyOSSP,
		Rand:      rand.New(rand.NewSource(seed ^ 0x34)),
		Metrics:   reg,
	})
	if err != nil {
		return 0, 0, err
	}

	for i := 0; i < 12; i++ {
		a := Alert{Type: rng.Intn(numTypes), Time: time.Duration(i) * 10 * time.Minute}
		d, err := eng.Process(a)
		if err != nil {
			return condMet, condUnmet, err
		}
		if d.Vacuous {
			continue
		}
		pf := inst.Payoffs[a.Type]
		if pf.SatisfiesTheorem3() {
			condMet++
			// Theorem 3: under the payoff condition the optimal scheme
			// concentrates all auditing on the warned branch — a silent
			// response means a zero chance of audit.
			if math.Abs(d.Scheme.P0) > 1e-7 {
				return condMet, condUnmet, trialErr(seed, i,
					"Theorem 3 violated: p0 = %g with U_ac·U_du − U_dc·U_au = %g > 0",
					d.Scheme.P0, pf.AttackerCovered*pf.DefenderUncovered-pf.DefenderCovered*pf.AttackerUncovered)
			}
		} else {
			condUnmet++
		}
		// Theorem 4: the attacker is exactly indifferent between facing the
		// OSSP and facing the no-signaling SSE at the same θ — the auditor's
		// Theorem 2 gain is not extracted from the attacker. ε covers LP
		// tolerance at the payoff magnitudes drawn above.
		sse := math.Max(0, pf.AttackerExpected(d.Theta))
		ossp := math.Max(0, d.Scheme.AttackerUtility)
		eps := 1e-6 * (1 + sse)
		if math.Abs(sse-ossp) > eps {
			return condMet, condUnmet, trialErr(seed, i,
				"Theorem 4 violated: attacker utility %g under OSSP, %g under SSE at θ = %g", ossp, sse, d.Theta)
		}
	}
	return condMet, condUnmet, nil
}

func trialErr(seed int64, alert int, format string, args ...any) error {
	return fmt.Errorf("trial seed %d, alert %d: %s", seed, alert, fmt.Sprintf(format, args...))
}
