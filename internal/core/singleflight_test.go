package core

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestFlightGroupCoalesces(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	var leaderDone sync.WaitGroup
	leaderDone.Add(1)
	go func() {
		defer leaderDone.Done()
		d, shared, err := g.do(context.Background(), "k", func() (*Decision, error) {
			close(started)
			<-release
			return &Decision{Theta: 0.5}, nil
		})
		if err != nil || shared {
			t.Errorf("leader: shared=%v err=%v", shared, err)
		}
		if d.Theta != 0.5 {
			t.Errorf("leader theta %g", d.Theta)
		}
	}()
	<-started

	var followers sync.WaitGroup
	for i := 0; i < 4; i++ {
		followers.Add(1)
		go func() {
			defer followers.Done()
			d, shared, err := g.do(context.Background(), "k", func() (*Decision, error) {
				t.Error("follower ran the solve")
				return nil, nil
			})
			if err != nil || !shared {
				t.Errorf("follower: shared=%v err=%v", shared, err)
			}
			if d.Theta != 0.5 {
				t.Errorf("follower theta %g", d.Theta)
			}
		}()
	}
	time.Sleep(20 * time.Millisecond) // let followers register
	close(release)
	leaderDone.Wait()
	followers.Wait()

	// The key is gone: a late caller leads its own solve.
	_, shared, err := g.do(context.Background(), "k", func() (*Decision, error) {
		return &Decision{}, nil
	})
	if err != nil || shared {
		t.Fatalf("late caller: shared=%v err=%v", shared, err)
	}
}

func TestFlightGroupDistinctKeysDoNotCoalesce(t *testing.T) {
	var g flightGroup
	var wg sync.WaitGroup
	ran := make(chan string, 2)
	for _, k := range []string{"a", "b"} {
		wg.Add(1)
		go func(k string) {
			defer wg.Done()
			_, shared, err := g.do(context.Background(), k, func() (*Decision, error) {
				ran <- k
				return &Decision{}, nil
			})
			if err != nil || shared {
				t.Errorf("%s: shared=%v err=%v", k, shared, err)
			}
		}(k)
	}
	wg.Wait()
	if len(ran) != 2 {
		t.Fatalf("%d solves for 2 distinct keys", len(ran))
	}
}

func TestFlightGroupLeaderError(t *testing.T) {
	var g flightGroup
	boom := errors.New("boom")
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _, _ = g.do(context.Background(), "k", func() (*Decision, error) {
			close(started)
			<-release
			return nil, boom
		})
	}()
	<-started
	errc := make(chan error, 1)
	go func() {
		_, _, err := g.do(context.Background(), "k", func() (*Decision, error) {
			return &Decision{}, nil
		})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-errc; !errors.Is(err, boom) {
		t.Fatalf("follower got %v, want leader's error", err)
	}
}

func TestFlightGroupFollowerCtxCancel(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		_, _, _ = g.do(context.Background(), "k", func() (*Decision, error) {
			close(started)
			<-release
			return &Decision{}, nil
		})
	}()
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, shared, err := g.do(ctx, "k", func() (*Decision, error) {
		return &Decision{}, nil
	})
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled follower: shared=%v err=%v", shared, err)
	}
}

func TestFlightGroupLeaderPanicSurfacesToFollowers(t *testing.T) {
	var g flightGroup
	started := make(chan struct{})
	release := make(chan struct{})
	go func() {
		defer func() { _ = recover() }() // the leader's own panic propagates
		_, _, _ = g.do(context.Background(), "k", func() (*Decision, error) {
			close(started)
			<-release
			panic("solver exploded")
		})
	}()
	<-started
	errc := make(chan error, 1)
	go func() {
		_, _, err := g.do(context.Background(), "k", func() (*Decision, error) {
			return &Decision{}, nil
		})
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := <-errc; !errors.Is(err, errFlightPanicked) {
		t.Fatalf("follower got %v, want errFlightPanicked", err)
	}
}
