package core

import (
	"context"
	"errors"
	"sync"
)

// flightGroup coalesces concurrent solves of identical decision states: the
// first caller for a key (the leader) runs the pipeline; callers that arrive
// while it is in flight (followers) wait for the leader's result instead of
// duplicating the LP work. The key is the decision cache's state encoding —
// alert type plus quantized budget and future rates — so "identical" has
// exactly the same meaning as a cache hit, and the exactness trade-off is
// governed by the same quanta.
//
// This is the server-burst optimization: a spike of same-type alerts at a
// near-constant budget pays for one SSE + signaling solve, not one per
// request, even before the result lands in the decision cache.
type flightGroup struct {
	// mu guards the in-flight map only; it is never held while a solve
	// runs, so registration stays O(1) under any solve latency.
	mu sync.Mutex
	m  map[string]*flightCall
}

// flightCall is one in-flight solve. done is closed exactly once, after d
// and err are final; waiters must not read them before done is closed.
type flightCall struct {
	done chan struct{}
	d    Decision // value copy of the leader's pre-commit decision
	err  error
}

// errFlightPanicked is pre-loaded into a call's err so that a leader panic
// (which unwinds past the assignment of the real result) is observed by
// followers as an error instead of a zero-valued "successful" decision. The
// leader's own panic still propagates to its fallback.Attempt wrapper.
var errFlightPanicked = errors.New("core: in-flight solve panicked")

// do returns the decision for key, coalescing with an identical in-flight
// solve when one exists. shared reports whether the result came from another
// caller's solve (followers and late arrivals); the returned Decision is a
// private copy either way. A follower whose ctx expires while waiting
// returns ctx.Err() without aborting the leader.
func (g *flightGroup) do(ctx context.Context, key string, fn func() (*Decision, error)) (d Decision, shared bool, err error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = make(map[string]*flightCall)
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.d, true, c.err
		case <-ctx.Done():
			return Decision{}, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{}), err: errFlightPanicked}
	g.m[key] = c
	g.mu.Unlock()

	defer func() {
		g.mu.Lock()
		delete(g.m, key)
		g.mu.Unlock()
		close(c.done)
	}()
	dp, ferr := fn()
	if ferr != nil {
		c.d, c.err = Decision{}, ferr
		return Decision{}, false, ferr
	}
	c.d, c.err = *dp, nil
	return *dp, false, nil
}
