package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/fallback"
	"github.com/auditgames/sag/internal/game"
)

// blockingSolver returns an SSESolveFunc that never finishes on its own: it
// waits for ctx and returns its error, modeling a solve that outlives any
// deadline.
func blockingSolver() SSESolveFunc {
	return func(ctx context.Context, _ *game.Instance, _ float64, _ []dist.Poisson) (*game.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
}

// failingSolver returns an SSESolveFunc that always errors.
func failingSolver(err error) SSESolveFunc {
	return func(context.Context, *game.Instance, float64, []dist.Poisson) (*game.Result, error) {
		return nil, err
	}
}

func TestNegativeDeadlineRejected(t *testing.T) {
	_, err := NewEngine(Config{
		Instance:         singleInstance(t),
		Budget:           1,
		Estimator:        constEstimator(10),
		Rand:             rand.New(rand.NewSource(1)),
		DecisionDeadline: -time.Second,
	})
	if err == nil {
		t.Fatal("negative deadline must be rejected")
	}
}

func TestDeadlineWithoutFallbackErrors(t *testing.T) {
	e, err := NewEngine(Config{
		Instance:         singleInstance(t),
		Budget:           5,
		Estimator:        constEstimator(10),
		Rand:             rand.New(rand.NewSource(1)),
		DecisionDeadline: 10 * time.Millisecond,
		SSESolve:         blockingSolver(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Process(Alert{Type: 0}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want DeadlineExceeded without fallback, got %v", err)
	}
	if got := e.RemainingBudget(); got != 5 {
		t.Fatalf("failed decision charged budget: remaining %g, want 5", got)
	}
	if n := len(e.Decisions()); n != 0 {
		t.Fatalf("failed decision was recorded: %d decisions", n)
	}
}

func TestDeadlineWithFallbackDegrades(t *testing.T) {
	e, err := NewEngine(Config{
		Instance:         singleInstance(t),
		Budget:           5,
		Estimator:        constEstimator(10),
		Rand:             rand.New(rand.NewSource(1)),
		DecisionDeadline: 10 * time.Millisecond,
		SSESolve:         blockingSolver(),
		Fallback:         true,
	})
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.Process(Alert{Type: 0})
	if err != nil {
		t.Fatalf("Process with fallback errored: %v", err)
	}
	if d.Fallback != fallback.Static {
		t.Fatalf("first-alert timeout should land on static, got %v", d.Fallback)
	}
	if d.Warned {
		t.Fatal("static fallback must never warn (Theorem 2 degradation)")
	}
	if d.Scheme.WarnProbability() != 0 {
		t.Fatalf("static scheme warns with probability %g", d.Scheme.WarnProbability())
	}
	if d.Theta < 0 || d.Theta > 1 {
		t.Fatalf("static audit probability %g outside [0,1]", d.Theta)
	}
}

func TestCanceledContextPropagates(t *testing.T) {
	e := newOSSPEngine(t, singleInstance(t), 5, constEstimator(10))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.ProcessContext(ctx, Alert{Type: 0}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

func TestSolverErrorFallsBackToLastGood(t *testing.T) {
	boom := errors.New("solver down")
	solverErr := false
	e, err := NewEngine(Config{
		Instance:  multiInstance(t),
		Budget:    10,
		Estimator: constEstimator(4, 3, 5, 2, 6, 1, 3),
		Rand:      rand.New(rand.NewSource(1)),
		Fallback:  true,
		SSESolve: func(ctx context.Context, inst *game.Instance, budget float64, futures []dist.Poisson) (*game.Result, error) {
			if solverErr {
				return nil, boom
			}
			return game.SolveOnlineSSECtx(ctx, inst, budget, futures)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	good, err := e.Process(Alert{Type: 2})
	if err != nil || good.Fallback != fallback.None {
		t.Fatalf("clean decision failed: %v, level %v", err, good.Fallback)
	}
	solverErr = true
	d, err := e.Process(Alert{Type: 3})
	if err != nil {
		t.Fatalf("Process with failing solver errored: %v", err)
	}
	if d.Fallback != fallback.LastGood {
		t.Fatalf("Fallback = %v, want last_good", d.Fallback)
	}
	// The degraded decision reuses the previous equilibrium's coverage for
	// its own type.
	if d.SSE != good.SSE {
		t.Fatal("last-good rung did not reuse the previous equilibrium")
	}
	if d.Theta != good.SSE.Coverage[3] {
		t.Fatalf("Theta = %g, want coverage[3] = %g", d.Theta, good.SSE.Coverage[3])
	}
}

func TestPreviewNeverDegrades(t *testing.T) {
	boom := errors.New("solver down")
	e, err := NewEngine(Config{
		Instance:  singleInstance(t),
		Budget:    5,
		Estimator: constEstimator(10),
		Rand:      rand.New(rand.NewSource(1)),
		Fallback:  true,
		SSESolve:  failingSolver(boom),
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Preview(Alert{Type: 0}); !errors.Is(err, boom) {
		t.Fatalf("Preview must report the primary pipeline's error, got %v", err)
	}
}

// TestEngineConcurrentAccess exercises the Engine's documented concurrency
// contract under the race detector: Process, Preview, and every read
// accessor from concurrent goroutines, then NewCycle once all settle.
func TestEngineConcurrentAccess(t *testing.T) {
	e, err := NewEngine(Config{
		Instance:  multiInstance(t),
		Budget:    50,
		Estimator: constEstimator(4, 3, 5, 2, 6, 1, 3),
		Rand:      rand.New(rand.NewSource(7)),
		Cache:     CacheConfig{Size: 32},
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 6, 10
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := e.Process(Alert{Type: (w + i) % 7}); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				_ = e.RemainingBudget()
				_ = e.Summary()
				_ = e.CacheStats()
				_, _ = e.Preview(Alert{Type: i % 7})
			}
		}(w)
	}
	wg.Wait()
	if n := len(e.Decisions()); n != workers*perWorker {
		t.Fatalf("recorded %d decisions, want %d", n, workers*perWorker)
	}
	if err := e.NewCycle(50); err != nil {
		t.Fatal(err)
	}
	if n := len(e.Decisions()); n != 0 {
		t.Fatalf("NewCycle left %d decisions", n)
	}
}
