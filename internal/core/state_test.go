package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/payoff"
)

// stateTestEngine builds a deterministic engine for the durability property
// tests: random (seeded) instance, time-varying rates so decisions depend
// on the alert offset, OSSP policy with a seeded RNG.
func stateTestEngine(t *testing.T, seed int64, journal JournalFunc) (*Engine, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	numTypes := 2 + rng.Intn(4)
	pays := make([]payoff.Payoff, numTypes)
	costs := make([]float64, numTypes)
	for i := range pays {
		pays[i] = randomPayoff(rng)
		costs[i] = 0.5 + rng.Float64()*2.5
	}
	inst, err := game.NewInstance(pays, costs)
	if err != nil {
		t.Fatal(err)
	}
	base := make([]float64, numTypes)
	for i := range base {
		base[i] = 1 + rng.Float64()*30
	}
	// Rates decay over the day, so the decision pipeline sees a different
	// game at each alert offset — the snapshot must preserve exactly where
	// the budget chain and the RNG stream stand.
	est := EstimatorFunc(func(at time.Duration) ([]float64, error) {
		frac := 1 - float64(at)/float64(24*time.Hour)
		out := make([]float64, len(base))
		for i, b := range base {
			out[i] = b * frac
		}
		return out, nil
	})
	eng, err := NewEngine(Config{
		Instance:  inst,
		Budget:    5 + rng.Float64()*40,
		Estimator: est,
		Policy:    PolicyOSSP,
		Rand:      rand.New(rand.NewSource(seed ^ 0x77)),
		Journal:   journal,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng, numTypes
}

// decisionsEqual compares two decision slices on every durable field.
func decisionsEqual(a, b []Decision) error {
	if len(a) != len(b) {
		return fmt.Errorf("decision counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Alert != y.Alert || x.Warned != y.Warned || x.Vacuous != y.Vacuous ||
			x.AppliedSAG != y.AppliedSAG || x.Fallback != y.Fallback {
			return fmt.Errorf("decision %d flags differ: %+v vs %+v", i, x, y)
		}
		for _, p := range [][2]float64{
			{x.Theta, y.Theta}, {x.AuditCharge, y.AuditCharge},
			{x.BudgetBefore, y.BudgetBefore}, {x.BudgetAfter, y.BudgetAfter},
			{x.SSEUtility, y.SSEUtility}, {x.OSSPUtility, y.OSSPUtility},
		} {
			if math.Float64bits(p[0]) != math.Float64bits(p[1]) {
				return fmt.Errorf("decision %d floats differ: %+v vs %+v", i, x, y)
			}
		}
	}
	return nil
}

// TestPropertySnapshotReplayEqualsPureReplay is the recovery-correctness
// property behind the WAL: for random alert sequences, crash points, and
// snapshot points, restoring a snapshot and replaying the journaled tail,
// then continuing live, must be bit-identical — decisions, budget chain,
// RNG stream, summary, and the end-of-cycle audit plan — to the engine that
// never crashed.
func TestPropertySnapshotReplayEqualsPureReplay(t *testing.T) {
	root := rand.New(rand.NewSource(20260808))
	for trial := 0; trial < 20; trial++ {
		seed := root.Int63()
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed ^ 0x1ce))

			// Golden run: process the whole sequence uninterrupted, capturing
			// the journal the WAL would have recorded.
			var journal []DecisionRecord
			golden, numTypes := stateTestEngine(t, seed, func(rec DecisionRecord) (func() error, error) {
				journal = append(journal, rec)
				return nil, nil
			})
			const n = 24
			alerts := make([]Alert, n)
			for i := range alerts {
				alerts[i] = Alert{
					Type: rng.Intn(numTypes),
					Time: time.Duration(i) * 37 * time.Minute,
				}
			}
			for _, a := range alerts {
				if _, err := golden.Process(a); err != nil {
					t.Fatal(err)
				}
			}

			// Crash at k having snapshotted at s ≤ k: the recovering engine
			// restores the snapshot taken after alert s, replays journal
			// records s..k, then serves alerts k..n live.
			k := 1 + rng.Intn(n-1)
			s := rng.Intn(k + 1)

			shadow, _ := stateTestEngine(t, seed, nil)
			for _, a := range alerts[:s] {
				if _, err := shadow.Process(a); err != nil {
					t.Fatal(err)
				}
			}
			snap := shadow.ExportState()

			var replayJournal []DecisionRecord
			recovered, _ := stateTestEngine(t, seed, func(rec DecisionRecord) (func() error, error) {
				replayJournal = append(replayJournal, rec)
				return nil, nil
			})
			if err := recovered.RestoreState(snap); err != nil {
				t.Fatal(err)
			}
			for _, rec := range journal[s:k] {
				if err := recovered.ApplyDecision(rec); err != nil {
					t.Fatal(err)
				}
			}
			for _, a := range alerts[k:] {
				if _, err := recovered.Process(a); err != nil {
					t.Fatal(err)
				}
			}

			// Bit-identical state.
			if err := decisionsEqual(golden.Decisions(), recovered.Decisions()); err != nil {
				t.Fatalf("crash at %d, snapshot at %d: %v", k, s, err)
			}
			if g, r := golden.RemainingBudget(), recovered.RemainingBudget(); math.Float64bits(g) != math.Float64bits(r) {
				t.Fatalf("budgets differ: %v vs %v", g, r)
			}
			if g, r := golden.RNGDraws(), recovered.RNGDraws(); g != r {
				t.Fatalf("rng draws differ: %d vs %d", g, r)
			}
			if g, r := golden.Summary(), recovered.Summary(); g != r {
				t.Fatalf("summaries differ:\n%+v\n%+v", g, r)
			}
			// The live decisions the recovered engine committed after the
			// crash must journal the same records the golden run did.
			for i, rec := range replayJournal {
				if rec != journal[k+i] {
					t.Fatalf("post-recovery journal diverged at %d: %+v vs %+v", i, rec, journal[k+i])
				}
			}
			// Same audit plan at cycle close.
			crng := rand.New(rand.NewSource(seed ^ 0xabc))
			gAudits, gTotal := golden.CloseCycle(crng)
			crng = rand.New(rand.NewSource(seed ^ 0xabc))
			rAudits, rTotal := recovered.CloseCycle(crng)
			if gTotal != rTotal || len(gAudits) != len(rAudits) {
				t.Fatalf("audit plans differ: total %v vs %v", gTotal, rTotal)
			}
			for i := range gAudits {
				if gAudits[i] != rAudits[i] {
					t.Fatalf("audit outcome %d differs: %+v vs %+v", i, gAudits[i], rAudits[i])
				}
			}
		})
	}
}

// TestRestoreStateRequiresFreshEngine pins the restore contract: restoring
// onto an engine that has already drawn from its RNG or committed decisions
// must fail rather than silently merge two histories.
func TestRestoreStateRequiresFreshEngine(t *testing.T) {
	eng, numTypes := stateTestEngine(t, 42, nil)
	if _, err := eng.Process(Alert{Type: numTypes - 1, Time: time.Minute}); err != nil {
		t.Fatal(err)
	}
	snap := eng.ExportState()
	if err := eng.RestoreState(snap); err == nil {
		t.Fatal("RestoreState succeeded on a used engine")
	}
	fresh, _ := stateTestEngine(t, 42, nil)
	if err := fresh.RestoreState(snap); err != nil {
		t.Fatal(err)
	}
	if fresh.RNGDraws() != 1 || len(fresh.Decisions()) != 1 {
		t.Fatalf("restored draws=%d decisions=%d", fresh.RNGDraws(), len(fresh.Decisions()))
	}
}

// TestApplyDecisionOrderEnforced pins that replay rejects out-of-order and
// out-of-range records instead of corrupting the budget chain.
func TestApplyDecisionOrderEnforced(t *testing.T) {
	eng, numTypes := stateTestEngine(t, 7, nil)
	if err := eng.ApplyDecision(DecisionRecord{Seq: 3, Type: 0}); err == nil {
		t.Fatal("accepted out-of-order record")
	}
	if err := eng.ApplyDecision(DecisionRecord{Seq: 0, Type: numTypes}); err == nil {
		t.Fatal("accepted out-of-range type")
	}
	if err := eng.ApplyDecision(DecisionRecord{Seq: 0, Type: 0, BudgetAfter: 3}); err != nil {
		t.Fatal(err)
	}
	if got := eng.RemainingBudget(); got != 3 {
		t.Fatalf("budget after replay = %v", got)
	}
}

// TestJournalHookOrderAndDurabilityWait pins the hook contract: records
// arrive in commit order with contiguous sequence numbers, and Process does
// not return before the hook's wait has run.
func TestJournalHookOrderAndDurabilityWait(t *testing.T) {
	var recs []DecisionRecord
	waited := 0
	eng, numTypes := stateTestEngine(t, 99, func(rec DecisionRecord) (func() error, error) {
		recs = append(recs, rec)
		return func() error { waited++; return nil }, nil
	})
	for i := 0; i < 5; i++ {
		if _, err := eng.Process(Alert{Type: i % numTypes, Time: time.Duration(i) * time.Hour}); err != nil {
			t.Fatal(err)
		}
		if waited != i+1 {
			t.Fatalf("Process returned before the journal wait ran (%d/%d)", waited, i+1)
		}
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i) {
			t.Fatalf("journal seq %d at position %d", rec.Seq, i)
		}
	}
}

// TestJournalWaitErrorSurfaces pins that a failed durability wait becomes a
// Process error (the caller must not acknowledge an unjournaled decision).
func TestJournalWaitErrorSurfaces(t *testing.T) {
	eng, _ := stateTestEngine(t, 123, func(rec DecisionRecord) (func() error, error) {
		return func() error { return fmt.Errorf("disk full") }, nil
	})
	if _, err := eng.Process(Alert{Type: 0, Time: time.Minute}); err == nil {
		t.Fatal("Process swallowed the journal error")
	}
}
