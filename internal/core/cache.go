package core

import (
	"container/list"
	"encoding/binary"
	"fmt"
	"math"
	"sync"
)

// CacheConfig configures the engine's per-cycle decision cache.
//
// The cache memoizes the full decide() pipeline — future-rate estimation
// already done, SSE solve, and signaling scheme — keyed on the game state
// that determines the decision: the alert's type, the remaining budget, and
// the estimated future-rate vector. Budget and rates are quantized before
// keying, so states that are equal up to the configured quanta share one
// entry. With both quanta zero the key is exact (bit-level float identity)
// and a hit is guaranteed to reproduce the fresh solve; positive quanta
// trade exactness for hit rate, bounded by the solution's Lipschitz
// dependence on budget and rates.
//
// Because the remaining budget is part of the key, spending budget
// invalidates stale entries implicitly: the next lookup at the new budget
// (or the new quantization bucket) misses and re-solves. NewCycle clears
// the cache outright.
type CacheConfig struct {
	// Size is the maximum number of cached decisions; least-recently-used
	// entries are evicted beyond it. Zero (or negative) disables caching.
	Size int
	// BudgetQuantum is the bucket width for the remaining budget in the
	// cache key. Zero means exact (Float64bits) matching.
	BudgetQuantum float64
	// RateQuantum is the bucket width for each future-rate coordinate.
	// Zero means exact matching.
	RateQuantum float64
}

func (c CacheConfig) validate() error {
	for _, q := range []float64{c.BudgetQuantum, c.RateQuantum} {
		if q < 0 || math.IsNaN(q) || math.IsInf(q, 0) {
			return fmt.Errorf("core: invalid cache quantum %g", q)
		}
	}
	return nil
}

// CacheStats is a snapshot of the decision cache's effectiveness counters.
type CacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Entries   int
}

// HitRate returns Hits/(Hits+Misses), or 0 before any lookup.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// cacheEntry pairs a key with its memoized decision inside the LRU list.
type cacheEntry struct {
	key string
	d   Decision
}

// decisionCache is a fixed-capacity LRU map from encoded game state to a
// Decision value. It carries its own mutex: since the engine stopped holding
// its budget lock across the solve pipeline, cache lookups happen both
// inside the engine's critical section (the degraded ladder) and outside it
// (the optimistic decide path), so the cache serializes itself. Lock order:
// the engine's mutex may be held when acquiring mu, never the reverse.
type decisionCache struct {
	cfg       CacheConfig
	mu        sync.Mutex
	order     *list.List // front = most recently used
	byKey     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

func newDecisionCache(cfg CacheConfig) *decisionCache {
	return &decisionCache{
		cfg:   cfg,
		order: list.New(),
		byKey: make(map[string]*list.Element, cfg.Size),
	}
}

// quantize maps v to its bucket index under quantum q; q == 0 preserves the
// exact bit pattern so distinct floats never collide.
func quantize(v, q float64) uint64 {
	if q == 0 {
		return math.Float64bits(v)
	}
	return uint64(int64(math.Round(v / q)))
}

// stateKey encodes (type, quantized budget, quantized rates) into a compact
// binary string. It is the canonical identity of a decision state: the
// cache, the in-flight solve coalescing, and the engine's optimistic commit
// check all agree on it, so "same state" means the same thing everywhere.
func stateKey(alertType int, budget float64, rates []float64, budgetQ, rateQ float64) string {
	buf := make([]byte, 8*(2+len(rates)))
	binary.LittleEndian.PutUint64(buf[0:], uint64(alertType))
	binary.LittleEndian.PutUint64(buf[8:], quantize(budget, budgetQ))
	for i, r := range rates {
		binary.LittleEndian.PutUint64(buf[16+8*i:], quantize(r, rateQ))
	}
	return string(buf)
}

// key encodes the state under the cache's configured quanta.
func (c *decisionCache) key(alertType int, budget float64, rates []float64) string {
	return stateKey(alertType, budget, rates, c.cfg.BudgetQuantum, c.cfg.RateQuantum)
}

// get returns a copy of the cached decision for key, if present, promoting
// the entry to most-recently-used.
func (c *decisionCache) get(key string) (Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		c.misses++
		return Decision{}, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).d, true
}

// latestForType returns a copy of the most-recently-used cached decision for
// the given alert type, regardless of the budget/rate portion of its key.
// This is the degraded-mode lookup: when the pipeline cannot solve the
// current game state in time, the freshest decision ever made for this type
// is the best stand-in the cycle has. It does not touch LRU order or the
// hit/miss counters — degraded reuse is not a cache hit.
func (c *decisionCache) latestForType(alertType int) (Decision, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for el := c.order.Front(); el != nil; el = el.Next() {
		if ent := el.Value.(*cacheEntry); ent.d.Alert.Type == alertType {
			return ent.d, true
		}
	}
	return Decision{}, false
}

// put stores a copy of d under key, evicting the least-recently-used entry
// at capacity. It reports whether an eviction happened.
func (c *decisionCache) put(key string, d Decision) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.byKey[key]; ok {
		el.Value.(*cacheEntry).d = d
		c.order.MoveToFront(el)
		return false
	}
	c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, d: d})
	if c.order.Len() <= c.cfg.Size {
		return false
	}
	oldest := c.order.Back()
	c.order.Remove(oldest)
	delete(c.byKey, oldest.Value.(*cacheEntry).key)
	c.evictions++
	return true
}

// setCapacity changes the cache's entry limit in place, evicting
// least-recently-used entries if the cache currently holds more than the new
// limit. It returns the number of entries evicted. A limit <= 0 is clamped
// to 1: capacity is rebalanced, never turned off, once a cache exists (the
// multi-tenant router divides one entry budget across live tenants).
func (c *decisionCache) setCapacity(n int) int {
	if n <= 0 {
		n = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cfg.Size = n
	evicted := 0
	for c.order.Len() > n {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.byKey, oldest.Value.(*cacheEntry).key)
		c.evictions++
		evicted++
	}
	return evicted
}

// clear drops every entry (new audit cycle); the effectiveness counters are
// cumulative across cycles and survive.
func (c *decisionCache) clear() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	clear(c.byKey)
}

func (c *decisionCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

func (c *decisionCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evictions, Entries: c.order.Len()}
}
