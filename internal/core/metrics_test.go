package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/payoff"
)

func metricsFixture(t *testing.T, reg *obs.Registry, pays []payoff.Payoff, rates []float64, budget float64) *Engine {
	t.Helper()
	inst, err := game.NewInstance(pays, game.UniformCost(len(pays), 1))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(Config{
		Instance:  inst,
		Budget:    budget,
		Estimator: EstimatorFunc(func(time.Duration) ([]float64, error) { return rates, nil }),
		Policy:    PolicyOSSP,
		Rand:      rand.New(rand.NewSource(7)),
		Metrics:   reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

func TestEngineMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	pays := payoff.Table2Slice()[:3]
	eng := metricsFixture(t, reg, pays, []float64{40, 25, 10}, 20)

	const n = 8
	for i := 0; i < n; i++ {
		if _, err := eng.Process(Alert{Type: i % 3, Time: time.Duration(i) * time.Minute}); err != nil {
			t.Fatal(err)
		}
	}

	snap := reg.Snapshot()
	if got := snap.Counters[obs.Key(MetricDecisionsTotal, obs.L("policy", "OSSP"))]; got != n {
		t.Fatalf("decisions counter = %d, want %d", got, n)
	}
	for _, stage := range []string{"estimate", "sse", "signal"} {
		hd, ok := snap.Histograms[obs.Key(MetricStageSeconds, obs.L("stage", stage))]
		if !ok || hd.Count != n {
			t.Fatalf("stage %q histogram count = %d, want %d", stage, hd.Count, n)
		}
	}
	if hd := snap.Histograms[MetricDecisionSeconds]; hd.Count != n {
		t.Fatalf("decision histogram count = %d, want %d", hd.Count, n)
	}
	if got := snap.Gauges[MetricBudgetRemaining]; got != eng.RemainingBudget() {
		t.Fatalf("budget gauge %g, engine budget %g", got, eng.RemainingBudget())
	}
	// Each decision solves one LP per attackable type (3 here).
	if got := snap.Counters[MetricLPSolvesTotal]; got != n*3 {
		t.Fatalf("lp solves = %d, want %d", got, n*3)
	}
	if snap.Counters[MetricSimplexIterationsTotal] == 0 || snap.Counters[MetricSimplexPivotsTotal] == 0 {
		t.Fatal("simplex counters must be nonzero after real solves")
	}
	// Table 2 payoffs satisfy Theorem 3: closed form, no LP fallback.
	if got := snap.Counters[MetricTheorem3FallbackTotal]; got != 0 {
		t.Fatalf("unexpected Theorem-3 fallbacks: %d", got)
	}

	// NewCycle resets the gauge to the fresh budget.
	if err := eng.NewCycle(33); err != nil {
		t.Fatal(err)
	}
	if got := reg.Snapshot().Gauges[MetricBudgetRemaining]; got != 33 {
		t.Fatalf("budget gauge after NewCycle = %g, want 33", got)
	}
}

func TestEngineMetricsVacuousAndFallback(t *testing.T) {
	reg := obs.NewRegistry()

	// All-zero future rates: every decision is vacuous.
	vac := metricsFixture(t, reg, payoff.Table2Slice()[:2], []float64{0, 0}, 10)
	for i := 0; i < 3; i++ {
		if _, err := vac.Process(Alert{Type: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Snapshot().Counters[MetricVacuousTotal]; got != 3 {
		t.Fatalf("vacuous counter = %d, want 3", got)
	}

	// A payoff violating the Theorem 3 condition forces the LP fallback:
	// U_ac·U_du − U_dc·U_au = (−100)(−50) − 600·10 = −1000 ≤ 0.
	exotic := payoff.Payoff{DefenderCovered: 600, DefenderUncovered: -50, AttackerCovered: -100, AttackerUncovered: 10}
	if exotic.SatisfiesTheorem3() {
		t.Fatal("fixture payoff unexpectedly satisfies Theorem 3")
	}
	fb := metricsFixture(t, reg, []payoff.Payoff{exotic}, []float64{20}, 10)
	for i := 0; i < 4; i++ {
		if _, err := fb.Process(Alert{Type: 0}); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Snapshot().Counters[MetricTheorem3FallbackTotal]; got != 4 {
		t.Fatalf("fallback counter = %d, want 4", got)
	}
}

// TestEngineNilMetrics: a nil registry must leave the engine fully
// functional and identical in behavior.
func TestEngineNilMetrics(t *testing.T) {
	with := metricsFixture(t, obs.NewRegistry(), payoff.Table2Slice()[:2], []float64{30, 15}, 20)
	without := metricsFixture(t, nil, payoff.Table2Slice()[:2], []float64{30, 15}, 20)
	for i := 0; i < 5; i++ {
		a := Alert{Type: i % 2, Time: time.Duration(i) * time.Minute}
		dw, err := with.Process(a)
		if err != nil {
			t.Fatal(err)
		}
		dn, err := without.Process(a)
		if err != nil {
			t.Fatal(err)
		}
		if dw.Theta != dn.Theta || dw.Warned != dn.Warned || dw.BudgetAfter != dn.BudgetAfter {
			t.Fatalf("metrics changed behavior: %+v vs %+v", dw, dn)
		}
	}
}
