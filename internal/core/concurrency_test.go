package core

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/game"
)

// gatedSolver wraps the real solver so tests can hold solves inside the
// pipeline and observe/force overlap. Each entry signals entered; the solve
// proceeds once release is closed.
type gatedSolver struct {
	entered chan struct{}
	release chan struct{}
	calls   atomic.Int32
}

func newGatedSolver() *gatedSolver {
	return &gatedSolver{
		entered: make(chan struct{}, 64),
		release: make(chan struct{}),
	}
}

func (b *gatedSolver) solve(ctx context.Context, inst *game.Instance, budget float64, futures []dist.Poisson) (*game.Result, error) {
	b.calls.Add(1)
	b.entered <- struct{}{}
	select {
	case <-b.release:
	case <-time.After(10 * time.Second):
		return nil, errors.New("gatedSolver: never released")
	}
	return game.SolveOnlineSSECtx(ctx, inst, budget, futures)
}

// TestProcessConcurrentKeepsBudgetChain drives many goroutines through
// Process and checks the commit-side invariants that must survive the
// unserialized pipeline: every decision committed, the budget chain
// contiguous (each decision starts where the previous one ended), and the
// budget never negative.
func TestProcessConcurrentKeepsBudgetChain(t *testing.T) {
	e := newOSSPEngine(t, multiInstance(t), 1e6, constEstimator(196, 29, 140, 10, 25, 15, 43))
	const workers, perWorker = 8, 20
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if _, err := e.Process(Alert{Type: (g + i) % 7, Time: time.Duration(i) * time.Minute}); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	ds := e.Decisions()
	if len(ds) != workers*perWorker {
		t.Fatalf("committed %d decisions, want %d", len(ds), workers*perWorker)
	}
	for i, d := range ds {
		if d.BudgetAfter < 0 {
			t.Fatalf("decision %d: negative budget %g", i, d.BudgetAfter)
		}
		if i > 0 && d.BudgetBefore != ds[i-1].BudgetAfter {
			t.Fatalf("budget chain broken at %d: starts at %g, previous ended at %g",
				i, d.BudgetBefore, ds[i-1].BudgetAfter)
		}
	}
	if got := e.RemainingBudget(); got != ds[len(ds)-1].BudgetAfter {
		t.Fatalf("remaining budget %g != last decision's %g", got, ds[len(ds)-1].BudgetAfter)
	}
}

// TestProcessConcurrentSolvesOverlap proves the tentpole claim at the engine
// layer: two Process calls of different types are simultaneously inside the
// SSE solver. If the pipeline were still serialized under the engine mutex
// the second solve could never start before the first finished, and the
// barrier below would time out.
func TestProcessConcurrentSolvesOverlap(t *testing.T) {
	bs := newGatedSolver()
	e, err := NewEngine(Config{
		Instance:  multiInstance(t),
		Budget:    1e6,
		Estimator: constEstimator(196, 29, 140, 10, 25, 15, 43),
		Policy:    PolicyOSSP,
		Rand:      rand.New(rand.NewSource(42)),
		SSESolve:  bs.solve,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, typ := range []int{0, 1} { // different types → different state keys, no coalescing
		wg.Add(1)
		go func(typ int) {
			defer wg.Done()
			_, err := e.Process(Alert{Type: typ})
			errs <- err
		}(typ)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-bs.entered:
		case <-time.After(5 * time.Second):
			t.Fatal("second solve never started: Process calls are serialized")
		}
	}
	close(bs.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestProcessCoalescesIdenticalStates: a follower that arrives while an
// identical state (same type, same quantized budget and rates) is being
// solved waits for the leader's solve instead of running its own.
func TestProcessCoalescesIdenticalStates(t *testing.T) {
	bs := newGatedSolver()
	e, err := NewEngine(Config{
		Instance:  multiInstance(t),
		Budget:    1e6,
		Estimator: constEstimator(196, 29, 140, 10, 25, 15, 43),
		Policy:    PolicyOSSP,
		Rand:      rand.New(rand.NewSource(42)),
		SSESolve:  bs.solve,
		// Coarse quanta: the leader's commit moves the budget within one
		// bucket, so the follower's optimistic commit needs no re-solve.
		Cache: CacheConfig{Size: 8, BudgetQuantum: 1e5, RateQuantum: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := e.Process(Alert{Type: 2})
			errs <- err
		}()
	}
	launch()
	select {
	case <-bs.entered: // leader is inside the solver
	case <-time.After(5 * time.Second):
		t.Fatal("leader never reached the solver")
	}
	launch()
	// Give the follower time to pass the cache miss and join the in-flight
	// solve. It must not enter the solver itself.
	time.Sleep(100 * time.Millisecond)
	close(bs.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := bs.calls.Load(); got != 1 {
		t.Fatalf("solver ran %d times for two identical concurrent states, want 1", got)
	}
	if ds := e.Decisions(); len(ds) != 2 {
		t.Fatalf("committed %d decisions, want 2", len(ds))
	}
}

// TestNewCycleRejectsInflightDecision: a decision whose solve spans a
// NewCycle must fail with ErrCycleRolledOver instead of charging the new
// cycle's budget for the old cycle's game.
func TestNewCycleRejectsInflightDecision(t *testing.T) {
	bs := newGatedSolver()
	e, err := NewEngine(Config{
		Instance:  multiInstance(t),
		Budget:    1e6,
		Estimator: constEstimator(196, 29, 140, 10, 25, 15, 43),
		Policy:    PolicyOSSP,
		Rand:      rand.New(rand.NewSource(42)),
		SSESolve:  bs.solve,
		Fallback:  true, // rollover must reject even when degradation is on
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := e.Process(Alert{Type: 0})
		done <- err
	}()
	select {
	case <-bs.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("solve never started")
	}
	if err := e.NewCycle(500); err != nil {
		t.Fatal(err)
	}
	close(bs.release)
	if err := <-done; !errors.Is(err, ErrCycleRolledOver) {
		t.Fatalf("got %v, want ErrCycleRolledOver", err)
	}
	if got := e.RemainingBudget(); got != 500 {
		t.Fatalf("rolled-over decision charged the new cycle: budget %g, want 500", got)
	}
	if ds := e.Decisions(); len(ds) != 0 {
		t.Fatalf("rolled-over decision was committed: %d decisions", len(ds))
	}
}

// TestProcessRetriesStaleBudget: with exact (zero) quanta, a decision whose
// snapshot went stale re-solves at the fresh budget rather than committing
// the stale solve on the first try.
func TestProcessRetriesStaleBudget(t *testing.T) {
	bs := newGatedSolver()
	e, err := NewEngine(Config{
		Instance:  multiInstance(t),
		Budget:    1e6,
		Estimator: constEstimator(196, 29, 140, 10, 25, 15, 43),
		Policy:    PolicyOSSP,
		Rand:      rand.New(rand.NewSource(42)),
		SSESolve:  bs.solve,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	for _, typ := range []int{0, 1} {
		wg.Add(1)
		go func(typ int) {
			defer wg.Done()
			_, err := e.Process(Alert{Type: typ})
			errs <- err
		}(typ)
	}
	for i := 0; i < 2; i++ {
		select {
		case <-bs.entered:
		case <-time.After(5 * time.Second):
			t.Fatal("solves did not overlap")
		}
	}
	// Both solved at budget 1e6; whichever commits second sees a stale
	// snapshot and re-solves (exact quanta make any budget movement stale).
	close(bs.release)
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := bs.calls.Load(); got < 3 {
		t.Fatalf("solver ran %d times, want ≥3 (two initial + at least one stale-commit retry)", got)
	}
	ds := e.Decisions()
	if len(ds) != 2 {
		t.Fatalf("committed %d decisions, want 2", len(ds))
	}
	if ds[1].BudgetBefore != ds[0].BudgetAfter {
		t.Fatalf("budget chain broken: %g then %g", ds[0].BudgetAfter, ds[1].BudgetBefore)
	}
}
