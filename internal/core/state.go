package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"github.com/auditgames/sag/internal/fallback"
	"github.com/auditgames/sag/internal/game"
)

// DecisionRecord is the durable form of one committed Decision: every field
// the engine needs to reconstruct its budget chain, its RNG position, and
// its cycle summary after a restart. It deliberately omits the solver
// artifacts (the full SSE result, the signaling scheme) — those are pure
// functions of the game state and are not needed to continue the cycle.
type DecisionRecord struct {
	// Seq is the decision's position in the cycle (0-based commit order).
	Seq uint64
	// Type and Time identify the alert.
	Type int
	Time time.Duration
	// Warned is the sampled signal — persisted, not re-sampled, on replay,
	// which is what makes recovery bit-identical.
	Warned     bool
	Vacuous    bool
	AppliedSAG bool
	Fallback   fallback.Level
	Theta      float64
	// AuditCharge is the signal-conditional audit probability the budget
	// was charged for; replay recharges exactly it.
	AuditCharge  float64
	BudgetBefore float64
	BudgetAfter  float64
	SSEUtility   float64
	OSSPUtility  float64
}

// JournalFunc is the engine's durability hook. When configured, it is
// invoked under the engine's budget lock immediately after each decision
// commits — so invocation order is exactly commit order, which is exactly
// budget-chain order. The hook must only enqueue (no I/O waits, no locks
// ordered before the engine's): group-commit journals buffer the record and
// return a wait. ProcessContext invokes the returned wait (if non-nil)
// after releasing the lock and before returning, so the response is not
// produced until the record is as durable as the journal's policy promises.
//
// An enqueue error is returned to the Process caller. The in-memory commit
// has already happened at that point — the engine and the journal have
// diverged — so callers should treat journal errors as fatal for the
// engine's durability and stop serving from it.
type JournalFunc func(rec DecisionRecord) (wait func() error, err error)

// record converts a committed decision to its durable form. The caller
// holds e.mu and has already appended d to e.decisions.
func (e *Engine) recordLocked(d *Decision) DecisionRecord {
	return DecisionRecord{
		Seq:          uint64(len(e.decisions) - 1),
		Type:         d.Alert.Type,
		Time:         d.Alert.Time,
		Warned:       d.Warned,
		Vacuous:      d.Vacuous,
		AppliedSAG:   d.AppliedSAG,
		Fallback:     d.Fallback,
		Theta:        d.Theta,
		AuditCharge:  d.AuditCharge,
		BudgetBefore: d.BudgetBefore,
		BudgetAfter:  d.BudgetAfter,
		SSEUtility:   d.SSEUtility,
		OSSPUtility:  d.OSSPUtility,
	}
}

// restore converts a durable record back into the engine's in-memory form.
// The solver artifacts are gone: SSE is nil and Scheme is the zero value,
// which Summary, CloseCycle, and the budget chain never consult — they need
// only the fields the record carries.
func (r DecisionRecord) restore() Decision {
	return Decision{
		Alert:        Alert{Type: r.Type, Time: r.Time},
		BudgetBefore: r.BudgetBefore,
		BudgetAfter:  r.BudgetAfter,
		Theta:        r.Theta,
		Warned:       r.Warned,
		AuditCharge:  r.AuditCharge,
		SSEUtility:   r.SSEUtility,
		OSSPUtility:  r.OSSPUtility,
		AppliedSAG:   r.AppliedSAG,
		Vacuous:      r.Vacuous,
		Fallback:     r.Fallback,
	}
}

// SSEState is the durable subset of a game.Result that the degraded
// last-good rung consults: the committed coverage vector, the attacker's
// best response, and both equilibrium utilities.
type SSEState struct {
	Coverage        []float64 `json:"coverage"`
	BestType        int       `json:"best_type"`
	DefenderUtility float64   `json:"defender_utility"`
	AttackerUtility float64   `json:"attacker_utility"`
}

// EngineState is a full point-in-time export of the engine's mutable cycle
// state — everything a fresh engine (same Config, same seed) needs to
// continue the cycle bit-identically. It is the payload of WAL snapshot
// records.
type EngineState struct {
	Budget  float64 `json:"budget"`
	Initial float64 `json:"initial"`
	Cycle   uint64  `json:"cycle"`
	// RNGDraws counts the Float64 draws consumed from the engine's RNG
	// stream; restore fast-forwards a freshly seeded RNG past them so the
	// next sampled signal lands on the same draw it would have uninterrupted.
	RNGDraws  uint64           `json:"rng_draws"`
	Decisions []DecisionRecord `json:"decisions"`
	LastRates []float64        `json:"last_rates,omitempty"`
	LastSSE   *SSEState        `json:"last_sse,omitempty"`
}

// ExportState captures the engine's mutable cycle state. It is a consistent
// snapshot: taken under the budget lock, so it never observes a half-
// committed decision. Callers must externally ensure no decision commits
// between the export and whatever journal position the snapshot is written
// at (the server drains in-flight requests first).
func (e *Engine) ExportState() EngineState {
	e.mu.Lock()
	defer e.mu.Unlock()
	st := EngineState{
		Budget:    e.budget,
		Initial:   e.initial,
		Cycle:     e.cycle,
		RNGDraws:  e.rngDraws,
		Decisions: make([]DecisionRecord, len(e.decisions)),
	}
	for i := range e.decisions {
		d := &e.decisions[i]
		st.Decisions[i] = DecisionRecord{
			Seq:          uint64(i),
			Type:         d.Alert.Type,
			Time:         d.Alert.Time,
			Warned:       d.Warned,
			Vacuous:      d.Vacuous,
			AppliedSAG:   d.AppliedSAG,
			Fallback:     d.Fallback,
			Theta:        d.Theta,
			AuditCharge:  d.AuditCharge,
			BudgetBefore: d.BudgetBefore,
			BudgetAfter:  d.BudgetAfter,
			SSEUtility:   d.SSEUtility,
			OSSPUtility:  d.OSSPUtility,
		}
	}
	if e.lastRates != nil {
		st.LastRates = append([]float64(nil), e.lastRates...)
	}
	if e.lastSSE != nil {
		st.LastSSE = &SSEState{
			Coverage:        append([]float64(nil), e.lastSSE.Coverage...),
			BestType:        e.lastSSE.BestType,
			DefenderUtility: e.lastSSE.DefenderUtility,
			AttackerUtility: e.lastSSE.AttackerUtility,
		}
	}
	return st
}

// RestoreState loads an exported state into a freshly constructed engine.
// The engine must be pristine — same Config and RNG seed as the exporter,
// no decisions processed — because restore fast-forwards the RNG stream
// from its seed position and rebuilds the budget chain from zero. Restoring
// onto a used engine is an error, not a merge.
func (e *Engine) RestoreState(st EngineState) error {
	if st.Budget < 0 || math.IsNaN(st.Budget) || math.IsInf(st.Budget, 0) {
		return fmt.Errorf("core: restoring invalid budget %g", st.Budget)
	}
	for i, r := range st.Decisions {
		if uint64(i) != r.Seq {
			return fmt.Errorf("core: restoring decision out of order: seq %d at index %d", r.Seq, i)
		}
		if r.Type < 0 || r.Type >= e.inst.NumTypes() {
			return fmt.Errorf("core: restoring decision %d: type %d out of range [0,%d)", i, r.Type, e.inst.NumTypes())
		}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(e.decisions) != 0 || e.rngDraws != 0 || e.hasPending {
		return errors.New("core: RestoreState requires a fresh engine")
	}
	e.budget = st.Budget
	e.initial = st.Initial
	e.cycle = st.Cycle
	e.decisions = make([]Decision, len(st.Decisions))
	for i, r := range st.Decisions {
		e.decisions[i] = r.restore()
	}
	if st.LastRates != nil {
		e.lastRates = append([]float64(nil), st.LastRates...)
	}
	if st.LastSSE != nil {
		e.lastSSE = &game.Result{
			Coverage:        append([]float64(nil), st.LastSSE.Coverage...),
			BestType:        st.LastSSE.BestType,
			DefenderUtility: st.LastSSE.DefenderUtility,
			AttackerUtility: st.LastSSE.AttackerUtility,
		}
	}
	// Fast-forward the RNG stream past the draws the exported run consumed,
	// so the next decision samples the draw it would have seen uninterrupted.
	if e.policy == PolicyOSSP {
		for i := uint64(0); i < st.RNGDraws; i++ {
			e.rng.Float64()
		}
	}
	e.rngDraws = st.RNGDraws
	e.met.budget.Set(e.budget)
	return nil
}

// ApplyDecision replays one journaled decision onto the engine during
// recovery: it re-applies the budget charge and the recorded signal without
// re-solving or re-sampling — the record is the committed truth. One RNG
// draw is burned (the draw the original commit consumed) so the stream
// stays aligned, and the estimator is advanced to the alert's offset so
// stateful estimators (knowledge rollback) observe the same query sequence
// as the uninterrupted run. Records must be applied in journal order.
func (e *Engine) ApplyDecision(r DecisionRecord) error {
	if r.Type < 0 || r.Type >= e.inst.NumTypes() {
		return fmt.Errorf("core: replaying decision: type %d out of range [0,%d)", r.Type, e.inst.NumTypes())
	}
	// Advance the estimator exactly as the live estimate() did. The live run
	// succeeded (a decision committed), so an error here means the estimator
	// itself lost state — surface it rather than silently diverging. The
	// degraded rungs never reached the estimator, so skip it for them.
	if r.Fallback == fallback.None {
		e.estMu.Lock()
		rates, err := e.est.FutureRates(r.Time)
		e.estMu.Unlock()
		if err != nil {
			return fmt.Errorf("core: replaying decision %d: estimator: %w", r.Seq, err)
		}
		e.mu.Lock()
		e.lastRates = append(e.lastRates[:0], rates...)
		e.mu.Unlock()
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if want := uint64(len(e.decisions)); r.Seq != want {
		return fmt.Errorf("core: replaying decision out of order: seq %d, want %d", r.Seq, want)
	}
	if e.policy == PolicyOSSP {
		// The original commit consumed one draw to sample the signal. Going
		// through peek/consume (rather than rng.Float64 directly) keeps a
		// follower or restarted engine aligned even when the live engine is
		// holding a buffered draw from a rolled-back commit.
		e.peekDrawLocked()
		e.consumeDrawLocked()
	}
	e.budget = math.Max(0, r.BudgetAfter)
	e.decisions = append(e.decisions, r.restore())
	e.met.budget.Set(e.budget)
	return nil
}

// peekDrawLocked returns the next signal-sampling value without consuming
// it: the first peek pulls from the RNG into a one-slot buffer, and repeated
// peeks return the buffered value. Caller holds e.mu.
func (e *Engine) peekDrawLocked() float64 {
	if !e.hasPending {
		e.pendingDraw = e.rng.Float64()
		e.hasPending = true
	}
	return e.pendingDraw
}

// consumeDrawLocked commits the buffered draw: the value is spent and
// rngDraws — the count snapshots export and recovery fast-forwards — moves
// past it. Caller holds e.mu and must have peeked first.
func (e *Engine) consumeDrawLocked() {
	e.hasPending = false
	e.rngDraws++
}

// RNGDraws returns how many signal-sampling draws the engine has consumed
// this process lifetime (restored draws included). Used by snapshot tests.
func (e *Engine) RNGDraws() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.rngDraws
}
