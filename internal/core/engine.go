// Package core implements the paper's primary contribution: the online
// Signaling Audit Game engine.
//
// The engine processes a stream of triggered alerts within one audit cycle.
// For each alert it runs the full SAG pipeline in real time:
//
//  1. estimate the Poisson-distributed number of future alerts per type
//     (pluggable Estimator; production code uses internal/history, which
//     also implements the paper's "knowledge rollback" trick),
//  2. solve the online SSE (LP (2), internal/game) for the remaining budget
//     to obtain the marginal audit probabilities θ,
//  3. plug θ of the alert's type into the optimal signaling program (LP (3),
//     internal/signaling) to obtain the OSSP joint warn/audit scheme,
//  4. sample the signal (warn or stay silent) and charge the remaining
//     budget with the signal-conditional audit probability × audit cost,
//
// and records everything in a Decision for downstream evaluation. A
// non-signaling mode (PolicySSE) reproduces the paper's "online SSE"
// baseline under identical budget dynamics.
package core

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/fallback"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/signaling"
)

// Alert is one triggered alert as seen by the engine: its type (index into
// the game instance) and its arrival offset within the audit cycle.
type Alert struct {
	Type int
	Time time.Duration
}

// Estimator supplies the engine's belief about future alert volumes: the
// expected number of alerts of each type arriving strictly after the given
// cycle offset. Implementations may incorporate the paper's knowledge
// rollback; the engine treats the returned rates as Poisson means (§3.1).
type Estimator interface {
	FutureRates(at time.Duration) ([]float64, error)
}

// EstimatorFunc adapts a plain function to the Estimator interface.
type EstimatorFunc func(at time.Duration) ([]float64, error)

// FutureRates implements Estimator.
func (f EstimatorFunc) FutureRates(at time.Duration) ([]float64, error) { return f(at) }

// SSESolveFunc is the signature of the online SSE solver the engine invokes
// once per decision. It exists as an injection seam: internal/faultinject
// wraps it to inject solver errors, latency, and panics, and tests can
// substitute canned results. The default is game.SolveOnlineSSECtx.
type SSESolveFunc func(ctx context.Context, inst *game.Instance, budget float64, futures []dist.Poisson) (*game.Result, error)

// Policy selects the engine's auditing policy.
type Policy int

const (
	// PolicyOSSP is the paper's contribution: optimal online signaling on
	// top of the online SSE marginals.
	PolicyOSSP Policy = iota
	// PolicySSE is the non-signaling baseline: commit to the online SSE
	// marginal audit probability for each alert.
	PolicySSE
)

// String returns a human-readable policy name.
func (p Policy) String() string {
	switch p {
	case PolicyOSSP:
		return "OSSP"
	case PolicySSE:
		return "online-SSE"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config assembles an Engine.
type Config struct {
	// Instance is the audit game (payoffs + audit costs per type).
	Instance *game.Instance
	// Budget is the total audit budget for the cycle.
	Budget float64
	// Estimator supplies future alert volumes; required.
	Estimator Estimator
	// Policy selects OSSP (default) or the SSE baseline.
	Policy Policy
	// Rand drives signal sampling. Required for PolicyOSSP so runs are
	// reproducible; the engine never falls back to global randomness.
	Rand *rand.Rand
	// UseLPSignaling forces the general LP (3) solver even when the closed
	// form applies; used by the ablation benches and as a cross-check.
	UseLPSignaling bool
	// Metrics, when non-nil, receives the engine's instrumentation:
	// per-stage solve latencies, vacuous-game and Theorem-3-fallback
	// counters, simplex effort, and the remaining-budget gauge (see the
	// Metric* constants). A nil registry disables collection with
	// near-zero overhead.
	Metrics *obs.Registry
	// MetricLabels are extra labels stamped on every engine instrument —
	// the multi-tenant server passes tenant="<id>" so each tenant's engine
	// exports its own series in the shared registry. Empty (the default)
	// keeps the unlabeled series names of a single-tenant deployment.
	MetricLabels []obs.Label
	// Cache enables the per-cycle decision cache: decide() results are
	// memoized on (alert type, quantized remaining budget, quantized
	// future-rate vector) so repeated game states skip the LP pipeline.
	// The zero value disables caching. See CacheConfig for the exactness
	// trade-off of the quanta.
	Cache CacheConfig
	// AttackerTypes, when non-empty, switches the signaling stage to the
	// Bayesian SAG: the attacker's covered/uncovered utilities are private,
	// drawn from this prior (see signaling.SolveBayesian). The Stackelberg
	// marginals θ are still computed from the instance's nominal payoffs —
	// the commitment the paper's LP (2) produces — with the Bayesian layer
	// optimizing the warn/audit split per alert against the prior.
	AttackerTypes []signaling.AttackerType
	// DecisionDeadline bounds each Process call: the context handed to the
	// estimator check, the SSE solve, and the signaling solve expires after
	// this duration. Zero means no per-decision deadline. A deadline
	// without Fallback turns slow solves into errors; with Fallback they
	// become degraded decisions.
	DecisionDeadline time.Duration
	// Fallback enables graceful degradation: when the decision pipeline
	// fails (estimator error, solver error or panic, deadline exceeded),
	// Process descends the ladder in internal/fallback — cached decision →
	// last-good θ → static conservative policy — instead of returning an
	// error. Every degraded decision is tagged with its fallback.Level and
	// counted in sag_engine_fallback_total. Alerts that are invalid per se
	// (type out of range) still error: no ladder rung can define a payoff
	// for a type the game does not have.
	Fallback bool
	// SSESolve overrides the online SSE solver (nil means
	// game.SolveOnlineSSECtx). This is the injection seam used by
	// internal/faultinject and by solver-substitution tests.
	SSESolve SSESolveFunc
	// Journal, when non-nil, receives the durable form of every committed
	// decision, invoked under the budget lock in commit order; the returned
	// wait (if any) is awaited before ProcessContext returns. See
	// JournalFunc for the contract. Nil disables journaling.
	Journal JournalFunc
}

// Decision records everything the engine did for one alert.
type Decision struct {
	Alert        Alert
	BudgetBefore float64
	BudgetAfter  float64

	// SSE is the online Stackelberg equilibrium solved at this alert.
	SSE *game.Result
	// Theta is the marginal audit probability of this alert's own type
	// under the SSE commitment (θ^t_SSE = θ^t_SAG by Theorem 1).
	Theta float64

	// Scheme is the OSSP joint distribution (zero value under PolicySSE).
	Scheme signaling.Scheme
	// Warned reports whether the sampled signal was the warning ξ1
	// (always false under PolicySSE, which never warns).
	Warned bool
	// AuditCharge is the signal-conditional audit probability charged
	// against the budget (times the type's audit cost).
	AuditCharge float64

	// SSEUtility is the auditor's expected utility for this alert without
	// signaling. It is the optimal objective of LP (2) whenever the
	// attacker participates; when the SSE coverage alone already deters the
	// attack (his best-response utility is negative) it is 0, following the
	// participation accounting of the paper's Theorem 2 proof. In the
	// paper's evaluation regime (thin coverage, attacker utility positive)
	// the two notions coincide.
	SSEUtility float64
	// OSSPUtility is the auditor's expected utility with signaling — the
	// optimal objective of LP (3) when the SAG applies to this alert, and
	// SSEUtility otherwise (the paper's multi-type comparison protocol).
	OSSPUtility float64
	// AppliedSAG reports whether this alert's type was the attacker's
	// best-response type, i.e. whether the signaling scheme was actually
	// engaged for this alert.
	AppliedSAG bool
	// Vacuous reports that no type was attackable (all estimated future
	// rates zero), making the game degenerate for this alert.
	Vacuous bool
	// Fallback records how this decision was produced: fallback.None for
	// the primary pipeline, or the ladder rung (Cache, LastGood, Static)
	// that answered after the pipeline failed. See Config.Fallback.
	Fallback fallback.Level
}

// Engine executes one audit cycle online.
//
// Concurrency contract: every exported method is safe for concurrent use,
// and — unlike earlier revisions, which held one mutex across the whole
// decision — the expensive pipeline (estimation, the SSE multiple-LP solve,
// the signaling program) runs OUTSIDE the engine's budget lock. Process is
// optimistic: it snapshots the remaining budget, solves at that snapshot
// concurrently with other decisions, and commits under the lock only if the
// budget is still in the same (cache-quantized) bucket; otherwise it
// re-solves, accepting a near-state solve after a bounded number of retries
// (the same staleness the decision cache's quantization and the last-good
// fallback rung already embrace). Identical in-flight states are coalesced
// so a burst of same-type alerts pays for one solve. A NewCycle racing a
// decision bumps the cycle epoch and the decision fails with
// ErrCycleRolledOver instead of charging the new cycle's budget.
//
// Single-threaded callers observe exactly the sequential semantics: with no
// concurrent Process call the snapshot always matches the commit state, so
// results (including the RNG stream) are bit-identical to the serialized
// engine. Decisions remain order-dependent through the remaining budget, so
// callers that need a *specific* interleaving (the simulation harness
// replaying a recorded day, for example) must still serialize externally.
// The slice returned by Decisions is owned by the engine and must not be
// read concurrently with Process/NewCycle calls.
//
// Lock hierarchy (acquire top to bottom, never upward):
//
//	mu     — budget chain: budget, initial, cycle, decisions, rng,
//	         lastSSE/lastRates, and every commit
//	cache  — the decision cache's own mutex (self-locking; reached both
//	         with and without mu held)
//	estMu  — serializes the (possibly stateful) estimator
//	flight — the in-flight solve registry (never held during a solve)
type Engine struct {
	mu       sync.Mutex
	estMu    sync.Mutex
	inst     *game.Instance
	est      Estimator
	policy   Policy
	rng      *rand.Rand
	useLP    bool
	bayes    []signaling.AttackerType
	deadline time.Duration
	degrade  bool
	sseSolve SSESolveFunc
	journal  JournalFunc
	budget   float64
	initial  float64
	cycle    uint64 // epoch, bumped by NewCycle; guarded by mu
	rngDraws uint64 // signal-sampling draws consumed; guarded by mu
	// pendingDraw buffers one value pulled from rng but not yet consumed
	// (counted in rngDraws). The commit path peeks the draw to sample the
	// signal and consumes it only once the journal record is enqueued; a
	// journal failure rolls the decision back but cannot rewind rng, so
	// the buffered value is what keeps the live stream aligned with the
	// stream a crash-recovered engine would fast-forward to. Guarded by mu.
	pendingDraw float64
	hasPending  bool
	decisions   []Decision
	cache       *decisionCache
	flight      flightGroup
	// lastSSE / lastRates feed the degraded rungs: the most recent
	// successfully solved equilibrium (for the last-good-θ rung) and the
	// most recent successful future-rate estimate (for the static rung's
	// expected-remaining-cost). Both reset on NewCycle — a new cycle's
	// budget makes the old θ stale, and degrading from genuinely no
	// information is exactly what the static rung is for.
	lastSSE   *game.Result
	lastRates []float64
	met       engineMetrics
}

// ErrCycleRolledOver reports that NewCycle reset the engine between a
// decision's budget snapshot and its commit: the solve answered the previous
// cycle's game, so committing it would charge the new cycle's budget for an
// alert that belongs to the old one. Callers (the HTTP server) surface it as
// a conflict; the alert can be resubmitted against the new cycle.
var ErrCycleRolledOver = errors.New("core: audit cycle rolled over during decision")

// maxCommitRetries bounds how many times a decision re-solves because
// concurrent commits moved the budget out of the solved bucket. Past the
// bound the near-state solve is committed anyway (counted in
// sag_engine_stale_commits_total) so sustained contention degrades to
// bounded staleness instead of livelock.
const maxCommitRetries = 2

// NewEngine validates cfg and returns a ready Engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Instance == nil {
		return nil, errors.New("core: Config.Instance is required")
	}
	if cfg.Estimator == nil {
		return nil, errors.New("core: Config.Estimator is required")
	}
	if err := ValidateBudget(cfg.Budget); err != nil {
		return nil, err
	}
	if cfg.Policy != PolicyOSSP && cfg.Policy != PolicySSE {
		return nil, fmt.Errorf("core: unknown policy %d", cfg.Policy)
	}
	if cfg.Policy == PolicyOSSP && cfg.Rand == nil {
		return nil, errors.New("core: Config.Rand is required for PolicyOSSP (signal sampling)")
	}
	if err := cfg.Cache.validate(); err != nil {
		return nil, err
	}
	if cfg.DecisionDeadline < 0 {
		return nil, fmt.Errorf("core: negative decision deadline %v", cfg.DecisionDeadline)
	}
	solve := cfg.SSESolve
	if solve == nil {
		solve = game.SolveOnlineSSECtx
	}
	e := &Engine{
		inst:     cfg.Instance,
		est:      cfg.Estimator,
		policy:   cfg.Policy,
		rng:      cfg.Rand,
		useLP:    cfg.UseLPSignaling,
		bayes:    append([]signaling.AttackerType(nil), cfg.AttackerTypes...),
		deadline: cfg.DecisionDeadline,
		degrade:  cfg.Fallback,
		sseSolve: solve,
		journal:  cfg.Journal,
		budget:   cfg.Budget,
		initial:  cfg.Budget,
		met:      newEngineMetrics(cfg.Metrics, cfg.Policy, cfg.MetricLabels...),
	}
	if cfg.Cache.Size > 0 {
		e.cache = newDecisionCache(cfg.Cache)
	}
	e.met.budget.Set(e.budget)
	return e, nil
}

// RemainingBudget returns the budget left for the rest of the cycle.
func (e *Engine) RemainingBudget() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.budget
}

// ValidateBudget reports whether b is usable as a cycle budget — the exact
// precondition NewCycle (and NewEngine) enforce. Callers that must know a
// later NewCycle cannot fail (the server journals the cycle-open record
// before rolling the engine over) validate with this first.
func ValidateBudget(b float64) error {
	if b < 0 || math.IsNaN(b) || math.IsInf(b, 0) {
		return fmt.Errorf("core: invalid budget %g", b)
	}
	return nil
}

// NewCycle resets the engine for the next audit cycle: the budget is
// restored to the given value, recorded decisions are cleared, and any
// rollback state in the estimator is reset (when the estimator exposes a
// Reset method). The game instance, estimator, policy, and RNG stream are
// kept, so one Engine can process a whole sequence of audit days.
func (e *Engine) NewCycle(budget float64) error {
	if err := ValidateBudget(budget); err != nil {
		return err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.cycle++ // invalidate in-flight decisions: they solved the old cycle's game
	e.budget = budget
	e.initial = budget
	e.decisions = e.decisions[:0]
	e.lastSSE = nil
	e.lastRates = nil
	if e.cache != nil {
		e.cache.clear()
		e.met.cacheEntries.Set(0)
	}
	e.met.budget.Set(budget)
	if r, ok := e.est.(interface{ Reset() }); ok {
		r.Reset()
	}
	return nil
}

// InitialBudget returns the budget the cycle started with.
func (e *Engine) InitialBudget() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.initial
}

// Decisions returns the decisions recorded so far, in arrival order. The
// returned slice is owned by the engine; callers must not mutate it, and
// must not read it concurrently with Process or NewCycle calls.
func (e *Engine) Decisions() []Decision {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.decisions
}

// Process handles one arriving alert: solves the games, samples the signal
// (under PolicyOSSP), charges the budget, and appends + returns the
// Decision. It is Process(context.Background(), ·); see ProcessContext.
func (e *Engine) Process(a Alert) (*Decision, error) {
	return e.ProcessContext(context.Background(), a)
}

// ProcessContext is Process bounded by ctx plus the engine's configured
// DecisionDeadline (whichever expires first). When graceful degradation is
// enabled (Config.Fallback), any pipeline failure — estimator error, solver
// error or panic, expired deadline — is converted into a degraded decision
// via the internal/fallback ladder, so the only errors ProcessContext can
// return are structurally invalid alerts (type out of range) and
// ErrCycleRolledOver (a NewCycle raced the decision). Without Fallback,
// pipeline errors propagate exactly as before.
//
// Budget accounting is identical on every path: the budget is charged
// exactly once, at commit, from the decision's signal-conditional audit
// probability — a degraded decision can never double-charge.
//
// The solve runs outside e.mu (see the Engine doc comment for the
// optimistic snapshot/commit protocol); only the commit — signal sampling,
// budget charge, decision append — is serialized.
func (e *Engine) ProcessContext(ctx context.Context, a Alert) (*Decision, error) {
	var t0 time.Time
	if e.met.enabled {
		t0 = time.Now()
	}
	if a.Type < 0 || a.Type >= e.inst.NumTypes() {
		return nil, fmt.Errorf("core: alert type %d out of range [0,%d)", a.Type, e.inst.NumTypes())
	}
	if e.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.deadline)
		defer cancel()
	}
	for attempt := 0; ; attempt++ {
		e.mu.Lock()
		budget, cycle := e.budget, e.cycle
		e.mu.Unlock()

		d, err := fallback.Attempt(func() (*Decision, error) { return e.decideAt(ctx, a, budget) })

		e.mu.Lock()
		if e.cycle != cycle {
			// NewCycle reset the engine while we were solving: the decision
			// answers the previous cycle's game and must not charge this one.
			e.mu.Unlock()
			return nil, fmt.Errorf("%w (alert type %d)", ErrCycleRolledOver, a.Type)
		}
		if err != nil {
			if !e.degrade {
				e.mu.Unlock()
				return nil, err
			}
			if errors.Is(err, context.DeadlineExceeded) {
				e.met.deadlineExceeded.Inc()
			}
			d = e.degraded(a)
			e.met.fallbackCounter(d.Fallback).Inc()
		} else if !e.sameBudgetBucket(budget) {
			// Concurrent commits moved the budget out of the snapshot's
			// bucket, so the solve answers a state the engine has left.
			// Re-solve at the fresh budget a bounded number of times, then
			// accept the near-state solve — the same staleness the cache's
			// quantization and the last-good rung already embrace.
			if attempt < maxCommitRetries {
				e.mu.Unlock()
				e.met.commitRetries.Inc()
				continue
			}
			e.met.staleCommits.Inc()
		}
		// Commit: sample the signal and charge the budget. The signal draw
		// is peeked, not consumed — if journaling fails below, the decision
		// rolls back and the buffered draw is re-used by the next commit,
		// exactly as a crash-recovered engine would sample it.
		d.BudgetBefore = e.budget
		V := e.inst.AuditCosts[a.Type]
		switch e.policy {
		case PolicyOSSP:
			warnProb := d.Scheme.WarnProbability()
			d.Warned = e.peekDrawLocked() < warnProb
			if d.Warned {
				d.AuditCharge = d.Scheme.AuditGivenWarn()
			} else {
				d.AuditCharge = d.Scheme.AuditGivenSilent()
			}
		case PolicySSE:
			d.AuditCharge = d.Theta
		}
		d.BudgetAfter = math.Max(0, e.budget-d.AuditCharge*V)
		e.budget = d.BudgetAfter
		e.decisions = append(e.decisions, *d)
		// Enqueue the journal record while still holding mu, so journal
		// order is commit order; the group-commit wait runs after unlock.
		var wait func() error
		var journalErr error
		if e.journal != nil {
			wait, journalErr = e.journal(e.recordLocked(d))
		}
		if journalErr != nil {
			// The record never entered the journal, so recovery will never
			// replay it: un-commit. The request is not acknowledged, the
			// budget chain and decision list match what is durable, and the
			// peeked draw stays buffered for the next commit.
			e.decisions = e.decisions[:len(e.decisions)-1]
			e.budget = d.BudgetBefore
			e.met.journalRollbacks.Inc()
			e.met.budget.Set(e.budget)
			e.mu.Unlock()
			return nil, fmt.Errorf("core: journaling decision: %w", journalErr)
		}
		if e.policy == PolicyOSSP {
			e.consumeDrawLocked()
		}
		if e.met.enabled {
			e.met.decision.ObserveSince(t0)
			e.met.decisions.Inc()
			e.met.budget.Set(e.budget)
		}
		e.mu.Unlock()
		if wait != nil {
			if err := wait(); err != nil {
				return nil, fmt.Errorf("core: journal fsync: %w", err)
			}
		}
		return d, nil
	}
}

// sameBudgetBucket reports whether the current budget still falls in the
// same quantization bucket as the snapshot a solve ran at. The bucket width
// is the decision cache's budget quantum — the identity the cache and the
// single-flight group already use — or exact bit equality when caching is
// disabled. The caller holds e.mu.
func (e *Engine) sameBudgetBucket(snapshot float64) bool {
	q := 0.0
	if e.cache != nil {
		q = e.cache.cfg.BudgetQuantum
	}
	return quantize(e.budget, q) == quantize(snapshot, q)
}

// Preview computes the decision the engine would take for a hypothetical
// alert without sampling a signal or mutating the budget chain. Used by the
// adaptive-attacker example and by tests. Preview never degrades and
// applies no deadline: it reports what the primary pipeline would do.
func (e *Engine) Preview(a Alert) (*Decision, error) {
	if a.Type < 0 || a.Type >= e.inst.NumTypes() {
		return nil, fmt.Errorf("core: alert type %d out of range [0,%d)", a.Type, e.inst.NumTypes())
	}
	e.mu.Lock()
	budget := e.budget
	e.mu.Unlock()
	return e.decideAt(context.Background(), a, budget)
}

// decideAt runs the decision pipeline for a at the given budget snapshot,
// holding no engine-wide lock: estimate, cache lookup, then the solve —
// coalesced with any identical in-flight solve. The caller has validated
// a.Type and commits (or discards) the result.
func (e *Engine) decideAt(ctx context.Context, a Alert, budget float64) (*Decision, error) {
	rates, futures, err := e.estimate(a.Time)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("core: decision deadline: %w", err)
	}

	// The whole remaining pipeline is a pure function of (type, budget,
	// rates) — alert time enters only through the rates — so a cached
	// decision at the same (quantized) state stands in for a fresh solve,
	// and an identical state already being solved is worth waiting for
	// instead of solving again.
	var budgetQ, rateQ float64
	if e.cache != nil {
		budgetQ, rateQ = e.cache.cfg.BudgetQuantum, e.cache.cfg.RateQuantum
	}
	key := stateKey(a.Type, budget, rates, budgetQ, rateQ)
	if e.cache != nil {
		if hit, ok := e.cache.get(key); ok {
			e.met.cacheHits.Inc()
			hit.Alert = a
			hit.BudgetBefore = budget
			hit.BudgetAfter = budget
			return &hit, nil
		}
		e.met.cacheMisses.Inc()
	}

	d, shared, err := e.flight.do(ctx, key, func() (*Decision, error) {
		return e.solveAt(ctx, a, budget, futures)
	})
	if err != nil {
		return nil, err
	}
	if shared {
		// Another caller's solve answered this state. The scheme transfers
		// — same type, same quantization bucket — but the alert identity is
		// this caller's own, and each caller samples its own signal at
		// commit.
		e.met.coalescedSolves.Inc()
		d.Alert = a
		d.BudgetBefore = budget
		d.BudgetAfter = budget
		return &d, nil
	}
	e.memoize(key, &d)
	return &d, nil
}

// estimate queries the estimator for the expected future alert volumes at
// the given cycle offset and validates them into Poisson futures.
// Estimators may be stateful (the paper's knowledge rollback), so calls
// serialize on their own mutex — estimation is microseconds, and keeping it
// off the budget lock lets it overlap with commits and solves.
func (e *Engine) estimate(at time.Duration) ([]float64, []dist.Poisson, error) {
	var t0 time.Time
	if e.met.enabled {
		t0 = time.Now()
	}
	e.estMu.Lock()
	rates, err := e.est.FutureRates(at)
	e.estMu.Unlock()
	if err != nil {
		return nil, nil, fmt.Errorf("core: estimating future alerts: %w", err)
	}
	if len(rates) != e.inst.NumTypes() {
		return nil, nil, fmt.Errorf("core: estimator returned %d rates for %d types", len(rates), e.inst.NumTypes())
	}
	futures := make([]dist.Poisson, len(rates))
	for i, r := range rates {
		p, err := dist.NewPoisson(r)
		if err != nil {
			return nil, nil, fmt.Errorf("core: type %d: %w", i, err)
		}
		futures[i] = p
	}
	e.mu.Lock()
	e.lastRates = append(e.lastRates[:0], rates...)
	e.mu.Unlock()
	if e.met.enabled {
		e.met.stageEstimate.ObserveSince(t0)
	}
	return rates, futures, nil
}

// solveAt runs the SSE + OSSP pipeline for one alert at the given budget
// snapshot, producing a pre-commit decision. It holds no engine-wide lock:
// the solve is a pure function of (type, budget, futures), and the shared
// last-good state is updated under short critical sections.
func (e *Engine) solveAt(ctx context.Context, a Alert, budget float64, futures []dist.Poisson) (*Decision, error) {
	e.met.inflightSolves.Add(1)
	defer e.met.inflightSolves.Add(-1)
	var t0 time.Time
	if e.met.enabled {
		t0 = time.Now()
	}
	sse, err := e.sseSolve(ctx, e.inst, budget, futures)
	if err != nil {
		return nil, fmt.Errorf("core: online SSE: %w", err)
	}
	e.mu.Lock()
	e.lastSSE = sse
	e.mu.Unlock()
	if e.met.enabled {
		e.met.stageSSE.ObserveSince(t0)
		e.met.recordSSE(sse.Stats)
	}

	d := &Decision{
		Alert:        a,
		BudgetBefore: budget,
		BudgetAfter:  budget,
		SSE:          sse,
	}
	if sse.BestType == -1 {
		// Degenerate game: nothing is attackable. Utilities are zero and no
		// budget should be spent.
		d.Vacuous = true
		e.met.vacuous.Inc()
		return d, nil
	}
	d.Theta = sse.Coverage[a.Type]
	d.SSEUtility = participationAwareUtility(sse)
	d.AppliedSAG = a.Type == sse.BestType

	if e.policy == PolicySSE {
		d.OSSPUtility = d.SSEUtility
		return d, nil
	}

	if e.met.enabled {
		t0 = time.Now()
	}
	scheme, err := e.signalScheme(ctx, a.Type, d.Theta)
	if err != nil {
		return nil, err
	}
	if e.met.enabled {
		e.met.stageSignal.ObserveSince(t0)
	}
	d.Scheme = scheme
	if d.AppliedSAG {
		d.OSSPUtility = scheme.DefenderUtility
	} else {
		// The paper's multi-type protocol: the SAG engages only alerts of
		// the attacker's best-response type; others are handled (and
		// scored) by the online SSE.
		d.OSSPUtility = d.SSEUtility
	}
	return d, nil
}

// signalScheme runs the OSSP signaling stage for one alert type and marginal
// audit probability θ: the Bayesian program when attacker types are private,
// LP (3) when forced or when Theorem 3's preconditions fail, and the closed
// form otherwise.
func (e *Engine) signalScheme(ctx context.Context, typ int, theta float64) (signaling.Scheme, error) {
	pf := e.inst.Payoffs[typ]
	var scheme signaling.Scheme
	var err error
	switch {
	case len(e.bayes) > 0:
		b, berr := signaling.SolveBayesian(signaling.DefenderSide{
			Covered:   pf.DefenderCovered,
			Uncovered: pf.DefenderUncovered,
		}, e.bayes, theta)
		if berr != nil {
			return signaling.Scheme{}, fmt.Errorf("core: Bayesian OSSP: %w", berr)
		}
		scheme = bayesianToScheme(b, e.bayes)
	case e.useLP || !pf.SatisfiesTheorem3():
		if !pf.SatisfiesTheorem3() {
			e.met.fallback.Inc()
		}
		scheme, err = signaling.SolveLPCtx(ctx, pf, theta)
	default:
		scheme, err = signaling.Solve(pf, theta)
	}
	if err != nil {
		return signaling.Scheme{}, fmt.Errorf("core: OSSP: %w", err)
	}
	return scheme, nil
}

// degraded produces a decision for a after the primary pipeline failed,
// descending the fallback ladder. The final rung is infallible, so degraded
// always returns a usable decision. The caller holds e.mu.
//
// Degraded rungs deliberately run without the (already expired) decision
// deadline: the cache rung is a map lookup and the last-good / static rungs
// at most re-solve one small signaling LP, so they complete in microseconds.
func (e *Engine) degraded(a Alert) *Decision {
	d, lvl, err := fallback.Run(
		fallback.Step[*Decision]{Level: fallback.Cache, Try: func() (*Decision, error) {
			return e.cachedForType(a)
		}},
		fallback.Step[*Decision]{Level: fallback.LastGood, Try: func() (*Decision, error) {
			return e.lastGoodDecision(a)
		}},
		fallback.Step[*Decision]{Level: fallback.Static, Try: func() (*Decision, error) {
			return e.staticDecision(a), nil
		}},
	)
	if err != nil {
		// Unreachable: the static rung cannot fail. Guard anyway so a future
		// refactor cannot turn a degraded decision into a nil dereference.
		d, lvl = e.staticDecision(a), fallback.Static
	}
	d.Fallback = lvl
	return d
}

// cachedForType is the first degraded rung: reuse the most recently cached
// decision for the alert's type, even though the budget or rates may have
// drifted from the cached key. The scheme is near-optimal for a nearby game
// state, which beats the static policy's type-blind coverage.
func (e *Engine) cachedForType(a Alert) (*Decision, error) {
	if e.cache == nil {
		return nil, errors.New("core: decision cache disabled")
	}
	hit, ok := e.cache.latestForType(a.Type)
	if !ok {
		return nil, fmt.Errorf("core: no cached decision for type %d", a.Type)
	}
	hit.Alert = a
	hit.BudgetBefore = e.budget
	hit.BudgetAfter = e.budget
	return &hit, nil
}

// lastGoodDecision is the second degraded rung: reuse the θ vector of the
// most recent successfully solved online SSE and re-run only the (cheap)
// signaling stage for the current alert's type. The equilibrium is stale —
// it was solved for an earlier budget — but its coverage remains a feasible
// commitment, and by Theorem 2 signaling on top of it never hurts.
func (e *Engine) lastGoodDecision(a Alert) (*Decision, error) {
	sse := e.lastSSE
	if sse == nil {
		return nil, errors.New("core: no previously solved equilibrium this cycle")
	}
	d := &Decision{
		Alert:        a,
		BudgetBefore: e.budget,
		BudgetAfter:  e.budget,
		SSE:          sse,
	}
	if sse.BestType == -1 {
		d.Vacuous = true
		return d, nil
	}
	d.Theta = sse.Coverage[a.Type]
	d.SSEUtility = participationAwareUtility(sse)
	d.AppliedSAG = a.Type == sse.BestType
	if e.policy == PolicySSE {
		d.OSSPUtility = d.SSEUtility
		return d, nil
	}
	scheme, err := e.signalScheme(context.Background(), a.Type, d.Theta)
	if err != nil {
		return nil, err
	}
	d.Scheme = scheme
	if d.AppliedSAG {
		d.OSSPUtility = scheme.DefenderUtility
	} else {
		d.OSSPUtility = d.SSEUtility
	}
	return d, nil
}

// staticDecision is the terminal, infallible rung: audit with probability
// remaining-budget / expected-remaining-audit-cost (clamped to [0,1]) and
// never warn. Never warning is safe — Theorem 2 says the optimal signaling
// scheme only improves on not signaling, so its absence degrades utility,
// never feasibility — and the ratio policy spreads the remaining budget
// uniformly over the expected remaining workload so the engine cannot
// overcommit while degraded.
func (e *Engine) staticDecision(a Alert) *Decision {
	expCost := 0.0
	if len(e.lastRates) == e.inst.NumTypes() {
		for i, r := range e.lastRates {
			expCost += r * e.inst.AuditCosts[i]
		}
	} else {
		// No successful estimate yet this cycle: budget for this alert alone.
		expCost = e.inst.AuditCosts[a.Type]
	}
	p := fallback.StaticAuditProbability(e.budget, expCost)
	pf := e.inst.Payoffs[a.Type]
	util := p*pf.DefenderCovered + (1-p)*pf.DefenderUncovered
	d := &Decision{
		Alert:        a,
		BudgetBefore: e.budget,
		BudgetAfter:  e.budget,
		Theta:        p,
		SSEUtility:   util,
		OSSPUtility:  util,
		// Never warn: all probability mass on the silent signal, split
		// between audit (P0) and no-audit (Q0) by the static coverage.
		Scheme: signaling.Scheme{
			P0:              p,
			Q0:              1 - p,
			DefenderUtility: util,
			AttackerUtility: p*pf.AttackerCovered + (1-p)*pf.AttackerUncovered,
		},
	}
	return d
}

// memoize stores a value copy of d under key. The copy is taken before
// Process commits the sampled fields (Warned, AuditCharge, BudgetAfter), so
// a later hit re-samples the signal against the same Scheme instead of
// replaying one draw. The *game.Result pointer is shared between the cached
// copy and live decisions; it is treated as immutable everywhere.
func (e *Engine) memoize(key string, d *Decision) {
	if e.cache == nil {
		return
	}
	if e.cache.put(key, *d) {
		e.met.cacheEvictions.Inc()
	}
	e.met.cacheEntries.Set(float64(e.cache.len()))
}

// SetCacheCapacity rebalances the decision cache's entry limit, evicting
// least-recently-used entries down to the new limit. It is a no-op when
// caching is disabled and returns the number of entries evicted. The
// multi-tenant shard router calls this as tenants come and go so the total
// cached-decision footprint across all tenant engines stays bounded by one
// box-wide budget.
func (e *Engine) SetCacheCapacity(n int) int {
	if e.cache == nil {
		return 0
	}
	evicted := e.cache.setCapacity(n)
	if evicted > 0 && e.met.enabled {
		e.met.cacheEvictions.Add(uint64(evicted))
		e.met.cacheEntries.Set(float64(e.cache.len()))
	}
	return evicted
}

// CacheStats returns a snapshot of the decision cache's counters; the zero
// value when caching is disabled.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// bayesianToScheme reduces a BayesianScheme to the engine's Scheme record:
// the joint distribution carries over; the attacker utility is the
// prior-weighted mean; Deterred means every type stays out.
func bayesianToScheme(b signaling.BayesianScheme, types []signaling.AttackerType) signaling.Scheme {
	s := signaling.Scheme{
		P1: b.P1, Q1: b.Q1, P0: b.P0, Q0: b.Q0,
		DefenderUtility: b.DefenderUtility,
		Deterred:        true,
	}
	for k, t := range types {
		if b.Participates[k] {
			s.Deterred = false
			s.AttackerUtility += t.Prior * b.TypeUtilities[k]
		}
	}
	return s
}

// participationAwareUtility converts the LP (2) objective into the
// auditor's actual expected utility, accounting for the attacker's option
// to stay out: a strictly unprofitable best response means no attack (both
// sides get 0); exact indifference breaks in the auditor's favor per the
// strong-SSE convention.
func participationAwareUtility(sse *game.Result) float64 {
	const tol = 1e-9
	switch {
	case sse.AttackerUtility < -tol:
		return 0
	case sse.AttackerUtility <= tol:
		return math.Max(0, sse.DefenderUtility)
	default:
		return sse.DefenderUtility
	}
}

// AuditOutcome is the end-of-cycle retrospective decision for one
// processed alert.
type AuditOutcome struct {
	// Index is the position of the alert in Decisions().
	Index int
	// Audited reports whether the retrospective audit actually inspects
	// this alert.
	Audited bool
	// Cost is the audit cost charged if Audited (the type's V), 0
	// otherwise.
	Cost float64
}

// CloseCycle samples the retrospective audit decisions at the end of the
// cycle: each alert is audited with its signal-conditional audit
// probability (the probability the budget was charged for in real time).
// It returns one outcome per recorded decision plus the realized total
// audit cost. The realized cost concentrates around the charged budget but
// is not capped by it — the paper's budget dynamics are in expectation;
// callers that need a hard cap can truncate the returned plan.
//
// CloseCycle does not mutate engine state and may be called repeatedly
// with different rngs to draw independent audit plans.
func (e *Engine) CloseCycle(rng *rand.Rand) ([]AuditOutcome, float64) {
	e.mu.Lock()
	defer e.mu.Unlock()
	outcomes := make([]AuditOutcome, len(e.decisions))
	total := 0.0
	for i, d := range e.decisions {
		outcomes[i] = AuditOutcome{Index: i}
		if d.Vacuous {
			continue
		}
		if rng.Float64() < d.AuditCharge {
			cost := e.inst.AuditCosts[d.Alert.Type]
			outcomes[i].Audited = true
			outcomes[i].Cost = cost
			total += cost
		}
	}
	return outcomes, total
}

// CycleSummary aggregates a finished cycle for reporting.
type CycleSummary struct {
	Alerts          int
	Warnings        int
	SAGEngaged      int     // alerts where the OSSP actually applied
	BudgetSpent     float64 // initial − remaining
	MeanSSEUtility  float64
	MeanOSSPUtility float64
	// MeanOSSPUtilty mirrors MeanOSSPUtility under the misspelled name the
	// field was first exported with, so JSON consumers keyed on the old
	// spelling keep working for one release.
	//
	// Deprecated: use MeanOSSPUtility. This alias will be removed in the
	// next release.
	MeanOSSPUtilty float64
	FinalSSE       float64 // utility at the last alert (end-of-day health)
	FinalOSSP      float64
}

// Summary aggregates the decisions recorded so far.
func (e *Engine) Summary() CycleSummary {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := CycleSummary{
		Alerts:      len(e.decisions),
		BudgetSpent: e.initial - e.budget,
	}
	if s.Alerts == 0 {
		return s
	}
	var sse, ossp dist.Running
	for _, d := range e.decisions {
		if d.Warned {
			s.Warnings++
		}
		if d.AppliedSAG {
			s.SAGEngaged++
		}
		sse.Add(d.SSEUtility)
		ossp.Add(d.OSSPUtility)
	}
	last := e.decisions[len(e.decisions)-1]
	s.MeanSSEUtility = sse.Mean()
	s.MeanOSSPUtility = ossp.Mean()
	s.MeanOSSPUtilty = s.MeanOSSPUtility // deprecated alias, kept in sync
	s.FinalSSE = last.SSEUtility
	s.FinalOSSP = last.OSSPUtility
	return s
}
