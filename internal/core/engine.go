// Package core implements the paper's primary contribution: the online
// Signaling Audit Game engine.
//
// The engine processes a stream of triggered alerts within one audit cycle.
// For each alert it runs the full SAG pipeline in real time:
//
//  1. estimate the Poisson-distributed number of future alerts per type
//     (pluggable Estimator; production code uses internal/history, which
//     also implements the paper's "knowledge rollback" trick),
//  2. solve the online SSE (LP (2), internal/game) for the remaining budget
//     to obtain the marginal audit probabilities θ,
//  3. plug θ of the alert's type into the optimal signaling program (LP (3),
//     internal/signaling) to obtain the OSSP joint warn/audit scheme,
//  4. sample the signal (warn or stay silent) and charge the remaining
//     budget with the signal-conditional audit probability × audit cost,
//
// and records everything in a Decision for downstream evaluation. A
// non-signaling mode (PolicySSE) reproduces the paper's "online SSE"
// baseline under identical budget dynamics.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"

	"github.com/auditgames/sag/internal/dist"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/signaling"
)

// Alert is one triggered alert as seen by the engine: its type (index into
// the game instance) and its arrival offset within the audit cycle.
type Alert struct {
	Type int
	Time time.Duration
}

// Estimator supplies the engine's belief about future alert volumes: the
// expected number of alerts of each type arriving strictly after the given
// cycle offset. Implementations may incorporate the paper's knowledge
// rollback; the engine treats the returned rates as Poisson means (§3.1).
type Estimator interface {
	FutureRates(at time.Duration) ([]float64, error)
}

// EstimatorFunc adapts a plain function to the Estimator interface.
type EstimatorFunc func(at time.Duration) ([]float64, error)

// FutureRates implements Estimator.
func (f EstimatorFunc) FutureRates(at time.Duration) ([]float64, error) { return f(at) }

// Policy selects the engine's auditing policy.
type Policy int

const (
	// PolicyOSSP is the paper's contribution: optimal online signaling on
	// top of the online SSE marginals.
	PolicyOSSP Policy = iota
	// PolicySSE is the non-signaling baseline: commit to the online SSE
	// marginal audit probability for each alert.
	PolicySSE
)

// String returns a human-readable policy name.
func (p Policy) String() string {
	switch p {
	case PolicyOSSP:
		return "OSSP"
	case PolicySSE:
		return "online-SSE"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config assembles an Engine.
type Config struct {
	// Instance is the audit game (payoffs + audit costs per type).
	Instance *game.Instance
	// Budget is the total audit budget for the cycle.
	Budget float64
	// Estimator supplies future alert volumes; required.
	Estimator Estimator
	// Policy selects OSSP (default) or the SSE baseline.
	Policy Policy
	// Rand drives signal sampling. Required for PolicyOSSP so runs are
	// reproducible; the engine never falls back to global randomness.
	Rand *rand.Rand
	// UseLPSignaling forces the general LP (3) solver even when the closed
	// form applies; used by the ablation benches and as a cross-check.
	UseLPSignaling bool
	// Metrics, when non-nil, receives the engine's instrumentation:
	// per-stage solve latencies, vacuous-game and Theorem-3-fallback
	// counters, simplex effort, and the remaining-budget gauge (see the
	// Metric* constants). A nil registry disables collection with
	// near-zero overhead.
	Metrics *obs.Registry
	// Cache enables the per-cycle decision cache: decide() results are
	// memoized on (alert type, quantized remaining budget, quantized
	// future-rate vector) so repeated game states skip the LP pipeline.
	// The zero value disables caching. See CacheConfig for the exactness
	// trade-off of the quanta.
	Cache CacheConfig
	// AttackerTypes, when non-empty, switches the signaling stage to the
	// Bayesian SAG: the attacker's covered/uncovered utilities are private,
	// drawn from this prior (see signaling.SolveBayesian). The Stackelberg
	// marginals θ are still computed from the instance's nominal payoffs —
	// the commitment the paper's LP (2) produces — with the Bayesian layer
	// optimizing the warn/audit split per alert against the prior.
	AttackerTypes []signaling.AttackerType
}

// Decision records everything the engine did for one alert.
type Decision struct {
	Alert        Alert
	BudgetBefore float64
	BudgetAfter  float64

	// SSE is the online Stackelberg equilibrium solved at this alert.
	SSE *game.Result
	// Theta is the marginal audit probability of this alert's own type
	// under the SSE commitment (θ^t_SSE = θ^t_SAG by Theorem 1).
	Theta float64

	// Scheme is the OSSP joint distribution (zero value under PolicySSE).
	Scheme signaling.Scheme
	// Warned reports whether the sampled signal was the warning ξ1
	// (always false under PolicySSE, which never warns).
	Warned bool
	// AuditCharge is the signal-conditional audit probability charged
	// against the budget (times the type's audit cost).
	AuditCharge float64

	// SSEUtility is the auditor's expected utility for this alert without
	// signaling. It is the optimal objective of LP (2) whenever the
	// attacker participates; when the SSE coverage alone already deters the
	// attack (his best-response utility is negative) it is 0, following the
	// participation accounting of the paper's Theorem 2 proof. In the
	// paper's evaluation regime (thin coverage, attacker utility positive)
	// the two notions coincide.
	SSEUtility float64
	// OSSPUtility is the auditor's expected utility with signaling — the
	// optimal objective of LP (3) when the SAG applies to this alert, and
	// SSEUtility otherwise (the paper's multi-type comparison protocol).
	OSSPUtility float64
	// AppliedSAG reports whether this alert's type was the attacker's
	// best-response type, i.e. whether the signaling scheme was actually
	// engaged for this alert.
	AppliedSAG bool
	// Vacuous reports that no type was attackable (all estimated future
	// rates zero), making the game degenerate for this alert.
	Vacuous bool
}

// Engine executes one audit cycle online. It is not safe for concurrent
// use; run one Engine per goroutine.
type Engine struct {
	inst      *game.Instance
	est       Estimator
	policy    Policy
	rng       *rand.Rand
	useLP     bool
	bayes     []signaling.AttackerType
	budget    float64
	initial   float64
	decisions []Decision
	cache     *decisionCache
	met       engineMetrics
}

// NewEngine validates cfg and returns a ready Engine.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Instance == nil {
		return nil, errors.New("core: Config.Instance is required")
	}
	if cfg.Estimator == nil {
		return nil, errors.New("core: Config.Estimator is required")
	}
	if cfg.Budget < 0 || math.IsNaN(cfg.Budget) || math.IsInf(cfg.Budget, 0) {
		return nil, fmt.Errorf("core: invalid budget %g", cfg.Budget)
	}
	if cfg.Policy != PolicyOSSP && cfg.Policy != PolicySSE {
		return nil, fmt.Errorf("core: unknown policy %d", cfg.Policy)
	}
	if cfg.Policy == PolicyOSSP && cfg.Rand == nil {
		return nil, errors.New("core: Config.Rand is required for PolicyOSSP (signal sampling)")
	}
	if err := cfg.Cache.validate(); err != nil {
		return nil, err
	}
	e := &Engine{
		inst:    cfg.Instance,
		est:     cfg.Estimator,
		policy:  cfg.Policy,
		rng:     cfg.Rand,
		useLP:   cfg.UseLPSignaling,
		bayes:   append([]signaling.AttackerType(nil), cfg.AttackerTypes...),
		budget:  cfg.Budget,
		initial: cfg.Budget,
		met:     newEngineMetrics(cfg.Metrics, cfg.Policy),
	}
	if cfg.Cache.Size > 0 {
		e.cache = newDecisionCache(cfg.Cache)
	}
	e.met.budget.Set(e.budget)
	return e, nil
}

// RemainingBudget returns the budget left for the rest of the cycle.
func (e *Engine) RemainingBudget() float64 { return e.budget }

// NewCycle resets the engine for the next audit cycle: the budget is
// restored to the given value, recorded decisions are cleared, and any
// rollback state in the estimator is reset (when the estimator exposes a
// Reset method). The game instance, estimator, policy, and RNG stream are
// kept, so one Engine can process a whole sequence of audit days.
func (e *Engine) NewCycle(budget float64) error {
	if budget < 0 || math.IsNaN(budget) || math.IsInf(budget, 0) {
		return fmt.Errorf("core: invalid budget %g", budget)
	}
	e.budget = budget
	e.initial = budget
	e.decisions = e.decisions[:0]
	if e.cache != nil {
		e.cache.clear()
		e.met.cacheEntries.Set(0)
	}
	e.met.budget.Set(budget)
	if r, ok := e.est.(interface{ Reset() }); ok {
		r.Reset()
	}
	return nil
}

// InitialBudget returns the budget the cycle started with.
func (e *Engine) InitialBudget() float64 { return e.initial }

// Decisions returns the decisions recorded so far, in arrival order. The
// returned slice is owned by the engine; callers must not mutate it.
func (e *Engine) Decisions() []Decision { return e.decisions }

// Process handles one arriving alert: solves the games, samples the signal
// (under PolicyOSSP), charges the budget, and appends + returns the
// Decision.
func (e *Engine) Process(a Alert) (*Decision, error) {
	var t0 time.Time
	if e.met.enabled {
		t0 = time.Now()
	}
	d, err := e.decide(a)
	if err != nil {
		return nil, err
	}
	// Commit: sample the signal and charge the budget.
	V := e.inst.AuditCosts[a.Type]
	switch e.policy {
	case PolicyOSSP:
		warnProb := d.Scheme.WarnProbability()
		d.Warned = e.rng.Float64() < warnProb
		if d.Warned {
			d.AuditCharge = d.Scheme.AuditGivenWarn()
		} else {
			d.AuditCharge = d.Scheme.AuditGivenSilent()
		}
	case PolicySSE:
		d.AuditCharge = d.Theta
	}
	d.BudgetAfter = math.Max(0, e.budget-d.AuditCharge*V)
	e.budget = d.BudgetAfter
	e.decisions = append(e.decisions, *d)
	if e.met.enabled {
		e.met.decision.ObserveSince(t0)
		e.met.decisions.Inc()
		e.met.budget.Set(e.budget)
	}
	return &e.decisions[len(e.decisions)-1], nil
}

// Preview computes the decision the engine would take for a hypothetical
// alert without sampling a signal or mutating any state. Used by the
// adaptive-attacker example and by tests.
func (e *Engine) Preview(a Alert) (*Decision, error) {
	return e.decide(a)
}

// decide runs the SSE + OSSP pipeline without committing state.
func (e *Engine) decide(a Alert) (*Decision, error) {
	if a.Type < 0 || a.Type >= e.inst.NumTypes() {
		return nil, fmt.Errorf("core: alert type %d out of range [0,%d)", a.Type, e.inst.NumTypes())
	}
	var t0 time.Time
	if e.met.enabled {
		t0 = time.Now()
	}
	rates, err := e.est.FutureRates(a.Time)
	if err != nil {
		return nil, fmt.Errorf("core: estimating future alerts: %w", err)
	}
	if len(rates) != e.inst.NumTypes() {
		return nil, fmt.Errorf("core: estimator returned %d rates for %d types", len(rates), e.inst.NumTypes())
	}
	futures := make([]dist.Poisson, len(rates))
	for i, r := range rates {
		p, err := dist.NewPoisson(r)
		if err != nil {
			return nil, fmt.Errorf("core: type %d: %w", i, err)
		}
		futures[i] = p
	}
	if e.met.enabled {
		e.met.stageEstimate.ObserveSince(t0)
		t0 = time.Now()
	}

	// The whole remaining pipeline is a pure function of (type, budget,
	// rates) — alert time enters only through the rates — so a cached
	// decision at the same (quantized) state stands in for a fresh solve.
	var cacheKey string
	if e.cache != nil {
		cacheKey = e.cache.key(a.Type, e.budget, rates)
		if hit, ok := e.cache.get(cacheKey); ok {
			e.met.cacheHits.Inc()
			hit.Alert = a
			hit.BudgetBefore = e.budget
			hit.BudgetAfter = e.budget
			return &hit, nil
		}
		e.met.cacheMisses.Inc()
	}

	sse, err := game.SolveOnlineSSE(e.inst, e.budget, futures)
	if err != nil {
		return nil, fmt.Errorf("core: online SSE: %w", err)
	}
	if e.met.enabled {
		e.met.stageSSE.ObserveSince(t0)
		e.met.recordSSE(sse.Stats)
	}

	d := &Decision{
		Alert:        a,
		BudgetBefore: e.budget,
		BudgetAfter:  e.budget,
		SSE:          sse,
	}
	if sse.BestType == -1 {
		// Degenerate game: nothing is attackable. Utilities are zero and no
		// budget should be spent.
		d.Vacuous = true
		e.met.vacuous.Inc()
		e.memoize(cacheKey, d)
		return d, nil
	}
	d.Theta = sse.Coverage[a.Type]
	d.SSEUtility = participationAwareUtility(sse)
	d.AppliedSAG = a.Type == sse.BestType

	if e.policy == PolicySSE {
		d.OSSPUtility = d.SSEUtility
		e.memoize(cacheKey, d)
		return d, nil
	}

	if e.met.enabled {
		t0 = time.Now()
	}
	pf := e.inst.Payoffs[a.Type]
	var scheme signaling.Scheme
	switch {
	case len(e.bayes) > 0:
		b, berr := signaling.SolveBayesian(signaling.DefenderSide{
			Covered:   pf.DefenderCovered,
			Uncovered: pf.DefenderUncovered,
		}, e.bayes, d.Theta)
		if berr != nil {
			return nil, fmt.Errorf("core: Bayesian OSSP: %w", berr)
		}
		scheme = bayesianToScheme(b, e.bayes)
	case e.useLP || !pf.SatisfiesTheorem3():
		if !pf.SatisfiesTheorem3() {
			e.met.fallback.Inc()
		}
		scheme, err = signaling.SolveLP(pf, d.Theta)
	default:
		scheme, err = signaling.Solve(pf, d.Theta)
	}
	if err != nil {
		return nil, fmt.Errorf("core: OSSP: %w", err)
	}
	if e.met.enabled {
		e.met.stageSignal.ObserveSince(t0)
	}
	d.Scheme = scheme
	if d.AppliedSAG {
		d.OSSPUtility = scheme.DefenderUtility
	} else {
		// The paper's multi-type protocol: the SAG engages only alerts of
		// the attacker's best-response type; others are handled (and
		// scored) by the online SSE.
		d.OSSPUtility = d.SSEUtility
	}
	e.memoize(cacheKey, d)
	return d, nil
}

// memoize stores a value copy of d under key. The copy is taken before
// Process commits the sampled fields (Warned, AuditCharge, BudgetAfter), so
// a later hit re-samples the signal against the same Scheme instead of
// replaying one draw. The *game.Result pointer is shared between the cached
// copy and live decisions; it is treated as immutable everywhere.
func (e *Engine) memoize(key string, d *Decision) {
	if e.cache == nil {
		return
	}
	if e.cache.put(key, *d) {
		e.met.cacheEvictions.Inc()
	}
	e.met.cacheEntries.Set(float64(e.cache.len()))
}

// CacheStats returns a snapshot of the decision cache's counters; the zero
// value when caching is disabled.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	return e.cache.stats()
}

// bayesianToScheme reduces a BayesianScheme to the engine's Scheme record:
// the joint distribution carries over; the attacker utility is the
// prior-weighted mean; Deterred means every type stays out.
func bayesianToScheme(b signaling.BayesianScheme, types []signaling.AttackerType) signaling.Scheme {
	s := signaling.Scheme{
		P1: b.P1, Q1: b.Q1, P0: b.P0, Q0: b.Q0,
		DefenderUtility: b.DefenderUtility,
		Deterred:        true,
	}
	for k, t := range types {
		if b.Participates[k] {
			s.Deterred = false
			s.AttackerUtility += t.Prior * b.TypeUtilities[k]
		}
	}
	return s
}

// participationAwareUtility converts the LP (2) objective into the
// auditor's actual expected utility, accounting for the attacker's option
// to stay out: a strictly unprofitable best response means no attack (both
// sides get 0); exact indifference breaks in the auditor's favor per the
// strong-SSE convention.
func participationAwareUtility(sse *game.Result) float64 {
	const tol = 1e-9
	switch {
	case sse.AttackerUtility < -tol:
		return 0
	case sse.AttackerUtility <= tol:
		return math.Max(0, sse.DefenderUtility)
	default:
		return sse.DefenderUtility
	}
}

// AuditOutcome is the end-of-cycle retrospective decision for one
// processed alert.
type AuditOutcome struct {
	// Index is the position of the alert in Decisions().
	Index int
	// Audited reports whether the retrospective audit actually inspects
	// this alert.
	Audited bool
	// Cost is the audit cost charged if Audited (the type's V), 0
	// otherwise.
	Cost float64
}

// CloseCycle samples the retrospective audit decisions at the end of the
// cycle: each alert is audited with its signal-conditional audit
// probability (the probability the budget was charged for in real time).
// It returns one outcome per recorded decision plus the realized total
// audit cost. The realized cost concentrates around the charged budget but
// is not capped by it — the paper's budget dynamics are in expectation;
// callers that need a hard cap can truncate the returned plan.
//
// CloseCycle does not mutate engine state and may be called repeatedly
// with different rngs to draw independent audit plans.
func (e *Engine) CloseCycle(rng *rand.Rand) ([]AuditOutcome, float64) {
	outcomes := make([]AuditOutcome, len(e.decisions))
	total := 0.0
	for i, d := range e.decisions {
		outcomes[i] = AuditOutcome{Index: i}
		if d.Vacuous {
			continue
		}
		if rng.Float64() < d.AuditCharge {
			cost := e.inst.AuditCosts[d.Alert.Type]
			outcomes[i].Audited = true
			outcomes[i].Cost = cost
			total += cost
		}
	}
	return outcomes, total
}

// CycleSummary aggregates a finished cycle for reporting.
type CycleSummary struct {
	Alerts         int
	Warnings       int
	SAGEngaged     int     // alerts where the OSSP actually applied
	BudgetSpent    float64 // initial − remaining
	MeanSSEUtility float64
	MeanOSSPUtilty float64
	FinalSSE       float64 // utility at the last alert (end-of-day health)
	FinalOSSP      float64
}

// Summary aggregates the decisions recorded so far.
func (e *Engine) Summary() CycleSummary {
	s := CycleSummary{
		Alerts:      len(e.decisions),
		BudgetSpent: e.initial - e.budget,
	}
	if s.Alerts == 0 {
		return s
	}
	var sse, ossp dist.Running
	for _, d := range e.decisions {
		if d.Warned {
			s.Warnings++
		}
		if d.AppliedSAG {
			s.SAGEngaged++
		}
		sse.Add(d.SSEUtility)
		ossp.Add(d.OSSPUtility)
	}
	last := e.decisions[len(e.decisions)-1]
	s.MeanSSEUtility = sse.Mean()
	s.MeanOSSPUtilty = ossp.Mean()
	s.FinalSSE = last.SSEUtility
	s.FinalOSSP = last.OSSPUtility
	return s
}
