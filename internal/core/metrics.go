package core

import (
	"github.com/auditgames/sag/internal/fallback"
	"github.com/auditgames/sag/internal/game"
	"github.com/auditgames/sag/internal/obs"
)

// Engine metric names, exported so operators and tests share one spelling.
const (
	// MetricStageSeconds is a histogram of per-stage decision latency,
	// labeled stage=estimate|sse|signal.
	MetricStageSeconds = "sag_engine_stage_seconds"
	// MetricDecisionSeconds is a histogram of whole-decision latency
	// (all stages of one Process call).
	MetricDecisionSeconds = "sag_engine_decision_seconds"
	// MetricDecisionsTotal counts committed decisions, labeled by policy.
	MetricDecisionsTotal = "sag_engine_decisions_total"
	// MetricVacuousTotal counts decisions where no type was attackable.
	MetricVacuousTotal = "sag_engine_vacuous_total"
	// MetricTheorem3FallbackTotal counts alerts whose payoffs violated the
	// Theorem 3 condition, forcing the general LP (3) signaling solver.
	MetricTheorem3FallbackTotal = "sag_engine_theorem3_fallback_total"
	// MetricBudgetRemaining is a gauge of the cycle's remaining budget.
	MetricBudgetRemaining = "sag_engine_budget_remaining"
	// MetricLPSolvesTotal counts candidate LPs solved by the SSE stage.
	MetricLPSolvesTotal = "sag_engine_lp_solves_total"
	// MetricSimplexIterationsTotal counts simplex iterations across those
	// LPs; MetricSimplexPivotsTotal counts tableau pivots (iterations plus
	// phase-transition drive-out pivots).
	MetricSimplexIterationsTotal = "sag_engine_simplex_iterations_total"
	MetricSimplexPivotsTotal     = "sag_engine_simplex_pivots_total"
	// MetricCacheHitsTotal / MetricCacheMissesTotal count decision-cache
	// lookups that were served from / missed the cache;
	// MetricCacheEvictionsTotal counts LRU evictions at capacity.
	MetricCacheHitsTotal      = "sag_engine_cache_hits_total"
	MetricCacheMissesTotal    = "sag_engine_cache_misses_total"
	MetricCacheEvictionsTotal = "sag_engine_cache_evictions_total"
	// MetricCacheEntries is a gauge of the decision cache's current size.
	MetricCacheEntries = "sag_engine_cache_entries"
	// MetricFallbackTotal counts degraded decisions, labeled by the ladder
	// rung that produced them (level=cache|last_good|static).
	MetricFallbackTotal = "sag_engine_fallback_total"
	// MetricDeadlineExceededTotal counts decisions whose primary pipeline
	// was cut off by the per-decision deadline.
	MetricDeadlineExceededTotal = "sag_engine_deadline_exceeded_total"
	// MetricCommitRetriesTotal counts optimistic commits that re-solved
	// because concurrent decisions moved the budget out of the snapshot's
	// quantization bucket.
	MetricCommitRetriesTotal = "sag_engine_commit_retries_total"
	// MetricStaleCommitsTotal counts decisions committed from a stale
	// budget snapshot after exhausting the commit-retry bound.
	MetricStaleCommitsTotal = "sag_engine_stale_commits_total"
	// MetricCoalescedSolvesTotal counts decisions answered by another
	// caller's identical in-flight solve (single-flight coalescing).
	MetricCoalescedSolvesTotal = "sag_engine_coalesced_solves_total"
	// MetricJournalRollbacksTotal counts committed decisions that were
	// rolled back because their journal record could not be enqueued: the
	// budget charge is reversed, the decision is popped, and the sampled
	// signal draw is kept buffered so the RNG stream stays aligned with
	// what crash recovery would replay.
	MetricJournalRollbacksTotal = "sag_engine_journal_rollbacks_total"
	// MetricInflightSolves is a gauge of decision pipelines currently inside
	// the SSE/signaling solve (past the cache and coalescing layers).
	MetricInflightSolves = "sag_engine_inflight_solves"
)

// engineMetrics holds the engine's pre-resolved instruments. The zero value
// (enabled=false, all instruments nil) disables collection: every record
// call is a nil-receiver no-op and the hot path skips its time.Now() calls.
type engineMetrics struct {
	enabled        bool
	stageEstimate  *obs.Histogram
	stageSSE       *obs.Histogram
	stageSignal    *obs.Histogram
	decision       *obs.Histogram
	decisions      *obs.Counter
	vacuous        *obs.Counter
	fallback       *obs.Counter
	budget         *obs.Gauge
	lpSolves       *obs.Counter
	simplexIters   *obs.Counter
	simplexPivots  *obs.Counter
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheEvictions *obs.Counter
	cacheEntries   *obs.Gauge

	fallbackCache    *obs.Counter
	fallbackLastGood *obs.Counter
	fallbackStatic   *obs.Counter
	deadlineExceeded *obs.Counter

	commitRetries    *obs.Counter
	staleCommits     *obs.Counter
	coalescedSolves  *obs.Counter
	inflightSolves   *obs.Gauge
	journalRollbacks *obs.Counter
}

// fallbackCounter maps a degraded level to its labeled counter (nil, hence a
// no-op, for fallback.None or when metrics are disabled).
func (m *engineMetrics) fallbackCounter(lvl fallback.Level) *obs.Counter {
	switch lvl {
	case fallback.Cache:
		return m.fallbackCache
	case fallback.LastGood:
		return m.fallbackLastGood
	case fallback.Static:
		return m.fallbackStatic
	default:
		return nil
	}
}

// newEngineMetrics resolves the engine's instruments in reg. The variadic
// extra labels (Config.MetricLabels) are stamped on every series — a
// multi-tenant deployment passes tenant="<id>" so each tenant engine exports
// its own series family in one shared registry; with no extras the series
// names are exactly the unlabeled single-tenant ones.
func newEngineMetrics(reg *obs.Registry, policy Policy, extra ...obs.Label) engineMetrics {
	if reg == nil {
		return engineMetrics{}
	}
	// with builds a fresh label slice per instrument: appending to the shared
	// extra slice directly could alias one backing array across instruments.
	with := func(ls ...obs.Label) []obs.Label {
		out := make([]obs.Label, 0, len(extra)+len(ls))
		out = append(out, extra...)
		return append(out, ls...)
	}
	const stageHelp = "Per-stage SAG decision latency in seconds."
	return engineMetrics{
		enabled:        true,
		stageEstimate:  reg.Histogram(MetricStageSeconds, stageHelp, obs.DefTimeBuckets, with(obs.L("stage", "estimate"))...),
		stageSSE:       reg.Histogram(MetricStageSeconds, stageHelp, obs.DefTimeBuckets, with(obs.L("stage", "sse"))...),
		stageSignal:    reg.Histogram(MetricStageSeconds, stageHelp, obs.DefTimeBuckets, with(obs.L("stage", "signal"))...),
		decision:       reg.Histogram(MetricDecisionSeconds, "Whole-decision SAG latency in seconds.", obs.DefTimeBuckets, with()...),
		decisions:      reg.Counter(MetricDecisionsTotal, "Committed engine decisions.", with(obs.L("policy", policy.String()))...),
		vacuous:        reg.Counter(MetricVacuousTotal, "Decisions where no alert type was attackable.", with()...),
		fallback:       reg.Counter(MetricTheorem3FallbackTotal, "Alerts solved via LP (3) because the Theorem 3 closed form did not apply.", with()...),
		budget:         reg.Gauge(MetricBudgetRemaining, "Remaining audit budget for the current cycle.", with()...),
		lpSolves:       reg.Counter(MetricLPSolvesTotal, "Candidate LPs solved by the online SSE stage.", with()...),
		simplexIters:   reg.Counter(MetricSimplexIterationsTotal, "Simplex iterations across all candidate LPs.", with()...),
		simplexPivots:  reg.Counter(MetricSimplexPivotsTotal, "Simplex tableau pivots across all candidate LPs.", with()...),
		cacheHits:      reg.Counter(MetricCacheHitsTotal, "Decision-cache lookups served from the cache.", with()...),
		cacheMisses:    reg.Counter(MetricCacheMissesTotal, "Decision-cache lookups that missed and re-solved.", with()...),
		cacheEvictions: reg.Counter(MetricCacheEvictionsTotal, "Decision-cache LRU evictions at capacity.", with()...),
		cacheEntries:   reg.Gauge(MetricCacheEntries, "Current decision-cache entry count.", with()...),

		fallbackCache:    reg.Counter(MetricFallbackTotal, fallbackHelp, with(obs.L("level", fallback.Cache.String()))...),
		fallbackLastGood: reg.Counter(MetricFallbackTotal, fallbackHelp, with(obs.L("level", fallback.LastGood.String()))...),
		fallbackStatic:   reg.Counter(MetricFallbackTotal, fallbackHelp, with(obs.L("level", fallback.Static.String()))...),
		deadlineExceeded: reg.Counter(MetricDeadlineExceededTotal, "Decisions cut off by the per-decision deadline.", with()...),

		commitRetries:    reg.Counter(MetricCommitRetriesTotal, "Optimistic commits that re-solved at a fresh budget.", with()...),
		staleCommits:     reg.Counter(MetricStaleCommitsTotal, "Decisions committed from a stale budget snapshot after retry exhaustion.", with()...),
		coalescedSolves:  reg.Counter(MetricCoalescedSolvesTotal, "Decisions answered by an identical in-flight solve.", with()...),
		inflightSolves:   reg.Gauge(MetricInflightSolves, "Decision pipelines currently inside the SSE/signaling solve.", with()...),
		journalRollbacks: reg.Counter(MetricJournalRollbacksTotal, "Committed decisions rolled back because journaling failed.", with()...),
	}
}

const fallbackHelp = "Degraded decisions by fallback ladder rung."

// recordSSE charges one SSE solve's LP effort to the counters.
func (m *engineMetrics) recordSSE(stats game.SolveStats) {
	if !m.enabled {
		return
	}
	m.lpSolves.Add(uint64(stats.LPSolves))
	m.simplexIters.Add(uint64(stats.Simplex.Iterations()))
	m.simplexPivots.Add(uint64(stats.Simplex.Pivots))
}
