package alerts

import (
	"fmt"
	"sort"
	"sync"
)

// Taxonomy maps base-rule masks to alert type IDs, implementing the paper's
// "combinations are new types" convention. The seven masks the paper
// observed (Table 1) are pre-registered with their published IDs 1..7;
// masks never seen before are assigned fresh IDs on first sight, so the
// taxonomy is total over all 15 nonzero masks.
//
// A Taxonomy is safe for concurrent use.
type Taxonomy struct {
	mu     sync.Mutex
	byMask map[Rule]int
	byID   map[int]Rule
	nextID int
}

// NewTable1Taxonomy returns a taxonomy pre-registered with the paper's
// seven types:
//
//	1 Same Last Name
//	2 Department Co-worker
//	3 Neighbor (≤ 0.5 miles)
//	4 Same Address
//	5 Last Name; Neighbor
//	6 Last Name; Same Address
//	7 Last Name; Same Address; Neighbor
func NewTable1Taxonomy() *Taxonomy {
	t := &Taxonomy{
		byMask: make(map[Rule]int),
		byID:   make(map[int]Rule),
		nextID: 8,
	}
	reg := []struct {
		id   int
		mask Rule
	}{
		{1, RuleLastName},
		{2, RuleCoworker},
		{3, RuleNeighbor},
		{4, RuleSameAddress},
		{5, RuleLastName | RuleNeighbor},
		{6, RuleLastName | RuleSameAddress},
		{7, RuleLastName | RuleSameAddress | RuleNeighbor},
	}
	for _, r := range reg {
		t.byMask[r.mask] = r.id
		t.byID[r.id] = r.mask
	}
	return t
}

// TypeOf returns the type ID for a nonzero rule mask, registering a fresh
// ID for masks never seen before. It panics on a zero mask — benign
// accesses have no type and callers must filter them first.
func (t *Taxonomy) TypeOf(mask Rule) int {
	if mask == 0 {
		panic("alerts: TypeOf called with empty rule mask")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byMask[mask]; ok {
		return id
	}
	id := t.nextID
	t.nextID++
	t.byMask[mask] = id
	t.byID[id] = mask
	return id
}

// MaskOf returns the rule mask registered for a type ID.
func (t *Taxonomy) MaskOf(id int) (Rule, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	m, ok := t.byID[id]
	return m, ok
}

// Describe returns the human-readable description of a type ID, or a
// placeholder for unknown IDs.
func (t *Taxonomy) Describe(id int) string {
	if m, ok := t.MaskOf(id); ok {
		return m.String()
	}
	return fmt.Sprintf("unknown type %d", id)
}

// NumTypes returns the number of registered types.
func (t *Taxonomy) NumTypes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.byID)
}

// IDs returns the registered type IDs in ascending order.
func (t *Taxonomy) IDs() []int {
	t.mu.Lock()
	defer t.mu.Unlock()
	ids := make([]int, 0, len(t.byID))
	for id := range t.byID {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}
