// Package alerts implements the breach-detection layer of the pipeline: the
// base rules the paper's medical center runs over every EMR access (same
// last name, department co-worker, neighbor within 0.5 miles, same
// residential address), and the combination taxonomy of Table 1 ("when an
// access triggers multiple types, their combination is regarded as a new
// type").
//
// The Engine joins each emr.AccessEvent against the world's entity tables
// and emits a typed Alert for every access matching at least one rule. The
// output stream is what the game layer consumes: type + timestamp.
package alerts

import (
	"fmt"
	"time"

	"github.com/auditgames/sag/internal/emr"
)

// Rule is a bitmask of base detection predicates.
type Rule uint8

const (
	// RuleLastName fires when employee and patient share a surname.
	RuleLastName Rule = 1 << iota
	// RuleCoworker fires when the patient works in the employee's
	// department.
	RuleCoworker
	// RuleNeighbor fires when any two of their registered addresses are
	// within (0, 0.5] miles of each other.
	RuleNeighbor
	// RuleSameAddress fires when they share a registered address ID.
	RuleSameAddress
)

// NeighborRadiusMiles is the paper's neighborhood radius.
const NeighborRadiusMiles = 0.5

// String renders the mask as the Table 1 style description.
func (r Rule) String() string {
	if r == 0 {
		return "none"
	}
	out := ""
	add := func(s string) {
		if out != "" {
			out += "; "
		}
		out += s
	}
	if r&RuleLastName != 0 {
		add("Same Last Name")
	}
	if r&RuleCoworker != 0 {
		add("Department Co-worker")
	}
	if r&RuleNeighbor != 0 {
		add("Neighbor (<=0.5 miles)")
	}
	if r&RuleSameAddress != 0 {
		add("Same Address")
	}
	return out
}

// Alert is one typed alert produced by the detection engine.
type Alert struct {
	Day  int
	Time time.Duration
	// Type is the taxonomy type ID (see Taxonomy); the paper's Table 1
	// types are 1..7.
	Type int
	// Rules is the base-rule mask that produced the type.
	Rules      Rule
	EmployeeID int
	PatientID  int
}

// Engine evaluates the base rules against a fixed world.
type Engine struct {
	world *emr.World
	tax   *Taxonomy
}

// NewEngine builds a detection engine over the world using the taxonomy
// (pass NewTable1Taxonomy() for the paper's typing).
func NewEngine(w *emr.World, tax *Taxonomy) (*Engine, error) {
	if w == nil {
		return nil, fmt.Errorf("alerts: nil world")
	}
	if tax == nil {
		return nil, fmt.Errorf("alerts: nil taxonomy")
	}
	return &Engine{world: w, tax: tax}, nil
}

// Taxonomy returns the engine's taxonomy.
func (e *Engine) Taxonomy() *Taxonomy { return e.tax }

// EvaluateRules returns the base-rule mask for one access (0 when benign).
func (e *Engine) EvaluateRules(ev emr.AccessEvent) (Rule, error) {
	if ev.EmployeeID < 0 || ev.EmployeeID >= len(e.world.Employees) {
		return 0, fmt.Errorf("alerts: employee %d out of range", ev.EmployeeID)
	}
	if ev.PatientID < 0 || ev.PatientID >= len(e.world.Patients) {
		return 0, fmt.Errorf("alerts: patient %d out of range", ev.PatientID)
	}
	emp := &e.world.Employees[ev.EmployeeID]
	pat := &e.world.Patients[ev.PatientID]

	var mask Rule
	if emp.LastName == pat.LastName {
		mask |= RuleLastName
	}
	if pat.IsEmployee && pat.Department == emp.Department {
		mask |= RuleCoworker
	}
	same, neighbor := addressRelations(e.world, emp.AddressIDs, pat.AddressIDs)
	if same {
		mask |= RuleSameAddress
	}
	if neighbor {
		mask |= RuleNeighbor
	}
	return mask, nil
}

// addressRelations reports whether the two address lists share an ID and
// whether any cross pair of distinct locations is within the neighbor
// radius.
func addressRelations(w *emr.World, a, b []int) (same, neighbor bool) {
	for _, ia := range a {
		la := w.AddressLoc(ia)
		for _, ib := range b {
			if ia == ib {
				same = true
				continue
			}
			d := la.DistanceMiles(w.AddressLoc(ib))
			if d > 0 && d <= NeighborRadiusMiles {
				neighbor = true
			}
		}
	}
	return same, neighbor
}

// Evaluate runs the rules on one access and returns the alert, or ok=false
// for a benign access.
func (e *Engine) Evaluate(ev emr.AccessEvent) (Alert, bool, error) {
	mask, err := e.EvaluateRules(ev)
	if err != nil {
		return Alert{}, false, err
	}
	if mask == 0 {
		return Alert{}, false, nil
	}
	return Alert{
		Day:        ev.Day,
		Time:       ev.Time,
		Type:       e.tax.TypeOf(mask),
		Rules:      mask,
		EmployeeID: ev.EmployeeID,
		PatientID:  ev.PatientID,
	}, true, nil
}

// Scan evaluates a whole day's access log and returns its alerts in input
// order (the generator emits logs sorted by time).
func (e *Engine) Scan(events []emr.AccessEvent) ([]Alert, error) {
	var out []Alert
	for _, ev := range events {
		a, ok, err := e.Evaluate(ev)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, a)
		}
	}
	return out, nil
}
