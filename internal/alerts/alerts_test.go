package alerts

import (
	"sync"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/emr"
)

func buildPipeline(t *testing.T, pairsPerKind, background int) (*emr.Generator, *Engine) {
	t.Helper()
	w, err := emr.NewWorld(emr.WorldConfig{Seed: 7, Departments: 6, Employees: 60, Patients: 300})
	if err != nil {
		t.Fatal(err)
	}
	g, err := emr.NewGenerator(w, emr.GeneratorConfig{Seed: 7, PairsPerKind: pairsPerKind, BackgroundPerDay: background})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := NewEngine(w, NewTable1Taxonomy())
	if err != nil {
		t.Fatal(err)
	}
	return g, eng
}

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, NewTable1Taxonomy()); err == nil {
		t.Error("nil world should be rejected")
	}
	w, _ := emr.NewWorld(emr.WorldConfig{Seed: 1, Employees: 1, Patients: 1, Departments: 1})
	if _, err := NewEngine(w, nil); err == nil {
		t.Error("nil taxonomy should be rejected")
	}
}

func TestRuleStringCombinations(t *testing.T) {
	if Rule(0).String() != "none" {
		t.Fatal("zero mask should be 'none'")
	}
	got := (RuleLastName | RuleSameAddress | RuleNeighbor).String()
	want := "Same Last Name; Neighbor (<=0.5 miles); Same Address"
	if got != want {
		t.Fatalf("mask string = %q, want %q", got, want)
	}
	if RuleCoworker.String() != "Department Co-worker" {
		t.Fatal("coworker description wrong")
	}
}

func TestTaxonomyTable1Registration(t *testing.T) {
	tax := NewTable1Taxonomy()
	cases := []struct {
		mask Rule
		id   int
	}{
		{RuleLastName, 1},
		{RuleCoworker, 2},
		{RuleNeighbor, 3},
		{RuleSameAddress, 4},
		{RuleLastName | RuleNeighbor, 5},
		{RuleLastName | RuleSameAddress, 6},
		{RuleLastName | RuleSameAddress | RuleNeighbor, 7},
	}
	for _, c := range cases {
		if got := tax.TypeOf(c.mask); got != c.id {
			t.Errorf("TypeOf(%v) = %d, want %d", c.mask, got, c.id)
		}
	}
	if tax.NumTypes() != 7 {
		t.Fatalf("NumTypes = %d, want 7", tax.NumTypes())
	}
}

func TestTaxonomyDynamicRegistration(t *testing.T) {
	tax := NewTable1Taxonomy()
	novel := RuleCoworker | RuleNeighbor // not in Table 1
	id := tax.TypeOf(novel)
	if id != 8 {
		t.Fatalf("first novel mask got id %d, want 8", id)
	}
	if again := tax.TypeOf(novel); again != id {
		t.Fatal("repeated mask should return the same id")
	}
	if tax.NumTypes() != 8 {
		t.Fatalf("NumTypes = %d, want 8", tax.NumTypes())
	}
	if m, ok := tax.MaskOf(8); !ok || m != novel {
		t.Fatal("MaskOf(8) should return the novel mask")
	}
	ids := tax.IDs()
	if len(ids) != 8 || ids[0] != 1 || ids[7] != 8 {
		t.Fatalf("IDs = %v", ids)
	}
}

func TestTaxonomyPanicsOnZeroMask(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("TypeOf(0) should panic")
		}
	}()
	NewTable1Taxonomy().TypeOf(0)
}

func TestTaxonomyDescribe(t *testing.T) {
	tax := NewTable1Taxonomy()
	if tax.Describe(1) != "Same Last Name" {
		t.Fatalf("Describe(1) = %q", tax.Describe(1))
	}
	if tax.Describe(99) != "unknown type 99" {
		t.Fatalf("Describe(99) = %q", tax.Describe(99))
	}
}

func TestBackgroundAccessesAreBenign(t *testing.T) {
	g, eng := buildPipeline(t, 5, 500)
	bgE, bgP := g.BackgroundCounts()
	for _, ev := range g.Day(0) {
		if ev.EmployeeID >= bgE || ev.PatientID >= bgP {
			continue // planted traffic
		}
		mask, err := eng.EvaluateRules(ev)
		if err != nil {
			t.Fatal(err)
		}
		if mask != 0 {
			t.Fatalf("background access %+v triggered %v", ev, mask)
		}
	}
}

func TestPlantedAccessesTriggerExactKind(t *testing.T) {
	g, eng := buildPipeline(t, 8, 0)
	bgE, _ := g.BackgroundCounts()
	// Employee IDs are appended kind-by-kind in blocks of PairsPerKind.
	kindOf := func(employeeID int) int { return (employeeID - bgE) / 8 }
	days := g.Days(5)
	seen := map[int]int{}
	for _, day := range days {
		for _, ev := range day {
			if ev.EmployeeID < bgE {
				continue // background traffic (covered by the benign test)
			}
			a, ok, err := eng.Evaluate(ev)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				t.Fatalf("planted access %+v produced no alert", ev)
			}
			wantType := kindOf(ev.EmployeeID) + 1 // Table 1 IDs are 1-based
			if a.Type != wantType {
				t.Fatalf("planted access for kind %d typed as %d (%v)",
					wantType, a.Type, a.Rules)
			}
			seen[a.Type]++
		}
	}
	for id := 1; id <= 7; id++ {
		if seen[id] == 0 {
			t.Errorf("no alerts of type %d observed across 5 days", id)
		}
	}
}

func TestScanPreservesOrderAndMetadata(t *testing.T) {
	g, eng := buildPipeline(t, 5, 200)
	day := g.Day(2)
	alerts, err := eng.Scan(day)
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) == 0 {
		t.Fatal("expected alerts from planted traffic")
	}
	for i := 1; i < len(alerts); i++ {
		if alerts[i].Time < alerts[i-1].Time {
			t.Fatal("scan output not time-ordered")
		}
	}
	for _, a := range alerts {
		if a.Day != 2 {
			t.Fatalf("alert day %d, want 2", a.Day)
		}
		if a.Type < 1 || a.Type > 7 {
			t.Fatalf("unexpected type %d from default generator", a.Type)
		}
		if a.Time < 0 || a.Time >= 24*time.Hour {
			t.Fatalf("alert time %v out of range", a.Time)
		}
	}
}

func TestEvaluateRejectsOutOfRangeIDs(t *testing.T) {
	_, eng := buildPipeline(t, 2, 0)
	if _, err := eng.EvaluateRules(emr.AccessEvent{EmployeeID: -1}); err == nil {
		t.Error("negative employee should error")
	}
	if _, err := eng.EvaluateRules(emr.AccessEvent{EmployeeID: 0, PatientID: 1 << 30}); err == nil {
		t.Error("huge patient id should error")
	}
	if _, _, err := eng.Evaluate(emr.AccessEvent{EmployeeID: 1 << 30}); err == nil {
		t.Error("Evaluate should propagate range errors")
	}
	if _, err := eng.Scan([]emr.AccessEvent{{EmployeeID: 1 << 30}}); err == nil {
		t.Error("Scan should propagate range errors")
	}
}

func TestTaxonomyConcurrentRegistration(t *testing.T) {
	// The taxonomy promises concurrency safety; hammer it from many
	// goroutines registering overlapping mask sets and verify the final
	// mapping is a bijection.
	tax := NewTable1Taxonomy()
	var wg sync.WaitGroup
	masks := []Rule{
		RuleLastName, RuleCoworker, RuleNeighbor, RuleSameAddress,
		RuleLastName | RuleCoworker,
		RuleCoworker | RuleNeighbor,
		RuleCoworker | RuleSameAddress,
		RuleLastName | RuleCoworker | RuleNeighbor,
		RuleLastName | RuleCoworker | RuleSameAddress | RuleNeighbor,
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				m := masks[i%len(masks)]
				id := tax.TypeOf(m)
				got, ok := tax.MaskOf(id)
				if !ok || got != m {
					t.Errorf("mask %v mapped to id %d which maps back to %v (ok=%v)", m, id, got, ok)
					return
				}
			}
		}()
	}
	wg.Wait()
	// Each distinct mask got exactly one ID.
	seen := map[int]bool{}
	for _, m := range masks {
		id := tax.TypeOf(m)
		if seen[id] {
			t.Fatalf("id %d assigned to two masks", id)
		}
		seen[id] = true
	}
}

func TestDailyTypeCountsMatchTable1(t *testing.T) {
	// End-to-end calibration check through the real rules engine.
	g, eng := buildPipeline(t, 40, 100)
	want := emr.Table1Volumes()
	days := 30
	totals := make([]float64, 8)
	for d := 0; d < days; d++ {
		alerts, err := eng.Scan(g.Day(d))
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range alerts {
			totals[a.Type]++
		}
	}
	for id := 1; id <= 7; id++ {
		mean := totals[id] / float64(days)
		mu := want[id-1].Mu
		tol := 5*want[id-1].Sigma/5.477 + 2 // ≈ 5·σ/√30 + slack
		if mean < mu-tol || mean > mu+tol {
			t.Errorf("type %d: observed daily mean %.2f, want %.2f ± %.2f", id, mean, mu, tol)
		}
	}
}
