package dataio

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead hardens the dataset reader against hostile input: whatever the
// bytes, Read must either return a structurally valid dataset or an error —
// never panic, never return a dataset that violates its own invariants.
func FuzzRead(f *testing.F) {
	// Seed with a valid file and several near-misses.
	var buf bytes.Buffer
	if err := Write(&buf, sample()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"version":1,"num_types":1,"type_ids":[1],"days":[]}`))
	f.Add([]byte(`{"version":1,"num_types":2,"type_ids":[1,2],"days":[{"alerts":[{"type":1,"time_sec":3.5}]}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(``))
	f.Add([]byte(`{"version":1,"num_types":1000000,"type_ids":[],"days":[]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, err := Read(strings.NewReader(string(data)))
		if err != nil {
			return
		}
		// Whatever parsed must satisfy the invariants Read promises.
		if ds.NumTypes <= 0 || len(ds.TypeIDs) != ds.NumTypes {
			t.Fatalf("invalid dataset accepted: %+v", ds)
		}
		for d, day := range ds.Days {
			for i, a := range day {
				if a.Type < 0 || a.Type >= ds.NumTypes {
					t.Fatalf("day %d alert %d: bad type %d", d, i, a.Type)
				}
				if i > 0 && day[i].Time < day[i-1].Time {
					t.Fatalf("day %d: unsorted alerts accepted", d)
				}
			}
		}
	})
}
