// Package dataio serializes game-level alert datasets (sim.Dataset) to a
// stable JSON schema and back, so generated workloads can be archived,
// shared, and replayed without regenerating the synthetic world — the
// moral equivalent of shipping the (de-identified) alert log the paper's
// evaluation consumed.
//
// The schema is versioned; readers reject unknown versions and validate
// structural invariants (sorted times, in-range type indices) so a corrupt
// file fails loudly at load time rather than as a silent mis-simulation.
package dataio

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"github.com/auditgames/sag/internal/sim"
)

// Version is the current schema version.
const Version = 1

// fileFormat is the on-disk layout.
type fileFormat struct {
	Version  int       `json:"version"`
	NumTypes int       `json:"num_types"`
	TypeIDs  []int     `json:"type_ids"`
	Days     []fileDay `json:"days"`
}

type fileDay struct {
	Alerts []fileAlert `json:"alerts"`
}

type fileAlert struct {
	Type    int     `json:"type"`
	TimeSec float64 `json:"time_sec"`
}

// Write serializes the dataset to w.
func Write(w io.Writer, ds *sim.Dataset) error {
	if ds == nil {
		return fmt.Errorf("dataio: nil dataset")
	}
	ff := fileFormat{
		Version:  Version,
		NumTypes: ds.NumTypes,
		TypeIDs:  ds.TypeIDs,
	}
	for _, day := range ds.Days {
		fd := fileDay{Alerts: make([]fileAlert, 0, len(day))}
		for _, a := range day {
			fd.Alerts = append(fd.Alerts, fileAlert{Type: a.Type, TimeSec: a.Time.Seconds()})
		}
		ff.Days = append(ff.Days, fd)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(ff)
}

// Read parses and validates a dataset from r.
func Read(r io.Reader) (*sim.Dataset, error) {
	var ff fileFormat
	dec := json.NewDecoder(r)
	if err := dec.Decode(&ff); err != nil {
		return nil, fmt.Errorf("dataio: decoding dataset: %w", err)
	}
	if ff.Version != Version {
		return nil, fmt.Errorf("dataio: unsupported dataset version %d (want %d)", ff.Version, Version)
	}
	if ff.NumTypes <= 0 {
		return nil, fmt.Errorf("dataio: invalid num_types %d", ff.NumTypes)
	}
	if len(ff.TypeIDs) != ff.NumTypes {
		return nil, fmt.Errorf("dataio: %d type_ids for num_types %d", len(ff.TypeIDs), ff.NumTypes)
	}
	seen := make(map[int]bool, ff.NumTypes)
	for _, id := range ff.TypeIDs {
		if seen[id] {
			return nil, fmt.Errorf("dataio: duplicate type id %d", id)
		}
		seen[id] = true
	}
	ds := &sim.Dataset{
		NumTypes: ff.NumTypes,
		TypeIDs:  append([]int(nil), ff.TypeIDs...),
	}
	for dayIdx, fd := range ff.Days {
		var prev time.Duration = -1
		day := make([]sim.TimedAlert, 0, len(fd.Alerts))
		for i, a := range fd.Alerts {
			if a.Type < 0 || a.Type >= ff.NumTypes {
				return nil, fmt.Errorf("dataio: day %d alert %d: type %d out of [0,%d)", dayIdx, i, a.Type, ff.NumTypes)
			}
			if a.TimeSec < 0 || a.TimeSec >= 24*3600 {
				return nil, fmt.Errorf("dataio: day %d alert %d: time %gs out of a day", dayIdx, i, a.TimeSec)
			}
			at := time.Duration(a.TimeSec * float64(time.Second))
			if at < prev {
				return nil, fmt.Errorf("dataio: day %d alert %d: times not sorted", dayIdx, i)
			}
			prev = at
			day = append(day, sim.TimedAlert{Type: a.Type, Time: at})
		}
		ds.Days = append(ds.Days, day)
	}
	return ds, nil
}
