package dataio

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/sim"
)

func sample() *sim.Dataset {
	return &sim.Dataset{
		NumTypes: 2,
		TypeIDs:  []int{1, 3},
		Days: [][]sim.TimedAlert{
			{
				{Type: 0, Time: 8 * time.Hour},
				{Type: 1, Time: 9*time.Hour + 30*time.Minute},
				{Type: 0, Time: 15 * time.Hour},
			},
			{
				{Type: 1, Time: 7 * time.Hour},
			},
			{}, // an empty day is legal
		},
	}
}

func TestRoundTrip(t *testing.T) {
	ds := sample()
	var buf bytes.Buffer
	if err := Write(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTypes != ds.NumTypes || len(got.TypeIDs) != len(ds.TypeIDs) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range ds.TypeIDs {
		if got.TypeIDs[i] != ds.TypeIDs[i] {
			t.Fatal("type IDs mismatch")
		}
	}
	if got.NumDays() != ds.NumDays() {
		t.Fatalf("days %d, want %d", got.NumDays(), ds.NumDays())
	}
	for d := range ds.Days {
		if len(got.Days[d]) != len(ds.Days[d]) {
			t.Fatalf("day %d length mismatch", d)
		}
		for i := range ds.Days[d] {
			if got.Days[d][i].Type != ds.Days[d][i].Type {
				t.Fatalf("day %d alert %d type mismatch", d, i)
			}
			if diff := got.Days[d][i].Time - ds.Days[d][i].Time; diff > time.Millisecond || diff < -time.Millisecond {
				t.Fatalf("day %d alert %d time drift %v", d, i, diff)
			}
		}
	}
}

func TestWriteNil(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, nil); err == nil {
		t.Fatal("nil dataset should be rejected")
	}
}

func TestReadRejectsCorruptInputs(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"garbage", "not json"},
		{"wrong version", `{"version":99,"num_types":1,"type_ids":[1],"days":[]}`},
		{"zero types", `{"version":1,"num_types":0,"type_ids":[],"days":[]}`},
		{"id count mismatch", `{"version":1,"num_types":2,"type_ids":[1],"days":[]}`},
		{"duplicate ids", `{"version":1,"num_types":2,"type_ids":[1,1],"days":[]}`},
		{"type out of range", `{"version":1,"num_types":1,"type_ids":[1],"days":[{"alerts":[{"type":5,"time_sec":10}]}]}`},
		{"negative time", `{"version":1,"num_types":1,"type_ids":[1],"days":[{"alerts":[{"type":0,"time_sec":-1}]}]}`},
		{"time past midnight", `{"version":1,"num_types":1,"type_ids":[1],"days":[{"alerts":[{"type":0,"time_sec":90000}]}]}`},
		{"unsorted", `{"version":1,"num_types":1,"type_ids":[1],"days":[{"alerts":[{"type":0,"time_sec":100},{"type":0,"time_sec":50}]}]}`},
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c.in)); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestRoundTripGeneratedDataset(t *testing.T) {
	ds, err := sim.BuildTable1Pipeline(sim.PipelineConfig{
		Seed: 4, Days: 4, BackgroundPerDay: 20, PairsPerKind: 10,
		WorldEmployees: 10, WorldPatients: 40,
	}, sim.AllTable1TypeIDs())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, ds); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumDays() != ds.NumDays() || got.NumTypes != ds.NumTypes {
		t.Fatal("generated round trip lost shape")
	}
	total := func(d *sim.Dataset) int {
		n := 0
		for _, day := range d.Days {
			n += len(day)
		}
		return n
	}
	if total(got) != total(ds) {
		t.Fatalf("alert count %d, want %d", total(got), total(ds))
	}
}
