// Package emr provides the synthetic electronic-medical-record substrate
// that replaces the paper's private dataset (10.75M access events over 56
// working days at a large academic medical center).
//
// The package models the entities the paper's alert rules inspect —
// employees, patients, departments, and geocoded residential addresses — and
// generates daily access logs whose *alert stream* is statistically
// calibrated to the paper's Table 1: per-type daily volumes follow
// Normal(mean, std) with the published parameters, and intra-day arrival
// times follow the diurnal shape the paper describes (mass between 08:00 and
// 17:00 around worker shifts, quiet nights).
//
// Relationship semantics. The four base predicates the detection rules use
// are derived from world state, never asserted directly:
//
//   - same last name — string equality of surnames;
//   - department co-worker — the patient is also an employee of the
//     accessing employee's department;
//   - same address — the two people share a registered address ID (people
//     may carry up to two registered addresses, e.g. a previous home);
//   - neighbor (≤ 0.5 miles) — some pair of their registered addresses is
//     at distance in (0, 0.5] miles (strictly positive: living at the same
//     address is "same address", not "neighbor").
//
// With these semantics every one of the paper's seven observed combination
// types is realizable (e.g. type 7 "last name + same address + neighbor"
// arises when a relative shares the home address and also keeps a second
// address around the corner), and combinations the paper never observed
// (such as co-worker + last name) simply are not planted by the default
// generator.
package emr

import (
	"fmt"
	"math"
	"math/rand"
)

// Geo is a point in a planar city grid, in miles.
type Geo struct {
	X, Y float64
}

// DistanceMiles returns the Euclidean distance between two points.
func (g Geo) DistanceMiles(o Geo) float64 {
	dx, dy := g.X-o.X, g.Y-o.Y
	return math.Hypot(dx, dy)
}

// Address is a registered residential address.
type Address struct {
	ID  int
	Loc Geo
}

// Person carries the identity attributes shared by employees and patients.
type Person struct {
	ID        int
	FirstName string
	LastName  string
	// AddressIDs are the registered addresses (current home first; up to
	// two).
	AddressIDs []int
}

// Employee is a hospital employee with EMR access.
type Employee struct {
	Person
	Department int
}

// Patient is a person with a medical record. IsEmployee/Department model
// patients who also work at the hospital (the basis of the co-worker rule).
type Patient struct {
	Person
	IsEmployee bool
	Department int
}

// World is the static synthetic hospital: the entity tables the detection
// rules join against. Build one with NewWorld.
type World struct {
	Departments []string
	Addresses   []Address
	Employees   []Employee
	Patients    []Patient
}

// WorldConfig sizes a synthetic world.
type WorldConfig struct {
	// Seed drives all world randomness; equal seeds give identical worlds.
	Seed int64
	// Departments is the number of hospital departments (default 40).
	Departments int
	// Employees is the number of EMR users (default 4000).
	Employees int
	// Patients is the number of patients (default 30000).
	Patients int
	// CitySideMiles is the side length of the square city grid addresses
	// are scattered over (default 30 miles).
	CitySideMiles float64
}

func (c *WorldConfig) applyDefaults() {
	if c.Departments <= 0 {
		c.Departments = 40
	}
	if c.Employees <= 0 {
		c.Employees = 4000
	}
	if c.Patients <= 0 {
		c.Patients = 30000
	}
	if c.CitySideMiles <= 0 {
		c.CitySideMiles = 30
	}
}

// Validate rejects nonsensical configurations.
func (c WorldConfig) Validate() error {
	if c.Departments < 0 || c.Employees < 0 || c.Patients < 0 {
		return fmt.Errorf("emr: negative sizes in %+v", c)
	}
	if c.CitySideMiles < 0 || math.IsNaN(c.CitySideMiles) {
		return fmt.Errorf("emr: invalid city size %g", c.CitySideMiles)
	}
	return nil
}

// NewWorld builds the static world: departments, a surname pool sized so
// accidental surname collisions between unrelated people are negligible,
// addresses spread across the city, and the employee/patient tables.
//
// Background entities (everything NewWorld creates) are constructed to be
// alert-silent: every person gets a unique surname and a unique address at
// least one mile from any other, and no patient is an employee. The planted
// relationships that do trigger alerts are added by the Generator, so the
// alert stream is exactly the calibrated one.
func NewWorld(cfg WorldConfig) (*World, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	w := &World{}
	for d := 0; d < cfg.Departments; d++ {
		w.Departments = append(w.Departments, fmt.Sprintf("Dept-%03d", d))
	}

	// Unique, well-separated addresses on a jittered grid: cells of 1 mile
	// guarantee pairwise distance > 0.5 miles between background addresses.
	total := cfg.Employees + cfg.Patients
	side := int(math.Ceil(math.Sqrt(float64(total))))
	scale := math.Max(1.0, cfg.CitySideMiles/float64(side))
	if scale < 1 {
		scale = 1
	}
	for i := 0; i < total; i++ {
		cx := float64(i%side) * scale
		cy := float64(i/side) * scale
		w.Addresses = append(w.Addresses, Address{
			ID: i,
			Loc: Geo{
				X: cx + rng.Float64()*0.2,
				Y: cy + rng.Float64()*0.2,
			},
		})
	}

	for i := 0; i < cfg.Employees; i++ {
		w.Employees = append(w.Employees, Employee{
			Person: Person{
				ID:         i,
				FirstName:  firstNames[rng.Intn(len(firstNames))],
				LastName:   fmt.Sprintf("Emp%06d", i), // unique by construction
				AddressIDs: []int{i},
			},
			Department: rng.Intn(cfg.Departments),
		})
	}
	for i := 0; i < cfg.Patients; i++ {
		w.Patients = append(w.Patients, Patient{
			Person: Person{
				ID:         i,
				FirstName:  firstNames[rng.Intn(len(firstNames))],
				LastName:   fmt.Sprintf("Pat%06d", i),
				AddressIDs: []int{cfg.Employees + i},
			},
		})
	}
	return w, nil
}

// AddAddress registers a new address and returns its ID.
func (w *World) AddAddress(loc Geo) int {
	id := len(w.Addresses)
	w.Addresses = append(w.Addresses, Address{ID: id, Loc: loc})
	return id
}

// AddressLoc returns the location of address id. It panics on an unknown
// ID: addresses are only ever created through the World, so a bad ID is a
// programming error.
func (w *World) AddressLoc(id int) Geo {
	return w.Addresses[id].Loc
}

// NumEmployees returns the number of employees.
func (w *World) NumEmployees() int { return len(w.Employees) }

// NumPatients returns the number of patients.
func (w *World) NumPatients() int { return len(w.Patients) }
