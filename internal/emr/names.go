package emr

// firstNames is a small pool of given names for flavor; first names carry
// no detection semantics (only surnames, departments, and addresses do).
var firstNames = []string{
	"Alice", "Amir", "Ana", "Andre", "Asha", "Ben", "Bianca", "Carlos",
	"Chen", "Dana", "Dmitri", "Elena", "Emeka", "Fatima", "Gabriel",
	"Hana", "Ibrahim", "Ines", "Jamal", "Jin", "Kofi", "Leila", "Luca",
	"Maria", "Mateo", "Mei", "Nadia", "Noah", "Olga", "Omar", "Priya",
	"Quinn", "Rafael", "Rosa", "Sam", "Sofia", "Tariq", "Uma", "Victor",
	"Wei", "Ximena", "Yusuf", "Zara",
}

// familyNames is the surname pool used for *planted* relationships (pairs
// that must share a surname). Background people get synthetic unique
// surnames instead, so every same-last-name alert in the stream is planted
// and the calibration to Table 1 stays exact.
var familyNames = []string{
	"Abbott", "Alvarez", "Anand", "Baker", "Bauer", "Bennett", "Bishop",
	"Blake", "Bauman", "Carson", "Castillo", "Chang", "Clarke", "Cohen",
	"Cruz", "Dalton", "Desai", "Diaz", "Dubois", "Ellis", "Farrell",
	"Fischer", "Flores", "Foster", "Fujita", "Garcia", "Gibson", "Gomez",
	"Grant", "Gruber", "Gupta", "Hansen", "Harper", "Hayashi", "Herrera",
	"Hoffman", "Hughes", "Ivanov", "Jacobs", "Jensen", "Johansson",
	"Kapoor", "Keller", "Kim", "Kowalski", "Kumar", "Larsen", "Lee",
	"Lehmann", "Lopez", "Ma", "Marino", "Martin", "Mendez", "Meyer",
	"Moreau", "Morgan", "Murphy", "Nakamura", "Nguyen", "Novak",
	"O'Brien", "Okafor", "Olsen", "Ortiz", "Osman", "Park", "Patel",
	"Pereira", "Petrov", "Popov", "Quintero", "Ramirez", "Reyes",
	"Richter", "Rivera", "Romano", "Rossi", "Ruiz", "Santos", "Sato",
	"Schmidt", "Schneider", "Sharma", "Silva", "Singh", "Sokolov",
	"Suzuki", "Takahashi", "Tanaka", "Torres", "Tran", "Vargas", "Vega",
	"Wagner", "Walsh", "Wang", "Weber", "Weiss", "Wong", "Yamamoto",
	"Yang", "Yilmaz", "Zhang", "Zhao", "Zimmermann",
}
