package emr

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/auditgames/sag/internal/dist"
)

// AccessEvent is one EMR access: an employee opening a patient's record at
// a given offset within a working day.
type AccessEvent struct {
	Day        int
	Time       time.Duration
	EmployeeID int
	PatientID  int
}

// RelationKind enumerates the paper's seven observed alert types (Table 1),
// 0-indexed: RelationKind(i) corresponds to the paper's type ID i+1.
type RelationKind int

const (
	// KindLastName — employee and patient share a surname.
	KindLastName RelationKind = iota
	// KindCoworker — the patient works in the employee's department.
	KindCoworker
	// KindNeighbor — they live within 0.5 miles (different addresses).
	KindNeighbor
	// KindSameAddress — they share a registered address.
	KindSameAddress
	// KindLastNameNeighbor — surname + neighbor.
	KindLastNameNeighbor
	// KindLastNameAddress — surname + same address.
	KindLastNameAddress
	// KindLastNameAddressNeighbor — surname + same address + neighbor (a
	// second registered address around the corner).
	KindLastNameAddressNeighbor

	// NumKinds is the number of planted relation kinds.
	NumKinds = 7
)

// String returns the paper's Table 1 description for the kind.
func (k RelationKind) String() string {
	switch k {
	case KindLastName:
		return "Same Last Name"
	case KindCoworker:
		return "Department Co-worker"
	case KindNeighbor:
		return "Neighbor (<=0.5 miles)"
	case KindSameAddress:
		return "Same Address"
	case KindLastNameNeighbor:
		return "Last Name; Neighbor (<=0.5 miles)"
	case KindLastNameAddress:
		return "Last Name; Same Address"
	case KindLastNameAddressNeighbor:
		return "Last Name; Same Address; Neighbor (<=0.5 miles)"
	default:
		return fmt.Sprintf("RelationKind(%d)", int(k))
	}
}

// Table1Volumes returns the paper's Table 1 daily alert statistics as
// normal distributions, indexed by RelationKind.
func Table1Volumes() [NumKinds]dist.Normal {
	return [NumKinds]dist.Normal{
		KindLastName:                {Mu: 196.57, Sigma: 17.30},
		KindCoworker:                {Mu: 29.02, Sigma: 5.56},
		KindNeighbor:                {Mu: 140.46, Sigma: 23.23},
		KindSameAddress:             {Mu: 10.84, Sigma: 3.73},
		KindLastNameNeighbor:        {Mu: 25.43, Sigma: 4.51},
		KindLastNameAddress:         {Mu: 15.14, Sigma: 4.10},
		KindLastNameAddressNeighbor: {Mu: 43.27, Sigma: 6.45},
	}
}

// diurnalWeights is the relative access intensity per hour of day: heavy
// mass 08:00–17:00 with shift-change peaks around 07–08 and 14–16, and a
// quiet night — the shape the paper reports for the medical center.
var diurnalWeights = [24]float64{
	0.20, 0.15, 0.15, 0.15, 0.20, 0.30, // 00–05
	0.60, 1.80, 3.20, 3.00, 2.80, 2.60, // 06–11
	2.40, 2.60, 2.80, 3.00, 2.40, 1.80, // 12–17
	1.00, 0.80, 0.50, 0.40, 0.30, 0.25, // 18–23
}

// DiurnalWeights returns a copy of the hourly intensity profile, for
// reporting and tests.
func DiurnalWeights() [24]float64 { return diurnalWeights }

// sampleDiurnalTime draws a time-of-day from the piecewise-constant hourly
// profile.
func sampleDiurnalTime(rng *rand.Rand) time.Duration {
	total := 0.0
	for _, w := range diurnalWeights {
		total += w
	}
	u := rng.Float64() * total
	for h, w := range diurnalWeights {
		if u < w {
			frac := u / w
			return time.Duration(h)*time.Hour + time.Duration(frac*float64(time.Hour))
		}
		u -= w
	}
	return 24*time.Hour - time.Nanosecond
}

// pair is a planted employee–patient relationship.
type pair struct {
	employee int
	patient  int
}

// GeneratorConfig sizes the synthetic access-log generator.
type GeneratorConfig struct {
	// Seed drives planting and day generation; together with a day index it
	// fully determines that day's log.
	Seed int64
	// BackgroundPerDay is the number of alert-silent accesses per day
	// (default 2000; the paper's full scale is ≈192k).
	BackgroundPerDay int
	// PairsPerKind is the size of the planted-pair pool per relation kind
	// (default 300); daily alerts draw from this pool with replacement.
	PairsPerKind int
	// Volumes are the daily alert-count distributions per kind
	// (default Table1Volumes).
	Volumes [NumKinds]dist.Normal
}

func (c *GeneratorConfig) applyDefaults() {
	if c.BackgroundPerDay <= 0 {
		c.BackgroundPerDay = 2000
	}
	if c.PairsPerKind <= 0 {
		c.PairsPerKind = 300
	}
	zero := dist.Normal{}
	allZero := true
	for _, v := range c.Volumes {
		if v != zero {
			allZero = false
			break
		}
	}
	if allZero {
		c.Volumes = Table1Volumes()
	}
}

// Generator plants relationship pairs into a World and then emits daily
// access logs whose alert stream matches the configured volumes.
type Generator struct {
	world        *World
	cfg          GeneratorConfig
	pairs        [NumKinds][]pair
	bgEmployees  int // employees with index < bgEmployees are background
	bgPatients   int
	surnameIndex int
}

// NewGenerator plants cfg.PairsPerKind relationship pairs of every kind
// into w (appending fresh employees, patients, and addresses) and returns
// the generator. The world is mutated; pass a dedicated World.
func NewGenerator(w *World, cfg GeneratorConfig) (*Generator, error) {
	if w == nil {
		return nil, fmt.Errorf("emr: nil world")
	}
	if cfg.BackgroundPerDay < 0 || cfg.PairsPerKind < 0 {
		return nil, fmt.Errorf("emr: negative sizes in %+v", cfg)
	}
	cfg.applyDefaults()
	for k, v := range cfg.Volumes {
		if v.Sigma < 0 || v.Mu < 0 {
			return nil, fmt.Errorf("emr: invalid volume for kind %d: %+v", k, v)
		}
	}
	g := &Generator{
		world:       w,
		cfg:         cfg,
		bgEmployees: len(w.Employees),
		bgPatients:  len(w.Patients),
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ 0x5AD_BEEF))
	for kind := RelationKind(0); kind < NumKinds; kind++ {
		for i := 0; i < cfg.PairsPerKind; i++ {
			g.pairs[kind] = append(g.pairs[kind], g.plant(rng, kind))
		}
	}
	return g, nil
}

// World returns the (mutated) world the generator plants into.
func (g *Generator) World() *World { return g.world }

// BackgroundCounts returns how many employees and patients are background
// (alert-silent); planted people have indices at or beyond these counts.
func (g *Generator) BackgroundCounts() (employees, patients int) {
	return g.bgEmployees, g.bgPatients
}

// PlantedPairs returns the planted pair count for a kind.
func (g *Generator) PlantedPairs(kind RelationKind) int { return len(g.pairs[kind]) }

// nextSurname hands out surnames for planted pairs; the pool is recycled
// with numeric suffixes if exhausted, keeping surnames unique per pair so
// planted relations never leak across pairs through the name rule — except
// that reuse across distinct pairs is harmless because an access only ever
// joins an employee and a patient of the same pair or background people.
func (g *Generator) nextSurname() string {
	i := g.surnameIndex
	g.surnameIndex++
	name := familyNames[i%len(familyNames)]
	if round := i / len(familyNames); round > 0 {
		name = fmt.Sprintf("%s%d", name, round)
	}
	return name
}

// remoteLoc returns a location in a fresh 1-mile grid cell beyond anything
// allocated so far, guaranteeing > 0.5 miles from every other address.
func (g *Generator) remoteLoc(rng *rand.Rand) Geo {
	i := len(g.world.Addresses)
	side := 4096 // effectively one long row of distinct cells
	return Geo{
		X: float64(i%side) + rng.Float64()*0.2,
		Y: float64(i/side+1)*2 + 1e6, // far above the background grid
	}
}

// nearbyLoc returns a location at distance in [0.15, 0.45] miles from base,
// satisfying the neighbor predicate without colliding into "same address".
func nearbyLoc(rng *rand.Rand, base Geo) Geo {
	d := 0.15 + rng.Float64()*0.30
	ang := rng.Float64() * 2 * math.Pi
	return Geo{X: base.X + d*math.Cos(ang), Y: base.Y + d*math.Sin(ang)}
}

// plant creates one employee–patient pair with exactly the relation kind's
// predicates and appends them to the world.
func (g *Generator) plant(rng *rand.Rand, kind RelationKind) pair {
	w := g.world
	empID := len(w.Employees)
	patID := len(w.Patients)

	empSurname := fmt.Sprintf("PltE%06d", empID)
	patSurname := fmt.Sprintf("PltP%06d", patID)
	if kind == KindLastName || kind >= KindLastNameNeighbor {
		shared := g.nextSurname()
		empSurname, patSurname = shared, shared
	}

	var empAddrs, patAddrs []int
	switch kind {
	case KindNeighbor, KindLastNameNeighbor:
		base := g.remoteLoc(rng)
		a := w.AddAddress(base)
		b := w.AddAddress(nearbyLoc(rng, base))
		empAddrs, patAddrs = []int{a}, []int{b}
	case KindSameAddress, KindLastNameAddress:
		a := w.AddAddress(g.remoteLoc(rng))
		empAddrs, patAddrs = []int{a}, []int{a}
	case KindLastNameAddressNeighbor:
		base := g.remoteLoc(rng)
		a := w.AddAddress(base)
		b := w.AddAddress(nearbyLoc(rng, base))
		empAddrs, patAddrs = []int{a, b}, []int{a}
	default: // KindLastName, KindCoworker: far-apart unique addresses
		empAddrs = []int{w.AddAddress(g.remoteLoc(rng))}
		patAddrs = []int{w.AddAddress(g.remoteLoc(rng))}
	}

	dept := 0
	if len(w.Departments) > 0 {
		dept = rng.Intn(len(w.Departments))
	}
	w.Employees = append(w.Employees, Employee{
		Person: Person{
			ID:         empID,
			FirstName:  firstNames[rng.Intn(len(firstNames))],
			LastName:   empSurname,
			AddressIDs: empAddrs,
		},
		Department: dept,
	})
	pat := Patient{
		Person: Person{
			ID:         patID,
			FirstName:  firstNames[rng.Intn(len(firstNames))],
			LastName:   patSurname,
			AddressIDs: patAddrs,
		},
	}
	if kind == KindCoworker {
		pat.IsEmployee = true
		pat.Department = dept
	}
	w.Patients = append(w.Patients, pat)
	return pair{employee: empID, patient: patID}
}

// Day generates the access log for one day, sorted by time. The log is a
// deterministic function of (config seed, day).
func (g *Generator) Day(day int) []AccessEvent {
	if day < 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(g.cfg.Seed*1_000_003 + int64(day)))
	var events []AccessEvent

	// Background (alert-silent) traffic.
	for i := 0; i < g.cfg.BackgroundPerDay; i++ {
		if g.bgEmployees == 0 || g.bgPatients == 0 {
			break
		}
		events = append(events, AccessEvent{
			Day:        day,
			Time:       sampleDiurnalTime(rng),
			EmployeeID: rng.Intn(g.bgEmployees),
			PatientID:  rng.Intn(g.bgPatients),
		})
	}

	// Alert-bearing traffic calibrated to the per-kind daily volumes.
	for kind := RelationKind(0); kind < NumKinds; kind++ {
		pool := g.pairs[kind]
		if len(pool) == 0 {
			continue
		}
		n := int(math.Round(g.cfg.Volumes[kind].SamplePositive(rng)))
		for i := 0; i < n; i++ {
			p := pool[rng.Intn(len(pool))]
			events = append(events, AccessEvent{
				Day:        day,
				Time:       sampleDiurnalTime(rng),
				EmployeeID: p.employee,
				PatientID:  p.patient,
			})
		}
	}

	sort.Slice(events, func(i, j int) bool {
		if events[i].Time != events[j].Time {
			return events[i].Time < events[j].Time
		}
		if events[i].EmployeeID != events[j].EmployeeID {
			return events[i].EmployeeID < events[j].EmployeeID
		}
		return events[i].PatientID < events[j].PatientID
	})
	return events
}

// Days generates a contiguous range of daily logs [0, n).
func (g *Generator) Days(n int) [][]AccessEvent {
	out := make([][]AccessEvent, 0, n)
	for d := 0; d < n; d++ {
		out = append(out, g.Day(d))
	}
	return out
}
