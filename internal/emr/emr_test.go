package emr

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"github.com/auditgames/sag/internal/dist"
)

func smallWorld(t *testing.T) *World {
	t.Helper()
	w, err := NewWorld(WorldConfig{Seed: 1, Departments: 5, Employees: 50, Patients: 200})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewWorldDefaultsAndSizes(t *testing.T) {
	w, err := NewWorld(WorldConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if w.NumEmployees() != 4000 || w.NumPatients() != 30000 {
		t.Fatalf("default sizes: %d employees, %d patients", w.NumEmployees(), w.NumPatients())
	}
	if len(w.Departments) != 40 {
		t.Fatalf("default departments: %d", len(w.Departments))
	}
	if len(w.Addresses) != 34000 {
		t.Fatalf("addresses: %d, want one per person", len(w.Addresses))
	}
}

func TestNewWorldValidation(t *testing.T) {
	if _, err := NewWorld(WorldConfig{Employees: -1}); err == nil {
		t.Error("negative employees should be rejected")
	}
	if _, err := NewWorld(WorldConfig{CitySideMiles: math.NaN()}); err == nil {
		t.Error("NaN city size should be rejected")
	}
}

func TestWorldDeterministicBySeed(t *testing.T) {
	a, err := NewWorld(WorldConfig{Seed: 5, Employees: 20, Patients: 30, Departments: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewWorld(WorldConfig{Seed: 5, Employees: 20, Patients: 30, Departments: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Employees {
		if a.Employees[i].LastName != b.Employees[i].LastName ||
			a.Employees[i].Department != b.Employees[i].Department {
			t.Fatal("worlds with equal seeds differ")
		}
	}
}

func TestBackgroundWorldIsAlertSilent(t *testing.T) {
	w := smallWorld(t)
	// Unique surnames.
	seen := map[string]bool{}
	for _, e := range w.Employees {
		if seen[e.LastName] {
			t.Fatalf("duplicate background surname %q", e.LastName)
		}
		seen[e.LastName] = true
	}
	for _, p := range w.Patients {
		if seen[p.LastName] {
			t.Fatalf("duplicate background surname %q", p.LastName)
		}
		seen[p.LastName] = true
		if p.IsEmployee {
			t.Fatal("background patients must not be employees")
		}
	}
	// Addresses pairwise farther than the neighbor radius.
	for i := 0; i < len(w.Addresses); i++ {
		for j := i + 1; j < len(w.Addresses); j++ {
			if d := w.Addresses[i].Loc.DistanceMiles(w.Addresses[j].Loc); d <= 0.5 {
				t.Fatalf("background addresses %d and %d only %g miles apart", i, j, d)
			}
		}
	}
}

func TestGeoDistance(t *testing.T) {
	a := Geo{0, 0}
	b := Geo{3, 4}
	if d := a.DistanceMiles(b); math.Abs(d-5) > 1e-12 {
		t.Fatalf("distance = %g, want 5", d)
	}
	if d := a.DistanceMiles(a); d != 0 {
		t.Fatalf("self distance = %g", d)
	}
}

func TestRelationKindStrings(t *testing.T) {
	for k := RelationKind(0); k < NumKinds; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has empty description", k)
		}
	}
	if RelationKind(99).String() == "" {
		t.Fatal("unknown kind should still stringify")
	}
}

func TestTable1Volumes(t *testing.T) {
	v := Table1Volumes()
	if v[KindLastName].Mu != 196.57 || v[KindLastName].Sigma != 17.30 {
		t.Fatal("type 1 volume mismatch with Table 1")
	}
	if v[KindLastNameAddressNeighbor].Mu != 43.27 || v[KindLastNameAddressNeighbor].Sigma != 6.45 {
		t.Fatal("type 7 volume mismatch with Table 1")
	}
	total := 0.0
	for _, n := range v {
		total += n.Mu
	}
	if math.Abs(total-460.73) > 1e-9 {
		t.Fatalf("total daily mean %g, want 460.73", total)
	}
}

func TestDiurnalSamplerShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	busy, night := 0, 0
	n := 20000
	for i := 0; i < n; i++ {
		tm := sampleDiurnalTime(rng)
		if tm < 0 || tm >= 24*time.Hour {
			t.Fatalf("time %v out of day range", tm)
		}
		h := int(tm / time.Hour)
		if h >= 8 && h < 17 {
			busy++
		}
		if h < 5 {
			night++
		}
	}
	if float64(busy)/float64(n) < 0.55 {
		t.Errorf("only %d/%d samples in 08:00–17:00; diurnal mass too flat", busy, n)
	}
	if float64(night)/float64(n) > 0.06 {
		t.Errorf("%d/%d samples before 05:00; nights should be quiet", night, n)
	}
}

func TestGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(nil, GeneratorConfig{}); err == nil {
		t.Error("nil world should be rejected")
	}
	w := smallWorld(t)
	if _, err := NewGenerator(w, GeneratorConfig{BackgroundPerDay: -1}); err == nil {
		t.Error("negative background should be rejected")
	}
	w2 := smallWorld(t)
	bad := GeneratorConfig{}
	bad.Volumes[0] = dist.Normal{Mu: -5, Sigma: 1}
	if _, err := NewGenerator(w2, bad); err == nil {
		t.Error("negative volume mean should be rejected")
	}
}

func TestGeneratorPlantsPairs(t *testing.T) {
	w := smallWorld(t)
	bgE, bgP := w.NumEmployees(), w.NumPatients()
	g, err := NewGenerator(w, GeneratorConfig{Seed: 3, PairsPerKind: 10, BackgroundPerDay: 100})
	if err != nil {
		t.Fatal(err)
	}
	e, p := g.BackgroundCounts()
	if e != bgE || p != bgP {
		t.Fatalf("background counts %d/%d, want %d/%d", e, p, bgE, bgP)
	}
	if w.NumEmployees() != bgE+10*NumKinds {
		t.Fatalf("planted employees: have %d total", w.NumEmployees())
	}
	for k := RelationKind(0); k < NumKinds; k++ {
		if g.PlantedPairs(k) != 10 {
			t.Fatalf("kind %v: %d pairs, want 10", k, g.PlantedPairs(k))
		}
	}
}

func TestGeneratorDayDeterministicAndSorted(t *testing.T) {
	mk := func() []AccessEvent {
		w := smallWorld(t)
		g, err := NewGenerator(w, GeneratorConfig{Seed: 3, PairsPerKind: 10, BackgroundPerDay: 200})
		if err != nil {
			t.Fatal(err)
		}
		return g.Day(4)
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("nondeterministic day length %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs across identical runs", i)
		}
	}
	for i := 1; i < len(a); i++ {
		if a[i].Time < a[i-1].Time {
			t.Fatal("day log not sorted by time")
		}
	}
	if got := mk(); len(got) == 0 {
		t.Fatal("day log should not be empty")
	}
}

func TestGeneratorDifferentDaysDiffer(t *testing.T) {
	w := smallWorld(t)
	g, err := NewGenerator(w, GeneratorConfig{Seed: 3, PairsPerKind: 10, BackgroundPerDay: 200})
	if err != nil {
		t.Fatal(err)
	}
	d0, d1 := g.Day(0), g.Day(1)
	same := len(d0) == len(d1)
	if same {
		for i := range d0 {
			if d0[i] != d1[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different days produced identical logs")
	}
	if g.Day(-1) != nil {
		t.Fatal("negative day should return nil")
	}
}

func TestGeneratorDaysHelper(t *testing.T) {
	w := smallWorld(t)
	g, err := NewGenerator(w, GeneratorConfig{Seed: 3, PairsPerKind: 5, BackgroundPerDay: 50})
	if err != nil {
		t.Fatal(err)
	}
	days := g.Days(3)
	if len(days) != 3 {
		t.Fatalf("Days(3) returned %d slices", len(days))
	}
	for d, evs := range days {
		for _, ev := range evs {
			if ev.Day != d {
				t.Fatalf("event in slice %d has Day=%d", d, ev.Day)
			}
		}
	}
}

func TestGeneratorVolumeCalibration(t *testing.T) {
	// Daily alert-bearing volumes must track the configured normals.
	w := smallWorld(t)
	g, err := NewGenerator(w, GeneratorConfig{Seed: 11, PairsPerKind: 50, BackgroundPerDay: 0})
	if err != nil {
		t.Fatal(err)
	}
	bgE, _ := g.BackgroundCounts()
	var perDay [NumKinds]dist.Running
	days := 40
	for d := 0; d < days; d++ {
		counts := make(map[int]int) // planted employee → hits
		for _, ev := range g.Day(d) {
			if ev.EmployeeID >= bgE {
				counts[ev.EmployeeID]++
			}
		}
		// Planted employees are appended kind-by-kind in blocks of
		// PairsPerKind, so the kind of employee id e is
		// (e-bgE)/PairsPerKind.
		var kindTotals [NumKinds]int
		for e, c := range counts {
			kind := (e - bgE) / 50
			kindTotals[kind] += c
		}
		for k := 0; k < NumKinds; k++ {
			perDay[k].Add(float64(kindTotals[k]))
		}
	}
	vols := Table1Volumes()
	for k := 0; k < NumKinds; k++ {
		want := vols[k].Mu
		got := perDay[k].Mean()
		// 40 samples of Normal(mu, sigma): allow 4 standard errors + 1.
		tol := 4*vols[k].Sigma/math.Sqrt(float64(days)) + 1
		if math.Abs(got-want) > tol {
			t.Errorf("kind %d: mean daily volume %g, want %g ± %g", k, got, want, tol)
		}
	}
}
