package replica

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/http"
	"time"

	"github.com/auditgames/sag/internal/wal"
)

// Source is the primary-side view of one tenant's journal that a replication
// stream reads from. *wal.Journal satisfies it.
type Source interface {
	// Dir is the journal directory holding the segment files.
	Dir() string
	// DurableCursor is the position up to which disk contents are complete
	// and safe to ship.
	DurableCursor() wal.Cursor
	// DurableRecords counts records at or before DurableCursor.
	DurableRecords() int64
	// Subscribe returns a channel that receives (coalesced) notifications
	// whenever the durable cursor advances, plus a cancel func.
	Subscribe() (<-chan struct{}, func())
}

// Leaser is optionally implemented by Sources whose segments can be pruned
// while a stream is reading them (*wal.Journal implements it). A stream
// over such a source holds a retention lease for its lifetime: acquired at
// the negotiated resume cursor, advanced as frames ship and on every
// heartbeat, released when the stream ends — so compaction prunes only what
// every connected follower is already past, and a live stream never dies
// with ErrCursorGone under a snapshot-then-prune.
type Leaser interface {
	AcquireLease(cur wal.Cursor) *wal.Lease
}

// StreamConfig configures one ServeStream call.
type StreamConfig struct {
	// Source is the tenant journal to ship. Required.
	Source Source
	// Heartbeat is the idle heartbeat period (DefaultHeartbeat when zero).
	Heartbeat time.Duration
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// ServeStream handles one GET /v1/replicate?tenant=... request: it validates
// the follower's resume cursor against the journal, then streams record
// frames and heartbeats until the client disconnects. It never returns an
// error to the caller — protocol errors become HTTP statuses, transport
// errors just end the stream. The handler must be mounted outside any
// buffering middleware (http.TimeoutHandler): the response is unbounded.
func ServeStream(w http.ResponseWriter, r *http.Request, cfg StreamConfig) {
	src := cfg.Source
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	hb := cfg.Heartbeat
	if hb <= 0 {
		hb = DefaultHeartbeat
	}

	cur, applyFrom, ok := negotiate(w, r, src, logf)
	if !ok {
		return
	}

	// Pin the journal suffix this follower still needs. The lease lives
	// exactly as long as the stream: a disconnected follower pins nothing
	// (its next connect renegotiates, and a prune in the gap legitimately
	// demands a re-seed), but a connected one is never pruned under.
	var lease *wal.Lease
	if lr, ok := src.(Leaser); ok {
		lease = lr.AcquireLease(cur)
	}
	defer lease.Release()

	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderApplyFrom, applyFrom.String())
	w.WriteHeader(http.StatusOK)

	// The server's global WriteTimeout would kill a healthy long-lived
	// stream; take over deadline management and re-arm it per write so only
	// a stuck peer is cut off.
	rc := http.NewResponseController(w)
	_ = rc.SetReadDeadline(time.Time{})

	st := &streamer{w: w, rc: rc}
	sub, cancel := src.Subscribe()
	defer cancel()
	ticker := time.NewTicker(hb)
	defer ticker.Stop()

	for {
		durable := src.DurableCursor()
		if cur.Less(durable) {
			next, err := wal.ReadFrames(src.Dir(), cur, durable, st.record)
			if err != nil {
				// Pruned under us, torn read, or the peer went away: either
				// way this stream is done; the client reconnects with its
				// cursor and renegotiates (a prune then answers re-seed).
				logf("replicate: stream ended at %v: %v", next, err)
				return
			}
			cur = next
			lease.Advance(cur) // shipped frames no longer need pinning
			if st.heartbeat(src) != nil {
				return
			}
			continue
		}
		select {
		case <-r.Context().Done():
			return
		case <-sub:
		case <-ticker.C:
			// Heartbeats double as lease renewal: an idle-but-alive stream
			// keeps its pin current at the position it would resume from.
			lease.Advance(cur)
			if st.heartbeat(src) != nil {
				return
			}
		}
	}
}

// negotiate parses and validates the client's resume cursor. It writes the
// error response itself when the handshake fails (ok=false). For a valid
// resume, applyFrom is the resume cursor itself; for a fresh seed it is the
// newest snapshot position (or the journal's oldest frame when no snapshot
// exists yet).
func negotiate(w http.ResponseWriter, r *http.Request, src Source, logf func(string, ...any)) (cur, applyFrom wal.Cursor, ok bool) {
	q := r.URL.Query()
	if q.Has("seg") {
		cur, err := parseResume(q.Get("seg"), q.Get("off"), q.Get("crc"), src)
		if err != nil {
			if errors.Is(err, wal.ErrCursorGone) || errors.Is(err, wal.ErrCursorInvalid) {
				logf("replicate: cursor rejected, demanding re-seed: %v", err)
				w.Header().Set(HeaderReseed, "1")
				http.Error(w, err.Error(), http.StatusConflict)
			} else {
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return wal.Cursor{}, wal.Cursor{}, false
		}
		return cur, cur, true
	}
	start, has, err := wal.OldestCursor(src.Dir())
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return wal.Cursor{}, wal.Cursor{}, false
	}
	if !has {
		// Empty journal: start at the durable cursor (the active segment's
		// header) and apply everything that arrives.
		start = src.DurableCursor()
		return start, start, true
	}
	applyFrom = start
	if snap, found, serr := wal.LatestSnapshotCursor(src.Dir()); serr == nil && found {
		applyFrom = snap
	}
	return start, applyFrom, true
}

// parseResume decodes and validates a resume cursor's query parameters.
func parseResume(seg, off, crc string, src Source) (wal.Cursor, error) {
	cur, err := wal.ParseCursor(seg + "/" + off)
	if err != nil {
		return wal.Cursor{}, err
	}
	last, err := parseUint32(crc)
	if err != nil {
		return wal.Cursor{}, fmt.Errorf("wal: malformed cursor crc %q", crc)
	}
	durable := src.DurableCursor()
	if durable.Less(cur) {
		return wal.Cursor{}, fmt.Errorf("%w: cursor %v ahead of durable %v", wal.ErrCursorInvalid, cur, durable)
	}
	if err := wal.ValidateCursor(src.Dir(), cur, last); err != nil {
		return wal.Cursor{}, err
	}
	return cur, nil
}

func parseUint32(s string) (uint32, error) {
	var v uint64
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil || v > 1<<32-1 {
		return 0, fmt.Errorf("not a uint32: %q", s)
	}
	return uint32(v), nil
}

// streamer writes wire frames with a per-write deadline and explicit flushes.
type streamer struct {
	w   http.ResponseWriter
	rc  *http.ResponseController
	buf []byte
}

// record emits one 'r' frame. It satisfies wal.ReadFrames' callback; the raw
// bytes are copied into the response before the call returns.
func (st *streamer) record(fr wal.Frame) error {
	st.buf = st.buf[:0]
	st.buf = append(st.buf, frameRecord)
	st.buf = binary.AppendUvarint(st.buf, uint64(fr.Seg))
	st.buf = binary.AppendUvarint(st.buf, uint64(fr.Off))
	st.buf = binary.AppendUvarint(st.buf, uint64(len(fr.Raw)))
	st.buf = append(st.buf, fr.Raw...)
	return st.write(st.buf, false)
}

// heartbeat emits one 'h' frame carrying the source's durable position and
// record count, then flushes so the follower sees it promptly.
func (st *streamer) heartbeat(src Source) error {
	durable := src.DurableCursor()
	st.buf = st.buf[:0]
	st.buf = append(st.buf, frameHeartbeat)
	st.buf = binary.AppendUvarint(st.buf, uint64(durable.Seg))
	st.buf = binary.AppendUvarint(st.buf, uint64(durable.Off))
	st.buf = binary.AppendUvarint(st.buf, uint64(src.DurableRecords()))
	return st.write(st.buf, true)
}

func (st *streamer) write(b []byte, flush bool) error {
	_ = st.rc.SetWriteDeadline(time.Now().Add(streamWriteTimeout))
	if _, err := st.w.Write(b); err != nil {
		return err
	}
	if flush {
		return st.rc.Flush()
	}
	return nil
}
