package replica

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"github.com/auditgames/sag/internal/obs"
	"github.com/auditgames/sag/internal/wal"
)

// maxWireFrame bounds a single record frame on the wire: the journal's own
// record ceiling plus framing overhead. Anything larger is stream corruption.
const maxWireFrame = 64<<20 + 16

// Default reconnect backoff bounds.
const (
	DefaultBackoffBase = 100 * time.Millisecond
	DefaultBackoffCap  = 3 * time.Second
)

// errReseed signals that the local copy has diverged from the primary's
// retained journal and must be rebuilt from scratch.
var errReseed = errors.New("replica: re-seed required")

// ClientConfig configures one tenant's replication client.
type ClientConfig struct {
	// Primary is the primary's base URL (e.g. "http://127.0.0.1:8080").
	Primary string
	// Tenant is the tenant ID to replicate.
	Tenant string
	// Dir is the local journal directory to mirror into.
	Dir string
	// HTTP issues the streaming requests; it must not carry a client
	// timeout (streams are unbounded). Nil uses a zero http.Client.
	HTTP *http.Client
	// Apply replays one verified, durable record into the warm engine. An
	// error means local state has diverged and forces a re-seed.
	Apply func(r wal.Record, pos wal.Cursor) error
	// Reset wipes local tenant state — journal directory and engine — ahead
	// of a re-seed. The client reopens its mirror from zero afterwards.
	Reset func() error
	// Cursor, LastCRC, Records, Seeded seed the client's position from a
	// prior run's recovery (zero values mean "start from scratch").
	Cursor  wal.Cursor
	LastCRC uint32
	Records int64
	Seeded  bool
	// BackoffBase/BackoffCap bound the reconnect backoff
	// (DefaultBackoffBase/Cap when zero).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// JitterSeed seeds this client's private reconnect-jitter RNG, making
	// backoff sequences deterministic in tests. Zero derives a per-client
	// seed from the wall clock and the tenant ID — never the global
	// math/rand source, whose shared unseeded stream correlates the
	// "jitter" of every follower in one process into a thundering herd.
	JitterSeed int64
	// Metrics receives lag gauges and the reconnect counter; nil disables.
	Metrics *obs.Registry
	// Logf receives diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Client replicates one tenant's journal from a primary: it mirrors raw
// frames to local disk, verifies CRCs and cursor continuity, replays durable
// records into the warm engine, and re-seeds from a primary snapshot whenever
// histories diverge. Run owns all mutation; State and Lag are safe to call
// from other goroutines.
type Client struct {
	cfg  ClientConfig
	http *http.Client
	logf func(string, ...any)
	rng  *rand.Rand // private jitter source; only Run's goroutine draws

	lagRecords *obs.Gauge
	lagSeconds *obs.Gauge
	reconnects *obs.Counter
	reseeds    *obs.Counter

	mu             sync.Mutex
	cur            wal.Cursor
	crc            uint32
	records        int64
	seeded         bool
	primaryRecords int64
	lag            int64
	heartbeats     int64
	behindSince    time.Time
}

// State is a snapshot of the client's replication position.
type State struct {
	Cursor  wal.Cursor
	LastCRC uint32
	Records int64
	Seeded  bool
}

// NewClient builds a replication client; Run starts it.
func NewClient(cfg ClientConfig) *Client {
	c := &Client{
		cfg:     cfg,
		http:    cfg.HTTP,
		logf:    cfg.Logf,
		cur:     cfg.Cursor,
		crc:     cfg.LastCRC,
		records: cfg.Records,
		seeded:  cfg.Seeded,
	}
	if c.http == nil {
		c.http = &http.Client{}
	}
	if c.logf == nil {
		c.logf = func(string, ...any) {}
	}
	if c.cfg.BackoffBase <= 0 {
		c.cfg.BackoffBase = DefaultBackoffBase
	}
	if c.cfg.BackoffCap <= 0 {
		c.cfg.BackoffCap = DefaultBackoffCap
	}
	seed := cfg.JitterSeed
	if seed == 0 {
		h := fnv.New64a()
		_, _ = h.Write([]byte(cfg.Tenant))
		seed = time.Now().UnixNano() ^ int64(h.Sum64())
	}
	c.rng = rand.New(rand.NewSource(seed))
	if cfg.Metrics != nil {
		lbl := obs.L("tenant", cfg.Tenant)
		c.lagRecords = cfg.Metrics.Gauge(MetricLagRecords,
			"Durable primary records not yet applied locally (approximate while behind across pruned history; zero is exact).", lbl)
		c.lagSeconds = cfg.Metrics.Gauge(MetricLagSeconds,
			"Seconds since the follower was last fully caught up.", lbl)
		c.reconnects = cfg.Metrics.Counter(MetricReconnects,
			"Replication stream reconnect attempts.", lbl)
		c.reseeds = cfg.Metrics.Counter(MetricReseeds,
			"Snapshot re-seeds (local copy discarded after diverging from the primary's retained journal).", lbl)
	}
	return c
}

// State returns the current replication position.
func (c *Client) State() State {
	c.mu.Lock()
	defer c.mu.Unlock()
	return State{Cursor: c.cur, LastCRC: c.crc, Records: c.records, Seeded: c.seeded}
}

// Lag returns how many durable primary records are not yet applied locally,
// per the last heartbeat. Zero is exact (the local cursor has reached the
// primary's durable cursor); nonzero values are approximate when the primary
// has pruned history the follower never receives. ok is false until the
// first heartbeat arrives (lag is unknown, not zero).
func (c *Client) Lag() (records int64, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.lag, c.heartbeats > 0
}

// Run replicates until ctx is canceled, reconnecting with capped exponential
// backoff plus jitter. It returns ctx.Err().
func (c *Client) Run(ctx context.Context) error {
	attempt := 0
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if attempt > 0 {
			c.reconnects.Inc()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(c.backoff(attempt)):
			}
		}
		attempt++
		err := c.streamOnce(ctx)
		switch {
		case err == nil || errors.Is(err, context.Canceled):
			// Clean disconnect or shutdown.
		case errors.Is(err, errReseed):
			c.reseeds.Inc()
			c.logf("replica[%s]: diverged, re-seeding: %v", c.cfg.Tenant, err)
			if rerr := c.reseed(); rerr != nil {
				c.logf("replica[%s]: re-seed failed: %v", c.cfg.Tenant, rerr)
			} else {
				attempt = 0 // fresh history, reconnect promptly
			}
		default:
			c.logf("replica[%s]: stream ended: %v", c.cfg.Tenant, err)
		}
	}
}

// backoff returns the delay before reconnect attempt n (n >= 1): capped
// exponential growth from BackoffBase plus up to 50% jitter drawn from the
// client's private RNG, so a given JitterSeed yields a reproducible sequence.
func (c *Client) backoff(attempt int) time.Duration {
	d := c.cfg.BackoffBase << min(attempt-1, 16)
	if d > c.cfg.BackoffCap || d <= 0 {
		d = c.cfg.BackoffCap
	}
	return d + time.Duration(c.rng.Int63n(int64(d)/2+1))
}

// reseed wipes local tenant state and resets the client to stream the
// primary's retained journal from scratch.
func (c *Client) reseed() error {
	if err := c.cfg.Reset(); err != nil {
		return err
	}
	c.mu.Lock()
	c.cur, c.crc, c.records, c.seeded = wal.Cursor{}, 0, 0, false
	c.mu.Unlock()
	return nil
}

// streamOnce opens one replication stream and consumes it until it ends.
func (c *Client) streamOnce(ctx context.Context) error {
	resp, reseedDemanded, err := c.connect(ctx)
	if err != nil {
		if reseedDemanded {
			return fmt.Errorf("%w: primary rejected cursor", errReseed)
		}
		return err
	}
	defer resp.Body.Close()

	applyFrom, err := wal.ParseCursor(resp.Header.Get(HeaderApplyFrom))
	if err != nil {
		return fmt.Errorf("replica: bad %s header: %w", HeaderApplyFrom, err)
	}

	c.mu.Lock()
	at := c.cur
	c.mu.Unlock()
	mirror, err := wal.OpenMirror(c.cfg.Dir, at)
	if err != nil {
		if errors.Is(err, wal.ErrMirrorGap) {
			return fmt.Errorf("%w: %v", errReseed, err)
		}
		return err
	}
	defer mirror.Close()

	return c.consume(bufio.NewReaderSize(resp.Body, 64<<10), mirror, applyFrom)
}

// connect issues the replication request, sending the resume cursor when one
// exists. A 409 with the re-seed header sets reseedDemanded.
func (c *Client) connect(ctx context.Context) (resp *http.Response, reseedDemanded bool, err error) {
	q := url.Values{"tenant": {c.cfg.Tenant}}
	c.mu.Lock()
	if !c.cur.IsZero() {
		q.Set("seg", strconv.Itoa(c.cur.Seg))
		q.Set("off", strconv.FormatInt(c.cur.Off, 10))
		q.Set("crc", strconv.FormatUint(uint64(c.crc), 10))
	}
	c.mu.Unlock()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.cfg.Primary+"/v1/replicate?"+q.Encode(), nil)
	if err != nil {
		return nil, false, err
	}
	r, err := c.http.Do(req)
	if err != nil {
		return nil, false, err
	}
	if r.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(r.Body, 4<<10))
		r.Body.Close()
		demand := r.StatusCode == http.StatusConflict && r.Header.Get(HeaderReseed) != ""
		return nil, demand, fmt.Errorf("replica: primary answered %d: %s", r.StatusCode, body)
	}
	return r, false, nil
}

// consume reads wire frames until the stream ends, mirroring and applying
// record frames and folding heartbeats into the lag gauges.
func (c *Client) consume(br *bufio.Reader, mirror *wal.Mirror, applyFrom wal.Cursor) error {
	for {
		kind, err := br.ReadByte()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		switch kind {
		case frameRecord:
			if err := c.readRecord(br, mirror, applyFrom); err != nil {
				return err
			}
		case frameHeartbeat:
			if err := c.readHeartbeat(br, mirror); err != nil {
				return err
			}
		default:
			return fmt.Errorf("replica: unknown frame type 0x%02x", kind)
		}
	}
}

// readRecord mirrors one replicated frame to disk and replays it into the
// warm engine when it is at or past the apply-from cursor. Snapshot records
// only apply to a pristine engine (the first applied record of a seed);
// later snapshots are checkpoint markers the mirror persists but skips.
func (c *Client) readRecord(br *bufio.Reader, mirror *wal.Mirror, applyFrom wal.Cursor) error {
	seg, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	off, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	rawLen, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	if rawLen == 0 || rawLen > maxWireFrame {
		return fmt.Errorf("replica: frame length %d out of range", rawLen)
	}
	raw := make([]byte, rawLen)
	if _, err := io.ReadFull(br, raw); err != nil {
		return err
	}
	fr := wal.Frame{Seg: int(seg), Off: int64(off), Raw: raw}
	payload, err := mirror.Append(fr)
	if err != nil {
		if errors.Is(err, wal.ErrMirrorGap) || errors.Is(err, wal.ErrCorrupt) {
			return fmt.Errorf("%w: %v", errReseed, err)
		}
		return err
	}
	rec, err := wal.DecodeRecord(payload)
	if err != nil {
		return fmt.Errorf("%w: undecodable replicated record: %v", errReseed, err)
	}
	pos := wal.Cursor{Seg: fr.Seg, Off: fr.Off}
	apply := !pos.Less(applyFrom)
	c.mu.Lock()
	seeded := c.seeded
	c.mu.Unlock()
	if apply && rec.Kind == wal.KindSnapshot && seeded {
		apply = false
	}
	if apply {
		if err := c.cfg.Apply(rec, pos); err != nil {
			return fmt.Errorf("%w: apply at %v: %v", errReseed, pos, err)
		}
	}
	_, crc, _ := wal.ParseFrame(raw)
	c.mu.Lock()
	c.cur = fr.End()
	c.crc = crc
	c.records++
	if apply {
		c.seeded = true
	}
	c.mu.Unlock()
	return nil
}

// readHeartbeat folds one heartbeat into the lag gauges and, when fully
// caught up, syncs the mirror so the replicated tail is crash-durable.
// Caught-up is judged by cursor, not record count: the primary's lifetime
// record count includes pruned history the follower never receives, so the
// count difference is only an approximation of the remaining backlog.
func (c *Client) readHeartbeat(br *bufio.Reader, mirror *wal.Mirror) error {
	durSeg, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	durOff, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	nrecs, err := binary.ReadUvarint(br)
	if err != nil {
		return err
	}
	durable := wal.Cursor{Seg: int(durSeg), Off: int64(durOff)}
	c.mu.Lock()
	c.primaryRecords = int64(nrecs)
	c.heartbeats++
	var lag int64
	if c.cur.Less(durable) {
		lag = c.primaryRecords - c.records
		if lag < 1 {
			lag = 1 // behind by cursor; the count basis is off by pruning
		}
		if c.behindSince.IsZero() {
			c.behindSince = time.Now()
		}
	} else {
		c.behindSince = time.Time{}
	}
	c.lag = lag
	behind := c.behindSince
	c.mu.Unlock()
	c.lagRecords.Set(float64(lag))
	if behind.IsZero() {
		c.lagSeconds.Set(0)
	} else {
		c.lagSeconds.Set(time.Since(behind).Seconds())
	}
	if lag == 0 {
		return mirror.Sync()
	}
	return nil
}
