// Package replica implements WAL log shipping between a primary sagserver
// and a warm-standby follower, the paper's serving deployment made highly
// available: an auditor that stops signaling mid-cycle forfeits the
// deterrence guarantees of Theorems 1–2, so the standby keeps every
// tenant's engine warm and takes over in seconds with zero acknowledged
// mutation loss.
//
// # Protocol
//
// The primary exposes GET /v1/replicate?tenant=<id>&seg=N&off=M&crc=X. The
// cursor (seg, off) is the follower's mirrored tail — a byte position in
// its own copy of the tenant's journal, which is byte-for-byte identical to
// the primary's — and crc is the stored checksum of the record ending
// there. The primary validates the cursor against its on-disk journal:
//
//   - a valid cursor resumes streaming from exactly that frame;
//   - a pruned segment, a non-boundary offset, or a checksum mismatch
//     answers 409 with X-SAG-Reseed: 1 — the follower discards its local
//     copy and reconnects cursorless;
//   - a cursorless connect streams the whole retained journal from its
//     oldest frame, with X-SAG-Apply-From naming the newest snapshot
//     record: the follower persists every frame but starts replaying state
//     at the snapshot.
//
// The response is an unbounded binary stream of length-prefixed frames:
//
//	'r' uvarint(seg) uvarint(off) uvarint(len) raw-frame-bytes
//	'h' uvarint(seg) uvarint(off) uvarint(records)        — heartbeat
//
// Record frames carry the journal frame exactly as stored (length prefix +
// payload + CRC-32), so the follower verifies the checksum and appends the
// same bytes at the same offset of the same segment file. Heartbeats carry
// the primary's durable cursor and record count (~1s apart, and after every
// batch) so the follower can measure catch-up lag even when idle.
//
// Without a tenant parameter the endpoint answers a JSON listing of the
// primary's durable tenants; the follower polls it to discover tenants.
package replica

import "time"

// Replication metric names.
const (
	// MetricLagRecords gauges, per tenant, how many durable primary records
	// the follower has not yet applied.
	MetricLagRecords = "sag_replica_lag_records"
	// MetricLagSeconds gauges, per tenant, how long ago the follower was
	// last fully caught up (zero while caught up).
	MetricLagSeconds = "sag_replica_lag_seconds"
	// MetricReconnects counts replication stream (re)connect attempts after
	// the first, per tenant.
	MetricReconnects = "sag_replica_reconnects_total"
	// MetricReseeds counts snapshot re-seeds — the follower discarded its
	// local copy because its cursor fell off the primary's retained journal.
	// With retention leases on the primary this stays at zero for a
	// connected follower no matter how aggressively the primary compacts.
	MetricReseeds = "sag_replica_reseeds_total"
)

// Wire headers of the replication handshake.
const (
	// HeaderReseed marks a 409 that demands a snapshot re-seed: the
	// follower's history has diverged from (or fallen off) the primary's
	// retained journal.
	HeaderReseed = "X-SAG-Reseed"
	// HeaderApplyFrom names the cursor ("seg/off") at which the follower
	// starts replaying state; earlier frames are persisted, not applied.
	HeaderApplyFrom = "X-SAG-Apply-From"
)

// Frame type bytes of the binary stream.
const (
	frameRecord    = 'r'
	frameHeartbeat = 'h'
)

// DefaultHeartbeat is the idle heartbeat period of a replication stream.
const DefaultHeartbeat = time.Second

// streamWriteTimeout bounds each write of the stream; it is re-armed per
// write, so an alive stream outlives the HTTP server's global WriteTimeout
// while a stuck peer is still cut off.
const streamWriteTimeout = 30 * time.Second
